//! Offline drop-in shim for [serde](https://docs.rs/serde).
//!
//! The build environment has no network access, so the real serde
//! cannot be fetched. The workspace uses serde only for
//! `#[derive(Serialize, Deserialize)]` annotations on plain-old-data
//! types; no code path serialises through serde's data model (the one
//! persistent format, the random-forest codec, is hand-written). The
//! shim therefore re-exports no-op derive macros, which is enough to
//! compile every `use serde::{Deserialize, Serialize};` in the tree.

pub use serde_derive::{Deserialize, Serialize};

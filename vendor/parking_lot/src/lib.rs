//! Offline drop-in subset of [parking_lot](https://docs.rs/parking_lot):
//! `Mutex` and `RwLock` with the infallible (non-poisoning) lock API,
//! implemented over `std::sync`. Poisoning is translated to a panic on
//! the locking thread, which matches how the workspace uses the locks
//! (panics inside a critical section are already fatal to the test).

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

#[derive(Debug, Default)]
pub struct RwLock<T>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }
}

//! No-op `Serialize` / `Deserialize` derive macros for the offline
//! serde shim (see `vendor/serde`). The workspace only uses the derives
//! as declarative metadata — nothing serialises through serde's data
//! model (the one on-disk format, the forest codec, is hand-rolled) —
//! so deriving nothing is sufficient and keeps the build dependency-free.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

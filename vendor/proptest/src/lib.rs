//! Offline drop-in subset of [proptest](https://docs.rs/proptest).
//!
//! The build environment has no network access, so the real proptest
//! cannot be fetched. This shim keeps the property-testing style of the
//! workspace's test suites — `proptest! { fn prop(x in strategy) { … } }`
//! with range strategies, `prop_map`, `prop_oneof!`, `Just` and
//! `collection::vec` — driving each property with a deterministic,
//! per-case-seeded RNG.
//!
//! Differences from the real crate, deliberately accepted:
//! * no shrinking — a failing case panics with its generated inputs
//!   (printed by the `prop_assert!` message), rather than a minimised one;
//! * no persistence — `*.proptest-regressions` files are ignored;
//! * the generation streams differ from upstream proptest.

/// Deterministic generator used to drive strategies (xoshiro256++).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Deterministic seed for case number `case` of a named property.
    pub fn for_case(name: &str, case: u64) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
        }
        let mut sm = h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng { s: [next(), next(), next(), next()] }
    }

    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

pub mod strategy {
    use super::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A generator of values of one type. Object-safe so strategies can
    /// be boxed and unioned (`prop_oneof!`).
    pub trait Strategy {
        type Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// Boxed strategy, the element type of `prop_oneof!` unions.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` adapter.
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between boxed strategies (`prop_oneof!`).
    pub struct Union<T> {
        pub options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = (rng.next_u64() % self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    macro_rules! int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64 + 1;
                    lo + (rng.next_u64() % span) as $t
                }
            }
        )*};
    }

    int_strategy!(usize, u64, u32, i32, i64);

    macro_rules! float_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (self.end - self.start) * rng.unit_f64() as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    lo + (hi - lo) * rng.unit_f64() as $t
                }
            }
        )*};
    }

    float_strategy!(f32, f64);

    /// Tuples of strategies generate tuples of values.
    macro_rules! tuple_strategy {
        ($($name:ident),*) => {
            impl<$($name: Strategy),*> Strategy for ($($name,)*) {
                type Value = ($($name::Value,)*);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)*) = self;
                    ($($name.generate(rng),)*)
                }
            }
        };
    }

    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
}

pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use std::ops::RangeInclusive;

    /// Length specification for [`vec`].
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `proptest::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

pub mod test_runner {
    /// Per-property configuration. Only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }
}

/// Prints the failing property and case index while unwinding, so a
/// failure is reproducible (generation is deterministic per case).
pub struct CaseGuard {
    name: &'static str,
    case: u64,
}

impl CaseGuard {
    pub fn new(name: &'static str, case: u64) -> Self {
        CaseGuard { name, case }
    }
}

impl Drop for CaseGuard {
    fn drop(&mut self) {
        if std::thread::panicking() {
            eprintln!(
                "proptest: property '{}' failed at case {} (deterministic; re-running the test reproduces it)",
                self.name, self.case
            );
        }
    }
}

/// The body of a `proptest!` block: each `fn name(arg in strategy, …)`
/// becomes a `#[test]` running `cases` deterministic iterations.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@funcs $cfg; $($rest)*);
    };
    (@funcs $cfg:expr; ) => {};
    (@funcs $cfg:expr;
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            use $crate::strategy::Strategy as _;
            let cfg: $crate::test_runner::ProptestConfig = $cfg;
            for case in 0..cfg.cases as u64 {
                let mut rng = $crate::TestRng::for_case(stringify!($name), case);
                let _guard = $crate::CaseGuard::new(stringify!($name), case);
                $(let $arg = ($strat).generate(&mut rng);)*
                { $body }
            }
        }
        $crate::proptest!(@funcs $cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@funcs $crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

/// `prop_assert!` — plain assert (no shrinking in the shim).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `prop_assert_eq!` — plain assert_eq.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `prop_oneof!` — uniform union of the listed strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union {
            options: vec![$($crate::strategy::Strategy::boxed($strat)),+],
        }
    };
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::TestRng;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn shapes() -> impl Strategy<Value = (usize, usize)> {
        (1usize..=8, 1usize..=8).prop_map(|(a, b)| (a * 2, b))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in -1.5f64..=1.5) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.5..=1.5).contains(&y));
        }

        #[test]
        fn mapped_tuples_work(s in shapes(), pick in prop_oneof![Just(1usize), Just(2)]) {
            prop_assert_eq!(s.0 % 2, 0);
            prop_assert!(pick == 1 || pick == 2);
        }

        #[test]
        fn vec_lengths_respect_range(v in collection::vec(0usize..5, 2..=4)) {
            prop_assert!((2..=4).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let a: u64 = crate::TestRng::for_case("p", 3).next_u64();
        let b: u64 = crate::TestRng::for_case("p", 3).next_u64();
        assert_eq!(a, b);
    }
}

//! Offline drop-in subset of [rand](https://docs.rs/rand).
//!
//! The build environment has no network access, so the real rand crate
//! cannot be fetched. This shim provides the API surface the workspace
//! uses — `rngs::StdRng`, `SeedableRng::seed_from_u64`, and
//! `RngExt::random_range` over integer and float ranges — backed by a
//! deterministic xoshiro256++ generator seeded through SplitMix64.
//!
//! Determinism is the only contract callers rely on (every use in the
//! workspace passes an explicit seed); the streams do not match the
//! real rand's StdRng, which is fine because no golden data in the
//! repository depends on specific values.

use std::ops::{Range, RangeInclusive};

/// Minimal RNG core: a source of uniform `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    /// Uniform in `[0, 1)` with 53 random bits.
    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, 1)` with 24 random bits.
    fn unit_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Seedable construction, matching rand's `SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Range-sampling extension trait (rand's `Rng::random_range`).
pub trait RngExt: RngCore {
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<R: RngCore> RngExt for R {}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64 + 1;
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, i32, i64);

macro_rules! float_sample_range {
    ($($t:ty => $unit:ident),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                self.start + (self.end - self.start) * rng.$unit()
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                lo + (hi - lo) * rng.$unit()
            }
        }
    )*};
}

float_sample_range!(f32 => unit_f32, f64 => unit_f64);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, the standard seeding procedure for
            // the xoshiro family.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let va: Vec<usize> = (0..32).map(|_| a.random_range(0usize..1000)).collect();
        let vb: Vec<usize> = (0..32).map(|_| b.random_range(0usize..1000)).collect();
        let vc: Vec<usize> = (0..32).map(|_| c.random_range(0usize..1000)).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..2000 {
            let v = rng.random_range(4usize..=32);
            assert!((4..=32).contains(&v));
            let f = rng.random_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&f));
            let g = rng.random_range(16.0f64..=512.0);
            assert!((16.0..=512.0).contains(&g));
        }
    }

    #[test]
    fn float_sampling_covers_the_span() {
        // Not a statistical test — just a guard against a constant or
        // half-span generator.
        let mut rng = StdRng::seed_from_u64(3);
        let vals: Vec<f64> = (0..256).map(|_| rng.random_range(0.0f64..1.0)).collect();
        assert!(vals.iter().any(|&v| v < 0.25));
        assert!(vals.iter().any(|&v| v > 0.75));
    }
}

//! Offline drop-in subset of [criterion](https://docs.rs/criterion).
//!
//! The build environment has no network access, so the real criterion
//! cannot be fetched. This shim keeps the workspace's `[[bench]]`
//! targets (harness = false) compiling and producing useful wall-clock
//! numbers: each benchmark warms up briefly, then runs timed samples of
//! batched iterations until the configured measurement time elapses,
//! and reports min / mean / max nanoseconds per iteration on stdout.
//!
//! No statistical analysis, HTML reports, or baseline comparison — for
//! trajectory tracking this repository writes `BENCH_executor.json`
//! via `reproduce perf` instead.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Batch size hint for `iter_batched`; the shim times per-invocation
/// either way, so the variants only document intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Per-iteration timing loop handed to `bench_function` closures.
pub struct Bencher {
    samples: Vec<f64>,
    measurement_time: Duration,
    target_samples: usize,
}

impl Bencher {
    /// Time `f` repeatedly; one sample = a batch of calls.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and batch sizing: aim for `target_samples` samples in
        // the measurement window.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let per_sample = self.measurement_time.as_secs_f64() / self.target_samples as f64;
        let batch = (per_sample / once.as_secs_f64()).clamp(1.0, 1e6) as u64;

        let deadline = Instant::now() + self.measurement_time;
        while Instant::now() < deadline && self.samples.len() < self.target_samples {
            let s = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.samples.push(s.elapsed().as_secs_f64() / batch as f64);
        }
        if self.samples.is_empty() {
            self.samples.push(once.as_secs_f64());
        }
    }

    /// Time `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let deadline = Instant::now() + self.measurement_time;
        loop {
            let input = setup();
            let s = Instant::now();
            black_box(routine(input));
            self.samples.push(s.elapsed().as_secs_f64());
            if (Instant::now() >= deadline || self.samples.len() >= self.target_samples)
                && !self.samples.is_empty()
            {
                break;
            }
        }
    }
}

fn report(name: &str, samples: &[f64]) {
    let n = samples.len().max(1) as f64;
    let mean = samples.iter().sum::<f64>() / n;
    let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    println!(
        "bench {name:<48} {:>12.0} ns/iter (min {:.0}, max {:.0}, {} samples)",
        mean * 1e9,
        min * 1e9,
        max * 1e9,
        samples.len()
    );
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    config: &'a Config,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            measurement_time: self.measurement_time.min(self.config.max_measurement),
            target_samples: self.sample_size,
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id), &b.samples);
        self
    }

    pub fn finish(&mut self) {}
}

/// Global configuration (kept minimal).
struct Config {
    max_measurement: Duration,
}

/// The criterion entry point handed to `criterion_group!` functions.
pub struct Criterion {
    config: Config,
}

impl Default for Criterion {
    fn default() -> Self {
        // CTB_BENCH_FAST=1 caps every measurement window so the whole
        // bench suite can run as a smoke test.
        let max_measurement = if std::env::var_os("CTB_BENCH_FAST").is_some() {
            Duration::from_millis(50)
        } else {
            Duration::from_secs(10)
        };
        Criterion { config: Config { max_measurement } }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            config: &self.config,
            sample_size: 50,
            measurement_time: Duration::from_secs(1),
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut g = BenchmarkGroup {
            name: "criterion".into(),
            config: &self.config,
            sample_size: 50,
            measurement_time: Duration::from_secs(1),
        };
        g.bench_function(id, f);
        self
    }

    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn final_summary(&self) {}
}

/// Declare a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Generate `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.sample_size(5).measurement_time(Duration::from_millis(5));
        g.bench_function("add", |b| b.iter(|| black_box(1u64 + 2)));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }

    #[test]
    fn group_machinery_runs() {
        let mut c = Criterion::default();
        tiny_bench(&mut c);
    }
}

//! Offline drop-in subset of [rayon](https://docs.rs/rayon).
//!
//! The build environment for this repository has no network access and
//! no vendored registry, so the real rayon cannot be fetched. This shim
//! implements exactly the API surface the workspace uses, with the same
//! ordering semantics (`map`/`collect` preserve input order, `for_each`
//! runs every item exactly once):
//!
//! * `current_num_threads()`
//! * `prelude::*` — `into_par_iter()` on ranges and vectors,
//!   `par_iter()` on slices/`Vec`, `par_iter_mut()`, `par_chunks_mut()`
//! * adapters: `map`, `flat_map_iter`, `enumerate`, `with_min_len`,
//!   `for_each`, `collect`
//!
//! Execution model: adapters are applied eagerly, one parallel pass per
//! adapter, using `std::thread::scope` with one contiguous chunk per
//! worker. On a single-CPU host (or for single-item inputs) everything
//! runs inline on the calling thread, so there is no spawn overhead in
//! the degenerate case.

use std::num::NonZeroUsize;

/// Number of worker threads a parallel pass will use at most.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
}

/// Apply `f` to every item, in parallel, preserving input order.
fn par_apply<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let threads = current_num_threads().min(items.len());
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    // Contiguous chunks, one per worker, reassembled in order.
    let chunk_len = items.len().div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut iter = items.into_iter();
    loop {
        let chunk: Vec<T> = iter.by_ref().take(chunk_len).collect();
        if chunk.is_empty() {
            break;
        }
        chunks.push(chunk);
    }
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<U>>()))
            .collect();
        let mut out = Vec::new();
        for h in handles {
            out.extend(h.join().expect("worker thread panicked"));
        }
        out
    })
}

/// An eagerly evaluated "parallel iterator": the items are materialised
/// and every adapter performs one ordered parallel pass.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    pub fn map<U: Send, F: Fn(T) -> U + Sync>(self, f: F) -> ParIter<U> {
        ParIter { items: par_apply(self.items, f) }
    }

    /// rayon's `flat_map_iter`: parallel over the outer items, serial
    /// over each produced iterator.
    pub fn flat_map_iter<U, I, F>(self, f: F) -> ParIter<U>
    where
        U: Send,
        I: IntoIterator<Item = U>,
        F: Fn(T) -> I + Sync,
    {
        let nested = par_apply(self.items, |t| f(t).into_iter().collect::<Vec<U>>());
        ParIter { items: nested.into_iter().flatten().collect() }
    }

    pub fn enumerate(self) -> ParIter<(usize, T)> {
        ParIter { items: self.items.into_iter().enumerate().collect() }
    }

    /// Accepted for API compatibility; chunking is already coarse.
    pub fn with_min_len(self, _min: usize) -> ParIter<T> {
        self
    }

    pub fn for_each<F: Fn(T) + Sync>(self, f: F) {
        let _ = par_apply(self.items, f);
    }

    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }

    pub fn count(self) -> usize {
        self.items.len()
    }
}

pub mod iter {
    use super::ParIter;

    /// Types convertible into a parallel iterator by value.
    pub trait IntoParallelIterator {
        type Item: Send;
        fn into_par_iter(self) -> ParIter<Self::Item>;
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Item = T;
        fn into_par_iter(self) -> ParIter<T> {
            ParIter { items: self }
        }
    }

    impl IntoParallelIterator for std::ops::Range<usize> {
        type Item = usize;
        fn into_par_iter(self) -> ParIter<usize> {
            ParIter { items: self.collect() }
        }
    }

    /// `par_iter()` — parallel iterator over `&T`.
    pub trait IntoParallelRefIterator<'a> {
        type Item: Send + 'a;
        fn par_iter(&'a self) -> ParIter<Self::Item>;
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
        type Item = &'a T;
        fn par_iter(&'a self) -> ParIter<&'a T> {
            ParIter { items: self.iter().collect() }
        }
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Item = &'a T;
        fn par_iter(&'a self) -> ParIter<&'a T> {
            ParIter { items: self.iter().collect() }
        }
    }

    /// `par_iter_mut()` — parallel iterator over `&mut T`.
    pub trait IntoParallelRefMutIterator<'a> {
        type Item: Send + 'a;
        fn par_iter_mut(&'a mut self) -> ParIter<Self::Item>;
    }

    impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
        type Item = &'a mut T;
        fn par_iter_mut(&'a mut self) -> ParIter<&'a mut T> {
            ParIter { items: self.iter_mut().collect() }
        }
    }

    impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
        type Item = &'a mut T;
        fn par_iter_mut(&'a mut self) -> ParIter<&'a mut T> {
            ParIter { items: self.iter_mut().collect() }
        }
    }

    /// Mutable slice chunking (`par_chunks_mut`).
    pub trait ParallelSliceMut<T: Send> {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]>;
    }

    impl<T: Send> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]> {
            ParIter { items: self.chunks_mut(chunk_size).collect() }
        }
    }
}

pub mod prelude {
    pub use crate::iter::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator,
        ParallelSliceMut,
    };
    pub use crate::ParIter;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_preserves_order() {
        let v: Vec<usize> = (0..1000usize).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(v, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn flat_map_iter_preserves_order() {
        let v: Vec<usize> = (0..10usize).into_par_iter().flat_map_iter(|x| vec![x, x + 100]).collect();
        let expect: Vec<usize> = (0..10).flat_map(|x| vec![x, x + 100]).collect();
        assert_eq!(v, expect);
    }

    #[test]
    fn chunks_mut_touches_every_element_once() {
        let mut data = vec![1i32; 103];
        data.par_chunks_mut(10).enumerate().for_each(|(i, chunk)| {
            for v in chunk.iter_mut() {
                *v += i as i32;
            }
        });
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, 1 + (i / 10) as i32);
        }
    }
}

//! Umbrella crate re-exporting the full coordinated tiling + batching
//! framework (PPoPP '19 reproduction).
//!
//! Most users only need [`prelude`]:
//!
//! ```
//! use ctb::prelude::*;
//!
//! let arch = ArchSpec::volta_v100();
//! let shapes = vec![GemmShape::new(64, 64, 64), GemmShape::new(128, 128, 32)];
//! let batch = GemmBatch::random(&shapes, 1.0, 0.0, 42);
//! let framework = Framework::new(arch);
//! let outcome = framework.run(&batch).expect("planning succeeded");
//! println!("simulated time: {:.1} us", outcome.report.total_us);
//! ```

pub use ctb_baselines as baselines;
pub use ctb_batching as batching;
pub use ctb_bench as bench;
pub use ctb_calib as calib;
pub use ctb_cluster as cluster;
pub use ctb_convnet as convnet;
pub use ctb_core as core;
pub use ctb_forest as forest;
pub use ctb_gpu_specs as gpu_specs;
pub use ctb_matrix as matrix;
pub use ctb_obs as obs;
pub use ctb_serve as serve;
pub use ctb_sim as sim;
pub use ctb_tiling as tiling;

/// Commonly used types, one `use` away.
pub mod prelude {
    pub use ctb_baselines::{cke, cublas_like, default_serial, magma_vbatch};
    pub use ctb_batching::{BatchPlan, BatchingHeuristic};
    pub use ctb_calib::{fit_decisions, CalibProfile, GroundTruth, TraceDataset};
    pub use ctb_cluster::{
        Cluster, ClusterConfig, ClusterStats, EventCluster, EventConfig, LoadGen, PlacementMode,
        SimTime, StealPolicy,
    };
    pub use ctb_core::{Framework, FrameworkConfig, RunOutcome, Session};
    pub use ctb_gpu_specs::{ArchSpec, Thresholds};
    pub use ctb_matrix::{GemmBatch, GemmShape};
    pub use ctb_obs::{Obs, SimClock, TraceAudit};
    pub use ctb_serve::{GemmRequest, ServeConfig, Server};
    pub use ctb_sim::SimReport;
    pub use ctb_tiling::TilingStrategy;
}

//! Cross-crate integration tests: every execution path (framework and
//! all four baselines) computes reference-equal results, and the
//! simulated performance relationships the paper claims hold end-to-end.

use ctb::baselines::run::execute_baseline;
use ctb::matrix::gen::{jittered_case, random_case, uniform_case};
use ctb::prelude::*;
use ctb::sim::simulate;

fn clamp_shapes(shapes: Vec<GemmShape>, cap: usize) -> Vec<GemmShape> {
    shapes
        .into_iter()
        .map(|s| GemmShape::new(s.m.min(cap), s.n.min(cap), s.k.min(cap)))
        .collect()
}

#[test]
fn all_executors_agree_on_random_variable_batches() {
    let arch = ArchSpec::volta_v100();
    let fw = Framework::new(arch.clone());
    for seed in [1u64, 7, 23] {
        let shapes = clamp_shapes(random_case(seed), 160);
        let shapes = &shapes[..shapes.len().min(8)];
        let batch = GemmBatch::random(shapes, 1.0, 0.5, seed + 100);
        let expected = batch.reference_result();

        let outcome = fw.run(&batch).expect("framework runs");
        ctb::matrix::assert_all_close(&expected, &outcome.results, 2e-4);

        for run in [
            default_serial(&arch, shapes),
            cke(&arch, shapes),
            cublas_like(&arch, shapes),
            magma_vbatch(&arch, shapes),
        ] {
            let (results, report) = execute_baseline(&arch, &batch, &run);
            ctb::matrix::assert_all_close(&expected, &results, 2e-4);
            assert!(report.total_us > 0.0, "{} reported zero time", run.name);
        }
    }
}

#[test]
fn framework_beats_magma_on_the_paper_regime() {
    // Small matrices, moderate batches — the regime the paper targets.
    let arch = ArchSpec::volta_v100();
    let fw = Framework::new(arch.clone());
    for (b, mn, k) in [(8, 64, 64), (16, 128, 32), (32, 128, 128), (8, 256, 16)] {
        let shapes = uniform_case(b, mn, mn, k);
        let ours = fw.simulate_only(&shapes).unwrap().total_us;
        let magma = simulate(&arch, &magma_vbatch(&arch, &shapes).seq).total_us;
        assert!(
            magma / ours > 1.0,
            "B={b} MN={mn} K={k}: ours {ours} vs magma {magma}"
        );
    }
}

#[test]
fn single_kernel_batching_beats_serial_launches_for_small_gemms() {
    let arch = ArchSpec::volta_v100();
    let fw = Framework::new(arch.clone());
    let shapes = uniform_case(24, 64, 64, 64);
    let ours = fw.simulate_only(&shapes).unwrap().total_us;
    let serial = simulate(&arch, &default_serial(&arch, &shapes).seq).total_us;
    // 24 launches of ~5 us alone exceed the batched kernel.
    assert!(ours < serial, "ours {ours} vs serial {serial}");
}

#[test]
fn variable_sizes_are_where_vbatch_style_wins_over_cublas_grouping() {
    // With every GEMM a different size, cublas-like batching degenerates
    // to serial launches while the coordinated kernel stays single.
    let arch = ArchSpec::volta_v100();
    let fw = Framework::new(arch.clone());
    let shapes = jittered_case(16, 96, 96, 96, 0.5, 4);
    let distinct: std::collections::HashSet<_> = shapes.iter().collect();
    assert!(distinct.len() > 8, "jitter should produce distinct sizes");
    let ours = fw.simulate_only(&shapes).unwrap().total_us;
    let grouped = simulate(&arch, &cublas_like(&arch, &shapes).seq).total_us;
    assert!(ours < grouped, "ours {ours} vs cublas-like {grouped}");
}

#[test]
fn plans_validate_and_lower_consistently() {
    let arch = ArchSpec::volta_v100();
    let fw = Framework::new(arch.clone());
    for seed in 0..10u64 {
        let shapes = clamp_shapes(random_case(seed), 512);
        let plan = fw.plan(&shapes).expect("plannable");
        plan.plan.validate(&shapes, &plan.solution).expect("plan invariants");
        assert_eq!(plan.kernel.blocks.len(), plan.plan.num_blocks());
        assert_eq!(plan.kernel.footprint.threads, plan.solution.thread_count.threads());
        assert_eq!(plan.kernel.bubble_blocks(), 0, "coordinated plans never bubble");
        // Occupancy must be feasible on the device.
        let occ = ctb::gpu_specs::occupancy::occupancy(&arch, &plan.kernel.footprint);
        assert!(occ.blocks_per_sm >= 1);
    }
}

#[test]
fn per_gemm_alpha_beta_semantics_survive_batching() {
    let arch = ArchSpec::volta_v100();
    let fw = Framework::new(arch);
    let shapes = vec![GemmShape::new(30, 50, 70), GemmShape::new(64, 16, 8)];
    for (alpha, beta) in [(1.0f32, 0.0f32), (0.5, 1.0), (-2.0, 0.25), (0.0, 3.0)] {
        let batch = GemmBatch::random(&shapes, alpha, beta, 5);
        let outcome = fw.run(&batch).expect("runs");
        ctb::matrix::assert_all_close(&batch.reference_result(), &outcome.results, 2e-4);
    }
}

#[test]
fn portability_every_arch_plans_and_wins_on_small_batches() {
    let shapes = uniform_case(16, 96, 96, 48);
    for arch in ArchSpec::all_presets() {
        let fw = Framework::new(arch.clone());
        let ours = fw.simulate_only(&shapes).unwrap().total_us;
        let magma = simulate(&arch, &magma_vbatch(&arch, &shapes).seq).total_us;
        assert!(ours > 0.0 && magma > 0.0);
        assert!(
            magma / ours > 0.95,
            "{}: ours {ours} vs magma {magma}",
            arch.name
        );
    }
}

//! Named claims from the paper, checked end-to-end against this
//! reproduction. Each test cites the section it reproduces.

use ctb::convnet::googlenet_v1;
use ctb::convnet::pipeline::googlenet_times;
use ctb::prelude::*;
use ctb::sim::simulate;
use ctb::tiling::{model, select_tiling, StrategyKind};

/// §4.2.3: the worked example's intermediate and final TLP values.
#[test]
fn worked_example_tlp_values() {
    let shapes = [
        GemmShape::new(16, 32, 128),
        GemmShape::new(64, 64, 64),
        GemmShape::new(256, 256, 64),
    ];
    let th = Thresholds::paper_v100();
    let sol = select_tiling(&shapes, &th);
    assert_eq!(sol.tlp, 17_920);
    let small = ctb::tiling::strategy::batched(StrategyKind::Small, sol.thread_count);
    assert_eq!(model::tlp(&shapes, &[small, small, small]), 70_144);
}

/// §1: a 5120³ GEMM runs near peak while 16×784×192 runs far below it.
#[test]
fn motivation_efficiency_gap() {
    let arch = ArchSpec::volta_v100();
    let big = GemmShape::new(5120, 5120, 5120);
    let small = GemmShape::new(16, 784, 192);
    let eff = |s: GemmShape| {
        let r = simulate(&arch, &default_serial(&arch, &[s]).seq);
        r.gflops(s.flops()) / arch.peak_gflops()
    };
    let (e_big, e_small) = (eff(big), eff(small));
    assert!(e_big > 0.5, "5120^3 at {e_big}");
    assert!(e_small < 0.1, "16x784x192 at {e_small}");
}

/// §7.3: GoogleNet has 57 convolutions and the paper's execution-time
/// ordering (serial > streams > coordinated) holds.
#[test]
fn googlenet_ordering() {
    assert_eq!(googlenet_v1().all_convs().len(), 57);
    let t = googlenet_times(&ArchSpec::volta_v100(), 1);
    assert!(t.cudnn_like_ms > t.cudnn_streams_ms);
    assert!(t.cudnn_streams_ms > t.coordinated_ms);
}

/// Fig 3(a): the vbatch bubble structure for the figure's three GEMMs.
#[test]
fn vbatch_bubbles_match_figure_3a() {
    let shapes = vec![
        GemmShape::new(16, 32, 128),
        GemmShape::new(64, 48, 64),
        GemmShape::new(64, 64, 128),
    ];
    let run = magma_vbatch(&ArchSpec::volta_v100(), &shapes);
    let kernels = run.seq.kernels();
    assert_eq!(kernels.len(), 1, "vbatch is one kernel");
    assert_eq!(kernels[0].blocks.len(), 48, "3 GEMMs x 4x4 slice");
    assert_eq!(kernels[0].bubble_blocks(), 18, "(16-2) + (16-12) bubbles");
}

/// §7: the framework's V100 constants are the paper's (TLP threshold
/// 65536, θ = 256).
#[test]
fn v100_constants() {
    let t = Thresholds::for_arch(&ArchSpec::volta_v100());
    assert_eq!(t.tlp_threshold, 65_536);
    assert_eq!(t.theta, 256);
}

/// §7.4: the speedup over MAGMA holds on every evaluated architecture
/// for a representative random workload set.
#[test]
fn portability_speedups() {
    for arch in ArchSpec::fig11_presets() {
        let fw = Framework::new(arch.clone());
        let mut wins = 0usize;
        let cases = ctb::matrix::gen::random_cases(12, 77);
        for shapes in &cases {
            let ours = fw.simulate_only(shapes).unwrap().total_us;
            let magma = simulate(&arch, &magma_vbatch(&arch, shapes).seq).total_us;
            wins += usize::from(magma > ours);
        }
        assert!(
            wins * 3 >= cases.len() * 2,
            "{}: won only {wins}/{} cases",
            arch.name,
            cases.len()
        );
    }
}

/// Fig 8/9 crossover, small side: on many-small-GEMM workloads — the
/// regime of Fig 1 and the figures' lower-left cells — the coordinated
/// single-kernel plan beats per-kernel default launches by an order of
/// magnitude (launch overhead plus idle SMs dominate the baseline), and
/// also beats MAGMA vbatch.
#[test]
fn coordinated_beats_per_kernel_default_on_many_small_gemms() {
    let arch = ArchSpec::volta_v100();
    let fw = Framework::new(arch.clone());
    for (b, mn, k) in [(32, 64, 64), (16, 32, 32), (64, 16, 128), (8, 64, 16), (16, 128, 32)] {
        let shapes = ctb::matrix::gen::uniform_case(b, mn, mn, k);
        let ours = fw.simulate_only(&shapes).unwrap().total_us;
        let per_kernel = simulate(&arch, &default_serial(&arch, &shapes).seq).total_us;
        let magma = simulate(&arch, &magma_vbatch(&arch, &shapes).seq).total_us;
        assert!(
            per_kernel / ours > 5.0,
            "B={b} MN={mn} K={k}: expected >5x over per-kernel default, got {:.2}x",
            per_kernel / ours
        );
        assert!(
            magma / ours > 1.0,
            "B={b} MN={mn} K={k}: must also beat vbatch ({ours:.2} vs {magma:.2})"
        );
    }
}

/// Fig 8/9 crossover, large side: on large-uniform workloads — the
/// figures' upper-right cells, where a single GEMM already fills the
/// device — coordination cannot help much, and the paper's claim is
/// only that it does not hurt: the coordinated plan stays within a
/// small margin of the per-kernel default (the reproduction's worst
/// cell is ~10.5% at B=1 1024^3; 15% is the asserted ceiling) while
/// still clearly beating MAGMA vbatch.
#[test]
fn coordinated_never_loses_badly_on_large_uniform_gemms() {
    let arch = ArchSpec::volta_v100();
    let fw = Framework::new(arch.clone());
    let mut ratios = Vec::new();
    for (b, mn, k) in
        [(1, 1024, 1024), (2, 512, 512), (4, 512, 256), (1, 2048, 512), (4, 1024, 1024)]
    {
        let shapes = ctb::matrix::gen::uniform_case(b, mn, mn, k);
        let ours = fw.simulate_only(&shapes).unwrap().total_us;
        let per_kernel = simulate(&arch, &default_serial(&arch, &shapes).seq).total_us;
        let magma = simulate(&arch, &magma_vbatch(&arch, &shapes).seq).total_us;
        let ratio = ours / per_kernel;
        assert!(
            ratio <= 1.15,
            "B={b} MN={mn} K={k}: coordinated lost {:.1}% to per-kernel default",
            (ratio - 1.0) * 100.0
        );
        assert!(
            ours < magma,
            "B={b} MN={mn} K={k}: must beat vbatch ({ours:.2} vs {magma:.2})"
        );
        ratios.push(ratio);
    }
    // Aggregate over the large-uniform set the framework is at parity
    // or better, matching the flat right-hand side of Fig 9.
    let geomean = (ratios.iter().map(|r| r.ln()).sum::<f64>() / ratios.len() as f64).exp();
    assert!(geomean <= 1.0, "large-uniform geomean {geomean:.3} worse than parity");
}

/// The crossover itself: the coordinated framework's advantage over
/// per-kernel launches shrinks monotonically in workload grain — the
/// many-small cell's speedup dwarfs the large-uniform cell's, which is
/// the shape of Fig 8/9's histograms.
#[test]
fn speedup_over_default_decays_from_small_to_large() {
    let arch = ArchSpec::volta_v100();
    let fw = Framework::new(arch.clone());
    let speedup = |b: usize, mn: usize, k: usize| {
        let shapes = ctb::matrix::gen::uniform_case(b, mn, mn, k);
        let ours = fw.simulate_only(&shapes).unwrap().total_us;
        simulate(&arch, &default_serial(&arch, &shapes).seq).total_us / ours
    };
    let small = speedup(32, 64, 64);
    let mid = speedup(8, 256, 256);
    let large = speedup(1, 1024, 1024);
    assert!(
        small > mid && mid > large,
        "speedup must decay with grain: small {small:.2}x, mid {mid:.2}x, large {large:.2}x"
    );
    assert!(small > 10.0, "many-small speedup {small:.2}x below Fig 9's regime");
    assert!(large < 1.5, "large-uniform speedup {large:.2}x should be near parity");
}

/// §5: the random-forest selection overhead is a handful of comparisons.
#[test]
fn selector_overhead_is_small() {
    let arch = ArchSpec::volta_v100();
    let th = Thresholds::for_arch(&arch);
    let selector =
        ctb::core::OnlineSelector::train(&arch, &th, &ctb::matrix::gen::random_cases(60, 5));
    let depth = selector.forest().avg_path_depth(&[128.0, 128.0, 64.0, 8.0]);
    assert!(depth <= 8.0, "paper quotes 7-8 comparisons; got {depth}");
}

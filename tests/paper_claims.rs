//! Named claims from the paper, checked end-to-end against this
//! reproduction. Each test cites the section it reproduces.

use ctb::convnet::googlenet_v1;
use ctb::convnet::pipeline::googlenet_times;
use ctb::prelude::*;
use ctb::sim::simulate;
use ctb::tiling::{model, select_tiling, StrategyKind};

/// §4.2.3: the worked example's intermediate and final TLP values.
#[test]
fn worked_example_tlp_values() {
    let shapes = [
        GemmShape::new(16, 32, 128),
        GemmShape::new(64, 64, 64),
        GemmShape::new(256, 256, 64),
    ];
    let th = Thresholds::paper_v100();
    let sol = select_tiling(&shapes, &th);
    assert_eq!(sol.tlp, 17_920);
    let small = ctb::tiling::strategy::batched(StrategyKind::Small, sol.thread_count);
    assert_eq!(model::tlp(&shapes, &[small, small, small]), 70_144);
}

/// §1: a 5120³ GEMM runs near peak while 16×784×192 runs far below it.
#[test]
fn motivation_efficiency_gap() {
    let arch = ArchSpec::volta_v100();
    let big = GemmShape::new(5120, 5120, 5120);
    let small = GemmShape::new(16, 784, 192);
    let eff = |s: GemmShape| {
        let r = simulate(&arch, &default_serial(&arch, &[s]).seq);
        r.gflops(s.flops()) / arch.peak_gflops()
    };
    let (e_big, e_small) = (eff(big), eff(small));
    assert!(e_big > 0.5, "5120^3 at {e_big}");
    assert!(e_small < 0.1, "16x784x192 at {e_small}");
}

/// §7.3: GoogleNet has 57 convolutions and the paper's execution-time
/// ordering (serial > streams > coordinated) holds.
#[test]
fn googlenet_ordering() {
    assert_eq!(googlenet_v1().all_convs().len(), 57);
    let t = googlenet_times(&ArchSpec::volta_v100(), 1);
    assert!(t.cudnn_like_ms > t.cudnn_streams_ms);
    assert!(t.cudnn_streams_ms > t.coordinated_ms);
}

/// Fig 3(a): the vbatch bubble structure for the figure's three GEMMs.
#[test]
fn vbatch_bubbles_match_figure_3a() {
    let shapes = vec![
        GemmShape::new(16, 32, 128),
        GemmShape::new(64, 48, 64),
        GemmShape::new(64, 64, 128),
    ];
    let run = magma_vbatch(&ArchSpec::volta_v100(), &shapes);
    let kernels = run.seq.kernels();
    assert_eq!(kernels.len(), 1, "vbatch is one kernel");
    assert_eq!(kernels[0].blocks.len(), 48, "3 GEMMs x 4x4 slice");
    assert_eq!(kernels[0].bubble_blocks(), 18, "(16-2) + (16-12) bubbles");
}

/// §7: the framework's V100 constants are the paper's (TLP threshold
/// 65536, θ = 256).
#[test]
fn v100_constants() {
    let t = Thresholds::for_arch(&ArchSpec::volta_v100());
    assert_eq!(t.tlp_threshold, 65_536);
    assert_eq!(t.theta, 256);
}

/// §7.4: the speedup over MAGMA holds on every evaluated architecture
/// for a representative random workload set.
#[test]
fn portability_speedups() {
    for arch in ArchSpec::fig11_presets() {
        let fw = Framework::new(arch.clone());
        let mut wins = 0usize;
        let cases = ctb::matrix::gen::random_cases(12, 77);
        for shapes in &cases {
            let ours = fw.simulate_only(shapes).unwrap().total_us;
            let magma = simulate(&arch, &magma_vbatch(&arch, shapes).seq).total_us;
            wins += usize::from(magma > ours);
        }
        assert!(
            wins * 3 >= cases.len() * 2,
            "{}: won only {wins}/{} cases",
            arch.name,
            cases.len()
        );
    }
}

/// §5: the random-forest selection overhead is a handful of comparisons.
#[test]
fn selector_overhead_is_small() {
    let arch = ArchSpec::volta_v100();
    let th = Thresholds::for_arch(&arch);
    let selector =
        ctb::core::OnlineSelector::train(&arch, &th, &ctb::matrix::gen::random_cases(60, 5));
    let depth = selector.forest().avg_path_depth(&[128.0, 128.0, 64.0, 8.0]);
    assert!(depth <= 8.0, "paper quotes 7-8 comparisons; got {depth}");
}

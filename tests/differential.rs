//! Differential conformance suite: every execution path in the
//! repository — the coordinated framework (packed executor), the
//! unpacked interpreter, and all four baselines' functional plans —
//! must produce **bitwise identical** results for the same inputs.
//!
//! The common contract making this possible: every executor accumulates
//! each C element in ascending-k order and applies the epilogue as
//! `alpha * acc + beta * c`, i.e. replays exactly the operation
//! sequence of the naive oracle `gemm_ref`
//! ([`GemmBatch::reference_result_exact`]). The fast reference path
//! ([`GemmBatch::reference_result`]) reassociates and is only checked
//! to tolerance.

use ctb::baselines::run::execute_baseline;
use ctb::core::execute_plan_unpacked;
use ctb::prelude::*;

/// Simple deterministic LCG for shape-mix selection (decoupled from the
/// repo's data-generation RNG so the grid is stable on its own).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn pick<T: Copy>(&mut self, pool: &[T]) -> T {
        pool[(self.next() as usize) % pool.len()]
    }
}

/// Edge-heavy shape pool: degenerate size-1 dimensions, odd K, prime
/// sizes straddling tile boundaries, plus ordinary mid-size GEMMs.
fn shape_pool() -> Vec<GemmShape> {
    vec![
        GemmShape::new(1, 1, 1),
        GemmShape::new(1, 37, 1),
        GemmShape::new(5, 1, 7),
        GemmShape::new(33, 1, 129),
        GemmShape::new(17, 33, 41),
        GemmShape::new(16, 32, 128),
        GemmShape::new(64, 64, 64),
        GemmShape::new(48, 80, 96),
        GemmShape::new(128, 37, 63),
        GemmShape::new(100, 50, 23),
        GemmShape::new(31, 31, 0), // K = 0: pure beta scaling
    ]
}

/// Assert every execution path is bitwise identical to the exact oracle
/// for `batch`.
fn check_all_paths(arch: &ArchSpec, fw: &Framework, batch: &GemmBatch, label: &str) {
    let expected = batch.reference_result_exact();

    // Framework path (packed executor).
    let outcome = fw.run(batch).expect("framework plans and runs");
    ctb::matrix::assert_bitwise_eq(&expected, &outcome.results, &format!("{label}: framework"));

    // Unpacked interpreter on the identical plan.
    let unpacked = execute_plan_unpacked(batch, &outcome.plan.plan);
    ctb::matrix::assert_bitwise_eq(&expected, &unpacked, &format!("{label}: unpacked"));

    // Every baseline's functional plan.
    for run in [
        default_serial(arch, &batch.shapes),
        cke(arch, &batch.shapes),
        cublas_like(arch, &batch.shapes),
        magma_vbatch(arch, &batch.shapes),
    ] {
        let (results, report) = execute_baseline(arch, batch, &run);
        ctb::matrix::assert_bitwise_eq(&expected, &results, &format!("{label}: {}", run.name));
        assert!(report.total_us > 0.0, "{label}: {} reported zero time", run.name);
    }
}

#[test]
fn randomized_mixed_shape_grid_is_bitwise_consistent() {
    let arch = ArchSpec::volta_v100();
    let fw = Framework::new(arch.clone());
    let pool = shape_pool();
    let scalar_pool = [(1.0f32, 0.0f32), (1.0, 1.0), (0.5, -1.25), (0.0, 0.5), (-1.0, 2.0)];

    let mut rng = Lcg(0xC0FFEE);
    for case in 0..24u64 {
        let n_gemms = 1 + (rng.next() as usize) % 6;
        let shapes: Vec<GemmShape> = (0..n_gemms).map(|_| rng.pick(&pool)).collect();
        let (alpha, beta) = rng.pick(&scalar_pool);
        let batch = GemmBatch::random(&shapes, alpha, beta, case);

        // Sanity: the fast reference path agrees to tolerance on these
        // finite inputs (it reassociates, so bitwise is not expected).
        ctb::matrix::assert_all_close(&batch.reference_result(), &batch.reference_result_exact(), 2e-4);

        check_all_paths(&arch, &fw, &batch, &format!("case {case} ({shapes:?}, a={alpha}, b={beta})"));
    }
}

#[test]
fn nan_and_inf_inputs_propagate_identically_through_every_path() {
    let arch = ArchSpec::volta_v100();
    let fw = Framework::new(arch.clone());

    for (tag, poison) in [("nan", f32::NAN), ("inf", f32::INFINITY), ("-inf", f32::NEG_INFINITY)] {
        let shapes = vec![
            GemmShape::new(17, 33, 41),
            GemmShape::new(64, 64, 64),
            GemmShape::new(1, 37, 1),
        ];
        let mut batch = GemmBatch::random(&shapes, 1.0, 0.5, 99);
        // Poison one element in each operand class, in different GEMMs,
        // plus a zero A row against a poisoned B row (the historical
        // zero-skip bug class: 0 * NaN must stay NaN).
        batch.a[0].set(3, 7, poison);
        batch.b[1].set(5, 60, poison);
        batch.c[2].set(0, 11, poison);
        for p in 0..shapes[1].k {
            batch.a[1].set(2, p, 0.0);
        }
        batch.b[1].set(9, 3, poison);

        let expected = batch.reference_result_exact();
        assert!(
            expected.iter().any(|m| m.as_slice().iter().any(|v| !v.is_finite())),
            "{tag}: the poison must reach the output"
        );
        check_all_paths(&arch, &fw, &batch, &format!("poison {tag}"));
    }
}

#[test]
fn alpha_zero_keeps_poisoned_accumulators() {
    // alpha = 0 does NOT short-circuit: 0 * (NaN accumulator) is NaN.
    // Fast reference kernels take the `alpha == 0` early-out, which is
    // why only the exact oracle is authoritative here.
    let arch = ArchSpec::volta_v100();
    let fw = Framework::new(arch.clone());
    let shapes = vec![GemmShape::new(12, 9, 5)];
    let mut batch = GemmBatch::random(&shapes, 0.0, 1.0, 5);
    batch.a[0].set(2, 2, f32::NAN);

    let expected = batch.reference_result_exact();
    assert!(
        expected[0].as_slice().iter().any(|v| v.is_nan()),
        "0 * NaN must poison the row"
    );
    check_all_paths(&arch, &fw, &batch, "alpha-zero NaN");
}

#[test]
fn serving_layer_matches_the_differential_contract() {
    // One cross-layer case: results served through ctb-serve coalescing
    // are the same bitwise results the offline paths produce.
    use ctb::serve::{GemmRequest, ServeConfig, Server};
    use std::time::Duration;

    let server = Server::new(
        Framework::new(ArchSpec::volta_v100()),
        ServeConfig { batch_window: Duration::from_millis(50), ..ServeConfig::default() },
    );
    let shapes = vec![GemmShape::new(17, 33, 41), GemmShape::new(64, 64, 64)];
    let batch = GemmBatch::random(&shapes, 1.0, 0.5, 123);
    let expected = batch.reference_result_exact();

    let tickets: Vec<_> = (0..2)
        .map(|i| {
            server
                .submit(GemmRequest {
                    a: batch.a[i].clone(),
                    b: batch.b[i].clone(),
                    c: batch.c[i].clone(),
                    alpha: batch.alpha,
                    beta: batch.beta,
                    deadline: None,
                })
                .expect("admitted")
        })
        .collect();
    for (i, t) in tickets.into_iter().enumerate() {
        let got = t.wait().expect("completed");
        ctb::matrix::assert_bitwise_eq(
            std::slice::from_ref(&expected[i]),
            std::slice::from_ref(&got.c),
            "served vs oracle",
        );
    }
    server.shutdown();
}

//! Concurrent planning determinism: `Session::plan` raced from many
//! threads must converge on one identical plan with consistent cache
//! accounting — no double-counted misses, no divergent plans.

use ctb::prelude::*;
use std::sync::{Arc, Barrier};

fn shapes() -> Vec<GemmShape> {
    vec![GemmShape::new(48, 64, 96), GemmShape::new(16, 32, 128), GemmShape::new(64, 64, 64)]
}

#[test]
fn racing_planners_agree_on_one_plan_with_consistent_accounting() {
    const THREADS: usize = 8;
    let session = Arc::new(Session::new(Framework::new(ArchSpec::volta_v100())));
    let barrier = Arc::new(Barrier::new(THREADS));

    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let session = Arc::clone(&session);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                // Maximize overlap: all threads hit the cold cache at
                // once, so several run the full planning pipeline and
                // race to insert.
                barrier.wait();
                session.plan(&shapes()).expect("plannable")
            })
        })
        .collect();
    let plans: Vec<_> = handles.into_iter().map(|h| h.join().expect("planner ok")).collect();

    // Every thread sees the identical plan.
    let first = &plans[0];
    for (i, p) in plans.iter().enumerate() {
        assert_eq!(first.plan, p.plan, "thread {i} got a different batch plan");
        assert_eq!(first.heuristic, p.heuristic, "thread {i} got a different heuristic");
        assert_eq!(
            first.solution.per_gemm, p.solution.per_gemm,
            "thread {i} got a different tiling solution"
        );
    }

    // Plan-cache accounting: exactly one miss populated the one cached
    // signature; racers that lost the insert count as hits, so the
    // totals always balance.
    let stats = session.stats();
    assert_eq!(session.cached_plans(), 1);
    assert_eq!(stats.misses, 1, "exactly one planning event populated the cache: {stats:?}");
    assert_eq!(stats.hits, THREADS - 1, "everyone else was answered from the cache: {stats:?}");

    // Simulation-memo accounting: misses equal distinct cached keys
    // (no double-count when racing planners simulate the same
    // candidate), and every lookup is either a hit or a miss.
    let sim = session.sim_stats();
    assert_eq!(
        sim.misses,
        session.sim_memo().len(),
        "sim_calls must equal distinct memoized candidates: {sim:?}"
    );
    assert!(sim.misses > 0, "best-of-both planning must simulate candidates");

    // The winning plan replays deterministically from a cold session —
    // concurrency changed nothing.
    let cold = Session::new(Framework::new(ArchSpec::volta_v100()));
    let replay = cold.plan(&shapes()).expect("plannable");
    assert_eq!(first.plan, replay.plan);
    assert_eq!(first.heuristic, replay.heuristic);
}

#[test]
fn racing_planners_over_distinct_workloads_keep_miss_len_invariant() {
    // Interleave several distinct shape signatures across threads: the
    // invariant `misses == cached_plans` and `sim misses == memo len`
    // must hold for any interleaving, not just the single-key race.
    const THREADS: usize = 8;
    let session = Arc::new(Session::new(Framework::new(ArchSpec::volta_v100())));
    let barrier = Arc::new(Barrier::new(THREADS));
    let workloads: Vec<Vec<GemmShape>> = vec![
        vec![GemmShape::new(48, 64, 96)],
        vec![GemmShape::new(16, 32, 128), GemmShape::new(64, 64, 64)],
        vec![GemmShape::new(128, 128, 32)],
        shapes(),
    ];

    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let session = Arc::clone(&session);
            let barrier = Arc::clone(&barrier);
            let workloads = workloads.clone();
            std::thread::spawn(move || {
                barrier.wait();
                for round in 0..3 {
                    let w = &workloads[(t + round) % workloads.len()];
                    session.plan(w).expect("plannable");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("planner ok");
    }

    let stats = session.stats();
    assert_eq!(session.cached_plans(), workloads.len());
    assert_eq!(
        stats.misses,
        workloads.len(),
        "misses must equal distinct cached signatures: {stats:?}"
    );
    assert_eq!(stats.hits + stats.misses, THREADS * 3, "every call accounted exactly once");
    let sim = session.sim_stats();
    assert_eq!(sim.misses, session.sim_memo().len(), "no double-counted simulator runs: {sim:?}");
}

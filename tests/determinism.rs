//! Concurrent planning determinism: `Session::plan` raced from many
//! threads must converge on one identical plan with consistent cache
//! accounting — no double-counted misses, no divergent plans.
//!
//! Also home to the trace-determinism property: a served workload
//! driven on a [`SimClock`] must render a byte-identical event log on
//! every replay of the same seed.

use ctb::obs::{EventKind, PointKind};
use ctb::prelude::*;
use proptest::prelude::*;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

fn shapes() -> Vec<GemmShape> {
    vec![GemmShape::new(48, 64, 96), GemmShape::new(16, 32, 128), GemmShape::new(64, 64, 64)]
}

#[test]
fn racing_planners_agree_on_one_plan_with_consistent_accounting() {
    const THREADS: usize = 8;
    let session = Arc::new(Session::new(Framework::new(ArchSpec::volta_v100())));
    let barrier = Arc::new(Barrier::new(THREADS));

    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let session = Arc::clone(&session);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                // Maximize overlap: all threads hit the cold cache at
                // once, so several run the full planning pipeline and
                // race to insert.
                barrier.wait();
                session.plan(&shapes()).expect("plannable")
            })
        })
        .collect();
    let plans: Vec<_> = handles.into_iter().map(|h| h.join().expect("planner ok")).collect();

    // Every thread sees the identical plan.
    let first = &plans[0];
    for (i, p) in plans.iter().enumerate() {
        assert_eq!(first.plan, p.plan, "thread {i} got a different batch plan");
        assert_eq!(first.heuristic, p.heuristic, "thread {i} got a different heuristic");
        assert_eq!(
            first.solution.per_gemm, p.solution.per_gemm,
            "thread {i} got a different tiling solution"
        );
    }

    // Plan-cache accounting: exactly one miss populated the one cached
    // signature; racers that lost the insert count as hits, so the
    // totals always balance.
    let stats = session.stats();
    assert_eq!(session.cached_plans(), 1);
    assert_eq!(stats.misses, 1, "exactly one planning event populated the cache: {stats:?}");
    assert_eq!(stats.hits, THREADS - 1, "everyone else was answered from the cache: {stats:?}");

    // Simulation-memo accounting: misses equal distinct cached keys
    // (no double-count when racing planners simulate the same
    // candidate), and every lookup is either a hit or a miss.
    let sim = session.sim_stats();
    assert_eq!(
        sim.misses,
        session.sim_memo().len(),
        "sim_calls must equal distinct memoized candidates: {sim:?}"
    );
    assert!(sim.misses > 0, "best-of-both planning must simulate candidates");

    // The winning plan replays deterministically from a cold session —
    // concurrency changed nothing.
    let cold = Session::new(Framework::new(ArchSpec::volta_v100()));
    let replay = cold.plan(&shapes()).expect("plannable");
    assert_eq!(first.plan, replay.plan);
    assert_eq!(first.heuristic, replay.heuristic);
}

#[test]
fn racing_planners_over_distinct_workloads_keep_miss_len_invariant() {
    // Interleave several distinct shape signatures across threads: the
    // invariant `misses == cached_plans` and `sim misses == memo len`
    // must hold for any interleaving, not just the single-key race.
    const THREADS: usize = 8;
    let session = Arc::new(Session::new(Framework::new(ArchSpec::volta_v100())));
    let barrier = Arc::new(Barrier::new(THREADS));
    let workloads: Vec<Vec<GemmShape>> = vec![
        vec![GemmShape::new(48, 64, 96)],
        vec![GemmShape::new(16, 32, 128), GemmShape::new(64, 64, 64)],
        vec![GemmShape::new(128, 128, 32)],
        shapes(),
    ];

    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let session = Arc::clone(&session);
            let barrier = Arc::clone(&barrier);
            let workloads = workloads.clone();
            std::thread::spawn(move || {
                barrier.wait();
                for round in 0..3 {
                    let w = &workloads[(t + round) % workloads.len()];
                    session.plan(w).expect("plannable");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("planner ok");
    }

    let stats = session.stats();
    assert_eq!(session.cached_plans(), workloads.len());
    assert_eq!(
        stats.misses,
        workloads.len(),
        "misses must equal distinct cached signatures: {stats:?}"
    );
    assert_eq!(stats.hits + stats.misses, THREADS * 3, "every call accounted exactly once");
    let sim = session.sim_stats();
    assert_eq!(sim.misses, session.sim_memo().len(), "no double-counted simulator runs: {sim:?}");
}

// ---------------------------------------------------------------------------
// Trace determinism (ctb-obs): same seed + SimClock => byte-identical log.
// ---------------------------------------------------------------------------

/// Shape pool for the served trace; index picked by the property.
const TRACE_SHAPES: [(usize, usize, usize); 5] =
    [(16, 32, 64), (1, 48, 17), (33, 1, 129), (48, 80, 96), (17, 33, 41)];

/// The terminal `Respond` point is emitted *after* the response channel
/// delivers, so `Ticket::wait` returning does not yet guarantee the
/// event is in the log. Poll for it before advancing the clock so every
/// replay interleaves identically.
fn wait_for_respond(obs: &Obs, req: u64) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let seen = obs.events().iter().any(|e| {
            matches!(e.kind, EventKind::Point(PointKind::Respond { req: r, .. }) if r == req)
        });
        if seen {
            return;
        }
        assert!(Instant::now() < deadline, "no terminal event for request {req}");
        std::thread::yield_now();
    }
}

/// Serve `picks` serially through a single-worker, single-batch server
/// on a simulated clock and return the rendered event log.
fn served_trace(seed: u64, picks: &[(usize, u64)]) -> String {
    let clock = Arc::new(SimClock::new());
    let obs = Arc::new(Obs::sim(Arc::clone(&clock)));
    let session = Session::new(Framework::new(ArchSpec::volta_v100()));
    let cfg = ServeConfig {
        max_batch: 1,
        batch_window: Duration::ZERO,
        workers: 1,
        ..ServeConfig::default()
    };
    let server = Server::with_instrumentation(session, cfg, None, Some(Arc::clone(&obs)));
    for (k, &(which, advance_us)) in picks.iter().enumerate() {
        clock.advance(advance_us);
        let (m, n, kk) = TRACE_SHAPES[which % TRACE_SHAPES.len()];
        let batch = GemmBatch::random(
            &[GemmShape::new(m, n, kk)],
            1.0,
            0.5,
            seed.wrapping_add(k as u64),
        );
        let req = GemmRequest {
            a: batch.a[0].clone(),
            b: batch.b[0].clone(),
            c: batch.c[0].clone(),
            alpha: 1.0,
            beta: 0.5,
            deadline: None,
        };
        let ticket = server.submit(req).expect("admitted");
        ticket.wait().expect("request completes");
        wait_for_respond(&obs, k as u64);
    }
    let stats = server.shutdown();
    assert_eq!(stats.completed, picks.len(), "every pick completes");
    TraceAudit::new(obs.events()).check().expect("trace invariants hold");
    obs.render()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn served_trace_is_byte_identical_across_replays(
        seed in 0u64..1_000_000,
        picks in proptest::collection::vec((0usize..TRACE_SHAPES.len(), 0u64..500), 1..4),
    ) {
        let first = served_trace(seed, &picks);
        let second = served_trace(seed, &picks);
        prop_assert!(!first.is_empty(), "a served workload must produce events");
        prop_assert_eq!(first, second);
    }
}

// ---------------------------------------------------------------------------
// Event-engine determinism: the discrete-event cluster has *no* threads,
// so the byte-identical guarantee needs no wait_for_respond dance — the
// whole run is a pure function of (pool, config, seed).
// ---------------------------------------------------------------------------

/// Run an open-loop Table-2 load through the instrumented event engine
/// and return the rendered trace plus the decision outcomes.
fn event_trace(seed: u64) -> (String, Vec<ctb::cluster::ReqOutcome>) {
    let cfg = EventConfig {
        witness_every: 3,
        placement: PlacementMode::Exact,
        ..EventConfig::default()
    };
    let (mut eng, obs) = ctb::cluster::EventCluster::with_instrumentation(
        ArchSpec::pool_presets(4),
        cfg,
        vec![None; 4],
    );
    eng.load(LoadGen::table2(seed, 40_000.0, 120));
    let report = eng.run();
    assert_eq!(report.requests, 120, "open loop delivers every request");
    assert_eq!(report.witness_mismatches, 0, "sampled witnesses stay bitwise-exact");
    TraceAudit::new(obs.events()).check().expect("event trace invariants hold");
    (obs.render(), report.outcomes)
}

#[test]
fn event_engine_trace_is_byte_identical_across_replays() {
    let (trace_a, outcomes_a) = event_trace(0xC0FFEE);
    let (trace_b, outcomes_b) = event_trace(0xC0FFEE);
    assert!(!trace_a.is_empty(), "an open-loop run must produce events");
    assert_eq!(trace_a, trace_b, "same seed must render the identical event log");
    assert_eq!(outcomes_a, outcomes_b, "same seed must make the identical decisions");

    // And a different seed genuinely changes the run (the generator is
    // not ignoring its seed).
    let (trace_c, _) = event_trace(0xBEEF);
    assert_ne!(trace_a, trace_c, "different seeds must diverge");
}

// ---------------------------------------------------------------------------
// PlanShare under high session fan-out: N sessions × a storm of distinct
// signatures must produce exactly one miss (and one insert) per distinct
// signature, share-wide, no matter how the threads interleave.
// ---------------------------------------------------------------------------

#[test]
fn plan_share_fanout_storm_inserts_each_signature_once() {
    const SESSIONS: usize = 8;
    const ROUNDS: usize = 3;

    // 12 distinct signatures: every (m, n, k) triple is unique, so each
    // is its own plan-cache key under the shared fingerprint.
    let storm: Vec<Vec<GemmShape>> = (0..12)
        .map(|i| vec![GemmShape::new(16 + 8 * i, 24 + 4 * i, 32 + 16 * i); 1 + i % 3])
        .collect();

    let share = Arc::new(ctb::core::PlanShare::new());
    let sessions: Vec<Arc<Session>> = (0..SESSIONS)
        .map(|_| {
            Arc::new(Session::with_share(
                Framework::new(ArchSpec::volta_v100()),
                Arc::clone(&share),
            ))
        })
        .collect();

    let barrier = Arc::new(Barrier::new(SESSIONS));
    let handles: Vec<_> = sessions
        .iter()
        .enumerate()
        .map(|(t, session)| {
            let session = Arc::clone(session);
            let barrier = Arc::clone(&barrier);
            let storm = storm.clone();
            std::thread::spawn(move || {
                barrier.wait();
                // Each session walks the whole storm, rotated so every
                // signature sees concurrent first-callers.
                for round in 0..ROUNDS {
                    for i in 0..storm.len() {
                        let w = &storm[(t + round + i) % storm.len()];
                        session.plan(w).expect("plannable");
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("storm thread ok");
    }

    // No duplicate inserts: the share holds exactly one entry per
    // distinct signature (all sessions share one planning context).
    assert_eq!(share.cached_plans_total(), storm.len(), "one insert per distinct signature");
    for s in &sessions {
        assert_eq!(s.cached_plans(), storm.len(), "every session sees the full shared cache");
    }

    // Summed misses across sessions equal distinct signatures — losers
    // of first-caller races count as hits, never as extra misses — and
    // every lookup is accounted exactly once.
    let (hits, misses) = sessions
        .iter()
        .map(|s| s.stats())
        .fold((0, 0), |(h, m), st| (h + st.hits, m + st.misses));
    assert_eq!(misses, storm.len(), "misses must equal distinct fingerprints");
    assert_eq!(hits + misses, SESSIONS * ROUNDS * storm.len(), "every plan() call accounted");

    // The shared simulation memo obeys the same no-duplicate law.
    assert_eq!(
        share.sim_memo().misses(),
        share.sim_memo().len(),
        "no candidate simulated twice share-wide"
    );
}

/// The fan-out storm again, but over a *sharded* share: splitting the
/// cache into independently locked shards must not change the exact
/// accounting — misses still equal distinct signatures, share-wide,
/// whatever the interleaving — and under the default admit-all policy
/// the admission counters stay untouched.
#[test]
fn sharded_plan_share_fanout_storm_keeps_exact_miss_accounting() {
    const SESSIONS: usize = 8;
    const ROUNDS: usize = 3;

    let storm: Vec<Vec<GemmShape>> = (0..12)
        .map(|i| vec![GemmShape::new(16 + 8 * i, 24 + 4 * i, 32 + 16 * i); 1 + i % 3])
        .collect();

    let share = Arc::new(ctb::core::PlanShare::with_config(ctb::core::PlanShareConfig {
        shards: 8,
        capacity_per_shard: None,
        admission: ctb::core::AdmissionPolicy::AdmitAll,
    }));
    let sessions: Vec<Arc<Session>> = (0..SESSIONS)
        .map(|_| {
            Arc::new(Session::with_share(
                Framework::new(ArchSpec::volta_v100()),
                Arc::clone(&share),
            ))
        })
        .collect();

    let barrier = Arc::new(Barrier::new(SESSIONS));
    let handles: Vec<_> = sessions
        .iter()
        .enumerate()
        .map(|(t, session)| {
            let session = Arc::clone(session);
            let barrier = Arc::clone(&barrier);
            let storm = storm.clone();
            std::thread::spawn(move || {
                barrier.wait();
                for round in 0..ROUNDS {
                    for i in 0..storm.len() {
                        let w = &storm[(t + round + i) % storm.len()];
                        session.plan(w).expect("plannable");
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("storm thread ok");
    }

    assert_eq!(share.shard_count(), 8);
    assert_eq!(share.cached_plans_total(), storm.len(), "one insert per distinct signature");
    assert_eq!(
        share.shard_sizes().iter().sum::<usize>(),
        storm.len(),
        "shards partition the cache exactly"
    );
    let (hits, misses) = sessions
        .iter()
        .map(|s| s.stats())
        .fold((0, 0), |(h, m), st| (h + st.hits, m + st.misses));
    assert_eq!(misses, storm.len(), "sharding must not change miss accounting");
    assert_eq!(hits + misses, SESSIONS * ROUNDS * storm.len(), "every plan() call accounted");
    let adm = share.admission_stats();
    assert_eq!((adm.admitted, adm.denied), (0, 0), "admit-all leaves the gate counters at zero");
}

/// The fan-out storm again, but over a [`PlanShare`] *restored from a
/// savestate checkpoint*: one restorer session replans the serialized
/// keys (misses == distinct signatures, every candidate simulation a
/// memo hit), then 8 fresh sessions storm all 12 signatures
/// concurrently — every lookup lands in the restored cache (zero new
/// misses) and the share never duplicates an insert.
#[test]
fn plan_share_restored_from_checkpoint_survives_fanout_storm() {
    const SESSIONS: usize = 8;
    const ROUNDS: usize = 3;

    let storm: Vec<Vec<GemmShape>> = (0..12)
        .map(|i| vec![GemmShape::new(16 + 8 * i, 24 + 4 * i, 32 + 16 * i); 1 + i % 3])
        .collect();

    // Donor: plan the whole storm once, then checkpoint the share.
    let donor_share = Arc::new(ctb::core::PlanShare::new());
    let donor = Session::with_share(Framework::new(ArchSpec::volta_v100()), Arc::clone(&donor_share));
    for w in &storm {
        donor.plan(w).expect("plannable");
    }
    let donor_memo = (donor_share.sim_memo().hits(), donor_share.sim_memo().misses());
    let blob = {
        let mut w = ctb_savestate::Writer::with_header();
        donor_share.save(&mut w);
        w.into_bytes()
    };

    // Restore into a brand-new share through a single restorer session.
    let share = Arc::new(ctb::core::PlanShare::new());
    let restorer =
        Session::with_share(Framework::new(ArchSpec::volta_v100()), Arc::clone(&share));
    {
        let (mut r, _version) = ctb_savestate::Reader::with_header(&blob).expect("header parses");
        share.restore_with_sessions(&mut r, &[&restorer]).expect("checkpoint restores");
        r.expect_end().expect("blob fully consumed");
    }
    let st = restorer.stats();
    assert_eq!(st.misses, storm.len(), "restore replans each serialized key exactly once");
    assert_eq!(st.hits, 0, "the restorer never re-looks-up a key");
    assert_eq!(share.cached_plans_total(), storm.len(), "restored share holds every plan");
    assert_eq!(
        (share.sim_memo().hits(), share.sim_memo().misses()),
        donor_memo,
        "replanning hits the restored memo, then the counters pin back to the checkpoint"
    );

    // Concurrent fan-out over the restored share: 8 fresh sessions,
    // every signature, rotated start offsets — all hits, no inserts.
    let sessions: Vec<Arc<Session>> = (0..SESSIONS)
        .map(|_| {
            Arc::new(Session::with_share(
                Framework::new(ArchSpec::volta_v100()),
                Arc::clone(&share),
            ))
        })
        .collect();
    let barrier = Arc::new(Barrier::new(SESSIONS));
    let handles: Vec<_> = sessions
        .iter()
        .enumerate()
        .map(|(t, session)| {
            let session = Arc::clone(session);
            let barrier = Arc::clone(&barrier);
            let storm = storm.clone();
            std::thread::spawn(move || {
                barrier.wait();
                for round in 0..ROUNDS {
                    for i in 0..storm.len() {
                        let w = &storm[(t + round + i) % storm.len()];
                        session.plan(w).expect("plannable");
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("storm thread ok");
    }

    assert_eq!(share.cached_plans_total(), storm.len(), "storm added no duplicate inserts");
    let (hits, misses) = sessions
        .iter()
        .map(|s| s.stats())
        .fold((0, 0), |(h, m), st| (h + st.hits, m + st.misses));
    assert_eq!(misses, 0, "every storm lookup lands in the restored cache");
    assert_eq!(hits, SESSIONS * ROUNDS * storm.len(), "every plan() call accounted");
    assert_eq!(
        (share.sim_memo().hits(), share.sim_memo().misses()),
        donor_memo,
        "cache hits never touch the simulation memo"
    );
}

/// Satellite of the calibration PR: the v2 checkpoint section (shard
/// layout + Bloom gate state) restores a *sharded, admission-gated*
/// share exactly. The donor plans each signature twice (under "seen
/// twice" the first insert of every key is denied), checkpoints, and a
/// same-geometry share restores: shard-by-shard layout and the
/// admitted/denied counters must match the donor, 8 fan-out sessions
/// must replan identically (all hits, zero new misses, zero new
/// inserts), and the restored doorkeeper must still deny a fresh
/// signature's first sighting before admitting its second.
#[test]
fn sharded_bloom_share_restores_layout_and_gate_state_across_fanout() {
    const SESSIONS: usize = 8;
    let geometry = ctb::core::PlanShareConfig {
        shards: 8,
        capacity_per_shard: Some(4),
        admission: ctb::core::AdmissionPolicy::SeenTwice { seed: 0xB100 /* gate salt */, slots_log2: 10 },
    };
    let storm: Vec<Vec<GemmShape>> = (0..12)
        .map(|i| vec![GemmShape::new(16 + 8 * i, 24 + 4 * i, 32 + 16 * i); 1 + i % 3])
        .collect();

    // Donor: two passes, so every signature is first denied (first
    // sighting) and then admitted into its shard.
    let donor_share = Arc::new(ctb::core::PlanShare::with_config(geometry));
    let donor =
        Session::with_share(Framework::new(ArchSpec::volta_v100()), Arc::clone(&donor_share));
    for _ in 0..2 {
        for w in &storm {
            donor.plan(w).expect("plannable");
        }
    }
    let donor_layout = donor_share.shard_sizes();
    let donor_admission = donor_share.admission_stats();
    assert_eq!(donor_share.cached_plans_total(), storm.len());
    assert_eq!(donor_admission.denied, storm.len(), "every key's first sighting denied");
    let blob = {
        let mut w = ctb_savestate::Writer::with_header();
        donor_share.save(&mut w);
        w.into_bytes()
    };

    // A mismatched geometry is a typed error, not a silent mis-restore.
    {
        let wrong = Arc::new(ctb::core::PlanShare::with_config(ctb::core::PlanShareConfig {
            shards: 4,
            ..geometry
        }));
        let wrong_restorer =
            Session::with_share(Framework::new(ArchSpec::volta_v100()), Arc::clone(&wrong));
        let (mut r, _) = ctb_savestate::Reader::with_header(&blob).expect("header parses");
        match wrong.restore_with_sessions(&mut r, &[&wrong_restorer]) {
            Err(ctb_savestate::SavestateError::Mismatch(_)) => {}
            other => panic!("expected shard-count Mismatch, got {other:?}"),
        }
    }

    // Same-geometry restore.
    let share = Arc::new(ctb::core::PlanShare::with_config(geometry));
    let restorer =
        Session::with_share(Framework::new(ArchSpec::volta_v100()), Arc::clone(&share));
    {
        let (mut r, _) = ctb_savestate::Reader::with_header(&blob).expect("header parses");
        share.restore_with_sessions(&mut r, &[&restorer]).expect("checkpoint restores");
        r.expect_end().expect("blob fully consumed");
    }
    assert_eq!(share.cached_plans_total(), storm.len(), "restored share holds every plan");
    assert_eq!(share.shard_sizes(), donor_layout, "shard-by-shard layout matches the donor");
    assert_eq!(share.admission_stats(), donor_admission, "gate counters restored");

    // 8-session fan-out: every signature replans identically from the
    // restored shards — all hits, so no insert ever re-faces the gate.
    // Reference plans come from the donor (a third pass, all hits).
    let reference: Vec<String> =
        storm.iter().map(|w| format!("{:?}", donor.plan(w).expect("plannable"))).collect();
    let sessions: Vec<Arc<Session>> = (0..SESSIONS)
        .map(|_| {
            Arc::new(Session::with_share(
                Framework::new(ArchSpec::volta_v100()),
                Arc::clone(&share),
            ))
        })
        .collect();
    let barrier = Arc::new(Barrier::new(SESSIONS));
    let handles: Vec<_> = sessions
        .iter()
        .enumerate()
        .map(|(t, session)| {
            let session = Arc::clone(session);
            let barrier = Arc::clone(&barrier);
            let storm = storm.clone();
            let reference = reference.clone();
            std::thread::spawn(move || {
                barrier.wait();
                for i in 0..storm.len() {
                    let idx = (t + i) % storm.len();
                    let got = session.plan(&storm[idx]).expect("plannable");
                    assert_eq!(
                        format!("{got:?}"),
                        reference[idx],
                        "restored shard served a different plan than the donor"
                    );
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("fan-out thread ok");
    }
    let (hits, misses) = sessions
        .iter()
        .map(|s| s.stats())
        .fold((0, 0), |(h, m), st| (h + st.hits, m + st.misses));
    assert_eq!(misses, 0, "every fan-out lookup lands in the restored shards");
    assert_eq!(hits, SESSIONS * storm.len(), "every plan() call accounted");
    assert_eq!(share.cached_plans_total(), storm.len(), "fan-out added no inserts");
    assert_eq!(share.admission_stats(), donor_admission, "hits never consult the gate");

    // The restored doorkeeper still carries the donor's sightings: a
    // brand-new signature is denied once, then admitted.
    let probe = vec![GemmShape::new(250, 250, 250)];
    sessions[0].plan(&probe).expect("plannable");
    let st = share.admission_stats();
    assert_eq!(st.denied, donor_admission.denied + 1, "fresh key's first sighting denied");
    assert_eq!(share.cached_plans_total(), storm.len(), "denied insert cached nothing");
    sessions[0].plan(&probe).expect("plannable");
    let st = share.admission_stats();
    assert_eq!(st.admitted, donor_admission.admitted + 1, "second sighting admitted");
    assert_eq!(share.cached_plans_total(), storm.len() + 1);
}

//! Property-based tests (proptest) over the core invariants of the
//! framework: plan well-formedness, functional correctness against the
//! reference GEMM, simulator sanity and model monotonicity.

use ctb::batching::{assign_blocks, tiles_for, BatchPlan, BatchingHeuristic};
use ctb::core::lowering::lower_plan;
use ctb::matrix::MatchReport;
use ctb::prelude::*;
use ctb::sim::simulate;
use ctb::tiling::select_tiling;
use proptest::prelude::*;

fn small_shape() -> impl Strategy<Value = GemmShape> {
    (1usize..=96, 1usize..=96, 0usize..=96).prop_map(|(m, n, k)| GemmShape::new(m, n, k))
}

fn shape_batch() -> impl Strategy<Value = Vec<GemmShape>> {
    proptest::collection::vec(small_shape(), 1..=6)
}

fn heuristic() -> impl Strategy<Value = BatchingHeuristic> {
    prop_oneof![
        Just(BatchingHeuristic::OneTilePerBlock),
        Just(BatchingHeuristic::Threshold),
        Just(BatchingHeuristic::Binary),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every heuristic produces a plan that satisfies the Fig 6
    /// auxiliary-array invariants: all tiles exactly once, coordinates
    /// in range, matching strategy ids.
    #[test]
    fn plans_always_validate(shapes in shape_batch(), h in heuristic()) {
        let th = Thresholds::paper_v100();
        let sol = select_tiling(&shapes, &th);
        let tiles = tiles_for(&shapes, &sol);
        let blocks = assign_blocks(&tiles, h, &th, sol.thread_count.threads());
        let plan = BatchPlan::from_blocks(&blocks, sol.thread_count.threads());
        prop_assert!(plan.validate(&shapes, &sol).is_ok());
        // No empty blocks, every block within the device's block-size
        // limit.
        prop_assert!(blocks.iter().all(|b| !b.is_empty()));
    }

    /// The persistent-threads interpreter computes reference-equal
    /// results for any plan of any heuristic.
    #[test]
    fn functional_results_match_reference(
        shapes in shape_batch(),
        h in heuristic(),
        alpha in -2.0f32..2.0,
        beta in -2.0f32..2.0,
        seed in 0u64..1000,
    ) {
        let th = Thresholds::paper_v100();
        let batch = GemmBatch::random(&shapes, alpha, beta, seed);
        let sol = select_tiling(&shapes, &th);
        let tiles = tiles_for(&shapes, &sol);
        let blocks = assign_blocks(&tiles, h, &th, sol.thread_count.threads());
        let plan = BatchPlan::from_blocks(&blocks, sol.thread_count.threads());
        let got = ctb::core::execute_plan(&batch, &plan);
        let report = MatchReport::compare(&batch.reference_result(), &got);
        prop_assert!(report.within(5e-4), "max_rel = {}", report.max_rel);
    }

    /// The packed micro-kernel executor is bitwise-identical to the
    /// collect-then-scatter baseline: same ascending-k accumulation
    /// order per element, so not merely close but equal, for any plan
    /// of any heuristic, scalars, and non-divisible shapes.
    #[test]
    fn packed_executor_is_bitwise_identical_to_unpacked(
        shapes in shape_batch(),
        h in heuristic(),
        alpha in -2.0f32..2.0,
        beta in -2.0f32..2.0,
        seed in 0u64..1000,
    ) {
        let th = Thresholds::paper_v100();
        let batch = GemmBatch::random(&shapes, alpha, beta, seed);
        let sol = select_tiling(&shapes, &th);
        let tiles = tiles_for(&shapes, &sol);
        let blocks = assign_blocks(&tiles, h, &th, sol.thread_count.threads());
        let plan = BatchPlan::from_blocks(&blocks, sol.thread_count.threads());
        let packed = ctb::core::execute_plan(&batch, &plan);
        let unpacked = ctb::core::execute_plan_unpacked(&batch, &plan);
        prop_assert_eq!(packed.len(), unpacked.len());
        for (p, u) in packed.iter().zip(&unpacked) {
            prop_assert_eq!(p.as_slice(), u.as_slice());
        }
    }

    /// The tiling engine always returns one fitting strategy per GEMM
    /// with a consistent unified thread count and correctly reported
    /// TLP.
    #[test]
    fn tiling_solution_invariants(shapes in shape_batch()) {
        let th = Thresholds::paper_v100();
        let sol = select_tiling(&shapes, &th);
        prop_assert_eq!(sol.per_gemm.len(), shapes.len());
        for (s, st) in shapes.iter().zip(&sol.per_gemm) {
            prop_assert_eq!(st.threads, sol.thread_count.threads());
            prop_assert!(st.fits(s.m, s.n) || st.kind == ctb::tiling::StrategyKind::Small);
        }
        prop_assert_eq!(sol.tlp, ctb::tiling::model::tlp(&shapes, &sol.per_gemm));
    }

    /// Lowered kernels are always feasible (non-zero occupancy) and the
    /// simulator returns a positive finite time for non-empty batches.
    #[test]
    fn simulation_is_finite_and_positive(shapes in shape_batch(), h in heuristic()) {
        let arch = ArchSpec::volta_v100();
        let th = Thresholds::paper_v100();
        let sol = select_tiling(&shapes, &th);
        let tiles = tiles_for(&shapes, &sol);
        let blocks = assign_blocks(&tiles, h, &th, sol.thread_count.threads());
        let plan = BatchPlan::from_blocks(&blocks, sol.thread_count.threads());
        let kd = lower_plan("prop", &plan, &shapes);
        let report = simulate(&arch, &ctb::sim::LaunchSequence::Single(kd));
        prop_assert!(report.total_us.is_finite());
        prop_assert!(report.total_us > 0.0);
    }

    /// Growing K (more work per tile) never makes the simulated batch
    /// meaningfully faster, all else equal. (Small reversals are allowed:
    /// discrete policy switches and the DRAM bandwidth-share term can
    /// shift a few percent between adjacent configurations.)
    #[test]
    fn simulated_time_is_monotone_in_k(
        b in 1usize..=8,
        mn in 16usize..=128,
        k in 8usize..=512,
    ) {
        let arch = ArchSpec::volta_v100();
        let fw = Framework::new(arch);
        let t1 = fw.simulate_only(&ctb::matrix::gen::uniform_case(b, mn, mn, k)).unwrap().total_us;
        let t2 = fw.simulate_only(&ctb::matrix::gen::uniform_case(b, mn, mn, 2 * k)).unwrap().total_us;
        prop_assert!(t2 >= t1 * 0.95, "K {k}->{}: {t1} -> {t2}", 2 * k);
    }

    /// Duplicating the batch never makes it meaningfully faster (same
    /// tolerance rationale as the K-monotonicity property).
    #[test]
    fn simulated_time_is_monotone_in_batch(
        b in 1usize..=6,
        mn in 16usize..=128,
        k in 8usize..=256,
    ) {
        let arch = ArchSpec::volta_v100();
        let fw = Framework::new(arch);
        let t1 = fw.simulate_only(&ctb::matrix::gen::uniform_case(b, mn, mn, k)).unwrap().total_us;
        let t2 = fw.simulate_only(&ctb::matrix::gen::uniform_case(2 * b, mn, mn, k)).unwrap().total_us;
        prop_assert!(t2 >= t1 * 0.95, "B {b}->{}: {t1} -> {t2}", 2 * b);
    }

    /// The five auxiliary arrays round-trip the per-block tile
    /// assignment exactly.
    #[test]
    fn auxiliary_arrays_round_trip(shapes in shape_batch(), h in heuristic()) {
        let th = Thresholds::paper_v100();
        let sol = select_tiling(&shapes, &th);
        let tiles = tiles_for(&shapes, &sol);
        let blocks = assign_blocks(&tiles, h, &th, sol.thread_count.threads());
        let plan = BatchPlan::from_blocks(&blocks, sol.thread_count.threads());
        for (b, expect) in blocks.iter().enumerate() {
            prop_assert_eq!(&plan.block_tiles(b, &shapes), expect);
        }
    }
}

/// Replays the regression corpus recorded in
/// `tests/properties.proptest-regressions`. The vendored proptest shim
/// does not read that file at runtime, so every `cc` line's shrunk case
/// is pinned here as a plain assertion and `scripts/check.sh` runs this
/// test by name as the regression gate; when a property fails, record
/// the shrunk case in the file AND here.
#[test]
fn regression_corpus_replays_recorded_cases() {
    let arch = ArchSpec::volta_v100();
    let fw = Framework::new(arch);
    // cc 3d4e6c…47dba: shrinks to b = 1, mn = 37, k = 65
    // cc a13cfc…cf3a73: shrinks to b = 2, mn = 62, k = 217
    for (b, mn, k) in [(1usize, 37usize, 65usize), (2, 62, 217)] {
        let t1 = fw.simulate_only(&ctb::matrix::gen::uniform_case(b, mn, mn, k)).unwrap().total_us;
        let tk = fw
            .simulate_only(&ctb::matrix::gen::uniform_case(b, mn, mn, 2 * k))
            .unwrap()
            .total_us;
        assert!(tk >= t1 * 0.95, "K-monotonicity regression (b={b}, mn={mn}, k={k}): {t1} -> {tk}");
        let tb = fw
            .simulate_only(&ctb::matrix::gen::uniform_case(2 * b, mn, mn, k))
            .unwrap()
            .total_us;
        assert!(tb >= t1 * 0.95, "B-monotonicity regression (b={b}, mn={mn}, k={k}): {t1} -> {tb}");
    }
}

fn any_mat(rows: usize, cols: usize, seed: u64) -> ctb::matrix::MatF32 {
    ctb::matrix::MatF32::random(rows, cols, seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The register-blocked micro-kernel agrees with the naive loop on
    /// arbitrary shapes and scalars.
    #[test]
    fn micro_kernel_matches_reference(
        m in 1usize..40,
        n in 1usize..40,
        k in 0usize..40,
        alpha in -2.0f32..2.0,
        beta in -2.0f32..2.0,
        seed in 0u64..1000,
    ) {
        let a = any_mat(m, k, seed);
        let b = any_mat(k, n, seed + 1);
        let c0 = any_mat(m, n, seed + 2);
        let mut expect = c0.clone();
        ctb::matrix::gemm_ref(alpha, &a, &b, beta, &mut expect);
        let mut got = c0;
        ctb::matrix::gemm_micro(alpha, &a, &b, beta, &mut got);
        prop_assert!(ctb::matrix::max_abs_diff(&expect, &got) < 1e-3);
    }

    /// Split-K produces reference-equal results for every split factor.
    #[test]
    fn splitk_matches_reference(
        shapes in shape_batch(),
        split in 1usize..8,
        seed in 0u64..1000,
    ) {
        let arch = ArchSpec::volta_v100();
        let batch = GemmBatch::random(&shapes, 1.0, 0.5, seed);
        let (results, report) =
            ctb::core::run_splitk(&arch, &batch, split).expect("split-k runs");
        let expect = batch.reference_result();
        let r = MatchReport::compare(&expect, &results);
        prop_assert!(r.within(1e-3), "split {split}: max_rel {}", r.max_rel);
        prop_assert!(report.total_us > 0.0);
    }

    /// The dynamic-queue plan always validates and covers every tile.
    #[test]
    fn dynamic_plans_always_validate(shapes in shape_batch()) {
        let arch = ArchSpec::volta_v100();
        let th = Thresholds::for_arch(&arch);
        let (sol, plan) = ctb::core::plan_dynamic(&arch, &shapes, &th);
        prop_assert!(plan.validate(&shapes, &sol).is_ok());
    }

    /// The timeline capture agrees with the kernel report for any
    /// coordinated plan, and its slot events never overlap.
    #[test]
    fn timeline_is_consistent_with_the_report(shapes in shape_batch(), h in heuristic()) {
        let arch = ArchSpec::volta_v100();
        let th = Thresholds::paper_v100();
        let sol = select_tiling(&shapes, &th);
        let tiles = tiles_for(&shapes, &sol);
        let blocks = assign_blocks(&tiles, h, &th, sol.thread_count.threads());
        let plan = BatchPlan::from_blocks(&blocks, sol.thread_count.threads());
        let kd = lower_plan("prop-timeline", &plan, &shapes);
        let report = ctb::sim::simulate_kernel(&arch, &kd);
        let timeline = ctb::sim::capture_timeline(&arch, &kd);
        prop_assert!((timeline.makespan - report.cycles).abs() < 1e-6);
        prop_assert_eq!(timeline.events.len(), plan.num_blocks());
        let mut per_slot: std::collections::HashMap<usize, Vec<(f64, f64)>> = Default::default();
        for e in &timeline.events {
            per_slot.entry(e.slot).or_default().push((e.start, e.end));
        }
        for (_, mut spans) in per_slot {
            spans.sort_by(|a, b| a.0.total_cmp(&b.0));
            for w in spans.windows(2) {
                prop_assert!(w[0].1 <= w[1].0 + 1e-9);
            }
        }
    }

    /// The traced tiling selection equals the plain selection.
    #[test]
    fn traced_selection_is_equivalent(shapes in shape_batch()) {
        let th = Thresholds::paper_v100();
        let (traced, trace) = ctb::tiling::select_tiling_traced(&shapes, &th);
        prop_assert_eq!(&traced, &select_tiling(&shapes, &th));
        prop_assert!(!trace.rounds.is_empty());
        prop_assert!(trace.chosen == trace.rounds.len() - 1);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The Bloom doorkeeper never claims "seen twice" before a real
    /// second sighting: its tags are a bijective mix of the key, so for
    /// any seed, any slot count, and any key stream, an admit can only
    /// come from an earlier observation of the same key. (Tag eviction
    /// produces false *negatives* only — a forgotten first sighting —
    /// never a false admit.)
    #[test]
    fn bloom_gate_never_admits_a_first_sighting(
        seed in 0u64..u64::MAX,
        slots_log2 in 1u32..=10,
        keys in proptest::collection::vec(0u64..u64::MAX, 1..=512),
    ) {
        let gate = ctb::core::BloomGate::new(seed, slots_log2);
        let mut seen = std::collections::HashSet::new();
        for &k in &keys {
            if gate.observe(k) {
                prop_assert!(seen.contains(&k), "admitted never-seen key {k:#x}");
            }
            seen.insert(k);
        }
    }

    /// A sighting is held at least until another key evicts it: an
    /// immediate re-observation is always admitted, for any stream.
    #[test]
    fn bloom_gate_admits_an_immediate_second_sighting(
        seed in 0u64..u64::MAX,
        slots_log2 in 1u32..=8,
        keys in proptest::collection::vec(0u64..u64::MAX, 1..=256),
    ) {
        let gate = ctb::core::BloomGate::new(seed, slots_log2);
        for &k in &keys {
            let _ = gate.observe(k);
            prop_assert!(gate.contains(k), "a just-observed key is held");
            prop_assert!(gate.observe(k), "an immediate second sighting admits");
        }
    }

    /// The gate is a pure function of (seed, stream): replaying an
    /// identical stream over a fresh gate reproduces every decision and
    /// the eviction count.
    #[test]
    fn bloom_gate_decisions_are_deterministic(
        seed in 0u64..u64::MAX,
        slots_log2 in 1u32..=8,
        keys in proptest::collection::vec(0u64..u64::MAX, 1..=256),
    ) {
        let a = ctb::core::BloomGate::new(seed, slots_log2);
        let b = ctb::core::BloomGate::new(seed, slots_log2);
        for &k in &keys {
            prop_assert_eq!(a.observe(k), b.observe(k));
        }
        prop_assert_eq!(a.evicted_tags(), b.evicted_tags());
    }
}

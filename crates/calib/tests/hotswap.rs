//! The online half of the closed loop, proven end to end:
//!
//! * **Swap under load** — a `serve` Server built over a Swappable
//!   session keeps absorbing concurrent traffic while calibration
//!   profiles are installed mid-flight. Zero requests are dropped and
//!   every payload stays bitwise-identical to the exact reference (and
//!   therefore to a run that never swapped).
//! * **Mid-run install in the event engine** — a swappable cluster
//!   picks up a freshly installed profile between steps without
//!   disturbing correctness witnesses.
//! * **Record → fit → replay** — the offline pass measurably shrinks
//!   placement error on a deterministic replay of the recorded
//!   workload.

use ctb_calib::{fit_decisions, CalibProfile, GroundTruth, ProfileMeta, TraceDataset};
use ctb_cluster::{EventCluster, EventConfig, LoadGen, ReqOutcome};
use ctb_core::selector::OnlineSelector;
use ctb_core::{BatchingPolicy, Framework, FrameworkConfig, PlanShare, Session};
use ctb_gpu_specs::ArchSpec;
use ctb_matrix::{assert_bitwise_eq, GemmBatch, GemmShape};
use ctb_serve::{GemmRequest, ServeConfig, Server, Ticket};
use ctb_sim::{CorrectionSet, CostCorrection};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A server whose session plans under the hot-swappable policy.
fn swappable_server(cfg: ServeConfig) -> Server {
    let fw = Framework::with_config(
        ArchSpec::volta_v100(),
        FrameworkConfig { batching: BatchingPolicy::Swappable, ..FrameworkConfig::default() },
    );
    let session = Arc::new(Session::with_share(fw, Arc::new(PlanShare::new())));
    Server::with_session(session, cfg)
}

/// A profile that genuinely changes planning: scaled V100 correction
/// plus the pretrained selector forest, versioned by `epoch` so every
/// install is a distinct calibration epoch.
fn profile(epoch: u64) -> CalibProfile {
    let mut corrections = CorrectionSet::identity();
    let mut coeffs = [0.0; ctb_sim::PHI_LEN];
    coeffs[1] = 1.05 + 0.01 * epoch as f64;
    corrections.insert("Tesla V100", CostCorrection { coeffs });
    CalibProfile {
        corrections,
        selector_forest: Some(OnlineSelector::pretrained_v100().forest().clone()),
        meta: ProfileMeta { source_decisions: epoch, trained_cases: 0, drift_seed: 0 },
    }
}

/// Drive `producers` × `per_producer` concurrent requests through
/// `server`, checking every response bitwise against the exact
/// reference. Returns the number of requests submitted.
fn storm(server: &Server, producers: usize, per_producer: usize) -> usize {
    let shapes: Vec<GemmShape> = (0..per_producer)
        .map(|i| {
            GemmShape::new(16 + 8 * (i % 5), 16 + 8 * ((i + 2) % 5), 32 + 16 * (i % 3))
        })
        .collect();
    std::thread::scope(|scope| {
        for p in 0..producers {
            let shapes = shapes.clone();
            scope.spawn(move || {
                let batch = GemmBatch::random(&shapes, 1.0, 0.0, 41 + p as u64);
                let expected = batch.reference_result_exact();
                let tickets: Vec<Ticket> = (0..shapes.len())
                    .map(|i| {
                        server
                            .submit(GemmRequest {
                                a: batch.a[i].clone(),
                                b: batch.b[i].clone(),
                                c: batch.c[i].clone(),
                                alpha: batch.alpha,
                                beta: batch.beta,
                                deadline: None,
                            })
                            .expect("admitted")
                    })
                    .collect();
                for (i, t) in tickets.into_iter().enumerate() {
                    let got = t.wait().expect("completed");
                    assert_bitwise_eq(
                        std::slice::from_ref(&expected[i]),
                        std::slice::from_ref(&got.c),
                        "served under swap",
                    );
                }
            });
        }
    });
    producers * per_producer
}

#[test]
fn swap_under_load_drops_nothing_and_stays_bitwise_exact() {
    // Baseline: same storm, no swaps — establishes the reference
    // outcome the swapping run must match.
    let baseline = swappable_server(ServeConfig::default());
    let submitted = storm(&baseline, 4, 12);
    let base_stats = baseline.shutdown();
    assert_eq!(base_stats.completed, submitted);
    assert_eq!(base_stats.abandoned + base_stats.rejected + base_stats.expired, 0);

    // Swapping run: a calibrator thread keeps installing new profiles
    // while the same storm is in flight.
    let server = swappable_server(ServeConfig::default());
    let handle = Arc::clone(server.session().share());
    let done = Arc::new(AtomicBool::new(false));
    let swapper = {
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            let mut epoch = 0u64;
            while !done.load(Ordering::Relaxed) {
                epoch += 1;
                profile(epoch).install(handle.calib());
                std::thread::sleep(Duration::from_millis(1));
            }
            epoch
        })
    };
    let submitted_swap = storm(&server, 4, 12);
    done.store(true, Ordering::Relaxed);
    let swaps = swapper.join().expect("swapper thread");
    let share = Arc::clone(server.session().share());
    let stats = server.shutdown();

    // Zero drop: everything submitted completed, in both runs — and the
    // bitwise assertions inside `storm` already proved every payload
    // identical to the exact reference, hence identical across runs.
    assert_eq!(submitted_swap, submitted);
    assert_eq!(stats.completed, submitted, "swap run dropped requests");
    assert_eq!(stats.abandoned + stats.rejected + stats.expired, 0);
    assert!(swaps >= 1, "at least one profile installed while loaded");
    assert_eq!(share.calib().version(), swaps);
}

#[test]
fn event_engine_picks_up_mid_run_install_without_disturbing_witnesses() {
    let pool = ArchSpec::pool_presets(4);
    let cfg = EventConfig { witness_every: 8, ..EventConfig::default() };
    let (mut cluster, _obs) = EventCluster::swappable(pool.clone(), cfg, false);
    cluster.set_ground_truth(GroundTruth::drift(&pool, 7));
    cluster.record_decisions(true);
    cluster.load(LoadGen::table2(3, 4_000.0, 160));

    cluster.run_steps(200);
    let share = Arc::clone(cluster.share());
    assert_eq!(share.calib().version(), 0);
    let v = profile(1).install(share.calib());
    assert_eq!(v, 1);
    let report = cluster.run();

    assert_eq!(report.requests, 160);
    assert_eq!(report.witness_mismatches, 0, "swap broke a correctness witness");
    assert!(report.outcomes.iter().all(|o| matches!(o, ReqOutcome::Done { .. })));
    assert!(!report.decisions.is_empty());
    // Decisions recorded after the install carry corrected predictions:
    // at least one prediction no longer equals the raw model output.
    assert!(
        report.decisions.iter().any(|d| d.predicted_us != d.model_us),
        "no decision reflects the installed correction"
    );
}

/// One recorded run of the drifted workload; `install` optionally
/// applies a profile before any traffic arrives (the replay arm).
fn drifted_run(profile: Option<&CalibProfile>) -> ctb_cluster::EngineReport {
    let pool = ArchSpec::pool_presets(4);
    let cfg = EventConfig { witness_every: 16, ..EventConfig::default() };
    let (mut cluster, _obs) = EventCluster::swappable(pool.clone(), cfg, false);
    cluster.set_ground_truth(GroundTruth::drift(&pool, 11));
    cluster.record_decisions(true);
    if let Some(p) = profile {
        p.install(cluster.share().calib());
    }
    cluster.load(LoadGen::table2(5, 4_000.0, 240));
    cluster.run()
}

#[test]
fn record_fit_replay_strictly_reduces_placement_error() {
    let recording = drifted_run(None);
    let dataset = TraceDataset::from_recording(&recording, None).expect("ingests");
    let before = dataset.mean_abs_err_us();
    assert!(before > 0.0, "drifted pool must show placement error");

    let fit = fit_decisions(&dataset.decisions);
    let p = CalibProfile {
        corrections: fit.correction_set(),
        selector_forest: None,
        meta: ProfileMeta {
            source_decisions: dataset.decisions.len() as u64,
            trained_cases: 0,
            drift_seed: 11,
        },
    };
    // The profile survives its wire format on the way to the fleet.
    let p = CalibProfile::from_bytes(&p.to_bytes()).expect("round-trips");

    let replay = drifted_run(Some(&p));
    let after = TraceDataset::from_recording(&replay, None).expect("ingests").mean_abs_err_us();
    assert!(
        after < before,
        "calibration must strictly reduce mean placement error (before {before:.3}µs, after {after:.3}µs)"
    );
}

//! Trace-driven cost-model calibration and online forest retraining.
//!
//! The paper's coordinated tiling/batching decisions all flow through
//! the analytical cost model (Eqs 2–4) and the forest selector (§5).
//! Both are fit once against synthetic parameters and never corrected —
//! yet the serving stack already records both sides of every placement
//! decision (`ctb-cluster`'s [`PlacementDecision`] log plus the ctb-obs
//! plan/exec spans), and `ClusterStats` reports predicted-vs-actual
//! placement error. This crate closes that loop, the feedback
//! architecture of the Ada Lovelace ML-analytical study
//! (arXiv 2411.16954) and tritonBLAS (arXiv 2512.04226):
//!
//! 1. **Offline calibration** ([`fit`]) — replay a recorded trace and
//!    fit per-`ArchSpec` least-squares correction coefficients over the
//!    affine feature map `φ(model_us, features)` of
//!    [`ctb_sim::correction`]. The fit never regresses: per arch the
//!    calibrator keeps the best of {identity, scale-only, full affine}
//!    under in-sample mean absolute error.
//! 2. **Trace-labeled forest retraining** ([`retrain`]) — convert the
//!    recorded decisions into ctb-forest training cases (the shapes the
//!    deployment actually served, labeled by the *corrected* cost
//!    model) and retrain the §5 selector against them instead of the
//!    synthetic-only sampling of `OnlineSelector::train_default`.
//! 3. **A versioned [`CalibProfile`]** ([`profile`]) — corrections +
//!    optional retrained forest, serialized through ctb-savestate's
//!    codec (typed errors, byte-stable round-trip) so a profile can be
//!    shipped to a running fleet.
//! 4. **Online hot-swap** — a profile [`install`](CalibProfile::install)s
//!    into the `Arc`-swappable `CalibHandle` every
//!    [`PlanShare`](ctb_core::PlanShare) owns; `serve` and cluster
//!    traffic picks it up without a restart (see `ctb_core::hotswap`
//!    for the ownership rules, and this crate's `tests/hotswap.rs` for
//!    the zero-drop / bitwise-exact swap-under-load proof).
//!
//! The end-to-end pass is wired as `reproduce calibrate` →
//! `BENCH_calibrate.json`: record (drifted ground truth) → fit →
//! retrain → install → replay, reporting mean placement error before
//! and after.

pub mod fit;
pub mod profile;
pub mod retrain;
pub mod trace;

pub use fit::{fit_decisions, ArchFit, FitCase, FitSummary};
pub use profile::{CalibProfile, ProfileMeta, PROFILE_VERSION};
pub use retrain::{forest_shape, retrain_selector, ForestShape, RetrainReport};
pub use trace::{CalibError, TraceDataset};

pub use ctb_cluster::{GroundTruth, PlacementDecision};
pub use ctb_sim::{CorrectionSet, CostCorrection};

//! The versioned, installable calibration artifact.
//!
//! A [`CalibProfile`] bundles what one offline calibration pass
//! produced — the per-arch [`CorrectionSet`] and, when the retrainer
//! ran, the retrained selector forest — plus provenance counters. It
//! serializes through ctb-savestate's codec (`CTBS` magic + format
//! version, then a profile tag and [`PROFILE_VERSION`]):
//!
//! * decoding never panics — malformed bytes surface as typed
//!   [`SavestateError`]s, and a profile written by a *newer* build is
//!   rejected with `UnsupportedVersion` instead of misread;
//! * the byte layout is canonical — corrections are name-sorted and the
//!   forest text codec is deterministic, so save → load → save is
//!   byte-identical (pinned by `round_trip_is_byte_stable`).
//!
//! Installing a profile ([`CalibProfile::install`]) swaps it into a
//! share's [`CalibHandle`] atomically; in-flight planners finish on
//! their snapshot, new decisions see the new epoch.

use ctb_core::hotswap::CalibHandle;
use ctb_core::selector::OnlineSelector;
use ctb_forest::RandomForest;
use ctb_savestate::{Reader, SavestateError, Writer};
use ctb_sim::{CorrectionSet, CostCorrection, PHI_LEN};
use std::sync::Arc;

/// Section tag distinguishing a profile blob from other `CTBS` blobs.
const PROFILE_TAG: &str = "ctb-calib/profile";

/// Version of the profile payload layout. Bump on any change; readers
/// reject newer payloads with a typed error.
pub const PROFILE_VERSION: u32 = 1;

/// Provenance of one calibration pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProfileMeta {
    /// Recorded decisions the corrections were fit against.
    pub source_decisions: u64,
    /// Trace-labeled cases the selector was retrained on (0 when the
    /// profile carries no forest).
    pub trained_cases: u64,
    /// Seed of the drift pool the recording ran under (0 outside
    /// synthetic-drift studies).
    pub drift_seed: u64,
}

/// Corrections + optional retrained selector forest, as shipped to a
/// running fleet.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibProfile {
    pub corrections: CorrectionSet,
    /// Retrained §5 selector; `None` leaves installed sessions on their
    /// best-of-both fallback.
    pub selector_forest: Option<RandomForest>,
    pub meta: ProfileMeta,
}

impl CalibProfile {
    /// Serialize to the canonical byte layout.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::with_header();
        w.str(PROFILE_TAG);
        w.u32(PROFILE_VERSION);
        w.u64(self.meta.source_decisions);
        w.u64(self.meta.trained_cases);
        w.u64(self.meta.drift_seed);
        w.len_prefix(self.corrections.len());
        for (arch, c) in self.corrections.entries() {
            w.str(arch);
            for coeff in c.coeffs {
                w.f64(coeff);
            }
        }
        match &self.selector_forest {
            None => w.bool(false),
            Some(forest) => {
                w.bool(true);
                w.str(&ctb_forest::codec::encode(forest));
            }
        }
        w.into_bytes()
    }

    /// Decode a profile; every failure is a typed [`SavestateError`].
    pub fn from_bytes(bytes: &[u8]) -> Result<CalibProfile, SavestateError> {
        let (mut r, _container_version) = Reader::with_header(bytes)?;
        let tag = r.str()?;
        if tag != PROFILE_TAG {
            return Err(SavestateError::Mismatch(format!(
                "blob tagged '{tag}', expected a '{PROFILE_TAG}' blob"
            )));
        }
        let version = r.u32()?;
        if version > PROFILE_VERSION {
            return Err(SavestateError::UnsupportedVersion {
                found: version,
                supported: PROFILE_VERSION,
            });
        }
        let meta = ProfileMeta {
            source_decisions: r.u64()?,
            trained_cases: r.u64()?,
            drift_seed: r.u64()?,
        };
        let entries = r.seq(|r| {
            let arch = r.str()?;
            let mut coeffs = [0.0; PHI_LEN];
            for c in &mut coeffs {
                *c = r.f64()?;
            }
            Ok((arch, CostCorrection { coeffs }))
        })?;
        let mut corrections = CorrectionSet::identity();
        for (arch, c) in entries {
            corrections.insert(&arch, c);
        }
        let selector_forest = if r.bool()? {
            let text = r.str()?;
            Some(
                ctb_forest::codec::decode(&text)
                    .map_err(|e| SavestateError::Corrupt(format!("embedded forest: {e}")))?,
            )
        } else {
            None
        };
        r.expect_end()?;
        Ok(CalibProfile { corrections, selector_forest, meta })
    }

    /// Atomically install this profile into `handle`; returns the new
    /// calibration version. In-flight readers keep their snapshot.
    pub fn install(&self, handle: &CalibHandle) -> u64 {
        handle.install(
            Arc::new(self.corrections.clone()),
            self.selector_forest
                .clone()
                .map(|f| Arc::new(OnlineSelector::from_forest(f))),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctb_gpu_specs::{ArchSpec, Thresholds};
    use ctb_matrix::gen;

    fn sample_profile(with_forest: bool) -> CalibProfile {
        let mut corrections = CorrectionSet::identity();
        corrections.insert("Tesla V100", CostCorrection { coeffs: [0.5, 1.2, 0.0, 0.01, 0.0, -0.25] });
        corrections.insert("A100", CostCorrection { coeffs: [1.0, 0.9, 0.001, 0.0, 0.0, 0.0] });
        let selector_forest = with_forest.then(|| {
            let arch = ArchSpec::volta_v100();
            let th = Thresholds::for_arch(&arch);
            OnlineSelector::train(&arch, &th, &gen::random_cases(24, 5)).forest().clone()
        });
        CalibProfile {
            corrections,
            selector_forest,
            meta: ProfileMeta { source_decisions: 1234, trained_cases: 24, drift_seed: 7 },
        }
    }

    #[test]
    fn round_trip_is_byte_stable() {
        for with_forest in [false, true] {
            let p = sample_profile(with_forest);
            let bytes = p.to_bytes();
            let back = CalibProfile::from_bytes(&bytes).expect("decodes");
            assert_eq!(back, p);
            assert_eq!(back.to_bytes(), bytes, "save -> load -> save is byte-identical");
        }
    }

    #[test]
    fn truncation_is_a_typed_corrupt_error() {
        let bytes = sample_profile(true).to_bytes();
        for cut in [0, 3, 8, 20, bytes.len() - 1] {
            match CalibProfile::from_bytes(&bytes[..cut]) {
                Err(SavestateError::Corrupt(_)) => {}
                other => panic!("cut at {cut}: expected Corrupt, got {other:?}"),
            }
        }
    }

    #[test]
    fn newer_profile_version_is_rejected() {
        let mut w = Writer::with_header();
        w.str("ctb-calib/profile");
        w.u32(PROFILE_VERSION + 1);
        match CalibProfile::from_bytes(&w.into_bytes()) {
            Err(SavestateError::UnsupportedVersion { found, supported }) => {
                assert_eq!(found, PROFILE_VERSION + 1);
                assert_eq!(supported, PROFILE_VERSION);
            }
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
    }

    #[test]
    fn foreign_tag_is_a_mismatch() {
        let mut w = Writer::with_header();
        w.str("ctb-cluster/checkpoint");
        match CalibProfile::from_bytes(&w.into_bytes()) {
            Err(SavestateError::Mismatch(_)) => {}
            other => panic!("expected Mismatch, got {other:?}"),
        }
    }

    #[test]
    fn install_bumps_the_handle_and_carries_the_selector() {
        let p = sample_profile(true);
        let handle = CalibHandle::new();
        assert_eq!(p.install(&handle), 1);
        let snap = handle.snapshot();
        assert_eq!(snap.version, 1);
        assert!(snap.selector.is_some());
        assert!((handle.correct("A100", 100.0, &[0.0; 4]) - 91.0).abs() < 1e-9);
        // A correction-only profile replaces the selector with None.
        assert_eq!(sample_profile(false).install(&handle), 2);
        assert!(handle.snapshot().selector.is_none());
    }
}

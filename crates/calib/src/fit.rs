//! Per-arch least-squares fitting of cost-model corrections.
//!
//! Each recorded [`PlacementDecision`] contributes one row: the raw
//! analytical-model prediction `model_us`, the §5 feature quadruple of
//! its shapes, and the time execution actually charged. Per
//! architecture the calibrator solves the ridge-regularized normal
//! equations for the affine map `actual ≈ φ(model, features) · c`
//! (see [`ctb_sim::correction`] for φ), then keeps the best of three
//! candidates under in-sample mean absolute error:
//!
//! * **identity** — the pass-through (never worse than the status quo),
//! * **scale-only** — `actual ≈ s · model`, the one-parameter fit that
//!   captures uniform clock/bandwidth drift and cannot overfit,
//! * **affine** — the full 6-coefficient φ fit.
//!
//! Keeping the argmin means a calibration pass can never *increase*
//! in-sample error; on a deterministic replay of the same workload the
//! corrected model is therefore no worse per arch, and strictly better
//! whenever real drift exists.

use ctb_cluster::PlacementDecision;
use ctb_core::selector::features;
use ctb_sim::{phi, CorrectionSet, CostCorrection, PHI_LEN};
use std::collections::BTreeMap;

/// One regression row: raw model prediction, selector features of the
/// shapes, measured execution time.
#[derive(Debug, Clone, PartialEq)]
pub struct FitCase {
    pub model_us: f64,
    pub features: Vec<f64>,
    pub actual_us: f64,
}

impl FitCase {
    /// Build the row a decision contributes.
    pub fn from_decision(d: &PlacementDecision) -> Self {
        FitCase { model_us: d.model_us, features: features(&d.shapes), actual_us: d.actual_us }
    }
}

/// What the fit did for one architecture.
#[derive(Debug, Clone, PartialEq)]
pub struct ArchFit {
    pub arch: String,
    /// Rows that went into the fit.
    pub cases: usize,
    /// Mean |model − actual| before correction, µs.
    pub err_before_us: f64,
    /// Mean |corrected − actual| under the chosen correction, µs
    /// (in-sample).
    pub err_after_us: f64,
    /// `"identity"`, `"scale"` or `"affine"` — which candidate won.
    pub kind: &'static str,
    pub correction: CostCorrection,
}

/// The whole calibration pass: one correction per recorded arch.
#[derive(Debug, Clone, PartialEq)]
pub struct FitSummary {
    pub arches: Vec<ArchFit>,
    /// Total rows across arches.
    pub cases: usize,
}

impl FitSummary {
    /// Case-weighted mean absolute error before any correction, µs.
    pub fn mean_err_before_us(&self) -> f64 {
        weighted_mean(&self.arches, |a| a.err_before_us)
    }

    /// Case-weighted in-sample mean absolute error after, µs.
    pub fn mean_err_after_us(&self) -> f64 {
        weighted_mean(&self.arches, |a| a.err_after_us)
    }

    /// The corrections as an installable set (identity winners are
    /// omitted — absent arches already pass through bit-for-bit).
    pub fn correction_set(&self) -> CorrectionSet {
        let mut set = CorrectionSet::identity();
        for a in &self.arches {
            if !a.correction.is_identity() {
                set.insert(&a.arch, a.correction.clone());
            }
        }
        set
    }
}

fn weighted_mean(arches: &[ArchFit], f: impl Fn(&ArchFit) -> f64) -> f64 {
    let total: usize = arches.iter().map(|a| a.cases).sum();
    if total == 0 {
        return 0.0;
    }
    arches.iter().map(|a| f(a) * a.cases as f64).sum::<f64>() / total as f64
}

/// Mean |correction(model) − actual| over `cases`, µs.
fn mean_abs_err(cases: &[FitCase], c: &CostCorrection) -> f64 {
    if cases.is_empty() {
        return 0.0;
    }
    cases
        .iter()
        .map(|r| (c.apply(r.model_us, &r.features) - r.actual_us).abs())
        .sum::<f64>()
        / cases.len() as f64
}

/// Solve the symmetric system `a · x = b` by Gaussian elimination with
/// partial pivoting; `None` when (numerically) singular.
fn solve(mut a: [[f64; PHI_LEN]; PHI_LEN], mut b: [f64; PHI_LEN]) -> Option<[f64; PHI_LEN]> {
    for col in 0..PHI_LEN {
        let pivot = (col..PHI_LEN)
            .max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))
            .expect("non-empty range");
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        let upper = a[col];
        for row in (col + 1)..PHI_LEN {
            let f = a[row][col] / upper[col];
            for (dst, src) in a[row][col..].iter_mut().zip(&upper[col..]) {
                *dst -= f * src;
            }
            b[row] -= f * b[col];
        }
    }
    let mut x = [0.0; PHI_LEN];
    for col in (0..PHI_LEN).rev() {
        let mut acc = b[col];
        for k in (col + 1)..PHI_LEN {
            acc -= a[col][k] * x[k];
        }
        x[col] = acc / a[col][col];
    }
    Some(x)
}

/// The full affine candidate: ridge-regularized normal equations over
/// every φ row. `None` when the system is singular even with the ridge.
fn fit_affine(cases: &[FitCase]) -> Option<CostCorrection> {
    if cases.len() < PHI_LEN {
        return None;
    }
    let mut xtx = [[0.0f64; PHI_LEN]; PHI_LEN];
    let mut xty = [0.0f64; PHI_LEN];
    for r in cases {
        let p = phi(r.model_us, &r.features);
        for i in 0..PHI_LEN {
            for j in 0..PHI_LEN {
                xtx[i][j] += p[i] * p[j];
            }
            xty[i] += p[i] * r.actual_us;
        }
    }
    // Ridge scaled to the diagonal so conditioning is unit-free.
    let scale = (0..PHI_LEN).map(|i| xtx[i][i]).fold(0.0f64, f64::max).max(1.0);
    for (i, row) in xtx.iter_mut().enumerate() {
        row[i] += 1e-8 * scale;
    }
    solve(xtx, xty).map(|coeffs| CostCorrection { coeffs })
}

/// The scale-only candidate: `actual ≈ s · model` with
/// `s = Σ model·actual / Σ model²`.
fn fit_scale(cases: &[FitCase]) -> Option<CostCorrection> {
    let num: f64 = cases.iter().map(|r| r.model_us * r.actual_us).sum();
    let den: f64 = cases.iter().map(|r| r.model_us * r.model_us).sum();
    if den <= 0.0 || !num.is_finite() {
        return None;
    }
    let mut coeffs = [0.0; PHI_LEN];
    coeffs[1] = num / den;
    Some(CostCorrection { coeffs })
}

/// Fit one architecture's rows: best of identity / scale / affine by
/// in-sample mean absolute error (ties keep the simpler model).
pub fn fit_arch(arch: &str, cases: &[FitCase]) -> ArchFit {
    let identity = CostCorrection::identity();
    let err_before = mean_abs_err(cases, &identity);
    let mut best = (err_before, "identity", identity);
    for (kind, cand) in
        [("scale", fit_scale(cases)), ("affine", fit_affine(cases))]
    {
        if let Some(c) = cand {
            let err = mean_abs_err(cases, &c);
            if err.is_finite() && err < best.0 {
                best = (err, kind, c);
            }
        }
    }
    ArchFit {
        arch: arch.to_string(),
        cases: cases.len(),
        err_before_us: err_before,
        err_after_us: best.0,
        kind: best.1,
        correction: best.2,
    }
}

/// Group decisions by architecture (sorted by name for determinism) and
/// fit each group.
pub fn fit_decisions(decisions: &[PlacementDecision]) -> FitSummary {
    let mut by_arch: BTreeMap<&str, Vec<FitCase>> = BTreeMap::new();
    for d in decisions {
        by_arch.entry(d.arch).or_default().push(FitCase::from_decision(d));
    }
    let arches: Vec<ArchFit> =
        by_arch.iter().map(|(arch, cases)| fit_arch(arch, cases)).collect();
    FitSummary { cases: decisions.len(), arches }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(f: impl Fn(f64, &[f64]) -> f64) -> Vec<FitCase> {
        let mut rows = Vec::new();
        for i in 0..40 {
            let model = 5.0 + 3.0 * i as f64;
            let features = vec![
                16.0 + i as f64,
                24.0 + 2.0 * i as f64,
                32.0 + (i % 7) as f64,
                1.0 + (i % 4) as f64,
            ];
            let actual = f(model, &features);
            rows.push(FitCase { model_us: model, features, actual_us: actual });
        }
        rows
    }

    #[test]
    fn exact_affine_relation_is_recovered() {
        let cases = rows(|m, f| 2.0 + 1.3 * m + 0.01 * f[0] - 0.02 * f[1] + 0.005 * f[3]);
        let fit = fit_arch("X", &cases);
        assert_eq!(fit.kind, "affine");
        // The ridge term biases the exact solution by ~1e-5 µs.
        assert!(fit.err_after_us < 1e-3, "err {}", fit.err_after_us);
        assert!(fit.err_before_us > 1.0);
    }

    #[test]
    fn pure_scale_drift_is_fixed_by_any_candidate() {
        let cases = rows(|m, _| 1.17 * m);
        let fit = fit_arch("X", &cases);
        assert!(fit.err_after_us < 1e-6, "err {}", fit.err_after_us);
        assert!((fit.correction.apply(100.0, &[0.0; 4]) - 117.0).abs() < 1e-4);
    }

    #[test]
    fn perfect_model_keeps_the_identity() {
        let cases = rows(|m, _| m);
        let fit = fit_arch("X", &cases);
        assert_eq!(fit.kind, "identity");
        assert!(fit.correction.is_identity());
        assert_eq!(fit.err_before_us, 0.0);
    }

    #[test]
    fn too_few_rows_fall_back_without_panicking() {
        let cases = rows(|m, _| 1.5 * m);
        let fit = fit_arch("X", &cases[..2]);
        // Affine needs >= PHI_LEN rows; scale still nails pure drift.
        assert!(fit.err_after_us < 1e-9);
        assert_eq!(fit.kind, "scale");
    }

    #[test]
    fn summary_groups_by_arch_and_weights_means() {
        use ctb_matrix::GemmShape;
        use std::sync::Arc;
        let shapes: Arc<[GemmShape]> = vec![GemmShape::new(32, 32, 64)].into();
        let mk = |arch: &'static str, model: f64, actual: f64, id: u64| PlacementDecision {
            id,
            device: 0,
            arch,
            shapes: Arc::clone(&shapes),
            model_us: model,
            predicted_us: model,
            actual_us: actual,
        };
        let decisions: Vec<_> = (0..12)
            .map(|i| mk("A", 10.0 + i as f64, 1.2 * (10.0 + i as f64), i))
            .chain((0..12).map(|i| mk("B", 10.0 + i as f64, 10.0 + i as f64, 100 + i)))
            .collect();
        let s = fit_decisions(&decisions);
        assert_eq!(s.cases, 24);
        assert_eq!(s.arches.len(), 2);
        assert_eq!(s.arches[0].arch, "A");
        assert!(s.mean_err_after_us() < s.mean_err_before_us());
        let set = s.correction_set();
        assert!(set.get("A").is_some(), "drifted arch gets a correction");
        assert!(set.get("B").is_none(), "perfect arch stays pass-through");
    }
}

//! Trace-labeled retraining of the §5 batching-policy selector.
//!
//! `OnlineSelector::train_default` learns from a synthetic shape corpus
//! labeled by the *uncorrected* simulator. A deployment's trace tells us
//! two things that corpus cannot: which shape signatures the fleet
//! actually serves, and — once the offline fit produced a
//! [`CorrectionSet`] — what each heuristic really costs on the drifted
//! hardware. The retrainer converts the recorded decisions into
//! ctb-forest training cases (one per distinct signature, labeled by the
//! corrected cost model) and refits the forest.
//!
//! Acceptance is gated on measured placement error: the candidate's mean
//! selection regret (corrected-µs lost versus always picking the better
//! heuristic, over the trace's signatures) must not exceed the incumbent
//! baseline's. A retrained forest that places worse than what is already
//! deployed is discarded, so retraining can only reduce placement error
//! — the Fig 8/9 crossover goldens stay authoritative for the synthetic
//! corpus because the pretrained artifact is untouched.

use ctb_cluster::PlacementDecision;
use ctb_core::selector::{features, simulated_us, OnlineSelector, CLASSES};
use ctb_forest::{ForestConfig, RandomForest};
use ctb_gpu_specs::{ArchSpec, Thresholds};
use ctb_matrix::GemmShape;
use ctb_sim::CorrectionSet;
use std::collections::BTreeSet;

/// Selector features per sample (§5 quadruple: m̄, n̄, k̄, B).
const N_FEATURES: usize = 4;

/// Fewer distinct signatures than this and a forest would memorize the
/// trace rather than learn from it.
pub const MIN_SIGNATURES: usize = 8;

/// Structural summary of a forest, for introspection reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForestShape {
    pub trees: usize,
    pub total_nodes: usize,
    pub max_depth: usize,
    /// `depth_histogram[d]` = leaves at depth `d`, across all trees.
    pub depth_histogram: Vec<usize>,
    /// Internal-node split counts per selector feature (m̄, n̄, k̄, B).
    pub feature_splits: Vec<usize>,
}

/// Summarize `forest`'s structure.
pub fn forest_shape(forest: &RandomForest) -> ForestShape {
    ForestShape {
        trees: forest.n_trees(),
        total_nodes: forest.total_nodes(),
        max_depth: forest.max_depth(),
        depth_histogram: forest.depth_histogram(),
        feature_splits: forest.feature_split_counts(N_FEATURES),
    }
}

/// What one retraining pass measured and produced.
#[derive(Debug, Clone, PartialEq)]
pub struct RetrainReport {
    /// Distinct shape signatures extracted from the trace.
    pub signatures: usize,
    /// Signatures whose faster-heuristic label changed once corrections
    /// were applied — the drift signal the synthetic corpus missed.
    pub label_flips: usize,
    /// Mean corrected-µs regret of the incumbent baseline selector.
    pub regret_before_us: f64,
    /// Mean corrected-µs regret of the retrained candidate.
    pub regret_after_us: f64,
    pub shape_before: ForestShape,
    pub shape_after: ForestShape,
}

/// Corrected simulated time of `shapes` under each class, in
/// [`CLASSES`] order.
fn corrected_times(
    arch: &ArchSpec,
    thresholds: &Thresholds,
    corrections: &CorrectionSet,
    shapes: &[GemmShape],
) -> [f64; 2] {
    let f = features(shapes);
    let t = |h| corrections.correct(arch.name, simulated_us(arch, thresholds, shapes, h), &f);
    [t(CLASSES[0]), t(CLASSES[1])]
}

/// Mean regret of `selector` over `sigs`: corrected-µs paid beyond the
/// better heuristic, averaged per signature.
fn mean_regret_us(selector: &OnlineSelector, sigs: &[(Vec<GemmShape>, [f64; 2])]) -> f64 {
    if sigs.is_empty() {
        return 0.0;
    }
    sigs.iter()
        .map(|(shapes, t)| {
            let chosen = CLASSES.iter().position(|&h| h == selector.select_shapes(shapes));
            t[chosen.expect("selector picks a known class")] - t[0].min(t[1])
        })
        .sum::<f64>()
        / sigs.len() as f64
}

/// Retrain the selector on the trace's signatures, labeled by the
/// corrected cost model. Returns `None` when the trace is too small
/// ([`MIN_SIGNATURES`]) or the candidate's measured regret exceeds the
/// baseline's — the caller then keeps `baseline`.
pub fn retrain_selector(
    arch: &ArchSpec,
    thresholds: &Thresholds,
    decisions: &[PlacementDecision],
    corrections: &CorrectionSet,
    baseline: &OnlineSelector,
) -> Option<(OnlineSelector, RetrainReport)> {
    // Distinct signatures, deterministically ordered by their (m, n, k)
    // triples.
    let distinct: BTreeSet<Vec<(usize, usize, usize)>> = decisions
        .iter()
        .map(|d| d.shapes.iter().map(|s| (s.m, s.n, s.k)).collect())
        .collect();
    if distinct.len() < MIN_SIGNATURES {
        return None;
    }
    let sigs: Vec<(Vec<GemmShape>, [f64; 2])> = distinct
        .into_iter()
        .map(|sig| {
            let shapes: Vec<GemmShape> =
                sig.into_iter().map(|(m, n, k)| GemmShape::new(m, n, k)).collect();
            let t = corrected_times(arch, thresholds, corrections, &shapes);
            (shapes, t)
        })
        .collect();

    let identity = CorrectionSet::identity();
    let mut samples = Vec::with_capacity(sigs.len());
    let mut labels = Vec::with_capacity(sigs.len());
    let mut label_flips = 0usize;
    for (shapes, t) in &sigs {
        samples.push(features(shapes));
        let label = usize::from(t[1] < t[0]);
        let raw = corrected_times(arch, thresholds, &identity, shapes);
        if label != usize::from(raw[1] < raw[0]) {
            label_flips += 1;
        }
        labels.push(label);
    }
    let forest = RandomForest::fit(&samples, &labels, CLASSES.len(), &ForestConfig::default());
    let candidate = OnlineSelector::from_forest(forest);

    let regret_before_us = mean_regret_us(baseline, &sigs);
    let regret_after_us = mean_regret_us(&candidate, &sigs);
    if regret_after_us > regret_before_us {
        return None;
    }
    let report = RetrainReport {
        signatures: sigs.len(),
        label_flips,
        regret_before_us,
        regret_after_us,
        shape_before: forest_shape(baseline.forest()),
        shape_after: forest_shape(candidate.forest()),
    };
    Some((candidate, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctb_matrix::gen;
    use std::sync::Arc;

    fn setup() -> (ArchSpec, Thresholds) {
        let arch = ArchSpec::volta_v100();
        let th = Thresholds::for_arch(&arch);
        (arch, th)
    }

    fn decisions_from_cases(cases: &[Vec<GemmShape>]) -> Vec<PlacementDecision> {
        cases
            .iter()
            .enumerate()
            .map(|(i, shapes)| PlacementDecision {
                id: i as u64,
                device: 0,
                arch: "Tesla V100",
                shapes: Arc::from(shapes.as_slice()),
                model_us: 10.0,
                predicted_us: 10.0,
                actual_us: 11.0,
            })
            .collect()
    }

    #[test]
    fn forest_shape_reports_structure() {
        let (arch, th) = setup();
        let sel = OnlineSelector::train(&arch, &th, &gen::random_cases(24, 3));
        let shape = forest_shape(sel.forest());
        assert_eq!(shape.trees, sel.forest().n_trees());
        assert!(shape.total_nodes >= shape.trees, "each tree has >= 1 node");
        assert_eq!(shape.depth_histogram.len(), shape.max_depth + 1);
        assert_eq!(shape.feature_splits.len(), N_FEATURES);
        let leaves: usize = shape.depth_histogram.iter().sum();
        assert!(leaves > 0);
    }

    #[test]
    fn tiny_traces_are_refused() {
        let (arch, th) = setup();
        let baseline = OnlineSelector::pretrained_v100();
        let decisions = decisions_from_cases(&gen::random_cases(MIN_SIGNATURES - 1, 5));
        assert!(retrain_selector(
            &arch,
            &th,
            &decisions,
            &CorrectionSet::identity(),
            &baseline
        )
        .is_none());
    }

    #[test]
    fn retrained_selector_never_measures_worse_than_baseline() {
        let (arch, th) = setup();
        let baseline = OnlineSelector::pretrained_v100();
        let cases = gen::random_cases(40, 11);
        let decisions = decisions_from_cases(&cases);
        let corrections = CorrectionSet::identity();
        if let Some((_, report)) =
            retrain_selector(&arch, &th, &decisions, &corrections, &baseline)
        {
            assert_eq!(report.signatures, 40);
            assert_eq!(report.label_flips, 0, "identity corrections flip no labels");
            assert!(report.regret_after_us <= report.regret_before_us);
            assert_eq!(report.shape_after.feature_splits.len(), N_FEATURES);
        } else {
            // Gated out: only legal when the candidate measured worse,
            // which the acceptance test covers; nothing more to assert.
        }
    }

    #[test]
    fn retraining_is_deterministic() {
        let (arch, th) = setup();
        let baseline = OnlineSelector::pretrained_v100();
        let decisions = decisions_from_cases(&gen::random_cases(30, 13));
        let corrections = CorrectionSet::identity();
        let a = retrain_selector(&arch, &th, &decisions, &corrections, &baseline);
        let b = retrain_selector(&arch, &th, &decisions, &corrections, &baseline);
        assert_eq!(a.is_some(), b.is_some());
        if let (Some((sa, ra)), Some((sb, rb))) = (a, b) {
            assert_eq!(ra, rb);
            assert_eq!(
                ctb_forest::codec::encode(sa.forest()),
                ctb_forest::codec::encode(sb.forest())
            );
        }
    }
}

//! Trace ingestion: from a recorded engine run to a validated dataset.
//!
//! A calibration recording is an [`EngineReport`] whose
//! `decisions` log was enabled ([`EventCluster::record_decisions`])
//! while a ground-truth pool supplied real execution times. Ingestion
//! validates the log (finite, positive times; non-empty) and — when the
//! run was instrumented — reconciles it against the ctb-obs trace: the
//! audited plan/exec span counts must be consistent with the number of
//! decisions recorded, so a truncated or mixed-up trace is rejected
//! before it can poison a fit.
//!
//! [`EventCluster::record_decisions`]: ctb_cluster::EventCluster::record_decisions

use ctb_cluster::{EngineReport, PlacementDecision};
use ctb_obs::audit::TraceCounts;
use ctb_obs::SpanKind;
use std::fmt;

/// Why a recording could not be ingested.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CalibError {
    /// The recording holds no decisions (log not enabled, or no
    /// requests completed).
    EmptyTrace,
    /// A decision carries a non-finite or non-positive time.
    BadDecision { id: u64, why: String },
    /// The obs trace disagrees with the decision log.
    TraceMismatch(String),
}

impl fmt::Display for CalibError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CalibError::EmptyTrace => {
                write!(f, "recording holds no placement decisions to calibrate against")
            }
            CalibError::BadDecision { id, why } => {
                write!(f, "decision {id} is unusable: {why}")
            }
            CalibError::TraceMismatch(why) => write!(f, "obs trace mismatch: {why}"),
        }
    }
}

impl std::error::Error for CalibError {}

/// A validated calibration dataset.
#[derive(Debug, Clone)]
pub struct TraceDataset {
    pub decisions: Vec<PlacementDecision>,
    /// Distinct architecture names, sorted.
    pub arches: Vec<&'static str>,
}

impl TraceDataset {
    /// Validate `report`'s decision log; with `counts` (the
    /// [`TraceAudit`](ctb_obs::TraceAudit) tally of the run's obs
    /// trace) also reconcile it against the recorded spans.
    pub fn from_recording(
        report: &EngineReport,
        counts: Option<&TraceCounts>,
    ) -> Result<TraceDataset, CalibError> {
        TraceDataset::from_decisions(&report.decisions, report.witnesses, counts)
    }

    /// [`TraceDataset::from_recording`] over a bare decision log plus
    /// the run's witness count.
    pub fn from_decisions(
        decisions: &[PlacementDecision],
        witnesses: usize,
        counts: Option<&TraceCounts>,
    ) -> Result<TraceDataset, CalibError> {
        if decisions.is_empty() {
            return Err(CalibError::EmptyTrace);
        }
        for d in decisions {
            for (what, v) in
                [("model_us", d.model_us), ("predicted_us", d.predicted_us), ("actual_us", d.actual_us)]
            {
                if !v.is_finite() || v <= 0.0 {
                    return Err(CalibError::BadDecision {
                        id: d.id,
                        why: format!("{what} = {v}"),
                    });
                }
            }
        }
        if let Some(c) = counts {
            // Every decision is one completed placement; routed counts
            // initial placements plus re-routes, so it bounds the log.
            if c.routed < decisions.len() {
                return Err(CalibError::TraceMismatch(format!(
                    "{} decisions recorded but the trace routed only {} batches",
                    decisions.len(),
                    c.routed
                )));
            }
            // An instrumented planning phase leaves Plan spans; a trace
            // with none cannot belong to this run.
            if c.span_count(SpanKind::Plan) == 0 {
                return Err(CalibError::TraceMismatch(
                    "trace holds no Plan spans; was it recorded from this run?".into(),
                ));
            }
            // Witnesses execute for real inside an Exec span; a run
            // configured with witnesses must show them.
            if witnesses > 0 && c.span_count(SpanKind::Exec) < witnesses {
                return Err(CalibError::TraceMismatch(format!(
                    "{witnesses} witnesses executed but the trace closed only {} Exec spans",
                    c.span_count(SpanKind::Exec)
                )));
            }
        }
        let mut arches: Vec<&'static str> = decisions.iter().map(|d| d.arch).collect();
        arches.sort_unstable();
        arches.dedup();
        Ok(TraceDataset { decisions: decisions.to_vec(), arches })
    }

    /// Mean |predicted − actual| over the recording, µs — the number
    /// the calibration pass is trying to shrink.
    pub fn mean_abs_err_us(&self) -> f64 {
        if self.decisions.is_empty() {
            return 0.0;
        }
        self.decisions.iter().map(|d| d.error_us().abs()).sum::<f64>()
            / self.decisions.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decision(id: u64, actual: f64) -> PlacementDecision {
        use ctb_matrix::GemmShape;
        PlacementDecision {
            id,
            device: 0,
            arch: "Tesla V100",
            shapes: vec![GemmShape::new(8, 8, 8)].into(),
            model_us: 10.0,
            predicted_us: 10.0,
            actual_us: actual,
        }
    }

    #[test]
    fn empty_log_is_rejected() {
        match TraceDataset::from_decisions(&[], 0, None) {
            Err(CalibError::EmptyTrace) => {}
            other => panic!("expected EmptyTrace, got {other:?}"),
        }
    }

    #[test]
    fn non_finite_times_are_rejected_with_the_offender() {
        let log = vec![decision(1, 12.0), decision(2, f64::NAN)];
        match TraceDataset::from_decisions(&log, 0, None) {
            Err(CalibError::BadDecision { id: 2, .. }) => {}
            other => panic!("expected BadDecision for id 2, got {other:?}"),
        }
    }

    #[test]
    fn valid_log_ingests_and_summarizes() {
        let log = vec![decision(1, 12.0), decision(2, 9.0)];
        let ds = TraceDataset::from_decisions(&log, 0, None).expect("ingests");
        assert_eq!(ds.arches, vec!["Tesla V100"]);
        assert_eq!(ds.mean_abs_err_us(), 1.5);
    }

    #[test]
    fn trace_counts_must_cover_the_decision_log() {
        let log = vec![decision(1, 12.0), decision(2, 9.0)];
        let counts = TraceCounts { routed: 1, ..TraceCounts::default() };
        match TraceDataset::from_decisions(&log, 0, Some(&counts)) {
            Err(CalibError::TraceMismatch(_)) => {}
            other => panic!("expected TraceMismatch, got {other:?}"),
        }
    }
}

//! Deterministic, seedable fault injection for the serving layer.
//!
//! Production serving code earns its resilience claims only if every
//! failure path can be *driven on demand*: a chaos test that merely
//! hopes for a panic proves nothing. [`FaultInjector`] is the seam the
//! server consults at each failure-capable site — admission, batch
//! expiry, planning, coordinated execution, the degraded baseline path,
//! and worker pacing — and it decides *deterministically* (a counter
//! per site hashed with the schedule seed) whether to inject a fault
//! there.
//!
//! Two properties matter:
//!
//! 1. **Zero cost when absent.** The server stores an
//!    `Option<Arc<FaultInjector>>` that defaults to `None`; every site
//!    is a single `Option` discriminant test on the hot path, and no
//!    counter or hash is ever touched. `reproduce serve` throughput
//!    with the seam compiled in is tracked in `BENCH_serve.json`.
//! 2. **Accountable when present.** Every injected fault is recorded in
//!    the injector's [`FaultLog`], so the chaos suite can assert that
//!    the server's [`crate::ServeStats`] counters reconcile *exactly*
//!    with what was injected — nothing vanishes untracked.
//!
//! Rates are expressed in per-mille (0..=1000). Decisions are a pure
//! function of `(seed, site, n-th draw at that site)`, so a schedule is
//! reproducible run-to-run for a fixed request order, and the *counts*
//! asserted by the chaos suite are meaningful under any interleaving
//! because the log records what actually fired.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

/// Panic payload marker used by injected panics, so test harnesses can
/// distinguish scheduled chaos from a genuine executor bug (e.g. to
/// silence the default panic hook for injected faults only).
pub const INJECTED_PANIC_MSG: &str = "ctb-serve injected fault: executor panic";

/// As [`INJECTED_PANIC_MSG`], for the degraded baseline path.
pub const INJECTED_DEGRADED_PANIC_MSG: &str = "ctb-serve injected fault: degraded-path panic";

/// Human-readable panic payload (shared by the server and the cluster
/// layer when surfacing a caught panic as a typed error).
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The failure-capable sites the server consults the injector at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum FaultSite {
    /// `try_submit` is forced to report a saturated admission queue.
    AdmitReject = 0,
    /// A deadline-carrying request is expired at batch formation.
    Expire = 1,
    /// `Session::plan` is replaced by a typed planning error.
    PlanFail = 2,
    /// The coordinated executor panics mid-batch.
    ExecPanic = 3,
    /// The degraded (baseline) executor panics.
    DegradedPanic = 4,
    /// The worker stalls for `slow_delay` before planning.
    SlowWorker = 5,
}

const N_SITES: usize = 6;

/// One chaos schedule: a seed plus a per-site injection rate.
#[derive(Debug, Clone)]
pub struct FaultConfig {
    /// Schedule seed; two injectors with equal configs draw identical
    /// per-site decision sequences.
    pub seed: u64,
    /// Forced `QueueFull` rate on `try_submit`, per mille.
    pub admit_reject_per_mille: u32,
    /// Forced expiry rate for deadline-carrying requests, per mille.
    pub expire_per_mille: u32,
    /// Planning-failure rate, per mille.
    pub plan_fail_per_mille: u32,
    /// Coordinated-executor panic rate, per mille.
    pub exec_panic_per_mille: u32,
    /// Degraded-path (baseline) panic rate, per mille.
    pub degraded_panic_per_mille: u32,
    /// Worker-stall rate, per mille.
    pub slow_worker_per_mille: u32,
    /// Stall length when a `SlowWorker` fault fires.
    pub slow_delay: Duration,
}

impl FaultConfig {
    /// A quiet schedule (all rates zero) with the given seed; chain the
    /// setters to arm individual fault classes.
    pub fn new(seed: u64) -> Self {
        FaultConfig {
            seed,
            admit_reject_per_mille: 0,
            expire_per_mille: 0,
            plan_fail_per_mille: 0,
            exec_panic_per_mille: 0,
            degraded_panic_per_mille: 0,
            slow_worker_per_mille: 0,
            slow_delay: Duration::from_micros(500),
        }
    }

    pub fn admit_reject(mut self, per_mille: u32) -> Self {
        self.admit_reject_per_mille = per_mille;
        self
    }

    pub fn expire(mut self, per_mille: u32) -> Self {
        self.expire_per_mille = per_mille;
        self
    }

    pub fn plan_fail(mut self, per_mille: u32) -> Self {
        self.plan_fail_per_mille = per_mille;
        self
    }

    pub fn exec_panic(mut self, per_mille: u32) -> Self {
        self.exec_panic_per_mille = per_mille;
        self
    }

    pub fn degraded_panic(mut self, per_mille: u32) -> Self {
        self.degraded_panic_per_mille = per_mille;
        self
    }

    pub fn slow_worker(mut self, per_mille: u32, delay: Duration) -> Self {
        self.slow_worker_per_mille = per_mille;
        self.slow_delay = delay;
        self
    }

    fn rate(&self, site: FaultSite) -> u32 {
        match site {
            FaultSite::AdmitReject => self.admit_reject_per_mille,
            FaultSite::Expire => self.expire_per_mille,
            FaultSite::PlanFail => self.plan_fail_per_mille,
            FaultSite::ExecPanic => self.exec_panic_per_mille,
            FaultSite::DegradedPanic => self.degraded_panic_per_mille,
            FaultSite::SlowWorker => self.slow_worker_per_mille,
        }
    }
}

/// Point-in-time record of every fault the injector has fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultLog {
    pub admit_rejects: usize,
    pub expires: usize,
    pub plan_fails: usize,
    pub exec_panics: usize,
    pub degraded_panics: usize,
    pub slow_workers: usize,
}

impl FaultLog {
    /// Total faults fired across every site.
    pub fn total(&self) -> usize {
        self.admit_rejects
            + self.expires
            + self.plan_fails
            + self.exec_panics
            + self.degraded_panics
            + self.slow_workers
    }
}

/// The deterministic injector. Share it (`Arc`) between the server and
/// the chaos harness; the harness reads the log, the server rolls.
#[derive(Debug)]
pub struct FaultInjector {
    cfg: FaultConfig,
    draws: [AtomicUsize; N_SITES],
    fired: [AtomicUsize; N_SITES],
}

/// SplitMix64 output mixer — a full-avalanche hash of the draw index.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultInjector {
    pub fn new(cfg: FaultConfig) -> Self {
        FaultInjector {
            cfg,
            draws: Default::default(),
            fired: Default::default(),
        }
    }

    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Draw the next decision at `site`: `true` means inject. The n-th
    /// draw at a site is a pure function of `(seed, site, n)`.
    pub fn roll(&self, site: FaultSite) -> bool {
        let rate = self.cfg.rate(site);
        if rate == 0 {
            return false;
        }
        let n = self.draws[site as usize].fetch_add(1, Ordering::Relaxed) as u64;
        let h = mix(self.cfg.seed ^ ((site as u64 + 1) << 56) ^ n.wrapping_mul(0xD6E8_FEB8_6659_FD93));
        let hit = h % 1000 < rate as u64;
        if hit {
            self.fired[site as usize].fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Roll the slow-worker site, returning the stall to apply.
    pub fn roll_slow(&self) -> Option<Duration> {
        if self.roll(FaultSite::SlowWorker) {
            Some(self.cfg.slow_delay)
        } else {
            None
        }
    }

    /// Snapshot of everything fired so far.
    pub fn log(&self) -> FaultLog {
        let f = |s: FaultSite| self.fired[s as usize].load(Ordering::Relaxed);
        FaultLog {
            admit_rejects: f(FaultSite::AdmitReject),
            expires: f(FaultSite::Expire),
            plan_fails: f(FaultSite::PlanFail),
            exec_panics: f(FaultSite::ExecPanic),
            degraded_panics: f(FaultSite::DegradedPanic),
            slow_workers: f(FaultSite::SlowWorker),
        }
    }

    /// Total decisions drawn at `site` (fired or not).
    pub fn draws(&self, site: FaultSite) -> usize {
        self.draws[site as usize].load(Ordering::Relaxed)
    }

    /// The injector's full RNG state: per-site `(draws, fired)`
    /// cursors in [`FaultSite`] discriminant order. Because the n-th
    /// decision at a site is a pure function of `(seed, site, n)`,
    /// these cursors (plus the config) are *all* the state there is —
    /// an injector rebuilt by [`FaultInjector::with_state`] continues
    /// the exact decision stream the original would have drawn next.
    pub fn state(&self) -> ([usize; N_SITES], [usize; N_SITES]) {
        let ld = |a: &[AtomicUsize; N_SITES]| {
            let mut out = [0usize; N_SITES];
            for (o, v) in out.iter_mut().zip(a.iter()) {
                *o = v.load(Ordering::Relaxed);
            }
            out
        };
        (ld(&self.draws), ld(&self.fired))
    }

    /// Rebuild an injector mid-stream from [`FaultInjector::state`]
    /// cursors (savestate restore).
    pub fn with_state(cfg: FaultConfig, draws: [usize; N_SITES], fired: [usize; N_SITES]) -> Self {
        let inj = FaultInjector::new(cfg);
        for (slot, v) in inj.draws.iter().zip(draws) {
            slot.store(v, Ordering::Relaxed);
        }
        for (slot, v) in inj.fired.iter().zip(fired) {
            slot.store(v, Ordering::Relaxed);
        }
        inj
    }
}

/// Number of [`FaultSite`] variants — the length of the cursor arrays
/// exchanged by [`FaultInjector::state`] / [`FaultInjector::with_state`].
pub const FAULT_SITES: usize = N_SITES;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rate_never_fires_and_never_counts_draws() {
        let inj = FaultInjector::new(FaultConfig::new(7));
        for _ in 0..100 {
            assert!(!inj.roll(FaultSite::ExecPanic));
        }
        assert_eq!(inj.log(), FaultLog::default());
        assert_eq!(inj.draws(FaultSite::ExecPanic), 0, "quiet sites skip the counter");
    }

    #[test]
    fn full_rate_always_fires() {
        let inj = FaultInjector::new(FaultConfig::new(1).plan_fail(1000));
        for _ in 0..50 {
            assert!(inj.roll(FaultSite::PlanFail));
        }
        assert_eq!(inj.log().plan_fails, 50);
    }

    #[test]
    fn same_seed_same_decision_sequence() {
        let a = FaultInjector::new(FaultConfig::new(42).exec_panic(250));
        let b = FaultInjector::new(FaultConfig::new(42).exec_panic(250));
        let sa: Vec<bool> = (0..200).map(|_| a.roll(FaultSite::ExecPanic)).collect();
        let sb: Vec<bool> = (0..200).map(|_| b.roll(FaultSite::ExecPanic)).collect();
        assert_eq!(sa, sb);
        assert!(sa.iter().any(|&x| x) && sa.iter().any(|&x| !x), "rate 250 mixes hits and misses");
    }

    #[test]
    fn sites_draw_independent_sequences() {
        let inj = FaultInjector::new(FaultConfig::new(9).plan_fail(500).exec_panic(500));
        let plans: Vec<bool> = (0..64).map(|_| inj.roll(FaultSite::PlanFail)).collect();
        let execs: Vec<bool> = (0..64).map(|_| inj.roll(FaultSite::ExecPanic)).collect();
        assert_ne!(plans, execs, "per-site streams are decorrelated");
        let log = inj.log();
        assert_eq!(log.plan_fails, plans.iter().filter(|&&x| x).count());
        assert_eq!(log.exec_panics, execs.iter().filter(|&&x| x).count());
        assert_eq!(log.total(), log.plan_fails + log.exec_panics);
    }

    #[test]
    fn rates_are_roughly_respected() {
        let inj = FaultInjector::new(FaultConfig::new(3).expire(100));
        let fired = (0..2000).filter(|_| inj.roll(FaultSite::Expire)).count();
        // 10% nominal; generous bounds, the stream is only pseudo-random.
        assert!((100..=320).contains(&fired), "got {fired} of 2000 at 10%");
    }

    #[test]
    fn restored_cursors_continue_the_exact_decision_stream() {
        let cfg = FaultConfig::new(0xC0FFEE).exec_panic(300).plan_fail(200);
        let original = FaultInjector::new(cfg.clone());
        // Burn an uneven prefix of draws across two sites.
        for _ in 0..37 {
            original.roll(FaultSite::ExecPanic);
        }
        for _ in 0..11 {
            original.roll(FaultSite::PlanFail);
        }
        let (draws, fired) = original.state();
        let restored = FaultInjector::with_state(cfg, draws, fired);
        assert_eq!(restored.log(), original.log(), "fired counts carry over");
        // Both continue with byte-identical decision streams.
        for _ in 0..100 {
            assert_eq!(
                restored.roll(FaultSite::ExecPanic),
                original.roll(FaultSite::ExecPanic)
            );
            assert_eq!(
                restored.roll(FaultSite::PlanFail),
                original.roll(FaultSite::PlanFail)
            );
        }
        assert_eq!(restored.log(), original.log());
        assert_eq!(restored.state(), original.state());
    }

    #[test]
    fn roll_slow_returns_the_configured_delay() {
        let d = Duration::from_millis(3);
        let inj = FaultInjector::new(FaultConfig::new(5).slow_worker(1000, d));
        assert_eq!(inj.roll_slow(), Some(d));
        let quiet = FaultInjector::new(FaultConfig::new(5));
        assert_eq!(quiet.roll_slow(), None);
    }
}

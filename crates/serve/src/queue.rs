//! Bounded MPSC admission queue with blocking backpressure.
//!
//! `std::sync::mpsc` channels are unbounded, so admission control is
//! built directly on a `Mutex<VecDeque>` + two condvars: producers block
//! in [`BoundedQueue::push`] while the queue is at capacity (that *is*
//! the backpressure contract — an accepted request is never dropped),
//! and the single consumer parks in [`BoundedQueue::pop`] until work or
//! close arrives.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::Instant;

struct State<T> {
    q: VecDeque<T>,
    closed: bool,
}

/// A deadline-bounded pop ran out of time while the queue stayed empty
/// (and open) — distinct from `Ok(None)`, which means closed + drained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PopTimedOut;

/// What a push attempt observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// Non-blocking push found the queue at capacity.
    Full,
    /// The queue no longer accepts items.
    Closed,
}

pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    capacity: usize,
    not_empty: Condvar,
    not_full: Condvar,
}

impl<T> BoundedQueue<T> {
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            state: Mutex::new(State { q: VecDeque::new(), closed: false }),
            capacity: capacity.max(1),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Blocking push: waits while the queue is at capacity. Fails only
    /// when the queue is closed (before or during the wait).
    pub fn push(&self, item: T) -> Result<(), PushError> {
        let mut st = self.lock();
        loop {
            if st.closed {
                return Err(PushError::Closed);
            }
            if st.q.len() < self.capacity {
                st.q.push_back(item);
                drop(st);
                self.not_empty.notify_one();
                return Ok(());
            }
            st = self.not_full.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Non-blocking push. On failure the item is handed back so the
    /// caller can route it elsewhere (the serving layer's no-drop
    /// guarantee depends on this: a retry re-pushed against a closed
    /// queue must still be resolvable inline).
    ///
    /// Saturation is checked *before* the closed flag: a push that
    /// finds the queue at capacity reports `Full` even when a `close`
    /// raced in just ahead of it. The queue being full is the
    /// backpressure signal the saturation metrics are built on —
    /// attributing it to shutdown instead would silently drop those
    /// rejects from the backpressure accounting (the old behaviour;
    /// see `closed_full_queue_reports_full_not_closed`). `Closed` is
    /// reported only when a slot would otherwise have been free.
    pub fn try_push(&self, item: T) -> Result<(), (PushError, T)> {
        let mut st = self.lock();
        if st.q.len() >= self.capacity {
            return Err((PushError::Full, item));
        }
        if st.closed {
            return Err((PushError::Closed, item));
        }
        st.q.push_back(item);
        drop(st);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Submission batching: move items from the front of `buf` into the
    /// queue while there is capacity, under a single lock acquisition.
    /// Returns how many were pushed plus the blocker that stopped the
    /// flush (`None` when `buf` was fully drained). Same error priority
    /// as [`BoundedQueue::try_push`]: `Full` when the queue is at
    /// capacity (even if also closed), `Closed` otherwise.
    pub fn try_push_many(&self, buf: &mut VecDeque<T>) -> (usize, Option<PushError>) {
        if buf.is_empty() {
            return (0, None);
        }
        let mut pushed = 0usize;
        let blocker;
        let mut st = self.lock();
        loop {
            if st.q.len() >= self.capacity {
                blocker = Some(PushError::Full);
                break;
            }
            if st.closed {
                blocker = Some(PushError::Closed);
                break;
            }
            match buf.pop_front() {
                Some(item) => {
                    st.q.push_back(item);
                    pushed += 1;
                }
                None => {
                    blocker = None;
                    break;
                }
            }
        }
        drop(st);
        if pushed > 0 {
            self.not_empty.notify_all();
        }
        (pushed, blocker)
    }

    /// Park until the queue has free capacity or is closed. Returns
    /// `true` when a slot was free and the queue still open at wake-up
    /// time, `false` once the queue is closed (a closed queue never
    /// accepts another item, full or not). Used by the async front
    /// door's `drain` to wait out backpressure without spinning.
    pub fn wait_not_full(&self) -> bool {
        let mut st = self.lock();
        loop {
            if st.closed {
                return false;
            }
            if st.q.len() < self.capacity {
                return true;
            }
            st = self.not_full.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Blocking pop: `None` only when the queue is closed *and* fully
    /// drained — a consumer that loops on this sees every item ever
    /// accepted, which is what the serving layer's drain guarantee
    /// rests on.
    pub fn pop(&self) -> Option<T> {
        let mut st = self.lock();
        loop {
            if let Some(item) = st.q.pop_front() {
                drop(st);
                self.not_full.notify_one();
                return Some(item);
            }
            if st.closed {
                return None;
            }
            st = self.not_empty.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Pop, waiting at most until `deadline`. `Ok(None)` means closed
    /// and drained; `Err(PopTimedOut)` means the deadline passed while
    /// the queue stayed empty (and open).
    pub fn pop_until(&self, deadline: Instant) -> Result<Option<T>, PopTimedOut> {
        let mut st = self.lock();
        loop {
            if let Some(item) = st.q.pop_front() {
                drop(st);
                self.not_full.notify_one();
                return Ok(Some(item));
            }
            if st.closed {
                return Ok(None);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(PopTimedOut);
            }
            let (guard, _timeout) = self
                .not_empty
                .wait_timeout(st, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            st = guard;
        }
    }

    /// Non-blocking conditional pop: hand the front item to `pred` and
    /// pop it only when `pred` says so. `None` when the queue is empty
    /// or the predicate declined. This is the work-stealing primitive:
    /// a thief examines a victim's head-of-line job and takes it only
    /// when the predicted steal cost beats waiting.
    pub fn pop_if(&self, pred: impl FnOnce(&T) -> bool) -> Option<T> {
        let mut st = self.lock();
        if !pred(st.q.front()?) {
            return None;
        }
        let item = st.q.pop_front();
        drop(st);
        self.not_full.notify_one();
        item
    }

    /// Non-blocking unconditional pop: take the front item if one is
    /// queued, never wait. This is the single-threaded seam the
    /// discrete-event cluster engine drains device queues through — the
    /// same bounded queue the threaded workers block on, minus the
    /// blocking: capacity, close and steal (`pop_if`/`peek_map`)
    /// semantics stay identical across both engines.
    pub fn try_pop(&self) -> Option<T> {
        self.pop_if(|_| true)
    }

    /// Inspect the front item (without popping) under the lock. `None`
    /// when empty. Keep `f` cheap — it runs with the queue locked.
    pub fn peek_map<R>(&self, f: impl FnOnce(&T) -> R) -> Option<R> {
        self.lock().q.front().map(f)
    }

    /// Stop accepting items and wake every waiter. Items already queued
    /// remain poppable.
    pub fn close(&self) {
        self.lock().closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    pub fn len(&self) -> usize {
        self.lock().q.len()
    }

    /// The bound `push`/`try_push` enforce (constructor clamps 0 to 1).
    /// Exposed so an external placer can reason about queue headroom:
    /// `capacity() - len()` slots accept a push without blocking.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn is_empty(&self) -> bool {
        self.lock().q.is_empty()
    }

    /// Whether [`BoundedQueue::close`] has been called. Part of the
    /// queue's *observable* state: a restored queue must answer this
    /// exactly like the original did, or a `try_push` that used to see
    /// `Closed` would see `Full`/`Ok` after a restore.
    pub fn is_closed(&self) -> bool {
        self.lock().closed
    }

    /// Snapshot every queued item (front to back, via `f`) together
    /// with the closed flag, under one lock acquisition — the
    /// serialization view of the queue. Keep `f` cheap: it runs with
    /// the queue locked.
    pub fn snapshot_with<R>(&self, mut f: impl FnMut(&T) -> R) -> (Vec<R>, bool) {
        let st = self.lock();
        (st.q.iter().map(&mut f).collect(), st.closed)
    }

    /// Rebuild a queue from serialized state: same clamped capacity,
    /// same closed flag, same items in FIFO order. The restored queue
    /// is observably identical — `capacity()`, `is_closed()`, `len()`,
    /// `try_push`-on-closed and `pop_if` all answer as the original
    /// would have (capacity goes through the same `max(1)` clamp as
    /// [`BoundedQueue::new`], so a clamped original round-trips).
    pub fn restore(capacity: usize, closed: bool, items: Vec<T>) -> Self {
        BoundedQueue {
            state: Mutex::new(State { q: VecDeque::from(items), closed }),
            capacity: capacity.max(1),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn try_pop_never_blocks_and_preserves_fifo() {
        let q = BoundedQueue::new(4);
        assert_eq!(q.try_pop(), None, "empty queue yields None immediately");
        q.push(1).unwrap();
        q.push(2).unwrap();
        assert_eq!(q.try_pop(), Some(1));
        assert_eq!(q.try_pop(), Some(2));
        assert_eq!(q.try_pop(), None);
        // Closed queues still drain through try_pop.
        q.push(3).unwrap();
        q.close();
        assert_eq!(q.try_pop(), Some(3));
        assert_eq!(q.try_pop(), None);
    }

    #[test]
    fn try_push_observes_capacity_and_returns_the_item() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err((PushError::Full, 3)));
        assert_eq!(q.pop(), Some(1));
        q.try_push(3).unwrap();
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn close_rejects_pushes_but_drains_pops() {
        let q = BoundedQueue::new(4);
        q.push(1).unwrap();
        q.push(2).unwrap();
        q.close();
        assert_eq!(q.push(3), Err(PushError::Closed));
        assert_eq!(q.try_push(3), Err((PushError::Closed, 3)));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None, "closed + drained");
    }

    #[test]
    fn capacity_zero_is_clamped_to_one() {
        let q = BoundedQueue::new(0);
        q.try_push(1).unwrap();
        assert_eq!(q.try_push(2), Err((PushError::Full, 2)));
    }

    #[test]
    fn blocked_push_completes_once_space_frees() {
        let q = Arc::new(BoundedQueue::new(1));
        q.push(1).unwrap();
        let q2 = Arc::clone(&q);
        let pusher = std::thread::spawn(move || q2.push(2));
        // Give the pusher time to block, then free a slot.
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(q.pop(), Some(1));
        pusher.join().unwrap().expect("push succeeds after pop");
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn blocked_push_unblocks_on_close() {
        let q = Arc::new(BoundedQueue::new(1));
        q.push(1).unwrap();
        let q2 = Arc::clone(&q);
        let pusher = std::thread::spawn(move || q2.push(2));
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(pusher.join().unwrap(), Err(PushError::Closed));
        // The item accepted before the close is still there.
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn closed_full_queue_reports_full_not_closed() {
        // Regression: a close racing in ahead of a try_push against a
        // saturated queue used to report Closed, so the reject vanished
        // from the backpressure accounting (saturation counters key off
        // Full). Capacity must win over the closed flag.
        let q = BoundedQueue::new(1);
        q.push(1).unwrap();
        q.close();
        assert_eq!(q.try_push(2), Err((PushError::Full, 2)), "saturation attribution survives close");
        // Once the close is observable through a free slot, Closed is
        // the right answer again.
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.try_push(2), Err((PushError::Closed, 2)));
    }

    #[test]
    fn try_push_many_flushes_under_one_lock() {
        let q = BoundedQueue::new(3);
        let mut buf: VecDeque<i32> = (1..=2).collect();
        assert_eq!(q.try_push_many(&mut buf), (2, None), "buffer fits: fully drained");
        assert!(buf.is_empty());

        let mut buf: VecDeque<i32> = (3..=6).collect();
        assert_eq!(q.try_push_many(&mut buf), (1, Some(PushError::Full)), "stops at capacity");
        assert_eq!(buf, VecDeque::from(vec![4, 5, 6]), "unpushed tail stays buffered in order");
        assert_eq!(q.len(), 3);

        q.close();
        assert_eq!(q.try_push_many(&mut buf), (0, Some(PushError::Full)), "full wins over closed");
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.try_push_many(&mut buf), (0, Some(PushError::Closed)), "closed with free slots");
        assert_eq!(buf.len(), 3, "nothing lost on a closed queue");
        // FIFO across the flushes: 1 popped above, 2 and 3 remain.
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));

        let mut empty: VecDeque<i32> = VecDeque::new();
        assert_eq!(q.try_push_many(&mut empty), (0, None), "empty buffer is a no-op");
    }

    #[test]
    fn wait_not_full_wakes_on_pop_and_close() {
        // Free slot + open queue: returns true immediately.
        let q = Arc::new(BoundedQueue::new(1));
        assert!(q.wait_not_full());

        // Full queue: parks until the consumer frees a slot.
        q.push(1).unwrap();
        let q2 = Arc::clone(&q);
        let waiter = std::thread::spawn(move || q2.wait_not_full());
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(q.pop(), Some(1));
        assert!(waiter.join().unwrap(), "slot freed while open");

        // Full queue + close: wakes with false (will never accept).
        q.push(2).unwrap();
        let q2 = Arc::clone(&q);
        let waiter = std::thread::spawn(move || q2.wait_not_full());
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert!(!waiter.join().unwrap(), "closed queue reports false even while full");
    }

    #[test]
    fn pop_until_times_out_when_idle() {
        let q: BoundedQueue<i32> = BoundedQueue::new(1);
        let deadline = Instant::now() + Duration::from_millis(5);
        assert_eq!(q.pop_until(deadline), Err(PopTimedOut));
    }

    #[test]
    fn capacity_is_readable_and_clamped() {
        assert_eq!(BoundedQueue::<i32>::new(7).capacity(), 7);
        assert_eq!(BoundedQueue::<i32>::new(0).capacity(), 1, "constructor clamp is visible");
    }

    #[test]
    fn pop_if_consults_the_front_item_only() {
        let q = BoundedQueue::new(4);
        q.push(10).unwrap();
        q.push(3).unwrap();
        assert_eq!(q.pop_if(|&v| v > 5), Some(10), "front matches: popped");
        assert_eq!(q.pop_if(|&v| v > 5), None, "front is 3: declined");
        assert_eq!(q.len(), 1, "declined item stays queued");
        assert_eq!(q.pop(), Some(3), "FIFO order undisturbed");
        assert_eq!(q.pop_if(|_| true), None, "empty queue never calls pred");
    }

    #[test]
    fn peek_map_observes_without_popping() {
        let q = BoundedQueue::new(2);
        assert_eq!(q.peek_map(|&v: &i32| v), None);
        q.push(42).unwrap();
        assert_eq!(q.peek_map(|&v| v * 2), Some(84));
        assert_eq!(q.len(), 1, "peek leaves the item in place");
    }

    #[test]
    fn restored_queue_reports_the_original_observable_state() {
        // Original: capacity 3, two items popped to one, then closed.
        let q = BoundedQueue::new(3);
        q.push(10).unwrap();
        q.push(20).unwrap();
        assert_eq!(q.pop(), Some(10));
        q.close();

        let (items, closed) = q.snapshot_with(|&v| v);
        assert_eq!((items.as_slice(), closed), (&[20][..], true));

        let r = BoundedQueue::restore(q.capacity(), closed, items);
        assert_eq!(r.capacity(), q.capacity());
        assert_eq!(r.is_closed(), q.is_closed());
        assert_eq!(r.len(), q.len());
        // try_push on the restored closed queue sees Closed (never
        // Full/Ok), exactly like the original.
        assert_eq!(r.try_push(99), Err((PushError::Closed, 99)));
        assert_eq!(q.try_push(99), Err((PushError::Closed, 99)));
        // pop_if still drains the surviving item, then closed+drained.
        assert_eq!(r.pop_if(|&v| v == 20), Some(20));
        assert_eq!(r.pop(), None, "closed + drained");
        assert!(r.is_closed(), "drained queue stays closed");
    }

    #[test]
    fn restored_clamped_capacity_round_trips() {
        let q = BoundedQueue::<i32>::new(0);
        let (items, closed) = q.snapshot_with(|&v| v);
        let r = BoundedQueue::restore(q.capacity(), closed, items);
        assert_eq!(r.capacity(), 1, "clamp survives the round-trip");
        assert!(!r.is_closed());
        r.try_push(1).unwrap();
        assert_eq!(r.try_push(2), Err((PushError::Full, 2)));
    }

    #[test]
    fn pop_if_frees_a_slot_for_blocked_pushers() {
        let q = Arc::new(BoundedQueue::new(1));
        q.push(1).unwrap();
        let q2 = Arc::clone(&q);
        let pusher = std::thread::spawn(move || q2.push(2));
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(q.pop_if(|_| true), Some(1));
        pusher.join().unwrap().expect("push succeeds after conditional pop");
        assert_eq!(q.pop(), Some(2));
    }
}

#[cfg(test)]
mod invariant_props {
    //! Property suite: arbitrary push/pop/close interleavings never
    //! lose an item, never duplicate one, never exceed capacity, and
    //! preserve FIFO order. Driven against a plain `VecDeque` model for
    //! the sequential script, plus a real two-thread interleaving for
    //! the concurrent lose/duplicate check.

    use super::*;
    use proptest::prelude::*;
    use std::collections::VecDeque;
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    /// One scripted operation: 0/1 = try_push / blockable pop variants,
    /// 2 = close. Encoded as small ints so the strategy stays simple.
    fn apply_script(cap: usize, ops: &[u32]) {
        let q: BoundedQueue<u64> = BoundedQueue::new(cap);
        let cap = cap.max(1); // mirrors the constructor's clamp
        let mut model: VecDeque<u64> = VecDeque::new();
        let mut closed = false;
        let mut next_id: u64 = 0;
        for &op in ops {
            match op % 3 {
                0 => {
                    let r = q.try_push(next_id);
                    // Full is checked before Closed: saturation keeps
                    // its backpressure attribution even after a close.
                    if model.len() >= cap {
                        prop_assert_eq!(r, Err((PushError::Full, next_id)));
                    } else if closed {
                        prop_assert_eq!(r, Err((PushError::Closed, next_id)));
                    } else {
                        prop_assert_eq!(r, Ok(()));
                        model.push_back(next_id);
                    }
                    next_id += 1;
                }
                1 => {
                    // Non-blocking pop via an already-expired deadline.
                    let r = q.pop_until(Instant::now());
                    match (model.pop_front(), closed) {
                        (Some(want), _) => prop_assert_eq!(r, Ok(Some(want)), "FIFO order"),
                        (None, true) => prop_assert_eq!(r, Ok(None), "closed + drained"),
                        (None, false) => prop_assert_eq!(r, Err(PopTimedOut), "empty, still open"),
                    }
                }
                _ => {
                    q.close();
                    closed = true;
                }
            }
            prop_assert_eq!(q.len(), model.len());
            prop_assert!(q.len() <= cap, "capacity exceeded");
        }
        // Drain: everything the model still holds comes out, in order,
        // exactly once.
        q.close();
        let mut drained = Vec::new();
        while let Some(v) = q.pop() {
            drained.push(v);
        }
        prop_assert_eq!(drained, model.into_iter().collect::<Vec<_>>());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn scripted_interleavings_match_the_model(
            cap in 0usize..=5,
            ops in collection::vec(0u32..3, 1..=60),
        ) {
            apply_script(cap, &ops);
        }

        #[test]
        fn concurrent_depth_never_exceeds_capacity(
            cap in 1usize..=4,
            per_producer in 1usize..=40,
        ) {
            // Two blocking producers and one consumer hammer the queue
            // while a sampler thread continuously observes the depth;
            // every observation must respect the constructor's bound.
            // This is the invariant the cluster placer relies on when it
            // reads `len()`/`capacity()` from outside the serving layer.
            let q: Arc<BoundedQueue<u64>> = Arc::new(BoundedQueue::new(cap));
            let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
            let sampler = {
                let q = Arc::clone(&q);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut max_seen = 0usize;
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                        max_seen = max_seen.max(q.len());
                        std::hint::spin_loop();
                    }
                    max_seen
                })
            };
            let producers: Vec<_> = (0..2u64)
                .map(|t| {
                    let q = Arc::clone(&q);
                    std::thread::spawn(move || {
                        for i in 0..per_producer as u64 {
                            q.push(t * 1_000_000 + i).expect("queue stays open");
                        }
                    })
                })
                .collect();
            let consumer = {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = 0usize;
                    while let Some(_v) = q.pop() {
                        got += 1;
                    }
                    got
                })
            };
            for p in producers {
                p.join().unwrap();
            }
            q.close();
            let got = consumer.join().unwrap();
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
            let max_seen = sampler.join().unwrap();
            prop_assert_eq!(got, 2 * per_producer, "every accepted item drained");
            prop_assert!(
                max_seen <= q.capacity(),
                "observed depth {} exceeds capacity {}",
                max_seen,
                q.capacity()
            );
        }

        #[test]
        fn concurrent_producers_never_lose_or_duplicate(
            cap in 1usize..=3,
            per_producer in 1usize..=25,
            close_after_ms in 0u64..=3,
        ) {
            let q: Arc<BoundedQueue<u64>> = Arc::new(BoundedQueue::new(cap));
            let producers: Vec<_> = (0..2u64)
                .map(|t| {
                    let q = Arc::clone(&q);
                    std::thread::spawn(move || {
                        let mut accepted = Vec::new();
                        for i in 0..per_producer as u64 {
                            let id = t * 1_000_000 + i;
                            match q.push(id) {
                                Ok(()) => accepted.push(id),
                                Err(PushError::Closed) => break,
                                Err(PushError::Full) => unreachable!("blocking push"),
                            }
                        }
                        accepted
                    })
                })
                .collect();
            let consumer = {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(v) = q.pop() {
                        got.push(v);
                    }
                    got
                })
            };
            std::thread::sleep(Duration::from_millis(close_after_ms));
            q.close();
            let mut accepted: Vec<u64> =
                producers.into_iter().flat_map(|p| p.join().unwrap()).collect();
            let mut got = consumer.join().unwrap();
            // Per-producer FIFO order is preserved in the popped stream.
            for t in 0..2u64 {
                let sub: Vec<u64> =
                    got.iter().copied().filter(|v| v / 1_000_000 == t).collect();
                let mut expect: Vec<u64> =
                    accepted.iter().copied().filter(|v| v / 1_000_000 == t).collect();
                expect.sort_unstable();
                prop_assert_eq!(sub, expect, "per-producer FIFO");
            }
            // Exactly the accepted multiset comes out: no loss, no dup.
            accepted.sort_unstable();
            got.sort_unstable();
            prop_assert_eq!(got, accepted);
        }
    }
}

//! Bounded MPSC admission queue with blocking backpressure.
//!
//! `std::sync::mpsc` channels are unbounded, so admission control is
//! built directly on a `Mutex<VecDeque>` + two condvars: producers block
//! in [`BoundedQueue::push`] while the queue is at capacity (that *is*
//! the backpressure contract — an accepted request is never dropped),
//! and the single consumer parks in [`BoundedQueue::pop`] until work or
//! close arrives.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::Instant;

struct State<T> {
    q: VecDeque<T>,
    closed: bool,
}

/// What a push attempt observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// Non-blocking push found the queue at capacity.
    Full,
    /// The queue no longer accepts items.
    Closed,
}

pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    capacity: usize,
    not_empty: Condvar,
    not_full: Condvar,
}

impl<T> BoundedQueue<T> {
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            state: Mutex::new(State { q: VecDeque::new(), closed: false }),
            capacity: capacity.max(1),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Blocking push: waits while the queue is at capacity. Fails only
    /// when the queue is closed (before or during the wait).
    pub fn push(&self, item: T) -> Result<(), PushError> {
        let mut st = self.lock();
        loop {
            if st.closed {
                return Err(PushError::Closed);
            }
            if st.q.len() < self.capacity {
                st.q.push_back(item);
                drop(st);
                self.not_empty.notify_one();
                return Ok(());
            }
            st = self.not_full.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Non-blocking push.
    pub fn try_push(&self, item: T) -> Result<(), PushError> {
        let mut st = self.lock();
        if st.closed {
            return Err(PushError::Closed);
        }
        if st.q.len() >= self.capacity {
            return Err(PushError::Full);
        }
        st.q.push_back(item);
        drop(st);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocking pop: `None` only when the queue is closed *and* fully
    /// drained — a consumer that loops on this sees every item ever
    /// accepted, which is what the serving layer's drain guarantee
    /// rests on.
    pub fn pop(&self) -> Option<T> {
        let mut st = self.lock();
        loop {
            if let Some(item) = st.q.pop_front() {
                drop(st);
                self.not_full.notify_one();
                return Some(item);
            }
            if st.closed {
                return None;
            }
            st = self.not_empty.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Pop, waiting at most until `deadline`. `Ok(None)` means closed
    /// and drained; `Err(())` means the deadline passed while empty.
    pub fn pop_until(&self, deadline: Instant) -> Result<Option<T>, ()> {
        let mut st = self.lock();
        loop {
            if let Some(item) = st.q.pop_front() {
                drop(st);
                self.not_full.notify_one();
                return Ok(Some(item));
            }
            if st.closed {
                return Ok(None);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(());
            }
            let (guard, _timeout) = self
                .not_empty
                .wait_timeout(st, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            st = guard;
        }
    }

    /// Stop accepting items and wake every waiter. Items already queued
    /// remain poppable.
    pub fn close(&self) {
        self.lock().closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    pub fn len(&self) -> usize {
        self.lock().q.len()
    }

    pub fn is_empty(&self) -> bool {
        self.lock().q.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn try_push_observes_capacity() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(PushError::Full));
        assert_eq!(q.pop(), Some(1));
        q.try_push(3).unwrap();
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn close_rejects_pushes_but_drains_pops() {
        let q = BoundedQueue::new(4);
        q.push(1).unwrap();
        q.push(2).unwrap();
        q.close();
        assert_eq!(q.push(3), Err(PushError::Closed));
        assert_eq!(q.try_push(3), Err(PushError::Closed));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None, "closed + drained");
    }

    #[test]
    fn capacity_zero_is_clamped_to_one() {
        let q = BoundedQueue::new(0);
        q.try_push(1).unwrap();
        assert_eq!(q.try_push(2), Err(PushError::Full));
    }

    #[test]
    fn blocked_push_completes_once_space_frees() {
        let q = Arc::new(BoundedQueue::new(1));
        q.push(1).unwrap();
        let q2 = Arc::clone(&q);
        let pusher = std::thread::spawn(move || q2.push(2));
        // Give the pusher time to block, then free a slot.
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(q.pop(), Some(1));
        pusher.join().unwrap().expect("push succeeds after pop");
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn blocked_push_unblocks_on_close() {
        let q = Arc::new(BoundedQueue::new(1));
        q.push(1).unwrap();
        let q2 = Arc::clone(&q);
        let pusher = std::thread::spawn(move || q2.push(2));
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(pusher.join().unwrap(), Err(PushError::Closed));
        // The item accepted before the close is still there.
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn pop_until_times_out_when_idle() {
        let q: BoundedQueue<i32> = BoundedQueue::new(1);
        let deadline = Instant::now() + Duration::from_millis(5);
        assert_eq!(q.pop_until(deadline), Err(()));
    }
}

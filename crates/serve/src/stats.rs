//! Server-wide counters and the [`ServeStats`] snapshot.

use ctb_core::{AdmissionStats, CacheStats};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Point-in-time view of the server's accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeStats {
    /// Requests accepted into the admission queue.
    pub submitted: usize,
    /// `try_submit` rejections (queue full, real or injected) +
    /// shutdown rejections.
    pub rejected: usize,
    /// Requests completed with [`crate::ServeError::Expired`].
    pub expired: usize,
    /// Requests completed with a result (coordinated or degraded).
    pub completed: usize,
    /// Coalesced batches executed on the coordinated path.
    pub batches: usize,
    /// `completed / batches` (0 when idle) — the coalescing payoff.
    /// Degraded completions inflate this slightly; `degraded` says by
    /// how much.
    pub mean_batch_size: f64,
    /// Re-admissions of individual members after a worker panic.
    pub retries: usize,
    /// Worker panics caught by the isolation boundary (coordinated
    /// executor, planner, or degraded path — the worker survives all).
    pub worker_panics: usize,
    /// Planning failures observed (real or injected); each one routes
    /// its batch to the degraded baseline.
    pub plan_failures: usize,
    /// Requests completed through the degraded per-kernel baseline.
    pub degraded: usize,
    /// Responses the server computed but could not deliver because the
    /// requester had dropped its ticket. Every undeliverable response —
    /// results, expiries, errors — is counted here, never silently lost.
    pub abandoned: usize,
    /// Times the circuit breaker tripped open.
    pub breaker_trips: usize,
    /// Whether the breaker was open (serving degraded) at snapshot time.
    pub breaker_open: bool,
    /// Shared-session plan cache (hits = re-used shape signatures).
    pub plan_cache: CacheStats,
    /// Number of independently locked shards behind `plan_cache`.
    pub plan_shards: usize,
    /// Cache-admission gate counters (all zero under
    /// [`ctb_core::AdmissionPolicy::AdmitAll`], the default).
    pub cache_admission: AdmissionStats,
    /// Candidate-simulation memo behind the planner.
    pub sim_memo: CacheStats,
    /// Median end-to-end request latency, µs.
    pub p50_us: f64,
    /// 95th-percentile end-to-end request latency, µs.
    pub p95_us: f64,
}

impl ServeStats {
    /// Nearest-rank percentile of an ascending-sorted sample: the
    /// smallest element with at least `q` of the mass at or below it
    /// (0 for an empty sample, the sole element for a singleton).
    pub fn percentile(sorted: &[f64], q: f64) -> f64 {
        percentile(sorted, q)
    }
}

/// Internal mutable counters. Latencies are kept raw (one `f64` per
/// completed request) — serving-bench scale is thousands of requests,
/// far below where a streaming sketch would be warranted.
#[derive(Debug, Default)]
pub struct StatsInner {
    pub submitted: AtomicUsize,
    pub rejected: AtomicUsize,
    pub expired: AtomicUsize,
    pub completed: AtomicUsize,
    pub batches: AtomicUsize,
    pub retries: AtomicUsize,
    pub worker_panics: AtomicUsize,
    pub plan_failures: AtomicUsize,
    pub degraded: AtomicUsize,
    pub abandoned: AtomicUsize,
    pub breaker_trips: AtomicUsize,
    latencies_us: Mutex<Vec<f64>>,
}

impl StatsInner {
    pub fn record_latency(&self, us: f64) {
        self.latencies_us.lock().unwrap_or_else(|e| e.into_inner()).push(us);
    }

    /// Snapshot the counters together with session cache statistics
    /// (exact counters plus the shard/admission-gate view of the shared
    /// plan cache) and the breaker's point-in-time state.
    pub fn snapshot(
        &self,
        plan_cache: CacheStats,
        plan_shards: usize,
        cache_admission: AdmissionStats,
        sim_memo: CacheStats,
        breaker_open: bool,
    ) -> ServeStats {
        let completed = self.completed.load(Ordering::Relaxed);
        let batches = self.batches.load(Ordering::Relaxed);
        let mut lat = self.latencies_us.lock().unwrap_or_else(|e| e.into_inner()).clone();
        lat.sort_by(f64::total_cmp);
        ServeStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            expired: self.expired.load(Ordering::Relaxed),
            completed,
            batches,
            mean_batch_size: if batches == 0 { 0.0 } else { completed as f64 / batches as f64 },
            retries: self.retries.load(Ordering::Relaxed),
            worker_panics: self.worker_panics.load(Ordering::Relaxed),
            plan_failures: self.plan_failures.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            abandoned: self.abandoned.load(Ordering::Relaxed),
            breaker_trips: self.breaker_trips.load(Ordering::Relaxed),
            breaker_open,
            plan_cache,
            plan_shards,
            cache_admission,
            sim_memo,
            p50_us: percentile(&lat, 0.50),
            p95_us: percentile(&lat, 0.95),
        }
    }
}

/// Nearest-rank percentile of an ascending-sorted sample (0 if empty).
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn percentiles_use_nearest_rank() {
        let s: Vec<f64> = (1..=100).map(|v| v as f64).collect();
        assert_eq!(percentile(&s, 0.50), 50.0);
        assert_eq!(percentile(&s, 0.95), 95.0);
        assert_eq!(percentile(&s, 1.0), 100.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[7.0], 0.95), 7.0);
    }

    #[test]
    fn percentile_edge_cases() {
        // Empty sample: every quantile is the 0 sentinel.
        for q in [0.0, 0.5, 0.95, 1.0] {
            assert_eq!(ServeStats::percentile(&[], q), 0.0);
        }
        // Single sample: every quantile is that sample.
        for q in [0.0, 0.01, 0.5, 0.99, 1.0] {
            assert_eq!(ServeStats::percentile(&[3.25], q), 3.25);
        }
        // All-equal samples: every quantile is the common value.
        let flat = [2.0; 17];
        for q in [0.0, 0.25, 0.5, 0.95, 1.0] {
            assert_eq!(ServeStats::percentile(&flat, q), 2.0);
        }
        // q = 0 clamps to the first element, not out of range.
        assert_eq!(ServeStats::percentile(&[1.0, 2.0, 3.0], 0.0), 1.0);
        // Two samples: the median is the lower of the two under
        // nearest-rank, p95 the upper.
        assert_eq!(ServeStats::percentile(&[1.0, 9.0], 0.5), 1.0);
        assert_eq!(ServeStats::percentile(&[1.0, 9.0], 0.95), 9.0);
    }

    #[test]
    fn snapshot_computes_mean_batch_size() {
        let inner = StatsInner::default();
        inner.completed.store(12, Ordering::Relaxed);
        inner.batches.store(4, Ordering::Relaxed);
        inner.record_latency(5.0);
        inner.record_latency(15.0);
        let s = inner.snapshot(CacheStats::default(), 0, AdmissionStats::default(), CacheStats::default(), false);
        assert_eq!(s.mean_batch_size, 3.0);
        assert_eq!(s.p50_us, 5.0);
        assert_eq!(s.p95_us, 15.0);
        assert!(!s.breaker_open);
    }

    #[test]
    fn snapshot_carries_resilience_counters() {
        let inner = StatsInner::default();
        inner.retries.store(3, Ordering::Relaxed);
        inner.worker_panics.store(2, Ordering::Relaxed);
        inner.plan_failures.store(4, Ordering::Relaxed);
        inner.degraded.store(5, Ordering::Relaxed);
        inner.abandoned.store(1, Ordering::Relaxed);
        inner.breaker_trips.store(6, Ordering::Relaxed);
        let s = inner.snapshot(CacheStats::default(), 0, AdmissionStats::default(), CacheStats::default(), true);
        assert_eq!(
            (s.retries, s.worker_panics, s.plan_failures, s.degraded, s.abandoned, s.breaker_trips),
            (3, 2, 4, 5, 1, 6)
        );
        assert!(s.breaker_open);
    }

    #[test]
    fn snapshot_under_concurrent_record_is_consistent() {
        // Recorders hammer the latency vector while snapshots are taken;
        // every snapshot must be internally consistent: sorted sample
        // implies p50 <= p95, and percentiles come from real samples.
        let inner = Arc::new(StatsInner::default());
        let recorders: Vec<_> = (0..4)
            .map(|t| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || {
                    for i in 0..500u32 {
                        inner.record_latency((t * 1000 + i) as f64);
                        inner.completed.fetch_add(1, Ordering::Relaxed);
                    }
                })
            })
            .collect();
        for _ in 0..50 {
            let s = inner.snapshot(CacheStats::default(), 0, AdmissionStats::default(), CacheStats::default(), false);
            assert!(s.p50_us <= s.p95_us, "p50 {} > p95 {}", s.p50_us, s.p95_us);
            assert!(s.p95_us < 4000.0, "percentile outside any recorded value");
            assert!(s.completed <= 2000);
        }
        for r in recorders {
            r.join().expect("recorder ok");
        }
        let s = inner.snapshot(CacheStats::default(), 0, AdmissionStats::default(), CacheStats::default(), false);
        assert_eq!(s.completed, 2000);
        assert!(s.p50_us <= s.p95_us);
    }
}

//! Server-wide counters and the [`ServeStats`] snapshot.

use ctb_core::CacheStats;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Point-in-time view of the server's accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeStats {
    /// Requests accepted into the admission queue.
    pub submitted: usize,
    /// `try_submit` rejections (queue full) + shutdown rejections.
    pub rejected: usize,
    /// Requests completed with [`crate::ServeError::Expired`].
    pub expired: usize,
    /// Requests completed with a result.
    pub completed: usize,
    /// Coalesced batches executed.
    pub batches: usize,
    /// `completed / batches` (0 when idle) — the coalescing payoff.
    pub mean_batch_size: f64,
    /// Shared-session plan cache (hits = re-used shape signatures).
    pub plan_cache: CacheStats,
    /// Candidate-simulation memo behind the planner.
    pub sim_memo: CacheStats,
    /// Median end-to-end request latency, µs.
    pub p50_us: f64,
    /// 95th-percentile end-to-end request latency, µs.
    pub p95_us: f64,
}

/// Internal mutable counters. Latencies are kept raw (one `f64` per
/// completed request) — serving-bench scale is thousands of requests,
/// far below where a streaming sketch would be warranted.
#[derive(Debug, Default)]
pub struct StatsInner {
    pub submitted: AtomicUsize,
    pub rejected: AtomicUsize,
    pub expired: AtomicUsize,
    pub completed: AtomicUsize,
    pub batches: AtomicUsize,
    latencies_us: Mutex<Vec<f64>>,
}

impl StatsInner {
    pub fn record_latency(&self, us: f64) {
        self.latencies_us.lock().unwrap_or_else(|e| e.into_inner()).push(us);
    }

    /// Snapshot the counters together with session cache statistics.
    pub fn snapshot(&self, plan_cache: CacheStats, sim_memo: CacheStats) -> ServeStats {
        let completed = self.completed.load(Ordering::Relaxed);
        let batches = self.batches.load(Ordering::Relaxed);
        let mut lat = self.latencies_us.lock().unwrap_or_else(|e| e.into_inner()).clone();
        lat.sort_by(f64::total_cmp);
        ServeStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            expired: self.expired.load(Ordering::Relaxed),
            completed,
            batches,
            mean_batch_size: if batches == 0 { 0.0 } else { completed as f64 / batches as f64 },
            plan_cache,
            sim_memo,
            p50_us: percentile(&lat, 0.50),
            p95_us: percentile(&lat, 0.95),
        }
    }
}

/// Nearest-rank percentile of an ascending-sorted sample (0 if empty).
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_use_nearest_rank() {
        let s: Vec<f64> = (1..=100).map(|v| v as f64).collect();
        assert_eq!(percentile(&s, 0.50), 50.0);
        assert_eq!(percentile(&s, 0.95), 95.0);
        assert_eq!(percentile(&s, 1.0), 100.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[7.0], 0.95), 7.0);
    }

    #[test]
    fn snapshot_computes_mean_batch_size() {
        let inner = StatsInner::default();
        inner.completed.store(12, Ordering::Relaxed);
        inner.batches.store(4, Ordering::Relaxed);
        inner.record_latency(5.0);
        inner.record_latency(15.0);
        let s = inner.snapshot(CacheStats::default(), CacheStats::default());
        assert_eq!(s.mean_batch_size, 3.0);
        assert_eq!(s.p50_us, 5.0);
        assert_eq!(s.p95_us, 15.0);
    }
}

//! The asynchronous front door: non-blocking admission with submission
//! batching.
//!
//! [`crate::Server::submit`] blocks the producer while the admission
//! queue is at capacity, and [`crate::Server::try_submit`] makes the
//! producer handle `QueueFull` itself. [`AsyncFront`] removes both
//! burdens: `try_submit` *always* returns a [`Ticket`] once the request
//! validates, and requests the bounded queue cannot take right now are
//! buffered inside the front and flushed — many at a time, under one
//! queue lock ([`crate::BoundedQueue::try_push_many`]) — as capacity
//! frees up. Producers never block and never see backpressure; the
//! bound still holds because buffered requests only enter the server
//! when the queue has room.
//!
//! **Equivalence contract.** For any submission order, driving requests
//! through the front yields bitwise-identical results and identical
//! [`crate::ServeStats`] accounting to driving the same order through
//! the blocking `submit` path: the front traces `Admit` before
//! buffering exactly as `submit` traces it before pushing, counts
//! `submitted` per request actually handed to the queue, and closes
//! every admitted-but-unpushable request out with a `Reject` trace
//! event, a `rejected` count and a [`ServeError::ShuttingDown`]
//! response. The differential suite in `tests/async_front.rs` pins this
//! down across the chaos schedules. (The front never consults the
//! [`crate::FaultSite::AdmitReject`] chaos site — that seam models a
//! *saturated* queue, which the front by construction absorbs; this is
//! also what keeps its fault cursors aligned with the blocking path's.)
//!
//! **Terminal contract.** Every `Admit` the front traces is eventually
//! matched by exactly one terminal event: the server's (respond, expire,
//! fail) once pushed, or the front's own `Reject` when the server shuts
//! down before the buffered request could be pushed. Dropping the front
//! flushes what it can and resolves the rest, so no ticket is left
//! dangling and the obs audit's admit/terminal reconciliation holds.

use crate::queue::PushError;
use crate::request::{GemmRequest, ServeError, Ticket};
use crate::server::{Pending, Shared};
use ctb_obs::PointKind;
use std::collections::VecDeque;
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc, Mutex, MutexGuard};
use std::time::Instant;

/// Non-blocking, buffering admission front over a [`crate::Server`].
/// Obtain one with [`crate::Server::front`]; cheap to create, and
/// several fronts over one server are fine (each owns only its own
/// backlog). The front holds the server's shared state alive, so
/// tickets stay valid even if the `Server` itself is dropped first.
pub struct AsyncFront {
    shared: Arc<Shared>,
    /// Admitted requests the bounded queue had no room for, in
    /// submission order.
    backlog: Mutex<VecDeque<Pending>>,
}

impl AsyncFront {
    pub(crate) fn new(shared: Arc<Shared>) -> Self {
        AsyncFront { shared, backlog: Mutex::new(VecDeque::new()) }
    }

    /// Submit without ever blocking and without ever reporting
    /// `QueueFull`: once the request validates, the producer holds a
    /// [`Ticket`] and the front guarantees a terminal outcome for it.
    /// If the server is shutting down, the ticket resolves to
    /// [`ServeError::ShuttingDown`] rather than the call failing.
    pub fn try_submit(&self, req: GemmRequest) -> Result<Ticket, ServeError> {
        if let Err(m) = req.validate() {
            return Err(ServeError::Invalid(m));
        }
        let id = self.shared.req_ids.fetch_add(1, Ordering::Relaxed);
        // Admit is traced *before* the request is buffered, mirroring
        // the blocking path's trace-before-push: downstream events for
        // this id must never precede its admission in the log.
        let enqueued_us = match self.shared.obs() {
            Some(o) => o.point(PointKind::Admit { req: id }),
            None => 0,
        };
        let (tx, rx) = mpsc::channel();
        let pending = Pending { id, req, tx, enqueued: Instant::now(), enqueued_us };
        let mut backlog = self.lock_backlog();
        backlog.push_back(pending);
        self.flush_locked(&mut backlog);
        Ok(Ticket { rx })
    }

    /// Push as much of the backlog as the queue will take right now.
    /// Returns the number of requests still buffered afterwards.
    pub fn flush(&self) -> usize {
        let mut backlog = self.lock_backlog();
        self.flush_locked(&mut backlog);
        backlog.len()
    }

    /// Block until the backlog is fully handed to the server (or
    /// resolved as rejected because the server shut down). Returns
    /// `true` when everything was pushed, `false` when leftovers were
    /// closed out with [`ServeError::ShuttingDown`].
    pub fn drain(&self) -> bool {
        loop {
            let mut backlog = self.lock_backlog();
            match self.flush_locked(&mut backlog) {
                // Fully pushed, or Closed (flush already resolved the
                // leftovers as rejected).
                None => return true,
                Some(PushError::Closed) => return false,
                Some(PushError::Full) => {}
            }
            drop(backlog);
            if !self.shared.admission.wait_not_full() {
                // Closed while full: no push can ever succeed again.
                let mut backlog = self.lock_backlog();
                let resolved = backlog.is_empty();
                self.reject_all(&mut backlog);
                return resolved;
            }
        }
    }

    /// Requests currently buffered in the front (admitted, not yet in
    /// the server's queue). Monitoring hook; racy by nature.
    pub fn backlog_len(&self) -> usize {
        self.lock_backlog().len()
    }

    fn lock_backlog(&self) -> MutexGuard<'_, VecDeque<Pending>> {
        self.backlog.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Flush under the held backlog lock. `None` means the backlog was
    /// fully pushed; `Full` means leftovers stay buffered; `Closed`
    /// means the leftovers were just resolved as rejected.
    fn flush_locked(&self, backlog: &mut VecDeque<Pending>) -> Option<PushError> {
        let (pushed, err) = self.shared.admission.try_push_many(backlog);
        if pushed > 0 {
            self.shared.stats.submitted.fetch_add(pushed, Ordering::Relaxed);
        }
        if matches!(err, Some(PushError::Closed)) {
            self.reject_all(backlog);
        }
        err
    }

    /// Close every buffered request out with the same accounting the
    /// blocking path gives a push that fails on a closed queue: a
    /// request-carrying `Reject` trace event, a `rejected` count, and a
    /// `ShuttingDown` response (undeliverable ones count as abandoned).
    fn reject_all(&self, backlog: &mut VecDeque<Pending>) {
        while let Some(p) = backlog.pop_front() {
            self.shared.stats.rejected.fetch_add(1, Ordering::Relaxed);
            if let Some(o) = self.shared.obs() {
                o.point(PointKind::Reject { req: Some(p.id) });
            }
            self.shared.respond(&p.tx, Err(ServeError::ShuttingDown));
        }
    }
}

impl Drop for AsyncFront {
    /// A dropped front may not strand tickets: flush what fits, then
    /// resolve the rest as `ShuttingDown` so every traced `Admit` still
    /// reaches a terminal event.
    fn drop(&mut self) {
        let mut backlog = self.lock_backlog();
        if self.flush_locked(&mut backlog).is_some() {
            self.reject_all(&mut backlog);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::BoundedQueue;
    use crate::retry::{Breaker, BreakerPolicy};
    use crate::server::{ServeConfig, Server};
    use crate::stats::StatsInner;
    use ctb_core::{Framework, Session};
    use ctb_gpu_specs::ArchSpec;
    use ctb_matrix::MatF32;
    use std::sync::atomic::{AtomicU64, AtomicUsize};
    use std::time::Duration;

    fn request(seed: u64) -> GemmRequest {
        GemmRequest::new(MatF32::random(16, 8, seed), MatF32::random(8, 12, seed + 1))
    }

    /// A `Shared` with *no* batcher or worker threads: the admission
    /// queue fills deterministically, which is exactly what the
    /// buffering tests need.
    fn standalone_shared(queue_capacity: usize) -> Arc<Shared> {
        Arc::new(Shared {
            cfg: ServeConfig { queue_capacity, ..ServeConfig::default() },
            session: Arc::new(Session::new(Framework::new(ArchSpec::volta_v100()))),
            admission: BoundedQueue::new(queue_capacity),
            jobs: BoundedQueue::new(usize::MAX),
            stats: StatsInner::default(),
            breaker: Breaker::new(BreakerPolicy::default()),
            retry_tokens: AtomicUsize::new(0),
            fault: None,
            obs: None,
            req_ids: AtomicU64::new(0),
        })
    }

    #[test]
    fn front_serves_results_through_a_live_server() {
        let server = Server::new(Framework::new(ArchSpec::volta_v100()), ServeConfig::default());
        let front = server.front();
        let req = request(1);
        let expected_rows = req.c.rows();
        let t = front.try_submit(req).expect("valid request");
        let got = t.wait().expect("served");
        assert_eq!(got.c.rows(), expected_rows);
        assert_eq!(front.backlog_len(), 0, "uncontended push bypasses the backlog");
        let stats = server.shutdown();
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.submitted, 1);
    }

    #[test]
    fn invalid_requests_fail_synchronously() {
        let shared = standalone_shared(4);
        let front = AsyncFront::new(shared);
        let bad = GemmRequest {
            b: MatF32::random(9, 12, 2), // K mismatch
            ..request(1)
        };
        assert!(matches!(front.try_submit(bad), Err(ServeError::Invalid(_))));
        assert_eq!(front.backlog_len(), 0);
    }

    #[test]
    fn full_queue_buffers_instead_of_blocking() {
        let shared = standalone_shared(1);
        let front = AsyncFront::new(Arc::clone(&shared));
        let tickets: Vec<Ticket> =
            (0..3).map(|i| front.try_submit(request(i)).expect("admitted")).collect();
        // One in the queue, two buffered — and nothing blocked.
        assert_eq!(shared.admission.len(), 1);
        assert_eq!(front.backlog_len(), 2);
        assert_eq!(shared.stats.submitted.load(Ordering::Relaxed), 1);
        // Freeing a slot lets the next flush hand over the oldest
        // buffered request, preserving submission order.
        let first = shared.admission.pop().expect("queued");
        assert_eq!(first.id, 0);
        assert_eq!(front.flush(), 1);
        assert_eq!(shared.admission.pop().expect("flushed").id, 1);
        assert_eq!(shared.stats.submitted.load(Ordering::Relaxed), 2);
        drop(tickets);
    }

    #[test]
    fn closed_queue_resolves_tickets_as_shutting_down() {
        let shared = standalone_shared(4);
        let front = AsyncFront::new(Arc::clone(&shared));
        shared.admission.close();
        let t = front.try_submit(request(0)).expect("validates before the close matters");
        match t.wait() {
            Err(ServeError::ShuttingDown) => {}
            other => panic!("expected ShuttingDown, got {:?}", other.map(|r| r.timing)),
        }
        assert_eq!(front.backlog_len(), 0);
        assert_eq!(shared.stats.rejected.load(Ordering::Relaxed), 1);
        assert_eq!(shared.stats.submitted.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn drop_resolves_buffered_tickets() {
        let shared = standalone_shared(1);
        let front = AsyncFront::new(Arc::clone(&shared));
        let t0 = front.try_submit(request(0)).expect("admitted");
        let t1 = front.try_submit(request(2)).expect("admitted");
        assert_eq!(front.backlog_len(), 1);
        drop(front);
        // The queued request is untouched; the buffered one was closed
        // out rather than stranded.
        assert!(t0.poll().is_none(), "queued request still pending server-side");
        match t1.wait() {
            Err(ServeError::ShuttingDown) => {}
            other => panic!("expected ShuttingDown, got {:?}", other.map(|r| r.timing)),
        }
        assert_eq!(shared.stats.rejected.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn drain_waits_for_space_and_reports_close() {
        // Space frees up: drain pushes everything and reports true.
        let shared = standalone_shared(1);
        let front = Arc::new(AsyncFront::new(Arc::clone(&shared)));
        let _t0 = front.try_submit(request(0)).expect("admitted");
        let _t1 = front.try_submit(request(2)).expect("admitted");
        let drainer = {
            let front = Arc::clone(&front);
            std::thread::spawn(move || front.drain())
        };
        std::thread::sleep(Duration::from_millis(20));
        shared.admission.pop().expect("make room");
        assert!(drainer.join().expect("drainer exits"), "drain pushed the backlog");
        assert_eq!(front.backlog_len(), 0);
        assert_eq!(shared.admission.len(), 1);

        // Closed while full: drain resolves the leftover and reports
        // false.
        let shared = standalone_shared(1);
        let front = Arc::new(AsyncFront::new(Arc::clone(&shared)));
        let _t0 = front.try_submit(request(0)).expect("admitted");
        let t1 = front.try_submit(request(2)).expect("admitted");
        let drainer = {
            let front = Arc::clone(&front);
            std::thread::spawn(move || front.drain())
        };
        std::thread::sleep(Duration::from_millis(20));
        shared.admission.close();
        assert!(!drainer.join().expect("drainer exits"), "leftover was rejected");
        match t1.wait() {
            Err(ServeError::ShuttingDown) => {}
            other => panic!("expected ShuttingDown, got {:?}", other.map(|r| r.timing)),
        }
    }
}

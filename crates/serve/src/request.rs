//! Request/response types of the serving layer.

use ctb_matrix::{GemmShape, MatF32};
use std::sync::mpsc;
use std::time::Duration;

/// One GEMM submitted to the server: `C = alpha * A * B + beta * C`.
///
/// Requests are independent — each carries its own scalars and buffers.
/// The batcher coalesces concurrently queued requests that share an
/// `(alpha, beta)` pair into a single [`ctb_matrix::GemmBatch`] (the
/// batch type has one scalar pair for the whole batch); requests with
/// distinct scalars in the same window simply form separate batches.
#[derive(Debug, Clone)]
pub struct GemmRequest {
    pub a: MatF32,
    pub b: MatF32,
    pub c: MatF32,
    pub alpha: f32,
    pub beta: f32,
    /// Drop the request (completing it with [`ServeError::Expired`])
    /// if it has waited in the admission queue longer than this by the
    /// time a batch is formed. `None` waits indefinitely.
    pub deadline: Option<Duration>,
}

impl GemmRequest {
    /// A request with default scalars (`alpha = 1`, `beta = 0`) and no
    /// deadline. `c` is implied all-zeros of the output shape.
    pub fn new(a: MatF32, b: MatF32) -> Self {
        let c = MatF32::zeros(a.rows(), b.cols());
        GemmRequest { a, b, c, alpha: 1.0, beta: 0.0, deadline: None }
    }

    /// The `(M, N, K)` of this request.
    pub fn shape(&self) -> GemmShape {
        GemmShape::new(self.c.rows(), self.c.cols(), self.a.cols())
    }

    /// Validate buffer-shape consistency; mirrors what
    /// [`ctb_matrix::GemmBatch::validate`] would reject later, but at
    /// admission time so the submitter gets the error synchronously.
    pub fn validate(&self) -> Result<(), String> {
        let s = self.shape();
        if s.m == 0 || s.n == 0 {
            return Err("GEMM with empty output matrix".into());
        }
        if (self.a.rows(), self.a.cols()) != (s.m, s.k) {
            return Err(format!("A is {}x{}, expected {}x{}", self.a.rows(), self.a.cols(), s.m, s.k));
        }
        if (self.b.rows(), self.b.cols()) != (s.k, s.n) {
            return Err(format!("B is {}x{}, expected {}x{}", self.b.rows(), self.b.cols(), s.k, s.n));
        }
        Ok(())
    }
}

/// Why a request did not produce a result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// Request failed validation at submit time.
    Invalid(String),
    /// `try_submit` found the admission queue full.
    QueueFull,
    /// The server no longer accepts requests.
    ShuttingDown,
    /// The request out-waited its deadline in the admission queue.
    Expired,
    /// Planning the coalesced batch failed (server-side bug surface).
    PlanFailed(String),
    /// A worker panicked executing this request and every recovery path
    /// (retry, degraded baseline) was exhausted. The panic was isolated:
    /// the worker survived and batch-mates were re-admitted separately.
    WorkerPanic(String),
    /// [`Ticket::wait_for`] gave up before the server completed the
    /// request. The request is still in flight server-side; its
    /// eventual response is counted as abandoned.
    WaitTimeout,
    /// The server dropped the response channel without completing the
    /// request — must not happen while the drain contract holds.
    Disconnected,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Invalid(m) => write!(f, "invalid request: {m}"),
            ServeError::QueueFull => write!(f, "admission queue full"),
            ServeError::ShuttingDown => write!(f, "server shutting down"),
            ServeError::Expired => write!(f, "deadline expired in queue"),
            ServeError::PlanFailed(m) => write!(f, "planning failed: {m}"),
            ServeError::WorkerPanic(m) => write!(f, "worker panicked: {m}"),
            ServeError::WaitTimeout => write!(f, "gave up waiting for the response"),
            ServeError::Disconnected => write!(f, "server dropped the request"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Per-request latency breakdown, microseconds of wall-clock time.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RequestTiming {
    /// Submission until the batch containing the request started
    /// planning (admission queue + batching window).
    pub queue_us: f64,
    /// Plan lookup/computation for the coalesced batch (shared by all
    /// of its requests; ~0 on a plan-cache hit).
    pub plan_us: f64,
    /// Functional execution of the coalesced batch.
    pub exec_us: f64,
    /// Number of requests coalesced into the batch that carried this
    /// one (1 = no coalescing happened).
    pub batch_size: usize,
}

impl RequestTiming {
    /// End-to-end latency: queueing + planning + execution.
    pub fn total_us(&self) -> f64 {
        self.queue_us + self.plan_us + self.exec_us
    }
}

/// A completed request: the computed `C` plus its latency breakdown.
#[derive(Debug, Clone)]
pub struct GemmResult {
    pub c: MatF32,
    pub timing: RequestTiming,
    /// `true` when the result came from the degraded per-kernel
    /// baseline executor (plan failure, exhausted retries, or an open
    /// circuit breaker) rather than the coordinated path. Degraded
    /// results are still bitwise-exact — both executors replay the
    /// identical ascending-k accumulation per GEMM.
    pub degraded: bool,
}

/// Handle to one in-flight request, returned by
/// [`crate::Server::submit`]. Wait on it from the submitting thread.
#[derive(Debug)]
pub struct Ticket {
    pub(crate) rx: mpsc::Receiver<Result<GemmResult, ServeError>>,
}

impl Ticket {
    /// Block until the server completes the request.
    pub fn wait(self) -> Result<GemmResult, ServeError> {
        self.rx.recv().map_err(|_| ServeError::Disconnected)?
    }

    /// Block at most `timeout` for the response. On timeout the ticket
    /// is consumed and [`ServeError::WaitTimeout`] is returned; the
    /// server still completes the request (its response is then counted
    /// in [`crate::ServeStats::abandoned`]). This is the bounded wait
    /// the chaos suite uses to turn a would-be hang into a test failure.
    pub fn wait_for(self, timeout: Duration) -> Result<GemmResult, ServeError> {
        match self.rx.recv_timeout(timeout) {
            Ok(r) => r,
            Err(mpsc::RecvTimeoutError::Timeout) => Err(ServeError::WaitTimeout),
            Err(mpsc::RecvTimeoutError::Disconnected) => Err(ServeError::Disconnected),
        }
    }

    /// Non-blocking poll; `None` while the request is still in flight.
    pub fn poll(&self) -> Option<Result<GemmResult, ServeError>> {
        match self.rx.try_recv() {
            Ok(r) => Some(r),
            Err(mpsc::TryRecvError::Empty) => None,
            Err(mpsc::TryRecvError::Disconnected) => Some(Err(ServeError::Disconnected)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_shape_and_validation() {
        let r = GemmRequest::new(MatF32::random(4, 6, 1), MatF32::random(6, 5, 2));
        assert_eq!(r.shape(), GemmShape::new(4, 5, 6));
        r.validate().expect("consistent request");

        let bad = GemmRequest { b: MatF32::random(7, 5, 3), ..r.clone() };
        assert!(bad.validate().is_err());

        let empty = GemmRequest::new(MatF32::zeros(0, 3), MatF32::zeros(3, 2));
        assert!(empty.validate().unwrap_err().contains("empty output"));
    }

    #[test]
    fn k_zero_requests_are_admissible() {
        // K = 0 is beta-scaling only; the planner supports it, so the
        // server must admit it.
        let r = GemmRequest::new(MatF32::zeros(3, 0), MatF32::zeros(0, 4));
        r.validate().expect("K=0 is valid");
    }

    #[test]
    fn timing_totals_add_up() {
        let t = RequestTiming { queue_us: 10.0, plan_us: 2.5, exec_us: 7.5, batch_size: 4 };
        assert_eq!(t.total_us(), 20.0);
    }
}

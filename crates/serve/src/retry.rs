//! Retry policy, bounded exponential backoff, and the circuit breaker.
//!
//! Failure handling is split between two deterministic, count-based
//! mechanisms (count-based rather than time-based so chaos schedules
//! replay identically regardless of machine speed):
//!
//! * **Per-request retry** ([`RetryPolicy`]) — when a coalesced batch
//!   panics, its members are re-admitted *individually* (a poisoned
//!   request must not take its batch-mates down with it a second time),
//!   each re-admission paying an exponential backoff bounded by
//!   `backoff_cap`. A server-lifetime `retry_budget` caps total
//!   re-admissions so a panic storm cannot amplify itself indefinitely.
//! * **Circuit breaker** ([`BreakerPolicy`], [`Breaker`]) — after
//!   `trip_threshold` consecutive coordinated-path failures the breaker
//!   opens and the next `open_batches` batches bypass planning entirely,
//!   executing on the per-kernel baseline (degraded mode, the paper's
//!   Fig 8 default executor). The breaker then closes and the
//!   coordinated path gets another chance.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

/// Per-request retry with bounded exponential backoff.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Re-admissions allowed per request after its first attempt.
    /// Zero disables retry: a panicked member degrades immediately.
    pub max_retries: u32,
    /// Backoff before retry attempt 1; attempt `n` waits
    /// `backoff_base * 2^(n-1)`, capped at `backoff_cap`.
    pub backoff_base: Duration,
    /// Upper bound on any single backoff sleep.
    pub backoff_cap: Duration,
    /// Server-lifetime cap on total re-admissions across all requests.
    pub retry_budget: usize,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 2,
            backoff_base: Duration::from_micros(50),
            backoff_cap: Duration::from_millis(2),
            retry_budget: 100_000,
        }
    }
}

impl RetryPolicy {
    /// The bounded exponential backoff before retry `attempt` (1-based).
    pub fn backoff_for(&self, attempt: u32) -> Duration {
        let shift = attempt.saturating_sub(1).min(20);
        (self.backoff_base * 2u32.pow(shift)).min(self.backoff_cap)
    }
}

/// Consecutive-failure circuit breaker configuration.
#[derive(Debug, Clone)]
pub struct BreakerPolicy {
    /// Consecutive coordinated-path failures (plan errors or executor
    /// panics) that open the breaker. Zero disables the breaker.
    pub trip_threshold: usize,
    /// Batches served degraded (baseline, no planning) while open;
    /// after consuming them the breaker closes again.
    pub open_batches: usize,
}

impl Default for BreakerPolicy {
    fn default() -> Self {
        BreakerPolicy { trip_threshold: 8, open_batches: 16 }
    }
}

/// Breaker state: lock-free, shared by every worker (public so the
/// cluster layer can run one breaker per device over the same policy).
#[derive(Debug)]
pub struct Breaker {
    policy: BreakerPolicy,
    consecutive: AtomicUsize,
    open_remaining: AtomicUsize,
}

impl Breaker {
    pub fn new(policy: BreakerPolicy) -> Self {
        Breaker { policy, consecutive: AtomicUsize::new(0), open_remaining: AtomicUsize::new(0) }
    }

    /// Record a coordinated-path failure; `true` when this failure
    /// tripped the breaker open (the caller counts the trip).
    pub fn record_failure(&self) -> bool {
        if self.policy.trip_threshold == 0 {
            return false;
        }
        let seen = self.consecutive.fetch_add(1, Ordering::Relaxed) + 1;
        if seen >= self.policy.trip_threshold && !self.is_open() {
            self.consecutive.store(0, Ordering::Relaxed);
            self.open_remaining.store(self.policy.open_batches, Ordering::Relaxed);
            return true;
        }
        false
    }

    /// A coordinated-path success resets the consecutive-failure run.
    pub fn record_success(&self) {
        self.consecutive.store(0, Ordering::Relaxed);
    }

    /// If open, consume one degraded-batch slot and return `true` (the
    /// batch must be served on the baseline). The last consumed slot
    /// closes the breaker.
    pub fn consume_open(&self) -> bool {
        let mut cur = self.open_remaining.load(Ordering::Relaxed);
        while cur > 0 {
            match self.open_remaining.compare_exchange_weak(
                cur,
                cur - 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(seen) => cur = seen,
            }
        }
        false
    }

    pub fn is_open(&self) -> bool {
        self.open_remaining.load(Ordering::Relaxed) > 0
    }

    /// Observable breaker state `(consecutive failures, open slots
    /// remaining)` — with the policy, everything needed to rebuild the
    /// breaker mid-run (savestate serialization view).
    pub fn state(&self) -> (usize, usize) {
        (
            self.consecutive.load(Ordering::Relaxed),
            self.open_remaining.load(Ordering::Relaxed),
        )
    }

    pub fn policy(&self) -> &BreakerPolicy {
        &self.policy
    }

    /// Rebuild a breaker mid-run from [`Breaker::state`] (savestate
    /// restore): same policy, same failure run, same open slots.
    pub fn restore(policy: BreakerPolicy, consecutive: usize, open_remaining: usize) -> Self {
        Breaker {
            policy,
            consecutive: AtomicUsize::new(consecutive),
            open_remaining: AtomicUsize::new(open_remaining),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_then_caps() {
        let p = RetryPolicy {
            backoff_base: Duration::from_micros(100),
            backoff_cap: Duration::from_micros(350),
            ..RetryPolicy::default()
        };
        assert_eq!(p.backoff_for(1), Duration::from_micros(100));
        assert_eq!(p.backoff_for(2), Duration::from_micros(200));
        assert_eq!(p.backoff_for(3), Duration::from_micros(350), "capped");
        assert_eq!(p.backoff_for(30), Duration::from_micros(350), "huge attempts stay capped");
    }

    #[test]
    fn breaker_trips_after_threshold_consecutive_failures() {
        let b = Breaker::new(BreakerPolicy { trip_threshold: 3, open_batches: 2 });
        assert!(!b.record_failure());
        assert!(!b.record_failure());
        assert!(b.record_failure(), "third consecutive failure trips");
        assert!(b.is_open());
        assert!(b.consume_open());
        assert!(b.consume_open());
        assert!(!b.is_open(), "open slots consumed, breaker closed");
        assert!(!b.consume_open());
    }

    #[test]
    fn success_resets_the_run() {
        let b = Breaker::new(BreakerPolicy { trip_threshold: 2, open_batches: 1 });
        assert!(!b.record_failure());
        b.record_success();
        assert!(!b.record_failure(), "run restarted by the success");
        assert!(b.record_failure());
    }

    #[test]
    fn zero_threshold_disables_the_breaker() {
        let b = Breaker::new(BreakerPolicy { trip_threshold: 0, open_batches: 4 });
        for _ in 0..50 {
            assert!(!b.record_failure());
        }
        assert!(!b.is_open());
    }

    #[test]
    fn restored_breaker_continues_mid_run() {
        let b = Breaker::new(BreakerPolicy { trip_threshold: 3, open_batches: 4 });
        b.record_failure();
        b.record_failure();
        let (consecutive, open) = b.state();
        assert_eq!((consecutive, open), (2, 0));
        let r = Breaker::restore(b.policy().clone(), consecutive, open);
        assert!(r.record_failure(), "third failure after restore trips");
        assert!(r.is_open());
        // An open breaker round-trips its remaining slots too.
        let (c2, o2) = r.state();
        let r2 = Breaker::restore(r.policy().clone(), c2, o2);
        assert_eq!(r2.state(), r.state());
        for _ in 0..4 {
            assert!(r2.consume_open());
        }
        assert!(!r2.is_open());
    }

    #[test]
    fn failures_while_open_do_not_retrip() {
        let b = Breaker::new(BreakerPolicy { trip_threshold: 1, open_batches: 3 });
        assert!(b.record_failure(), "first failure trips");
        assert!(!b.record_failure(), "already open: no second trip counted");
        assert!(b.consume_open());
    }
}

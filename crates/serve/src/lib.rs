//! `ctb-serve` — the concurrent batched-GEMM serving layer.
//!
//! The paper's thesis is that many small GEMMs coalesced into one
//! coordinated tiling + batching plan beat per-kernel launches (Fig 1,
//! 8, 9). Offline, this repository already exploits that through
//! [`ctb_core::Framework`] and the plan-caching [`ctb_core::Session`].
//! This crate closes the loop for *online* traffic: many producer
//! threads submit single GEMMs, the server coalesces whatever arrives
//! inside a bounded batching window into one `GemmBatch`, plans it once
//! through the shared session (repeated shape mixes hit the plan cache
//! and the simulation memo), executes the plan on a small worker pool,
//! and routes each result back to its requester with a per-request
//! latency breakdown.
//!
//! ```
//! use ctb_core::Framework;
//! use ctb_gpu_specs::ArchSpec;
//! use ctb_matrix::MatF32;
//! use ctb_serve::{GemmRequest, ServeConfig, Server};
//!
//! let server = Server::new(Framework::new(ArchSpec::volta_v100()), ServeConfig::default());
//! let req = GemmRequest::new(MatF32::random(32, 16, 1), MatF32::random(16, 24, 2));
//! let result = server.call(req).unwrap();
//! assert_eq!((result.c.rows(), result.c.cols()), (32, 24));
//! let stats = server.shutdown();
//! assert_eq!(stats.completed, 1);
//! ```
//!
//! Correctness contract: the server computes *exactly* what a direct
//! [`ctb_core::execute_plan`] call would — every C element accumulates
//! in ascending-k order with the `alpha*acc + beta*c` epilogue — so
//! results are bitwise identical to
//! [`ctb_matrix::GemmBatch::reference_result_exact`] no matter how
//! requests are coalesced, interleaved, or raced. The stress suite in
//! `tests/stress.rs` holds the server to that bit-for-bit.
//!
//! Resilience contract: workers are panic-isolated
//! ([`std::panic::catch_unwind`] at the job boundary), panicked batch
//! members retry individually under a [`RetryPolicy`] (bounded
//! exponential backoff, server-lifetime budget), and plan failures,
//! exhausted retries, or an open circuit breaker ([`BreakerPolicy`])
//! fall back to the per-kernel default baseline — still bitwise-exact,
//! tagged [`GemmResult::degraded`]. The deterministic chaos seam
//! ([`FaultConfig`], [`FaultInjector`]) lets `tests/chaos.rs` force
//! every one of those paths on a seeded schedule and reconcile the
//! server's accounting against the injector's [`FaultLog`] exactly.

mod fault;
mod front;
mod queue;
mod request;
mod retry;
mod server;
mod stats;

pub use fault::{
    panic_message, FaultConfig, FaultInjector, FaultLog, FaultSite, FAULT_SITES,
    INJECTED_DEGRADED_PANIC_MSG, INJECTED_PANIC_MSG,
};
pub use front::AsyncFront;
pub use queue::{BoundedQueue, PopTimedOut, PushError};
pub use request::{GemmRequest, GemmResult, RequestTiming, ServeError, Ticket};
pub use retry::{Breaker, BreakerPolicy, RetryPolicy};
pub use server::{ServeConfig, Server};
pub use stats::ServeStats;

#[cfg(test)]
mod tests {
    use super::*;
    use ctb_core::Framework;
    use ctb_gpu_specs::ArchSpec;
    use ctb_matrix::{assert_bitwise_eq, GemmBatch, GemmShape, MatF32};
    use std::sync::Arc;
    use std::time::Duration;

    fn server_with(cfg: ServeConfig) -> Server {
        Server::new(Framework::new(ArchSpec::volta_v100()), cfg)
    }

    fn request_from(batch: &GemmBatch, i: usize) -> GemmRequest {
        GemmRequest {
            a: batch.a[i].clone(),
            b: batch.b[i].clone(),
            c: batch.c[i].clone(),
            alpha: batch.alpha,
            beta: batch.beta,
            deadline: None,
        }
    }

    #[test]
    fn single_request_is_bitwise_exact() {
        let server = server_with(ServeConfig::default());
        let shapes = [GemmShape::new(48, 64, 96)];
        let batch = GemmBatch::random(&shapes, 0.75, -1.5, 3);
        let expected = batch.reference_result_exact();
        let got = server.call(request_from(&batch, 0)).expect("served");
        assert_bitwise_eq(&expected, std::slice::from_ref(&got.c), "served result");
        assert_eq!(got.timing.batch_size, 1);
        assert!(got.timing.total_us() > 0.0);
    }

    #[test]
    fn window_coalesces_queued_requests() {
        // A generous window plus submit-then-wait guarantees the
        // batcher sees all four requests before the window closes.
        let server = server_with(ServeConfig {
            batch_window: Duration::from_millis(200),
            ..ServeConfig::default()
        });
        let shapes = vec![GemmShape::new(16, 32, 64); 4];
        let batch = GemmBatch::random(&shapes, 1.0, 0.5, 9);
        let expected = batch.reference_result_exact();
        let tickets: Vec<Ticket> =
            (0..4).map(|i| server.submit(request_from(&batch, i)).expect("admitted")).collect();
        for (i, t) in tickets.into_iter().enumerate() {
            let got = t.wait().expect("completed");
            assert_bitwise_eq(
                std::slice::from_ref(&expected[i]),
                std::slice::from_ref(&got.c),
                "coalesced result",
            );
            assert_eq!(got.timing.batch_size, 4, "all four requests shared one batch");
        }
        let stats = server.shutdown();
        assert_eq!(stats.completed, 4);
        assert_eq!(stats.batches, 1, "one coalesced batch");
        assert_eq!(stats.mean_batch_size, 4.0);
    }

    #[test]
    fn mixed_scalars_split_into_separate_batches() {
        let server = server_with(ServeConfig {
            batch_window: Duration::from_millis(200),
            ..ServeConfig::default()
        });
        let shapes = vec![GemmShape::new(24, 24, 24); 2];
        let b1 = GemmBatch::random(&shapes, 1.0, 0.0, 1);
        let b2 = GemmBatch::random(&shapes, 0.5, 1.0, 2);
        let t: Vec<Ticket> = [(&b1, 0), (&b2, 0), (&b1, 1), (&b2, 1)]
            .into_iter()
            .map(|(b, i)| server.submit(request_from(b, i)).expect("admitted"))
            .collect();
        let results: Vec<GemmResult> = t.into_iter().map(|t| t.wait().expect("done")).collect();
        let e1 = b1.reference_result_exact();
        let e2 = b2.reference_result_exact();
        assert_bitwise_eq(&e1, &[results[0].c.clone(), results[2].c.clone()], "alpha=1 group");
        assert_bitwise_eq(&e2, &[results[1].c.clone(), results[3].c.clone()], "alpha=.5 group");
        for r in &results {
            assert_eq!(r.timing.batch_size, 2, "each scalar group batched separately");
        }
        let stats = server.shutdown();
        assert_eq!(stats.batches, 2);
    }

    #[test]
    fn shutdown_rejects_new_but_completes_admitted() {
        let server = server_with(ServeConfig {
            batch_window: Duration::from_millis(50),
            ..ServeConfig::default()
        });
        let shapes = [GemmShape::new(32, 32, 32)];
        let batch = GemmBatch::random(&shapes, 1.0, 0.0, 7);
        let expected = batch.reference_result_exact();
        let tickets: Vec<Ticket> =
            (0..6).map(|_| server.submit(request_from(&batch, 0)).expect("admitted")).collect();
        let stats = server.shutdown(); // joins after draining
        assert_eq!(stats.completed, 6, "every admitted request completed");
        for t in tickets {
            let got = t.wait().expect("drained result");
            assert_bitwise_eq(&expected, std::slice::from_ref(&got.c), "drained result");
        }
    }

    #[test]
    fn close_rejects_new_submissions_while_draining_old() {
        let server = Arc::new(server_with(ServeConfig::default()));
        let shapes = [GemmShape::new(8, 8, 8)];
        let batch = GemmBatch::random(&shapes, 1.0, 0.0, 1);
        let producer = {
            let server = Arc::clone(&server);
            let req = request_from(&batch, 0);
            std::thread::spawn(move || {
                let mut completed = 0usize;
                loop {
                    match server.submit(req.clone()) {
                        Ok(t) => {
                            t.wait().expect("admitted requests complete");
                            completed += 1;
                        }
                        Err(ServeError::ShuttingDown) => return completed,
                        Err(e) => panic!("unexpected error {e}"),
                    }
                }
            })
        };
        std::thread::sleep(Duration::from_millis(20));
        server.close();
        let completed = producer.join().expect("producer exits cleanly");
        let server = Arc::into_inner(server).expect("sole owner now");
        let stats = server.shutdown();
        assert_eq!(stats.completed, completed, "close dropped no admitted request");
        assert!(stats.rejected >= 1, "the final submit was rejected");
    }

    #[test]
    fn deadline_expiry_is_reported() {
        let server = server_with(ServeConfig {
            batch_window: Duration::from_millis(5),
            ..ServeConfig::default()
        });
        let shapes = [GemmShape::new(8, 8, 8)];
        let batch = GemmBatch::random(&shapes, 1.0, 0.0, 2);
        let mut req = request_from(&batch, 0);
        req.deadline = Some(Duration::ZERO);
        let t = server.submit(req).expect("admitted");
        match t.wait() {
            Err(ServeError::Expired) => {}
            other => panic!("expected Expired, got {:?}", other.map(|r| r.timing)),
        }
        let stats = server.shutdown();
        assert_eq!(stats.expired, 1);
        assert_eq!(stats.completed, 0);
    }

    #[test]
    fn invalid_requests_fail_synchronously() {
        let server = server_with(ServeConfig::default());
        let bad = GemmRequest {
            a: MatF32::random(4, 5, 1),
            b: MatF32::random(6, 3, 2), // K mismatch
            c: MatF32::zeros(4, 3),
            alpha: 1.0,
            beta: 0.0,
            deadline: None,
        };
        match server.submit(bad) {
            Err(ServeError::Invalid(_)) => {}
            other => panic!("expected Invalid, got {other:?}"),
        }
    }

    #[test]
    fn repeated_shape_mixes_hit_the_plan_cache() {
        let server = server_with(ServeConfig {
            batch_window: Duration::from_millis(100),
            ..ServeConfig::default()
        });
        let shapes = vec![GemmShape::new(48, 64, 96), GemmShape::new(48, 64, 96)];
        for step in 0..5u64 {
            let batch = GemmBatch::random(&shapes, 1.0, 0.0, step);
            let tickets: Vec<Ticket> = (0..2)
                .map(|i| server.submit(request_from(&batch, i)).expect("admitted"))
                .collect();
            for t in tickets {
                t.wait().expect("completed");
            }
        }
        let stats = server.shutdown();
        assert_eq!(stats.completed, 10);
        // Whether the rounds coalesced into the 2-GEMM signature or
        // (under extreme scheduling delay) split into singletons, the
        // distinct signatures stay ≤ 2 and everything else is a cache
        // hit.
        assert!(stats.plan_cache.misses <= 2, "at most two signatures: {:?}", stats.plan_cache);
        assert!(stats.plan_cache.hits >= 3);
        assert!(stats.plan_cache.hit_rate() > 0.5);
    }
}

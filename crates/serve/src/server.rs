//! The batched-GEMM server: admission, coalescing, planning, execution.
//!
//! Thread structure (all plain OS threads, spawned at construction):
//!
//! ```text
//!  producers ──submit()──▶ admission queue (bounded, blocking)
//!                               │
//!                          batcher thread
//!                 (batching window, ≤ max_batch, groups
//!                  by (alpha, beta), drops expired)
//!                               │  GemmBatch jobs
//!                          batch queue
//!                       ┌───────┴───────┐
//!                   worker 0 … worker W-1
//!            session.plan (shared cache + SimMemo)
//!            framework.execute (packed execute_plan)
//!                               │
//!                  per-request response channels
//! ```
//!
//! **Backpressure contract:** [`Server::submit`] blocks while the
//! admission queue is at capacity; once it returns `Ok`, the request
//! *will* be completed — by a result, a deadline expiry, or a planning
//! error — even if the server is shut down immediately afterwards.
//! [`Server::try_submit`] returns [`ServeError::QueueFull`] instead of
//! blocking.
//!
//! **Shutdown contract:** [`Server::shutdown`] stops admissions, lets
//! the batcher drain every queued request into batches, lets the
//! workers finish every batch, joins all threads and returns the final
//! [`ServeStats`]. Dropping the server without calling `shutdown` does
//! the same, discarding the stats.

use crate::queue::{BoundedQueue, PushError};
use crate::request::{GemmRequest, GemmResult, RequestTiming, ServeError, Ticket};
use crate::stats::{ServeStats, StatsInner};
use ctb_core::{Framework, Session};
use ctb_matrix::GemmBatch;
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Most requests coalesced into one batch (the paper's `B`).
    pub max_batch: usize,
    /// How long the batcher holds the first request of a batch open for
    /// more arrivals. Zero coalesces only what is already queued.
    pub batch_window: Duration,
    /// Admission-queue bound; `submit` blocks past this.
    pub queue_capacity: usize,
    /// Executor threads consuming coalesced batches.
    pub workers: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_batch: 32,
            batch_window: Duration::from_micros(200),
            queue_capacity: 256,
            workers: 2,
        }
    }
}

/// One admitted request waiting to be batched.
struct Pending {
    req: GemmRequest,
    tx: mpsc::Sender<Result<GemmResult, ServeError>>,
    enqueued: Instant,
}

/// One response route of a coalesced batch.
struct Member {
    tx: mpsc::Sender<Result<GemmResult, ServeError>>,
    enqueued: Instant,
}

/// A coalesced batch ready for a worker.
struct Job {
    batch: GemmBatch,
    members: Vec<Member>,
}

struct Shared {
    cfg: ServeConfig,
    session: Arc<Session>,
    admission: BoundedQueue<Pending>,
    jobs: BoundedQueue<Job>,
    stats: StatsInner,
}

/// A running batched-GEMM server. Cheap to share: wrap it in an `Arc`
/// and hand clones to every producer thread.
pub struct Server {
    shared: Arc<Shared>,
    batcher: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Spawn a server owning a fresh [`Session`] around `framework`.
    pub fn new(framework: Framework, cfg: ServeConfig) -> Self {
        Server::with_session(Arc::new(Session::new(framework)), cfg)
    }

    /// Spawn a server over an existing shared session — this is how
    /// several servers (or a server plus offline callers) share one
    /// plan cache and simulation memo.
    pub fn with_session(session: Arc<Session>, cfg: ServeConfig) -> Self {
        let shared = Arc::new(Shared {
            admission: BoundedQueue::new(cfg.queue_capacity),
            // The batcher is the only producer and is itself fed from
            // the bounded admission queue, so the job queue never needs
            // to push back.
            jobs: BoundedQueue::new(usize::MAX),
            cfg,
            session,
            stats: StatsInner::default(),
        });

        let batcher = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || batcher_loop(&shared))
        };
        let workers = (0..shared.cfg.workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();

        Server { shared, batcher: Some(batcher), workers }
    }

    /// Submit a request, blocking while the admission queue is full.
    pub fn submit(&self, req: GemmRequest) -> Result<Ticket, ServeError> {
        self.admit(req, true)
    }

    /// Submit without blocking; [`ServeError::QueueFull`] when the
    /// admission queue is at capacity.
    pub fn try_submit(&self, req: GemmRequest) -> Result<Ticket, ServeError> {
        self.admit(req, false)
    }

    /// Submit and wait — the synchronous convenience path.
    pub fn call(&self, req: GemmRequest) -> Result<GemmResult, ServeError> {
        self.submit(req)?.wait()
    }

    fn admit(&self, req: GemmRequest, blocking: bool) -> Result<Ticket, ServeError> {
        if let Err(m) = req.validate() {
            return Err(ServeError::Invalid(m));
        }
        let (tx, rx) = mpsc::channel();
        let pending = Pending { req, tx, enqueued: Instant::now() };
        let pushed = if blocking {
            self.shared.admission.push(pending)
        } else {
            self.shared.admission.try_push(pending)
        };
        match pushed {
            Ok(()) => {
                self.shared.stats.submitted.fetch_add(1, Ordering::Relaxed);
                Ok(Ticket { rx })
            }
            Err(kind) => {
                self.shared.stats.rejected.fetch_add(1, Ordering::Relaxed);
                Err(match kind {
                    PushError::Full => ServeError::QueueFull,
                    PushError::Closed => ServeError::ShuttingDown,
                })
            }
        }
    }

    /// Point-in-time accounting: request/batch counters plus the shared
    /// session's plan-cache and simulation-memo statistics.
    pub fn stats(&self) -> ServeStats {
        self.shared.stats.snapshot(self.shared.session.stats(), self.shared.session.sim_stats())
    }

    /// The shared planning session (plan cache + simulation memo).
    pub fn session(&self) -> &Arc<Session> {
        &self.shared.session
    }

    /// Requests currently waiting in the admission queue (monitoring
    /// hook; racy by nature).
    pub fn queue_depth(&self) -> usize {
        self.shared.admission.len()
    }

    /// Stop accepting new requests without waiting for the drain:
    /// subsequent `submit`/`try_submit` calls fail with
    /// [`ServeError::ShuttingDown`], already-admitted requests keep
    /// flowing. Call [`Server::shutdown`] to drain and join.
    pub fn close(&self) {
        self.shared.admission.close();
    }

    /// Stop admissions, drain every in-flight request, join all threads
    /// and return the final statistics.
    pub fn shutdown(mut self) -> ServeStats {
        self.shutdown_inner();
        self.stats()
    }

    fn shutdown_inner(&mut self) {
        self.shared.admission.close();
        if let Some(b) = self.batcher.take() {
            let _ = b.join();
        }
        debug_assert!(self.shared.admission.is_empty(), "batcher exits only when drained");
        // Only after the batcher has drained the admission queue may the
        // job queue be closed — workers then drain it and exit.
        self.shared.jobs.close();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Collect one batching window's worth of requests: the blocking first
/// pop opens the window, then arrivals are added until the window
/// closes, `max_batch` is reached, or the queue reports closed+drained.
/// Returns `None` when the server is fully drained.
fn collect_window(shared: &Shared) -> Option<Vec<Pending>> {
    let first = shared.admission.pop()?;
    let deadline = Instant::now() + shared.cfg.batch_window;
    let mut picked = vec![first];
    while picked.len() < shared.cfg.max_batch.max(1) {
        match shared.admission.pop_until(deadline) {
            Ok(Some(p)) => picked.push(p),
            // Closed and drained: ship what we have; the outer loop's
            // next `pop` returns `None` and ends the batcher.
            Ok(None) => break,
            // Window expired.
            Err(()) => break,
        }
    }
    Some(picked)
}

fn batcher_loop(shared: &Shared) {
    while let Some(picked) = collect_window(shared) {
        let now = Instant::now();
        // Expire requests that out-waited their deadline in the queue.
        let mut live = Vec::with_capacity(picked.len());
        for p in picked {
            match p.req.deadline {
                Some(d) if now.duration_since(p.enqueued) > d => {
                    shared.stats.expired.fetch_add(1, Ordering::Relaxed);
                    let _ = p.tx.send(Err(ServeError::Expired));
                }
                _ => live.push(p),
            }
        }
        // Coalesce per (alpha, beta) — GemmBatch carries one scalar
        // pair, so only scalar-compatible requests share a batch.
        // Arrival order is preserved within each group.
        let mut groups: Vec<(u32, u32, Vec<Pending>)> = Vec::new();
        for p in live {
            let key = (p.req.alpha.to_bits(), p.req.beta.to_bits());
            match groups.iter_mut().find(|(a, b, _)| (*a, *b) == key) {
                Some((_, _, g)) => g.push(p),
                None => groups.push((key.0, key.1, vec![p])),
            }
        }
        for (alpha_bits, beta_bits, group) in groups {
            ship_group(
                shared,
                f32::from_bits(alpha_bits),
                f32::from_bits(beta_bits),
                group,
            );
        }
    }
}

/// Assemble one scalar-compatible group into a `GemmBatch` job.
fn ship_group(shared: &Shared, alpha: f32, beta: f32, group: Vec<Pending>) {
    let mut a = Vec::with_capacity(group.len());
    let mut b = Vec::with_capacity(group.len());
    let mut c = Vec::with_capacity(group.len());
    let mut members = Vec::with_capacity(group.len());
    for p in group {
        a.push(p.req.a);
        b.push(p.req.b);
        c.push(p.req.c);
        members.push(Member { tx: p.tx, enqueued: p.enqueued });
    }
    match GemmBatch::from_parts(a, b, c, alpha, beta) {
        Ok(batch) => {
            // The job queue is effectively unbounded and is only closed
            // after this thread exits (see `shutdown_inner`), so the
            // push cannot fail. If that ordering were ever broken, the
            // dropped senders would surface as `Disconnected` tickets —
            // loud, not silent.
            let pushed = shared.jobs.try_push(Job { batch, members });
            debug_assert!(pushed.is_ok(), "job queue closed while the batcher was live");
        }
        Err(m) => {
            for member in members {
                let _ = member.tx.send(Err(ServeError::PlanFailed(m.clone())));
            }
        }
    }
}

fn worker_loop(shared: &Shared) {
    while let Some(job) = shared.jobs.pop() {
        run_job(shared, job);
    }
}

fn run_job(shared: &Shared, job: Job) {
    let n = job.batch.len();
    let t_plan = Instant::now();
    let queue_us: Vec<f64> = job
        .members
        .iter()
        .map(|m| t_plan.duration_since(m.enqueued).as_secs_f64() * 1e6)
        .collect();
    let plan = match shared.session.plan(&job.batch.shapes) {
        Ok(p) => p,
        Err(m) => {
            for member in job.members {
                let _ = member.tx.send(Err(ServeError::PlanFailed(m.clone())));
            }
            return;
        }
    };
    let plan_us = t_plan.elapsed().as_secs_f64() * 1e6;
    let t_exec = Instant::now();
    let (results, _report) = shared.session.framework().execute(&job.batch, &plan);
    let exec_us = t_exec.elapsed().as_secs_f64() * 1e6;

    shared.stats.batches.fetch_add(1, Ordering::Relaxed);
    for ((member, c), queue_us) in job.members.into_iter().zip(results).zip(queue_us) {
        let timing = RequestTiming { queue_us, plan_us, exec_us, batch_size: n };
        shared.stats.record_latency(timing.total_us());
        shared.stats.completed.fetch_add(1, Ordering::Relaxed);
        // A requester that dropped its ticket is not an error.
        let _ = member.tx.send(Ok(GemmResult { c, timing }));
    }
}

//! The batched-GEMM server: admission, coalescing, planning, execution,
//! and the resilience layer (panic isolation, retry, degradation).
//!
//! Thread structure (all plain OS threads, spawned at construction):
//!
//! ```text
//!  producers ──submit()──▶ admission queue (bounded, blocking)
//!                               │
//!                          batcher thread
//!                 (batching window, ≤ max_batch, groups
//!                  by (alpha, beta), drops expired)
//!                               │  GemmBatch jobs
//!                          batch queue ◀── per-member retry re-admissions
//!                       ┌───────┴───────┐
//!                   worker 0 … worker W-1
//!            session.plan (shared cache + SimMemo)
//!            framework.execute (packed execute_plan)
//!              │ plan error / panic / open breaker
//!              ▼
//!            degraded per-kernel baseline (ctb-baselines default)
//!                               │
//!                  per-request response channels
//! ```
//!
//! **Backpressure contract:** [`Server::submit`] blocks while the
//! admission queue is at capacity; once it returns `Ok`, the request
//! *will* be completed — by a result (coordinated or degraded), a
//! deadline expiry, or a typed error — even if the server is shut down
//! immediately afterwards. [`Server::try_submit`] returns
//! [`ServeError::QueueFull`] instead of blocking.
//!
//! **Failure contract:** workers never die and never drop a ticket. A
//! panic anywhere in the planning/execution path is caught at the job
//! boundary ([`std::panic::catch_unwind`]); its batch members are
//! re-admitted individually with bounded exponential backoff, and when
//! retries are exhausted (or planning fails, or the circuit breaker is
//! open) the request executes on the per-kernel default baseline and is
//! tagged [`GemmResult::degraded`]. Only a panic in that last-resort
//! path surfaces as [`ServeError::WorkerPanic`]. Undeliverable
//! responses (requester dropped its ticket) are counted in
//! [`ServeStats::abandoned`], never silently discarded.
//!
//! **Shutdown contract:** [`Server::shutdown`] stops admissions, lets
//! the batcher drain every queued request into batches, lets the
//! workers finish every batch (retries that race the shutdown are
//! resolved inline through the degraded path instead of being
//! re-queued), joins all threads and returns the final [`ServeStats`].
//! Dropping the server without calling `shutdown` does the same,
//! discarding the stats.

use crate::fault::{
    panic_message, FaultInjector, FaultSite, INJECTED_DEGRADED_PANIC_MSG, INJECTED_PANIC_MSG,
};
use crate::queue::{BoundedQueue, PushError};
use crate::request::{GemmRequest, GemmResult, RequestTiming, ServeError, Ticket};
use crate::retry::{Breaker, BreakerPolicy, RetryPolicy};
use crate::stats::{ServeStats, StatsInner};
use ctb_core::{ExecutionPlan, Framework, Session};
use ctb_matrix::{GemmBatch, MatF32};
use ctb_obs::{Obs, PointKind, SpanKind};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Most requests coalesced into one batch (the paper's `B`).
    pub max_batch: usize,
    /// How long the batcher holds the first request of a batch open for
    /// more arrivals. Zero coalesces only what is already queued.
    pub batch_window: Duration,
    /// Admission-queue bound; `submit` blocks past this.
    pub queue_capacity: usize,
    /// Executor threads consuming coalesced batches.
    pub workers: usize,
    /// Per-request retry/backoff policy for panicked batches.
    pub retry: RetryPolicy,
    /// Circuit-breaker policy for the coordinated path.
    pub breaker: BreakerPolicy,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_batch: 32,
            batch_window: Duration::from_micros(200),
            queue_capacity: 256,
            workers: 2,
            retry: RetryPolicy::default(),
            breaker: BreakerPolicy::default(),
        }
    }
}

/// One admitted request waiting to be batched. Built by the blocking
/// admission path here and by the buffering [`crate::AsyncFront`].
pub(crate) struct Pending {
    /// Server-unique request id; ties the trace's `Admit` event to its
    /// terminal event.
    pub(crate) id: u64,
    pub(crate) req: GemmRequest,
    pub(crate) tx: mpsc::Sender<Result<GemmResult, ServeError>>,
    pub(crate) enqueued: Instant,
    /// Admission time on the observability clock (0 when no bus is
    /// installed). Kept alongside `enqueued` so instrumented runs
    /// measure queue time on the *same* clock the trace records.
    pub(crate) enqueued_us: u64,
}

/// One response route of a coalesced batch.
struct Member {
    id: u64,
    tx: mpsc::Sender<Result<GemmResult, ServeError>>,
    enqueued: Instant,
    enqueued_us: u64,
    /// Times this request has been re-admitted after a worker panic.
    attempts: u32,
}

/// A coalesced batch (or a single-member retry) ready for a worker.
pub(crate) struct Job {
    batch: GemmBatch,
    members: Vec<Member>,
}

pub(crate) struct Shared {
    pub(crate) cfg: ServeConfig,
    pub(crate) session: Arc<Session>,
    pub(crate) admission: BoundedQueue<Pending>,
    pub(crate) jobs: BoundedQueue<Job>,
    pub(crate) stats: StatsInner,
    pub(crate) breaker: Breaker,
    /// Remaining server-lifetime retry budget.
    pub(crate) retry_tokens: AtomicUsize,
    /// The chaos seam; `None` (the default) costs one discriminant test
    /// per site.
    pub(crate) fault: Option<Arc<FaultInjector>>,
    /// The observability seam; `None` (the default) costs one
    /// discriminant test per site, same as `fault`.
    pub(crate) obs: Option<Arc<Obs>>,
    /// Request-id source for trace linkage.
    pub(crate) req_ids: AtomicU64,
}

impl Shared {
    pub(crate) fn roll(&self, site: FaultSite) -> bool {
        match &self.fault {
            Some(f) => f.roll(site),
            None => false,
        }
    }

    /// Claim one retry token; `false` when the budget is spent.
    fn take_retry_token(&self) -> bool {
        let mut cur = self.retry_tokens.load(Ordering::Relaxed);
        while cur > 0 {
            match self.retry_tokens.compare_exchange_weak(
                cur,
                cur - 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(seen) => cur = seen,
            }
        }
        false
    }

    /// Send a response, counting it as abandoned when the requester has
    /// dropped its ticket. Nothing the server computes vanishes
    /// untracked. Returns the abandoned flag so instrumentation can
    /// record it on the terminal trace event.
    pub(crate) fn respond(
        &self,
        tx: &mpsc::Sender<Result<GemmResult, ServeError>>,
        r: Result<GemmResult, ServeError>,
    ) -> bool {
        let abandoned = tx.send(r).is_err();
        if abandoned {
            self.stats.abandoned.fetch_add(1, Ordering::Relaxed);
        }
        abandoned
    }

    pub(crate) fn obs(&self) -> Option<&Obs> {
        self.obs.as_deref()
    }
}

/// A running batched-GEMM server. Cheap to share: wrap it in an `Arc`
/// and hand clones to every producer thread.
pub struct Server {
    shared: Arc<Shared>,
    batcher: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Spawn a server owning a fresh [`Session`] around `framework`.
    pub fn new(framework: Framework, cfg: ServeConfig) -> Self {
        Server::with_session(Arc::new(Session::new(framework)), cfg)
    }

    /// Spawn a server over an existing shared session — this is how
    /// several servers (or a server plus offline callers) share one
    /// plan cache and simulation memo.
    pub fn with_session(session: Arc<Session>, cfg: ServeConfig) -> Self {
        Server::build(session, cfg, None, None)
    }

    /// Spawn a server with a chaos schedule attached. Every
    /// failure-capable site consults `injector`; keep a clone of the
    /// `Arc` to reconcile its [`crate::FaultLog`] against the final
    /// [`ServeStats`].
    pub fn with_fault_injection(
        session: Arc<Session>,
        cfg: ServeConfig,
        injector: Arc<FaultInjector>,
    ) -> Self {
        Server::build(session, cfg, Some(injector), None)
    }

    /// Spawn a server with an observability bus installed: every hot
    /// seam emits spans and point events to `obs`, and the bus is also
    /// attached to the session so plan-cache activity lands in the same
    /// trace. Takes the session by value because attaching the bus is a
    /// consuming builder ([`Session::with_obs`]).
    pub fn with_observer(session: Session, cfg: ServeConfig, obs: Arc<Obs>) -> Self {
        Server::with_instrumentation(session, cfg, None, Some(obs))
    }

    /// Spawn a server with any combination of the chaos seam and the
    /// observability bus — the chaos suites use both at once and
    /// reconcile the resulting trace against the fault log exactly.
    pub fn with_instrumentation(
        session: Session,
        cfg: ServeConfig,
        fault: Option<Arc<FaultInjector>>,
        obs: Option<Arc<Obs>>,
    ) -> Self {
        let session = match &obs {
            Some(o) => session.with_obs(Arc::clone(o)),
            None => session,
        };
        Server::build(Arc::new(session), cfg, fault, obs)
    }

    fn build(
        session: Arc<Session>,
        cfg: ServeConfig,
        fault: Option<Arc<FaultInjector>>,
        obs: Option<Arc<Obs>>,
    ) -> Self {
        let shared = Arc::new(Shared {
            admission: BoundedQueue::new(cfg.queue_capacity),
            // The batcher is the only producer besides retry
            // re-admissions, and both are themselves fed from bounded
            // work, so the job queue never needs to push back.
            jobs: BoundedQueue::new(usize::MAX),
            session,
            stats: StatsInner::default(),
            breaker: Breaker::new(cfg.breaker.clone()),
            retry_tokens: AtomicUsize::new(cfg.retry.retry_budget),
            fault,
            obs,
            req_ids: AtomicU64::new(0),
            cfg,
        });

        let batcher = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || batcher_loop(&shared))
        };
        let workers = (0..shared.cfg.workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();

        Server { shared, batcher: Some(batcher), workers }
    }

    /// Submit a request, blocking while the admission queue is full.
    pub fn submit(&self, req: GemmRequest) -> Result<Ticket, ServeError> {
        self.admit(req, true)
    }

    /// Submit without blocking; [`ServeError::QueueFull`] when the
    /// admission queue is at capacity (or a chaos schedule injects
    /// saturation).
    pub fn try_submit(&self, req: GemmRequest) -> Result<Ticket, ServeError> {
        self.admit(req, false)
    }

    /// Submit and wait — the synchronous convenience path.
    pub fn call(&self, req: GemmRequest) -> Result<GemmResult, ServeError> {
        self.submit(req)?.wait()
    }

    /// An asynchronous, never-blocking front door over this server's
    /// admission queue. Producers get a [`Ticket`] immediately; requests
    /// the queue cannot take right now are buffered in the front and
    /// flushed in submission batches. See [`crate::AsyncFront`].
    pub fn front(&self) -> crate::AsyncFront {
        crate::AsyncFront::new(Arc::clone(&self.shared))
    }

    fn admit(&self, req: GemmRequest, blocking: bool) -> Result<Ticket, ServeError> {
        if let Err(m) = req.validate() {
            return Err(ServeError::Invalid(m));
        }
        // Injected queue saturation (non-blocking path only — `submit`'s
        // contract is to block, not to report Full). Refused before
        // admission, so the trace's reject carries no request id.
        if !blocking && self.shared.roll(FaultSite::AdmitReject) {
            self.shared.stats.rejected.fetch_add(1, Ordering::Relaxed);
            if let Some(o) = self.shared.obs() {
                o.point(PointKind::Reject { req: None });
            }
            return Err(ServeError::QueueFull);
        }
        let id = self.shared.req_ids.fetch_add(1, Ordering::Relaxed);
        // Admit is traced *before* the push: once the pending request is
        // in the queue the batcher can emit downstream events for it,
        // and the log must never show those ahead of the admission. A
        // failed push is closed out with a request-carrying Reject.
        let enqueued_us = match self.shared.obs() {
            Some(o) => o.point(PointKind::Admit { req: id }),
            None => 0,
        };
        let (tx, rx) = mpsc::channel();
        let pending = Pending { id, req, tx, enqueued: Instant::now(), enqueued_us };
        let pushed = if blocking {
            self.shared.admission.push(pending)
        } else {
            self.shared.admission.try_push(pending).map_err(|(kind, _)| kind)
        };
        match pushed {
            Ok(()) => {
                self.shared.stats.submitted.fetch_add(1, Ordering::Relaxed);
                Ok(Ticket { rx })
            }
            Err(kind) => {
                self.shared.stats.rejected.fetch_add(1, Ordering::Relaxed);
                if let Some(o) = self.shared.obs() {
                    o.point(PointKind::Reject { req: Some(id) });
                }
                Err(match kind {
                    PushError::Full => ServeError::QueueFull,
                    PushError::Closed => ServeError::ShuttingDown,
                })
            }
        }
    }

    /// Point-in-time accounting: request/batch/resilience counters plus
    /// the shared session's plan-cache, shard/admission-gate and
    /// simulation-memo statistics.
    pub fn stats(&self) -> ServeStats {
        let share = self.shared.session.share();
        self.shared.stats.snapshot(
            self.shared.session.stats(),
            share.shard_count(),
            share.admission_stats(),
            self.shared.session.sim_stats(),
            self.shared.breaker.is_open(),
        )
    }

    /// The shared planning session (plan cache + simulation memo).
    pub fn session(&self) -> &Arc<Session> {
        &self.shared.session
    }

    /// The attached chaos schedule, if any.
    pub fn fault_injector(&self) -> Option<&Arc<FaultInjector>> {
        self.shared.fault.as_ref()
    }

    /// The attached observability bus, if any.
    pub fn observer(&self) -> Option<&Arc<Obs>> {
        self.shared.obs.as_ref()
    }

    /// Requests currently waiting in the admission queue (monitoring
    /// hook; racy by nature).
    pub fn queue_depth(&self) -> usize {
        self.shared.admission.len()
    }

    /// Stop accepting new requests without waiting for the drain:
    /// subsequent `submit`/`try_submit` calls fail with
    /// [`ServeError::ShuttingDown`], already-admitted requests keep
    /// flowing. Call [`Server::shutdown`] to drain and join.
    pub fn close(&self) {
        self.shared.admission.close();
    }

    /// Stop admissions, drain every in-flight request, join all threads
    /// and return the final statistics.
    pub fn shutdown(mut self) -> ServeStats {
        self.shutdown_inner();
        self.stats()
    }

    fn shutdown_inner(&mut self) {
        self.shared.admission.close();
        if let Some(b) = self.batcher.take() {
            let _ = b.join();
        }
        debug_assert!(self.shared.admission.is_empty(), "batcher exits only when drained");
        // Only after the batcher has drained the admission queue may the
        // job queue be closed — workers then drain it and exit. Retries
        // racing this close resolve inline through the degraded path.
        self.shared.jobs.close();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Collect one batching window's worth of requests: the blocking first
/// pop opens the window, then arrivals are added until the window
/// closes, `max_batch` is reached, or the queue reports closed+drained.
/// Returns `None` when the server is fully drained.
fn collect_window(shared: &Shared) -> Option<Vec<Pending>> {
    let first = shared.admission.pop()?;
    // The first pop opens the batching window; the guard's drop at
    // return closes the Coalesce span.
    let _window = shared.obs().map(|o| o.span(SpanKind::Coalesce));
    let deadline = Instant::now() + shared.cfg.batch_window;
    let mut picked = vec![first];
    while picked.len() < shared.cfg.max_batch.max(1) {
        match shared.admission.pop_until(deadline) {
            Ok(Some(p)) => picked.push(p),
            // Closed and drained: ship what we have; the outer loop's
            // next `pop` returns `None` and ends the batcher.
            Ok(None) => break,
            // Window expired.
            Err(_timeout) => break,
        }
    }
    Some(picked)
}

fn batcher_loop(shared: &Shared) {
    while let Some(picked) = collect_window(shared) {
        let now = Instant::now();
        // Expire requests that out-waited their deadline in the queue —
        // plus any the chaos schedule declares expired (deadline storms
        // only strike requests that actually carry a deadline).
        let mut live = Vec::with_capacity(picked.len());
        for p in picked {
            match p.req.deadline {
                Some(d) if now.duration_since(p.enqueued) > d
                    || shared.roll(FaultSite::Expire) =>
                {
                    shared.stats.expired.fetch_add(1, Ordering::Relaxed);
                    let abandoned = shared.respond(&p.tx, Err(ServeError::Expired));
                    if let Some(o) = shared.obs() {
                        o.point(PointKind::Expired { req: p.id, abandoned });
                    }
                }
                _ => live.push(p),
            }
        }
        // Coalesce per (alpha, beta) — GemmBatch carries one scalar
        // pair, so only scalar-compatible requests share a batch.
        // Arrival order is preserved within each group.
        let mut groups: Vec<(u32, u32, Vec<Pending>)> = Vec::new();
        for p in live {
            let key = (p.req.alpha.to_bits(), p.req.beta.to_bits());
            match groups.iter_mut().find(|(a, b, _)| (*a, *b) == key) {
                Some((_, _, g)) => g.push(p),
                None => groups.push((key.0, key.1, vec![p])),
            }
        }
        for (alpha_bits, beta_bits, group) in groups {
            ship_group(
                shared,
                f32::from_bits(alpha_bits),
                f32::from_bits(beta_bits),
                group,
            );
        }
    }
}

/// Assemble one scalar-compatible group into a `GemmBatch` job.
fn ship_group(shared: &Shared, alpha: f32, beta: f32, group: Vec<Pending>) {
    let mut a = Vec::with_capacity(group.len());
    let mut b = Vec::with_capacity(group.len());
    let mut c = Vec::with_capacity(group.len());
    let mut members = Vec::with_capacity(group.len());
    for p in group {
        a.push(p.req.a);
        b.push(p.req.b);
        c.push(p.req.c);
        members.push(Member {
            id: p.id,
            tx: p.tx,
            enqueued: p.enqueued,
            enqueued_us: p.enqueued_us,
            attempts: 0,
        });
    }
    match GemmBatch::from_parts(a, b, c, alpha, beta) {
        Ok(batch) => {
            // The job queue is effectively unbounded and is only closed
            // after this thread exits (see `shutdown_inner`), so the
            // push cannot fail.
            let pushed = shared.jobs.try_push(Job { batch, members });
            debug_assert!(pushed.is_ok(), "job queue closed while the batcher was live");
        }
        Err(m) => {
            for member in members {
                let abandoned =
                    shared.respond(&member.tx, Err(ServeError::PlanFailed(m.clone())));
                if let Some(o) = shared.obs() {
                    o.point(PointKind::Failed { req: member.id, abandoned });
                }
            }
        }
    }
}

fn worker_loop(shared: &Shared) {
    while let Some(job) = shared.jobs.pop() {
        run_job(shared, job);
    }
}


fn run_job(shared: &Shared, job: Job) {
    // Retried jobs pay their bounded exponential backoff first, in the
    // worker, so the admission path never stalls on a retry.
    let attempt = job.members.iter().map(|m| m.attempts).max().unwrap_or(0);
    if attempt > 0 {
        std::thread::sleep(shared.cfg.retry.backoff_for(attempt));
    }

    let n = job.batch.len();
    let obs = shared.obs();
    let t_plan = Instant::now();
    // When the bus is installed, all reported durations come off its
    // clock so (a) SimClock runs are reproducible and (b) the audit can
    // demand exact equality between `RequestTiming` and the trace.
    let t0_us = obs.map(|o| o.now_us());
    let queue_us: Vec<f64> = match t0_us {
        Some(t0) => {
            job.members.iter().map(|m| t0.saturating_sub(m.enqueued_us) as f64).collect()
        }
        None => job
            .members
            .iter()
            .map(|m| t_plan.duration_since(m.enqueued).as_secs_f64() * 1e6)
            .collect(),
    };

    // Open breaker: the coordinated path is suspect — go straight to
    // the baseline, consuming one of the breaker's open slots.
    if shared.breaker.consume_open() {
        degrade_job(shared, job, &queue_us, 0.0, n);
        return;
    }

    // Injected worker stall (slow-worker chaos).
    if let Some(f) = &shared.fault {
        if let Some(delay) = f.roll_slow() {
            std::thread::sleep(delay);
        }
    }

    // Plan — panic-isolated, with injected failures folded in as typed
    // planning errors. Any failure degrades the batch to the baseline.
    let planned: Result<Arc<ExecutionPlan>, String> = if shared.roll(FaultSite::PlanFail) {
        Err("injected planning failure".to_string())
    } else {
        match catch_unwind(AssertUnwindSafe(|| shared.session.plan(&job.batch.shapes))) {
            Ok(r) => r,
            Err(payload) => {
                shared.stats.worker_panics.fetch_add(1, Ordering::Relaxed);
                if let Some(o) = obs {
                    o.point(PointKind::PanicCaught);
                    o.dump_flight("planner panic");
                }
                Err(format!("planner panicked: {}", panic_message(&*payload)))
            }
        }
    };
    let plan = match planned {
        Ok(plan) => plan,
        Err(_m) => {
            shared.stats.plan_failures.fetch_add(1, Ordering::Relaxed);
            if let Some(o) = obs {
                o.point(PointKind::PlanFailure);
            }
            if shared.breaker.record_failure() {
                shared.stats.breaker_trips.fetch_add(1, Ordering::Relaxed);
                if let Some(o) = obs {
                    o.point(PointKind::BreakerTrip);
                    o.dump_flight("breaker trip");
                }
            }
            let plan_us = match (obs, t0_us) {
                (Some(o), Some(t0)) => o.now_us().saturating_sub(t0) as f64,
                _ => t_plan.elapsed().as_secs_f64() * 1e6,
            };
            degrade_job(shared, job, &queue_us, plan_us, n);
            return;
        }
    };

    // Execute — panic-isolated. A panic converts the batch into
    // per-member retries instead of killing the worker. The exec span is
    // opened *outside* the unwind boundary so a panicking batch still
    // gets a closed span in the trace (and in any flight dump).
    let exec_guard = obs.map(|o| o.span(SpanKind::Exec));
    let t_exec = Instant::now();
    let plan_us = match (&exec_guard, t0_us) {
        (Some(g), Some(t0)) => g.begin_us().saturating_sub(t0) as f64,
        _ => t_plan.elapsed().as_secs_f64() * 1e6,
    };
    let inject_panic = shared.roll(FaultSite::ExecPanic);
    let executed = catch_unwind(AssertUnwindSafe(|| {
        if inject_panic {
            // panic_any keeps the payload a &'static str so harnesses
            // can filter injected-fault noise out of the panic hook.
            std::panic::panic_any(INJECTED_PANIC_MSG);
        }
        shared.session.framework().execute(&job.batch, &plan)
    }));
    match executed {
        Ok((results, _report)) => {
            shared.breaker.record_success();
            let (batch_span, exec_us) = match exec_guard {
                Some(g) => {
                    let id = g.id();
                    let (begin, end) = g.finish();
                    (id, end.saturating_sub(begin) as f64)
                }
                None => (0, t_exec.elapsed().as_secs_f64() * 1e6),
            };
            shared.stats.batches.fetch_add(1, Ordering::Relaxed);
            if let Some(o) = obs {
                o.point(PointKind::BatchExecuted { size: n });
            }
            for ((member, c), queue_us) in job.members.into_iter().zip(results).zip(queue_us) {
                let timing = RequestTiming { queue_us, plan_us, exec_us, batch_size: n };
                let total_us = timing.total_us();
                shared.stats.record_latency(total_us);
                shared.stats.completed.fetch_add(1, Ordering::Relaxed);
                let abandoned =
                    shared.respond(&member.tx, Ok(GemmResult { c, timing, degraded: false }));
                if let Some(o) = obs {
                    o.point(PointKind::Respond {
                        req: member.id,
                        batch: batch_span,
                        degraded: false,
                        abandoned,
                        queue_us,
                        plan_us,
                        exec_us,
                        total_us,
                    });
                }
            }
        }
        Err(_payload) => {
            // Close the span before snapshotting, so the flight ring
            // holds the panicking batch's complete exec span.
            if let Some(g) = exec_guard {
                g.finish();
            }
            shared.stats.worker_panics.fetch_add(1, Ordering::Relaxed);
            if let Some(o) = obs {
                o.point(PointKind::PanicCaught);
            }
            if shared.breaker.record_failure() {
                shared.stats.breaker_trips.fetch_add(1, Ordering::Relaxed);
                if let Some(o) = obs {
                    o.point(PointKind::BreakerTrip);
                }
            }
            if let Some(o) = obs {
                o.dump_flight("worker panic");
            }
            retry_or_degrade(shared, job, &queue_us, plan_us, n);
        }
    }
}

/// Split a panicked batch into its members and give each one its own
/// recovery: re-admission (retry budget and per-request cap allowing)
/// or the degraded baseline. One poisoned request can re-poison at most
/// itself.
fn retry_or_degrade(shared: &Shared, job: Job, queue_us: &[f64], plan_us: f64, n: usize) {
    let Job { batch, members } = job;
    let (alpha, beta) = (batch.alpha, batch.beta);
    for (i, mut member) in members.into_iter().enumerate() {
        member.attempts += 1;
        let single = member_batch(&batch, i, alpha, beta);
        if member.attempts <= shared.cfg.retry.max_retries && shared.take_retry_token() {
            shared.stats.retries.fetch_add(1, Ordering::Relaxed);
            if let Some(o) = shared.obs() {
                o.point(PointKind::Retry { req: member.id });
            }
            let retry = Job { batch: single, members: vec![member] };
            if let Err((_closed, retry)) = shared.jobs.try_push(retry) {
                // Shutdown already closed the job queue: resolve inline
                // rather than dropping the ticket.
                let Job { batch, members } = retry;
                for (j, m) in members.into_iter().enumerate() {
                    degrade_member(shared, &batch, j, m, queue_us.get(i).copied().unwrap_or(0.0), plan_us, n);
                }
            }
        } else {
            degrade_member(
                shared,
                &single,
                0,
                member,
                queue_us.get(i).copied().unwrap_or(0.0),
                plan_us,
                n,
            );
        }
    }
}

/// Re-wrap one member of a batch as a single-GEMM batch.
fn member_batch(batch: &GemmBatch, i: usize, alpha: f32, beta: f32) -> GemmBatch {
    GemmBatch::from_parts(
        vec![batch.a[i].clone()],
        vec![batch.b[i].clone()],
        vec![batch.c[i].clone()],
        alpha,
        beta,
    )
    .expect("member buffers were validated at admission")
}

/// Serve every member of a job through the degraded baseline.
fn degrade_job(shared: &Shared, job: Job, queue_us: &[f64], plan_us: f64, n: usize) {
    let Job { batch, members } = job;
    for (i, member) in members.into_iter().enumerate() {
        degrade_member(
            shared,
            &batch,
            i,
            member,
            queue_us.get(i).copied().unwrap_or(0.0),
            plan_us,
            n,
        );
    }
}

/// Last-resort execution of one member on the per-kernel default
/// baseline (the paper's Fig 8 reference executor). Panic-isolated like
/// the coordinated path; a panic *here* is terminal and surfaces as the
/// typed [`ServeError::WorkerPanic`].
fn degrade_member(
    shared: &Shared,
    batch: &GemmBatch,
    i: usize,
    member: Member,
    queue_us: f64,
    plan_us: f64,
    n: usize,
) {
    let obs = shared.obs();
    let t_exec = Instant::now();
    let inject_panic = shared.roll(FaultSite::DegradedPanic);
    let arch = shared.session.framework().arch();
    let single = member_batch(batch, i, batch.alpha, batch.beta);
    // Span opened outside the unwind boundary, same as the coordinated
    // path: a panicking baseline still leaves a closed span behind.
    let exec_guard = obs.map(|o| o.span(SpanKind::DegradedExec));
    let out: Result<Vec<MatF32>, _> = catch_unwind(AssertUnwindSafe(|| {
        if inject_panic {
            std::panic::panic_any(INJECTED_DEGRADED_PANIC_MSG);
        }
        ctb_baselines::default_functional(arch, &single)
    }));
    match out {
        Ok(mut results) => {
            let c = results.pop().expect("single-GEMM baseline yields one result");
            let (batch_span, exec_us) = match exec_guard {
                Some(g) => {
                    let id = g.id();
                    let (begin, end) = g.finish();
                    (id, end.saturating_sub(begin) as f64)
                }
                None => (0, t_exec.elapsed().as_secs_f64() * 1e6),
            };
            let timing = RequestTiming { queue_us, plan_us, exec_us, batch_size: n };
            let total_us = timing.total_us();
            shared.stats.record_latency(total_us);
            shared.stats.completed.fetch_add(1, Ordering::Relaxed);
            shared.stats.degraded.fetch_add(1, Ordering::Relaxed);
            let abandoned =
                shared.respond(&member.tx, Ok(GemmResult { c, timing, degraded: true }));
            if let Some(o) = obs {
                o.point(PointKind::Respond {
                    req: member.id,
                    batch: batch_span,
                    degraded: true,
                    abandoned,
                    queue_us,
                    plan_us,
                    exec_us,
                    total_us,
                });
            }
        }
        Err(payload) => {
            if let Some(g) = exec_guard {
                g.finish();
            }
            shared.stats.worker_panics.fetch_add(1, Ordering::Relaxed);
            if let Some(o) = obs {
                o.point(PointKind::PanicCaught);
                o.dump_flight("degraded worker panic");
            }
            let abandoned = shared
                .respond(&member.tx, Err(ServeError::WorkerPanic(panic_message(&*payload))));
            if let Some(o) = obs {
                o.point(PointKind::Failed { req: member.id, abandoned });
            }
        }
    }
}

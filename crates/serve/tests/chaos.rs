//! Deterministic chaos suite for the serving layer's resilience
//! contracts.
//!
//! Every test attaches a seeded [`FaultInjector`] and drives real
//! traffic through the server while the injector forces plan failures,
//! executor panics, degraded-path panics, slow workers, queue
//! saturation, and deadline storms. The contracts under fire:
//!
//! 1. **Zero hangs** — every ticket resolves within a generous bound
//!    ([`Ticket::wait_for`] turns a would-be hang into a test failure).
//! 2. **Zero drops** — every admitted request resolves to `Ok` or a
//!    typed [`ServeError`]; workers survive every panic.
//! 3. **Bitwise exactness** — every `Ok` payload, coordinated *or*
//!    degraded, equals [`GemmBatch::reference_result_exact`] for its
//!    own inputs.
//! 4. **Exact accounting** — [`ServeStats`] reconciles against the
//!    injector's [`FaultLog`] and the client-side tallies, whatever
//!    the thread interleaving.
//! 5. **Exact observability** — every schedule runs with the `ctb-obs`
//!    bus installed; [`TraceAudit`] checks the structural invariants of
//!    the trace (span nesting, one terminal per admission, additive
//!    timings) and its counts reconcile `==` against [`ServeStats`].

use ctb_core::{Framework, Session};
use ctb_gpu_specs::ArchSpec;
use ctb_matrix::{assert_bitwise_eq, GemmBatch, GemmShape, MatF32};
use ctb_obs::{Obs, TraceAudit, TraceCounts};
use ctb_serve::{
    BreakerPolicy, FaultConfig, FaultInjector, GemmRequest, RetryPolicy, ServeConfig, ServeError,
    ServeStats, Server, Ticket,
};
use std::sync::{Arc, Once};
use std::time::Duration;

/// Upper bound on any single wait: far beyond every injected delay, so
/// hitting it means a genuine hang, not slowness.
const HANG_BOUND: Duration = Duration::from_secs(30);

/// Injected panics unwind through `catch_unwind` by design; silence
/// only *their* default-hook noise so real panics still print.
fn quiet_injected_panics() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            let msg = payload
                .downcast_ref::<&str>()
                .copied()
                .or_else(|| payload.downcast_ref::<String>().map(String::as_str));
            let injected = msg.is_some_and(|s| s.contains("ctb-serve injected fault"));
            if !injected {
                default(info);
            }
        }));
    });
}

fn server_with_faults(cfg: ServeConfig, faults: FaultConfig) -> (Server, Arc<FaultInjector>) {
    quiet_injected_panics();
    let injector = Arc::new(FaultInjector::new(faults));
    let session = Session::new(Framework::new(ArchSpec::volta_v100()));
    let obs = Arc::new(Obs::wall());
    let server =
        Server::with_instrumentation(session, cfg, Some(Arc::clone(&injector)), Some(obs));
    (server, injector)
}

/// Every chaos schedule ends here: audit the trace's structural
/// invariants, then reconcile its counts against the final stats with
/// `==` — no tolerances. Any dropped, duplicated, or mis-attributed
/// event fails one of these.
fn audit_and_reconcile(obs: &Obs, stats: &ServeStats) -> TraceCounts {
    let counts = TraceAudit::new(obs.events()).check().expect("trace invariants hold");
    assert_eq!(counts.terminals(), counts.admits, "one terminal event per admitted request");
    assert_eq!(counts.admits - counts.rejects_admitted, stats.submitted, "admits vs submitted");
    assert_eq!(counts.rejects, stats.rejected, "reject events vs rejected");
    assert_eq!(counts.responds, stats.completed, "respond events vs completed");
    assert_eq!(counts.responds_degraded, stats.degraded, "degraded responds vs degraded");
    assert_eq!(counts.expired, stats.expired, "expiry events vs expired");
    assert_eq!(counts.panics_caught, stats.worker_panics, "panic events vs worker_panics");
    assert_eq!(counts.plan_failures, stats.plan_failures, "plan-failure events vs plan_failures");
    assert_eq!(counts.breaker_trips, stats.breaker_trips, "breaker events vs breaker_trips");
    assert_eq!(counts.retries, stats.retries, "retry events vs retries");
    assert_eq!(counts.batches, stats.batches, "batch events vs batches");
    assert_eq!(
        counts.batch_members,
        stats.completed - stats.degraded,
        "coordinated batch sizes vs coordinated completions"
    );
    assert_eq!(counts.abandoned(), stats.abandoned, "abandoned flags vs abandoned");
    assert_eq!(counts.plan_cache_hits, stats.plan_cache.hits, "cache-hit events vs plan cache");
    assert_eq!(
        counts.plan_cache_misses, stats.plan_cache.misses,
        "cache-miss events vs plan cache"
    );
    counts
}

/// Deterministic request + its bitwise-expected result.
fn request_and_expected(shape: GemmShape, seed: u64) -> (GemmRequest, Vec<MatF32>) {
    let scalars = [(1.0f32, 0.0f32), (1.0, 0.5), (0.75, -1.5)];
    let (alpha, beta) = scalars[(seed % scalars.len() as u64) as usize];
    let batch = GemmBatch::random(&[shape], alpha, beta, seed);
    let expected = batch.reference_result_exact();
    let req = GemmRequest {
        a: batch.a[0].clone(),
        b: batch.b[0].clone(),
        c: batch.c[0].clone(),
        alpha,
        beta,
        deadline: None,
    };
    (req, expected)
}

fn shape_pool() -> Vec<GemmShape> {
    vec![
        GemmShape::new(16, 32, 64),
        GemmShape::new(1, 48, 17),
        GemmShape::new(33, 1, 129),
        GemmShape::new(48, 80, 96),
        GemmShape::new(17, 33, 41),
    ]
}

/// Schedule 1: planning fails ~40% of the time. With `max_batch: 1`
/// (one member per batch) and the breaker disabled, the accounting is
/// exact: every injected plan failure produces exactly one degraded
/// completion, everything else rides the coordinated path, and every
/// result is bitwise perfect either way.
#[test]
fn plan_failure_storm_degrades_exactly_and_stays_bitwise_exact() {
    const N: usize = 60;
    let (server, injector) = server_with_faults(
        ServeConfig {
            max_batch: 1,
            batch_window: Duration::ZERO,
            breaker: BreakerPolicy { trip_threshold: 0, open_batches: 0 },
            ..ServeConfig::default()
        },
        FaultConfig::new(0xC0FFEE).plan_fail(400),
    );
    let pool = shape_pool();
    let mut degraded_seen = 0usize;
    for i in 0..N {
        let (req, expected) = request_and_expected(pool[i % pool.len()], i as u64);
        let got = server
            .submit(req)
            .expect("admitted")
            .wait_for(HANG_BOUND)
            .expect("plan failures must degrade, not error");
        assert_bitwise_eq(&expected, std::slice::from_ref(&got.c), "storm result");
        degraded_seen += usize::from(got.degraded);
    }
    let obs = Arc::clone(server.observer().expect("bus installed"));
    let stats = server.shutdown();
    audit_and_reconcile(&obs, &stats);
    let log = injector.log();
    assert!(log.plan_fails > 0, "the storm actually fired: {log:?}");
    assert_eq!(stats.plan_failures, log.plan_fails, "every injected failure counted");
    assert_eq!(stats.degraded, log.plan_fails, "one degraded completion per failed plan");
    assert_eq!(degraded_seen, stats.degraded, "clients saw the same degraded count");
    assert_eq!(stats.completed, N, "zero drops");
    assert_eq!(stats.batches, N - log.plan_fails, "the rest ran coordinated");
    assert_eq!(stats.worker_panics, 0);
    assert_eq!(stats.retries, 0, "plan failures degrade without retrying");
}

/// Schedule 2: the executor panics ~30% of the time. With single-member
/// batches, generous retries, ample budget, and the breaker disabled,
/// every panic resolves to exactly one retry *or* one exhaustion
/// degrade: `retries + degraded == exec_panics`, and the worker pool
/// survives all of it.
#[test]
fn exec_panic_storm_retries_with_exact_accounting() {
    const N: usize = 60;
    let (server, injector) = server_with_faults(
        ServeConfig {
            max_batch: 1,
            batch_window: Duration::ZERO,
            retry: RetryPolicy {
                max_retries: 10,
                backoff_base: Duration::from_micros(10),
                backoff_cap: Duration::from_micros(100),
                retry_budget: 100_000,
            },
            breaker: BreakerPolicy { trip_threshold: 0, open_batches: 0 },
            ..ServeConfig::default()
        },
        FaultConfig::new(0xBADC0DE).exec_panic(300),
    );
    let pool = shape_pool();
    for i in 0..N {
        let (req, expected) = request_and_expected(pool[i % pool.len()], 1000 + i as u64);
        let got = server
            .submit(req)
            .expect("admitted")
            .wait_for(HANG_BOUND)
            .expect("panics must retry or degrade, not error");
        assert_bitwise_eq(&expected, std::slice::from_ref(&got.c), "panic-storm result");
    }
    let obs = Arc::clone(server.observer().expect("bus installed"));
    let stats = server.shutdown();
    audit_and_reconcile(&obs, &stats);
    let log = injector.log();
    assert!(log.exec_panics > 0, "the storm actually fired: {log:?}");
    assert_eq!(stats.worker_panics, log.exec_panics, "every panic caught and counted");
    assert_eq!(
        stats.retries + stats.degraded,
        log.exec_panics,
        "each panic is followed by exactly one retry or one exhaustion degrade"
    );
    assert_eq!(stats.completed, N, "zero drops, workers survived every panic");
    assert_eq!(stats.plan_failures, 0);
}

/// Schedule 3: slow workers plus a deadline storm. Real deadlines are
/// generous (never naturally expire), so `expired` reconciles exactly
/// with the injector's expiry log; every survivor is bitwise exact.
#[test]
fn slow_worker_and_deadline_storm_accounts_expiries_exactly() {
    const N: usize = 50;
    let (server, injector) = server_with_faults(
        ServeConfig {
            max_batch: 4,
            batch_window: Duration::from_micros(100),
            ..ServeConfig::default()
        },
        FaultConfig::new(0xD0DEC0DE)
            .expire(250)
            .slow_worker(200, Duration::from_millis(2)),
    );
    let pool = shape_pool();
    let tickets: Vec<(Ticket, Vec<MatF32>)> = (0..N)
        .map(|i| {
            let (mut req, expected) = request_and_expected(pool[i % pool.len()], 2000 + i as u64);
            req.deadline = Some(Duration::from_secs(3600));
            (server.submit(req).expect("admitted"), expected)
        })
        .collect();
    let mut ok = 0usize;
    let mut expired = 0usize;
    for (t, expected) in tickets {
        match t.wait_for(HANG_BOUND) {
            Ok(got) => {
                assert_bitwise_eq(&expected, std::slice::from_ref(&got.c), "slow-storm result");
                ok += 1;
            }
            Err(ServeError::Expired) => expired += 1,
            Err(e) => panic!("unexpected error under slow/deadline storm: {e}"),
        }
    }
    let obs = Arc::clone(server.observer().expect("bus installed"));
    let stats = server.shutdown();
    audit_and_reconcile(&obs, &stats);
    let log = injector.log();
    assert!(log.expires > 0 && log.slow_workers > 0, "the storm actually fired: {log:?}");
    assert_eq!(stats.expired, log.expires, "only injected expiries fired");
    assert_eq!(expired, log.expires, "clients saw exactly the injected expiries");
    assert_eq!(stats.completed, ok);
    assert_eq!(ok + expired, N, "zero drops despite stalls");
}

/// Schedule 4: queue saturation on the non-blocking path. Capacity is
/// ample and the submitter is serial, so the only `QueueFull` rejections
/// are the injected ones — `rejected` reconciles exactly, and every
/// accepted request still completes bitwise-exact.
#[test]
fn queue_saturation_rejects_exactly_the_injected_admissions() {
    const N: usize = 80;
    let (server, injector) = server_with_faults(
        ServeConfig {
            max_batch: 8,
            batch_window: Duration::from_micros(50),
            queue_capacity: 4 * N,
            ..ServeConfig::default()
        },
        FaultConfig::new(0x5A7A5A7A).admit_reject(300),
    );
    let pool = shape_pool();
    let mut accepted = Vec::new();
    let mut rejected = 0usize;
    for i in 0..N {
        let (req, expected) = request_and_expected(pool[i % pool.len()], 3000 + i as u64);
        match server.try_submit(req) {
            Ok(t) => accepted.push((t, expected)),
            Err(ServeError::QueueFull) => rejected += 1,
            Err(e) => panic!("unexpected admission error: {e}"),
        }
    }
    let n_accepted = accepted.len();
    for (t, expected) in accepted {
        let got = t.wait_for(HANG_BOUND).expect("accepted requests complete");
        assert_bitwise_eq(&expected, std::slice::from_ref(&got.c), "saturation result");
    }
    let obs = Arc::clone(server.observer().expect("bus installed"));
    let stats = server.shutdown();
    audit_and_reconcile(&obs, &stats);
    let log = injector.log();
    assert!(log.admit_rejects > 0, "the storm actually fired: {log:?}");
    assert_eq!(rejected, log.admit_rejects, "only injected rejections fired");
    assert_eq!(stats.rejected, log.admit_rejects);
    assert_eq!(stats.submitted, n_accepted);
    assert_eq!(stats.completed, n_accepted, "zero drops among the accepted");
}

/// Schedule 5: everything at once — plan failures, executor panics,
/// degraded-path panics, slow workers, deadline storms — under
/// concurrent producers, with retries and the breaker live. The suite's
/// keystone: conservation (every ticket resolves), bitwise exactness of
/// every `Ok`, and full reconciliation of the resilience counters
/// against the fault log.
#[test]
fn combined_storm_conserves_every_request_and_reconciles_stats() {
    const PRODUCERS: usize = 4;
    const PER_PRODUCER: usize = 30;
    let (server, injector) = server_with_faults(
        ServeConfig {
            max_batch: 4,
            batch_window: Duration::from_micros(100),
            queue_capacity: 32,
            workers: 3,
            retry: RetryPolicy {
                max_retries: 2,
                backoff_base: Duration::from_micros(10),
                backoff_cap: Duration::from_micros(200),
                retry_budget: 100_000,
            },
            breaker: BreakerPolicy { trip_threshold: 6, open_batches: 4 },
        },
        FaultConfig::new(0xF00DFACE)
            .plan_fail(100)
            .exec_panic(150)
            .degraded_panic(50)
            .expire(80)
            .slow_worker(100, Duration::from_micros(500)),
    );
    let server = Arc::new(server);
    let pool = shape_pool();
    let tallies: Vec<(usize, usize, usize)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let server = Arc::clone(&server);
                let pool = pool.clone();
                scope.spawn(move || {
                    let (mut ok, mut expired, mut panicked) = (0usize, 0usize, 0usize);
                    for i in 0..PER_PRODUCER {
                        let seed = (p * PER_PRODUCER + i) as u64;
                        let (mut req, expected) =
                            request_and_expected(pool[i % pool.len()], 4000 + seed);
                        req.deadline = Some(Duration::from_secs(3600));
                        let t = server.submit(req).expect("blocking submit admits");
                        match t.wait_for(HANG_BOUND) {
                            Ok(got) => {
                                assert_bitwise_eq(
                                    &expected,
                                    std::slice::from_ref(&got.c),
                                    "combined-storm result",
                                );
                                ok += 1;
                            }
                            Err(ServeError::Expired) => expired += 1,
                            Err(ServeError::WorkerPanic(m)) => {
                                assert!(
                                    m.contains("ctb-serve injected fault"),
                                    "only injected panics may surface: {m}"
                                );
                                panicked += 1;
                            }
                            Err(e) => panic!("unexpected error in combined storm: {e}"),
                        }
                    }
                    (ok, expired, panicked)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("producer survives")).collect()
    });
    let server = Arc::into_inner(server).expect("sole owner after the scope");
    let obs = Arc::clone(server.observer().expect("bus installed"));
    let stats = server.stats();
    let final_stats = server.shutdown();
    assert_eq!(stats, final_stats, "drain had already completed; shutdown adds nothing");
    audit_and_reconcile(&obs, &final_stats);

    let log = injector.log();
    let (ok, expired, panicked) = tallies
        .iter()
        .fold((0, 0, 0), |(a, b, c), (x, y, z)| (a + x, b + y, c + z));
    let total = PRODUCERS * PER_PRODUCER;
    assert!(
        log.plan_fails > 0 && log.exec_panics > 0 && log.expires > 0,
        "the combined storm actually fired on every major site: {log:?}"
    );
    // Conservation: every admitted request resolved, exactly once.
    assert_eq!(ok + expired + panicked, total, "zero hangs, zero drops");
    assert_eq!(stats.submitted, total);
    assert_eq!(stats.completed, ok);
    assert_eq!(stats.expired, expired);
    // Reconciliation against the injector's log.
    assert_eq!(stats.expired, log.expires, "generous real deadlines: only injected expiries");
    assert_eq!(stats.plan_failures, log.plan_fails);
    assert_eq!(
        stats.worker_panics,
        log.exec_panics + log.degraded_panics,
        "every caught panic traced back to an injection"
    );
    assert_eq!(panicked, log.degraded_panics, "only degraded-path panics are terminal");
    assert_eq!(stats.abandoned, 0, "every response was deliverable");
    assert!(stats.degraded > 0, "failures actually exercised the baseline fallback");
}

/// Schedule 6: a hard executor-panic storm (100% panic rate, retries
/// off) against a single worker — the breaker's trip/recover cycle
/// becomes fully deterministic: 6 coordinated failures trip it, 4
/// batches serve degraded while open, then it closes and the cycle
/// repeats. Every request still completes Ok (degraded).
#[test]
fn breaker_trips_and_recovers_deterministically() {
    const N: usize = 26;
    let (server, injector) = server_with_faults(
        ServeConfig {
            max_batch: 1,
            batch_window: Duration::ZERO,
            workers: 1,
            retry: RetryPolicy { max_retries: 0, ..RetryPolicy::default() },
            breaker: BreakerPolicy { trip_threshold: 6, open_batches: 4 },
            ..ServeConfig::default()
        },
        FaultConfig::new(0xDEAD10CC).exec_panic(1000),
    );
    let pool = shape_pool();
    for i in 0..N {
        let (req, expected) = request_and_expected(pool[i % pool.len()], 5000 + i as u64);
        let got = server
            .submit(req)
            .expect("admitted")
            .wait_for(HANG_BOUND)
            .expect("every request degrades to an Ok result");
        assert!(got.degraded, "nothing can succeed coordinated under a 100% panic rate");
        assert_bitwise_eq(&expected, std::slice::from_ref(&got.c), "breaker-cycle result");
    }
    let obs = Arc::clone(server.observer().expect("bus installed"));
    let stats = server.shutdown();
    audit_and_reconcile(&obs, &stats);
    let log = injector.log();
    // Single worker, single-member batches: the sequence is exactly
    // 6 panics → trip → 4 open (no planning, no panic roll) → 6 panics
    // → trip → 4 open → 6 panics → trip. 26 requests = 18 panicked + 8
    // served while open; all 26 degraded.
    assert_eq!(stats.completed, N);
    assert_eq!(stats.degraded, N, "every completion came from the baseline");
    assert_eq!(stats.breaker_trips, 3, "two full cycles plus the final trip");
    assert_eq!(stats.worker_panics, 18, "open phases bypass the panicking executor");
    assert_eq!(log.exec_panics, 18);
    assert_eq!(stats.retries, 0, "retries were disabled");
    assert_eq!(stats.batches, 0, "no coordinated execution ever succeeded");
    assert!(stats.breaker_open, "the 26th panic tripped it again; its slots are unconsumed");
}

/// Schedule 7: zero retry budget — panics may never re-admit; they
/// degrade immediately and the retry counter stays at zero.
#[test]
fn zero_retry_budget_degrades_without_retrying() {
    const N: usize = 40;
    let (server, injector) = server_with_faults(
        ServeConfig {
            max_batch: 1,
            batch_window: Duration::ZERO,
            retry: RetryPolicy { max_retries: 5, retry_budget: 0, ..RetryPolicy::default() },
            breaker: BreakerPolicy { trip_threshold: 0, open_batches: 0 },
            ..ServeConfig::default()
        },
        FaultConfig::new(0xACE0FBA5E).exec_panic(350),
    );
    let pool = shape_pool();
    for i in 0..N {
        let (req, expected) = request_and_expected(pool[i % pool.len()], 6000 + i as u64);
        let got = server
            .submit(req)
            .expect("admitted")
            .wait_for(HANG_BOUND)
            .expect("budget exhaustion degrades, never errors");
        assert_bitwise_eq(&expected, std::slice::from_ref(&got.c), "no-budget result");
    }
    let obs = Arc::clone(server.observer().expect("bus installed"));
    let stats = server.shutdown();
    audit_and_reconcile(&obs, &stats);
    let log = injector.log();
    assert!(log.exec_panics > 0, "the storm actually fired: {log:?}");
    assert_eq!(stats.retries, 0, "a zero budget admits no retries at all");
    assert_eq!(stats.degraded, log.exec_panics, "every panic degraded its request directly");
    assert_eq!(stats.completed, N);
}

/// Satellite contract: responses the requester walked away from are
/// counted, not silently discarded. Tickets dropped before completion
/// turn every send into an abandonment.
#[test]
fn dropped_tickets_are_counted_as_abandoned() {
    const N: usize = 12;
    // One batching window longer than the whole submit loop: every
    // ticket is provably dropped before any batch ships, so all N
    // responses are undeliverable — no race with fast workers.
    let (server, _injector) = server_with_faults(
        ServeConfig {
            max_batch: 2 * N,
            batch_window: Duration::from_millis(500),
            ..ServeConfig::default()
        },
        FaultConfig::new(0x0),
    );
    let pool = shape_pool();
    for i in 0..N {
        let (req, _) = request_and_expected(pool[i % pool.len()], 7000 + i as u64);
        drop(server.submit(req).expect("admitted"));
    }
    let obs = Arc::clone(server.observer().expect("bus installed"));
    let stats = server.shutdown();
    let counts = audit_and_reconcile(&obs, &stats);
    assert_eq!(stats.completed, N, "the server still computed every result");
    assert_eq!(stats.abandoned, N, "every undeliverable response was counted");
    assert_eq!(counts.responds_abandoned, N, "the trace agrees on every abandonment");
}

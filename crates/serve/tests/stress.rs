//! Concurrency stress suite for the serving layer.
//!
//! The contracts under fire:
//!
//! 1. **Bitwise correctness under arbitrary coalescing** — whatever mix
//!    of concurrent requests a batch window scoops up, every requester
//!    gets back exactly the matrix `gemm_ref` would compute for its own
//!    inputs (the executors replay the identical floating-point
//!    operation sequence regardless of batch composition).
//! 2. **No drops under backpressure** — a tiny admission queue forces
//!    producers to block in `submit`; every accepted request must still
//!    complete.
//! 3. **Clean shutdown** — closing under load completes every admitted
//!    request before the threads join.

use ctb_core::Framework;
use ctb_gpu_specs::ArchSpec;
use ctb_matrix::{assert_bitwise_eq, GemmBatch, GemmShape};
use ctb_serve::{GemmRequest, ServeConfig, ServeError, Server};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Mixed shape pool: small/large, edge sizes 1, odd K — the
/// variable-size traffic the paper's coalescing targets.
fn shape_pool() -> Vec<GemmShape> {
    vec![
        GemmShape::new(16, 32, 64),
        GemmShape::new(1, 48, 17),
        GemmShape::new(64, 64, 64),
        GemmShape::new(33, 1, 129),
        GemmShape::new(48, 80, 96),
        GemmShape::new(5, 7, 1),
        GemmShape::new(128, 37, 63),
        GemmShape::new(17, 33, 41),
    ]
}

/// Deterministic request + its bitwise-expected result.
fn request_and_expected(shape: GemmShape, seed: u64) -> (GemmRequest, Vec<ctb_matrix::MatF32>) {
    // Scalars drawn from a small set so concurrent windows mix groups.
    let scalars = [(1.0f32, 0.0f32), (1.0, 0.5), (0.75, -1.5)];
    let (alpha, beta) = scalars[(seed % scalars.len() as u64) as usize];
    let batch = GemmBatch::random(&[shape], alpha, beta, seed);
    let expected = batch.reference_result_exact();
    let req = GemmRequest {
        a: batch.a[0].clone(),
        b: batch.b[0].clone(),
        c: batch.c[0].clone(),
        alpha,
        beta,
        deadline: None,
    };
    (req, expected)
}

#[test]
fn eight_producers_all_get_bitwise_exact_results_under_backpressure() {
    const PRODUCERS: usize = 8;
    const PER_PRODUCER: usize = 12;

    // Queue far smaller than the request volume: producers must block
    // in `submit` (backpressure), and none of their requests may drop.
    let server = Arc::new(Server::new(
        Framework::new(ArchSpec::volta_v100()),
        ServeConfig {
            max_batch: 16,
            batch_window: Duration::from_micros(500),
            queue_capacity: 4,
            workers: 3,
            ..ServeConfig::default()
        },
    ));
    let pool = shape_pool();

    let handles: Vec<_> = (0..PRODUCERS)
        .map(|t| {
            let server = Arc::clone(&server);
            let pool = pool.clone();
            std::thread::spawn(move || {
                for i in 0..PER_PRODUCER {
                    let shape = pool[(t + i) % pool.len()];
                    let seed = (t * 1000 + i) as u64;
                    let (req, expected) = request_and_expected(shape, seed);
                    let got = server
                        .submit(req)
                        .expect("admission never fails for a live server")
                        .wait()
                        .expect("admitted requests always complete");
                    assert_bitwise_eq(
                        &expected,
                        std::slice::from_ref(&got.c),
                        &format!("producer {t} request {i} ({shape})"),
                    );
                    assert!(got.timing.batch_size >= 1);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("producer thread panicked");
    }

    let server = Arc::into_inner(server).expect("all producers done");
    let stats = server.shutdown();
    let total = PRODUCERS * PER_PRODUCER;
    assert_eq!(stats.submitted, total);
    assert_eq!(stats.completed, total, "no request dropped under backpressure");
    assert_eq!(stats.expired, 0);
    assert_eq!(stats.rejected, 0);
    assert!(stats.batches <= total, "batches never exceed requests");
    assert!(stats.mean_batch_size >= 1.0);
    // Repeated shape signatures must be answered from the shared plan
    // cache: far fewer planning events than batches.
    assert_eq!(
        stats.plan_cache.misses + stats.plan_cache.hits,
        stats.batches,
        "one plan lookup per executed batch"
    );
    assert!(stats.p95_us >= stats.p50_us);
}

#[test]
fn shutdown_under_load_drains_every_admitted_request() {
    let server = Arc::new(Server::new(
        Framework::new(ArchSpec::volta_v100()),
        ServeConfig {
            max_batch: 8,
            batch_window: Duration::from_micros(200),
            queue_capacity: 8,
            workers: 2,
            ..ServeConfig::default()
        },
    ));
    let accepted = Arc::new(AtomicUsize::new(0));
    let verified = Arc::new(AtomicUsize::new(0));
    let pool = shape_pool();

    // Producers submit as fast as they can until the server refuses.
    let handles: Vec<_> = (0..8)
        .map(|t| {
            let server = Arc::clone(&server);
            let accepted = Arc::clone(&accepted);
            let verified = Arc::clone(&verified);
            let pool = pool.clone();
            std::thread::spawn(move || {
                for i in 0.. {
                    let shape = pool[(t + i) % pool.len()];
                    let (req, expected) = request_and_expected(shape, (t * 7919 + i) as u64);
                    match server.submit(req) {
                        Ok(ticket) => {
                            accepted.fetch_add(1, Ordering::SeqCst);
                            let got =
                                ticket.wait().expect("admitted request completed by the drain");
                            assert_bitwise_eq(
                                &expected,
                                std::slice::from_ref(&got.c),
                                "drained result",
                            );
                            verified.fetch_add(1, Ordering::SeqCst);
                        }
                        Err(ServeError::ShuttingDown) => return,
                        Err(e) => panic!("unexpected submit error: {e}"),
                    }
                }
            })
        })
        .collect();

    // Let traffic build, then close admissions mid-flight.
    std::thread::sleep(Duration::from_millis(50));
    server.close();
    for h in handles {
        h.join().expect("producer thread panicked");
    }

    let server = Arc::into_inner(server).expect("producers exited");
    let stats = server.shutdown();
    let accepted = accepted.load(Ordering::SeqCst);
    assert!(accepted > 0, "the load phase admitted something");
    assert_eq!(verified.load(Ordering::SeqCst), accepted);
    assert_eq!(stats.completed, accepted, "drain completed exactly the admitted set");
    assert!(stats.rejected >= 1, "producers observed the close");
}

#[test]
fn identical_concurrent_requests_are_bitwise_identical_to_each_other() {
    // Eight threads submit the *same* request simultaneously; whatever
    // batches they land in, all eight results must agree bit-for-bit
    // (and match the oracle) — the no-result-depends-on-coalescing
    // property stated in the crate docs.
    let server = Arc::new(Server::new(
        Framework::new(ArchSpec::volta_v100()),
        ServeConfig {
            max_batch: 4,
            batch_window: Duration::from_micros(100),
            queue_capacity: 16,
            workers: 4,
            ..ServeConfig::default()
        },
    ));
    let shape = GemmShape::new(48, 80, 96);
    let (req, expected) = request_and_expected(shape, 42);
    let barrier = Arc::new(std::sync::Barrier::new(8));
    let handles: Vec<_> = (0..8)
        .map(|_| {
            let server = Arc::clone(&server);
            let barrier = Arc::clone(&barrier);
            let req = req.clone();
            let expected = expected.clone();
            std::thread::spawn(move || {
                barrier.wait();
                let got = server.submit(req).expect("admitted").wait().expect("completed");
                assert_bitwise_eq(&expected, std::slice::from_ref(&got.c), "raced duplicate");
            })
        })
        .collect();
    for h in handles {
        h.join().expect("thread ok");
    }
    let server = Arc::into_inner(server).expect("done");
    let stats = server.shutdown();
    assert_eq!(stats.completed, 8);
}

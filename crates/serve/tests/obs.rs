//! Observability-specific serve tests.
//!
//! 1. `ServeStats::percentile` is pinned to two independent oracles: a
//!    counting-based nearest-rank formulation (no sorting, no shared
//!    code path) and the `ctb-obs` histogram's bucket-edge projection —
//!    the same oracle the histogram property suite uses.
//! 2. The flight recorder's panic-path contract: a worker panic's dump
//!    must contain the panicking batch's *closed* Exec span, i.e. the
//!    span guard outlives the `catch_unwind` boundary and finishes
//!    before the ring is captured.

use ctb_core::{Framework, Session};
use ctb_gpu_specs::ArchSpec;
use ctb_matrix::{GemmBatch, GemmShape};
use ctb_obs::{EventKind, Histogram, Obs, PointKind, SpanKind, TraceAudit};
use ctb_serve::{FaultConfig, FaultInjector, GemmRequest, ServeConfig, ServeStats, Server};
use proptest::prelude::*;
use std::cmp::Ordering;
use std::sync::{Arc, Once};
use std::time::Duration;

const HANG_BOUND: Duration = Duration::from_secs(30);

/// Injected panics unwind through `catch_unwind` by design; silence
/// only *their* default-hook noise so real panics still print.
fn quiet_injected_panics() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            let msg = payload
                .downcast_ref::<&str>()
                .copied()
                .or_else(|| payload.downcast_ref::<String>().map(String::as_str));
            let injected = msg.is_some_and(|s| s.contains("ctb-serve injected fault"));
            if !injected {
                default(info);
            }
        }));
    });
}

// ---------------------------------------------------------------------------
// Satellite: percentile vs independent oracles.
// ---------------------------------------------------------------------------

/// Latency-ish stream element, weighted toward adversarial values. The
/// serving layer only ever records finite non-negative latencies, but
/// the percentile helper must stay total over anything a future caller
/// feeds it.
fn sample() -> impl Strategy<Value = f64> {
    prop_oneof![
        Just(0.0f64),
        Just(-0.0f64),
        Just(1.0f64),
        Just(17.5f64),
        Just(1024.0f64),
        Just(f64::MIN_POSITIVE / 8.0), // subnormal
        Just(f64::MAX),
        Just(f64::INFINITY),
        Just(f64::NEG_INFINITY),
        Just(f64::NAN),
        Just(-f64::NAN),
        -1.0e9f64..1.0e9f64,
        0.0f64..5.0e5f64,
    ]
}

/// Counting-based nearest-rank: the `total_cmp`-smallest element with
/// at least `ceil(q*n)` elements at or below it. No sort, so it shares
/// nothing with the implementation under test.
fn counting_oracle(values: &[f64], q: f64) -> f64 {
    let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
    values
        .iter()
        .copied()
        .filter(|x| values.iter().filter(|v| v.total_cmp(x) != Ordering::Greater).count() >= rank)
        .min_by(|a, b| a.total_cmp(b))
        .expect("the stream maximum always qualifies")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn percentile_matches_counting_oracle(
        values in proptest::collection::vec(sample(), 1..=60),
        q in 0.0f64..=1.0f64,
    ) {
        let mut sorted = values.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let got = ServeStats::percentile(&sorted, q);
        let expect = counting_oracle(&values, q);
        prop_assert!(
            got.to_bits() == expect.to_bits(),
            "percentile({q}) = {got}, counting oracle {expect}, stream {values:?}"
        );
    }

    /// The obs histogram's nearest-rank percentile must land on the
    /// upper edge of the bucket holding `ServeStats::percentile`'s
    /// answer for the same stream — the two implementations agree up to
    /// the histogram's bucket resolution, for *any* input.
    #[test]
    fn percentile_agrees_with_histogram_bucket_projection(
        values in proptest::collection::vec(sample(), 1..=60),
        q in 0.0f64..=1.0f64,
    ) {
        let mut hist = Histogram::new();
        for &v in &values {
            hist.observe(v);
        }
        let mut sorted = values.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let exact = ServeStats::percentile(&sorted, q);
        let expect = Histogram::upper_edge(Histogram::bucket_of(exact));
        let got = hist.percentile(q);
        prop_assert!(
            got.to_bits() == expect.to_bits(),
            "histogram percentile({q}) = {got}, bucket edge of exact {exact} is {expect}"
        );
    }
}

#[test]
fn percentile_of_empty_stream_is_zero() {
    assert_eq!(ServeStats::percentile(&[], 0.5), 0.0);
    assert_eq!(ServeStats::percentile(&[], 1.0), 0.0);
}

// ---------------------------------------------------------------------------
// Satellite: flight-recorder dump on worker panic composes with
// `catch_unwind` — the dump holds the panicking batch's closed span.
// ---------------------------------------------------------------------------

fn request(seed: u64) -> GemmRequest {
    let batch = GemmBatch::random(&[GemmShape::new(32, 48, 64)], 1.0, 0.5, seed);
    GemmRequest {
        a: batch.a[0].clone(),
        b: batch.b[0].clone(),
        c: batch.c[0].clone(),
        alpha: 1.0,
        beta: 0.5,
        deadline: None,
    }
}

#[test]
fn worker_panic_dump_contains_the_panicking_exec_span() {
    // Every coordinated execution panics: each batch takes the
    // retry-then-degrade path, so every batch produces a "worker panic"
    // flight dump. The contract under test: the Exec span guard lives
    // *outside* the `catch_unwind` boundary and is finished before the
    // ring is captured, so each dump ends with the panicking batch's
    // complete SpanBegin/SpanEnd pair followed by its PanicCaught mark.
    quiet_injected_panics();
    let injector = Arc::new(FaultInjector::new(FaultConfig::new(0x0B5CA11).exec_panic(1000)));
    let obs = Arc::new(Obs::wall());
    let session = Session::new(Framework::new(ArchSpec::volta_v100()));
    let cfg = ServeConfig {
        workers: 1,
        max_batch: 4,
        batch_window: Duration::ZERO,
        ..ServeConfig::default()
    };
    let server =
        Server::with_instrumentation(session, cfg, Some(injector), Some(Arc::clone(&obs)));

    let tickets: Vec<_> =
        (0..6).map(|seed| server.submit(request(seed)).expect("admitted")).collect();
    for t in tickets {
        t.wait_for(HANG_BOUND).expect("degraded path still completes every request");
    }
    let stats = server.shutdown();
    assert!(stats.worker_panics >= 1, "the schedule must actually panic");
    assert_eq!(stats.completed, 6, "zero drops through the panic storm");

    let dumps = obs.flight_dumps();
    let worker_dumps: Vec<_> = dumps.iter().filter(|d| d.reason == "worker panic").collect();
    assert_eq!(
        worker_dumps.len(),
        stats.worker_panics,
        "one flight dump per caught coordinated-path panic"
    );
    for dump in worker_dumps {
        let panic_pos = dump
            .events
            .iter()
            .rposition(|e| matches!(e.kind, EventKind::Point(PointKind::PanicCaught)))
            .expect("a worker-panic dump records the PanicCaught mark");
        let (end_pos, span_id) = dump.events[..panic_pos]
            .iter()
            .enumerate()
            .rev()
            .find_map(|(i, e)| match e.kind {
                EventKind::SpanEnd { span: SpanKind::Exec, id } => Some((i, id)),
                _ => None,
            })
            .expect("the panicking batch's Exec span is closed inside the dump");
        assert!(
            dump.events[..end_pos].iter().any(|e| matches!(
                e.kind,
                EventKind::SpanBegin { span: SpanKind::Exec, id } if id == span_id
            )),
            "the dump also holds the matching Exec span begin"
        );
    }

    // The full trace still audits clean after all that unwinding.
    let counts = TraceAudit::new(obs.events()).check().expect("trace invariants hold");
    assert_eq!(counts.panics_caught, stats.worker_panics);
    assert_eq!(counts.responds_degraded, stats.degraded);
}

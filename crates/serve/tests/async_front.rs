//! Differential suite: the async front door vs the blocking path.
//!
//! Every chaos schedule from the resilience suite is driven twice over
//! identical seeded traffic — once through the blocking
//! [`Server::submit`], once through [`ctb_serve::AsyncFront::try_submit`]
//! — and the two runs must be indistinguishable:
//!
//! 1. **Bitwise-identical results** — request `i` resolves to the same
//!    payload (same bits, same degraded flag) or the same typed error
//!    on both paths, and every `Ok` also matches the exact oracle.
//! 2. **Identical accounting** — the final [`ServeStats`] compare `==`
//!    (latency percentiles zeroed: wall time is the one thing the
//!    paths legitimately do differently).
//! 3. **Identical traces** — the audited [`TraceCounts`] compare `==`,
//!    so the front emits exactly one admission and one terminal per
//!    request, the same as the blocking path.
//!
//! The parity hinges on a deliberate design point: the front never
//! consults the `AdmitReject` fault seam (it buffers instead of
//! rejecting) and the blocking path never consults it either (it parks
//! instead of rejecting), so the seeded per-site fault cursors stay
//! aligned whatever the schedule.

use ctb_core::{AdmissionPolicy, Framework, PlanShare, PlanShareConfig, Session};
use ctb_gpu_specs::ArchSpec;
use ctb_matrix::{assert_bitwise_eq, GemmBatch, GemmShape, MatF32};
use ctb_obs::{Obs, TraceAudit, TraceCounts};
use ctb_serve::{
    BreakerPolicy, FaultConfig, FaultInjector, GemmRequest, RetryPolicy, ServeConfig, ServeStats,
    Server,
};
use std::sync::{Arc, Once};
use std::time::Duration;

/// Far beyond every injected delay: hitting it means a hang, not
/// slowness.
const HANG_BOUND: Duration = Duration::from_secs(30);

/// Injected panics unwind through `catch_unwind` by design; silence
/// only *their* default-hook noise so real panics still print.
fn quiet_injected_panics() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            let msg = payload
                .downcast_ref::<&str>()
                .copied()
                .or_else(|| payload.downcast_ref::<String>().map(String::as_str));
            let injected = msg.is_some_and(|s| s.contains("ctb-serve injected fault"));
            if !injected {
                default(info);
            }
        }));
    });
}

/// One differential schedule: the server tuning, the chaos schedule,
/// the traffic volume, and the cache behind the session.
struct Schedule {
    cfg: ServeConfig,
    faults: FaultConfig,
    n: usize,
    /// Attach a generous real deadline to every request so the
    /// injected-expiry seam is consulted on both paths.
    deadline: bool,
    /// `None` = default unbounded single-tenant cache.
    share: Option<PlanShareConfig>,
}

fn shape_pool() -> Vec<GemmShape> {
    vec![
        GemmShape::new(16, 32, 64),
        GemmShape::new(1, 48, 17),
        GemmShape::new(33, 1, 129),
        GemmShape::new(48, 80, 96),
        GemmShape::new(17, 33, 41),
    ]
}

/// Deterministic request + its bitwise-expected result.
fn request_and_expected(shape: GemmShape, seed: u64) -> (GemmRequest, Vec<MatF32>) {
    let scalars = [(1.0f32, 0.0f32), (1.0, 0.5), (0.75, -1.5)];
    let (alpha, beta) = scalars[(seed % scalars.len() as u64) as usize];
    let batch = GemmBatch::random(&[shape], alpha, beta, seed);
    let expected = batch.reference_result_exact();
    let req = GemmRequest {
        a: batch.a[0].clone(),
        b: batch.b[0].clone(),
        c: batch.c[0].clone(),
        alpha,
        beta,
        deadline: None,
    };
    (req, expected)
}

/// Everything one run produces that the other must reproduce exactly.
struct Drive {
    outcomes: Vec<Result<(MatF32, bool), String>>,
    stats: ServeStats,
    counts: TraceCounts,
}

/// Drive the schedule serially (submit, then wait) so batch composition
/// and fault-cursor order are a pure function of the seeds — the only
/// variable left is the admission path under test.
fn drive(s: &Schedule, use_front: bool) -> Drive {
    quiet_injected_panics();
    let injector = Arc::new(FaultInjector::new(s.faults.clone()));
    let framework = Framework::new(ArchSpec::volta_v100());
    let session = match s.share {
        Some(share) => Session::with_share(framework, Arc::new(PlanShare::with_config(share))),
        None => Session::new(framework),
    };
    let obs = Arc::new(Obs::wall());
    let server = Server::with_instrumentation(
        session,
        s.cfg.clone(),
        Some(Arc::clone(&injector)),
        Some(obs),
    );
    let front = use_front.then(|| server.front());
    let pool = shape_pool();
    let mut outcomes = Vec::with_capacity(s.n);
    for i in 0..s.n {
        let (mut req, expected) = request_and_expected(pool[i % pool.len()], i as u64);
        if s.deadline {
            req.deadline = Some(Duration::from_secs(3600));
        }
        let ticket = match &front {
            Some(f) => f.try_submit(req).expect("the front always admits valid requests"),
            None => server.submit(req).expect("the blocking path admits serial traffic"),
        };
        outcomes.push(match ticket.wait_for(HANG_BOUND) {
            Ok(got) => {
                assert_bitwise_eq(
                    &expected,
                    std::slice::from_ref(&got.c),
                    "request vs the exact oracle",
                );
                Ok((got.c, got.degraded))
            }
            Err(e) => Err(e.to_string()),
        });
    }
    drop(front);
    let obs = Arc::clone(server.observer().expect("bus installed"));
    let stats = server.shutdown();
    let counts = TraceAudit::new(obs.events()).check().expect("trace invariants hold");
    Drive { outcomes, stats, counts }
}

/// The differential: run both paths, demand indistinguishability.
fn assert_paths_equivalent(s: Schedule) {
    let blocking = drive(&s, false);
    let front = drive(&s, true);

    assert_eq!(blocking.outcomes.len(), front.outcomes.len());
    for (i, (b, f)) in blocking.outcomes.iter().zip(&front.outcomes).enumerate() {
        match (b, f) {
            (Ok((bc, bd)), Ok((fc, fd))) => {
                assert_eq!(bd, fd, "request {i}: degraded flag diverged between paths");
                assert_bitwise_eq(
                    std::slice::from_ref(bc),
                    std::slice::from_ref(fc),
                    "request payload across admission paths",
                );
            }
            (Err(be), Err(fe)) => {
                assert_eq!(be, fe, "request {i}: error diverged between paths");
            }
            (b, f) => panic!("request {i} diverged: blocking {b:?} vs front {f:?}"),
        }
    }

    let zero_latency = |mut st: ServeStats| {
        st.p50_us = 0.0;
        st.p95_us = 0.0;
        st
    };
    assert_eq!(
        zero_latency(blocking.stats),
        zero_latency(front.stats),
        "ServeStats diverged between the blocking path and the async front"
    );
    assert_eq!(
        blocking.counts, front.counts,
        "audited trace counts diverged between the admission paths"
    );
}

/// Schedule 1: a plan-failure storm (40%), breaker disabled.
#[test]
fn front_matches_blocking_under_plan_failure_storm() {
    assert_paths_equivalent(Schedule {
        cfg: ServeConfig {
            max_batch: 1,
            batch_window: Duration::ZERO,
            breaker: BreakerPolicy { trip_threshold: 0, open_batches: 0 },
            ..ServeConfig::default()
        },
        faults: FaultConfig::new(0xC0FFEE).plan_fail(400),
        n: 60,
        deadline: false,
        share: None,
    });
}

/// Schedule 2: an executor-panic storm (30%) with generous retries.
#[test]
fn front_matches_blocking_under_exec_panic_storm() {
    assert_paths_equivalent(Schedule {
        cfg: ServeConfig {
            max_batch: 1,
            batch_window: Duration::ZERO,
            retry: RetryPolicy {
                max_retries: 10,
                backoff_base: Duration::from_micros(10),
                backoff_cap: Duration::from_micros(100),
                retry_budget: 100_000,
            },
            breaker: BreakerPolicy { trip_threshold: 0, open_batches: 0 },
            ..ServeConfig::default()
        },
        faults: FaultConfig::new(0xBADC0DE).exec_panic(300),
        n: 60,
        deadline: false,
        share: None,
    });
}

/// Schedule 3: slow workers plus a deadline storm — the injected-expiry
/// seam is consulted for every deadline-carrying request on both paths.
#[test]
fn front_matches_blocking_under_slow_worker_and_deadline_storm() {
    assert_paths_equivalent(Schedule {
        cfg: ServeConfig {
            max_batch: 4,
            batch_window: Duration::from_micros(100),
            ..ServeConfig::default()
        },
        faults: FaultConfig::new(0xD0DEC0DE)
            .expire(250)
            .slow_worker(200, Duration::from_millis(2)),
        n: 50,
        deadline: true,
        share: None,
    });
}

/// Schedule 4: an `AdmitReject` schedule is configured but — by design —
/// dormant on both paths: the blocking path parks instead of rejecting
/// and the front buffers instead of rejecting, so neither consults the
/// seam and the cursors stay aligned. This pins the design point the
/// whole suite's parity rests on.
#[test]
fn front_matches_blocking_with_dormant_admit_reject_seam() {
    assert_paths_equivalent(Schedule {
        cfg: ServeConfig {
            max_batch: 8,
            batch_window: Duration::from_micros(50),
            queue_capacity: 320,
            ..ServeConfig::default()
        },
        faults: FaultConfig::new(0x5A7A5A7A).admit_reject(300),
        n: 80,
        deadline: false,
        share: None,
    });
}

/// Schedule 5: everything at once — plan failures, executor panics,
/// degraded-path panics, slow workers, deadline storms — with retries
/// and the breaker live.
#[test]
fn front_matches_blocking_under_combined_storm() {
    assert_paths_equivalent(Schedule {
        cfg: ServeConfig {
            max_batch: 4,
            batch_window: Duration::from_micros(100),
            queue_capacity: 32,
            workers: 3,
            retry: RetryPolicy {
                max_retries: 2,
                backoff_base: Duration::from_micros(10),
                backoff_cap: Duration::from_micros(200),
                retry_budget: 100_000,
            },
            breaker: BreakerPolicy { trip_threshold: 6, open_batches: 4 },
        },
        faults: FaultConfig::new(0xF00DFACE)
            .plan_fail(100)
            .exec_panic(150)
            .degraded_panic(50)
            .expire(80)
            .slow_worker(100, Duration::from_micros(500)),
        n: 120,
        deadline: true,
        share: None,
    });
}

/// Schedule 6: a hard panic storm (100%) against one worker — the
/// breaker's deterministic trip/recover cycle must phase identically
/// on both paths.
#[test]
fn front_matches_blocking_through_breaker_cycles() {
    assert_paths_equivalent(Schedule {
        cfg: ServeConfig {
            max_batch: 1,
            batch_window: Duration::ZERO,
            workers: 1,
            retry: RetryPolicy { max_retries: 0, ..RetryPolicy::default() },
            breaker: BreakerPolicy { trip_threshold: 6, open_batches: 4 },
            ..ServeConfig::default()
        },
        faults: FaultConfig::new(0xDEAD10CC).exec_panic(1000),
        n: 26,
        deadline: false,
        share: None,
    });
}

/// Schedule 7: zero retry budget — panics degrade immediately, on both
/// paths, with the retry counter pinned at zero.
#[test]
fn front_matches_blocking_with_zero_retry_budget() {
    assert_paths_equivalent(Schedule {
        cfg: ServeConfig {
            max_batch: 1,
            batch_window: Duration::ZERO,
            retry: RetryPolicy { max_retries: 5, retry_budget: 0, ..RetryPolicy::default() },
            breaker: BreakerPolicy { trip_threshold: 0, open_batches: 0 },
            ..ServeConfig::default()
        },
        faults: FaultConfig::new(0xACE0FBA5E).exec_panic(350),
        n: 40,
        deadline: false,
        share: None,
    });
}

/// Schedule 8: a sharded, bounded, Bloom-gated plan cache behind the
/// session while the executor panics — denial, shard, and admission
/// counters must reconcile `==` across the admission paths too.
#[test]
fn front_matches_blocking_over_sharded_bloom_gated_cache() {
    let s = Schedule {
        cfg: ServeConfig {
            max_batch: 1,
            batch_window: Duration::ZERO,
            retry: RetryPolicy {
                max_retries: 10,
                backoff_base: Duration::from_micros(10),
                backoff_cap: Duration::from_micros(100),
                retry_budget: 100_000,
            },
            breaker: BreakerPolicy { trip_threshold: 0, open_batches: 0 },
            ..ServeConfig::default()
        },
        faults: FaultConfig::new(0xB100B100).exec_panic(250),
        n: 60,
        deadline: false,
        share: Some(PlanShareConfig {
            shards: 4,
            capacity_per_shard: Some(8),
            admission: AdmissionPolicy::SeenTwice { seed: 0xCAFE, slots_log2: 6 },
        }),
    };
    // The gate must actually fire under this schedule, or the test
    // proves parity of nothing.
    let probe = drive(&s, true);
    assert!(probe.stats.cache_admission.denied > 0, "first sightings were denied");
    assert!(probe.stats.cache_admission.admitted > 0, "second sightings were admitted");
    assert_eq!(probe.stats.plan_shards, 4);
    assert_paths_equivalent(s);
}

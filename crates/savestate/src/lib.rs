//! Versioned, deterministic binary savestate codec.
//!
//! Dependency-free leaf crate shared by `ctb-core`, `ctb-serve`,
//! `ctb-obs` and `ctb-cluster` for checkpoint/restore of the whole
//! serving stack (the idiom of dust's `Savestate` derive, hand-written
//! the way the `ctb-forest` text codec is). The rules that make a
//! savestate *deterministic*:
//!
//! * little-endian fixed-width integers, `f64`/`f32` stored as IEEE
//!   bit patterns (`to_bits`) so values round-trip *bitwise*, NaN
//!   payloads included;
//! * every unordered container is serialized in a sorted order chosen
//!   by the caller, so save → load → save is byte-identical;
//! * no wall-clock anywhere in a blob — time is typed sim-time carried
//!   as integers.
//!
//! Every blob starts with [`MAGIC`] + a `u32` [`FORMAT_VERSION`].
//! Decoding never panics on malformed input: all reader paths return a
//! typed [`SavestateError`], and length prefixes clamp pre-allocation
//! (a forged count cannot OOM the loader).

use std::fmt;

/// Leading magic of every savestate blob.
pub const MAGIC: [u8; 4] = *b"CTBS";

/// Current savestate format version. Bump on any layout change; the
/// reader rejects *newer* versions with a typed error and keeps
/// loading every older version it still understands.
///
/// History: v1 was the original cluster checkpoint layout; v2 extended
/// the embedded `PlanShare` image with the shard layout, the optional
/// per-shard capacity bound and the Bloom admission gate; v3 added
/// per-device chiplet topology, the locality-ranking flag, the operand
/// residency map and its counters. Each extension changed the layout
/// in place, so older blobs no longer decode (the cluster restore
/// rejects them with a typed [`SavestateError::Mismatch`]).
pub const FORMAT_VERSION: u32 = 3;

/// Cap on speculative pre-allocation while decoding length-prefixed
/// containers. Real lengths above this are still decoded — the vector
/// just grows incrementally instead of trusting the prefix.
const PREALLOC_CAP: usize = 4096;

/// Typed decoding failure. Never a panic: corrupt, truncated or
/// version-skewed blobs all surface as values of this enum.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SavestateError {
    /// The blob's format version is newer than this build understands.
    UnsupportedVersion { found: u32, supported: u32 },
    /// The blob is structurally invalid: bad magic, truncated buffer,
    /// an out-of-range enum tag, or trailing garbage.
    Corrupt(String),
    /// The blob is well-formed but does not match the world it is
    /// being restored into (wrong pool arch, wrong queue capacity, an
    /// unshareable planning fingerprint, ...).
    Mismatch(String),
}

impl fmt::Display for SavestateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SavestateError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported savestate version {found} (this build reads <= {supported})"
            ),
            SavestateError::Corrupt(why) => write!(f, "corrupt savestate: {why}"),
            SavestateError::Mismatch(why) => write!(f, "savestate mismatch: {why}"),
        }
    }
}

impl std::error::Error for SavestateError {}

/// Append-only binary writer. All methods are infallible; call
/// [`Writer::into_bytes`] to take the finished blob.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    pub fn new() -> Self {
        Writer { buf: Vec::new() }
    }

    /// Writer pre-seeded with the blob header ([`MAGIC`] +
    /// [`FORMAT_VERSION`]).
    pub fn with_header() -> Self {
        let mut w = Writer::new();
        w.buf.extend_from_slice(&MAGIC);
        w.u32(FORMAT_VERSION);
        w
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// `usize` carried as `u64` (blob layout is architecture-free).
    pub fn len_prefix(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// `f64` as its IEEE bit pattern — bitwise round-trip, NaNs kept.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    pub fn f32(&mut self, v: f32) {
        self.u32(v.to_bits());
    }

    pub fn str(&mut self, s: &str) {
        self.len_prefix(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    pub fn bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }
}

/// Checked binary reader over a savestate blob. Every accessor
/// validates bounds and returns [`SavestateError::Corrupt`] instead of
/// panicking when the blob lies.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Reader that first validates [`MAGIC`] and the format version,
    /// returning the version found in the blob (always `<=`
    /// [`FORMAT_VERSION`] on success).
    pub fn with_header(buf: &'a [u8]) -> Result<(Self, u32), SavestateError> {
        let mut r = Reader::new(buf);
        let magic = r.take(MAGIC.len())?;
        if magic != MAGIC {
            return Err(SavestateError::Corrupt(format!(
                "bad magic {magic:?} (expected {MAGIC:?})"
            )));
        }
        let version = r.u32()?;
        if version > FORMAT_VERSION {
            return Err(SavestateError::UnsupportedVersion {
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        Ok((r, version))
    }

    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SavestateError> {
        if self.remaining() < n {
            return Err(SavestateError::Corrupt(format!(
                "truncated: wanted {n} bytes at offset {}, {} left",
                self.pos,
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn u8(&mut self) -> Result<u8, SavestateError> {
        Ok(self.take(1)?[0])
    }

    pub fn bool(&mut self) -> Result<bool, SavestateError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(SavestateError::Corrupt(format!("bad bool byte {b}"))),
        }
    }

    pub fn u32(&mut self) -> Result<u32, SavestateError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    pub fn u64(&mut self) -> Result<u64, SavestateError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Length prefix, bounds-checked against the bytes actually left
    /// so a forged count fails fast instead of allocating.
    pub fn len_prefix(&mut self) -> Result<usize, SavestateError> {
        let v = self.u64()?;
        if v > (self.remaining() as u64) && v > u32::MAX as u64 {
            return Err(SavestateError::Corrupt(format!("absurd length {v}")));
        }
        Ok(v as usize)
    }

    pub fn f64(&mut self) -> Result<f64, SavestateError> {
        Ok(f64::from_bits(self.u64()?))
    }

    pub fn f32(&mut self) -> Result<f32, SavestateError> {
        Ok(f32::from_bits(self.u32()?))
    }

    pub fn str(&mut self) -> Result<String, SavestateError> {
        let n = self.len_prefix()?;
        let b = self.take(n)?;
        String::from_utf8(b.to_vec())
            .map_err(|e| SavestateError::Corrupt(format!("bad utf-8 string: {e}")))
    }

    /// Decode a length-prefixed sequence via `f`, with clamped
    /// pre-allocation.
    pub fn seq<T>(
        &mut self,
        mut f: impl FnMut(&mut Self) -> Result<T, SavestateError>,
    ) -> Result<Vec<T>, SavestateError> {
        let n = self.len_prefix()?;
        let mut out = Vec::with_capacity(n.min(PREALLOC_CAP));
        for _ in 0..n {
            out.push(f(self)?);
        }
        Ok(out)
    }

    /// Assert the whole blob was consumed — trailing garbage is
    /// corruption, not padding.
    pub fn expect_end(&self) -> Result<(), SavestateError> {
        if self.remaining() != 0 {
            return Err(SavestateError::Corrupt(format!(
                "{} trailing bytes after end of state",
                self.remaining()
            )));
        }
        Ok(())
    }
}

/// A type that can serialize itself into a [`Writer`] and rebuild
/// itself from a [`Reader`]. Implemented next to each type's private
/// fields (per-crate), never via reflection.
pub trait Savestate: Sized {
    fn save(&self, w: &mut Writer);
    fn load(r: &mut Reader<'_>) -> Result<Self, SavestateError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip_bitwise() {
        let mut w = Writer::with_header();
        w.u8(7);
        w.bool(true);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 1);
        w.f64(f64::from_bits(0x7FF8_0000_0000_1234)); // NaN with payload
        w.f64(-0.0);
        w.str("θ=256");
        let bytes = w.into_bytes();

        let (mut r, v) = Reader::with_header(&bytes).unwrap();
        assert_eq!(v, FORMAT_VERSION);
        assert_eq!(r.u8().unwrap(), 7);
        assert!(r.bool().unwrap());
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.f64().unwrap().to_bits(), 0x7FF8_0000_0000_1234);
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.str().unwrap(), "θ=256");
        r.expect_end().unwrap();
    }

    #[test]
    fn newer_version_is_a_typed_error() {
        let mut w = Writer::new();
        w.bytes(&MAGIC);
        w.u32(FORMAT_VERSION + 1);
        let err = Reader::with_header(&w.into_bytes()).unwrap_err();
        assert_eq!(
            err,
            SavestateError::UnsupportedVersion {
                found: FORMAT_VERSION + 1,
                supported: FORMAT_VERSION
            }
        );
    }

    #[test]
    fn bad_magic_truncation_and_trailing_bytes_are_corrupt_not_panics() {
        assert!(matches!(
            Reader::with_header(b"NOPE\x01\x00\x00\x00"),
            Err(SavestateError::Corrupt(_))
        ));
        // Truncated mid-header and mid-value.
        assert!(matches!(
            Reader::with_header(&MAGIC[..3]),
            Err(SavestateError::Corrupt(_))
        ));
        let mut w = Writer::with_header();
        w.u64(42);
        let bytes = w.into_bytes();
        let (mut r, _) = Reader::with_header(&bytes[..bytes.len() - 1]).unwrap();
        assert!(matches!(r.u64(), Err(SavestateError::Corrupt(_))));
        // Trailing garbage.
        let (r, _) = Reader::with_header(&bytes).unwrap();
        assert!(matches!(r.expect_end(), Err(SavestateError::Corrupt(_))));
    }

    #[test]
    fn forged_sequence_count_fails_without_allocating() {
        let mut w = Writer::with_header();
        w.u64(u64::MAX / 2); // forged length prefix, no payload
        let bytes = w.into_bytes();
        let (mut r, _) = Reader::with_header(&bytes).unwrap();
        assert!(matches!(
            r.seq(|r| r.u64()),
            Err(SavestateError::Corrupt(_))
        ));
    }

    #[test]
    fn seq_round_trips_and_errors_are_displayable() {
        let mut w = Writer::new();
        w.len_prefix(3);
        for x in [1u64, 2, 3] {
            w.u64(x);
        }
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.seq(|r| r.u64()).unwrap(), vec![1, 2, 3]);
        let e = SavestateError::UnsupportedVersion { found: 9, supported: 1 };
        assert!(e.to_string().contains("version 9"));
    }
}

//! Convolution-as-GEMM lowering and the GoogleNet case study (§7.3).
//!
//! The paper's real-world evaluation batches the four parallel branch
//! GEMMs of every GoogleNet inception module. This crate provides:
//!
//! * [`conv`] — convolution descriptors and their GEMM shapes under the
//!   im2col algorithm (`M` = filters, `K` = filter size × channels,
//!   `N` = feature-map positions × image batch — the paper's mapping);
//! * [`im2col`] — the functional lowering plus a direct-convolution
//!   reference used to validate it;
//! * [`googlenet`] — the full GoogleNet-v1 topology: 57 convolutions
//!   (3 stem + 9 inception modules × 6), with the real channel/spatial
//!   dimensions;
//! * [`pipeline`] — end-to-end inference timing under the three
//!   executions of §7.3: cuDNN-like serial, serial + branch streams, and
//!   coordinated batched GEMM.

pub mod backward;
pub mod forward;
pub mod conv;
pub mod googlenet;
pub mod im2col;
pub mod pipeline;
pub mod resnet;
pub mod tensor;
pub mod squeezenet;

pub use conv::Conv2dDesc;
pub use forward::{ForwardEngine, Weights};
pub use tensor::Tensor;
pub use googlenet::{googlenet_v1, GoogleNet, InceptionModule};
pub use pipeline::{googlenet_times, inception_layer_speedups, GoogleNetTimes};
pub use resnet::{resnet50_blocks, BottleneckBlock};
pub use squeezenet::{squeezenet_v1, FireModule, SqueezeNet};

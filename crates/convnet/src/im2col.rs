//! The im2col convolution algorithm and a direct-convolution reference.
//!
//! Layouts: inputs/outputs are CHW per image (batch-major), weights are
//! `out_c × (in_c·kh·kw)` row-major. `conv_via_gemm` must agree with
//! `conv_direct` — that equivalence is what lets the paper turn
//! GoogleNet layers into batched GEMMs.

use crate::conv::Conv2dDesc;
use ctb_matrix::{gemm_blocked, MatF32};

/// Lower a batch of images to the im2col matrix: `(in_c·kh·kw) ×
/// (out_h·out_w·batch)`, with batch-major columns (image 0's positions
/// first).
pub fn im2col(desc: &Conv2dDesc, input: &[MatF32]) -> MatF32 {
    let (oh, ow) = (desc.out_h(), desc.out_w());
    let k = desc.in_c * desc.kh * desc.kw;
    let n = oh * ow * input.len();
    let mut cols = MatF32::zeros(k, n);
    for (img, x) in input.iter().enumerate() {
        assert_eq!(x.rows(), desc.in_c, "input channels");
        assert_eq!(x.cols(), desc.in_h * desc.in_w, "input spatial size");
        for c in 0..desc.in_c {
            for ky in 0..desc.kh {
                for kx in 0..desc.kw {
                    let row = (c * desc.kh + ky) * desc.kw + kx;
                    for oy in 0..oh {
                        let iy = (oy * desc.stride + ky) as isize - desc.pad as isize;
                        if iy < 0 || iy as usize >= desc.in_h {
                            continue;
                        }
                        for ox in 0..ow {
                            let ix = (ox * desc.stride + kx) as isize - desc.pad as isize;
                            if ix < 0 || ix as usize >= desc.in_w {
                                continue;
                            }
                            let col = img * oh * ow + oy * ow + ox;
                            let v = x.get(c, iy as usize * desc.in_w + ix as usize);
                            cols.set(row, col, v);
                        }
                    }
                }
            }
        }
    }
    cols
}

/// Convolution through im2col + GEMM: `out = weights × im2col(input)`.
/// `weights` is `out_c × (in_c·kh·kw)`; the result is
/// `out_c × (out_h·out_w·batch)`.
pub fn conv_via_gemm(desc: &Conv2dDesc, weights: &MatF32, input: &[MatF32]) -> MatF32 {
    assert_eq!(weights.rows(), desc.out_c, "filter count");
    assert_eq!(weights.cols(), desc.in_c * desc.kh * desc.kw, "filter size");
    let cols = im2col(desc, input);
    let mut out = MatF32::zeros(desc.out_c, cols.cols());
    gemm_blocked(1.0, weights, &cols, 0.0, &mut out);
    out
}

/// Naive direct convolution (the oracle).
pub fn conv_direct(desc: &Conv2dDesc, weights: &MatF32, input: &[MatF32]) -> MatF32 {
    let (oh, ow) = (desc.out_h(), desc.out_w());
    let mut out = MatF32::zeros(desc.out_c, oh * ow * input.len());
    for (img, x) in input.iter().enumerate() {
        for oc in 0..desc.out_c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = 0.0f32;
                    for c in 0..desc.in_c {
                        for ky in 0..desc.kh {
                            let iy = (oy * desc.stride + ky) as isize - desc.pad as isize;
                            if iy < 0 || iy as usize >= desc.in_h {
                                continue;
                            }
                            for kx in 0..desc.kw {
                                let ix = (ox * desc.stride + kx) as isize - desc.pad as isize;
                                if ix < 0 || ix as usize >= desc.in_w {
                                    continue;
                                }
                                let w = weights.get(oc, (c * desc.kh + ky) * desc.kw + kx);
                                acc += w * x.get(c, iy as usize * desc.in_w + ix as usize);
                            }
                        }
                    }
                    out.set(oc, img * oh * ow + oy * ow + ox, acc);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctb_matrix::max_abs_diff;

    fn check(desc: &Conv2dDesc, batch: usize, seed: u64) {
        let weights = MatF32::random(desc.out_c, desc.in_c * desc.kh * desc.kw, seed);
        let input: Vec<MatF32> = (0..batch)
            .map(|i| MatF32::random(desc.in_c, desc.in_h * desc.in_w, seed + 1 + i as u64))
            .collect();
        let via_gemm = conv_via_gemm(desc, &weights, &input);
        let direct = conv_direct(desc, &weights, &input);
        assert!(
            max_abs_diff(&via_gemm, &direct) < 1e-3,
            "{}: im2col disagrees with direct conv",
            desc.name
        );
        // Shape check: matches the declared GEMM shape.
        let gs = desc.gemm_shape(batch);
        assert_eq!((via_gemm.rows(), via_gemm.cols()), (gs.m, gs.n));
    }

    #[test]
    fn pointwise_conv_is_plain_gemm() {
        check(&Conv2dDesc::new("1x1", 8, 6, 5, 4, 1, 1, 1, 0), 1, 1);
    }

    #[test]
    fn conv3x3_padded() {
        check(&Conv2dDesc::new("3x3", 3, 8, 8, 5, 3, 3, 1, 1), 2, 2);
    }

    #[test]
    fn conv5x5_padded() {
        check(&Conv2dDesc::new("5x5", 2, 9, 9, 3, 5, 5, 1, 2), 1, 3);
    }

    #[test]
    fn strided_conv() {
        check(&Conv2dDesc::new("7x7s2", 3, 15, 15, 4, 7, 7, 2, 3), 2, 4);
    }

    #[test]
    fn asymmetric_spatial_input() {
        check(&Conv2dDesc::new("rect", 4, 7, 11, 6, 3, 3, 1, 1), 1, 5);
    }

    #[test]
    fn im2col_of_identity_kernel_window() {
        // 1x1 kernel: im2col is just the flattened input.
        let desc = Conv2dDesc::new("id", 2, 3, 3, 1, 1, 1, 1, 0);
        let input = vec![MatF32::random(2, 9, 7)];
        let cols = im2col(&desc, &input);
        assert_eq!((cols.rows(), cols.cols()), (2, 9));
        assert_eq!(cols.as_slice(), input[0].as_slice());
    }
}

//! End-to-end GoogleNet inference timing (§7.3) and the per-layer
//! speedups of Fig 10.
//!
//! Three executions are compared, mirroring the paper's 3.18 ms /
//! 2.41 ms / 2.01 ms experiment:
//!
//! * **cuDNN-like** — every convolution runs as its own optimally tiled
//!   GEMM kernel, serially;
//! * **+ streams** — the independent branch convolutions of each
//!   inception module run concurrently on streams;
//! * **coordinated** — the four stage-1 branch GEMMs of each module are
//!   batched through the framework (and the two stage-2 GEMMs likewise),
//!   as the paper does.
//!
//! Data dependencies are respected everywhere: stage 2 of a module
//! starts only after stage 1, and modules execute in network order.

use crate::googlenet::{googlenet_v1, GoogleNet};
use crate::squeezenet::squeezenet_v1;
use ctb_baselines::{default_serial, magma_vbatch, simulate_baseline};
use ctb_core::Framework;
use ctb_gpu_specs::ArchSpec;
use ctb_matrix::GemmShape;
use ctb_sim::simulate;

/// End-to-end inference times in milliseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GoogleNetTimes {
    /// Serial per-conv kernels (the cuDNN-like baseline).
    pub cudnn_like_ms: f64,
    /// Baseline plus branch-level stream concurrency.
    pub cudnn_streams_ms: f64,
    /// The paper's framework: batched branch GEMMs.
    pub coordinated_ms: f64,
}

impl GoogleNetTimes {
    /// Speedup of the coordinated execution over the serial baseline.
    pub fn speedup_vs_baseline(&self) -> f64 {
        self.cudnn_like_ms / self.coordinated_ms
    }

    /// Speedup of the coordinated execution over the stream variant.
    pub fn speedup_vs_streams(&self) -> f64 {
        self.cudnn_streams_ms / self.coordinated_ms
    }
}

/// Serial execution time of a set of GEMMs (one kernel each), in µs.
fn serial_us(arch: &ArchSpec, shapes: &[GemmShape]) -> f64 {
    simulate_baseline(arch, &default_serial(arch, shapes)).total_us
}

/// Stream-concurrent execution time of a set of GEMMs, in µs.
fn streams_us(arch: &ArchSpec, shapes: &[GemmShape]) -> f64 {
    let run = ctb_baselines::cke_exec::cke_with_streams(arch, shapes, shapes.len().max(1));
    simulate_baseline(arch, &run).total_us
}

/// Coordinated (framework-batched) execution time of a set of GEMMs.
fn coordinated_us(fw: &Framework, shapes: &[GemmShape]) -> f64 {
    fw.simulate_only(shapes).expect("plannable").total_us
}

/// MAGMA vbatch execution time of a set of GEMMs.
fn magma_us(arch: &ArchSpec, shapes: &[GemmShape]) -> f64 {
    let run = magma_vbatch(arch, shapes);
    simulate(arch, &run.seq).total_us
}

/// Compute the three end-to-end inference times for an image batch of
/// `batch` (the paper's case study is FP32 inference).
pub fn googlenet_times(arch: &ArchSpec, batch: usize) -> GoogleNetTimes {
    let net = googlenet_v1();
    let fw = Framework::new(arch.clone());

    let stem: Vec<GemmShape> = net.stem.iter().map(|c| c.gemm_shape(batch)).collect();

    let mut base_us = serial_us(arch, &stem);
    let mut stream_us_total = serial_us(arch, &stem);
    let mut coord_us = serial_us(arch, &stem);

    for m in &net.modules {
        let s1 = m.stage1_shapes(batch);
        let s2 = m.stage2_shapes(batch);
        // Baseline: all six convs serial.
        base_us += serial_us(arch, &s1) + serial_us(arch, &s2);
        // Streams: branch heads concurrent, then the two stage-2 convs.
        stream_us_total += streams_us(arch, &s1) + streams_us(arch, &s2);
        // Coordinated: one batched kernel per stage.
        coord_us += coordinated_us(&fw, &s1) + coordinated_us(&fw, &s2);
    }

    GoogleNetTimes {
        cudnn_like_ms: base_us / 1000.0,
        cudnn_streams_ms: stream_us_total / 1000.0,
        coordinated_ms: coord_us / 1000.0,
    }
}

/// End-to-end SqueezeNet v1.0 inference times (extension experiment):
/// the same three executions as the GoogleNet study, with each fire
/// module's two expand GEMMs batched by the framework.
pub fn squeezenet_times(arch: &ArchSpec, batch: usize) -> GoogleNetTimes {
    let net = squeezenet_v1();
    let fw = Framework::new(arch.clone());

    let solos: Vec<GemmShape> =
        vec![net.conv1.gemm_shape(batch), net.conv10.gemm_shape(batch)];
    let mut base_us = serial_us(arch, &solos);
    let mut stream_total = serial_us(arch, &solos);
    let mut coord_us = serial_us(arch, &solos);

    for f in &net.fires {
        let squeeze = vec![f.squeeze1x1.gemm_shape(batch)];
        let expand = f.expand_shapes(batch);
        // The squeeze conv is serial in every variant (the expands
        // depend on it).
        let sq = serial_us(arch, &squeeze);
        base_us += sq + serial_us(arch, &expand);
        stream_total += sq + streams_us(arch, &expand);
        coord_us += sq + coordinated_us(&fw, &expand);
    }

    GoogleNetTimes {
        cudnn_like_ms: base_us / 1000.0,
        cudnn_streams_ms: stream_total / 1000.0,
        coordinated_ms: coord_us / 1000.0,
    }
}

/// Per-fire-module speedup of the coordinated expand batch over MAGMA
/// vbatch on the same GEMMs (the SqueezeNet analogue of Fig 10).
pub fn fire_module_speedups(arch: &ArchSpec, batch: usize) -> Vec<(String, f64)> {
    let fw = Framework::new(arch.clone());
    squeezenet_v1()
        .fires
        .iter()
        .map(|f| {
            let shapes = f.expand_shapes(batch);
            let ours = coordinated_us(&fw, &shapes);
            let magma = magma_us(arch, &shapes);
            (f.name.clone(), magma / ours)
        })
        .collect()
}

/// Fig 10: per-inception-layer speedup of the coordinated framework over
/// MAGMA vbatch on the same batched GEMMs (stage 1 + stage 2).
pub fn inception_layer_speedups(arch: &ArchSpec, batch: usize) -> Vec<(String, f64)> {
    inception_layer_speedups_of(&googlenet_v1(), arch, batch)
}

/// As [`inception_layer_speedups`], for an explicit network.
pub fn inception_layer_speedups_of(
    net: &GoogleNet,
    arch: &ArchSpec,
    batch: usize,
) -> Vec<(String, f64)> {
    let fw = Framework::new(arch.clone());
    net.modules
        .iter()
        .map(|m| {
            let s1 = m.stage1_shapes(batch);
            let s2 = m.stage2_shapes(batch);
            let ours = coordinated_us(&fw, &s1) + coordinated_us(&fw, &s2);
            let magma = magma_us(arch, &s1) + magma_us(arch, &s2);
            (m.name.clone(), magma / ours)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_matches_the_paper() {
        // 3.18 ms (baseline) > 2.41 ms (+streams) > 2.01 ms (ours): we
        // reproduce the ordering and the rough magnitudes.
        let arch = ArchSpec::volta_v100();
        let t = googlenet_times(&arch, 1);
        assert!(
            t.cudnn_like_ms > t.cudnn_streams_ms && t.cudnn_streams_ms > t.coordinated_ms,
            "{t:?}"
        );
        // Low-single-digit milliseconds, like the paper's 2-3 ms.
        assert!((0.3..20.0).contains(&t.cudnn_like_ms), "{t:?}");
        // Paper's overall gain is 3.18/2.01 = 1.58x; accept a broad band.
        let s = t.speedup_vs_baseline();
        assert!((1.1..3.0).contains(&s), "speedup vs baseline {s}");
    }

    #[test]
    fn squeezenet_ordering_matches_the_fan_structure_claim() {
        // The paper's claim that its methodology generalises to
        // SqueezeNet's fan structure: same ordering as GoogleNet.
        let arch = ArchSpec::volta_v100();
        let t = squeezenet_times(&arch, 1);
        assert!(t.cudnn_like_ms >= t.cudnn_streams_ms, "{t:?}");
        assert!(t.cudnn_streams_ms >= t.coordinated_ms * 0.98, "{t:?}");
        assert!((0.05..10.0).contains(&t.cudnn_like_ms), "{t:?}");
    }

    #[test]
    fn every_inception_layer_beats_magma() {
        // Fig 10: speedups between ~1.2x and ~1.4x, all above 1.
        let arch = ArchSpec::volta_v100();
        let speedups = inception_layer_speedups(&arch, 1);
        assert_eq!(speedups.len(), 9);
        for (name, s) in &speedups {
            assert!(*s > 1.0, "{name}: speedup {s}");
            assert!(*s < 4.0, "{name}: speedup {s} implausibly large");
        }
    }
}

//! Convolution descriptors and their GEMM shapes.

use ctb_matrix::GemmShape;

/// One 2-D convolution layer (square or rectangular kernels, symmetric
/// stride/padding), described over its input feature map.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Conv2dDesc {
    /// Layer name, e.g. `"inception3a/5x5_reduce"`.
    pub name: String,
    /// Input channels.
    pub in_c: usize,
    /// Input spatial height.
    pub in_h: usize,
    /// Input spatial width.
    pub in_w: usize,
    /// Output channels (number of filters — the GEMM's `M`).
    pub out_c: usize,
    /// Kernel height.
    pub kh: usize,
    /// Kernel width.
    pub kw: usize,
    /// Stride (same in both dimensions).
    pub stride: usize,
    /// Zero padding (same on all sides).
    pub pad: usize,
}

impl Conv2dDesc {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: &str,
        in_c: usize,
        in_h: usize,
        in_w: usize,
        out_c: usize,
        kh: usize,
        kw: usize,
        stride: usize,
        pad: usize,
    ) -> Self {
        Conv2dDesc { name: name.into(), in_c, in_h, in_w, out_c, kh, kw, stride, pad }
    }

    /// Output spatial height.
    pub fn out_h(&self) -> usize {
        (self.in_h + 2 * self.pad - self.kh) / self.stride + 1
    }

    /// Output spatial width.
    pub fn out_w(&self) -> usize {
        (self.in_w + 2 * self.pad - self.kw) / self.stride + 1
    }

    /// The im2col GEMM shape for an image batch of `batch` (§1: "M
    /// refers to the number of filters, K refers to the size of filter
    /// and the number of channels, and N refers to the feature map and
    /// batch size").
    pub fn gemm_shape(&self, batch: usize) -> GemmShape {
        GemmShape::new(
            self.out_c,
            self.out_h() * self.out_w() * batch,
            self.in_c * self.kh * self.kw,
        )
    }

    /// Multiply–accumulate count for one image.
    pub fn macs(&self) -> u64 {
        (self.out_c * self.out_h() * self.out_w() * self.in_c * self.kh * self.kw) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_dims_follow_the_conv_formula() {
        // GoogleNet conv1: 224x224, 7x7 stride 2 pad 3 -> 112x112.
        let c = Conv2dDesc::new("conv1", 3, 224, 224, 64, 7, 7, 2, 3);
        assert_eq!((c.out_h(), c.out_w()), (112, 112));
        // 3x3 pad 1 stride 1 preserves size.
        let c = Conv2dDesc::new("c", 64, 56, 56, 192, 3, 3, 1, 1);
        assert_eq!((c.out_h(), c.out_w()), (56, 56));
        // 1x1 keeps size.
        let c = Conv2dDesc::new("c", 192, 28, 28, 64, 1, 1, 1, 0);
        assert_eq!((c.out_h(), c.out_w()), (28, 28));
    }

    #[test]
    fn paper_motivating_gemm_shape() {
        // §1: inception3a/5x5_reduce maps to 16 x 784 x 192 at image
        // batch 1.
        let c = Conv2dDesc::new("inception3a/5x5_reduce", 192, 28, 28, 16, 1, 1, 1, 0);
        assert_eq!(c.gemm_shape(1), GemmShape::new(16, 784, 192));
        // Batch scales N only.
        assert_eq!(c.gemm_shape(4), GemmShape::new(16, 4 * 784, 192));
    }
}

//! Backward-pass GEMM shapes for convolution layers.
//!
//! The paper notes its framework suits "the training process of a deep
//! neural network" (fixed shapes per step, so best-of-both batching
//! applies). Training a convolution produces two extra GEMMs per layer:
//!
//! * **data gradient** (`dX = Wᵀ · dY`, then col2im):
//!   `M = in_c·kh·kw`, `N = out positions × batch`, `K = out_c`;
//! * **weight gradient** (`dW = dY · im2colᵀ`):
//!   `M = out_c`, `N = in_c·kh·kw`, `K = out positions × batch`.
//!
//! Both keep the fan structure: the branch heads of an inception module
//! share their input gradient, so their backward GEMMs batch exactly
//! like the forward ones. This module provides the shape algebra and the
//! batched workloads; timing flows through the ordinary framework path.
//! (Functional col2im is out of scope — the GEMMs themselves are
//! numerically exercised via the generic batched-GEMM paths.)

use crate::conv::Conv2dDesc;
use crate::googlenet::InceptionModule;
use ctb_matrix::GemmShape;

/// The data-gradient GEMM of a layer.
pub fn dgrad_shape(conv: &Conv2dDesc, batch: usize) -> GemmShape {
    GemmShape::new(
        conv.in_c * conv.kh * conv.kw,
        conv.out_h() * conv.out_w() * batch,
        conv.out_c,
    )
}

/// The weight-gradient GEMM of a layer.
pub fn wgrad_shape(conv: &Conv2dDesc, batch: usize) -> GemmShape {
    GemmShape::new(
        conv.out_c,
        conv.in_c * conv.kh * conv.kw,
        conv.out_h() * conv.out_w() * batch,
    )
}

/// The backward fan of an inception module: the data-gradient GEMMs of
/// the four branch heads (they accumulate into the same input gradient,
/// mirroring the forward stage-1 fan).
pub fn inception_dgrad_batch(m: &InceptionModule, batch: usize) -> Vec<GemmShape> {
    [&m.conv1x1, &m.reduce3x3, &m.reduce5x5, &m.pool_proj]
        .iter()
        .map(|c| dgrad_shape(c, batch))
        .collect()
}

/// The weight-gradient GEMMs of the four branch heads.
pub fn inception_wgrad_batch(m: &InceptionModule, batch: usize) -> Vec<GemmShape> {
    [&m.conv1x1, &m.reduce3x3, &m.reduce5x5, &m.pool_proj]
        .iter()
        .map(|c| wgrad_shape(c, batch))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::googlenet::googlenet_v1;

    #[test]
    fn gradient_shapes_transpose_the_forward_gemm() {
        let c = Conv2dDesc::new("t", 192, 28, 28, 16, 1, 1, 1, 0);
        let fwd = c.gemm_shape(2);
        let dg = dgrad_shape(&c, 2);
        let wg = wgrad_shape(&c, 2);
        // Forward: (out_c, pos, filt); dgrad: (filt, pos, out_c);
        // wgrad: (out_c, filt, pos).
        assert_eq!((dg.m, dg.n, dg.k), (fwd.k, fwd.n, fwd.m));
        assert_eq!((wg.m, wg.n, wg.k), (fwd.m, fwd.k, fwd.n));
        // FLOPs identical for all three (same tensor contraction).
        assert_eq!(fwd.flops(), dg.flops());
        assert_eq!(fwd.flops(), wg.flops());
    }

    #[test]
    fn backward_fans_have_four_gemms_and_stay_small() {
        let net = googlenet_v1();
        for m in &net.modules {
            let dg = inception_dgrad_batch(m, 4);
            let wg = inception_wgrad_batch(m, 4);
            assert_eq!(dg.len(), 4);
            assert_eq!(wg.len(), 4);
            // dgrad M equals the module's input channel count for 1x1
            // heads.
            assert!(dg.iter().all(|s| s.m == m.conv1x1.in_c));
            // wgrad N is tiny (the filter volume of a 1x1 conv).
            assert!(wg.iter().all(|s| s.n == m.conv1x1.in_c));
        }
    }

    #[test]
    fn backward_batches_run_through_the_framework() {
        use ctb_core::Framework;
        use ctb_gpu_specs::ArchSpec;
        let net = googlenet_v1();
        let fw = Framework::new(ArchSpec::volta_v100());
        let m = &net.modules[2]; // inception4a
        for shapes in [inception_dgrad_batch(m, 1), inception_wgrad_batch(m, 1)] {
            let report = fw.simulate_only(&shapes).expect("plannable");
            assert!(report.total_us > 0.0);
        }
    }
}

//! The GoogleNet-v1 (Inception-v1) topology: the paper's real-world
//! workload. 57 convolutions: 3 stem convolutions plus 9 inception
//! modules of 6 convolutions each.

use crate::conv::Conv2dDesc;
use ctb_matrix::GemmShape;

/// One inception module: four parallel branches reading the same input.
///
/// Stage 1 (the four *branch heads*, batched together by the paper):
/// the 1×1 branch, the 3×3 reduce, the 5×5 reduce and the pool
/// projection. Stage 2 (dependent on stage 1): the 3×3 and 5×5
/// convolutions over their reduces.
#[derive(Debug, Clone, PartialEq)]
pub struct InceptionModule {
    pub name: String,
    pub conv1x1: Conv2dDesc,
    pub reduce3x3: Conv2dDesc,
    pub conv3x3: Conv2dDesc,
    pub reduce5x5: Conv2dDesc,
    pub conv5x5: Conv2dDesc,
    pub pool_proj: Conv2dDesc,
}

impl InceptionModule {
    /// All six convolutions, in branch order.
    pub fn convs(&self) -> [&Conv2dDesc; 6] {
        [
            &self.conv1x1,
            &self.reduce3x3,
            &self.conv3x3,
            &self.reduce5x5,
            &self.conv5x5,
            &self.pool_proj,
        ]
    }

    /// The four stage-1 GEMMs the paper batches ("we use our proposed
    /// framework to batch the four GEMMs in each inception layer").
    pub fn stage1_shapes(&self, batch: usize) -> Vec<GemmShape> {
        vec![
            self.conv1x1.gemm_shape(batch),
            self.reduce3x3.gemm_shape(batch),
            self.reduce5x5.gemm_shape(batch),
            self.pool_proj.gemm_shape(batch),
        ]
    }

    /// The two stage-2 GEMMs (3×3 and 5×5 over the reduces).
    pub fn stage2_shapes(&self, batch: usize) -> Vec<GemmShape> {
        vec![self.conv3x3.gemm_shape(batch), self.conv5x5.gemm_shape(batch)]
    }

    /// Output channels of the concatenated branches.
    pub fn out_channels(&self) -> usize {
        self.conv1x1.out_c + self.conv3x3.out_c + self.conv5x5.out_c + self.pool_proj.out_c
    }
}

/// The full network.
#[derive(Debug, Clone, PartialEq)]
pub struct GoogleNet {
    /// conv1/7x7_s2, conv2/3x3_reduce, conv2/3x3.
    pub stem: Vec<Conv2dDesc>,
    /// inception3a … inception5b.
    pub modules: Vec<InceptionModule>,
}

impl GoogleNet {
    /// Every convolution in forward order (57 total).
    pub fn all_convs(&self) -> Vec<&Conv2dDesc> {
        let mut out: Vec<&Conv2dDesc> = self.stem.iter().collect();
        for m in &self.modules {
            out.extend(m.convs());
        }
        out
    }

    /// Total multiply–accumulates for one image.
    pub fn total_macs(&self) -> u64 {
        self.all_convs().iter().map(|c| c.macs()).sum()
    }
}

/// Build one inception module at spatial size `s × s` with the standard
/// branch layout: `c1`/`r3`→`c3`/`r5`→`c5`/`pp` output channels.
#[allow(clippy::too_many_arguments)]
pub fn inception(
    name: &str,
    s: usize,
    in_c: usize,
    c1: usize,
    r3: usize,
    c3: usize,
    r5: usize,
    c5: usize,
    pp: usize,
) -> InceptionModule {
    InceptionModule {
        name: name.into(),
        conv1x1: Conv2dDesc::new(&format!("{name}/1x1"), in_c, s, s, c1, 1, 1, 1, 0),
        reduce3x3: Conv2dDesc::new(&format!("{name}/3x3_reduce"), in_c, s, s, r3, 1, 1, 1, 0),
        conv3x3: Conv2dDesc::new(&format!("{name}/3x3"), r3, s, s, c3, 3, 3, 1, 1),
        reduce5x5: Conv2dDesc::new(&format!("{name}/5x5_reduce"), in_c, s, s, r5, 1, 1, 1, 0),
        conv5x5: Conv2dDesc::new(&format!("{name}/5x5"), r5, s, s, c5, 5, 5, 1, 2),
        pool_proj: Conv2dDesc::new(&format!("{name}/pool_proj"), in_c, s, s, pp, 1, 1, 1, 0),
    }
}

/// GoogleNet-v1 as published (Szegedy et al., "Going Deeper with
/// Convolutions", Table 1), for 224×224 inputs.
pub fn googlenet_v1() -> GoogleNet {
    let stem = vec![
        Conv2dDesc::new("conv1/7x7_s2", 3, 224, 224, 64, 7, 7, 2, 3),
        // After 3x3/2 max-pool: 56x56.
        Conv2dDesc::new("conv2/3x3_reduce", 64, 56, 56, 64, 1, 1, 1, 0),
        Conv2dDesc::new("conv2/3x3", 64, 56, 56, 192, 3, 3, 1, 1),
    ];
    let modules = vec![
        // After 3x3/2 max-pool: 28x28.
        inception("inception3a", 28, 192, 64, 96, 128, 16, 32, 32),
        inception("inception3b", 28, 256, 128, 128, 192, 32, 96, 64),
        // After max-pool: 14x14.
        inception("inception4a", 14, 480, 192, 96, 208, 16, 48, 64),
        inception("inception4b", 14, 512, 160, 112, 224, 24, 64, 64),
        inception("inception4c", 14, 512, 128, 128, 256, 24, 64, 64),
        inception("inception4d", 14, 512, 112, 144, 288, 32, 64, 64),
        inception("inception4e", 14, 528, 256, 160, 320, 32, 128, 128),
        // After max-pool: 7x7.
        inception("inception5a", 7, 832, 256, 160, 320, 32, 128, 128),
        inception("inception5b", 7, 832, 384, 192, 384, 48, 128, 128),
    ];
    GoogleNet { stem, modules }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_57_convolutions() {
        // §7.3: "GoogleNet contains 57 convolution operators".
        assert_eq!(googlenet_v1().all_convs().len(), 57);
    }

    #[test]
    fn channel_plumbing_is_consistent() {
        let net = googlenet_v1();
        // Module input channels must equal the previous module's output
        // channels (within a pooling stage).
        let outs: Vec<usize> = net.modules.iter().map(|m| m.out_channels()).collect();
        assert_eq!(outs, vec![256, 480, 512, 512, 512, 528, 832, 832, 1024]);
        for w in net.modules.windows(2) {
            assert_eq!(w[1].conv1x1.in_c, w[0].out_channels(), "{} -> {}", w[0].name, w[1].name);
        }
        // Reduce feeds conv within a module.
        for m in &net.modules {
            assert_eq!(m.conv3x3.in_c, m.reduce3x3.out_c);
            assert_eq!(m.conv5x5.in_c, m.reduce5x5.out_c);
        }
    }

    #[test]
    fn paper_motivating_shape_appears_in_3a() {
        let net = googlenet_v1();
        let shapes = net.modules[0].stage1_shapes(1);
        assert!(shapes.contains(&GemmShape::new(16, 784, 192)), "{shapes:?}");
    }

    #[test]
    fn paper_claim_small_matrices() {
        // §1: "In general, all of these matrices' M, N and K are less
        // than 1000, and even half of these matrices' M are less than
        // 100" (image batch 1). "In general": M is always < 1000, K is
        // < 1000 for the large majority (a few late 3x3/5x5 convs have
        // K up to 1728), and ~half the Ms are below 100.
        let net = googlenet_v1();
        let mut small_m = 0usize;
        let mut small_k = 0usize;
        let mut total = 0usize;
        for m in &net.modules {
            for c in m.convs() {
                let s = c.gemm_shape(1);
                total += 1;
                assert!(s.m < 1000, "{}: {s}", c.name);
                assert!(s.k < 2000, "{}: {s}", c.name);
                small_m += usize::from(s.m < 100);
                small_k += usize::from(s.k < 1000);
            }
        }
        assert!(small_m * 10 >= total * 4, "{small_m}/{total} small-M GEMMs");
        assert!(small_k * 10 >= total * 8, "{small_k}/{total} small-K GEMMs");
    }

    #[test]
    fn total_macs_are_about_1_5_g() {
        // GoogleNet-v1 is commonly quoted at ~1.5 GMACs per 224x224
        // image (convolutions only).
        let macs = googlenet_v1().total_macs();
        assert!(
            (1_200_000_000..1_800_000_000).contains(&macs),
            "total MACs {macs}"
        );
    }
}

//! A functional CNN forward engine on top of the batched-GEMM
//! framework.
//!
//! This is what a downstream user of the paper's framework actually
//! builds: every convolution is lowered to a GEMM (im2col), the
//! *parallel* convolutions of a fan (inception branch heads, the two
//! dependent 3×3/5×5 convolutions, SqueezeNet expands, …) are batched
//! through [`ctb_core::Framework`] into a single coordinated kernel, and
//! the non-GEMM layers (ReLU, pooling, concat) run on [`Tensor`]s.
//!
//! The whole pipeline is numerically verified against direct
//! convolution in the tests (on a scaled-down network, so the suite
//! stays fast).

use crate::conv::Conv2dDesc;
use crate::googlenet::{GoogleNet, InceptionModule};
use crate::squeezenet::FireModule;
use crate::im2col::im2col;
use crate::tensor::{concat_channels, global_avgpool, maxpool, Tensor};
use ctb_core::Framework;
use ctb_matrix::{GemmBatch, MatF32};

/// Random-initialised weights for a set of convolutions, keyed by layer
/// name. (Real deployments would load trained weights; the experiments
/// only need the dataflow.)
#[derive(Debug, Clone, Default)]
pub struct Weights {
    entries: std::collections::HashMap<String, MatF32>,
}

impl Weights {
    /// Deterministic random weights for every convolution of a network.
    pub fn random_for<'a>(convs: impl IntoIterator<Item = &'a Conv2dDesc>, seed: u64) -> Self {
        let mut entries = std::collections::HashMap::new();
        for (i, c) in convs.into_iter().enumerate() {
            entries.insert(
                c.name.clone(),
                MatF32::random(c.out_c, c.in_c * c.kh * c.kw, seed.wrapping_add(i as u64)),
            );
        }
        Weights { entries }
    }

    /// The `out_c × (in_c·kh·kw)` filter matrix of a layer.
    pub fn get(&self, conv: &Conv2dDesc) -> &MatF32 {
        self.entries
            .get(&conv.name)
            .unwrap_or_else(|| panic!("no weights for layer {}", conv.name))
    }
}

/// Forward executor bound to a device model.
pub struct ForwardEngine {
    framework: Framework,
    /// Simulated device-time accumulated across all batched GEMM calls,
    /// in µs.
    pub simulated_us: f64,
}

impl ForwardEngine {
    pub fn new(framework: Framework) -> Self {
        ForwardEngine { framework, simulated_us: 0.0 }
    }

    /// Run a *fan* of convolutions — each over its own input tensor —
    /// as one coordinated batched-GEMM kernel. Returns the (pre
    /// -activation) output tensors in order.
    pub fn conv_fan(
        &mut self,
        convs: &[&Conv2dDesc],
        weights: &Weights,
        inputs: &[&Tensor],
    ) -> Vec<Tensor> {
        assert_eq!(convs.len(), inputs.len(), "one input per convolution");
        assert!(!convs.is_empty(), "empty fan");
        let mut shapes = Vec::with_capacity(convs.len());
        let mut a = Vec::with_capacity(convs.len());
        let mut b = Vec::with_capacity(convs.len());
        let mut c = Vec::with_capacity(convs.len());
        for (conv, input) in convs.iter().zip(inputs) {
            assert_eq!(input.c, conv.in_c, "{}: channel mismatch", conv.name);
            assert_eq!((input.h, input.w), (conv.in_h, conv.in_w), "{}: size", conv.name);
            let shape = conv.gemm_shape(1);
            let cols = if conv.kh == 1 && conv.kw == 1 && conv.stride == 1 && conv.pad == 0 {
                // 1×1 convolution: the feature map already is the im2col
                // matrix.
                input.data.clone()
            } else {
                im2col(conv, std::slice::from_ref(&input.data))
            };
            debug_assert_eq!((cols.rows(), cols.cols()), (shape.k, shape.n));
            shapes.push(shape);
            a.push(weights.get(conv).clone());
            b.push(cols);
            c.push(MatF32::zeros(shape.m, shape.n));
        }
        let batch = GemmBatch { shapes: shapes.clone(), a, b, c, alpha: 1.0, beta: 0.0 };
        let outcome = self.framework.run(&batch).expect("fan is plannable");
        self.simulated_us += outcome.report.total_us;
        outcome
            .results
            .into_iter()
            .zip(convs)
            .map(|(m, conv)| Tensor::from_mat(conv.out_c, conv.out_h(), conv.out_w(), m))
            .collect()
    }

    /// Run a single convolution (a fan of one).
    pub fn conv(&mut self, conv: &Conv2dDesc, weights: &Weights, input: &Tensor) -> Tensor {
        self.conv_fan(&[conv], weights, &[input]).pop().expect("one output")
    }

    /// Execute one inception module: stage-1 fan (the four branch
    /// heads, with the pool branch fed by a 3×3/1 max pool), ReLU,
    /// stage-2 fan (3×3 and 5×5), ReLU, channel concat.
    pub fn inception(
        &mut self,
        module: &InceptionModule,
        weights: &Weights,
        input: &Tensor,
    ) -> Tensor {
        let pooled = maxpool(input, 3, 1, 1, false);
        let stage1 = self.conv_fan(
            &[&module.conv1x1, &module.reduce3x3, &module.reduce5x5, &module.pool_proj],
            weights,
            &[input, input, input, &pooled],
        );
        let mut stage1 = stage1.into_iter().map(Tensor::relu).collect::<Vec<_>>();
        let pool_proj = stage1.pop().expect("pool branch");
        let reduce5 = stage1.pop().expect("5x5 reduce");
        let reduce3 = stage1.pop().expect("3x3 reduce");
        let branch1 = stage1.pop().expect("1x1 branch");

        let stage2 = self.conv_fan(
            &[&module.conv3x3, &module.conv5x5],
            weights,
            &[&reduce3, &reduce5],
        );
        let mut stage2 = stage2.into_iter().map(Tensor::relu);
        let branch3 = stage2.next().expect("3x3 branch");
        let branch5 = stage2.next().expect("5x5 branch");

        concat_channels(&[branch1, branch3, branch5, pool_proj])
    }

    /// Execute one SqueezeNet fire module: squeeze 1×1, ReLU, the two
    /// parallel expand convolutions as one batched kernel, ReLU, concat.
    pub fn fire(&mut self, module: &FireModule, weights: &Weights, input: &Tensor) -> Tensor {
        let squeezed = self.conv(&module.squeeze1x1, weights, input).relu();
        let expanded = self.conv_fan(
            &[&module.expand1x1, &module.expand3x3],
            weights,
            &[&squeezed, &squeezed],
        );
        let mut expanded = expanded.into_iter().map(Tensor::relu);
        let e1 = expanded.next().expect("expand 1x1");
        let e3 = expanded.next().expect("expand 3x3");
        concat_channels(&[e1, e3])
    }

    /// Full GoogleNet-style forward pass: stem (conv, pool, reduce,
    /// conv, pool), the inception modules with the network's pool
    /// boundaries, global average pooling. Returns the `C × 1 × 1`
    /// feature vector.
    pub fn googlenet_forward(
        &mut self,
        net: &GoogleNet,
        weights: &Weights,
        image: &Tensor,
    ) -> Tensor {
        let mut x = self.conv(&net.stem[0], weights, image).relu();
        x = maxpool(&x, 3, 2, 0, true);
        x = self.conv(&net.stem[1], weights, &x).relu();
        x = self.conv(&net.stem[2], weights, &x).relu();
        x = maxpool(&x, 3, 2, 0, true);
        for m in &net.modules {
            // A pool boundary is where the module expects a smaller
            // input than the current feature map provides.
            if m.conv1x1.in_h < x.h {
                x = maxpool(&x, 3, 2, 0, true);
            }
            assert_eq!(
                (m.conv1x1.in_c, m.conv1x1.in_h),
                (x.c, x.h),
                "{}: plumbing mismatch",
                m.name
            );
            x = self.inception(m, weights, &x);
        }
        global_avgpool(&x)
    }

    /// Borrow the underlying framework.
    pub fn framework(&self) -> &Framework {
        &self.framework
    }
}

/// Reference forward pass for one fire module using direct convolution
/// only (the oracle for [`ForwardEngine::fire`]).
pub fn fire_direct(module: &FireModule, weights: &Weights, input: &Tensor) -> Tensor {
    use crate::im2col::conv_direct;
    let run = |conv: &Conv2dDesc, x: &Tensor| -> Tensor {
        let out = conv_direct(conv, weights.get(conv), std::slice::from_ref(&x.data));
        Tensor::from_mat(conv.out_c, conv.out_h(), conv.out_w(), out).relu()
    };
    let squeezed = run(&module.squeeze1x1, input);
    concat_channels(&[run(&module.expand1x1, &squeezed), run(&module.expand3x3, &squeezed)])
}

/// Reference forward pass for one inception module using direct
/// convolution only (the oracle for [`ForwardEngine::inception`]).
pub fn inception_direct(module: &InceptionModule, weights: &Weights, input: &Tensor) -> Tensor {
    use crate::im2col::conv_direct;
    let run = |conv: &Conv2dDesc, x: &Tensor| -> Tensor {
        let out = conv_direct(conv, weights.get(conv), std::slice::from_ref(&x.data));
        Tensor::from_mat(conv.out_c, conv.out_h(), conv.out_w(), out).relu()
    };
    let branch1 = run(&module.conv1x1, input);
    let branch3 = run(&module.conv3x3, &run(&module.reduce3x3, input));
    let branch5 = run(&module.conv5x5, &run(&module.reduce5x5, input));
    let pooled = maxpool(input, 3, 1, 1, false);
    let pool_proj = run(&module.pool_proj, &pooled);
    concat_channels(&[branch1, branch3, branch5, pool_proj])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::googlenet::inception;
    use ctb_gpu_specs::ArchSpec;
    use ctb_matrix::max_abs_diff;

    fn engine() -> ForwardEngine {
        ForwardEngine::new(Framework::new(ArchSpec::volta_v100()))
    }

    /// A shrunken GoogleNet: same topology rules, tiny dimensions, so
    /// the functional comparison stays fast.
    fn mini_net() -> GoogleNet {
        GoogleNet {
            stem: vec![
                Conv2dDesc::new("conv1", 3, 32, 32, 8, 7, 7, 2, 3),
                Conv2dDesc::new("conv2r", 8, 8, 8, 8, 1, 1, 1, 0),
                Conv2dDesc::new("conv2", 8, 8, 8, 12, 3, 3, 1, 1),
            ],
            modules: vec![
                inception("mini3a", 4, 12, 4, 3, 6, 2, 4, 2),
                inception("mini3b", 4, 16, 6, 4, 8, 2, 4, 2),
                // After a pool boundary: spatial 2.
                inception("mini4a", 2, 20, 8, 4, 8, 2, 4, 4),
            ],
        }
    }

    #[test]
    fn fan_matches_direct_convolution() {
        let m = inception("t", 6, 5, 4, 3, 6, 2, 4, 2);
        let weights = Weights::random_for(m.convs(), 11);
        let input = Tensor::random(5, 6, 6, 12);
        let mut eng = engine();
        let batched = eng.inception(&m, &weights, &input);
        let direct = inception_direct(&m, &weights, &input);
        assert_eq!((batched.c, batched.h, batched.w), (direct.c, direct.h, direct.w));
        assert!(
            max_abs_diff(&batched.data, &direct.data) < 1e-3,
            "batched inception deviates from direct convolution"
        );
        assert!(eng.simulated_us > 0.0, "device time accounted");
    }

    #[test]
    fn fire_module_matches_direct_convolution() {
        use crate::squeezenet::FireModule;
        let m = FireModule {
            name: "t".into(),
            squeeze1x1: Conv2dDesc::new("t/squeeze1x1", 6, 6, 6, 3, 1, 1, 1, 0),
            expand1x1: Conv2dDesc::new("t/expand1x1", 3, 6, 6, 4, 1, 1, 1, 0),
            expand3x3: Conv2dDesc::new("t/expand3x3", 3, 6, 6, 4, 3, 3, 1, 1),
        };
        let weights = Weights::random_for(m.convs(), 7);
        let input = Tensor::random(6, 6, 6, 8);
        let batched = engine().fire(&m, &weights, &input);
        let direct = fire_direct(&m, &weights, &input);
        assert_eq!((batched.c, batched.h, batched.w), (8, 6, 6));
        assert!(max_abs_diff(&batched.data, &direct.data) < 1e-3);
    }

    #[test]
    fn mini_googlenet_forward_runs_end_to_end() {
        let net = mini_net();
        let weights = Weights::random_for(net.all_convs(), 5);
        let image = Tensor::random(3, 32, 32, 1);
        let mut eng = engine();
        let out = eng.googlenet_forward(&net, &weights, &image);
        // Output is the channel vector of the last module.
        assert_eq!((out.c, out.h, out.w), (net.modules.last().unwrap().out_channels(), 1, 1));
        assert!(out.data.as_slice().iter().all(|v| v.is_finite()));
        assert!(eng.simulated_us > 0.0);
    }

    #[test]
    fn forward_is_deterministic() {
        let net = mini_net();
        let weights = Weights::random_for(net.all_convs(), 5);
        let image = Tensor::random(3, 32, 32, 9);
        let a = engine().googlenet_forward(&net, &weights, &image);
        let b = engine().googlenet_forward(&net, &weights, &image);
        assert_eq!(a.data, b.data);
    }

    #[test]
    fn one_by_one_convs_skip_im2col() {
        // A 1x1 conv through the engine equals the plain GEMM of
        // weights x feature map.
        let conv = Conv2dDesc::new("p", 6, 4, 5, 3, 1, 1, 1, 0);
        let weights = Weights::random_for([&conv], 2);
        let input = Tensor::random(6, 4, 5, 3);
        let mut eng = engine();
        let out = eng.conv(&conv, &weights, &input);
        let mut expect = MatF32::zeros(3, 20);
        ctb_matrix::gemm_ref(1.0, weights.get(&conv), &input.data, 0.0, &mut expect);
        assert!(max_abs_diff(&out.data, &expect) < 1e-4);
    }

    #[test]
    #[should_panic(expected = "channel mismatch")]
    fn fan_validates_input_channels() {
        let conv = Conv2dDesc::new("x", 4, 4, 4, 2, 1, 1, 1, 0);
        let weights = Weights::random_for([&conv], 1);
        let wrong = Tensor::random(3, 4, 4, 1);
        engine().conv(&conv, &weights, &wrong);
    }
}

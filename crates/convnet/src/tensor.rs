//! Minimal CHW feature-map tensors and the non-GEMM layers a CNN
//! forward pass needs (ReLU, max/average pooling, channel concat).
//!
//! These are the glue around the batched-GEMM framework in
//! [`crate::forward`]; everything here is verified against naive
//! definitions.

use ctb_matrix::MatF32;

/// A `C × H × W` feature map, stored as a `C × (H·W)` row-major matrix —
/// exactly the `B` operand layout the im2col GEMM consumes for 1×1
/// convolutions.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    pub c: usize,
    pub h: usize,
    pub w: usize,
    pub data: MatF32,
}

impl Tensor {
    /// Zero-filled tensor.
    pub fn zeros(c: usize, h: usize, w: usize) -> Self {
        Tensor { c, h, w, data: MatF32::zeros(c, h * w) }
    }

    /// Deterministic random tensor in `[-1, 1)`.
    pub fn random(c: usize, h: usize, w: usize, seed: u64) -> Self {
        Tensor { c, h, w, data: MatF32::random(c, h * w, seed) }
    }

    /// Wrap an existing `C × (H·W)` matrix.
    pub fn from_mat(c: usize, h: usize, w: usize, data: MatF32) -> Self {
        assert_eq!(data.rows(), c, "channel count");
        assert_eq!(data.cols(), h * w, "spatial size");
        Tensor { c, h, w, data }
    }

    #[inline]
    pub fn get(&self, c: usize, y: usize, x: usize) -> f32 {
        self.data.get(c, y * self.w + x)
    }

    #[inline]
    pub fn set(&mut self, c: usize, y: usize, x: usize, v: f32) {
        self.data.set(c, y * self.w + x, v);
    }

    /// In-place ReLU.
    pub fn relu(mut self) -> Self {
        for v in self.data.as_mut_slice() {
            *v = v.max(0.0);
        }
        self
    }
}

/// Output spatial size of a pooling window with optional ceil mode.
fn pool_out(input: usize, k: usize, stride: usize, ceil_mode: bool) -> usize {
    let num = input.saturating_sub(k);
    if ceil_mode {
        num.div_ceil(stride) + 1
    } else {
        num / stride + 1
    }
}

/// Max pooling with a `k × k` window, `stride`, symmetric `pad`, and
/// optional ceil mode (GoogleNet's 3×3/2 pools use ceil mode; its
/// inception pool branch uses 3×3 stride 1 pad 1). Padding contributes
/// `-inf` (never wins).
pub fn maxpool(t: &Tensor, k: usize, stride: usize, pad: usize, ceil_mode: bool) -> Tensor {
    let oh = pool_out(t.h + 2 * pad, k, stride, ceil_mode);
    let ow = pool_out(t.w + 2 * pad, k, stride, ceil_mode);
    let mut out = Tensor::zeros(t.c, oh, ow);
    for c in 0..t.c {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut m = f32::NEG_INFINITY;
                for ky in 0..k {
                    let iy = (oy * stride + ky) as isize - pad as isize;
                    if iy < 0 || iy as usize >= t.h {
                        continue;
                    }
                    for kx in 0..k {
                        let ix = (ox * stride + kx) as isize - pad as isize;
                        if ix < 0 || ix as usize >= t.w {
                            continue;
                        }
                        m = m.max(t.get(c, iy as usize, ix as usize));
                    }
                }
                // A window that is entirely padding (possible only in
                // extreme ceil-mode corners) yields 0.
                out.set(c, oy, ox, if m.is_finite() { m } else { 0.0 });
            }
        }
    }
    out
}

/// Global average pooling: `C × H × W` → `C × 1 × 1`.
pub fn global_avgpool(t: &Tensor) -> Tensor {
    let mut out = Tensor::zeros(t.c, 1, 1);
    let n = (t.h * t.w) as f32;
    for c in 0..t.c {
        let sum: f32 = t.data.row(c).iter().sum();
        out.set(c, 0, 0, sum / n);
    }
    out
}

/// Concatenate along the channel axis; all inputs must share H × W.
pub fn concat_channels(parts: &[Tensor]) -> Tensor {
    assert!(!parts.is_empty(), "nothing to concatenate");
    let (h, w) = (parts[0].h, parts[0].w);
    assert!(parts.iter().all(|p| p.h == h && p.w == w), "spatial mismatch");
    let c_total: usize = parts.iter().map(|p| p.c).sum();
    let mut data = Vec::with_capacity(c_total * h * w);
    for p in parts {
        data.extend_from_slice(p.data.as_slice());
    }
    Tensor::from_mat(c_total, h, w, MatF32::from_vec(c_total, h * w, data))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_round_trips() {
        let mut t = Tensor::zeros(2, 3, 4);
        t.set(1, 2, 3, 7.5);
        assert_eq!(t.get(1, 2, 3), 7.5);
        assert_eq!(t.data.get(1, 2 * 4 + 3), 7.5);
    }

    #[test]
    fn relu_clamps_negatives() {
        let t = Tensor::from_mat(1, 1, 4, MatF32::from_vec(1, 4, vec![-1.0, 0.0, 2.0, -0.5]));
        assert_eq!(t.relu().data.as_slice(), &[0.0, 0.0, 2.0, 0.0]);
    }

    #[test]
    fn maxpool_2x2_stride2() {
        let t = Tensor::from_mat(
            1,
            2,
            4,
            MatF32::from_vec(1, 8, vec![1.0, 2.0, 5.0, 0.0, 3.0, 4.0, 1.0, 6.0]),
        );
        let p = maxpool(&t, 2, 2, 0, false);
        assert_eq!((p.h, p.w), (1, 2));
        assert_eq!(p.data.as_slice(), &[4.0, 6.0]);
    }

    #[test]
    fn googlenet_pool_chain_dimensions() {
        // ceil-mode 3x3/2 pools: 112 -> 56 -> (conv) -> 28 -> 14 -> 7.
        for (i, o) in [(112usize, 56usize), (56, 28), (28, 14), (14, 7)] {
            let t = Tensor::random(1, i, i, 3);
            let p = maxpool(&t, 3, 2, 0, true);
            assert_eq!((p.h, p.w), (o, o), "{i} -> {o}");
        }
    }

    #[test]
    fn stride1_pad1_pool_preserves_size() {
        let t = Tensor::random(3, 5, 7, 9);
        let p = maxpool(&t, 3, 1, 1, false);
        assert_eq!((p.c, p.h, p.w), (3, 5, 7));
        // Every output dominates the corresponding input pixel.
        for c in 0..3 {
            for y in 0..5 {
                for x in 0..7 {
                    assert!(p.get(c, y, x) >= t.get(c, y, x));
                }
            }
        }
    }

    #[test]
    fn global_avgpool_averages() {
        let t = Tensor::from_mat(2, 1, 2, MatF32::from_vec(2, 2, vec![1.0, 3.0, -2.0, 2.0]));
        let g = global_avgpool(&t);
        assert_eq!(g.data.as_slice(), &[2.0, 0.0]);
    }

    #[test]
    fn concat_stacks_channels() {
        let a = Tensor::random(2, 3, 3, 1);
        let b = Tensor::random(1, 3, 3, 2);
        let c = concat_channels(&[a.clone(), b.clone()]);
        assert_eq!(c.c, 3);
        assert_eq!(c.data.row(0), a.data.row(0));
        assert_eq!(c.data.row(2), b.data.row(0));
    }

    #[test]
    #[should_panic(expected = "spatial mismatch")]
    fn concat_rejects_mismatched_shapes() {
        let a = Tensor::zeros(1, 2, 2);
        let b = Tensor::zeros(1, 3, 3);
        let _ = concat_channels(&[a, b]);
    }
}

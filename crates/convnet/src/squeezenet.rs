//! SqueezeNet v1.0 — a second fan-structure network (§7.3: "The
//! fan-structure is popular in other state-of-the-art CNN models such as
//! Squeeze-Net and ResNet").
//!
//! Each *fire module* squeezes with a 1×1 convolution and then expands
//! through two parallel branches (1×1 and 3×3) whose GEMMs can be
//! batched exactly like the inception branch heads.

use crate::conv::Conv2dDesc;
use ctb_matrix::GemmShape;

/// One fire module: squeeze 1×1 → {expand 1×1 ∥ expand 3×3}.
#[derive(Debug, Clone, PartialEq)]
pub struct FireModule {
    pub name: String,
    pub squeeze1x1: Conv2dDesc,
    pub expand1x1: Conv2dDesc,
    pub expand3x3: Conv2dDesc,
}

impl FireModule {
    /// The two parallel expand GEMMs (the batchable fan).
    pub fn expand_shapes(&self, batch: usize) -> Vec<GemmShape> {
        vec![self.expand1x1.gemm_shape(batch), self.expand3x3.gemm_shape(batch)]
    }

    /// All three convolutions in dependency order.
    pub fn convs(&self) -> [&Conv2dDesc; 3] {
        [&self.squeeze1x1, &self.expand1x1, &self.expand3x3]
    }

    /// Concatenated output channels of the expand branches.
    pub fn out_channels(&self) -> usize {
        self.expand1x1.out_c + self.expand3x3.out_c
    }
}

/// The network: stem conv, eight fire modules, classifier conv.
#[derive(Debug, Clone, PartialEq)]
pub struct SqueezeNet {
    pub conv1: Conv2dDesc,
    pub fires: Vec<FireModule>,
    pub conv10: Conv2dDesc,
}

impl SqueezeNet {
    /// Every convolution in forward order (2 + 3 per fire = 26 total).
    pub fn all_convs(&self) -> Vec<&Conv2dDesc> {
        let mut v = vec![&self.conv1];
        for f in &self.fires {
            v.extend(f.convs());
        }
        v.push(&self.conv10);
        v
    }
}

fn fire(name: &str, s: usize, in_c: usize, sq: usize, e1: usize, e3: usize) -> FireModule {
    FireModule {
        name: name.into(),
        squeeze1x1: Conv2dDesc::new(&format!("{name}/squeeze1x1"), in_c, s, s, sq, 1, 1, 1, 0),
        expand1x1: Conv2dDesc::new(&format!("{name}/expand1x1"), sq, s, s, e1, 1, 1, 1, 0),
        expand3x3: Conv2dDesc::new(&format!("{name}/expand3x3"), sq, s, s, e3, 3, 3, 1, 1),
    }
}

/// SqueezeNet v1.0 (Iandola et al. 2016) for 224×224 inputs: spatial
/// sizes 54 (fire2–4), 27 (fire5–8), 13 (fire9, conv10), as in the
/// reference implementation (7×7/2 stem, ceil-mode 3×3/2 max-pools).
pub fn squeezenet_v1() -> SqueezeNet {
    SqueezeNet {
        conv1: Conv2dDesc::new("conv1", 3, 224, 224, 96, 7, 7, 2, 0),
        fires: vec![
            fire("fire2", 54, 96, 16, 64, 64),
            fire("fire3", 54, 128, 16, 64, 64),
            fire("fire4", 54, 128, 32, 128, 128),
            fire("fire5", 27, 256, 32, 128, 128),
            fire("fire6", 27, 256, 48, 192, 192),
            fire("fire7", 27, 384, 48, 192, 192),
            fire("fire8", 27, 384, 64, 256, 256),
            fire("fire9", 13, 512, 64, 256, 256),
        ],
        conv10: Conv2dDesc::new("conv10", 512, 13, 13, 1000, 1, 1, 1, 0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_26_convolutions() {
        assert_eq!(squeezenet_v1().all_convs().len(), 26);
    }

    #[test]
    fn fire_channel_plumbing() {
        let net = squeezenet_v1();
        // Expand branches read the squeeze output; next fire reads the
        // concatenated expands (across pool boundaries the channel count
        // carries over).
        for f in &net.fires {
            assert_eq!(f.expand1x1.in_c, f.squeeze1x1.out_c, "{}", f.name);
            assert_eq!(f.expand3x3.in_c, f.squeeze1x1.out_c, "{}", f.name);
        }
        let outs: Vec<usize> = net.fires.iter().map(FireModule::out_channels).collect();
        assert_eq!(outs, vec![128, 128, 256, 256, 384, 384, 512, 512]);
        for w in net.fires.windows(2) {
            assert_eq!(w[1].squeeze1x1.in_c, w[0].out_channels());
        }
        assert_eq!(net.conv10.in_c, net.fires.last().unwrap().out_channels());
    }

    #[test]
    fn expand_shapes_are_small_gemms() {
        // The fan GEMMs are squarely in the paper's small-matrix regime.
        let net = squeezenet_v1();
        for f in &net.fires {
            for s in f.expand_shapes(1) {
                assert!(s.m <= 256 && s.k < 1000, "{}: {s}", f.name);
            }
        }
        // fire2/expand1x1 at batch 1: 64 x (54*54) x 16.
        assert_eq!(net.fires[0].expand_shapes(1)[0], GemmShape::new(64, 54 * 54, 16));
    }
}

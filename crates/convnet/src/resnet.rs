//! ResNet bottleneck blocks — the third fan-structure workload the paper
//! names (§7.3).
//!
//! A bottleneck block runs 1×1 → 3×3 → 1×1 on the main path; when the
//! block changes channel count or stride, a parallel 1×1 *projection*
//! convolution transforms the shortcut. The projection and the main
//! path's first 1×1 read the same input, so their GEMMs batch exactly
//! like inception branch heads.

use crate::conv::Conv2dDesc;
use ctb_matrix::GemmShape;

/// One bottleneck residual block.
#[derive(Debug, Clone, PartialEq)]
pub struct BottleneckBlock {
    pub name: String,
    pub reduce1x1: Conv2dDesc,
    pub conv3x3: Conv2dDesc,
    pub expand1x1: Conv2dDesc,
    /// Projection shortcut, present when shape changes.
    pub projection: Option<Conv2dDesc>,
}

impl BottleneckBlock {
    /// Build a block at input spatial size `s`, `in_c` input channels,
    /// `mid` bottleneck width, `out_c` output channels and `stride`.
    pub fn new(name: &str, s: usize, in_c: usize, mid: usize, out_c: usize, stride: usize) -> Self {
        let so = s.div_ceil(stride);
        let projection = if in_c != out_c || stride != 1 {
            Some(Conv2dDesc::new(&format!("{name}/proj"), in_c, s, s, out_c, 1, 1, stride, 0))
        } else {
            None
        };
        BottleneckBlock {
            name: name.into(),
            reduce1x1: Conv2dDesc::new(&format!("{name}/1x1a"), in_c, s, s, mid, 1, 1, stride, 0),
            conv3x3: Conv2dDesc::new(&format!("{name}/3x3"), mid, so, so, mid, 3, 3, 1, 1),
            expand1x1: Conv2dDesc::new(&format!("{name}/1x1b"), mid, so, so, out_c, 1, 1, 1, 0),
            projection,
        }
    }

    /// Stage-1 fan: the GEMMs that read the block input in parallel
    /// (main-path reduce + projection when present).
    pub fn fan_shapes(&self, batch: usize) -> Vec<GemmShape> {
        let mut v = vec![self.reduce1x1.gemm_shape(batch)];
        if let Some(p) = &self.projection {
            v.push(p.gemm_shape(batch));
        }
        v
    }

    /// All convolutions in dependency order.
    pub fn convs(&self) -> Vec<&Conv2dDesc> {
        let mut v = vec![&self.reduce1x1, &self.conv3x3, &self.expand1x1];
        if let Some(p) = &self.projection {
            v.push(p);
        }
        v
    }
}

/// The four bottleneck stages of ResNet-50 (blocks per stage 3, 4, 6,
/// 3), for 224×224 inputs — 53 convolutions in total (plus the 7×7
/// stem, which has no fan).
pub fn resnet50_blocks() -> Vec<BottleneckBlock> {
    let mut blocks = Vec::new();
    let stages: [(usize, usize, usize, usize, usize); 4] = [
        // (spatial in, in_c, mid, out_c, count)
        (56, 64, 64, 256, 3),
        (56, 256, 128, 512, 4),
        (28, 512, 256, 1024, 6),
        (14, 1024, 512, 2048, 3),
    ];
    for (stage, (s_in, in_c, mid, out_c, count)) in stages.into_iter().enumerate() {
        for i in 0..count {
            let first = i == 0;
            // Stage 2+ downsample in their first block.
            let stride = if first && stage > 0 { 2 } else { 1 };
            let (s, c_in) = if first { (s_in, in_c) } else { (s_in.div_ceil(stride), out_c) };
            let s = if !first && stage > 0 { s_in / 2 } else { s };
            blocks.push(BottleneckBlock::new(
                &format!("res{}_{}", stage + 2, i),
                s,
                c_in,
                mid,
                out_c,
                stride,
            ));
        }
    }
    blocks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resnet50_block_count() {
        let blocks = resnet50_blocks();
        assert_eq!(blocks.len(), 3 + 4 + 6 + 3);
        // 3 convs per block + 4 projection shortcuts.
        let convs: usize = blocks.iter().map(|b| b.convs().len()).sum();
        assert_eq!(convs, 16 * 3 + 4);
    }

    #[test]
    fn first_block_of_each_stage_has_a_projection_fan() {
        let blocks = resnet50_blocks();
        for b in &blocks {
            let is_first = b.name.ends_with("_0");
            assert_eq!(b.projection.is_some(), is_first, "{}", b.name);
            assert_eq!(b.fan_shapes(1).len(), if is_first { 2 } else { 1 });
        }
    }

    #[test]
    fn channel_plumbing_within_a_block() {
        for b in resnet50_blocks() {
            assert_eq!(b.conv3x3.in_c, b.reduce1x1.out_c, "{}", b.name);
            assert_eq!(b.expand1x1.in_c, b.conv3x3.out_c, "{}", b.name);
            if let Some(p) = &b.projection {
                assert_eq!(p.out_c, b.expand1x1.out_c, "{}", b.name);
                // Projection output spatial size must match the main
                // path's.
                assert_eq!(p.out_h(), b.expand1x1.out_h(), "{}", b.name);
            }
        }
    }

    #[test]
    fn fan_gemms_are_batchable_sizes() {
        // res3_0's fan at batch 1: (128, 784, 256) and (512, 784, 256).
        let blocks = resnet50_blocks();
        let res3_0 = blocks.iter().find(|b| b.name == "res3_0").unwrap();
        let fan = res3_0.fan_shapes(1);
        assert_eq!(fan[0], GemmShape::new(128, 28 * 28, 256));
        assert_eq!(fan[1], GemmShape::new(512, 28 * 28, 256));
    }
}

//! Architecture-dependent tuning thresholds used by the two engines.
//!
//! The paper fixes two empirical constants on V100 (§7): the **TLP
//! threshold** (65536) used by the tiling-selection algorithm of §4.2.3,
//! and **θ = 256**, the per-block accumulated-K target used by both
//! batching heuristics of §5. For other devices the paper prescribes an
//! offline calibration ("choose the inflection point with large
//! performance degradation"); we expose the V100-pinned values here and
//! implement the calibration procedure itself in `ctb-bench` (it needs
//! the simulator, which sits above this crate).

use crate::arch::ArchSpec;
use serde::{Deserialize, Serialize};

/// The two architecture-dependent constants of the framework.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Thresholds {
    /// Minimum total thread-level parallelism the tiling engine must
    /// preserve before it trades TLP for ILP (Eq 1 vs §4.2.3 step 3).
    pub tlp_threshold: u64,
    /// Target accumulated K per thread block for the batching engine
    /// (θ in §5).
    pub theta: u32,
}

impl Thresholds {
    /// The paper's V100 values: TLP threshold 65536, θ = 256.
    pub fn paper_v100() -> Self {
        Thresholds { tlp_threshold: 65_536, theta: 256 }
    }

    /// Default thresholds for an arbitrary device.
    ///
    /// On V100 the paper's 65536 equals 40 % of the device's resident
    /// -thread capacity (80 SMs × 2048 threads); we scale that ratio to
    /// other devices, which the calibration experiment
    /// (`reproduce calibrate`) confirms lands at the knee of the
    /// performance-vs-TLP curve on every preset. θ tracks the number of
    /// main-loop iterations needed to amortise the pipeline-fill latency
    /// and is kept at the paper's 256 for all presets.
    pub fn for_arch(arch: &ArchSpec) -> Self {
        if arch.name == "Tesla V100" {
            return Thresholds::paper_v100();
        }
        let capacity = arch.max_resident_threads() as f64;
        // Round to a power of two like the paper's V100 value.
        let raw = capacity * 0.4;
        let tlp = 1u64 << (raw.log2().round() as u32);
        Thresholds { tlp_threshold: tlp, theta: 256 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v100_matches_paper() {
        let t = Thresholds::for_arch(&ArchSpec::volta_v100());
        assert_eq!(t.tlp_threshold, 65_536);
        assert_eq!(t.theta, 256);
    }

    #[test]
    fn scaled_thresholds_are_powers_of_two_and_below_capacity() {
        for arch in ArchSpec::all_presets() {
            let t = Thresholds::for_arch(&arch);
            assert!(t.tlp_threshold.is_power_of_two());
            assert!(t.tlp_threshold <= arch.max_resident_threads());
            assert!(t.tlp_threshold >= arch.max_resident_threads() / 8);
        }
    }

    #[test]
    fn smaller_devices_get_smaller_thresholds() {
        let v100 = Thresholds::for_arch(&ArchSpec::volta_v100());
        let m60 = Thresholds::for_arch(&ArchSpec::maxwell_m60());
        assert!(m60.tlp_threshold < v100.tlp_threshold);
    }
}

//! GPU architecture descriptions and the occupancy model used by the
//! `ctb-gemm` timing simulator.
//!
//! The paper evaluates on six NVIDIA GPUs (Volta V100, Pascal P100 /
//! GTX 1080 Ti / Titan Xp, Maxwell Tesla M60 / GTX Titan X). Because this
//! reproduction cannot author CUDA kernels, each device is described by
//! the architectural parameters that drive the paper's performance
//! arguments: SM count, FP32 lane count, clock, register file, shared
//! memory, residency limits, DRAM bandwidth, global-memory latency and
//! kernel-launch overhead. The [`occupancy`] module computes how many
//! thread blocks of a given resource footprint can be resident on one SM,
//! exactly as the CUDA occupancy calculator does.

pub mod arch;
pub mod occupancy;
pub mod thresholds;

pub use arch::{ArchFamily, ArchSpec, ChipletTopology};
pub use occupancy::{BlockFootprint, Occupancy};
pub use thresholds::Thresholds;

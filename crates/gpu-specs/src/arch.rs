//! Architecture descriptions for the GPUs evaluated in the paper.
//!
//! Every parameter is taken from the public NVIDIA datasheets /
//! whitepapers for the respective device. The timing simulator in
//! `ctb-sim` consumes these numbers; nothing in the framework itself is
//! hard-coded to a device, which is how the paper's §7.4 portability
//! experiment (Fig 11) is reproduced.

use serde::{Deserialize, Serialize};

/// GPU micro-architecture generation. Maxwell/Pascal/Volta are the
/// paper's platforms; Turing and Ampere are post-paper extension
/// presets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ArchFamily {
    Maxwell,
    Pascal,
    Volta,
    Turing,
    Ampere,
}

impl std::fmt::Display for ArchFamily {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArchFamily::Maxwell => write!(f, "Maxwell"),
            ArchFamily::Pascal => write!(f, "Pascal"),
            ArchFamily::Volta => write!(f, "Volta"),
            ArchFamily::Turing => write!(f, "Turing"),
            ArchFamily::Ampere => write!(f, "Ampere"),
        }
    }
}

/// Parameters of one GPU device, as consumed by the timing simulator.
///
/// Latency/overhead values are representative micro-benchmark figures for
/// the generation (e.g. ~400–600 cycle DRAM latency, ~5 µs kernel-launch
/// overhead); the paper's qualitative results depend on their order of
/// magnitude, not their exact value — see `DESIGN.md` §3.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArchSpec {
    /// Human-readable device name, e.g. `"Tesla V100"`.
    pub name: &'static str,
    /// Micro-architecture generation.
    pub family: ArchFamily,
    /// Number of streaming multiprocessors.
    pub sms: u32,
    /// FP32 FMA lanes per SM (one FMA per lane per cycle).
    pub fp32_lanes_per_sm: u32,
    /// Core clock in GHz used to convert cycles to wall time.
    pub clock_ghz: f64,
    /// 32-bit registers per SM.
    pub regfile_per_sm: u32,
    /// Maximum registers addressable by one thread.
    pub max_regs_per_thread: u32,
    /// Shared memory per SM in bytes (maximum configurable).
    pub smem_per_sm: u32,
    /// Shared memory addressable by one block in bytes.
    pub max_smem_per_block: u32,
    /// Maximum resident threads per SM.
    pub max_threads_per_sm: u32,
    /// Maximum resident blocks per SM.
    pub max_blocks_per_sm: u32,
    /// Maximum threads in one block.
    pub max_threads_per_block: u32,
    /// Warp width in threads.
    pub warp_size: u32,
    /// Aggregate DRAM bandwidth in GB/s.
    pub mem_bandwidth_gbps: f64,
    /// Average global-memory (DRAM) load latency in core cycles.
    pub global_mem_latency: u32,
    /// Shared-memory load latency in core cycles.
    pub shared_mem_latency: u32,
    /// Host-side overhead of launching one kernel, in microseconds.
    pub kernel_launch_overhead_us: f64,
    /// Cycles to dispatch one thread block to an SM (rasteriser +
    /// block-level setup; also the cost a *bubble block* pays).
    pub block_dispatch_cycles: u32,
    /// Warp-instruction issue slots per SM per cycle (warp schedulers).
    pub issue_width: u32,
}

impl ArchSpec {
    /// Peak FP32 throughput in GFLOP/s (2 flops per FMA).
    pub fn peak_gflops(&self) -> f64 {
        2.0 * self.sms as f64 * self.fp32_lanes_per_sm as f64 * self.clock_ghz
    }

    /// DRAM bandwidth available to one SM per core cycle, in bytes.
    pub fn bytes_per_cycle_per_sm(&self) -> f64 {
        self.mem_bandwidth_gbps * 1.0e9 / (self.sms as f64 * self.clock_ghz * 1.0e9)
    }

    /// Convert core cycles to microseconds.
    pub fn cycles_to_us(&self, cycles: f64) -> f64 {
        cycles / (self.clock_ghz * 1000.0)
    }

    /// Convert microseconds to core cycles.
    pub fn us_to_cycles(&self, us: f64) -> f64 {
        us * self.clock_ghz * 1000.0
    }

    /// Maximum warps resident on one SM.
    pub fn max_warps_per_sm(&self) -> u32 {
        self.max_threads_per_sm / self.warp_size
    }

    /// Total resident-thread capacity of the device.
    pub fn max_resident_threads(&self) -> u64 {
        self.sms as u64 * self.max_threads_per_sm as u64
    }

    /// Tesla V100 (Volta, SXM2 16 GB): the paper's primary platform.
    pub fn volta_v100() -> Self {
        ArchSpec {
            name: "Tesla V100",
            family: ArchFamily::Volta,
            sms: 80,
            fp32_lanes_per_sm: 64,
            clock_ghz: 1.38,
            regfile_per_sm: 65_536,
            max_regs_per_thread: 255,
            smem_per_sm: 96 * 1024,
            max_smem_per_block: 96 * 1024,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 32,
            max_threads_per_block: 1024,
            warp_size: 32,
            mem_bandwidth_gbps: 900.0,
            global_mem_latency: 400,
            shared_mem_latency: 19,
            kernel_launch_overhead_us: 5.0,
            block_dispatch_cycles: 200,
            issue_width: 4,
        }
    }

    /// Tesla P100 (Pascal, SXM2).
    pub fn pascal_p100() -> Self {
        ArchSpec {
            name: "Tesla P100",
            family: ArchFamily::Pascal,
            sms: 56,
            fp32_lanes_per_sm: 64,
            clock_ghz: 1.30,
            regfile_per_sm: 65_536,
            max_regs_per_thread: 255,
            smem_per_sm: 64 * 1024,
            max_smem_per_block: 48 * 1024,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 32,
            max_threads_per_block: 1024,
            warp_size: 32,
            mem_bandwidth_gbps: 732.0,
            global_mem_latency: 450,
            shared_mem_latency: 24,
            kernel_launch_overhead_us: 5.5,
            block_dispatch_cycles: 220,
            issue_width: 4,
        }
    }

    /// GeForce GTX 1080 Ti (Pascal, GDDR5X).
    pub fn pascal_gtx1080ti() -> Self {
        ArchSpec {
            name: "GTX 1080 Ti",
            family: ArchFamily::Pascal,
            sms: 28,
            fp32_lanes_per_sm: 128,
            clock_ghz: 1.58,
            regfile_per_sm: 65_536,
            max_regs_per_thread: 255,
            smem_per_sm: 96 * 1024,
            max_smem_per_block: 48 * 1024,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 32,
            max_threads_per_block: 1024,
            warp_size: 32,
            mem_bandwidth_gbps: 484.0,
            global_mem_latency: 470,
            shared_mem_latency: 24,
            kernel_launch_overhead_us: 5.5,
            block_dispatch_cycles: 220,
            issue_width: 4,
        }
    }

    /// NVIDIA Titan Xp (Pascal).
    pub fn pascal_titan_xp() -> Self {
        ArchSpec {
            name: "Titan Xp",
            family: ArchFamily::Pascal,
            sms: 30,
            fp32_lanes_per_sm: 128,
            clock_ghz: 1.58,
            regfile_per_sm: 65_536,
            max_regs_per_thread: 255,
            smem_per_sm: 96 * 1024,
            max_smem_per_block: 48 * 1024,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 32,
            max_threads_per_block: 1024,
            warp_size: 32,
            mem_bandwidth_gbps: 548.0,
            global_mem_latency: 470,
            shared_mem_latency: 24,
            kernel_launch_overhead_us: 5.5,
            block_dispatch_cycles: 220,
            issue_width: 4,
        }
    }

    /// Tesla M60 (Maxwell; parameters for one of the two on-board GPUs).
    pub fn maxwell_m60() -> Self {
        ArchSpec {
            name: "Tesla M60",
            family: ArchFamily::Maxwell,
            sms: 16,
            fp32_lanes_per_sm: 128,
            clock_ghz: 1.18,
            regfile_per_sm: 65_536,
            max_regs_per_thread: 255,
            smem_per_sm: 96 * 1024,
            max_smem_per_block: 48 * 1024,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 32,
            max_threads_per_block: 1024,
            warp_size: 32,
            mem_bandwidth_gbps: 160.0,
            global_mem_latency: 500,
            shared_mem_latency: 28,
            kernel_launch_overhead_us: 6.0,
            block_dispatch_cycles: 240,
            issue_width: 4,
        }
    }

    /// GeForce GTX Titan X (Maxwell).
    pub fn maxwell_titan_x() -> Self {
        ArchSpec {
            name: "GTX Titan X",
            family: ArchFamily::Maxwell,
            sms: 24,
            fp32_lanes_per_sm: 128,
            clock_ghz: 1.00,
            regfile_per_sm: 65_536,
            max_regs_per_thread: 255,
            smem_per_sm: 96 * 1024,
            max_smem_per_block: 48 * 1024,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 32,
            max_threads_per_block: 1024,
            warp_size: 32,
            mem_bandwidth_gbps: 336.0,
            global_mem_latency: 500,
            shared_mem_latency: 28,
            kernel_launch_overhead_us: 6.0,
            block_dispatch_cycles: 240,
            issue_width: 4,
        }
    }

    /// Tesla T4 (Turing) — a post-paper extension preset, not part of
    /// the paper's evaluation set.
    pub fn turing_t4() -> Self {
        ArchSpec {
            name: "Tesla T4",
            family: ArchFamily::Turing,
            sms: 40,
            fp32_lanes_per_sm: 64,
            clock_ghz: 1.35,
            regfile_per_sm: 65_536,
            max_regs_per_thread: 255,
            smem_per_sm: 64 * 1024,
            max_smem_per_block: 64 * 1024,
            max_threads_per_sm: 1024,
            max_blocks_per_sm: 16,
            max_threads_per_block: 1024,
            warp_size: 32,
            mem_bandwidth_gbps: 320.0,
            global_mem_latency: 430,
            shared_mem_latency: 20,
            kernel_launch_overhead_us: 5.0,
            block_dispatch_cycles: 200,
            issue_width: 4,
        }
    }

    /// A100 (Ampere, SXM 40 GB) — a post-paper extension preset.
    pub fn ampere_a100() -> Self {
        ArchSpec {
            name: "A100",
            family: ArchFamily::Ampere,
            sms: 108,
            fp32_lanes_per_sm: 64,
            clock_ghz: 1.41,
            regfile_per_sm: 65_536,
            max_regs_per_thread: 255,
            smem_per_sm: 164 * 1024,
            max_smem_per_block: 160 * 1024,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 32,
            max_threads_per_block: 1024,
            warp_size: 32,
            mem_bandwidth_gbps: 1555.0,
            global_mem_latency: 390,
            shared_mem_latency: 18,
            kernel_launch_overhead_us: 4.0,
            block_dispatch_cycles: 180,
            issue_width: 4,
        }
    }

    /// Post-paper extension presets (Turing, Ampere) — usable with the
    /// full framework but excluded from the paper-reproduction figures.
    pub fn extension_presets() -> Vec<ArchSpec> {
        vec![ArchSpec::turing_t4(), ArchSpec::ampere_a100()]
    }

    /// All device presets, V100 first (the paper's main platform).
    pub fn all_presets() -> Vec<ArchSpec> {
        vec![
            ArchSpec::volta_v100(),
            ArchSpec::pascal_p100(),
            ArchSpec::pascal_gtx1080ti(),
            ArchSpec::pascal_titan_xp(),
            ArchSpec::maxwell_m60(),
            ArchSpec::maxwell_titan_x(),
        ]
    }

    /// The five portability targets of Fig 11 (everything except V100).
    pub fn fig11_presets() -> Vec<ArchSpec> {
        ArchSpec::all_presets()
            .into_iter()
            .filter(|a| a.name != "Tesla V100")
            .collect()
    }

    /// A heterogeneous device pool of `n` paper GPUs, fastest first by
    /// peak FP32 throughput: V100, Titan Xp, GTX 1080 Ti, P100,
    /// GTX Titan X, M60 — cycling through that order when `n > 6`.
    /// This is the canonical pool for multi-device experiments: pool
    /// index 0 is always the strongest device, so "best single device"
    /// baselines and "kill the fastest device" resilience runs are
    /// well-defined.
    pub fn pool_presets(n: usize) -> Vec<ArchSpec> {
        let mut order = ArchSpec::all_presets();
        order.sort_by(|a, b| b.peak_gflops().total_cmp(&a.peak_gflops()));
        (0..n).map(|i| order[i % order.len()].clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v100_peak_is_about_14_tflops() {
        // The paper quotes ~15 TFlops peak and 14 TFlops measured for
        // cuBLAS at 5120^3; our spec puts the analytical peak in range.
        let v100 = ArchSpec::volta_v100();
        let peak = v100.peak_gflops();
        assert!((14_000.0..15_500.0).contains(&peak), "peak = {peak}");
    }

    #[test]
    fn cycle_time_round_trips() {
        let a = ArchSpec::volta_v100();
        let us = a.cycles_to_us(1_380_000.0);
        assert!((us - 1000.0).abs() < 1e-9);
        assert!((a.us_to_cycles(us) - 1_380_000.0).abs() < 1e-6);
    }

    #[test]
    fn presets_have_distinct_names_and_sane_values() {
        let all = ArchSpec::all_presets();
        assert_eq!(all.len(), 6);
        let mut names: Vec<_> = all.iter().map(|a| a.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 6, "duplicate preset names");
        for a in &all {
            assert!(a.sms > 0 && a.clock_ghz > 0.5);
            assert!(a.max_threads_per_sm % a.warp_size == 0);
            assert!(a.max_warps_per_sm() >= 32);
            assert!(a.bytes_per_cycle_per_sm() > 0.5);
        }
    }

    #[test]
    fn extension_presets_are_sane_and_plannable() {
        for a in ArchSpec::extension_presets() {
            assert!(a.sms > 0 && a.clock_ghz > 0.5);
            assert!(a.max_warps_per_sm() >= 32);
            assert!(matches!(a.family, ArchFamily::Turing | ArchFamily::Ampere));
        }
        // Extension presets never leak into the paper's figure set.
        let fig11: Vec<_> = ArchSpec::fig11_presets().iter().map(|a| a.name).collect();
        assert!(!fig11.contains(&"Tesla T4"));
        assert!(!fig11.contains(&"A100"));
    }

    #[test]
    fn fig11_excludes_v100() {
        let f = ArchSpec::fig11_presets();
        assert_eq!(f.len(), 5);
        assert!(f.iter().all(|a| a.name != "Tesla V100"));
    }

    #[test]
    fn v100_resident_thread_capacity() {
        // 80 SMs x 2048 threads: the denominator behind the paper's
        // TLP threshold discussion (65536 = 40% of capacity).
        let v100 = ArchSpec::volta_v100();
        assert_eq!(v100.max_resident_threads(), 163_840);
    }

    #[test]
    fn all_presets_match_table1_published_specs() {
        // Golden pin of the paper's Table 1 (SM count, boost clock GHz,
        // memory bandwidth GB/s) for the six evaluation GPUs, so
        // device-pool construction can never silently drift from the
        // published hardware the results were measured on.
        let golden: &[(&str, u32, f64, f64)] = &[
            ("Tesla V100", 80, 1.38, 900.0),
            ("Tesla P100", 56, 1.30, 732.0),
            ("GTX 1080 Ti", 28, 1.58, 484.0),
            ("Titan Xp", 30, 1.58, 548.0),
            ("Tesla M60", 16, 1.18, 160.0),
            ("GTX Titan X", 24, 1.00, 336.0),
        ];
        let all = ArchSpec::all_presets();
        assert_eq!(all.len(), golden.len());
        for (name, sms, clock, bw) in golden {
            let a = all
                .iter()
                .find(|a| a.name == *name)
                .unwrap_or_else(|| panic!("preset {name} missing from all_presets()"));
            assert_eq!(a.sms, *sms, "{name}: SM count drifted from Table 1");
            assert_eq!(a.clock_ghz, *clock, "{name}: clock drifted from Table 1");
            assert_eq!(a.mem_bandwidth_gbps, *bw, "{name}: bandwidth drifted from Table 1");
        }
    }

    #[test]
    fn pool_presets_are_fastest_first_and_cycle() {
        let pool = ArchSpec::pool_presets(8);
        assert_eq!(pool.len(), 8);
        let names: Vec<_> = pool.iter().map(|a| a.name).collect();
        assert_eq!(
            &names[..6],
            &["Tesla V100", "Titan Xp", "GTX 1080 Ti", "Tesla P100", "GTX Titan X", "Tesla M60"],
            "pool order must be descending peak GFLOPS"
        );
        // n > 6 cycles back through the order, fastest first again.
        assert_eq!(names[6], "Tesla V100");
        assert_eq!(names[7], "Titan Xp");
        for w in pool[..6].windows(2) {
            assert!(w[0].peak_gflops() >= w[1].peak_gflops());
        }
        assert!(ArchSpec::pool_presets(0).is_empty());
    }

    #[test]
    fn pool_presets_16_matches_golden_cycle() {
        // Golden expansion for the discrete-event sweep's smallest pool
        // size: two full passes through the six presets plus the first
        // four again, deterministically. A 10k-device pool is this same
        // cycle 1666 times over — if n=16 holds, any n holds.
        let golden = [
            "Tesla V100",
            "Titan Xp",
            "GTX 1080 Ti",
            "Tesla P100",
            "GTX Titan X",
            "Tesla M60",
            "Tesla V100",
            "Titan Xp",
            "GTX 1080 Ti",
            "Tesla P100",
            "GTX Titan X",
            "Tesla M60",
            "Tesla V100",
            "Titan Xp",
            "GTX 1080 Ti",
            "Tesla P100",
        ];
        let pool = ArchSpec::pool_presets(16);
        let names: Vec<_> = pool.iter().map(|a| a.name).collect();
        assert_eq!(names, golden, "n=16 pool drifted from the golden preset cycle");
        // Cycled entries are full clones of their preset, not variants.
        for (i, a) in pool.iter().enumerate() {
            assert_eq!(a.sms, pool[i % 6].sms);
            assert_eq!(a.clock_ghz, pool[i % 6].clock_ghz);
        }
    }
}

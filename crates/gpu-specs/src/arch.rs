//! Architecture descriptions for the GPUs evaluated in the paper.
//!
//! Every parameter is taken from the public NVIDIA datasheets /
//! whitepapers for the respective device. The timing simulator in
//! `ctb-sim` consumes these numbers; nothing in the framework itself is
//! hard-coded to a device, which is how the paper's §7.4 portability
//! experiment (Fig 11) is reproduced.

use serde::{Deserialize, Serialize};

/// GPU micro-architecture generation. Maxwell/Pascal/Volta are the
/// paper's platforms; Turing and Ampere are post-paper extension
/// presets; Hopper and Blackwell are the tile-centric / multi-chiplet
/// generations behind the locality presets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ArchFamily {
    Maxwell,
    Pascal,
    Volta,
    Turing,
    Ampere,
    Hopper,
    Blackwell,
}

impl std::fmt::Display for ArchFamily {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArchFamily::Maxwell => write!(f, "Maxwell"),
            ArchFamily::Pascal => write!(f, "Pascal"),
            ArchFamily::Volta => write!(f, "Volta"),
            ArchFamily::Turing => write!(f, "Turing"),
            ArchFamily::Ampere => write!(f, "Ampere"),
            ArchFamily::Hopper => write!(f, "Hopper"),
            ArchFamily::Blackwell => write!(f, "Blackwell"),
        }
    }
}

/// Chiplet-level memory topology of one device.
///
/// Monolithic GPUs (everything up to and including Hopper here) expose
/// one flat HBM pool: `unified` — a single chiplet owning the full
/// bandwidth, with no interposer to cross. Multi-chiplet parts
/// (Blackwell-style dual-die, MCM-GPU research designs) split the
/// aggregate bandwidth into a *local* share (an SM reading HBM attached
/// to its own chiplet) and a *remote* share (reads that cross the
/// interposer), and every crossing pays a fixed latency. The invariant
/// `local + remote == ArchSpec::mem_bandwidth_gbps` holds exactly for
/// every preset (the splits are constructed as `total·f` and
/// `total − total·f`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChipletTopology {
    /// Number of compute chiplets (dies) behind one device. `1` means a
    /// monolithic part: no interposer, no remote region.
    pub chiplets: u32,
    /// Aggregate bandwidth (GB/s) of chiplet-local HBM accesses.
    pub local_bandwidth_gbps: f64,
    /// Aggregate bandwidth (GB/s) available across the interposer.
    /// `0.0` on monolithic parts.
    pub remote_bandwidth_gbps: f64,
    /// Fixed latency (µs) added to an operand fetch that crosses the
    /// interposer at least once.
    pub interposer_latency_us: f64,
}

impl ChipletTopology {
    /// The flat-memory topology of a monolithic GPU: one chiplet, the
    /// whole bandwidth local, nothing remote, no crossing latency.
    pub fn unified(total_bandwidth_gbps: f64) -> Self {
        ChipletTopology {
            chiplets: 1,
            local_bandwidth_gbps: total_bandwidth_gbps,
            remote_bandwidth_gbps: 0.0,
            interposer_latency_us: 0.0,
        }
    }

    /// A multi-chiplet split of `total_bandwidth_gbps`: `local_fraction`
    /// of it is chiplet-local, the exact remainder crosses the
    /// interposer (so the two shares always sum to the total
    /// bit-exactly).
    pub fn split(
        chiplets: u32,
        total_bandwidth_gbps: f64,
        local_fraction: f64,
        interposer_latency_us: f64,
    ) -> Self {
        assert!(chiplets >= 2, "a split topology needs at least two chiplets");
        assert!((0.0..=1.0).contains(&local_fraction), "local fraction must be in [0, 1]");
        let local = total_bandwidth_gbps * local_fraction;
        ChipletTopology {
            chiplets,
            local_bandwidth_gbps: local,
            remote_bandwidth_gbps: total_bandwidth_gbps - local,
            interposer_latency_us,
        }
    }

    /// `true` for monolithic (single-chiplet) parts.
    pub fn is_unified(&self) -> bool {
        self.chiplets <= 1
    }

    /// `local + remote` — must equal the owning spec's
    /// `mem_bandwidth_gbps`.
    pub fn total_bandwidth_gbps(&self) -> f64 {
        self.local_bandwidth_gbps + self.remote_bandwidth_gbps
    }

    /// The chiplet a shape signature's operands call home on this
    /// topology — the tile-to-chiplet affinity function. Deterministic
    /// in the signature hash, so every engine (and every restored
    /// engine) agrees on it.
    pub fn home_chiplet(&self, sig_hash: u64) -> u32 {
        if self.chiplets <= 1 {
            0
        } else {
            (sig_hash % u64::from(self.chiplets)) as u32
        }
    }

    /// The fraction of an operand footprint that crosses the interposer
    /// when the operands are *not* already resident on this device:
    /// striped HBM leaves `1/chiplets` of the footprint local to the
    /// consuming chiplet and the rest remote. `0.0` on monolithic parts.
    pub fn remote_fraction(&self) -> f64 {
        if self.chiplets <= 1 {
            0.0
        } else {
            (self.chiplets - 1) as f64 / self.chiplets as f64
        }
    }
}

/// Parameters of one GPU device, as consumed by the timing simulator.
///
/// Latency/overhead values are representative micro-benchmark figures for
/// the generation (e.g. ~400–600 cycle DRAM latency, ~5 µs kernel-launch
/// overhead); the paper's qualitative results depend on their order of
/// magnitude, not their exact value — see `DESIGN.md` §3.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArchSpec {
    /// Human-readable device name, e.g. `"Tesla V100"`.
    pub name: &'static str,
    /// Micro-architecture generation.
    pub family: ArchFamily,
    /// Number of streaming multiprocessors.
    pub sms: u32,
    /// FP32 FMA lanes per SM (one FMA per lane per cycle).
    pub fp32_lanes_per_sm: u32,
    /// Core clock in GHz used to convert cycles to wall time.
    pub clock_ghz: f64,
    /// 32-bit registers per SM.
    pub regfile_per_sm: u32,
    /// Maximum registers addressable by one thread.
    pub max_regs_per_thread: u32,
    /// Shared memory per SM in bytes (maximum configurable).
    pub smem_per_sm: u32,
    /// Shared memory addressable by one block in bytes.
    pub max_smem_per_block: u32,
    /// Maximum resident threads per SM.
    pub max_threads_per_sm: u32,
    /// Maximum resident blocks per SM.
    pub max_blocks_per_sm: u32,
    /// Maximum threads in one block.
    pub max_threads_per_block: u32,
    /// Warp width in threads.
    pub warp_size: u32,
    /// Aggregate DRAM bandwidth in GB/s.
    pub mem_bandwidth_gbps: f64,
    /// Average global-memory (DRAM) load latency in core cycles.
    pub global_mem_latency: u32,
    /// Shared-memory load latency in core cycles.
    pub shared_mem_latency: u32,
    /// Host-side overhead of launching one kernel, in microseconds.
    pub kernel_launch_overhead_us: f64,
    /// Cycles to dispatch one thread block to an SM (rasteriser +
    /// block-level setup; also the cost a *bubble block* pays).
    pub block_dispatch_cycles: u32,
    /// Warp-instruction issue slots per SM per cycle (warp schedulers).
    pub issue_width: u32,
    /// Chiplet-level memory topology. [`ChipletTopology::unified`] for
    /// every monolithic preset (all of Table 1), a real split for the
    /// multi-chiplet presets.
    pub topology: ChipletTopology,
}

impl ArchSpec {
    /// Peak FP32 throughput in GFLOP/s (2 flops per FMA).
    pub fn peak_gflops(&self) -> f64 {
        2.0 * self.sms as f64 * self.fp32_lanes_per_sm as f64 * self.clock_ghz
    }

    /// DRAM bandwidth available to one SM per core cycle, in bytes.
    pub fn bytes_per_cycle_per_sm(&self) -> f64 {
        self.mem_bandwidth_gbps * 1.0e9 / (self.sms as f64 * self.clock_ghz * 1.0e9)
    }

    /// Convert core cycles to microseconds.
    pub fn cycles_to_us(&self, cycles: f64) -> f64 {
        cycles / (self.clock_ghz * 1000.0)
    }

    /// Convert microseconds to core cycles.
    pub fn us_to_cycles(&self, us: f64) -> f64 {
        us * self.clock_ghz * 1000.0
    }

    /// Maximum warps resident on one SM.
    pub fn max_warps_per_sm(&self) -> u32 {
        self.max_threads_per_sm / self.warp_size
    }

    /// Total resident-thread capacity of the device.
    pub fn max_resident_threads(&self) -> u64 {
        self.sms as u64 * self.max_threads_per_sm as u64
    }

    /// Tesla V100 (Volta, SXM2 16 GB): the paper's primary platform.
    pub fn volta_v100() -> Self {
        ArchSpec {
            name: "Tesla V100",
            family: ArchFamily::Volta,
            sms: 80,
            fp32_lanes_per_sm: 64,
            clock_ghz: 1.38,
            regfile_per_sm: 65_536,
            max_regs_per_thread: 255,
            smem_per_sm: 96 * 1024,
            max_smem_per_block: 96 * 1024,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 32,
            max_threads_per_block: 1024,
            warp_size: 32,
            mem_bandwidth_gbps: 900.0,
            global_mem_latency: 400,
            shared_mem_latency: 19,
            kernel_launch_overhead_us: 5.0,
            block_dispatch_cycles: 200,
            issue_width: 4,
            topology: ChipletTopology::unified(900.0),
        }
    }

    /// Tesla P100 (Pascal, SXM2).
    pub fn pascal_p100() -> Self {
        ArchSpec {
            name: "Tesla P100",
            family: ArchFamily::Pascal,
            sms: 56,
            fp32_lanes_per_sm: 64,
            clock_ghz: 1.30,
            regfile_per_sm: 65_536,
            max_regs_per_thread: 255,
            smem_per_sm: 64 * 1024,
            max_smem_per_block: 48 * 1024,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 32,
            max_threads_per_block: 1024,
            warp_size: 32,
            mem_bandwidth_gbps: 732.0,
            global_mem_latency: 450,
            shared_mem_latency: 24,
            kernel_launch_overhead_us: 5.5,
            block_dispatch_cycles: 220,
            issue_width: 4,
            topology: ChipletTopology::unified(732.0),
        }
    }

    /// GeForce GTX 1080 Ti (Pascal, GDDR5X).
    pub fn pascal_gtx1080ti() -> Self {
        ArchSpec {
            name: "GTX 1080 Ti",
            family: ArchFamily::Pascal,
            sms: 28,
            fp32_lanes_per_sm: 128,
            clock_ghz: 1.58,
            regfile_per_sm: 65_536,
            max_regs_per_thread: 255,
            smem_per_sm: 96 * 1024,
            max_smem_per_block: 48 * 1024,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 32,
            max_threads_per_block: 1024,
            warp_size: 32,
            mem_bandwidth_gbps: 484.0,
            global_mem_latency: 470,
            shared_mem_latency: 24,
            kernel_launch_overhead_us: 5.5,
            block_dispatch_cycles: 220,
            issue_width: 4,
            topology: ChipletTopology::unified(484.0),
        }
    }

    /// NVIDIA Titan Xp (Pascal).
    pub fn pascal_titan_xp() -> Self {
        ArchSpec {
            name: "Titan Xp",
            family: ArchFamily::Pascal,
            sms: 30,
            fp32_lanes_per_sm: 128,
            clock_ghz: 1.58,
            regfile_per_sm: 65_536,
            max_regs_per_thread: 255,
            smem_per_sm: 96 * 1024,
            max_smem_per_block: 48 * 1024,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 32,
            max_threads_per_block: 1024,
            warp_size: 32,
            mem_bandwidth_gbps: 548.0,
            global_mem_latency: 470,
            shared_mem_latency: 24,
            kernel_launch_overhead_us: 5.5,
            block_dispatch_cycles: 220,
            issue_width: 4,
            topology: ChipletTopology::unified(548.0),
        }
    }

    /// Tesla M60 (Maxwell; parameters for one of the two on-board GPUs).
    pub fn maxwell_m60() -> Self {
        ArchSpec {
            name: "Tesla M60",
            family: ArchFamily::Maxwell,
            sms: 16,
            fp32_lanes_per_sm: 128,
            clock_ghz: 1.18,
            regfile_per_sm: 65_536,
            max_regs_per_thread: 255,
            smem_per_sm: 96 * 1024,
            max_smem_per_block: 48 * 1024,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 32,
            max_threads_per_block: 1024,
            warp_size: 32,
            mem_bandwidth_gbps: 160.0,
            global_mem_latency: 500,
            shared_mem_latency: 28,
            kernel_launch_overhead_us: 6.0,
            block_dispatch_cycles: 240,
            issue_width: 4,
            topology: ChipletTopology::unified(160.0),
        }
    }

    /// GeForce GTX Titan X (Maxwell).
    pub fn maxwell_titan_x() -> Self {
        ArchSpec {
            name: "GTX Titan X",
            family: ArchFamily::Maxwell,
            sms: 24,
            fp32_lanes_per_sm: 128,
            clock_ghz: 1.00,
            regfile_per_sm: 65_536,
            max_regs_per_thread: 255,
            smem_per_sm: 96 * 1024,
            max_smem_per_block: 48 * 1024,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 32,
            max_threads_per_block: 1024,
            warp_size: 32,
            mem_bandwidth_gbps: 336.0,
            global_mem_latency: 500,
            shared_mem_latency: 28,
            kernel_launch_overhead_us: 6.0,
            block_dispatch_cycles: 240,
            issue_width: 4,
            topology: ChipletTopology::unified(336.0),
        }
    }

    /// Tesla T4 (Turing) — a post-paper extension preset, not part of
    /// the paper's evaluation set.
    pub fn turing_t4() -> Self {
        ArchSpec {
            name: "Tesla T4",
            family: ArchFamily::Turing,
            sms: 40,
            fp32_lanes_per_sm: 64,
            clock_ghz: 1.35,
            regfile_per_sm: 65_536,
            max_regs_per_thread: 255,
            smem_per_sm: 64 * 1024,
            max_smem_per_block: 64 * 1024,
            max_threads_per_sm: 1024,
            max_blocks_per_sm: 16,
            max_threads_per_block: 1024,
            warp_size: 32,
            mem_bandwidth_gbps: 320.0,
            global_mem_latency: 430,
            shared_mem_latency: 20,
            kernel_launch_overhead_us: 5.0,
            block_dispatch_cycles: 200,
            issue_width: 4,
            topology: ChipletTopology::unified(320.0),
        }
    }

    /// A100 (Ampere, SXM 40 GB) — a post-paper extension preset.
    pub fn ampere_a100() -> Self {
        ArchSpec {
            name: "A100",
            family: ArchFamily::Ampere,
            sms: 108,
            fp32_lanes_per_sm: 64,
            clock_ghz: 1.41,
            regfile_per_sm: 65_536,
            max_regs_per_thread: 255,
            smem_per_sm: 164 * 1024,
            max_smem_per_block: 160 * 1024,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 32,
            max_threads_per_block: 1024,
            warp_size: 32,
            mem_bandwidth_gbps: 1555.0,
            global_mem_latency: 390,
            shared_mem_latency: 18,
            kernel_launch_overhead_us: 4.0,
            block_dispatch_cycles: 180,
            issue_width: 4,
            topology: ChipletTopology::unified(1555.0),
        }
    }

    /// H100 (Hopper, SXM) — the tile-centric generation preset. Still
    /// monolithic (one chiplet, flat HBM3), so its topology is unified;
    /// it anchors the fast end of the chiplet pool.
    pub fn hopper_h100() -> Self {
        ArchSpec {
            name: "H100",
            family: ArchFamily::Hopper,
            sms: 132,
            fp32_lanes_per_sm: 128,
            clock_ghz: 1.83,
            regfile_per_sm: 65_536,
            max_regs_per_thread: 255,
            smem_per_sm: 228 * 1024,
            max_smem_per_block: 227 * 1024,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 32,
            max_threads_per_block: 1024,
            warp_size: 32,
            mem_bandwidth_gbps: 3350.0,
            global_mem_latency: 380,
            shared_mem_latency: 17,
            kernel_launch_overhead_us: 3.5,
            block_dispatch_cycles: 170,
            issue_width: 4,
            topology: ChipletTopology::unified(3350.0),
        }
    }

    /// B200 (Blackwell, SXM) — dual-die: two compute chiplets behind
    /// one device, 75 % of the aggregate bandwidth chiplet-local, the
    /// rest crossing the die-to-die interposer at a ~2.5 µs operand
    /// re-staging cost.
    pub fn blackwell_b200() -> Self {
        ArchSpec {
            name: "B200",
            family: ArchFamily::Blackwell,
            sms: 192,
            fp32_lanes_per_sm: 128,
            clock_ghz: 1.80,
            regfile_per_sm: 65_536,
            max_regs_per_thread: 255,
            smem_per_sm: 228 * 1024,
            max_smem_per_block: 227 * 1024,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 32,
            max_threads_per_block: 1024,
            warp_size: 32,
            mem_bandwidth_gbps: 8000.0,
            global_mem_latency: 370,
            shared_mem_latency: 17,
            kernel_launch_overhead_us: 3.5,
            block_dispatch_cycles: 170,
            issue_width: 4,
            topology: ChipletTopology::split(2, 8000.0, 0.75, 2.5),
        }
    }

    /// A 4-die MCM-GPU research design in the spirit of the
    /// multi-chiplet GEMM locality literature: four modest chiplets on
    /// one interposer, only 60 % of the bandwidth local, and a fatter
    /// crossing cost — the preset that makes locality-blind placement
    /// visibly expensive.
    pub fn mcm_gpu_4die() -> Self {
        ArchSpec {
            name: "MCM-GPU 4-die",
            family: ArchFamily::Blackwell,
            sms: 128,
            fp32_lanes_per_sm: 64,
            clock_ghz: 1.40,
            regfile_per_sm: 65_536,
            max_regs_per_thread: 255,
            smem_per_sm: 128 * 1024,
            max_smem_per_block: 96 * 1024,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 32,
            max_threads_per_block: 1024,
            warp_size: 32,
            mem_bandwidth_gbps: 3000.0,
            global_mem_latency: 420,
            shared_mem_latency: 20,
            kernel_launch_overhead_us: 4.5,
            block_dispatch_cycles: 200,
            issue_width: 4,
            topology: ChipletTopology::split(4, 3000.0, 0.6, 4.0),
        }
    }

    /// Post-paper extension presets (Turing, Ampere) — usable with the
    /// full framework but excluded from the paper-reproduction figures.
    pub fn extension_presets() -> Vec<ArchSpec> {
        vec![ArchSpec::turing_t4(), ArchSpec::ampere_a100()]
    }

    /// All device presets, V100 first (the paper's main platform).
    pub fn all_presets() -> Vec<ArchSpec> {
        vec![
            ArchSpec::volta_v100(),
            ArchSpec::pascal_p100(),
            ArchSpec::pascal_gtx1080ti(),
            ArchSpec::pascal_titan_xp(),
            ArchSpec::maxwell_m60(),
            ArchSpec::maxwell_titan_x(),
        ]
    }

    /// The five portability targets of Fig 11 (everything except V100).
    pub fn fig11_presets() -> Vec<ArchSpec> {
        ArchSpec::all_presets()
            .into_iter()
            .filter(|a| a.name != "Tesla V100")
            .collect()
    }

    /// A heterogeneous device pool of `n` paper GPUs, fastest first by
    /// peak FP32 throughput: V100, Titan Xp, GTX 1080 Ti, P100,
    /// GTX Titan X, M60 — cycling through that order when `n > 6`.
    /// This is the canonical pool for multi-device experiments: pool
    /// index 0 is always the strongest device, so "best single device"
    /// baselines and "kill the fastest device" resilience runs are
    /// well-defined.
    pub fn pool_presets(n: usize) -> Vec<ArchSpec> {
        let mut order = ArchSpec::all_presets();
        order.sort_by(|a, b| b.peak_gflops().total_cmp(&a.peak_gflops()));
        (0..n).map(|i| order[i % order.len()].clone()).collect()
    }

    /// The tile-centric / multi-chiplet presets (Hopper and newer),
    /// kept apart from the Table 1 set so the paper-reproduction pools
    /// and goldens never change underneath the figures.
    pub fn chiplet_presets() -> Vec<ArchSpec> {
        vec![ArchSpec::hopper_h100(), ArchSpec::blackwell_b200(), ArchSpec::mcm_gpu_4die()]
    }

    /// A heterogeneous pool of `n` modern devices, fastest first by
    /// peak FP32 throughput (B200, H100, MCM-GPU 4-die), cycling when
    /// `n > 3` — the chiplet-era analogue of [`ArchSpec::pool_presets`]
    /// and the canonical pool for locality experiments: it always mixes
    /// monolithic and multi-chiplet devices.
    pub fn chiplet_pool_presets(n: usize) -> Vec<ArchSpec> {
        let mut order = ArchSpec::chiplet_presets();
        order.sort_by(|a, b| b.peak_gflops().total_cmp(&a.peak_gflops()));
        (0..n).map(|i| order[i % order.len()].clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v100_peak_is_about_14_tflops() {
        // The paper quotes ~15 TFlops peak and 14 TFlops measured for
        // cuBLAS at 5120^3; our spec puts the analytical peak in range.
        let v100 = ArchSpec::volta_v100();
        let peak = v100.peak_gflops();
        assert!((14_000.0..15_500.0).contains(&peak), "peak = {peak}");
    }

    #[test]
    fn cycle_time_round_trips() {
        let a = ArchSpec::volta_v100();
        let us = a.cycles_to_us(1_380_000.0);
        assert!((us - 1000.0).abs() < 1e-9);
        assert!((a.us_to_cycles(us) - 1_380_000.0).abs() < 1e-6);
    }

    #[test]
    fn presets_have_distinct_names_and_sane_values() {
        let all = ArchSpec::all_presets();
        assert_eq!(all.len(), 6);
        let mut names: Vec<_> = all.iter().map(|a| a.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 6, "duplicate preset names");
        for a in &all {
            assert!(a.sms > 0 && a.clock_ghz > 0.5);
            assert!(a.max_threads_per_sm % a.warp_size == 0);
            assert!(a.max_warps_per_sm() >= 32);
            assert!(a.bytes_per_cycle_per_sm() > 0.5);
        }
    }

    #[test]
    fn extension_presets_are_sane_and_plannable() {
        for a in ArchSpec::extension_presets() {
            assert!(a.sms > 0 && a.clock_ghz > 0.5);
            assert!(a.max_warps_per_sm() >= 32);
            assert!(matches!(a.family, ArchFamily::Turing | ArchFamily::Ampere));
        }
        // Extension presets never leak into the paper's figure set.
        let fig11: Vec<_> = ArchSpec::fig11_presets().iter().map(|a| a.name).collect();
        assert!(!fig11.contains(&"Tesla T4"));
        assert!(!fig11.contains(&"A100"));
    }

    #[test]
    fn fig11_excludes_v100() {
        let f = ArchSpec::fig11_presets();
        assert_eq!(f.len(), 5);
        assert!(f.iter().all(|a| a.name != "Tesla V100"));
    }

    #[test]
    fn v100_resident_thread_capacity() {
        // 80 SMs x 2048 threads: the denominator behind the paper's
        // TLP threshold discussion (65536 = 40% of capacity).
        let v100 = ArchSpec::volta_v100();
        assert_eq!(v100.max_resident_threads(), 163_840);
    }

    #[test]
    fn all_presets_match_table1_published_specs() {
        // Golden pin of the paper's Table 1 (SM count, boost clock GHz,
        // memory bandwidth GB/s) for the six evaluation GPUs, so
        // device-pool construction can never silently drift from the
        // published hardware the results were measured on.
        let golden: &[(&str, u32, f64, f64)] = &[
            ("Tesla V100", 80, 1.38, 900.0),
            ("Tesla P100", 56, 1.30, 732.0),
            ("GTX 1080 Ti", 28, 1.58, 484.0),
            ("Titan Xp", 30, 1.58, 548.0),
            ("Tesla M60", 16, 1.18, 160.0),
            ("GTX Titan X", 24, 1.00, 336.0),
        ];
        let all = ArchSpec::all_presets();
        assert_eq!(all.len(), golden.len());
        for (name, sms, clock, bw) in golden {
            let a = all
                .iter()
                .find(|a| a.name == *name)
                .unwrap_or_else(|| panic!("preset {name} missing from all_presets()"));
            assert_eq!(a.sms, *sms, "{name}: SM count drifted from Table 1");
            assert_eq!(a.clock_ghz, *clock, "{name}: clock drifted from Table 1");
            assert_eq!(a.mem_bandwidth_gbps, *bw, "{name}: bandwidth drifted from Table 1");
        }
    }

    #[test]
    fn pool_presets_are_fastest_first_and_cycle() {
        let pool = ArchSpec::pool_presets(8);
        assert_eq!(pool.len(), 8);
        let names: Vec<_> = pool.iter().map(|a| a.name).collect();
        assert_eq!(
            &names[..6],
            &["Tesla V100", "Titan Xp", "GTX 1080 Ti", "Tesla P100", "GTX Titan X", "Tesla M60"],
            "pool order must be descending peak GFLOPS"
        );
        // n > 6 cycles back through the order, fastest first again.
        assert_eq!(names[6], "Tesla V100");
        assert_eq!(names[7], "Titan Xp");
        for w in pool[..6].windows(2) {
            assert!(w[0].peak_gflops() >= w[1].peak_gflops());
        }
        assert!(ArchSpec::pool_presets(0).is_empty());
    }

    #[test]
    fn pool_presets_16_matches_golden_cycle() {
        // Golden expansion for the discrete-event sweep's smallest pool
        // size: two full passes through the six presets plus the first
        // four again, deterministically. A 10k-device pool is this same
        // cycle 1666 times over — if n=16 holds, any n holds.
        let golden = [
            "Tesla V100",
            "Titan Xp",
            "GTX 1080 Ti",
            "Tesla P100",
            "GTX Titan X",
            "Tesla M60",
            "Tesla V100",
            "Titan Xp",
            "GTX 1080 Ti",
            "Tesla P100",
            "GTX Titan X",
            "Tesla M60",
            "Tesla V100",
            "Titan Xp",
            "GTX 1080 Ti",
            "Tesla P100",
        ];
        let pool = ArchSpec::pool_presets(16);
        let names: Vec<_> = pool.iter().map(|a| a.name).collect();
        assert_eq!(names, golden, "n=16 pool drifted from the golden preset cycle");
        // Cycled entries are full clones of their preset, not variants.
        for (i, a) in pool.iter().enumerate() {
            assert_eq!(a.sms, pool[i % 6].sms);
            assert_eq!(a.clock_ghz, pool[i % 6].clock_ghz);
        }
    }

    #[test]
    fn every_preset_topology_bandwidth_split_sums_to_spec_total() {
        // The locality model's core invariant: local + remote bandwidth
        // equals the spec's aggregate bandwidth *exactly* (the splits
        // are constructed as total·f and total − total·f, so this holds
        // bit-for-bit, not just within an epsilon).
        let mut everything = ArchSpec::all_presets();
        everything.extend(ArchSpec::extension_presets());
        everything.extend(ArchSpec::chiplet_presets());
        assert_eq!(everything.len(), 11);
        for a in &everything {
            assert_eq!(
                a.topology.total_bandwidth_gbps(),
                a.mem_bandwidth_gbps,
                "{}: topology bandwidth split does not sum to the spec total",
                a.name
            );
            assert!(a.topology.chiplets >= 1);
            assert!(a.topology.local_bandwidth_gbps > 0.0);
            assert!(a.topology.remote_bandwidth_gbps >= 0.0);
            assert!(a.topology.interposer_latency_us >= 0.0);
        }
    }

    #[test]
    fn table1_and_extension_presets_are_unified() {
        // Everything up to Ampere is monolithic: one chiplet, zero
        // remote bandwidth, zero crossing latency, zero remote
        // fraction. This is what pins single-chiplet pools to today's
        // placement decisions bitwise.
        let mut flat = ArchSpec::all_presets();
        flat.extend(ArchSpec::extension_presets());
        flat.push(ArchSpec::hopper_h100());
        for a in &flat {
            assert!(a.topology.is_unified(), "{} should be monolithic", a.name);
            assert_eq!(a.topology.chiplets, 1);
            assert_eq!(a.topology.remote_bandwidth_gbps, 0.0);
            assert_eq!(a.topology.interposer_latency_us, 0.0);
            assert_eq!(a.topology.remote_fraction(), 0.0);
            assert_eq!(a.topology.home_chiplet(u64::MAX), 0);
        }
    }

    #[test]
    fn multi_chiplet_presets_have_real_splits() {
        for a in [ArchSpec::blackwell_b200(), ArchSpec::mcm_gpu_4die()] {
            assert!(!a.topology.is_unified(), "{} should be multi-chiplet", a.name);
            assert!(a.topology.chiplets >= 2);
            assert!(a.topology.remote_bandwidth_gbps > 0.0);
            assert!(a.topology.interposer_latency_us > 0.0);
            assert!(a.topology.remote_fraction() > 0.0 && a.topology.remote_fraction() < 1.0);
            // Affinity is deterministic and lands on a real chiplet.
            for sig in [0u64, 1, 7, u64::MAX] {
                let home = a.topology.home_chiplet(sig);
                assert!(home < a.topology.chiplets);
                assert_eq!(home, a.topology.home_chiplet(sig));
            }
        }
    }

    #[test]
    fn chiplet_pool_presets_are_fastest_first_and_cycle() {
        // Golden cycle for the locality pool: B200, H100, MCM-GPU 4-die
        // by descending peak GFLOPS, repeating — and every pool of n ≥ 2
        // contains at least one multi-chiplet device, so locality
        // experiments on this pool are never vacuous.
        let pool = ArchSpec::chiplet_pool_presets(7);
        let names: Vec<_> = pool.iter().map(|a| a.name).collect();
        assert_eq!(
            names,
            ["B200", "H100", "MCM-GPU 4-die", "B200", "H100", "MCM-GPU 4-die", "B200"],
            "chiplet pool drifted from the golden fastest-first cycle"
        );
        for w in pool[..3].windows(2) {
            assert!(w[0].peak_gflops() >= w[1].peak_gflops());
        }
        assert!(pool.iter().any(|a| !a.topology.is_unified()));
        assert!(pool.iter().any(|a| a.topology.is_unified()));
        assert!(ArchSpec::chiplet_pool_presets(0).is_empty());
    }

    #[test]
    fn split_topology_construction_is_exact() {
        let t = ChipletTopology::split(4, 3000.0, 0.6, 4.0);
        assert_eq!(t.local_bandwidth_gbps + t.remote_bandwidth_gbps, 3000.0);
        assert_eq!(t.chiplets, 4);
        assert_eq!(t.remote_fraction(), 0.75);
        let u = ChipletTopology::unified(900.0);
        assert_eq!(u.total_bandwidth_gbps(), 900.0);
        assert!(u.is_unified());
    }
}

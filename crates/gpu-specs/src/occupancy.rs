//! SM occupancy calculator.
//!
//! Given a thread-block resource footprint (threads, registers per
//! thread, shared memory per block) this computes how many blocks can be
//! co-resident on one SM — the same arithmetic as NVIDIA's occupancy
//! calculator. Occupancy feeds the latency-hiding term of the timing
//! model: more resident warps hide more global-memory latency, which is
//! the paper's TLP argument in mechanical form.

use crate::arch::ArchSpec;
use serde::{Deserialize, Serialize};

/// Resource footprint of one thread block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BlockFootprint {
    /// Threads launched per block (counting idle threads).
    pub threads: u32,
    /// Registers allocated per thread.
    pub regs_per_thread: u32,
    /// Shared memory per block in bytes.
    pub smem_bytes: u32,
}

impl BlockFootprint {
    pub fn new(threads: u32, regs_per_thread: u32, smem_bytes: u32) -> Self {
        BlockFootprint { threads, regs_per_thread, smem_bytes }
    }

    /// Warps per block, rounded up.
    pub fn warps(&self, warp_size: u32) -> u32 {
        self.threads.div_ceil(warp_size)
    }
}

/// Result of the occupancy computation for one kernel on one device.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Occupancy {
    /// Blocks resident per SM.
    pub blocks_per_sm: u32,
    /// Warps resident per SM (`blocks_per_sm * warps_per_block`).
    pub warps_per_sm: u32,
    /// Fraction of the SM's warp slots that are occupied, in `[0, 1]`.
    pub occupancy: f64,
    /// Which resource bounds residency.
    pub limiter: Limiter,
}

/// The resource that limits residency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Limiter {
    Threads,
    Registers,
    SharedMemory,
    BlockSlots,
    /// The block cannot run at all (footprint exceeds a per-block limit).
    Infeasible,
}

/// Compute the occupancy of blocks with footprint `fp` on `arch`.
///
/// Returns `Occupancy { blocks_per_sm: 0, limiter: Infeasible, .. }` when
/// the footprint exceeds a hard per-block limit (threads per block,
/// registers per thread, shared memory per block) — callers treat that as
/// a planning error.
pub fn occupancy(arch: &ArchSpec, fp: &BlockFootprint) -> Occupancy {
    let infeasible = fp.threads == 0
        || fp.threads > arch.max_threads_per_block
        || fp.regs_per_thread > arch.max_regs_per_thread
        || fp.smem_bytes > arch.max_smem_per_block;
    if infeasible {
        return Occupancy {
            blocks_per_sm: 0,
            warps_per_sm: 0,
            occupancy: 0.0,
            limiter: Limiter::Infeasible,
        };
    }

    let by_threads = arch.max_threads_per_sm / fp.threads;
    // Register allocation granularity is per-warp on real devices; the
    // warp-rounded thread count is the conservative approximation.
    let regs_per_block = fp.warps(arch.warp_size) * arch.warp_size * fp.regs_per_thread.max(1);
    let by_regs = arch.regfile_per_sm / regs_per_block.max(1);
    let by_smem = arch.smem_per_sm.checked_div(fp.smem_bytes).unwrap_or(u32::MAX);
    let by_slots = arch.max_blocks_per_sm;

    let (blocks, limiter) = [
        (by_threads, Limiter::Threads),
        (by_regs, Limiter::Registers),
        (by_smem, Limiter::SharedMemory),
        (by_slots, Limiter::BlockSlots),
    ]
    .into_iter()
    .min_by_key(|(b, _)| *b)
    .expect("non-empty");

    let warps = blocks * fp.warps(arch.warp_size);
    Occupancy {
        blocks_per_sm: blocks,
        warps_per_sm: warps,
        occupancy: warps as f64 / arch.max_warps_per_sm() as f64,
        limiter,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v100() -> ArchSpec {
        ArchSpec::volta_v100()
    }

    #[test]
    fn small_blocks_hit_block_slot_limit() {
        // 32-thread blocks with tiny footprints: 32 blocks/SM cap.
        let occ = occupancy(&v100(), &BlockFootprint::new(32, 16, 256));
        assert_eq!(occ.blocks_per_sm, 32);
        assert_eq!(occ.limiter, Limiter::BlockSlots);
    }

    #[test]
    fn thread_limited() {
        let occ = occupancy(&v100(), &BlockFootprint::new(1024, 16, 0));
        assert_eq!(occ.blocks_per_sm, 2);
        assert_eq!(occ.limiter, Limiter::Threads);
        assert!((occ.occupancy - 1.0).abs() < 1e-12);
    }

    #[test]
    fn register_limited() {
        // 256 threads x 128 regs = 32768 regs/block -> 2 blocks/SM.
        let occ = occupancy(&v100(), &BlockFootprint::new(256, 128, 0));
        assert_eq!(occ.blocks_per_sm, 2);
        assert_eq!(occ.limiter, Limiter::Registers);
    }

    #[test]
    fn smem_limited() {
        // 40 KiB smem per block on a 96 KiB SM -> 2 blocks.
        let occ = occupancy(&v100(), &BlockFootprint::new(128, 16, 40 * 1024));
        assert_eq!(occ.blocks_per_sm, 2);
        assert_eq!(occ.limiter, Limiter::SharedMemory);
    }

    #[test]
    fn infeasible_block() {
        let occ = occupancy(&v100(), &BlockFootprint::new(2048, 16, 0));
        assert_eq!(occ.blocks_per_sm, 0);
        assert_eq!(occ.limiter, Limiter::Infeasible);
        let occ = occupancy(&v100(), &BlockFootprint::new(0, 16, 0));
        assert_eq!(occ.limiter, Limiter::Infeasible);
    }

    #[test]
    fn paper_large_tile_footprint_is_resident() {
        // Table 2 "large" with 256 threads: smem = 2*(64*8 + 8*64)*4 = 8 KiB.
        let occ = occupancy(&v100(), &BlockFootprint::new(256, 64, 8 * 1024));
        assert!(occ.blocks_per_sm >= 4, "occ = {occ:?}");
    }

    #[test]
    fn occupancy_fraction_never_exceeds_one() {
        let arch = v100();
        for threads in [32u32, 64, 128, 256, 512, 1024] {
            for regs in [16u32, 32, 64, 128, 255] {
                for smem in [0u32, 1024, 8192, 49152] {
                    let occ = occupancy(&arch, &BlockFootprint::new(threads, regs, smem));
                    assert!(occ.occupancy <= 1.0 + 1e-12);
                    assert!(occ.warps_per_sm <= arch.max_warps_per_sm());
                }
            }
        }
    }
}

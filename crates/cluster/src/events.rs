//! Discrete-event cluster core: the threaded scheduler's decisions
//! without the threads.
//!
//! The threaded [`crate::Cluster`] caps its scaling story at a handful
//! of devices because every simulated GPU owns a real worker pool — host
//! threads, not the analytical model, bound the sweep. This module
//! replaces the thread structure with a single binary-heap timeline in
//! *simulated* time: device count becomes a `Vec` length, and a 10k-
//! device pool processing a million requests is just a larger heap.
//!
//! **Decision parity.** Placement, work stealing, breaker trips, kill
//! re-routing and the per-mille [`FaultInjector`] draws all go through
//! the exact same seams the threaded engine uses —
//! [`placer::rank`]/[`placer::choose`](crate::placer::choose),
//! [`placer::steal_beneficial`], [`Breaker`], and the shared
//! [`PlanShare`] memo — in the same order a serially-driven threaded
//! cluster consults them. The lockstep differential suite
//! (`tests/lockstep.rs`) drives both engines over the chaos schedules
//! and compares per-request routing decisions, reconciled
//! [`ClusterStats`] and fault logs.
//!
//! **Witness-subset bitwise checking.** Executing a million GEMM
//! batches functionally would make the host CPU the bottleneck again,
//! so most requests carry only their shape signature: cost comes from
//! the shared `SimMemo` (the identical number the placer compared), and
//! completion is pure accounting. Every `witness_every`-th request is a
//! *witness*: it materializes real matrices from its seed, runs the
//! full coordinated plan through the functional executor, and bitwise-
//! compares against `reference_result_exact`. The bitwise-exactness
//! claim is thus continuously sampled across the run instead of paid on
//! every request.
//!
//! **Determinism.** No wall clock, no OS scheduler: event order is
//! `(SimTime, seq)` where `seq` is a monotonic tie-break assigned at
//! schedule time. The same inputs therefore produce the same event
//! sequence, the same decisions, and — with an [`Obs`] attached — a
//! byte-identical trace (`tests/determinism.rs`).

use crate::cluster::{ClusterConfig, StealPolicy};
use crate::drift::{GroundTruth, PlacementDecision};
use crate::placer::{self, Candidate, LocalityPolicy};
use crate::stats::{ClusterInner, ClusterStats, DeviceStats};
use ctb_core::{
    AdmissionPolicy, BatchingPolicy, CacheStats, Framework, FrameworkConfig, OperandHome,
    PlanShare, PlanShareConfig, Session,
};
use ctb_gpu_specs::ArchSpec;
use ctb_matrix::{bitwise_mismatch, GemmBatch, GemmShape};
use ctb_obs::{Obs, ObsClock, PointKind, SimClock, SpanKind};
use ctb_savestate::{Reader, SavestateError, Writer};
use ctb_serve::{
    BoundedQueue, Breaker, BreakerPolicy, FaultConfig, FaultInjector, FaultLog, FaultSite,
    PushError, FAULT_SITES,
};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Matrix fill parameters for witness batches; the lockstep harness
/// builds its threaded-side batches with the same constants so both
/// engines execute byte-identical inputs.
pub const WITNESS_ALPHA: f32 = 1.0;
/// See [`WITNESS_ALPHA`].
pub const WITNESS_BETA: f32 = 0.5;

/// Sim-time backoff before retrying an initial placement when every
/// candidate queue is full — mirrors the threaded `submit` loop's 50 µs
/// backpressure sleep.
const BACKOFF_NS: u64 = 50_000;

/// Healing-probe interval after a breaker trip.
const PROBE_NS: u64 = 1_000_000;

// ---------------------------------------------------------------------------
// SimTime + Timeline
// ---------------------------------------------------------------------------

/// A typed simulated timestamp, in nanoseconds. Nanosecond granularity
/// keeps distinct exponential inter-arrival draws distinct even at a
/// million requests per simulated second; the [`Obs`] clock runs in
/// microseconds, so [`SimTime::as_us`] truncates on the way out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    pub const ZERO: SimTime = SimTime(0);

    pub fn from_us(us: u64) -> Self {
        SimTime(us.saturating_mul(1_000))
    }

    pub fn plus(self, ns: u64) -> Self {
        SimTime(self.0.saturating_add(ns))
    }

    pub fn as_ns(self) -> u64 {
        self.0
    }

    pub fn as_us(self) -> u64 {
        self.0 / 1_000
    }
}

struct Entry<E> {
    at: SimTime,
    seq: u64,
    ev: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.at.cmp(&other.at).then(self.seq.cmp(&other.seq))
    }
}

/// The event timeline: a min-heap keyed by `(SimTime, seq)`. The `seq`
/// tie-break is assigned at schedule time, so events scheduled for the
/// same instant pop in schedule order — FIFO among equals, which is
/// what makes the engine's event order (and therefore its trace) a pure
/// function of the inputs.
pub struct Timeline<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
}

impl<E> Default for Timeline<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Timeline<E> {
    pub fn new() -> Self {
        Timeline { heap: BinaryHeap::new(), seq: 0 }
    }

    /// Schedule `ev` at `at`; returns the tie-break seq assigned to it.
    pub fn schedule(&mut self, at: SimTime, ev: E) -> u64 {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry { at, seq, ev }));
        seq
    }

    /// Pop the earliest event (ties in schedule order).
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|Reverse(e)| (e.at, e.ev))
    }

    /// Timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.at)
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Serialize the pending entries sorted by `(at, seq)` — pop order,
    /// which is also the unique byte-stable order — plus the tie-break
    /// counter, via `f` for the event payloads.
    fn save_with(&self, w: &mut Writer, mut f: impl FnMut(&mut Writer, &E)) {
        w.u64(self.seq);
        let mut entries: Vec<&Entry<E>> = self.heap.iter().map(|Reverse(e)| e).collect();
        entries.sort_by_key(|e| (e.at, e.seq));
        w.len_prefix(entries.len());
        for e in entries {
            w.u64(e.at.as_ns());
            w.u64(e.seq);
            f(w, &e.ev);
        }
    }

    /// Rebuild a timeline serialized by [`Timeline::save_with`]. The
    /// restored heap holds the same `(at, seq, ev)` set, so its pop
    /// order — and every tie-break the resumed run assigns from `seq`
    /// onward — is identical to the original's.
    fn load_with(
        r: &mut Reader<'_>,
        mut f: impl FnMut(&mut Reader<'_>) -> Result<E, SavestateError>,
    ) -> Result<Self, SavestateError> {
        let seq = r.u64()?;
        let entries = r.seq(|r| {
            let at = SimTime(r.u64()?);
            let entry_seq = r.u64()?;
            let ev = f(r)?;
            Ok(Entry { at, seq: entry_seq, ev })
        })?;
        let mut heap = BinaryHeap::with_capacity(entries.len());
        for e in entries {
            if e.seq >= seq {
                return Err(SavestateError::Corrupt(format!(
                    "timeline entry seq {} not below the tie-break counter {seq}",
                    e.seq
                )));
            }
            heap.push(Reverse(e));
        }
        Ok(Timeline { heap, seq })
    }
}

// ---------------------------------------------------------------------------
// Events + jobs
// ---------------------------------------------------------------------------

/// One request in flight inside the event engine. Unlike the threaded
/// `ClusterJob` it carries no matrices — only the shape signature the
/// cost model needs — unless it is a witness (see module docs), in
/// which case the matrices are rebuilt from `seed` at execution time.
#[derive(Clone)]
struct EvJob {
    id: u64,
    shapes: Arc<[GemmShape]>,
    /// Data seed a witness materializes its matrices from.
    seed: u64,
    arrived: SimTime,
    /// Predicted simulated µs on the device currently holding the job
    /// (re-predicted on steal/re-route, exactly like the threaded path).
    predicted_us: f64,
    /// Times the job has been moved between devices.
    attempts: u32,
    stolen: bool,
    witness: bool,
}

/// The fixed event vocabulary. Everything the threaded engine does with
/// threads — queue polling, steal polling, breaker healing, kill drains
/// — maps onto one of these six slots.
enum Ev {
    /// A request enters the system (admission + placement kickoff).
    Arrive { job: EvJob },
    /// A placement attempt for `job` runs now (initial or backoff retry).
    PlaceDone { job: EvJob },
    /// The device's currently running job finishes now.
    ExecDone { device: usize },
    /// An idle device looks for a saturated victim to steal from.
    StealCheck { device: usize },
    /// Post-trip healing probe: re-kick a recovered idle device.
    BreakerProbe { device: usize },
    /// Scheduled device failure (chaos schedules).
    DeviceKill { device: usize },
}

/// What the fault dice decided a running job's end will look like. The
/// rolls are drawn when the job *starts* — the same order the threaded
/// worker draws them — and applied when its `ExecDone` fires.
enum Fate {
    Complete,
    PlanFailed,
    Panicked,
}

struct Running {
    job: EvJob,
    fate: Fate,
}

// ---------------------------------------------------------------------------
// Devices + config
// ---------------------------------------------------------------------------

/// One simulated GPU in the event engine: the same parts as the
/// threaded `Device` (session, bounded queue, breaker, optional chaos
/// schedule) minus the worker threads — plain fields instead of
/// atomics, because exactly one event handler touches them at a time.
struct EvDevice {
    id: usize,
    session: Arc<Session>,
    queue: BoundedQueue<EvJob>,
    running: Option<Running>,
    /// Predicted µs of work queued or running here. Same f64
    /// add/subtract discipline as the threaded `AtomicF64` backlog, so
    /// the two engines feed identical numbers to the placer.
    backlog_us: f64,
    busy_sim_us: f64,
    alive: bool,
    breaker: Breaker,
    fault: Option<Arc<FaultInjector>>,
    placements: usize,
    completed: usize,
    steals: usize,
    reroutes_out: usize,
    breaker_trips: usize,
    /// A StealCheck event is already on the heap for this device.
    steal_pending: bool,
    /// A BreakerProbe event is already on the heap for this device.
    probe_pending: bool,
}

impl EvDevice {
    fn arch(&self) -> &ArchSpec {
        self.session.framework().arch()
    }

    fn backlog(&self) -> f64 {
        self.backlog_us.max(0.0)
    }

    fn roll(&self, site: FaultSite) -> bool {
        match &self.fault {
            Some(f) => f.roll(site),
            None => false,
        }
    }

    fn idle(&self) -> bool {
        self.running.is_none() && self.queue.is_empty()
    }

    fn snapshot(&self) -> DeviceStats {
        DeviceStats {
            id: self.id,
            name: self.arch().name,
            placements: self.placements,
            completed: self.completed,
            steals: self.steals,
            reroutes_out: self.reroutes_out,
            breaker_trips: self.breaker_trips,
            busy_sim_us: self.busy_sim_us,
            backlog_us: self.backlog(),
            queue_depth: self.queue.len(),
            utilization: 0.0, // filled in by the engine snapshot
            alive: self.alive,
            breaker_open: self.breaker.is_open(),
        }
    }
}

/// How placement scans the pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementMode {
    /// Exact O(devices) scan below 64 devices, indexed at or above.
    Auto,
    /// Always the exact scan the threaded engine performs — the mode
    /// the lockstep suite runs in.
    Exact,
    /// Always the per-arch-class indexed argmin (O(classes · log n)).
    Indexed,
}

/// Event-engine tuning knobs. The scheduling fields carry the same
/// semantics (and defaults) as [`ClusterConfig`]; the extra fields
/// control witness sampling and the placement index.
#[derive(Debug, Clone)]
pub struct EventConfig {
    pub queue_capacity: usize,
    pub steal: StealPolicy,
    pub breaker: BreakerPolicy,
    pub max_reroutes: u32,
    /// Every n-th request executes for real and is bitwise-checked;
    /// `0` disables witnesses, `1` checks everything.
    pub witness_every: usize,
    pub placement: PlacementMode,
    /// Keep a per-request routing outcome log (the lockstep suite's
    /// comparison payload); costs one small record per request.
    pub record_outcomes: bool,
    /// Shard/capacity/admission layout of the shared plan cache. Part
    /// of the checkpoint (v2), so a restored engine rebuilds the same
    /// cache geometry the blob's gate and shard images describe.
    pub share: PlanShareConfig,
    /// Whether placement ranks candidates with the locality routing
    /// penalty (same semantics as [`ClusterConfig::locality`]). Part of
    /// the checkpoint (v3), so a restored engine re-ranks identically.
    pub locality: LocalityPolicy,
}

impl Default for EventConfig {
    fn default() -> Self {
        EventConfig::from(&ClusterConfig::default())
    }
}

impl From<&ClusterConfig> for EventConfig {
    fn from(c: &ClusterConfig) -> Self {
        EventConfig {
            queue_capacity: c.queue_capacity,
            steal: c.steal.clone(),
            breaker: c.breaker.clone(),
            max_reroutes: c.max_reroutes,
            witness_every: 1,
            placement: PlacementMode::Exact,
            record_outcomes: true,
            share: PlanShareConfig::default(),
            locality: c.locality,
        }
    }
}

// ---------------------------------------------------------------------------
// Load generation
// ---------------------------------------------------------------------------

/// SplitMix64 output mixer (the same full-avalanche hash the fault
/// injector uses; reproduced here because the injector keeps its
/// private).
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A weighted shape-signature class in an open-loop workload mix.
#[derive(Debug, Clone)]
pub struct ShapeMix {
    pub name: &'static str,
    pub shapes: Arc<[GemmShape]>,
    pub weight: u32,
}

/// Open-loop load generator: seeded exponential inter-arrivals over a
/// weighted mix of batch shape signatures. Both the mix draw and the
/// inter-arrival draw are pure functions of `(seed, n)`, so a generator
/// is reproducible and two engines fed equal generators see the same
/// arrival process.
#[derive(Debug, Clone)]
pub struct LoadGen {
    seed: u64,
    mean_interarrival_ns: f64,
    mixes: Vec<ShapeMix>,
    total_weight: u64,
    remaining: usize,
    drawn: u64,
}

impl LoadGen {
    pub fn new(
        seed: u64,
        mean_interarrival_ns: f64,
        requests: usize,
        mixes: Vec<ShapeMix>,
    ) -> Self {
        assert!(!mixes.is_empty(), "a load needs at least one shape mix");
        assert!(mean_interarrival_ns > 0.0, "inter-arrival mean must be positive");
        let total_weight = mixes.iter().map(|m| m.weight as u64).sum::<u64>().max(1);
        LoadGen { seed, mean_interarrival_ns, mixes, total_weight, remaining: requests, drawn: 0 }
    }

    /// The paper's Table 2 workload classes as a serving mix: one
    /// representative batch signature per tiling-strategy regime
    /// (small / medium / large / tall / wide / huge), weighted toward
    /// the small end the way inference traffic is.
    pub fn table2(seed: u64, mean_interarrival_ns: f64, requests: usize) -> Self {
        fn sig(shapes: &[GemmShape]) -> Arc<[GemmShape]> {
            shapes.into()
        }
        let mixes = vec![
            ShapeMix { name: "small", shapes: sig(&[GemmShape::new(32, 32, 64); 4]), weight: 30 },
            ShapeMix { name: "medium", shapes: sig(&[GemmShape::new(64, 64, 128); 3]), weight: 25 },
            ShapeMix { name: "large", shapes: sig(&[GemmShape::new(128, 128, 256); 2]), weight: 15 },
            ShapeMix { name: "tall", shapes: sig(&[GemmShape::new(256, 32, 64); 2]), weight: 12 },
            ShapeMix { name: "wide", shapes: sig(&[GemmShape::new(32, 256, 64); 2]), weight: 12 },
            ShapeMix { name: "huge", shapes: sig(&[GemmShape::new(256, 256, 512)]), weight: 6 },
        ];
        LoadGen::new(seed, mean_interarrival_ns, requests, mixes)
    }

    pub fn requests_remaining(&self) -> usize {
        self.remaining
    }

    /// Draw the next request: `(inter-arrival ns since the previous
    /// arrival, shape signature, data seed)`.
    fn next(&mut self) -> Option<(u64, Arc<[GemmShape]>, u64)> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let n = self.drawn;
        self.drawn += 1;
        let h_mix = mix(self.seed ^ 0xA076_1D64_78BD_642F ^ n.wrapping_mul(0xE703_7ED1_A0B4_28DB));
        let pick = h_mix % self.total_weight;
        let mut acc = 0u64;
        let mut shapes = self.mixes[0].shapes.clone();
        for m in &self.mixes {
            acc += m.weight as u64;
            if pick < acc {
                shapes = m.shapes.clone();
                break;
            }
        }
        // Exponential inter-arrival: invert a uniform draw built from
        // the hash's top 53 bits (offset half a ULP so ln never sees 0).
        let h_dt = mix(self.seed ^ 0x8EBC_6AF0_9C88_C6E3 ^ n.wrapping_mul(0x5899_65CC_7537_4CC3));
        let u = ((h_dt >> 11) as f64 + 0.5) / (1u64 << 53) as f64;
        let dt = (-u.ln() * self.mean_interarrival_ns).round().max(1.0) as u64;
        Some((dt, shapes, mix(self.seed ^ n)))
    }
}

// ---------------------------------------------------------------------------
// Outcomes + report
// ---------------------------------------------------------------------------

/// Per-request routing outcome — the decision payload the lockstep
/// suite compares against the threaded engine's `ClusterResult`s.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReqOutcome {
    /// Completed with a result (coordinated or degraded).
    Done { id: u64, device: usize, degraded: bool, stolen: bool, reroutes: u32 },
    /// Rejected at admission: no live device could plan the shapes.
    PlanRejected { id: u64 },
    /// Terminal failure (degraded-path panic).
    Failed { id: u64 },
}

/// What one engine run produced: the familiar [`ClusterStats`] plus the
/// engine-level figures the scaling sweep reports.
#[derive(Debug, Clone)]
pub struct EngineReport {
    pub stats: ClusterStats,
    /// Requests that entered the system (explicit submits + load).
    pub requests: usize,
    /// Events popped off the timeline over the run.
    pub events_processed: u64,
    /// Host wall seconds spent inside [`EventCluster::run`].
    pub wall_elapsed_s: f64,
    /// `events_processed / wall_elapsed_s` — the engine-throughput
    /// figure of merit for the scaling sweep.
    pub events_per_sec: f64,
    /// Requests that executed for real and were bitwise-checked.
    pub witnesses: usize,
    /// Witness results that diverged from `reference_result_exact`
    /// (must be 0; reported rather than panicked so a sweep surfaces
    /// the failure in its artifact).
    pub witness_mismatches: usize,
    /// Simulated timestamp of the last processed event.
    pub horizon: SimTime,
    /// Per-request outcomes when [`EventConfig::record_outcomes`] set.
    pub outcomes: Vec<ReqOutcome>,
    /// Completed placements when [`EventCluster::record_decisions`] was
    /// enabled — the offline calibrator's training trace.
    pub decisions: Vec<PlacementDecision>,
}

/// Why a placement attempt found no home (mirrors the threaded
/// `PlaceFail`).
struct PlaceFail {
    job: EvJob,
    any_full: bool,
    plan_err: Option<String>,
}

/// Outcome of the indexed fast path.
enum IndexedPlace {
    Placed(usize),
    /// No live device bid (all dead or every class failed to plan).
    NoCandidate { job: EvJob, plan_err: Option<String> },
    /// Best queue was full — retry with the exact spill-down scan.
    Fallback(EvJob),
}

// ---------------------------------------------------------------------------
// The engine
// ---------------------------------------------------------------------------

/// The discrete-event cluster engine. Single-threaded: construct,
/// enqueue work ([`submit_at`](Self::submit_at) / [`load`](Self::load)
/// / [`kill_at`](Self::kill_at)), then [`run`](Self::run) the timeline
/// to exhaustion.
/// `(arch class name, shape signature) → predicted µs` (or the
/// planner's rejection, memoized so a poisoned signature is not
/// re-planned per device).
type PredictionCache = HashMap<(&'static str, Arc<[GemmShape]>), Result<f64, String>>;

pub struct EventCluster {
    cfg: EventConfig,
    devices: Vec<EvDevice>,
    share: Arc<PlanShare>,
    timeline: Timeline<Ev>,
    obs: Option<Arc<Obs>>,
    clock: Option<Arc<SimClock>>,
    stats: ClusterInner,
    outcomes: Vec<ReqOutcome>,
    /// Engine-level prediction cache: one `session.plan` +
    /// `simulate_solution` per (arch class, shape signature); after
    /// that a placement across 10k devices costs `classes` hash
    /// lookups, not `devices` planner calls.
    predictions: PredictionCache,
    /// Device → arch-class index, and one representative device per
    /// class (predictions are identical within a class).
    class_of: Vec<usize>,
    class_rep: Vec<usize>,
    /// Per-class lazy min-heaps over `(backlog bits, device)`; stale
    /// entries are discarded by value on peek.
    index: Vec<BinaryHeap<Reverse<(u64, usize)>>>,
    /// Sticky: once any breaker trips, placement falls back to the
    /// exact scan so the open-window sidelining semantics stay
    /// bit-for-bit with the threaded engine.
    breaker_active: bool,
    /// Any device in the pool is multi-chiplet. With locality enabled
    /// such a pool always places through the exact scan: the index
    /// orders devices by backlog alone and cannot see the per-device
    /// residency penalty.
    has_chiplets: bool,
    gen: Option<LoadGen>,
    now: SimTime,
    next_job_id: u64,
    events_processed: u64,
    requests: usize,
    witnesses: usize,
    witness_mismatches: usize,
    /// Arrive events scheduled but not yet processed.
    pending_arrivals: usize,
    /// Requests admitted but not yet terminal.
    open_jobs: usize,
    /// "True silicon" specs for calibration recording runs
    /// ([`EventCluster::set_ground_truth`]); `None` (the default)
    /// charges predicted time at completion, keeping placement error
    /// zero by construction. Never serialized — ground-truth runs
    /// refuse to checkpoint.
    ground_truth: Option<GroundTruth>,
    /// Memoized true-arch execution time per (class name, signature);
    /// only populated under a ground-truth pool. Bypasses the SimMemo
    /// deliberately: drifted specs share names with their nominal
    /// presets, so the memo's context key cannot tell them apart.
    actuals: HashMap<(&'static str, Arc<[GemmShape]>), f64>,
    /// Raw (uncorrected) model prediction per (class name, signature) —
    /// what `predictions` held before the installed correction was
    /// applied; kept for [`PlacementDecision::model_us`].
    model_us: HashMap<(&'static str, Arc<[GemmShape]>), f64>,
    /// When `Some`, completions append a [`PlacementDecision`]
    /// ([`EventCluster::record_decisions`]). Never serialized.
    decisions: Option<Vec<PlacementDecision>>,
    /// Calibration-handle version the prediction cache was computed
    /// under; a mismatch on lookup clears the cache.
    calib_version: u64,
    /// Device sessions run [`BatchingPolicy::Swappable`]
    /// ([`EventCluster::swappable`]). Never serialized — the blob
    /// format carries no policy, so swappable engines refuse to
    /// checkpoint.
    swappable: bool,
}

impl EventCluster {
    pub fn new(pool: Vec<ArchSpec>, cfg: EventConfig) -> Self {
        let n = pool.len();
        EventCluster::with_faults(pool, cfg, vec![None; n])
    }

    pub fn with_faults(
        pool: Vec<ArchSpec>,
        cfg: EventConfig,
        faults: Vec<Option<Arc<FaultInjector>>>,
    ) -> Self {
        EventCluster::build(pool, cfg, faults, None, None, false)
    }

    /// Build with a fresh [`SimClock`]-backed [`Obs`] installed; the
    /// engine steps the clock as it pops the heap, so the returned bus
    /// records a deterministic trace in simulated time.
    pub fn with_instrumentation(
        pool: Vec<ArchSpec>,
        cfg: EventConfig,
        faults: Vec<Option<Arc<FaultInjector>>>,
    ) -> (Self, Arc<Obs>) {
        let clock = Arc::new(SimClock::new());
        let obs = Arc::new(Obs::sim(Arc::clone(&clock)));
        let eng =
            EventCluster::build(pool, cfg, faults, Some(Arc::clone(&obs)), Some(clock), false);
        (eng, obs)
    }

    /// Build with every device session on the
    /// [`BatchingPolicy::Swappable`] policy — the hot-swap seam ctb-calib
    /// installs retrained selectors through. At calibration version 0
    /// (nothing installed) a swappable session plans bit-for-bit like
    /// the default best-of-both engine, so before/after comparisons stay
    /// apples-to-apples. Pass `instrument: true` to also get the
    /// [`SimClock`]-backed [`Obs`] bus the record pass feeds the
    /// calibrator. Swappable engines are runtime-only: they refuse to
    /// checkpoint (the blob format does not carry the policy, so a
    /// restored engine could not replay the same planning fingerprints).
    pub fn swappable(
        pool: Vec<ArchSpec>,
        cfg: EventConfig,
        instrument: bool,
    ) -> (Self, Option<Arc<Obs>>) {
        let n = pool.len();
        let (obs, clock) = if instrument {
            let clock = Arc::new(SimClock::new());
            (Some(Arc::new(Obs::sim(Arc::clone(&clock)))), Some(clock))
        } else {
            (None, None)
        };
        let eng = EventCluster::build(pool, cfg, vec![None; n], obs.clone(), clock, true);
        (eng, obs)
    }

    fn build(
        pool: Vec<ArchSpec>,
        cfg: EventConfig,
        faults: Vec<Option<Arc<FaultInjector>>>,
        obs: Option<Arc<Obs>>,
        clock: Option<Arc<SimClock>>,
        swappable: bool,
    ) -> Self {
        assert!(!pool.is_empty(), "a cluster needs at least one device");
        assert_eq!(pool.len(), faults.len(), "one fault schedule slot per device");
        let share = Arc::new(PlanShare::with_config(cfg.share));
        let mut class_names: Vec<&'static str> = Vec::new();
        let mut class_of = Vec::with_capacity(pool.len());
        let mut class_rep = Vec::new();
        let devices: Vec<EvDevice> = pool
            .into_iter()
            .zip(faults)
            .enumerate()
            .map(|(id, (arch, fault))| {
                let class = match class_names.iter().position(|n| *n == arch.name) {
                    Some(c) => c,
                    None => {
                        class_names.push(arch.name);
                        class_rep.push(id);
                        class_names.len() - 1
                    }
                };
                class_of.push(class);
                let fw = if swappable {
                    Framework::with_config(
                        arch,
                        FrameworkConfig {
                            batching: BatchingPolicy::Swappable,
                            ..FrameworkConfig::default()
                        },
                    )
                } else {
                    Framework::new(arch)
                };
                let s = Session::with_share(fw, Arc::clone(&share));
                let session = Arc::new(match &obs {
                    Some(o) => s.with_obs(Arc::clone(o)),
                    None => s,
                });
                EvDevice {
                    id,
                    session,
                    queue: BoundedQueue::new(cfg.queue_capacity),
                    running: None,
                    backlog_us: 0.0,
                    busy_sim_us: 0.0,
                    alive: true,
                    breaker: Breaker::new(cfg.breaker.clone()),
                    fault,
                    placements: 0,
                    completed: 0,
                    steals: 0,
                    reroutes_out: 0,
                    breaker_trips: 0,
                    steal_pending: false,
                    probe_pending: false,
                }
            })
            .collect();
        // Seed every class heap with the all-idle state so the indexed
        // path sees the whole pool from the first placement.
        let mut index: Vec<BinaryHeap<Reverse<(u64, usize)>>> =
            (0..class_rep.len()).map(|_| BinaryHeap::new()).collect();
        for (id, class) in class_of.iter().enumerate() {
            index[*class].push(Reverse((0u64, id)));
        }
        let has_chiplets = devices.iter().any(|d| !d.arch().topology.is_unified());
        EventCluster {
            cfg,
            devices,
            share,
            timeline: Timeline::new(),
            obs,
            clock,
            stats: ClusterInner::default(),
            outcomes: Vec::new(),
            predictions: HashMap::new(),
            class_of,
            class_rep,
            index,
            breaker_active: false,
            has_chiplets,
            gen: None,
            now: SimTime::ZERO,
            next_job_id: 0,
            events_processed: 0,
            requests: 0,
            witnesses: 0,
            witness_mismatches: 0,
            pending_arrivals: 0,
            open_jobs: 0,
            ground_truth: None,
            actuals: HashMap::new(),
            model_us: HashMap::new(),
            decisions: None,
            calib_version: 0,
            swappable,
        }
    }

    pub fn devices(&self) -> usize {
        self.devices.len()
    }

    pub fn share(&self) -> &Arc<PlanShare> {
        &self.share
    }

    pub fn observer(&self) -> Option<&Arc<Obs>> {
        self.obs.as_ref()
    }

    /// Attach a "true silicon" pool for a calibration recording run:
    /// placement keeps predicting with the nominal analytical model,
    /// but completions charge the time the planned kernel takes on the
    /// drifted spec — so `mean_abs_placement_err_us` measures real
    /// model error instead of being zero by construction. Ground-truth
    /// runs cannot be checkpointed ([`checkpoint`](Self::checkpoint)
    /// panics): the pool is runtime-only state.
    pub fn set_ground_truth(&mut self, truth: GroundTruth) {
        self.ground_truth = Some(truth);
    }

    /// Record one [`PlacementDecision`] per completed request into the
    /// next [`EngineReport`] — the offline calibrator's training trace.
    /// Recording runs cannot be checkpointed.
    pub fn record_decisions(&mut self, on: bool) {
        self.decisions = if on { Some(Vec::new()) } else { None };
    }

    /// Schedule one request to arrive at `at`. Returns its job id.
    pub fn submit_at(&mut self, at: SimTime, shapes: Arc<[GemmShape]>, seed: u64) -> u64 {
        let id = self.next_job_id;
        self.next_job_id += 1;
        let witness = self.is_witness(id);
        let job = EvJob {
            id,
            shapes,
            seed,
            arrived: at,
            predicted_us: 0.0,
            attempts: 0,
            stolen: false,
            witness,
        };
        self.pending_arrivals += 1;
        self.timeline.schedule(at, Ev::Arrive { job });
        id
    }

    /// Schedule a device kill at `at` (chaos schedules / sweeps).
    pub fn kill_at(&mut self, at: SimTime, device: usize) {
        assert!(device < self.devices.len(), "no such device");
        self.timeline.schedule(at, Ev::DeviceKill { device });
    }

    /// Attach an open-loop load. Its first arrival is scheduled
    /// relative to the current sim time, and each processed arrival
    /// schedules the next — the heap never holds more than one pending
    /// generated arrival.
    pub fn load(&mut self, mut gen: LoadGen) {
        if let Some((dt, shapes, seed)) = gen.next() {
            let at = self.now.plus(dt);
            self.submit_at(at, shapes, seed);
        }
        self.gen = Some(gen);
    }

    fn is_witness(&self, id: u64) -> bool {
        match self.cfg.witness_every {
            0 => false,
            k => id.is_multiple_of(k as u64),
        }
    }

    fn work_pending(&self) -> bool {
        self.pending_arrivals > 0
            || self.open_jobs > 0
            || self.gen.as_ref().is_some_and(|g| g.requests_remaining() > 0)
    }

    fn obs(&self) -> Option<&Obs> {
        self.obs.as_deref()
    }

    /// Process the next pending event. Returns `false` when the
    /// timeline is exhausted. Between any two calls the engine sits at
    /// an *event boundary* — the granularity [`checkpoint`](Self::checkpoint)
    /// snapshots at.
    pub fn step(&mut self) -> bool {
        let Some((t, ev)) = self.timeline.pop() else {
            return false;
        };
        debug_assert!(t >= self.now, "timeline popped out of order");
        self.now = t;
        if let Some(c) = &self.clock {
            c.advance_to(t.as_us());
        }
        self.events_processed += 1;
        self.dispatch(ev);
        true
    }

    /// Process at most `max` events; returns how many actually ran
    /// (fewer only when the timeline drained first).
    pub fn run_steps(&mut self, max: u64) -> u64 {
        let mut n = 0;
        while n < max && self.step() {
            n += 1;
        }
        n
    }

    /// Run the timeline to exhaustion and report.
    pub fn run(&mut self) -> EngineReport {
        let t0 = Instant::now();
        while self.step() {}
        self.report_with_wall(t0.elapsed().as_secs_f64())
    }

    /// Assemble the report for the work processed so far without
    /// running anything — the partial-run counterpart of [`run`](Self::run)
    /// (host-throughput figures read 0; there was no timed run).
    /// Drains the recorded outcomes, like `run` does.
    pub fn report(&mut self) -> EngineReport {
        self.report_with_wall(0.0)
    }

    fn report_with_wall(&mut self, wall: f64) -> EngineReport {
        EngineReport {
            stats: self.stats_snapshot(),
            requests: self.requests,
            events_processed: self.events_processed,
            wall_elapsed_s: wall,
            events_per_sec: if wall > 0.0 { self.events_processed as f64 / wall } else { 0.0 },
            witnesses: self.witnesses,
            witness_mismatches: self.witness_mismatches,
            horizon: self.now,
            outcomes: std::mem::take(&mut self.outcomes),
            decisions: self.decisions.as_mut().map(std::mem::take).unwrap_or_default(),
        }
    }

    /// Point-in-time [`ClusterStats`] in the threaded vocabulary.
    pub fn stats_snapshot(&self) -> ClusterStats {
        let mut devices: Vec<DeviceStats> = self.devices.iter().map(EvDevice::snapshot).collect();
        let makespan = devices.iter().map(|d| d.busy_sim_us).fold(0.0, f64::max);
        for d in &mut devices {
            d.utilization = if makespan > 0.0 { d.busy_sim_us / makespan } else { 0.0 };
        }
        let mut plan_cache = CacheStats::default();
        for dev in &self.devices {
            let s = dev.session.stats();
            plan_cache.hits += s.hits;
            plan_cache.misses += s.misses;
        }
        let memo = self.share.sim_memo();
        let sim_memo = CacheStats { hits: memo.hits(), misses: memo.misses() };
        self.stats.snapshot(devices, plan_cache, sim_memo)
    }

    // -- event dispatch ---------------------------------------------------

    fn dispatch(&mut self, ev: Ev) {
        match ev {
            Ev::Arrive { job } => self.on_arrive(job),
            Ev::PlaceDone { job } => self.on_place(job),
            Ev::ExecDone { device } => self.on_exec_done(device),
            Ev::StealCheck { device } => self.on_steal_check(device),
            Ev::BreakerProbe { device } => self.on_breaker_probe(device),
            Ev::DeviceKill { device } => self.on_kill(device),
        }
    }

    fn on_arrive(&mut self, job: EvJob) {
        self.pending_arrivals -= 1;
        self.open_jobs += 1;
        self.requests += 1;
        // Admit is traced before placement, mirroring the threaded
        // submit path's ordering contract.
        if let Some(o) = self.obs() {
            o.point(PointKind::Admit { req: job.id });
        }
        // Keep the open-loop source primed: one pending generated
        // arrival at a time.
        if let Some(mut gen) = self.gen.take() {
            let next = gen.next();
            self.gen = Some(gen);
            if let Some((dt, shapes, seed)) = next {
                let at = self.now.plus(dt);
                self.submit_at(at, shapes, seed);
            }
        }
        self.timeline.schedule(self.now, Ev::PlaceDone { job });
    }

    fn on_place(&mut self, job: EvJob) {
        let id = job.id;
        match self.place_attempt(job, None) {
            Ok(device) => {
                self.stats.submitted.fetch_add(1, Ordering::Relaxed);
                self.maybe_start(device);
            }
            Err(fail) if fail.any_full => {
                // Backpressure: every candidate queue is full. The
                // threaded submit loop sleeps 50 µs and retries; we
                // reschedule the placement the same distance out.
                self.timeline.schedule(self.now.plus(BACKOFF_NS), Ev::PlaceDone { job: fail.job });
            }
            Err(fail) => {
                if fail.plan_err.is_some() {
                    if let Some(o) = self.obs() {
                        o.point(PointKind::Reject { req: Some(id) });
                    }
                    self.open_jobs -= 1;
                    if self.cfg.record_outcomes {
                        self.outcomes.push(ReqOutcome::PlanRejected { id });
                    }
                    return;
                }
                // No live device at all: degraded inline, like the
                // threaded submit path.
                self.stats.submitted.fetch_add(1, Ordering::Relaxed);
                self.degrade_inline(fail.job);
            }
        }
    }

    fn on_exec_done(&mut self, device: usize) {
        let Some(Running { job, fate }) = self.devices[device].running.take() else {
            return;
        };
        match fate {
            Fate::Complete => self.complete_job(device, job),
            Fate::PlanFailed => {
                self.stats.plan_failures.fetch_add(1, Ordering::Relaxed);
                if let Some(o) = self.obs() {
                    o.point(PointKind::PlanFailure);
                }
                self.fail_and_reroute(device, job);
            }
            Fate::Panicked => {
                self.stats.worker_panics.fetch_add(1, Ordering::Relaxed);
                if let Some(o) = self.obs() {
                    o.point(PointKind::PanicCaught);
                    o.dump_flight("worker panic");
                }
                self.fail_and_reroute(device, job);
            }
        }
        self.maybe_start(device);
        self.maybe_schedule_steal(device);
    }

    fn on_steal_check(&mut self, thief_idx: usize) {
        self.devices[thief_idx].steal_pending = false;
        let thief = &self.devices[thief_idx];
        if !thief.alive || thief.breaker.is_open() || !thief.idle() {
            return;
        }
        if self.try_steal(thief_idx) {
            // Busy now; the next idle transition re-arms the check.
            return;
        }
        self.maybe_schedule_steal(thief_idx);
    }

    fn on_breaker_probe(&mut self, device: usize) {
        self.devices[device].probe_pending = false;
        if !self.devices[device].alive {
            return;
        }
        if self.devices[device].breaker.is_open() {
            // Still serving the open window: probe again later.
            if self.work_pending() {
                self.devices[device].probe_pending = true;
                self.timeline.schedule(self.now.plus(PROBE_NS), Ev::BreakerProbe { device });
            }
            return;
        }
        // Healed: an idle recovered device goes back to stealing.
        self.maybe_schedule_steal(device);
    }

    fn on_kill(&mut self, device: usize) {
        if !self.devices[device].alive {
            return; // already dead
        }
        self.devices[device].alive = false;
        self.stats.kills.fetch_add(1, Ordering::Relaxed);
        if let Some(o) = self.obs() {
            o.point(PointKind::Kill { device });
        }
        // Mirror the threaded kill: close the queue, then re-route
        // everything that was waiting. A job mid-execution finishes
        // normally (its ExecDone is already on the heap).
        self.devices[device].queue.close();
        self.drain_and_reroute(device);
    }

    // -- placement --------------------------------------------------------

    /// Memoized prediction for `shapes` on device `dev_idx`'s arch
    /// class — the same plan + `simulate_solution` number the threaded
    /// `predict_us` computes, shared across all devices of the class.
    fn predict_cached(&mut self, dev_idx: usize, shapes: &Arc<[GemmShape]>) -> Result<f64, String> {
        // Cached values include the installed correction, so a profile
        // install (version bump on the share's CalibHandle) invalidates
        // the whole cache.
        let version = self.share.calib().version();
        if version != self.calib_version {
            self.predictions.clear();
            self.calib_version = version;
        }
        let class = self.class_of[dev_idx];
        let rep = self.class_rep[class];
        let name = self.devices[rep].arch().name;
        if let Some(r) = self.predictions.get(&(name, Arc::clone(shapes))) {
            return r.clone();
        }
        let session = &self.devices[rep].session;
        let raw = session.plan(shapes).map(|plan| {
            let fw = session.framework();
            session.sim_memo().simulate_solution(
                fw.arch(),
                shapes,
                &plan.solution,
                plan.heuristic,
                fw.thresholds(),
            )
        });
        let r = match raw {
            Ok(model) => {
                self.model_us.insert((name, Arc::clone(shapes)), model);
                // Identity state (version 0) returns `model` bit-for-bit.
                Ok(self.share.calib().correct(name, model, &ctb_core::selector::features(shapes)))
            }
            Err(e) => Err(e),
        };
        self.predictions.insert((name, Arc::clone(shapes)), r.clone());
        r
    }

    fn use_index(&self, exclude: Option<usize>) -> bool {
        if self.breaker_active || exclude.is_some() {
            return false;
        }
        // Locality-aware placement over a chiplet pool needs the full
        // slate: the penalty depends on which device holds the operands,
        // which the backlog-keyed class index cannot express.
        if self.cfg.locality.enabled && self.has_chiplets {
            return false;
        }
        match self.cfg.placement {
            PlacementMode::Exact => false,
            PlacementMode::Indexed => true,
            PlacementMode::Auto => self.devices.len() >= 64,
        }
    }

    fn index_key(&self, device: usize) -> u64 {
        // Backlogs are clamped non-negative, and non-negative IEEE
        // doubles order identically to their bit patterns.
        self.devices[device].backlog().to_bits()
    }

    /// Record `device`'s current backlog in its class heap (lazy
    /// invalidation: older entries for the device go stale by value).
    fn index_touch(&mut self, device: usize) {
        let class = self.class_of[device];
        let key = self.index_key(device);
        self.index[class].push(Reverse((key, device)));
    }

    /// One placement attempt. The exact path mirrors the threaded
    /// `try_place` line for line; the indexed path short-circuits the
    /// scan with per-class argmins, which pick the same device whenever
    /// no breaker is open and the best queue is not full — and fall
    /// back to the exact scan otherwise. Returns the placed-on device.
    fn place_attempt(
        &mut self,
        job: EvJob,
        exclude: Option<usize>,
    ) -> Result<usize, Box<PlaceFail>> {
        if self.use_index(exclude) {
            match self.place_indexed(job) {
                IndexedPlace::Placed(d) => return Ok(d),
                IndexedPlace::NoCandidate { job, plan_err } => {
                    return Err(Box::new(PlaceFail { job, any_full: false, plan_err }))
                }
                IndexedPlace::Fallback(job) => return self.place_exact(job, exclude),
            }
        }
        self.place_exact(job, exclude)
    }

    /// Indexed argmin placement: peek each class heap's valid head
    /// (same within-class order as the global ranking, because the
    /// predicted time is constant within a class), then compare class
    /// winners with the identical completion-then-id ordering.
    fn place_indexed(&mut self, mut job: EvJob) -> IndexedPlace {
        let obs_arc = self.obs.clone();
        let _place = obs_arc.as_ref().map(|o| o.span(SpanKind::Place));
        let shapes = job.shapes.clone();
        let sig = ctb_core::shape_sig_hash(&shapes);
        let op_bytes = ctb_core::operand_bytes(&shapes);
        let mut plan_err: Option<String> = None;
        let mut best: Option<Candidate> = None;
        for class in 0..self.class_rep.len() {
            let rep = self.class_rep[class];
            let predicted_us = match self.predict_cached(rep, &shapes) {
                Ok(v) => v,
                Err(m) => {
                    plan_err = Some(m);
                    continue;
                }
            };
            // Discard stale heads, then peek the class argmin.
            let head = loop {
                let Some(&Reverse((key, device))) = self.index[class].peek() else {
                    break None;
                };
                if self.devices[device].alive && self.index_key(device) == key {
                    break Some((key, device));
                }
                self.index[class].pop();
            };
            let Some((key, device)) = head else { continue };
            // `use_index` keeps this path off locality-relevant pools,
            // so the penalty here is identically zero.
            let cand =
                Candidate { device, backlog_us: f64::from_bits(key), predicted_us, penalty_us: 0.0 };
            let better = match &best {
                None => true,
                Some(b) => cand
                    .completion_us()
                    .total_cmp(&b.completion_us())
                    .then(cand.device.cmp(&b.device))
                    .is_lt(),
            };
            if better {
                best = Some(cand);
            }
        }
        let Some(c) = best else {
            return IndexedPlace::NoCandidate { job, plan_err };
        };
        job.predicted_us = c.predicted_us;
        self.devices[c.device].backlog_us += c.predicted_us;
        match self.devices[c.device].queue.try_push(job) {
            Ok(()) => {
                self.finish_placement(c.device, sig, op_bytes);
                IndexedPlace::Placed(c.device)
            }
            Err((_kind, j)) => {
                self.devices[c.device].backlog_us -= c.predicted_us;
                IndexedPlace::Fallback(j)
            }
        }
    }

    /// The exact scan — a line-for-line mirror of the threaded
    /// `try_place`, with predictions served from the class cache.
    fn place_exact(
        &mut self,
        mut job: EvJob,
        exclude: Option<usize>,
    ) -> Result<usize, Box<PlaceFail>> {
        let obs_arc = self.obs.clone();
        let _place = obs_arc.as_ref().map(|o| o.span(SpanKind::Place));
        let shapes = job.shapes.clone();
        // One residency snapshot per placement slate, read before any
        // candidate is scored — the same read-once discipline as the
        // threaded `try_place`, so both engines rank from identical
        // residency state.
        let sig = ctb_core::shape_sig_hash(&shapes);
        let op_bytes = ctb_core::operand_bytes(&shapes);
        let home = self.share.residency_of(sig);
        let mut candidates = Vec::with_capacity(self.devices.len());
        let mut plan_err = None;
        for i in 0..self.devices.len() {
            if Some(i) == exclude || !self.devices[i].alive {
                continue;
            }
            match self.predict_cached(i, &shapes) {
                Ok(predicted_us) => candidates.push(Candidate {
                    device: i,
                    backlog_us: self.devices[i].backlog(),
                    predicted_us,
                    penalty_us: self.locality_penalty(i, home, op_bytes),
                }),
                Err(m) => plan_err = Some(m),
            }
        }
        if candidates.is_empty() {
            return Err(Box::new(PlaceFail { job, any_full: false, plan_err }));
        }
        let all_open = candidates.iter().all(|c| self.devices[c.device].breaker.is_open());
        let candidates = placer::rank(candidates);
        let mut any_full = false;
        for c in &candidates {
            if !all_open && self.devices[c.device].breaker.consume_open() {
                continue;
            }
            job.predicted_us = c.predicted_us;
            self.devices[c.device].backlog_us += c.predicted_us;
            match self.devices[c.device].queue.try_push(job) {
                Ok(()) => {
                    self.finish_placement(c.device, sig, op_bytes);
                    return Ok(c.device);
                }
                Err((kind, j)) => {
                    self.devices[c.device].backlog_us -= c.predicted_us;
                    any_full |= kind == PushError::Full;
                    job = j;
                }
            }
        }
        Err(Box::new(PlaceFail { job, any_full, plan_err: None }))
    }

    fn finish_placement(&mut self, device: usize, sig: u64, op_bytes: u64) {
        self.devices[device].placements += 1;
        self.stats.routed.fetch_add(1, Ordering::Relaxed);
        if let Some(o) = self.obs() {
            o.point(PointKind::Routed { device });
        }
        self.account_residency(device, sig, op_bytes);
        self.index_touch(device);
    }

    /// The locality routing penalty for placing this batch on `device`,
    /// given the residency snapshot `home` — a mirror of the threaded
    /// engine's `locality_penalty`. Zero for the resident device, for
    /// monolithic topologies, and under a blind policy; never folded
    /// into `predicted_us`.
    fn locality_penalty(&self, device: usize, home: Option<OperandHome>, op_bytes: u64) -> f64 {
        if !self.cfg.locality.enabled {
            return 0.0;
        }
        if home.is_some_and(|h| h.device == device) {
            return 0.0;
        }
        let topo = &self.devices[device].arch().topology;
        ctb_sim::locality_penalty_us(topo, ctb_sim::remote_operand_bytes(topo, op_bytes))
    }

    /// Residency accounting at a landing (placement or steal): hit when
    /// the batch's operands already live on `device`, otherwise a miss
    /// that charges the remote share of the operand bytes and re-homes
    /// the signature on `device` (last writer wins). Runs under aware
    /// *and* blind policies — the bench arms differ only in ranking.
    fn account_residency(&mut self, device: usize, sig: u64, op_bytes: u64) {
        let topo = self.devices[device].arch().topology;
        if self.share.residency_of(sig).is_some_and(|h| h.device == device) {
            self.stats.residency_hits.fetch_add(1, Ordering::Relaxed);
            if let Some(o) = self.obs() {
                o.point(PointKind::ResidencyHit { device });
            }
            return;
        }
        self.stats.residency_misses.fetch_add(1, Ordering::Relaxed);
        self.stats
            .remote_operand_bytes
            .fetch_add(ctb_sim::remote_operand_bytes(&topo, op_bytes), Ordering::Relaxed);
        if let Some(o) = self.obs() {
            o.point(PointKind::ResidencyMiss { device });
        }
        self.share.note_residency(sig, OperandHome { device, chiplet: topo.home_chiplet(sig) });
    }

    // -- execution --------------------------------------------------------

    /// If `device` is idle and has queued work, start its front job.
    fn maybe_start(&mut self, device: usize) {
        if self.devices[device].running.is_some() {
            return;
        }
        let Some(job) = self.devices[device].queue.try_pop() else {
            return;
        };
        self.start_job(device, job);
    }

    /// Roll the job's fate (threaded worker order: slow stall → plan
    /// failure → exec panic) and schedule its `ExecDone`.
    fn start_job(&mut self, device: usize, job: EvJob) {
        let dev = &self.devices[device];
        // Injected worker stall: the threaded engine sleeps wall time;
        // here the stall is sim time ahead of the work.
        let stall_ns = match &dev.fault {
            Some(f) => {
                f.roll_slow().map(|d| d.as_nanos().min(u128::from(u64::MAX)) as u64).unwrap_or(0)
            }
            None => 0,
        };
        let fate = if dev.roll(FaultSite::PlanFail) {
            Fate::PlanFailed
        } else if dev.roll(FaultSite::ExecPanic) {
            Fate::Panicked
        } else {
            Fate::Complete
        };
        let exec_ns = match fate {
            // Never zero, so a completion cannot share its timestamp
            // with the placement that caused it. Under a ground-truth
            // pool the device occupies its true (drifted) time, not the
            // predicted one.
            Fate::Complete => {
                let us = self.charged_us(device, &job);
                ((us * 1_000.0).round() as u64).max(1)
            }
            // Failures surface almost immediately; the threaded engine
            // charges no simulated time for them either.
            Fate::PlanFailed | Fate::Panicked => 1,
        };
        let done = self.now.plus(stall_ns + exec_ns);
        self.devices[device].running = Some(Running { job, fate });
        self.timeline.schedule(done, Ev::ExecDone { device });
    }

    /// The simulated time a completing job occupies `device`: the
    /// placer's prediction normally (zero placement error by
    /// construction), the true-arch simulation when a ground-truth pool
    /// is attached.
    fn charged_us(&mut self, device: usize, job: &EvJob) -> f64 {
        if self.ground_truth.is_none() {
            return job.predicted_us;
        }
        self.actual_us(device, &job.shapes)
    }

    /// Memoized "what the true silicon takes" for `shapes` on
    /// `device`'s arch class. Simulates the *planned* kernel directly on
    /// the drifted spec — deliberately outside the SimMemo, whose
    /// context key is the arch name and so cannot distinguish nominal
    /// from drifted. Classes the pool does not drift charge the nominal
    /// simulation (the model is their truth).
    fn actual_us(&mut self, device: usize, shapes: &Arc<[GemmShape]>) -> f64 {
        let class = self.class_of[device];
        let rep = self.class_rep[class];
        let name = self.devices[rep].arch().name;
        if let Some(&us) = self.actuals.get(&(name, Arc::clone(shapes))) {
            return us;
        }
        let plan = self.devices[rep]
            .session
            .plan(shapes)
            .expect("ground-truth timing is only charged for placed jobs, whose plan is warm");
        let truth = self.ground_truth.as_ref().expect("checked by charged_us");
        let spec = truth.spec(name).unwrap_or_else(|| self.devices[rep].arch());
        let us =
            ctb_sim::simulate(spec, &ctb_sim::LaunchSequence::Single(plan.kernel.clone())).total_us;
        self.actuals.insert((name, Arc::clone(shapes)), us);
        us
    }

    /// Coordinated completion. Witnesses execute for real and are
    /// bitwise-checked; everyone else completes by accounting, charging
    /// the simulated time the placer predicted — which is the identical
    /// number `SimReport::total_us` would report, because both read the
    /// same memo entry. That shared source of truth is why
    /// `mean_abs_placement_err_us` stays 0 on both engines. A
    /// ground-truth pool replaces only the *charged time* with the
    /// true-arch simulation (making the error real); witness execution
    /// and its bitwise check are timing-independent and unchanged.
    fn complete_job(&mut self, device: usize, job: EvJob) {
        let model_time = if job.witness {
            self.witnesses += 1;
            let batch = GemmBatch::random(&job.shapes, WITNESS_ALPHA, WITNESS_BETA, job.seed);
            // Plan first (warm cache), then the Exec span — the same
            // span order the threaded worker produces.
            let plan = self.devices[device]
                .session
                .plan(&batch.shapes)
                .expect("witness plan is warm: placement already planned this signature");
            let obs_arc = self.obs.clone();
            let guard = obs_arc.as_ref().map(|o| o.span(SpanKind::Exec));
            let (results, report) = self.devices[device].session.framework().execute(&batch, &plan);
            if let Some(g) = guard {
                g.finish();
            }
            let oracle = batch.reference_result_exact();
            if bitwise_mismatch(&oracle, &results).is_some() {
                self.witness_mismatches += 1;
            }
            report.total_us
        } else {
            if let Some(o) = self.obs() {
                o.span(SpanKind::Exec).finish();
            }
            job.predicted_us
        };
        let executed_us = if self.ground_truth.is_some() {
            self.actual_us(device, &job.shapes)
        } else {
            model_time
        };
        if let Some(log) = &mut self.decisions {
            let name = self.devices[device].arch().name;
            log.push(PlacementDecision {
                id: job.id,
                device,
                arch: name,
                shapes: Arc::clone(&job.shapes),
                model_us: self
                    .model_us
                    .get(&(name, Arc::clone(&job.shapes)))
                    .copied()
                    .unwrap_or(job.predicted_us),
                predicted_us: job.predicted_us,
                actual_us: executed_us,
            });
        }
        let dev = &mut self.devices[device];
        dev.breaker.record_success();
        dev.backlog_us -= job.predicted_us;
        dev.busy_sim_us += executed_us;
        dev.completed += 1;
        self.stats.completed.fetch_add(1, Ordering::Relaxed);
        self.stats.record_placement_err(job.predicted_us, executed_us);
        let wall_us = self.now.as_ns().saturating_sub(job.arrived.as_ns()) as f64 / 1_000.0;
        self.stats.record_latency(wall_us);
        if let Some(o) = self.obs() {
            o.point(PointKind::BatchDone { req: job.id, device, degraded: false, abandoned: false });
        }
        self.open_jobs -= 1;
        if self.cfg.record_outcomes {
            self.outcomes.push(ReqOutcome::Done {
                id: job.id,
                device,
                degraded: false,
                stolen: job.stolen,
                reroutes: job.attempts,
            });
        }
        self.index_touch(device);
    }

    /// Threaded `fail_and_reroute`, verbatim order: charge the breaker
    /// (a trip drains the queue onto survivors *before* this job
    /// moves), release the backlog, then re-route the failing job.
    fn fail_and_reroute(&mut self, device: usize, job: EvJob) {
        if self.devices[device].breaker.record_failure() {
            self.devices[device].breaker_trips += 1;
            self.stats.breaker_trips.fetch_add(1, Ordering::Relaxed);
            self.breaker_active = true;
            if let Some(o) = self.obs() {
                o.point(PointKind::BreakerTrip);
                o.dump_flight("breaker trip");
            }
            self.drain_and_reroute(device);
            if !self.devices[device].probe_pending && self.work_pending() {
                self.devices[device].probe_pending = true;
                self.timeline.schedule(self.now.plus(PROBE_NS), Ev::BreakerProbe { device });
            }
        }
        self.devices[device].backlog_us -= job.predicted_us;
        self.index_touch(device);
        self.reroute(job, device);
    }

    fn drain_and_reroute(&mut self, device: usize) {
        while let Some(job) = self.devices[device].queue.try_pop() {
            self.devices[device].backlog_us -= job.predicted_us;
            self.reroute(job, device);
        }
        self.index_touch(device);
    }

    fn reroute(&mut self, mut job: EvJob, from: usize) {
        job.attempts += 1;
        self.stats.reroutes.fetch_add(1, Ordering::Relaxed);
        self.devices[from].reroutes_out += 1;
        if let Some(o) = self.obs() {
            o.point(PointKind::Reroute { from });
        }
        if job.attempts > self.cfg.max_reroutes {
            self.degrade_inline(job);
            return;
        }
        match self.place_attempt(job, Some(from)) {
            Ok(device) => self.maybe_start(device),
            Err(fail) => self.degrade_inline(fail.job),
        }
    }

    /// Terminal fallback, mirroring the threaded `degrade_inline`: the
    /// strongest live device's architecture parametrises the baseline;
    /// only witnesses actually run it (degraded results are bitwise-
    /// exact too, so the sample proves the path).
    fn degrade_inline(&mut self, job: EvJob) {
        let donor = self.devices.iter().find(|d| d.alive).map_or(0, |d| d.id);
        let inject = self.devices[donor].roll(FaultSite::DegradedPanic);
        let obs_arc = self.obs.clone();
        let guard = obs_arc.as_ref().map(|o| o.span(SpanKind::DegradedExec));
        if inject {
            // The injected baseline panic: span closed first, then the
            // caught-panic bookkeeping, then the terminal Failed event
            // — the threaded engine's exact tail.
            if let Some(g) = guard {
                g.finish();
            }
            self.stats.worker_panics.fetch_add(1, Ordering::Relaxed);
            if let Some(o) = self.obs() {
                o.point(PointKind::PanicCaught);
                o.dump_flight("degraded worker panic");
                o.point(PointKind::Failed { req: job.id, abandoned: false });
            }
            self.open_jobs -= 1;
            if self.cfg.record_outcomes {
                self.outcomes.push(ReqOutcome::Failed { id: job.id });
            }
            return;
        }
        if job.witness {
            self.witnesses += 1;
            let batch = GemmBatch::random(&job.shapes, WITNESS_ALPHA, WITNESS_BETA, job.seed);
            let results = ctb_baselines::default_functional(self.devices[donor].arch(), &batch);
            let oracle = batch.reference_result_exact();
            if bitwise_mismatch(&oracle, &results).is_some() {
                self.witness_mismatches += 1;
            }
        }
        if let Some(g) = guard {
            g.finish();
        }
        let wall_us = self.now.as_ns().saturating_sub(job.arrived.as_ns()) as f64 / 1_000.0;
        self.stats.completed.fetch_add(1, Ordering::Relaxed);
        self.stats.degraded.fetch_add(1, Ordering::Relaxed);
        self.stats.record_latency(wall_us);
        if let Some(o) = self.obs() {
            o.point(PointKind::BatchDone {
                req: job.id,
                device: donor,
                degraded: true,
                abandoned: false,
            });
        }
        self.open_jobs -= 1;
        if self.cfg.record_outcomes {
            self.outcomes.push(ReqOutcome::Done {
                id: job.id,
                device: donor,
                degraded: true,
                stolen: job.stolen,
                reroutes: job.attempts,
            });
        }
    }

    // -- stealing ---------------------------------------------------------

    fn maybe_schedule_steal(&mut self, device: usize) {
        if !self.cfg.steal.enabled {
            return;
        }
        let dev = &self.devices[device];
        if !dev.alive || !dev.idle() || dev.steal_pending || !self.work_pending() {
            return;
        }
        let poll_ns = self.cfg.steal.poll.as_nanos().min(u128::from(u64::MAX)) as u64;
        self.devices[device].steal_pending = true;
        self.timeline.schedule(self.now.plus(poll_ns.max(1)), Ev::StealCheck { device });
    }

    /// The threaded `try_steal`, event-shaped: victim selection, the
    /// `steal_beneficial` test, and the identity-checked claim all run
    /// through the same seams.
    fn try_steal(&mut self, thief_idx: usize) -> bool {
        let mut victim: Option<(usize, f64)> = None;
        for dev in &self.devices {
            if dev.id == thief_idx || !dev.alive || dev.queue.is_empty() {
                continue;
            }
            let backlog = dev.backlog();
            if backlog >= self.cfg.steal.min_victim_backlog_us
                && victim.is_none_or(|(_, b)| backlog > b)
            {
                victim = Some((dev.id, backlog));
            }
        }
        let Some((victim_idx, victim_backlog)) = victim else {
            return false;
        };
        let Some(shapes) = self.devices[victim_idx].queue.peek_map(|j| j.shapes.clone()) else {
            return false;
        };
        let Ok(predicted_here) = self.predict_cached(thief_idx, &shapes) else {
            return false;
        };
        if !placer::steal_beneficial(
            victim_backlog,
            predicted_here,
            self.cfg.steal.min_victim_backlog_us,
        ) {
            return false;
        }
        let Some(mut job) = self.devices[victim_idx].queue.pop_if(|j| j.shapes == shapes) else {
            return false;
        };
        self.devices[victim_idx].backlog_us -= job.predicted_us;
        self.index_touch(victim_idx);
        job.predicted_us = predicted_here;
        job.stolen = true;
        self.devices[thief_idx].backlog_us += predicted_here;
        self.devices[thief_idx].steals += 1;
        self.stats.steals.fetch_add(1, Ordering::Relaxed);
        if let Some(o) = self.obs() {
            o.point(PointKind::Steal { to: thief_idx, from: victim_idx });
        }
        // A steal moves the operands with the work: the thief becomes
        // the holder, same as the threaded engine.
        self.account_residency(
            thief_idx,
            ctb_core::shape_sig_hash(&shapes),
            ctb_core::operand_bytes(&shapes),
        );
        self.index_touch(thief_idx);
        self.start_job(thief_idx, job);
        true
    }
}

// ---------------------------------------------------------------------------
// Savestate
// ---------------------------------------------------------------------------

fn save_shapes(w: &mut Writer, shapes: &[GemmShape]) {
    w.len_prefix(shapes.len());
    for s in shapes {
        w.u64(s.m as u64);
        w.u64(s.n as u64);
        w.u64(s.k as u64);
    }
}

fn load_shapes(r: &mut Reader<'_>) -> Result<Arc<[GemmShape]>, SavestateError> {
    let v = r.seq(|r| {
        Ok(GemmShape::new(r.u64()? as usize, r.u64()? as usize, r.u64()? as usize))
    })?;
    Ok(v.into())
}

fn save_job(w: &mut Writer, j: &EvJob) {
    w.u64(j.id);
    save_shapes(w, &j.shapes);
    w.u64(j.seed);
    w.u64(j.arrived.as_ns());
    w.f64(j.predicted_us);
    w.u32(j.attempts);
    w.bool(j.stolen);
    w.bool(j.witness);
}

fn load_job(r: &mut Reader<'_>) -> Result<EvJob, SavestateError> {
    Ok(EvJob {
        id: r.u64()?,
        shapes: load_shapes(r)?,
        seed: r.u64()?,
        arrived: SimTime(r.u64()?),
        predicted_us: r.f64()?,
        attempts: r.u32()?,
        stolen: r.bool()?,
        witness: r.bool()?,
    })
}

fn save_ev(w: &mut Writer, ev: &Ev) {
    match ev {
        Ev::Arrive { job } => {
            w.u8(0);
            save_job(w, job);
        }
        Ev::PlaceDone { job } => {
            w.u8(1);
            save_job(w, job);
        }
        Ev::ExecDone { device } => {
            w.u8(2);
            w.len_prefix(*device);
        }
        Ev::StealCheck { device } => {
            w.u8(3);
            w.len_prefix(*device);
        }
        Ev::BreakerProbe { device } => {
            w.u8(4);
            w.len_prefix(*device);
        }
        Ev::DeviceKill { device } => {
            w.u8(5);
            w.len_prefix(*device);
        }
    }
}

fn load_ev(r: &mut Reader<'_>) -> Result<Ev, SavestateError> {
    Ok(match r.u8()? {
        0 => Ev::Arrive { job: load_job(r)? },
        1 => Ev::PlaceDone { job: load_job(r)? },
        2 => Ev::ExecDone { device: r.len_prefix()? },
        3 => Ev::StealCheck { device: r.len_prefix()? },
        4 => Ev::BreakerProbe { device: r.len_prefix()? },
        5 => Ev::DeviceKill { device: r.len_prefix()? },
        t => return Err(SavestateError::Corrupt(format!("bad event tag {t}"))),
    })
}

fn save_fate(w: &mut Writer, f: &Fate) {
    w.u8(match f {
        Fate::Complete => 0,
        Fate::PlanFailed => 1,
        Fate::Panicked => 2,
    });
}

fn load_fate(r: &mut Reader<'_>) -> Result<Fate, SavestateError> {
    Ok(match r.u8()? {
        0 => Fate::Complete,
        1 => Fate::PlanFailed,
        2 => Fate::Panicked,
        t => return Err(SavestateError::Corrupt(format!("bad fate tag {t}"))),
    })
}

fn save_outcome(w: &mut Writer, o: &ReqOutcome) {
    match o {
        ReqOutcome::Done { id, device, degraded, stolen, reroutes } => {
            w.u8(0);
            w.u64(*id);
            w.len_prefix(*device);
            w.bool(*degraded);
            w.bool(*stolen);
            w.u32(*reroutes);
        }
        ReqOutcome::PlanRejected { id } => {
            w.u8(1);
            w.u64(*id);
        }
        ReqOutcome::Failed { id } => {
            w.u8(2);
            w.u64(*id);
        }
    }
}

fn load_outcome(r: &mut Reader<'_>) -> Result<ReqOutcome, SavestateError> {
    Ok(match r.u8()? {
        0 => ReqOutcome::Done {
            id: r.u64()?,
            device: r.len_prefix()?,
            degraded: r.bool()?,
            stolen: r.bool()?,
            reroutes: r.u32()?,
        },
        1 => ReqOutcome::PlanRejected { id: r.u64()? },
        2 => ReqOutcome::Failed { id: r.u64()? },
        t => return Err(SavestateError::Corrupt(format!("bad outcome tag {t}"))),
    })
}

fn save_cfg(w: &mut Writer, c: &EventConfig) {
    w.len_prefix(c.queue_capacity);
    w.bool(c.steal.enabled);
    w.f64(c.steal.min_victim_backlog_us);
    w.u64(c.steal.poll.as_nanos().min(u128::from(u64::MAX)) as u64);
    w.len_prefix(c.breaker.trip_threshold);
    w.len_prefix(c.breaker.open_batches);
    w.u32(c.max_reroutes);
    w.len_prefix(c.witness_every);
    w.u8(match c.placement {
        PlacementMode::Auto => 0,
        PlacementMode::Exact => 1,
        PlacementMode::Indexed => 2,
    });
    w.bool(c.record_outcomes);
    w.len_prefix(c.share.shards);
    match c.share.capacity_per_shard {
        Some(cap) => {
            w.bool(true);
            w.len_prefix(cap);
        }
        None => w.bool(false),
    }
    match c.share.admission {
        AdmissionPolicy::AdmitAll => w.u8(0),
        AdmissionPolicy::SeenTwice { seed, slots_log2 } => {
            w.u8(1);
            w.u64(seed);
            w.u32(slots_log2);
        }
    }
    // v3: locality-aware ranking flag.
    w.bool(c.locality.enabled);
}

fn load_cfg(r: &mut Reader<'_>) -> Result<EventConfig, SavestateError> {
    Ok(EventConfig {
        queue_capacity: r.len_prefix()?,
        steal: StealPolicy {
            enabled: r.bool()?,
            min_victim_backlog_us: r.f64()?,
            poll: Duration::from_nanos(r.u64()?),
        },
        breaker: BreakerPolicy {
            trip_threshold: r.len_prefix()?,
            open_batches: r.len_prefix()?,
        },
        max_reroutes: r.u32()?,
        witness_every: r.len_prefix()?,
        placement: match r.u8()? {
            0 => PlacementMode::Auto,
            1 => PlacementMode::Exact,
            2 => PlacementMode::Indexed,
            t => return Err(SavestateError::Corrupt(format!("bad placement tag {t}"))),
        },
        record_outcomes: r.bool()?,
        share: PlanShareConfig {
            shards: r.len_prefix()?,
            capacity_per_shard: if r.bool()? { Some(r.len_prefix()?) } else { None },
            admission: match r.u8()? {
                0 => AdmissionPolicy::AdmitAll,
                1 => AdmissionPolicy::SeenTwice { seed: r.u64()?, slots_log2: r.u32()? },
                t => return Err(SavestateError::Corrupt(format!("bad admission tag {t}"))),
            },
        },
        locality: LocalityPolicy { enabled: r.bool()? },
    })
}

fn save_fault(w: &mut Writer, f: &FaultInjector) {
    let cfg = f.config();
    w.u64(cfg.seed);
    w.u32(cfg.admit_reject_per_mille);
    w.u32(cfg.expire_per_mille);
    w.u32(cfg.plan_fail_per_mille);
    w.u32(cfg.exec_panic_per_mille);
    w.u32(cfg.degraded_panic_per_mille);
    w.u32(cfg.slow_worker_per_mille);
    w.u64(cfg.slow_delay.as_nanos().min(u128::from(u64::MAX)) as u64);
    let (draws, fired) = f.state();
    for v in draws {
        w.len_prefix(v);
    }
    for v in fired {
        w.len_prefix(v);
    }
}

fn load_fault(r: &mut Reader<'_>) -> Result<FaultInjector, SavestateError> {
    let mut cfg = FaultConfig::new(r.u64()?);
    cfg.admit_reject_per_mille = r.u32()?;
    cfg.expire_per_mille = r.u32()?;
    cfg.plan_fail_per_mille = r.u32()?;
    cfg.exec_panic_per_mille = r.u32()?;
    cfg.degraded_panic_per_mille = r.u32()?;
    cfg.slow_worker_per_mille = r.u32()?;
    cfg.slow_delay = Duration::from_nanos(r.u64()?);
    let mut draws = [0usize; FAULT_SITES];
    for v in &mut draws {
        *v = r.len_prefix()?;
    }
    let mut fired = [0usize; FAULT_SITES];
    for v in &mut fired {
        *v = r.len_prefix()?;
    }
    Ok(FaultInjector::with_state(cfg, draws, fired))
}

fn save_gen(w: &mut Writer, g: &LoadGen) {
    w.u64(g.seed);
    w.f64(g.mean_interarrival_ns);
    w.len_prefix(g.mixes.len());
    for m in &g.mixes {
        w.str(m.name);
        save_shapes(w, &m.shapes);
        w.u32(m.weight);
    }
    w.u64(g.total_weight);
    w.len_prefix(g.remaining);
    w.u64(g.drawn);
}

/// Map a restored mix-class name back to a `&'static str`: the known
/// [`LoadGen::table2`] classes intern for free; anything else leaks one
/// small allocation per distinct name per process — bounded by the
/// restore call sites, which are test/replay harnesses.
fn intern_mix_name(s: String) -> &'static str {
    for known in ["small", "medium", "large", "tall", "wide", "huge"] {
        if known == s {
            return known;
        }
    }
    Box::leak(s.into_boxed_str())
}

fn load_gen(r: &mut Reader<'_>) -> Result<LoadGen, SavestateError> {
    Ok(LoadGen {
        seed: r.u64()?,
        mean_interarrival_ns: r.f64()?,
        mixes: r.seq(|r| {
            Ok(ShapeMix {
                name: intern_mix_name(r.str()?),
                shapes: load_shapes(r)?,
                weight: r.u32()?,
            })
        })?,
        total_weight: r.u64()?,
        remaining: r.len_prefix()?,
        drawn: r.u64()?,
    })
}

fn save_stats(w: &mut Writer, s: &ClusterInner) {
    for v in [
        &s.submitted,
        &s.completed,
        &s.degraded,
        &s.routed,
        &s.steals,
        &s.reroutes,
        &s.worker_panics,
        &s.plan_failures,
        &s.breaker_trips,
        &s.kills,
    ] {
        w.len_prefix(v.load(Ordering::Relaxed));
    }
    w.f64(s.err_abs_sum_us.load());
    w.len_prefix(s.err_count.load(Ordering::Relaxed));
    let lat = s.latencies();
    w.len_prefix(lat.len());
    for v in lat {
        w.f64(v);
    }
    // v3: residency accounting.
    w.len_prefix(s.residency_hits.load(Ordering::Relaxed));
    w.len_prefix(s.residency_misses.load(Ordering::Relaxed));
    w.u64(s.remote_operand_bytes.load(Ordering::Relaxed));
}

fn load_stats(r: &mut Reader<'_>, s: &ClusterInner) -> Result<(), SavestateError> {
    for slot in [
        &s.submitted,
        &s.completed,
        &s.degraded,
        &s.routed,
        &s.steals,
        &s.reroutes,
        &s.worker_panics,
        &s.plan_failures,
        &s.breaker_trips,
        &s.kills,
    ] {
        slot.store(r.len_prefix()?, Ordering::Relaxed);
    }
    s.err_abs_sum_us.set(r.f64()?);
    s.err_count.store(r.len_prefix()?, Ordering::Relaxed);
    s.set_latencies(r.seq(|r| r.f64())?);
    s.residency_hits.store(r.len_prefix()?, Ordering::Relaxed);
    s.residency_misses.store(r.len_prefix()?, Ordering::Relaxed);
    s.remote_operand_bytes.store(r.u64()?, Ordering::Relaxed);
    Ok(())
}

/// Checkpoint / restore / migration. The engine is single-threaded, so
/// any moment between [`EventCluster::step`] calls is a consistent
/// *event boundary*: no half-dispatched event exists, every pending
/// cause lives on the timeline, and every decision source (fault
/// cursors, breaker runs, memoized sims, the tie-break counter) is a
/// plain value. [`checkpoint`](Self::checkpoint) serializes exactly
/// those values — no wall-clock, no addresses — which is why a restored
/// engine re-runs the remainder of the schedule decision-for-decision
/// and byte-for-byte (trace included); `tests/savestate.rs` enforces
/// this differentially at swept crash points over the chaos schedules.
impl EventCluster {
    /// Serialize the engine's complete state at the current event
    /// boundary into a versioned blob.
    ///
    /// # Panics
    ///
    /// Calibration runs are not checkpointable: a ground-truth pool,
    /// an open decision log, or an installed calibration profile are
    /// runtime-only state the pinned blob format deliberately excludes
    /// (a restored engine could not replay the same charged times or
    /// corrected predictions). Record and calibrate first, checkpoint
    /// after.
    pub fn checkpoint(&self) -> Vec<u8> {
        assert!(
            self.ground_truth.is_none()
                && self.decisions.is_none()
                && !self.swappable
                && self.share.calib().version() == 0,
            "calibration runs are not checkpointable: detach the ground-truth pool, stop \
             decision recording, use a non-swappable engine and leave the share's \
             CalibHandle at version 0 before checkpointing"
        );
        let mut w = Writer::with_header();
        save_cfg(&mut w, &self.cfg);
        w.bool(self.obs.is_some());
        // -- engine scalars
        w.u64(self.now.as_ns());
        w.u64(self.next_job_id);
        w.u64(self.events_processed);
        w.len_prefix(self.requests);
        w.len_prefix(self.witnesses);
        w.len_prefix(self.witness_mismatches);
        w.len_prefix(self.pending_arrivals);
        w.len_prefix(self.open_jobs);
        w.bool(self.breaker_active);
        // -- open-loop load source
        match &self.gen {
            Some(g) => {
                w.bool(true);
                save_gen(&mut w, g);
            }
            None => w.bool(false),
        }
        // -- devices (pool order)
        w.len_prefix(self.devices.len());
        for d in &self.devices {
            w.str(d.arch().name);
            w.bool(d.alive);
            let (items, closed) = d.queue.snapshot_with(EvJob::clone);
            w.bool(closed);
            w.len_prefix(items.len());
            for j in &items {
                save_job(&mut w, j);
            }
            match &d.running {
                Some(Running { job, fate }) => {
                    w.bool(true);
                    save_job(&mut w, job);
                    save_fate(&mut w, fate);
                }
                None => w.bool(false),
            }
            w.f64(d.backlog_us);
            w.f64(d.busy_sim_us);
            let (consecutive, open_remaining) = d.breaker.state();
            w.len_prefix(consecutive);
            w.len_prefix(open_remaining);
            match &d.fault {
                Some(f) => {
                    w.bool(true);
                    save_fault(&mut w, f);
                }
                None => w.bool(false),
            }
            w.len_prefix(d.placements);
            w.len_prefix(d.completed);
            w.len_prefix(d.steals);
            w.len_prefix(d.reroutes_out);
            w.len_prefix(d.breaker_trips);
            w.bool(d.steal_pending);
            w.bool(d.probe_pending);
            // Plan-cache accounting, pinned back after the restore
            // replans (replanning would otherwise count as misses).
            let s = d.session.stats();
            w.len_prefix(s.hits);
            w.len_prefix(s.misses);
            w.len_prefix(d.session.plan_failures());
            // v3: chiplet topology, validated against the restore pool
            // so a resumed run ranks with the same locality penalties.
            let topo = d.arch().topology;
            w.u32(topo.chiplets);
            w.f64(topo.local_bandwidth_gbps);
            w.f64(topo.remote_bandwidth_gbps);
            w.f64(topo.interposer_latency_us);
        }
        // -- timeline (pending events + tie-break counter)
        self.timeline.save_with(&mut w, save_ev);
        // -- shared plans + simulation memo
        self.share.save(&mut w);
        // -- engine prediction cache, sorted for byte-stable output
        type PredEntry<'a> = (&'a (&'static str, Arc<[GemmShape]>), &'a Result<f64, String>);
        let mut preds: Vec<PredEntry<'_>> = self.predictions.iter().collect();
        preds.sort_by_key(|((name, shapes), _)| {
            (*name, shapes.iter().map(|s| (s.m, s.n, s.k)).collect::<Vec<_>>())
        });
        w.len_prefix(preds.len());
        for ((name, shapes), res) in preds {
            w.str(name);
            save_shapes(&mut w, shapes);
            match res {
                Ok(us) => {
                    w.u8(0);
                    w.f64(*us);
                }
                Err(m) => {
                    w.u8(1);
                    w.str(m);
                }
            }
        }
        // -- recorded outcomes
        w.len_prefix(self.outcomes.len());
        for o in &self.outcomes {
            save_outcome(&mut w, o);
        }
        // -- cluster-wide counters + latency log
        save_stats(&mut w, &self.stats);
        // -- instrumentation state, last: restore replays plans first
        // (which emits events), then overwrites the log with this.
        if let (Some(clock), Some(obs)) = (&self.clock, &self.obs) {
            w.u64(clock.now_us());
            obs.save_state(&mut w);
        }
        w.into_bytes()
    }

    /// Rebuild an engine from a [`checkpoint`](Self::checkpoint) blob.
    /// `pool` must be the same architecture sequence the checkpointed
    /// engine was built over (checked by name, per device — a typed
    /// [`SavestateError::Mismatch`] otherwise). Returns the engine and,
    /// when the checkpoint was instrumented, its freshly attached
    /// [`Obs`] (the caller's handle for trace comparison).
    ///
    /// Restore order matters and is fixed: sessions are rebuilt first,
    /// the shared memo loads, plans are *replanned* through their
    /// fingerprint-matched sessions (every candidate simulation hits
    /// the restored memo, so this is cheap and bitwise-faithful), then
    /// the cache counters are pinned back over the replanning traffic,
    /// and the obs log is overwritten last — discarding the plan spans
    /// replanning just emitted.
    pub fn restore(
        pool: Vec<ArchSpec>,
        bytes: &[u8],
    ) -> Result<(Self, Option<Arc<Obs>>), SavestateError> {
        let (mut r, version) = Reader::with_header(bytes)?;
        // v2 extended the embedded `PlanShare` image (shard layout,
        // capacity bound, admission gate); v3 added chiplet topology,
        // the locality ranking flag, operand residency and its
        // counters. Either way an older checkpoint no longer describes
        // a decodable engine. `import_jobs` still accepts older exports
        // — the job layout is unchanged.
        if version < 3 {
            return Err(SavestateError::Mismatch(format!(
                "cluster checkpoint format v{version} predates the chiplet-topology \
                 and residency layout (v3); re-checkpoint with the current engine"
            )));
        }
        let cfg = load_cfg(&mut r)?;
        let (clock, obs) = if r.bool()? {
            let clock = Arc::new(SimClock::new());
            let obs = Arc::new(Obs::sim(Arc::clone(&clock)));
            (Some(clock), Some(obs))
        } else {
            (None, None)
        };
        let now = SimTime(r.u64()?);
        let next_job_id = r.u64()?;
        let events_processed = r.u64()?;
        let requests = r.len_prefix()?;
        let witnesses = r.len_prefix()?;
        let witness_mismatches = r.len_prefix()?;
        let pending_arrivals = r.len_prefix()?;
        let open_jobs = r.len_prefix()?;
        let breaker_active = r.bool()?;
        let gen = if r.bool()? { Some(load_gen(&mut r)?) } else { None };

        let n_devices = r.len_prefix()?;
        if n_devices != pool.len() {
            return Err(SavestateError::Mismatch(format!(
                "checkpoint holds {n_devices} devices, restore pool holds {}",
                pool.len()
            )));
        }
        // The cfg (loaded above) carries the share's shard/capacity/
        // admission layout, so the receiving share matches the gate and
        // shard images embedded later in the blob.
        let share = Arc::new(PlanShare::with_config(cfg.share));
        let mut class_names: Vec<&'static str> = Vec::new();
        let mut class_of = Vec::with_capacity(n_devices);
        let mut class_rep = Vec::new();
        let mut devices = Vec::with_capacity(n_devices);
        let mut session_stats = Vec::with_capacity(n_devices);
        for (id, arch) in pool.into_iter().enumerate() {
            let saved_name = r.str()?;
            if saved_name != arch.name {
                return Err(SavestateError::Mismatch(format!(
                    "device {id}: checkpoint arch {saved_name:?}, restore pool has {:?}",
                    arch.name
                )));
            }
            let class = match class_names.iter().position(|n| *n == arch.name) {
                Some(c) => c,
                None => {
                    class_names.push(arch.name);
                    class_rep.push(id);
                    class_names.len() - 1
                }
            };
            class_of.push(class);
            let s = Session::with_share(Framework::new(arch), Arc::clone(&share));
            let session = Arc::new(match &obs {
                Some(o) => s.with_obs(Arc::clone(o)),
                None => s,
            });
            let alive = r.bool()?;
            let closed = r.bool()?;
            let items = r.seq(load_job)?;
            let queue = BoundedQueue::restore(cfg.queue_capacity, closed, items);
            let running = if r.bool()? {
                let job = load_job(&mut r)?;
                let fate = load_fate(&mut r)?;
                Some(Running { job, fate })
            } else {
                None
            };
            let backlog_us = r.f64()?;
            let busy_sim_us = r.f64()?;
            let consecutive = r.len_prefix()?;
            let open_remaining = r.len_prefix()?;
            let breaker = Breaker::restore(cfg.breaker.clone(), consecutive, open_remaining);
            let fault = if r.bool()? { Some(Arc::new(load_fault(&mut r)?)) } else { None };
            let placements = r.len_prefix()?;
            let completed = r.len_prefix()?;
            let steals = r.len_prefix()?;
            let reroutes_out = r.len_prefix()?;
            let breaker_trips = r.len_prefix()?;
            let steal_pending = r.bool()?;
            let probe_pending = r.bool()?;
            let hits = r.len_prefix()?;
            let misses = r.len_prefix()?;
            let plan_failures = r.len_prefix()?;
            session_stats.push((hits, misses, plan_failures));
            let topo = ctb_gpu_specs::ChipletTopology {
                chiplets: r.u32()?,
                local_bandwidth_gbps: r.f64()?,
                remote_bandwidth_gbps: r.f64()?,
                interposer_latency_us: r.f64()?,
            };
            let pool_topo = session.framework().arch().topology;
            if topo != pool_topo {
                return Err(SavestateError::Mismatch(format!(
                    "device {id}: checkpoint topology {topo:?}, restore pool has {pool_topo:?}"
                )));
            }
            devices.push(EvDevice {
                id,
                session,
                queue,
                running,
                backlog_us,
                busy_sim_us,
                alive,
                breaker,
                fault,
                placements,
                completed,
                steals,
                reroutes_out,
                breaker_trips,
                steal_pending,
                probe_pending,
            });
        }
        let timeline = Timeline::load_with(&mut r, load_ev)?;
        {
            let sessions: Vec<&Session> = devices.iter().map(|d| &*d.session).collect();
            share.restore_with_sessions(&mut r, &sessions)?;
        }
        for (d, (hits, misses, plan_failures)) in devices.iter().zip(session_stats) {
            d.session.set_stats(CacheStats { hits, misses });
            d.session.set_plan_failures(plan_failures);
        }
        let n_preds = r.len_prefix()?;
        let mut predictions = PredictionCache::with_capacity(n_preds.min(4096));
        for _ in 0..n_preds {
            let name = r.str()?;
            let Some(interned) = class_names.iter().copied().find(|n| *n == name) else {
                return Err(SavestateError::Mismatch(format!(
                    "prediction cache names arch {name:?}, absent from the restore pool"
                )));
            };
            let shapes = load_shapes(&mut r)?;
            let res = match r.u8()? {
                0 => Ok(r.f64()?),
                1 => Err(r.str()?),
                t => return Err(SavestateError::Corrupt(format!("bad prediction tag {t}"))),
            };
            predictions.insert((interned, shapes), res);
        }
        let outcomes = r.seq(load_outcome)?;
        let stats = ClusterInner::default();
        load_stats(&mut r, &stats)?;
        if let (Some(clock), Some(obs)) = (&clock, &obs) {
            clock.set(r.u64()?);
            obs.restore_state(&mut r)?;
        }
        r.expect_end()?;
        // Per-class index heaps restart from the live backlogs: the
        // original heap's extra entries are stale-by-value and thus
        // semantically invisible, so one fresh entry per alive device
        // reproduces the same argmin choices.
        let index = (0..class_rep.len()).map(|_| BinaryHeap::new()).collect();
        let has_chiplets = devices.iter().any(|d| !d.arch().topology.is_unified());
        let mut eng = EventCluster {
            cfg,
            devices,
            share,
            timeline,
            obs: obs.clone(),
            clock,
            stats,
            outcomes,
            predictions,
            class_of,
            class_rep,
            index,
            breaker_active,
            has_chiplets,
            gen,
            now,
            next_job_id,
            events_processed,
            requests,
            witnesses,
            witness_mismatches,
            pending_arrivals,
            open_jobs,
            ground_truth: None,
            actuals: HashMap::new(),
            model_us: HashMap::new(),
            decisions: None,
            calib_version: 0,
            swappable: false,
        };
        for id in 0..eng.devices.len() {
            if eng.devices[id].alive {
                eng.index_touch(id);
            }
        }
        Ok((eng, obs))
    }

    /// Take `device` out of service and export its *queued* jobs as a
    /// portable blob — the migration half of a planned drain. Like
    /// [`kill_at`](Self::kill_at) the device is marked dead, its queue
    /// closed, and a job mid-execution still completes here (its
    /// `ExecDone` is already on the heap); unlike a kill, the queued
    /// work leaves this engine instead of re-routing, so a peer can
    /// [`import_jobs`](Self::import_jobs) it with zero drops.
    pub fn halt_and_export(&mut self, device: usize) -> Vec<u8> {
        assert!(device < self.devices.len(), "no such device");
        if self.devices[device].alive {
            self.devices[device].alive = false;
            self.stats.kills.fetch_add(1, Ordering::Relaxed);
            if let Some(o) = self.obs() {
                o.point(PointKind::Kill { device });
            }
            self.devices[device].queue.close();
        }
        let mut jobs = Vec::new();
        while let Some(job) = self.devices[device].queue.try_pop() {
            self.devices[device].backlog_us -= job.predicted_us;
            self.open_jobs -= 1;
            jobs.push(job);
        }
        let mut w = Writer::with_header();
        w.len_prefix(jobs.len());
        for j in &jobs {
            save_job(&mut w, j);
        }
        w.into_bytes()
    }

    /// Admit jobs exported by a peer's [`halt_and_export`](Self::halt_and_export):
    /// each re-enters through the normal arrival path at the current
    /// sim time under a fresh engine-local id (ids are engine-scoped),
    /// keeping its shape signature, data seed and witness flag. Returns
    /// how many jobs were admitted.
    pub fn import_jobs(&mut self, bytes: &[u8]) -> Result<usize, SavestateError> {
        let (mut r, _version) = Reader::with_header(bytes)?;
        let jobs = r.seq(load_job)?;
        r.expect_end()?;
        let n = jobs.len();
        for mut job in jobs {
            job.id = self.next_job_id;
            self.next_job_id += 1;
            job.arrived = self.now;
            job.attempts = 0;
            self.pending_arrivals += 1;
            self.timeline.schedule(self.now, Ev::Arrive { job });
        }
        Ok(n)
    }

    /// Per-device injected-fault accounting (`None` where no chaos
    /// schedule is attached). A restored engine owns *fresh* injectors
    /// rebuilt from serialized cursors, so differential suites compare
    /// fault history through this seam rather than through the `Arc`s
    /// they passed at construction.
    pub fn fault_logs(&self) -> Vec<Option<FaultLog>> {
        self.devices.iter().map(|d| d.fault.as_ref().map(|f| f.log())).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctb_serve::FaultConfig;
    use std::time::Duration;

    fn sig(shapes: &[GemmShape]) -> Arc<[GemmShape]> {
        shapes.into()
    }

    fn quiet_cfg() -> EventConfig {
        EventConfig::default()
    }

    #[test]
    fn timeline_orders_by_time_then_schedule_order() {
        let mut t: Timeline<u32> = Timeline::new();
        t.schedule(SimTime(50), 1);
        t.schedule(SimTime(10), 2);
        t.schedule(SimTime(50), 3);
        t.schedule(SimTime(10), 4);
        assert_eq!(t.peek_time(), Some(SimTime(10)));
        let order: Vec<(u64, u32)> = std::iter::from_fn(|| t.pop())
            .map(|(at, ev)| (at.as_ns(), ev))
            .collect();
        // Equal timestamps pop FIFO in schedule order.
        assert_eq!(order, vec![(10, 2), (10, 4), (50, 1), (50, 3)]);
        assert!(t.is_empty());
    }

    #[test]
    fn sim_time_units_convert() {
        assert_eq!(SimTime::from_us(3).as_ns(), 3_000);
        assert_eq!(SimTime(1_500).as_us(), 1);
        assert_eq!(SimTime(1_500).plus(500).as_us(), 2);
    }

    #[test]
    fn single_request_is_witnessed_and_bitwise_exact() {
        let mut eng = EventCluster::new(ArchSpec::pool_presets(2), quiet_cfg());
        eng.submit_at(
            SimTime::ZERO,
            sig(&[GemmShape::new(48, 64, 96), GemmShape::new(16, 32, 128)]),
            7,
        );
        let report = eng.run();
        assert_eq!(report.requests, 1);
        assert_eq!(report.stats.submitted, 1);
        assert_eq!(report.stats.completed, 1);
        assert_eq!(report.stats.degraded, 0);
        assert_eq!(report.witnesses, 1);
        assert_eq!(report.witness_mismatches, 0, "witness must be bitwise-exact");
        assert_eq!(report.stats.mean_abs_placement_err_us, 0.0);
        assert!(matches!(
            report.outcomes[..],
            [ReqOutcome::Done { id: 0, degraded: false, stolen: false, reroutes: 0, .. }]
        ));
    }

    #[test]
    fn loadgen_is_deterministic_and_conserves_requests() {
        let mut a = LoadGen::table2(11, 40_000.0, 64);
        let mut b = LoadGen::table2(11, 40_000.0, 64);
        let da: Vec<_> = std::iter::from_fn(|| a.next()).collect();
        let db: Vec<_> = std::iter::from_fn(|| b.next()).collect();
        assert_eq!(da.len(), 64);
        assert_eq!(da, db, "same seed, same arrival process");
        assert!(da.iter().all(|(dt, _, _)| *dt >= 1));
        // More than one mix class gets drawn at 64 requests.
        let distinct: std::collections::HashSet<usize> =
            da.iter().map(|(_, s, _)| s.len()).collect();
        assert!(distinct.len() > 1, "mix draws collapse to one class");
    }

    #[test]
    fn open_loop_load_completes_every_request() {
        let mut cfg = quiet_cfg();
        cfg.witness_every = 97;
        let mut eng = EventCluster::new(ArchSpec::pool_presets(4), cfg);
        eng.load(LoadGen::table2(3, 30_000.0, 400));
        let report = eng.run();
        assert_eq!(report.requests, 400);
        assert_eq!(report.stats.submitted, 400);
        assert_eq!(report.stats.completed, 400);
        assert_eq!(report.stats.degraded, 0);
        assert!(report.witnesses >= 4);
        assert_eq!(report.witness_mismatches, 0);
        assert_eq!(report.stats.mean_abs_placement_err_us, 0.0);
        assert!(report.events_processed as usize >= 3 * 400);
    }

    #[test]
    fn same_inputs_same_outcomes_and_trace() {
        let build = || {
            let mut cfg = quiet_cfg();
            cfg.witness_every = 5;
            let (mut eng, obs) =
                EventCluster::with_instrumentation(ArchSpec::pool_presets(3), cfg, vec![None; 3]);
            eng.load(LoadGen::table2(21, 25_000.0, 120));
            let report = eng.run();
            (report, obs.render())
        };
        let (ra, ta) = build();
        let (rb, tb) = build();
        assert_eq!(ra.outcomes, rb.outcomes);
        assert_eq!(ra.events_processed, rb.events_processed);
        assert_eq!(ra.stats.makespan_sim_us, rb.stats.makespan_sim_us);
        assert_eq!(ta, tb, "same inputs must render a byte-identical trace");
    }

    #[test]
    fn indexed_placement_matches_exact_scan() {
        let run = |mode: PlacementMode| {
            let mut cfg = quiet_cfg();
            cfg.witness_every = 0;
            cfg.placement = mode;
            let mut eng = EventCluster::new(ArchSpec::pool_presets(12), cfg);
            // Tight inter-arrivals so queues build and spill-down and
            // steals actually exercise the index.
            eng.load(LoadGen::table2(9, 4_000.0, 500));
            eng.run()
        };
        let exact = run(PlacementMode::Exact);
        let indexed = run(PlacementMode::Indexed);
        assert_eq!(exact.outcomes, indexed.outcomes, "index changed a routing decision");
        assert_eq!(exact.stats.makespan_sim_us, indexed.stats.makespan_sim_us);
        assert_eq!(exact.stats.steals, indexed.stats.steals);
        assert_eq!(exact.stats.completed, 500);
    }

    #[test]
    fn kill_reroutes_queued_work_to_survivors() {
        let mut cfg = quiet_cfg();
        cfg.witness_every = 3;
        cfg.steal.enabled = false;
        let mut eng = EventCluster::new(ArchSpec::pool_presets(2), cfg);
        let shapes = sig(&[GemmShape::new(64, 64, 320); 2]);
        for i in 0..10 {
            eng.submit_at(SimTime::ZERO, shapes.clone(), i);
        }
        // Kill device 0 while its queue still holds work.
        eng.kill_at(SimTime(5), 0);
        let report = eng.run();
        assert_eq!(report.stats.kills, 1);
        assert_eq!(report.stats.completed, 10, "kill must not drop work");
        assert!(report.stats.reroutes > 0, "queued batches re-route off the dead device");
        assert_eq!(report.witness_mismatches, 0);
        // Everything after the kill lands on (or finishes on) device 1
        // or the degraded baseline — never the corpse.
        let late_on_dead = report.outcomes.iter().any(|o| {
            matches!(o, ReqOutcome::Done { device: 0, degraded: false, reroutes, .. } if *reroutes > 0)
        });
        assert!(!late_on_dead, "re-routed work must avoid the killed device");
    }

    #[test]
    fn stalled_victim_gets_relieved_by_steals() {
        // Device 0 stalls 2 ms (sim) per job, so its queue outlives
        // device 1's; once device 1 idles, the model says moving the
        // front batch wins and the steal fires.
        let mut cfg = quiet_cfg();
        cfg.witness_every = 0;
        let fault = Arc::new(FaultInjector::new(
            FaultConfig::new(5).slow_worker(1000, Duration::from_millis(2)),
        ));
        let mut eng = EventCluster::with_faults(
            ArchSpec::pool_presets(2),
            cfg,
            vec![Some(fault), None],
        );
        let shapes = sig(&[GemmShape::new(64, 64, 128); 3]);
        for i in 0..20 {
            eng.submit_at(SimTime::ZERO, shapes.clone(), i);
        }
        let report = eng.run();
        assert_eq!(report.stats.completed, 20);
        assert!(report.stats.steals >= 1, "expected at least one steal, got stats {:?}", report.stats.steals);
        let stolen = report
            .outcomes
            .iter()
            .filter(|o| matches!(o, ReqOutcome::Done { stolen: true, .. }))
            .count();
        assert_eq!(stolen, report.stats.steals);
    }

    #[test]
    fn exec_panics_trip_the_breaker_and_work_survives() {
        let mut cfg = quiet_cfg();
        cfg.witness_every = 4;
        let fault = Arc::new(FaultInjector::new(FaultConfig::new(2).exec_panic(1000)));
        let mut eng = EventCluster::with_faults(
            ArchSpec::pool_presets(2),
            cfg,
            vec![Some(Arc::clone(&fault)), None],
        );
        let shapes = sig(&[GemmShape::new(48, 48, 256); 2]);
        for i in 0..30 {
            eng.submit_at(SimTime(i * 1_000), shapes.clone(), i);
        }
        let report = eng.run();
        assert_eq!(report.stats.completed, 30, "every request still completes");
        assert_eq!(report.stats.worker_panics, fault.log().exec_panics);
        assert!(report.stats.breaker_trips >= 1, "8 consecutive panics must trip");
        assert_eq!(report.witness_mismatches, 0);
        // Jobs that failed on device 0 finish elsewhere.
        assert!(report.stats.reroutes >= report.stats.worker_panics);
    }
}

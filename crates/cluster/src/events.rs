//! Discrete-event cluster core: the threaded scheduler's decisions
//! without the threads.
//!
//! The threaded [`crate::Cluster`] caps its scaling story at a handful
//! of devices because every simulated GPU owns a real worker pool — host
//! threads, not the analytical model, bound the sweep. This module
//! replaces the thread structure with a single binary-heap timeline in
//! *simulated* time: device count becomes a `Vec` length, and a 10k-
//! device pool processing a million requests is just a larger heap.
//!
//! **Decision parity.** Placement, work stealing, breaker trips, kill
//! re-routing and the per-mille [`FaultInjector`] draws all go through
//! the exact same seams the threaded engine uses —
//! [`placer::rank`]/[`placer::choose`](crate::placer::choose),
//! [`placer::steal_beneficial`], [`Breaker`], and the shared
//! [`PlanShare`] memo — in the same order a serially-driven threaded
//! cluster consults them. The lockstep differential suite
//! (`tests/lockstep.rs`) drives both engines over the chaos schedules
//! and compares per-request routing decisions, reconciled
//! [`ClusterStats`] and fault logs.
//!
//! **Witness-subset bitwise checking.** Executing a million GEMM
//! batches functionally would make the host CPU the bottleneck again,
//! so most requests carry only their shape signature: cost comes from
//! the shared `SimMemo` (the identical number the placer compared), and
//! completion is pure accounting. Every `witness_every`-th request is a
//! *witness*: it materializes real matrices from its seed, runs the
//! full coordinated plan through the functional executor, and bitwise-
//! compares against `reference_result_exact`. The bitwise-exactness
//! claim is thus continuously sampled across the run instead of paid on
//! every request.
//!
//! **Determinism.** No wall clock, no OS scheduler: event order is
//! `(SimTime, seq)` where `seq` is a monotonic tie-break assigned at
//! schedule time. The same inputs therefore produce the same event
//! sequence, the same decisions, and — with an [`Obs`] attached — a
//! byte-identical trace (`tests/determinism.rs`).

use crate::cluster::{ClusterConfig, StealPolicy};
use crate::placer::{self, Candidate};
use crate::stats::{ClusterInner, ClusterStats, DeviceStats};
use ctb_core::{CacheStats, Framework, PlanShare, Session};
use ctb_gpu_specs::ArchSpec;
use ctb_matrix::{bitwise_mismatch, GemmBatch, GemmShape};
use ctb_obs::{Obs, PointKind, SimClock, SpanKind};
use ctb_serve::{BoundedQueue, Breaker, BreakerPolicy, FaultInjector, FaultSite, PushError};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

/// Matrix fill parameters for witness batches; the lockstep harness
/// builds its threaded-side batches with the same constants so both
/// engines execute byte-identical inputs.
pub const WITNESS_ALPHA: f32 = 1.0;
/// See [`WITNESS_ALPHA`].
pub const WITNESS_BETA: f32 = 0.5;

/// Sim-time backoff before retrying an initial placement when every
/// candidate queue is full — mirrors the threaded `submit` loop's 50 µs
/// backpressure sleep.
const BACKOFF_NS: u64 = 50_000;

/// Healing-probe interval after a breaker trip.
const PROBE_NS: u64 = 1_000_000;

// ---------------------------------------------------------------------------
// SimTime + Timeline
// ---------------------------------------------------------------------------

/// A typed simulated timestamp, in nanoseconds. Nanosecond granularity
/// keeps distinct exponential inter-arrival draws distinct even at a
/// million requests per simulated second; the [`Obs`] clock runs in
/// microseconds, so [`SimTime::as_us`] truncates on the way out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    pub const ZERO: SimTime = SimTime(0);

    pub fn from_us(us: u64) -> Self {
        SimTime(us.saturating_mul(1_000))
    }

    pub fn plus(self, ns: u64) -> Self {
        SimTime(self.0.saturating_add(ns))
    }

    pub fn as_ns(self) -> u64 {
        self.0
    }

    pub fn as_us(self) -> u64 {
        self.0 / 1_000
    }
}

struct Entry<E> {
    at: SimTime,
    seq: u64,
    ev: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.at.cmp(&other.at).then(self.seq.cmp(&other.seq))
    }
}

/// The event timeline: a min-heap keyed by `(SimTime, seq)`. The `seq`
/// tie-break is assigned at schedule time, so events scheduled for the
/// same instant pop in schedule order — FIFO among equals, which is
/// what makes the engine's event order (and therefore its trace) a pure
/// function of the inputs.
pub struct Timeline<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
}

impl<E> Default for Timeline<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Timeline<E> {
    pub fn new() -> Self {
        Timeline { heap: BinaryHeap::new(), seq: 0 }
    }

    /// Schedule `ev` at `at`; returns the tie-break seq assigned to it.
    pub fn schedule(&mut self, at: SimTime, ev: E) -> u64 {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry { at, seq, ev }));
        seq
    }

    /// Pop the earliest event (ties in schedule order).
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|Reverse(e)| (e.at, e.ev))
    }

    /// Timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.at)
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

// ---------------------------------------------------------------------------
// Events + jobs
// ---------------------------------------------------------------------------

/// One request in flight inside the event engine. Unlike the threaded
/// `ClusterJob` it carries no matrices — only the shape signature the
/// cost model needs — unless it is a witness (see module docs), in
/// which case the matrices are rebuilt from `seed` at execution time.
struct EvJob {
    id: u64,
    shapes: Arc<[GemmShape]>,
    /// Data seed a witness materializes its matrices from.
    seed: u64,
    arrived: SimTime,
    /// Predicted simulated µs on the device currently holding the job
    /// (re-predicted on steal/re-route, exactly like the threaded path).
    predicted_us: f64,
    /// Times the job has been moved between devices.
    attempts: u32,
    stolen: bool,
    witness: bool,
}

/// The fixed event vocabulary. Everything the threaded engine does with
/// threads — queue polling, steal polling, breaker healing, kill drains
/// — maps onto one of these six slots.
enum Ev {
    /// A request enters the system (admission + placement kickoff).
    Arrive { job: EvJob },
    /// A placement attempt for `job` runs now (initial or backoff retry).
    PlaceDone { job: EvJob },
    /// The device's currently running job finishes now.
    ExecDone { device: usize },
    /// An idle device looks for a saturated victim to steal from.
    StealCheck { device: usize },
    /// Post-trip healing probe: re-kick a recovered idle device.
    BreakerProbe { device: usize },
    /// Scheduled device failure (chaos schedules).
    DeviceKill { device: usize },
}

/// What the fault dice decided a running job's end will look like. The
/// rolls are drawn when the job *starts* — the same order the threaded
/// worker draws them — and applied when its `ExecDone` fires.
enum Fate {
    Complete,
    PlanFailed,
    Panicked,
}

struct Running {
    job: EvJob,
    fate: Fate,
}

// ---------------------------------------------------------------------------
// Devices + config
// ---------------------------------------------------------------------------

/// One simulated GPU in the event engine: the same parts as the
/// threaded `Device` (session, bounded queue, breaker, optional chaos
/// schedule) minus the worker threads — plain fields instead of
/// atomics, because exactly one event handler touches them at a time.
struct EvDevice {
    id: usize,
    session: Arc<Session>,
    queue: BoundedQueue<EvJob>,
    running: Option<Running>,
    /// Predicted µs of work queued or running here. Same f64
    /// add/subtract discipline as the threaded `AtomicF64` backlog, so
    /// the two engines feed identical numbers to the placer.
    backlog_us: f64,
    busy_sim_us: f64,
    alive: bool,
    breaker: Breaker,
    fault: Option<Arc<FaultInjector>>,
    placements: usize,
    completed: usize,
    steals: usize,
    reroutes_out: usize,
    breaker_trips: usize,
    /// A StealCheck event is already on the heap for this device.
    steal_pending: bool,
    /// A BreakerProbe event is already on the heap for this device.
    probe_pending: bool,
}

impl EvDevice {
    fn arch(&self) -> &ArchSpec {
        self.session.framework().arch()
    }

    fn backlog(&self) -> f64 {
        self.backlog_us.max(0.0)
    }

    fn roll(&self, site: FaultSite) -> bool {
        match &self.fault {
            Some(f) => f.roll(site),
            None => false,
        }
    }

    fn idle(&self) -> bool {
        self.running.is_none() && self.queue.is_empty()
    }

    fn snapshot(&self) -> DeviceStats {
        DeviceStats {
            id: self.id,
            name: self.arch().name,
            placements: self.placements,
            completed: self.completed,
            steals: self.steals,
            reroutes_out: self.reroutes_out,
            breaker_trips: self.breaker_trips,
            busy_sim_us: self.busy_sim_us,
            backlog_us: self.backlog(),
            queue_depth: self.queue.len(),
            utilization: 0.0, // filled in by the engine snapshot
            alive: self.alive,
            breaker_open: self.breaker.is_open(),
        }
    }
}

/// How placement scans the pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementMode {
    /// Exact O(devices) scan below 64 devices, indexed at or above.
    Auto,
    /// Always the exact scan the threaded engine performs — the mode
    /// the lockstep suite runs in.
    Exact,
    /// Always the per-arch-class indexed argmin (O(classes · log n)).
    Indexed,
}

/// Event-engine tuning knobs. The scheduling fields carry the same
/// semantics (and defaults) as [`ClusterConfig`]; the extra fields
/// control witness sampling and the placement index.
#[derive(Debug, Clone)]
pub struct EventConfig {
    pub queue_capacity: usize,
    pub steal: StealPolicy,
    pub breaker: BreakerPolicy,
    pub max_reroutes: u32,
    /// Every n-th request executes for real and is bitwise-checked;
    /// `0` disables witnesses, `1` checks everything.
    pub witness_every: usize,
    pub placement: PlacementMode,
    /// Keep a per-request routing outcome log (the lockstep suite's
    /// comparison payload); costs one small record per request.
    pub record_outcomes: bool,
}

impl Default for EventConfig {
    fn default() -> Self {
        EventConfig::from(&ClusterConfig::default())
    }
}

impl From<&ClusterConfig> for EventConfig {
    fn from(c: &ClusterConfig) -> Self {
        EventConfig {
            queue_capacity: c.queue_capacity,
            steal: c.steal.clone(),
            breaker: c.breaker.clone(),
            max_reroutes: c.max_reroutes,
            witness_every: 1,
            placement: PlacementMode::Exact,
            record_outcomes: true,
        }
    }
}

// ---------------------------------------------------------------------------
// Load generation
// ---------------------------------------------------------------------------

/// SplitMix64 output mixer (the same full-avalanche hash the fault
/// injector uses; reproduced here because the injector keeps its
/// private).
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A weighted shape-signature class in an open-loop workload mix.
#[derive(Debug, Clone)]
pub struct ShapeMix {
    pub name: &'static str,
    pub shapes: Arc<[GemmShape]>,
    pub weight: u32,
}

/// Open-loop load generator: seeded exponential inter-arrivals over a
/// weighted mix of batch shape signatures. Both the mix draw and the
/// inter-arrival draw are pure functions of `(seed, n)`, so a generator
/// is reproducible and two engines fed equal generators see the same
/// arrival process.
#[derive(Debug, Clone)]
pub struct LoadGen {
    seed: u64,
    mean_interarrival_ns: f64,
    mixes: Vec<ShapeMix>,
    total_weight: u64,
    remaining: usize,
    drawn: u64,
}

impl LoadGen {
    pub fn new(
        seed: u64,
        mean_interarrival_ns: f64,
        requests: usize,
        mixes: Vec<ShapeMix>,
    ) -> Self {
        assert!(!mixes.is_empty(), "a load needs at least one shape mix");
        assert!(mean_interarrival_ns > 0.0, "inter-arrival mean must be positive");
        let total_weight = mixes.iter().map(|m| m.weight as u64).sum::<u64>().max(1);
        LoadGen { seed, mean_interarrival_ns, mixes, total_weight, remaining: requests, drawn: 0 }
    }

    /// The paper's Table 2 workload classes as a serving mix: one
    /// representative batch signature per tiling-strategy regime
    /// (small / medium / large / tall / wide / huge), weighted toward
    /// the small end the way inference traffic is.
    pub fn table2(seed: u64, mean_interarrival_ns: f64, requests: usize) -> Self {
        fn sig(shapes: &[GemmShape]) -> Arc<[GemmShape]> {
            shapes.into()
        }
        let mixes = vec![
            ShapeMix { name: "small", shapes: sig(&[GemmShape::new(32, 32, 64); 4]), weight: 30 },
            ShapeMix { name: "medium", shapes: sig(&[GemmShape::new(64, 64, 128); 3]), weight: 25 },
            ShapeMix { name: "large", shapes: sig(&[GemmShape::new(128, 128, 256); 2]), weight: 15 },
            ShapeMix { name: "tall", shapes: sig(&[GemmShape::new(256, 32, 64); 2]), weight: 12 },
            ShapeMix { name: "wide", shapes: sig(&[GemmShape::new(32, 256, 64); 2]), weight: 12 },
            ShapeMix { name: "huge", shapes: sig(&[GemmShape::new(256, 256, 512)]), weight: 6 },
        ];
        LoadGen::new(seed, mean_interarrival_ns, requests, mixes)
    }

    pub fn requests_remaining(&self) -> usize {
        self.remaining
    }

    /// Draw the next request: `(inter-arrival ns since the previous
    /// arrival, shape signature, data seed)`.
    fn next(&mut self) -> Option<(u64, Arc<[GemmShape]>, u64)> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let n = self.drawn;
        self.drawn += 1;
        let h_mix = mix(self.seed ^ 0xA076_1D64_78BD_642F ^ n.wrapping_mul(0xE703_7ED1_A0B4_28DB));
        let pick = h_mix % self.total_weight;
        let mut acc = 0u64;
        let mut shapes = self.mixes[0].shapes.clone();
        for m in &self.mixes {
            acc += m.weight as u64;
            if pick < acc {
                shapes = m.shapes.clone();
                break;
            }
        }
        // Exponential inter-arrival: invert a uniform draw built from
        // the hash's top 53 bits (offset half a ULP so ln never sees 0).
        let h_dt = mix(self.seed ^ 0x8EBC_6AF0_9C88_C6E3 ^ n.wrapping_mul(0x5899_65CC_7537_4CC3));
        let u = ((h_dt >> 11) as f64 + 0.5) / (1u64 << 53) as f64;
        let dt = (-u.ln() * self.mean_interarrival_ns).round().max(1.0) as u64;
        Some((dt, shapes, mix(self.seed ^ n)))
    }
}

// ---------------------------------------------------------------------------
// Outcomes + report
// ---------------------------------------------------------------------------

/// Per-request routing outcome — the decision payload the lockstep
/// suite compares against the threaded engine's `ClusterResult`s.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReqOutcome {
    /// Completed with a result (coordinated or degraded).
    Done { id: u64, device: usize, degraded: bool, stolen: bool, reroutes: u32 },
    /// Rejected at admission: no live device could plan the shapes.
    PlanRejected { id: u64 },
    /// Terminal failure (degraded-path panic).
    Failed { id: u64 },
}

/// What one engine run produced: the familiar [`ClusterStats`] plus the
/// engine-level figures the scaling sweep reports.
#[derive(Debug, Clone)]
pub struct EngineReport {
    pub stats: ClusterStats,
    /// Requests that entered the system (explicit submits + load).
    pub requests: usize,
    /// Events popped off the timeline over the run.
    pub events_processed: u64,
    /// Host wall seconds spent inside [`EventCluster::run`].
    pub wall_elapsed_s: f64,
    /// `events_processed / wall_elapsed_s` — the engine-throughput
    /// figure of merit for the scaling sweep.
    pub events_per_sec: f64,
    /// Requests that executed for real and were bitwise-checked.
    pub witnesses: usize,
    /// Witness results that diverged from `reference_result_exact`
    /// (must be 0; reported rather than panicked so a sweep surfaces
    /// the failure in its artifact).
    pub witness_mismatches: usize,
    /// Simulated timestamp of the last processed event.
    pub horizon: SimTime,
    /// Per-request outcomes when [`EventConfig::record_outcomes`] set.
    pub outcomes: Vec<ReqOutcome>,
}

/// Why a placement attempt found no home (mirrors the threaded
/// `PlaceFail`).
struct PlaceFail {
    job: EvJob,
    any_full: bool,
    plan_err: Option<String>,
}

/// Outcome of the indexed fast path.
enum IndexedPlace {
    Placed(usize),
    /// No live device bid (all dead or every class failed to plan).
    NoCandidate { job: EvJob, plan_err: Option<String> },
    /// Best queue was full — retry with the exact spill-down scan.
    Fallback(EvJob),
}

// ---------------------------------------------------------------------------
// The engine
// ---------------------------------------------------------------------------

/// The discrete-event cluster engine. Single-threaded: construct,
/// enqueue work ([`submit_at`](Self::submit_at) / [`load`](Self::load)
/// / [`kill_at`](Self::kill_at)), then [`run`](Self::run) the timeline
/// to exhaustion.
/// `(arch class name, shape signature) → predicted µs` (or the
/// planner's rejection, memoized so a poisoned signature is not
/// re-planned per device).
type PredictionCache = HashMap<(&'static str, Arc<[GemmShape]>), Result<f64, String>>;

pub struct EventCluster {
    cfg: EventConfig,
    devices: Vec<EvDevice>,
    share: Arc<PlanShare>,
    timeline: Timeline<Ev>,
    obs: Option<Arc<Obs>>,
    clock: Option<Arc<SimClock>>,
    stats: ClusterInner,
    outcomes: Vec<ReqOutcome>,
    /// Engine-level prediction cache: one `session.plan` +
    /// `simulate_solution` per (arch class, shape signature); after
    /// that a placement across 10k devices costs `classes` hash
    /// lookups, not `devices` planner calls.
    predictions: PredictionCache,
    /// Device → arch-class index, and one representative device per
    /// class (predictions are identical within a class).
    class_of: Vec<usize>,
    class_rep: Vec<usize>,
    /// Per-class lazy min-heaps over `(backlog bits, device)`; stale
    /// entries are discarded by value on peek.
    index: Vec<BinaryHeap<Reverse<(u64, usize)>>>,
    /// Sticky: once any breaker trips, placement falls back to the
    /// exact scan so the open-window sidelining semantics stay
    /// bit-for-bit with the threaded engine.
    breaker_active: bool,
    gen: Option<LoadGen>,
    now: SimTime,
    next_job_id: u64,
    events_processed: u64,
    requests: usize,
    witnesses: usize,
    witness_mismatches: usize,
    /// Arrive events scheduled but not yet processed.
    pending_arrivals: usize,
    /// Requests admitted but not yet terminal.
    open_jobs: usize,
}

impl EventCluster {
    pub fn new(pool: Vec<ArchSpec>, cfg: EventConfig) -> Self {
        let n = pool.len();
        EventCluster::with_faults(pool, cfg, vec![None; n])
    }

    pub fn with_faults(
        pool: Vec<ArchSpec>,
        cfg: EventConfig,
        faults: Vec<Option<Arc<FaultInjector>>>,
    ) -> Self {
        EventCluster::build(pool, cfg, faults, None, None)
    }

    /// Build with a fresh [`SimClock`]-backed [`Obs`] installed; the
    /// engine steps the clock as it pops the heap, so the returned bus
    /// records a deterministic trace in simulated time.
    pub fn with_instrumentation(
        pool: Vec<ArchSpec>,
        cfg: EventConfig,
        faults: Vec<Option<Arc<FaultInjector>>>,
    ) -> (Self, Arc<Obs>) {
        let clock = Arc::new(SimClock::new());
        let obs = Arc::new(Obs::sim(Arc::clone(&clock)));
        let eng = EventCluster::build(pool, cfg, faults, Some(Arc::clone(&obs)), Some(clock));
        (eng, obs)
    }

    fn build(
        pool: Vec<ArchSpec>,
        cfg: EventConfig,
        faults: Vec<Option<Arc<FaultInjector>>>,
        obs: Option<Arc<Obs>>,
        clock: Option<Arc<SimClock>>,
    ) -> Self {
        assert!(!pool.is_empty(), "a cluster needs at least one device");
        assert_eq!(pool.len(), faults.len(), "one fault schedule slot per device");
        let share = Arc::new(PlanShare::new());
        let mut class_names: Vec<&'static str> = Vec::new();
        let mut class_of = Vec::with_capacity(pool.len());
        let mut class_rep = Vec::new();
        let devices: Vec<EvDevice> = pool
            .into_iter()
            .zip(faults)
            .enumerate()
            .map(|(id, (arch, fault))| {
                let class = match class_names.iter().position(|n| *n == arch.name) {
                    Some(c) => c,
                    None => {
                        class_names.push(arch.name);
                        class_rep.push(id);
                        class_names.len() - 1
                    }
                };
                class_of.push(class);
                let s = Session::with_share(Framework::new(arch), Arc::clone(&share));
                let session = Arc::new(match &obs {
                    Some(o) => s.with_obs(Arc::clone(o)),
                    None => s,
                });
                EvDevice {
                    id,
                    session,
                    queue: BoundedQueue::new(cfg.queue_capacity),
                    running: None,
                    backlog_us: 0.0,
                    busy_sim_us: 0.0,
                    alive: true,
                    breaker: Breaker::new(cfg.breaker.clone()),
                    fault,
                    placements: 0,
                    completed: 0,
                    steals: 0,
                    reroutes_out: 0,
                    breaker_trips: 0,
                    steal_pending: false,
                    probe_pending: false,
                }
            })
            .collect();
        // Seed every class heap with the all-idle state so the indexed
        // path sees the whole pool from the first placement.
        let mut index: Vec<BinaryHeap<Reverse<(u64, usize)>>> =
            (0..class_rep.len()).map(|_| BinaryHeap::new()).collect();
        for (id, class) in class_of.iter().enumerate() {
            index[*class].push(Reverse((0u64, id)));
        }
        EventCluster {
            cfg,
            devices,
            share,
            timeline: Timeline::new(),
            obs,
            clock,
            stats: ClusterInner::default(),
            outcomes: Vec::new(),
            predictions: HashMap::new(),
            class_of,
            class_rep,
            index,
            breaker_active: false,
            gen: None,
            now: SimTime::ZERO,
            next_job_id: 0,
            events_processed: 0,
            requests: 0,
            witnesses: 0,
            witness_mismatches: 0,
            pending_arrivals: 0,
            open_jobs: 0,
        }
    }

    pub fn devices(&self) -> usize {
        self.devices.len()
    }

    pub fn share(&self) -> &Arc<PlanShare> {
        &self.share
    }

    pub fn observer(&self) -> Option<&Arc<Obs>> {
        self.obs.as_ref()
    }

    /// Schedule one request to arrive at `at`. Returns its job id.
    pub fn submit_at(&mut self, at: SimTime, shapes: Arc<[GemmShape]>, seed: u64) -> u64 {
        let id = self.next_job_id;
        self.next_job_id += 1;
        let witness = self.is_witness(id);
        let job = EvJob {
            id,
            shapes,
            seed,
            arrived: at,
            predicted_us: 0.0,
            attempts: 0,
            stolen: false,
            witness,
        };
        self.pending_arrivals += 1;
        self.timeline.schedule(at, Ev::Arrive { job });
        id
    }

    /// Schedule a device kill at `at` (chaos schedules / sweeps).
    pub fn kill_at(&mut self, at: SimTime, device: usize) {
        assert!(device < self.devices.len(), "no such device");
        self.timeline.schedule(at, Ev::DeviceKill { device });
    }

    /// Attach an open-loop load. Its first arrival is scheduled
    /// relative to the current sim time, and each processed arrival
    /// schedules the next — the heap never holds more than one pending
    /// generated arrival.
    pub fn load(&mut self, mut gen: LoadGen) {
        if let Some((dt, shapes, seed)) = gen.next() {
            let at = self.now.plus(dt);
            self.submit_at(at, shapes, seed);
        }
        self.gen = Some(gen);
    }

    fn is_witness(&self, id: u64) -> bool {
        match self.cfg.witness_every {
            0 => false,
            k => id.is_multiple_of(k as u64),
        }
    }

    fn work_pending(&self) -> bool {
        self.pending_arrivals > 0
            || self.open_jobs > 0
            || self.gen.as_ref().is_some_and(|g| g.requests_remaining() > 0)
    }

    fn obs(&self) -> Option<&Obs> {
        self.obs.as_deref()
    }

    /// Run the timeline to exhaustion and report.
    pub fn run(&mut self) -> EngineReport {
        let t0 = Instant::now();
        while let Some((t, ev)) = self.timeline.pop() {
            debug_assert!(t >= self.now, "timeline popped out of order");
            self.now = t;
            if let Some(c) = &self.clock {
                c.advance_to(t.as_us());
            }
            self.events_processed += 1;
            self.dispatch(ev);
        }
        let wall = t0.elapsed().as_secs_f64();
        EngineReport {
            stats: self.stats_snapshot(),
            requests: self.requests,
            events_processed: self.events_processed,
            wall_elapsed_s: wall,
            events_per_sec: if wall > 0.0 { self.events_processed as f64 / wall } else { 0.0 },
            witnesses: self.witnesses,
            witness_mismatches: self.witness_mismatches,
            horizon: self.now,
            outcomes: std::mem::take(&mut self.outcomes),
        }
    }

    /// Point-in-time [`ClusterStats`] in the threaded vocabulary.
    pub fn stats_snapshot(&self) -> ClusterStats {
        let mut devices: Vec<DeviceStats> = self.devices.iter().map(EvDevice::snapshot).collect();
        let makespan = devices.iter().map(|d| d.busy_sim_us).fold(0.0, f64::max);
        for d in &mut devices {
            d.utilization = if makespan > 0.0 { d.busy_sim_us / makespan } else { 0.0 };
        }
        let mut plan_cache = CacheStats::default();
        for dev in &self.devices {
            let s = dev.session.stats();
            plan_cache.hits += s.hits;
            plan_cache.misses += s.misses;
        }
        let memo = self.share.sim_memo();
        let sim_memo = CacheStats { hits: memo.hits(), misses: memo.misses() };
        self.stats.snapshot(devices, plan_cache, sim_memo)
    }

    // -- event dispatch ---------------------------------------------------

    fn dispatch(&mut self, ev: Ev) {
        match ev {
            Ev::Arrive { job } => self.on_arrive(job),
            Ev::PlaceDone { job } => self.on_place(job),
            Ev::ExecDone { device } => self.on_exec_done(device),
            Ev::StealCheck { device } => self.on_steal_check(device),
            Ev::BreakerProbe { device } => self.on_breaker_probe(device),
            Ev::DeviceKill { device } => self.on_kill(device),
        }
    }

    fn on_arrive(&mut self, job: EvJob) {
        self.pending_arrivals -= 1;
        self.open_jobs += 1;
        self.requests += 1;
        // Admit is traced before placement, mirroring the threaded
        // submit path's ordering contract.
        if let Some(o) = self.obs() {
            o.point(PointKind::Admit { req: job.id });
        }
        // Keep the open-loop source primed: one pending generated
        // arrival at a time.
        if let Some(mut gen) = self.gen.take() {
            let next = gen.next();
            self.gen = Some(gen);
            if let Some((dt, shapes, seed)) = next {
                let at = self.now.plus(dt);
                self.submit_at(at, shapes, seed);
            }
        }
        self.timeline.schedule(self.now, Ev::PlaceDone { job });
    }

    fn on_place(&mut self, job: EvJob) {
        let id = job.id;
        match self.place_attempt(job, None) {
            Ok(device) => {
                self.stats.submitted.fetch_add(1, Ordering::Relaxed);
                self.maybe_start(device);
            }
            Err(fail) if fail.any_full => {
                // Backpressure: every candidate queue is full. The
                // threaded submit loop sleeps 50 µs and retries; we
                // reschedule the placement the same distance out.
                self.timeline.schedule(self.now.plus(BACKOFF_NS), Ev::PlaceDone { job: fail.job });
            }
            Err(fail) => {
                if fail.plan_err.is_some() {
                    if let Some(o) = self.obs() {
                        o.point(PointKind::Reject { req: Some(id) });
                    }
                    self.open_jobs -= 1;
                    if self.cfg.record_outcomes {
                        self.outcomes.push(ReqOutcome::PlanRejected { id });
                    }
                    return;
                }
                // No live device at all: degraded inline, like the
                // threaded submit path.
                self.stats.submitted.fetch_add(1, Ordering::Relaxed);
                self.degrade_inline(fail.job);
            }
        }
    }

    fn on_exec_done(&mut self, device: usize) {
        let Some(Running { job, fate }) = self.devices[device].running.take() else {
            return;
        };
        match fate {
            Fate::Complete => self.complete_job(device, job),
            Fate::PlanFailed => {
                self.stats.plan_failures.fetch_add(1, Ordering::Relaxed);
                if let Some(o) = self.obs() {
                    o.point(PointKind::PlanFailure);
                }
                self.fail_and_reroute(device, job);
            }
            Fate::Panicked => {
                self.stats.worker_panics.fetch_add(1, Ordering::Relaxed);
                if let Some(o) = self.obs() {
                    o.point(PointKind::PanicCaught);
                    o.dump_flight("worker panic");
                }
                self.fail_and_reroute(device, job);
            }
        }
        self.maybe_start(device);
        self.maybe_schedule_steal(device);
    }

    fn on_steal_check(&mut self, thief_idx: usize) {
        self.devices[thief_idx].steal_pending = false;
        let thief = &self.devices[thief_idx];
        if !thief.alive || thief.breaker.is_open() || !thief.idle() {
            return;
        }
        if self.try_steal(thief_idx) {
            // Busy now; the next idle transition re-arms the check.
            return;
        }
        self.maybe_schedule_steal(thief_idx);
    }

    fn on_breaker_probe(&mut self, device: usize) {
        self.devices[device].probe_pending = false;
        if !self.devices[device].alive {
            return;
        }
        if self.devices[device].breaker.is_open() {
            // Still serving the open window: probe again later.
            if self.work_pending() {
                self.devices[device].probe_pending = true;
                self.timeline.schedule(self.now.plus(PROBE_NS), Ev::BreakerProbe { device });
            }
            return;
        }
        // Healed: an idle recovered device goes back to stealing.
        self.maybe_schedule_steal(device);
    }

    fn on_kill(&mut self, device: usize) {
        if !self.devices[device].alive {
            return; // already dead
        }
        self.devices[device].alive = false;
        self.stats.kills.fetch_add(1, Ordering::Relaxed);
        if let Some(o) = self.obs() {
            o.point(PointKind::Kill { device });
        }
        // Mirror the threaded kill: close the queue, then re-route
        // everything that was waiting. A job mid-execution finishes
        // normally (its ExecDone is already on the heap).
        self.devices[device].queue.close();
        self.drain_and_reroute(device);
    }

    // -- placement --------------------------------------------------------

    /// Memoized prediction for `shapes` on device `dev_idx`'s arch
    /// class — the same plan + `simulate_solution` number the threaded
    /// `predict_us` computes, shared across all devices of the class.
    fn predict_cached(&mut self, dev_idx: usize, shapes: &Arc<[GemmShape]>) -> Result<f64, String> {
        let class = self.class_of[dev_idx];
        let rep = self.class_rep[class];
        let name = self.devices[rep].arch().name;
        if let Some(r) = self.predictions.get(&(name, Arc::clone(shapes))) {
            return r.clone();
        }
        let session = &self.devices[rep].session;
        let r = session.plan(shapes).map(|plan| {
            let fw = session.framework();
            session.sim_memo().simulate_solution(
                fw.arch(),
                shapes,
                &plan.solution,
                plan.heuristic,
                fw.thresholds(),
            )
        });
        self.predictions.insert((name, Arc::clone(shapes)), r.clone());
        r
    }

    fn use_index(&self, exclude: Option<usize>) -> bool {
        if self.breaker_active || exclude.is_some() {
            return false;
        }
        match self.cfg.placement {
            PlacementMode::Exact => false,
            PlacementMode::Indexed => true,
            PlacementMode::Auto => self.devices.len() >= 64,
        }
    }

    fn index_key(&self, device: usize) -> u64 {
        // Backlogs are clamped non-negative, and non-negative IEEE
        // doubles order identically to their bit patterns.
        self.devices[device].backlog().to_bits()
    }

    /// Record `device`'s current backlog in its class heap (lazy
    /// invalidation: older entries for the device go stale by value).
    fn index_touch(&mut self, device: usize) {
        let class = self.class_of[device];
        let key = self.index_key(device);
        self.index[class].push(Reverse((key, device)));
    }

    /// One placement attempt. The exact path mirrors the threaded
    /// `try_place` line for line; the indexed path short-circuits the
    /// scan with per-class argmins, which pick the same device whenever
    /// no breaker is open and the best queue is not full — and fall
    /// back to the exact scan otherwise. Returns the placed-on device.
    fn place_attempt(
        &mut self,
        job: EvJob,
        exclude: Option<usize>,
    ) -> Result<usize, Box<PlaceFail>> {
        if self.use_index(exclude) {
            match self.place_indexed(job) {
                IndexedPlace::Placed(d) => return Ok(d),
                IndexedPlace::NoCandidate { job, plan_err } => {
                    return Err(Box::new(PlaceFail { job, any_full: false, plan_err }))
                }
                IndexedPlace::Fallback(job) => return self.place_exact(job, exclude),
            }
        }
        self.place_exact(job, exclude)
    }

    /// Indexed argmin placement: peek each class heap's valid head
    /// (same within-class order as the global ranking, because the
    /// predicted time is constant within a class), then compare class
    /// winners with the identical completion-then-id ordering.
    fn place_indexed(&mut self, mut job: EvJob) -> IndexedPlace {
        let obs_arc = self.obs.clone();
        let _place = obs_arc.as_ref().map(|o| o.span(SpanKind::Place));
        let shapes = job.shapes.clone();
        let mut plan_err: Option<String> = None;
        let mut best: Option<Candidate> = None;
        for class in 0..self.class_rep.len() {
            let rep = self.class_rep[class];
            let predicted_us = match self.predict_cached(rep, &shapes) {
                Ok(v) => v,
                Err(m) => {
                    plan_err = Some(m);
                    continue;
                }
            };
            // Discard stale heads, then peek the class argmin.
            let head = loop {
                let Some(&Reverse((key, device))) = self.index[class].peek() else {
                    break None;
                };
                if self.devices[device].alive && self.index_key(device) == key {
                    break Some((key, device));
                }
                self.index[class].pop();
            };
            let Some((key, device)) = head else { continue };
            let cand = Candidate { device, backlog_us: f64::from_bits(key), predicted_us };
            let better = match &best {
                None => true,
                Some(b) => cand
                    .completion_us()
                    .total_cmp(&b.completion_us())
                    .then(cand.device.cmp(&b.device))
                    .is_lt(),
            };
            if better {
                best = Some(cand);
            }
        }
        let Some(c) = best else {
            return IndexedPlace::NoCandidate { job, plan_err };
        };
        job.predicted_us = c.predicted_us;
        self.devices[c.device].backlog_us += c.predicted_us;
        match self.devices[c.device].queue.try_push(job) {
            Ok(()) => {
                self.finish_placement(c.device);
                IndexedPlace::Placed(c.device)
            }
            Err((_kind, j)) => {
                self.devices[c.device].backlog_us -= c.predicted_us;
                IndexedPlace::Fallback(j)
            }
        }
    }

    /// The exact scan — a line-for-line mirror of the threaded
    /// `try_place`, with predictions served from the class cache.
    fn place_exact(
        &mut self,
        mut job: EvJob,
        exclude: Option<usize>,
    ) -> Result<usize, Box<PlaceFail>> {
        let obs_arc = self.obs.clone();
        let _place = obs_arc.as_ref().map(|o| o.span(SpanKind::Place));
        let shapes = job.shapes.clone();
        let mut candidates = Vec::with_capacity(self.devices.len());
        let mut plan_err = None;
        for i in 0..self.devices.len() {
            if Some(i) == exclude || !self.devices[i].alive {
                continue;
            }
            match self.predict_cached(i, &shapes) {
                Ok(predicted_us) => candidates.push(Candidate {
                    device: i,
                    backlog_us: self.devices[i].backlog(),
                    predicted_us,
                }),
                Err(m) => plan_err = Some(m),
            }
        }
        if candidates.is_empty() {
            return Err(Box::new(PlaceFail { job, any_full: false, plan_err }));
        }
        let all_open = candidates.iter().all(|c| self.devices[c.device].breaker.is_open());
        let candidates = placer::rank(candidates);
        let mut any_full = false;
        for c in &candidates {
            if !all_open && self.devices[c.device].breaker.consume_open() {
                continue;
            }
            job.predicted_us = c.predicted_us;
            self.devices[c.device].backlog_us += c.predicted_us;
            match self.devices[c.device].queue.try_push(job) {
                Ok(()) => {
                    self.finish_placement(c.device);
                    return Ok(c.device);
                }
                Err((kind, j)) => {
                    self.devices[c.device].backlog_us -= c.predicted_us;
                    any_full |= kind == PushError::Full;
                    job = j;
                }
            }
        }
        Err(Box::new(PlaceFail { job, any_full, plan_err: None }))
    }

    fn finish_placement(&mut self, device: usize) {
        self.devices[device].placements += 1;
        self.stats.routed.fetch_add(1, Ordering::Relaxed);
        if let Some(o) = self.obs() {
            o.point(PointKind::Routed { device });
        }
        self.index_touch(device);
    }

    // -- execution --------------------------------------------------------

    /// If `device` is idle and has queued work, start its front job.
    fn maybe_start(&mut self, device: usize) {
        if self.devices[device].running.is_some() {
            return;
        }
        let Some(job) = self.devices[device].queue.try_pop() else {
            return;
        };
        self.start_job(device, job);
    }

    /// Roll the job's fate (threaded worker order: slow stall → plan
    /// failure → exec panic) and schedule its `ExecDone`.
    fn start_job(&mut self, device: usize, job: EvJob) {
        let dev = &self.devices[device];
        // Injected worker stall: the threaded engine sleeps wall time;
        // here the stall is sim time ahead of the work.
        let stall_ns = match &dev.fault {
            Some(f) => {
                f.roll_slow().map(|d| d.as_nanos().min(u128::from(u64::MAX)) as u64).unwrap_or(0)
            }
            None => 0,
        };
        let fate = if dev.roll(FaultSite::PlanFail) {
            Fate::PlanFailed
        } else if dev.roll(FaultSite::ExecPanic) {
            Fate::Panicked
        } else {
            Fate::Complete
        };
        let exec_ns = match fate {
            // Never zero, so a completion cannot share its timestamp
            // with the placement that caused it.
            Fate::Complete => ((job.predicted_us * 1_000.0).round() as u64).max(1),
            // Failures surface almost immediately; the threaded engine
            // charges no simulated time for them either.
            Fate::PlanFailed | Fate::Panicked => 1,
        };
        let done = self.now.plus(stall_ns + exec_ns);
        self.devices[device].running = Some(Running { job, fate });
        self.timeline.schedule(done, Ev::ExecDone { device });
    }

    /// Coordinated completion. Witnesses execute for real and are
    /// bitwise-checked; everyone else completes by accounting, charging
    /// the simulated time the placer predicted — which is the identical
    /// number `SimReport::total_us` would report, because both read the
    /// same memo entry. That shared source of truth is why
    /// `mean_abs_placement_err_us` stays 0 on both engines.
    fn complete_job(&mut self, device: usize, job: EvJob) {
        let executed_us = if job.witness {
            self.witnesses += 1;
            let batch = GemmBatch::random(&job.shapes, WITNESS_ALPHA, WITNESS_BETA, job.seed);
            // Plan first (warm cache), then the Exec span — the same
            // span order the threaded worker produces.
            let plan = self.devices[device]
                .session
                .plan(&batch.shapes)
                .expect("witness plan is warm: placement already planned this signature");
            let obs_arc = self.obs.clone();
            let guard = obs_arc.as_ref().map(|o| o.span(SpanKind::Exec));
            let (results, report) = self.devices[device].session.framework().execute(&batch, &plan);
            if let Some(g) = guard {
                g.finish();
            }
            let oracle = batch.reference_result_exact();
            if bitwise_mismatch(&oracle, &results).is_some() {
                self.witness_mismatches += 1;
            }
            report.total_us
        } else {
            if let Some(o) = self.obs() {
                o.span(SpanKind::Exec).finish();
            }
            job.predicted_us
        };
        let dev = &mut self.devices[device];
        dev.breaker.record_success();
        dev.backlog_us -= job.predicted_us;
        dev.busy_sim_us += executed_us;
        dev.completed += 1;
        self.stats.completed.fetch_add(1, Ordering::Relaxed);
        self.stats.record_placement_err(job.predicted_us, executed_us);
        let wall_us = self.now.as_ns().saturating_sub(job.arrived.as_ns()) as f64 / 1_000.0;
        self.stats.record_latency(wall_us);
        if let Some(o) = self.obs() {
            o.point(PointKind::BatchDone { req: job.id, device, degraded: false, abandoned: false });
        }
        self.open_jobs -= 1;
        if self.cfg.record_outcomes {
            self.outcomes.push(ReqOutcome::Done {
                id: job.id,
                device,
                degraded: false,
                stolen: job.stolen,
                reroutes: job.attempts,
            });
        }
        self.index_touch(device);
    }

    /// Threaded `fail_and_reroute`, verbatim order: charge the breaker
    /// (a trip drains the queue onto survivors *before* this job
    /// moves), release the backlog, then re-route the failing job.
    fn fail_and_reroute(&mut self, device: usize, job: EvJob) {
        if self.devices[device].breaker.record_failure() {
            self.devices[device].breaker_trips += 1;
            self.stats.breaker_trips.fetch_add(1, Ordering::Relaxed);
            self.breaker_active = true;
            if let Some(o) = self.obs() {
                o.point(PointKind::BreakerTrip);
                o.dump_flight("breaker trip");
            }
            self.drain_and_reroute(device);
            if !self.devices[device].probe_pending && self.work_pending() {
                self.devices[device].probe_pending = true;
                self.timeline.schedule(self.now.plus(PROBE_NS), Ev::BreakerProbe { device });
            }
        }
        self.devices[device].backlog_us -= job.predicted_us;
        self.index_touch(device);
        self.reroute(job, device);
    }

    fn drain_and_reroute(&mut self, device: usize) {
        while let Some(job) = self.devices[device].queue.try_pop() {
            self.devices[device].backlog_us -= job.predicted_us;
            self.reroute(job, device);
        }
        self.index_touch(device);
    }

    fn reroute(&mut self, mut job: EvJob, from: usize) {
        job.attempts += 1;
        self.stats.reroutes.fetch_add(1, Ordering::Relaxed);
        self.devices[from].reroutes_out += 1;
        if let Some(o) = self.obs() {
            o.point(PointKind::Reroute { from });
        }
        if job.attempts > self.cfg.max_reroutes {
            self.degrade_inline(job);
            return;
        }
        match self.place_attempt(job, Some(from)) {
            Ok(device) => self.maybe_start(device),
            Err(fail) => self.degrade_inline(fail.job),
        }
    }

    /// Terminal fallback, mirroring the threaded `degrade_inline`: the
    /// strongest live device's architecture parametrises the baseline;
    /// only witnesses actually run it (degraded results are bitwise-
    /// exact too, so the sample proves the path).
    fn degrade_inline(&mut self, job: EvJob) {
        let donor = self.devices.iter().find(|d| d.alive).map_or(0, |d| d.id);
        let inject = self.devices[donor].roll(FaultSite::DegradedPanic);
        let obs_arc = self.obs.clone();
        let guard = obs_arc.as_ref().map(|o| o.span(SpanKind::DegradedExec));
        if inject {
            // The injected baseline panic: span closed first, then the
            // caught-panic bookkeeping, then the terminal Failed event
            // — the threaded engine's exact tail.
            if let Some(g) = guard {
                g.finish();
            }
            self.stats.worker_panics.fetch_add(1, Ordering::Relaxed);
            if let Some(o) = self.obs() {
                o.point(PointKind::PanicCaught);
                o.dump_flight("degraded worker panic");
                o.point(PointKind::Failed { req: job.id, abandoned: false });
            }
            self.open_jobs -= 1;
            if self.cfg.record_outcomes {
                self.outcomes.push(ReqOutcome::Failed { id: job.id });
            }
            return;
        }
        if job.witness {
            self.witnesses += 1;
            let batch = GemmBatch::random(&job.shapes, WITNESS_ALPHA, WITNESS_BETA, job.seed);
            let results = ctb_baselines::default_functional(self.devices[donor].arch(), &batch);
            let oracle = batch.reference_result_exact();
            if bitwise_mismatch(&oracle, &results).is_some() {
                self.witness_mismatches += 1;
            }
        }
        if let Some(g) = guard {
            g.finish();
        }
        let wall_us = self.now.as_ns().saturating_sub(job.arrived.as_ns()) as f64 / 1_000.0;
        self.stats.completed.fetch_add(1, Ordering::Relaxed);
        self.stats.degraded.fetch_add(1, Ordering::Relaxed);
        self.stats.record_latency(wall_us);
        if let Some(o) = self.obs() {
            o.point(PointKind::BatchDone {
                req: job.id,
                device: donor,
                degraded: true,
                abandoned: false,
            });
        }
        self.open_jobs -= 1;
        if self.cfg.record_outcomes {
            self.outcomes.push(ReqOutcome::Done {
                id: job.id,
                device: donor,
                degraded: true,
                stolen: job.stolen,
                reroutes: job.attempts,
            });
        }
    }

    // -- stealing ---------------------------------------------------------

    fn maybe_schedule_steal(&mut self, device: usize) {
        if !self.cfg.steal.enabled {
            return;
        }
        let dev = &self.devices[device];
        if !dev.alive || !dev.idle() || dev.steal_pending || !self.work_pending() {
            return;
        }
        let poll_ns = self.cfg.steal.poll.as_nanos().min(u128::from(u64::MAX)) as u64;
        self.devices[device].steal_pending = true;
        self.timeline.schedule(self.now.plus(poll_ns.max(1)), Ev::StealCheck { device });
    }

    /// The threaded `try_steal`, event-shaped: victim selection, the
    /// `steal_beneficial` test, and the identity-checked claim all run
    /// through the same seams.
    fn try_steal(&mut self, thief_idx: usize) -> bool {
        let mut victim: Option<(usize, f64)> = None;
        for dev in &self.devices {
            if dev.id == thief_idx || !dev.alive || dev.queue.is_empty() {
                continue;
            }
            let backlog = dev.backlog();
            if backlog >= self.cfg.steal.min_victim_backlog_us
                && victim.is_none_or(|(_, b)| backlog > b)
            {
                victim = Some((dev.id, backlog));
            }
        }
        let Some((victim_idx, victim_backlog)) = victim else {
            return false;
        };
        let Some(shapes) = self.devices[victim_idx].queue.peek_map(|j| j.shapes.clone()) else {
            return false;
        };
        let Ok(predicted_here) = self.predict_cached(thief_idx, &shapes) else {
            return false;
        };
        if !placer::steal_beneficial(
            victim_backlog,
            predicted_here,
            self.cfg.steal.min_victim_backlog_us,
        ) {
            return false;
        }
        let Some(mut job) = self.devices[victim_idx].queue.pop_if(|j| j.shapes == shapes) else {
            return false;
        };
        self.devices[victim_idx].backlog_us -= job.predicted_us;
        self.index_touch(victim_idx);
        job.predicted_us = predicted_here;
        job.stolen = true;
        self.devices[thief_idx].backlog_us += predicted_here;
        self.devices[thief_idx].steals += 1;
        self.stats.steals.fetch_add(1, Ordering::Relaxed);
        if let Some(o) = self.obs() {
            o.point(PointKind::Steal { to: thief_idx, from: victim_idx });
        }
        self.index_touch(thief_idx);
        self.start_job(thief_idx, job);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctb_serve::FaultConfig;
    use std::time::Duration;

    fn sig(shapes: &[GemmShape]) -> Arc<[GemmShape]> {
        shapes.into()
    }

    fn quiet_cfg() -> EventConfig {
        EventConfig::default()
    }

    #[test]
    fn timeline_orders_by_time_then_schedule_order() {
        let mut t: Timeline<u32> = Timeline::new();
        t.schedule(SimTime(50), 1);
        t.schedule(SimTime(10), 2);
        t.schedule(SimTime(50), 3);
        t.schedule(SimTime(10), 4);
        assert_eq!(t.peek_time(), Some(SimTime(10)));
        let order: Vec<(u64, u32)> = std::iter::from_fn(|| t.pop())
            .map(|(at, ev)| (at.as_ns(), ev))
            .collect();
        // Equal timestamps pop FIFO in schedule order.
        assert_eq!(order, vec![(10, 2), (10, 4), (50, 1), (50, 3)]);
        assert!(t.is_empty());
    }

    #[test]
    fn sim_time_units_convert() {
        assert_eq!(SimTime::from_us(3).as_ns(), 3_000);
        assert_eq!(SimTime(1_500).as_us(), 1);
        assert_eq!(SimTime(1_500).plus(500).as_us(), 2);
    }

    #[test]
    fn single_request_is_witnessed_and_bitwise_exact() {
        let mut eng = EventCluster::new(ArchSpec::pool_presets(2), quiet_cfg());
        eng.submit_at(
            SimTime::ZERO,
            sig(&[GemmShape::new(48, 64, 96), GemmShape::new(16, 32, 128)]),
            7,
        );
        let report = eng.run();
        assert_eq!(report.requests, 1);
        assert_eq!(report.stats.submitted, 1);
        assert_eq!(report.stats.completed, 1);
        assert_eq!(report.stats.degraded, 0);
        assert_eq!(report.witnesses, 1);
        assert_eq!(report.witness_mismatches, 0, "witness must be bitwise-exact");
        assert_eq!(report.stats.mean_abs_placement_err_us, 0.0);
        assert!(matches!(
            report.outcomes[..],
            [ReqOutcome::Done { id: 0, degraded: false, stolen: false, reroutes: 0, .. }]
        ));
    }

    #[test]
    fn loadgen_is_deterministic_and_conserves_requests() {
        let mut a = LoadGen::table2(11, 40_000.0, 64);
        let mut b = LoadGen::table2(11, 40_000.0, 64);
        let da: Vec<_> = std::iter::from_fn(|| a.next()).collect();
        let db: Vec<_> = std::iter::from_fn(|| b.next()).collect();
        assert_eq!(da.len(), 64);
        assert_eq!(da, db, "same seed, same arrival process");
        assert!(da.iter().all(|(dt, _, _)| *dt >= 1));
        // More than one mix class gets drawn at 64 requests.
        let distinct: std::collections::HashSet<usize> =
            da.iter().map(|(_, s, _)| s.len()).collect();
        assert!(distinct.len() > 1, "mix draws collapse to one class");
    }

    #[test]
    fn open_loop_load_completes_every_request() {
        let mut cfg = quiet_cfg();
        cfg.witness_every = 97;
        let mut eng = EventCluster::new(ArchSpec::pool_presets(4), cfg);
        eng.load(LoadGen::table2(3, 30_000.0, 400));
        let report = eng.run();
        assert_eq!(report.requests, 400);
        assert_eq!(report.stats.submitted, 400);
        assert_eq!(report.stats.completed, 400);
        assert_eq!(report.stats.degraded, 0);
        assert!(report.witnesses >= 4);
        assert_eq!(report.witness_mismatches, 0);
        assert_eq!(report.stats.mean_abs_placement_err_us, 0.0);
        assert!(report.events_processed as usize >= 3 * 400);
    }

    #[test]
    fn same_inputs_same_outcomes_and_trace() {
        let build = || {
            let mut cfg = quiet_cfg();
            cfg.witness_every = 5;
            let (mut eng, obs) =
                EventCluster::with_instrumentation(ArchSpec::pool_presets(3), cfg, vec![None; 3]);
            eng.load(LoadGen::table2(21, 25_000.0, 120));
            let report = eng.run();
            (report, obs.render())
        };
        let (ra, ta) = build();
        let (rb, tb) = build();
        assert_eq!(ra.outcomes, rb.outcomes);
        assert_eq!(ra.events_processed, rb.events_processed);
        assert_eq!(ra.stats.makespan_sim_us, rb.stats.makespan_sim_us);
        assert_eq!(ta, tb, "same inputs must render a byte-identical trace");
    }

    #[test]
    fn indexed_placement_matches_exact_scan() {
        let run = |mode: PlacementMode| {
            let mut cfg = quiet_cfg();
            cfg.witness_every = 0;
            cfg.placement = mode;
            let mut eng = EventCluster::new(ArchSpec::pool_presets(12), cfg);
            // Tight inter-arrivals so queues build and spill-down and
            // steals actually exercise the index.
            eng.load(LoadGen::table2(9, 4_000.0, 500));
            eng.run()
        };
        let exact = run(PlacementMode::Exact);
        let indexed = run(PlacementMode::Indexed);
        assert_eq!(exact.outcomes, indexed.outcomes, "index changed a routing decision");
        assert_eq!(exact.stats.makespan_sim_us, indexed.stats.makespan_sim_us);
        assert_eq!(exact.stats.steals, indexed.stats.steals);
        assert_eq!(exact.stats.completed, 500);
    }

    #[test]
    fn kill_reroutes_queued_work_to_survivors() {
        let mut cfg = quiet_cfg();
        cfg.witness_every = 3;
        cfg.steal.enabled = false;
        let mut eng = EventCluster::new(ArchSpec::pool_presets(2), cfg);
        let shapes = sig(&[GemmShape::new(64, 64, 320); 2]);
        for i in 0..10 {
            eng.submit_at(SimTime::ZERO, shapes.clone(), i);
        }
        // Kill device 0 while its queue still holds work.
        eng.kill_at(SimTime(5), 0);
        let report = eng.run();
        assert_eq!(report.stats.kills, 1);
        assert_eq!(report.stats.completed, 10, "kill must not drop work");
        assert!(report.stats.reroutes > 0, "queued batches re-route off the dead device");
        assert_eq!(report.witness_mismatches, 0);
        // Everything after the kill lands on (or finishes on) device 1
        // or the degraded baseline — never the corpse.
        let late_on_dead = report.outcomes.iter().any(|o| {
            matches!(o, ReqOutcome::Done { device: 0, degraded: false, reroutes, .. } if *reroutes > 0)
        });
        assert!(!late_on_dead, "re-routed work must avoid the killed device");
    }

    #[test]
    fn stalled_victim_gets_relieved_by_steals() {
        // Device 0 stalls 2 ms (sim) per job, so its queue outlives
        // device 1's; once device 1 idles, the model says moving the
        // front batch wins and the steal fires.
        let mut cfg = quiet_cfg();
        cfg.witness_every = 0;
        let fault = Arc::new(FaultInjector::new(
            FaultConfig::new(5).slow_worker(1000, Duration::from_millis(2)),
        ));
        let mut eng = EventCluster::with_faults(
            ArchSpec::pool_presets(2),
            cfg,
            vec![Some(fault), None],
        );
        let shapes = sig(&[GemmShape::new(64, 64, 128); 3]);
        for i in 0..20 {
            eng.submit_at(SimTime::ZERO, shapes.clone(), i);
        }
        let report = eng.run();
        assert_eq!(report.stats.completed, 20);
        assert!(report.stats.steals >= 1, "expected at least one steal, got stats {:?}", report.stats.steals);
        let stolen = report
            .outcomes
            .iter()
            .filter(|o| matches!(o, ReqOutcome::Done { stolen: true, .. }))
            .count();
        assert_eq!(stolen, report.stats.steals);
    }

    #[test]
    fn exec_panics_trip_the_breaker_and_work_survives() {
        let mut cfg = quiet_cfg();
        cfg.witness_every = 4;
        let fault = Arc::new(FaultInjector::new(FaultConfig::new(2).exec_panic(1000)));
        let mut eng = EventCluster::with_faults(
            ArchSpec::pool_presets(2),
            cfg,
            vec![Some(Arc::clone(&fault)), None],
        );
        let shapes = sig(&[GemmShape::new(48, 48, 256); 2]);
        for i in 0..30 {
            eng.submit_at(SimTime(i * 1_000), shapes.clone(), i);
        }
        let report = eng.run();
        assert_eq!(report.stats.completed, 30, "every request still completes");
        assert_eq!(report.stats.worker_panics, fault.log().exec_panics);
        assert!(report.stats.breaker_trips >= 1, "8 consecutive panics must trip");
        assert_eq!(report.witness_mismatches, 0);
        // Jobs that failed on device 0 finish elsewhere.
        assert!(report.stats.reroutes >= report.stats.worker_panics);
    }
}

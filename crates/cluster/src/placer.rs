//! Pure placement policy: where does a batch go, and when does a steal
//! pay off?
//!
//! Both decisions are driven entirely by the analytical simulator — the
//! same model the paper uses to choose tilings and batchings chooses the
//! device here. Keeping the policy pure (no locks, no atomics, plain
//! slices in, index out) makes it exhaustively testable without spinning
//! up a cluster.

/// One device's bid for a batch, as seen at placement time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Candidate {
    /// Cluster-wide device id.
    pub device: usize,
    /// Simulated microseconds of work already queued or running on the
    /// device (advisory — completions race it — but conservative).
    pub backlog_us: f64,
    /// Simulated microseconds the batch itself would take on the
    /// device, from the per-arch cost model (memoized).
    pub predicted_us: f64,
}

impl Candidate {
    /// Predicted completion time: everything ahead of the batch plus
    /// the batch itself.
    pub fn completion_us(&self) -> f64 {
        self.backlog_us + self.predicted_us
    }
}

/// Pick the device with the earliest predicted completion time.
/// Ties break toward the lower device id (pools are fastest-first, so
/// ties prefer the stronger device); an empty slate returns `None`.
pub fn choose(candidates: &[Candidate]) -> Option<usize> {
    candidates
        .iter()
        .min_by(|a, b| {
            a.completion_us()
                .total_cmp(&b.completion_us())
                .then(a.device.cmp(&b.device))
        })
        .map(|c| c.device)
}

/// Order a full candidate slate best-first: ascending predicted
/// completion, ties toward the lower device id. `rank(..)[0]` agrees
/// with [`choose`]; the tail is the spill-down order a placer walks
/// when better queues are full or sidelined. Both the threaded and the
/// discrete-event cluster engines place through this one ranking, which
/// is what makes their decisions comparable in the lockstep suite.
pub fn rank(mut candidates: Vec<Candidate>) -> Vec<Candidate> {
    candidates.sort_by(|a, b| {
        a.completion_us().total_cmp(&b.completion_us()).then(a.device.cmp(&b.device))
    });
    candidates
}

/// Should an idle thief take the victim's front batch?
///
/// Yes when the victim is saturated enough to bother
/// (`victim_backlog_us` at or above the policy floor — stealing a batch
/// from a nearly-idle device wastes the transfer for no makespan gain)
/// and running the batch on the thief finishes before the batch would
/// even *start* on the victim (its whole backlog is ahead of it). Under
/// that test a slow M60 only relieves a saturated V100 when the model
/// says the M60 genuinely shortens the batch's completion.
pub fn steal_beneficial(
    victim_backlog_us: f64,
    predicted_on_thief_us: f64,
    min_victim_backlog_us: f64,
) -> bool {
    victim_backlog_us >= min_victim_backlog_us && predicted_on_thief_us < victim_backlog_us
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(device: usize, backlog_us: f64, predicted_us: f64) -> Candidate {
        Candidate { device, backlog_us, predicted_us }
    }

    #[test]
    fn chooses_minimum_completion_not_minimum_predicted() {
        // Device 0 runs the batch faster but is saturated; device 1 is
        // slower per-batch yet finishes sooner overall.
        let got = choose(&[c(0, 1000.0, 10.0), c(1, 0.0, 25.0)]);
        assert_eq!(got, Some(1));
    }

    #[test]
    fn idle_pool_routes_to_the_fastest_device() {
        let got = choose(&[c(0, 0.0, 10.0), c(1, 0.0, 12.0), c(2, 0.0, 30.0)]);
        assert_eq!(got, Some(0));
    }

    #[test]
    fn ties_break_toward_the_lower_id() {
        assert_eq!(choose(&[c(2, 5.0, 5.0), c(1, 0.0, 10.0)]), Some(1));
        assert_eq!(choose(&[c(1, 0.0, 10.0), c(2, 5.0, 5.0)]), Some(1));
    }

    #[test]
    fn empty_slate_has_no_placement() {
        assert_eq!(choose(&[]), None);
    }

    #[test]
    fn singleton_always_wins() {
        assert_eq!(choose(&[c(3, 99.0, 1.0)]), Some(3));
    }

    #[test]
    fn rank_agrees_with_choose_and_orders_the_spill() {
        let slate = vec![c(2, 5.0, 5.0), c(0, 1000.0, 10.0), c(1, 0.0, 25.0)];
        let ranked = rank(slate.clone());
        assert_eq!(ranked[0].device, choose(&slate).unwrap());
        let order: Vec<usize> = ranked.iter().map(|x| x.device).collect();
        assert_eq!(order, vec![2, 1, 0]);
        // Ties break toward the lower id at every rank, not just the head.
        let tied = rank(vec![c(3, 0.0, 10.0), c(1, 5.0, 5.0), c(2, 10.0, 0.0)]);
        let order: Vec<usize> = tied.iter().map(|x| x.device).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn steal_requires_a_saturated_victim() {
        // Victim below the floor: never steal, even if the thief is fast.
        assert!(!steal_beneficial(10.0, 1.0, 50.0));
        // Saturated victim, thief beats the wait: steal.
        assert!(steal_beneficial(100.0, 30.0, 50.0));
        // Saturated victim but the thief is slower than the wait: the
        // batch is better off staying queued.
        assert!(!steal_beneficial(100.0, 150.0, 50.0));
        // Boundary: thief time equal to the wait is not a win.
        assert!(!steal_beneficial(100.0, 100.0, 50.0));
        // Boundary: backlog exactly at the floor qualifies.
        assert!(steal_beneficial(50.0, 10.0, 50.0));
    }
}

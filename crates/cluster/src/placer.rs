//! Pure placement policy: where does a batch go, and when does a steal
//! pay off?
//!
//! Both decisions are driven entirely by the analytical simulator — the
//! same model the paper uses to choose tilings and batchings chooses the
//! device here. Keeping the policy pure (no locks, no atomics, plain
//! slices in, index out) makes it exhaustively testable without spinning
//! up a cluster.

/// Whether placement folds the locality routing penalty into candidate
/// ranking. Enabled by default — the penalty is *exactly* `0.0` on
/// single-chiplet pools (see `ctb_sim::locality_penalty_us`), so the
/// default changes nothing until a multi-chiplet device enters the
/// pool. The locality-blind arm of `reproduce locality` disables it to
/// measure what the penalty buys; residency and remote-traffic
/// *accounting* stay on either way so the arms are comparable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LocalityPolicy {
    pub enabled: bool,
}

impl Default for LocalityPolicy {
    fn default() -> Self {
        LocalityPolicy { enabled: true }
    }
}

impl LocalityPolicy {
    /// The locality-blind policy (pre-chiplet behaviour, and the
    /// baseline arm of the locality bench).
    pub fn blind() -> Self {
        LocalityPolicy { enabled: false }
    }
}

/// One device's bid for a batch, as seen at placement time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Candidate {
    /// Cluster-wide device id.
    pub device: usize,
    /// Simulated microseconds of work already queued or running on the
    /// device (advisory — completions race it — but conservative).
    pub backlog_us: f64,
    /// Simulated microseconds the batch itself would take on the
    /// device, from the per-arch cost model (memoized).
    pub predicted_us: f64,
    /// Locality routing penalty, µs: the interposer-crossing cost of
    /// staging the batch's operands onto this device when they are not
    /// already resident there. Exactly `0.0` for resident devices, for
    /// monolithic topologies, and under a blind [`LocalityPolicy`] —
    /// and *never* part of [`Candidate::predicted_us`], so the charged
    /// execution time (and the zero-placement-error invariant) is
    /// untouched by locality: the penalty only re-ranks candidates.
    pub penalty_us: f64,
}

impl Candidate {
    /// Predicted completion time: everything ahead of the batch plus
    /// the batch itself.
    pub fn completion_us(&self) -> f64 {
        self.backlog_us + self.predicted_us
    }

    /// Ranking score: completion plus the locality routing penalty.
    /// With a zero penalty this is bitwise `completion_us()` (adding
    /// `0.0` to a non-negative finite f64 is the identity), which is
    /// what pins single-chiplet pools to the historical decisions.
    pub fn score_us(&self) -> f64 {
        self.completion_us() + self.penalty_us
    }
}

/// Pick the device with the earliest penalty-adjusted completion time.
/// Ties break toward the lower device id (pools are fastest-first, so
/// ties prefer the stronger device); an empty slate returns `None`.
pub fn choose(candidates: &[Candidate]) -> Option<usize> {
    candidates
        .iter()
        .min_by(|a, b| a.score_us().total_cmp(&b.score_us()).then(a.device.cmp(&b.device)))
        .map(|c| c.device)
}

/// Order a full candidate slate best-first: ascending penalty-adjusted
/// completion, ties toward the lower device id. `rank(..)[0]` agrees
/// with [`choose`]; the tail is the spill-down order a placer walks
/// when better queues are full or sidelined. Both the threaded and the
/// discrete-event cluster engines place through this one ranking, which
/// is what makes their decisions comparable in the lockstep suite.
pub fn rank(mut candidates: Vec<Candidate>) -> Vec<Candidate> {
    candidates
        .sort_by(|a, b| a.score_us().total_cmp(&b.score_us()).then(a.device.cmp(&b.device)));
    candidates
}

/// Should an idle thief take the victim's front batch?
///
/// Yes when the victim is saturated enough to bother
/// (`victim_backlog_us` at or above the policy floor — stealing a batch
/// from a nearly-idle device wastes the transfer for no makespan gain)
/// and running the batch on the thief finishes before the batch would
/// even *start* on the victim (its whole backlog is ahead of it). Under
/// that test a slow M60 only relieves a saturated V100 when the model
/// says the M60 genuinely shortens the batch's completion.
pub fn steal_beneficial(
    victim_backlog_us: f64,
    predicted_on_thief_us: f64,
    min_victim_backlog_us: f64,
) -> bool {
    victim_backlog_us >= min_victim_backlog_us && predicted_on_thief_us < victim_backlog_us
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(device: usize, backlog_us: f64, predicted_us: f64) -> Candidate {
        Candidate { device, backlog_us, predicted_us, penalty_us: 0.0 }
    }

    fn cp(device: usize, backlog_us: f64, predicted_us: f64, penalty_us: f64) -> Candidate {
        Candidate { device, backlog_us, predicted_us, penalty_us }
    }

    #[test]
    fn chooses_minimum_completion_not_minimum_predicted() {
        // Device 0 runs the batch faster but is saturated; device 1 is
        // slower per-batch yet finishes sooner overall.
        let got = choose(&[c(0, 1000.0, 10.0), c(1, 0.0, 25.0)]);
        assert_eq!(got, Some(1));
    }

    #[test]
    fn idle_pool_routes_to_the_fastest_device() {
        let got = choose(&[c(0, 0.0, 10.0), c(1, 0.0, 12.0), c(2, 0.0, 30.0)]);
        assert_eq!(got, Some(0));
    }

    #[test]
    fn ties_break_toward_the_lower_id() {
        assert_eq!(choose(&[c(2, 5.0, 5.0), c(1, 0.0, 10.0)]), Some(1));
        assert_eq!(choose(&[c(1, 0.0, 10.0), c(2, 5.0, 5.0)]), Some(1));
    }

    #[test]
    fn empty_slate_has_no_placement() {
        assert_eq!(choose(&[]), None);
    }

    #[test]
    fn singleton_always_wins() {
        assert_eq!(choose(&[c(3, 99.0, 1.0)]), Some(3));
    }

    #[test]
    fn rank_agrees_with_choose_and_orders_the_spill() {
        let slate = vec![c(2, 5.0, 5.0), c(0, 1000.0, 10.0), c(1, 0.0, 25.0)];
        let ranked = rank(slate.clone());
        assert_eq!(ranked[0].device, choose(&slate).unwrap());
        let order: Vec<usize> = ranked.iter().map(|x| x.device).collect();
        assert_eq!(order, vec![2, 1, 0]);
        // Ties break toward the lower id at every rank, not just the head.
        let tied = rank(vec![c(3, 0.0, 10.0), c(1, 5.0, 5.0), c(2, 10.0, 0.0)]);
        let order: Vec<usize> = tied.iter().map(|x| x.device).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn zero_penalty_scoring_is_bitwise_completion() {
        // penalty 0.0 leaves score == completion down to the bits, so a
        // single-chiplet pool ranks exactly as the pre-locality placer.
        for cand in [c(0, 0.1 + 0.2, 17.3), c(1, 1e9, 5e-3), c(2, 0.0, 0.0)] {
            assert_eq!(cand.score_us().to_bits(), cand.completion_us().to_bits());
        }
    }

    #[test]
    fn penalty_re_ranks_without_touching_predictions() {
        // Device 0 completes sooner, but its operands are remote; the
        // resident device 1 wins once the crossing cost outweighs the
        // completion gap.
        let slate = vec![cp(0, 0.0, 10.0, 6.0), cp(1, 0.0, 12.0, 0.0)];
        assert_eq!(choose(&slate), Some(1));
        // A small penalty that doesn't close the gap changes nothing.
        let slate = vec![cp(0, 0.0, 10.0, 1.0), cp(1, 0.0, 12.0, 0.0)];
        assert_eq!(choose(&slate), Some(0));
        // Ties on score still break toward the lower id.
        let slate = vec![cp(1, 0.0, 12.0, 0.0), cp(0, 0.0, 10.0, 2.0)];
        assert_eq!(choose(&slate), Some(0));
        // And rank orders the spill by the same score.
        let ranked = rank(vec![cp(0, 0.0, 10.0, 6.0), cp(1, 0.0, 12.0, 0.0), cp(2, 0.0, 11.0, 9.0)]);
        let order: Vec<usize> = ranked.iter().map(|x| x.device).collect();
        assert_eq!(order, vec![1, 0, 2]);
    }

    #[test]
    fn locality_policy_defaults_on_and_blind_disables() {
        assert!(LocalityPolicy::default().enabled);
        assert!(!LocalityPolicy::blind().enabled);
    }

    #[test]
    fn steal_requires_a_saturated_victim() {
        // Victim below the floor: never steal, even if the thief is fast.
        assert!(!steal_beneficial(10.0, 1.0, 50.0));
        // Saturated victim, thief beats the wait: steal.
        assert!(steal_beneficial(100.0, 30.0, 50.0));
        // Saturated victim but the thief is slower than the wait: the
        // batch is better off staying queued.
        assert!(!steal_beneficial(100.0, 150.0, 50.0));
        // Boundary: thief time equal to the wait is not a win.
        assert!(!steal_beneficial(100.0, 100.0, 50.0));
        // Boundary: backlog exactly at the floor qualifies.
        assert!(steal_beneficial(50.0, 10.0, 50.0));
    }
}

//! Cluster-wide and per-device accounting.

use ctb_core::CacheStats;
use ctb_serve::ServeStats;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// An `f64` cell updated with atomic read-modify-write over its bit
/// pattern. Used for backlog and busy-time accumulators that many
/// workers adjust concurrently; precision is exact per operation (the
/// CAS loop applies plain `f64` addition), ordering is relaxed — these
/// feed advisory scheduling decisions and end-of-run aggregates, not
/// synchronization.
#[derive(Debug, Default)]
pub struct AtomicF64(AtomicU64);

impl AtomicF64 {
    pub fn new(v: f64) -> Self {
        AtomicF64(AtomicU64::new(v.to_bits()))
    }

    pub fn load(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }

    pub fn add(&self, delta: f64) {
        self.0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
                Some((f64::from_bits(bits) + delta).to_bits())
            })
            .expect("closure always returns Some");
    }

    /// Overwrite with an exact bit pattern (savestate restore).
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }
}

/// Point-in-time view of one device in the pool.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceStats {
    /// Cluster-wide device id (index into the construction pool).
    pub id: usize,
    /// Architecture preset name ("Tesla V100", ...).
    pub name: &'static str,
    /// Batches the placer routed here.
    pub placements: usize,
    /// Batches this device completed on the coordinated path.
    pub completed: usize,
    /// Batches this device's workers stole from saturated peers.
    pub steals: usize,
    /// Batches re-routed *away* after failing here.
    pub reroutes_out: usize,
    /// Times this device's breaker tripped open.
    pub breaker_trips: usize,
    /// Accumulated simulated execution time, µs. The cluster's aggregate
    /// throughput is defined over these (makespan = max over devices),
    /// so a heterogeneous pool's speedup is visible even on a
    /// single-core host running the functional executor serially.
    pub busy_sim_us: f64,
    /// Predicted µs of work queued/running at snapshot time (advisory).
    pub backlog_us: f64,
    /// Batches waiting in the device queue at snapshot time.
    pub queue_depth: usize,
    /// `busy_sim_us / makespan` across the pool (0 when idle).
    pub utilization: f64,
    /// `false` after [`crate::Cluster::kill_device`].
    pub alive: bool,
    /// Whether the device breaker was open at snapshot time.
    pub breaker_open: bool,
}

/// Point-in-time view of the whole cluster. Extends the single-device
/// [`ServeStats`] vocabulary with placement/steal/re-route accounting
/// and the per-device breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterStats {
    /// Batches admitted by [`crate::Cluster::submit`].
    pub submitted: usize,
    /// Batches completed with a result (coordinated or degraded).
    pub completed: usize,
    /// Batches that finished on the degraded per-kernel baseline
    /// (no surviving device could take them, or re-routes exhausted).
    pub degraded: usize,
    /// Routing decisions made by the sim-cost placer.
    pub routed: usize,
    /// Batches moved between devices by work stealing.
    pub steals: usize,
    /// Batches re-routed after a device failure or kill.
    pub reroutes: usize,
    /// Worker panics caught at the job boundary (workers never die).
    pub worker_panics: usize,
    /// Planning failures observed across the pool (real or injected).
    pub plan_failures: usize,
    /// Breaker trips summed over devices.
    pub breaker_trips: usize,
    /// Devices removed by [`crate::Cluster::kill_device`].
    pub kills: usize,
    /// Per-device breakdown, in pool order.
    pub devices: Vec<DeviceStats>,
    /// Max over devices of accumulated simulated time, µs — the
    /// simulated wall time of the pool had every device run in parallel.
    pub makespan_sim_us: f64,
    /// Sum over devices of accumulated simulated time, µs.
    pub total_sim_us: f64,
    /// Mean |predicted − simulated| µs over completed coordinated
    /// batches: how well placement-time predictions matched execution.
    /// 0 for never-moved batches (the prediction and the execution read
    /// the same memo entry); steals and re-routes re-predict on the new
    /// device, so they stay 0 too — drift here means the cost model and
    /// the executor disagree.
    pub mean_abs_placement_err_us: f64,
    /// Plan-cache accounting aggregated over every device session.
    pub plan_cache: CacheStats,
    /// Simulation-memo accounting of the shared [`ctb_core::PlanShare`].
    pub sim_memo: CacheStats,
    /// Median end-to-end batch latency, wall µs.
    pub p50_wall_us: f64,
    /// 95th-percentile end-to-end batch latency, wall µs.
    pub p95_wall_us: f64,
    /// Placements onto the device already holding the batch's operands
    /// (the locality penalty was waived).
    pub residency_hits: usize,
    /// Placements that had to stage operands onto a non-resident device.
    pub residency_misses: usize,
    /// Operand bytes charged as interposer crossings over the whole
    /// run: the figure `reproduce locality` gates on (aware < blind,
    /// strictly). Zero on single-chiplet pools by construction.
    pub remote_operand_bytes: u64,
}

impl ClusterStats {
    /// Aggregate throughput for `flops` of submitted work, GFLOPS over
    /// *simulated* makespan (0 when idle). This is the figure of merit
    /// for pool-scaling experiments.
    pub fn sim_throughput_gflops(&self, flops: f64) -> f64 {
        if self.makespan_sim_us <= 0.0 {
            0.0
        } else {
            flops / (self.makespan_sim_us * 1e-6) / 1e9
        }
    }

    /// Mean per-device utilization: `total_sim_us / (devices × makespan)`,
    /// i.e. how evenly the placer spread the simulated work across the
    /// pool (1.0 = perfectly balanced, → 0 as devices idle). The scaling
    /// sweep reports this per point — a 10k-device pool fed too few
    /// requests shows its emptiness here rather than in the makespan.
    pub fn mean_utilization(&self) -> f64 {
        if self.makespan_sim_us <= 0.0 || self.devices.is_empty() {
            0.0
        } else {
            self.total_sim_us / (self.devices.len() as f64 * self.makespan_sim_us)
        }
    }
}

/// Internal mutable counters behind [`ClusterStats`].
#[derive(Debug, Default)]
pub struct ClusterInner {
    pub submitted: AtomicUsize,
    pub completed: AtomicUsize,
    pub degraded: AtomicUsize,
    pub routed: AtomicUsize,
    pub steals: AtomicUsize,
    pub reroutes: AtomicUsize,
    pub worker_panics: AtomicUsize,
    pub plan_failures: AtomicUsize,
    pub breaker_trips: AtomicUsize,
    pub kills: AtomicUsize,
    pub residency_hits: AtomicUsize,
    pub residency_misses: AtomicUsize,
    pub remote_operand_bytes: AtomicU64,
    pub err_abs_sum_us: AtomicF64,
    pub err_count: AtomicUsize,
    latencies_us: Mutex<Vec<f64>>,
}

impl ClusterInner {
    pub fn record_latency(&self, us: f64) {
        self.latencies_us.lock().unwrap_or_else(|e| e.into_inner()).push(us);
    }

    /// Recorded request latencies in insertion order — the savestate
    /// serialization view (the snapshot sorts a copy; the stored order
    /// is what a resumed run must keep appending to so save → resume →
    /// save stays byte-identical).
    pub fn latencies(&self) -> Vec<f64> {
        self.latencies_us.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Overwrite the latency log (savestate restore).
    pub fn set_latencies(&self, latencies: Vec<f64>) {
        *self.latencies_us.lock().unwrap_or_else(|e| e.into_inner()) = latencies;
    }

    pub fn record_placement_err(&self, predicted_us: f64, simulated_us: f64) {
        self.err_abs_sum_us.add((predicted_us - simulated_us).abs());
        self.err_count.fetch_add(1, Ordering::Relaxed);
    }

    /// Assemble the snapshot around an externally gathered per-device
    /// breakdown and cache aggregates.
    pub fn snapshot(
        &self,
        devices: Vec<DeviceStats>,
        plan_cache: CacheStats,
        sim_memo: CacheStats,
    ) -> ClusterStats {
        let mut lat = self.latencies_us.lock().unwrap_or_else(|e| e.into_inner()).clone();
        lat.sort_by(f64::total_cmp);
        let err_count = self.err_count.load(Ordering::Relaxed);
        let makespan_sim_us =
            devices.iter().map(|d| d.busy_sim_us).fold(0.0, f64::max);
        let total_sim_us = devices.iter().map(|d| d.busy_sim_us).sum();
        ClusterStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            routed: self.routed.load(Ordering::Relaxed),
            steals: self.steals.load(Ordering::Relaxed),
            reroutes: self.reroutes.load(Ordering::Relaxed),
            worker_panics: self.worker_panics.load(Ordering::Relaxed),
            plan_failures: self.plan_failures.load(Ordering::Relaxed),
            breaker_trips: self.breaker_trips.load(Ordering::Relaxed),
            kills: self.kills.load(Ordering::Relaxed),
            devices,
            makespan_sim_us,
            total_sim_us,
            mean_abs_placement_err_us: if err_count == 0 {
                0.0
            } else {
                self.err_abs_sum_us.load() / err_count as f64
            },
            plan_cache,
            sim_memo,
            p50_wall_us: ServeStats::percentile(&lat, 0.50),
            p95_wall_us: ServeStats::percentile(&lat, 0.95),
            residency_hits: self.residency_hits.load(Ordering::Relaxed),
            residency_misses: self.residency_misses.load(Ordering::Relaxed),
            remote_operand_bytes: self.remote_operand_bytes.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn atomic_f64_accumulates_exactly() {
        let a = AtomicF64::new(1.5);
        a.add(2.25);
        a.add(-0.75);
        assert_eq!(a.load(), 3.0);
    }

    #[test]
    fn atomic_f64_survives_concurrent_adds() {
        // Sum of 4 threads x 1000 adds of 0.5 (exactly representable,
        // so f64 addition is associative here and the total is exact).
        let a = Arc::new(AtomicF64::new(0.0));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let a = Arc::clone(&a);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        a.add(0.5);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("adder ok");
        }
        assert_eq!(a.load(), 2000.0);
    }

    fn dev(id: usize, busy: f64) -> DeviceStats {
        DeviceStats {
            id,
            name: "Tesla V100",
            placements: 0,
            completed: 0,
            steals: 0,
            reroutes_out: 0,
            breaker_trips: 0,
            busy_sim_us: busy,
            backlog_us: 0.0,
            queue_depth: 0,
            utilization: 0.0,
            alive: true,
            breaker_open: false,
        }
    }

    #[test]
    fn snapshot_derives_makespan_and_error() {
        let inner = ClusterInner::default();
        inner.record_placement_err(10.0, 12.0);
        inner.record_placement_err(5.0, 5.0);
        inner.record_latency(100.0);
        inner.record_latency(300.0);
        let s = inner.snapshot(
            vec![dev(0, 40.0), dev(1, 25.0)],
            CacheStats::default(),
            CacheStats::default(),
        );
        assert_eq!(s.makespan_sim_us, 40.0);
        assert_eq!(s.total_sim_us, 65.0);
        assert_eq!(s.mean_abs_placement_err_us, 1.0);
        assert_eq!(s.p50_wall_us, 100.0);
        assert_eq!(s.p95_wall_us, 300.0);
        // 65 µs of simulated work over a 40 µs makespan.
        let thr = s.sim_throughput_gflops(65.0e3);
        assert!((thr - 65.0e3 / 40.0e-6 / 1e9).abs() < 1e-9);
        // 65 µs spread over 2 devices × 40 µs makespan.
        assert!((s.mean_utilization() - 65.0 / 80.0).abs() < 1e-12);
    }

    #[test]
    fn idle_snapshot_is_all_zero() {
        let inner = ClusterInner::default();
        let s = inner.snapshot(vec![], CacheStats::default(), CacheStats::default());
        assert_eq!(s.makespan_sim_us, 0.0);
        assert_eq!(s.mean_abs_placement_err_us, 0.0);
        assert_eq!(s.sim_throughput_gflops(1e9), 0.0);
    }
}

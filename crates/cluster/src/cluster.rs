//! The multi-device cluster: admission, sim-cost placement, per-device
//! execution, work stealing, and device-level fault handling.
//!
//! Thread structure (all plain OS threads, spawned at construction):
//!
//! ```text
//!  producers ──submit(batch)──▶ sim-cost placer (argmin over devices of
//!                               backlog + predicted_us, both from the
//!                               per-arch analytical simulator)
//!                                   │ ClusterJob
//!              ┌────────────────────┼─────────────────────┐
//!         device 0 queue       device 1 queue        device D-1 queue
//!         (bounded)            (bounded)             (bounded)
//!              │                    │                      │
//!         workers 0..W         workers 0..W           workers 0..W
//!         session.plan ──▶ framework.execute (functional, bitwise-exact)
//!              ▲                    │
//!              └── work stealing: an idle device pulls the front batch
//!                  of the most-backlogged peer when the model says it
//!                  finishes sooner there than it would start here
//! ```
//!
//! **Placement contract:** every admitted batch is predicted on every
//! live device through the shared [`ctb_core::PlanShare`] simulation
//! memo (predictions are cached; after the first sighting of a shape
//! signature a placement costs hash lookups, not simulator runs) and
//! queued on the device with the earliest predicted completion.
//!
//! **Failure contract:** device workers never die and never drop a
//! ticket. A planning failure or executor panic on one device re-routes
//! the batch to a surviving device (bounded by
//! [`ClusterConfig::max_reroutes`]); consecutive failures trip the
//! device's circuit breaker, which drains its queue onto survivors and
//! sidelines it from placement until its open window is consumed.
//! When no device can take a batch, it executes inline on the per-kernel
//! default baseline and is tagged degraded. Results are bitwise-exact on
//! every path — coordinated on any architecture, stolen, re-routed, or
//! degraded — because every executor replays the identical ascending-k
//! accumulation per GEMM.
//!
//! **Shutdown contract:** [`Cluster::shutdown`] stops admissions, lets
//! every device drain its queue, joins all workers and returns the final
//! [`ClusterStats`]. Re-routes racing a shutdown resolve inline through
//! the degraded path instead of being dropped.

use crate::placer::{self, Candidate, LocalityPolicy};
use crate::stats::{AtomicF64, ClusterInner, ClusterStats, DeviceStats};
use ctb_core::{CacheStats, Framework, OperandHome, PlanShare, Session};
use ctb_gpu_specs::ArchSpec;
use ctb_matrix::{GemmBatch, GemmShape, MatF32};
use ctb_obs::{Obs, PointKind, SpanKind};
use ctb_serve::{
    panic_message, BoundedQueue, Breaker, BreakerPolicy, FaultInjector, FaultSite, PushError,
    INJECTED_DEGRADED_PANIC_MSG, INJECTED_PANIC_MSG,
};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Work-stealing policy.
#[derive(Debug, Clone)]
pub struct StealPolicy {
    /// Master switch; disabled, idle devices simply block on their own
    /// queue.
    pub enabled: bool,
    /// Minimum predicted backlog (µs of simulated work) a victim must
    /// carry before a thief will consider it — below this, moving a
    /// batch cannot shorten the makespan enough to bother.
    pub min_victim_backlog_us: f64,
    /// How long an idle worker waits on its own queue before looking
    /// for a victim.
    pub poll: Duration,
}

impl Default for StealPolicy {
    fn default() -> Self {
        StealPolicy {
            enabled: true,
            min_victim_backlog_us: 50.0,
            poll: Duration::from_millis(1),
        }
    }
}

/// Cluster tuning knobs.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Executor threads per device.
    pub workers_per_device: usize,
    /// Per-device queue bound; the placer spills to the next-best
    /// device when the best one is full, and `submit` applies
    /// backpressure when every queue is.
    pub queue_capacity: usize,
    /// Work-stealing policy.
    pub steal: StealPolicy,
    /// Per-device circuit-breaker policy (same semantics as the
    /// single-device server's).
    pub breaker: BreakerPolicy,
    /// Times one batch may be moved between devices (re-routes after
    /// failures, breaker drains, kills) before it falls back to the
    /// inline degraded baseline.
    pub max_reroutes: u32,
    /// Locality-aware candidate ranking. On by default; a no-op on
    /// single-chiplet pools (the penalty is exactly zero there).
    pub locality: LocalityPolicy,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            workers_per_device: 1,
            queue_capacity: 64,
            steal: StealPolicy::default(),
            breaker: BreakerPolicy::default(),
            max_reroutes: 3,
            locality: LocalityPolicy::default(),
        }
    }
}

/// Why a batch did not produce a result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// Batch failed validation at submit time.
    Invalid(String),
    /// The cluster no longer accepts batches.
    ShuttingDown,
    /// No device could plan the batch (typed planner error surface).
    PlanFailed(String),
    /// A worker panicked and every recovery path (re-route, degraded
    /// baseline) also failed. The panic was isolated; the worker
    /// survived.
    WorkerPanic(String),
    /// [`BatchTicket::wait_for`] gave up before the cluster completed
    /// the batch. The batch is still in flight.
    WaitTimeout,
    /// The cluster dropped the response channel without completing the
    /// batch — must not happen while the drain contract holds.
    Disconnected,
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::Invalid(m) => write!(f, "invalid batch: {m}"),
            ClusterError::ShuttingDown => write!(f, "cluster shutting down"),
            ClusterError::PlanFailed(m) => write!(f, "no device could plan: {m}"),
            ClusterError::WorkerPanic(m) => write!(f, "worker panicked: {m}"),
            ClusterError::WaitTimeout => write!(f, "gave up waiting for the response"),
            ClusterError::Disconnected => write!(f, "cluster dropped the batch"),
        }
    }
}

impl std::error::Error for ClusterError {}

/// A completed batch: the computed `C` matrices plus routing provenance.
#[derive(Debug, Clone)]
pub struct ClusterResult {
    /// One output per GEMM in the batch, in submission order. Bitwise
    /// identical regardless of which device (or the degraded baseline)
    /// produced them.
    pub results: Vec<MatF32>,
    /// Device that executed the batch (for the degraded path: the
    /// device whose architecture parametrised the baseline).
    pub device: usize,
    /// The placer's predicted simulated time on the executing device,
    /// µs (re-predicted on steal/re-route).
    pub predicted_us: f64,
    /// Simulated execution time reported by the device, µs (0 on the
    /// degraded path, which bypasses the coordinated simulator).
    pub simulated_us: f64,
    /// End-to-end wall latency from submission, µs.
    pub wall_us: f64,
    /// `true` when the per-kernel default baseline produced the result.
    pub degraded: bool,
    /// `true` when a work-steal moved the batch off its placed device.
    pub stolen: bool,
    /// Times the batch was re-routed after device failures/kills.
    pub reroutes: u32,
}

/// Handle to one in-flight batch.
#[derive(Debug)]
pub struct BatchTicket {
    rx: mpsc::Receiver<Result<ClusterResult, ClusterError>>,
}

impl BatchTicket {
    /// Block until the cluster completes the batch.
    pub fn wait(self) -> Result<ClusterResult, ClusterError> {
        self.rx.recv().map_err(|_| ClusterError::Disconnected)?
    }

    /// Block at most `timeout`; [`ClusterError::WaitTimeout`] after.
    pub fn wait_for(self, timeout: Duration) -> Result<ClusterResult, ClusterError> {
        match self.rx.recv_timeout(timeout) {
            Ok(r) => r,
            Err(mpsc::RecvTimeoutError::Timeout) => Err(ClusterError::WaitTimeout),
            Err(mpsc::RecvTimeoutError::Disconnected) => Err(ClusterError::Disconnected),
        }
    }

    /// Non-blocking poll; `None` while the batch is in flight.
    pub fn poll(&self) -> Option<Result<ClusterResult, ClusterError>> {
        match self.rx.try_recv() {
            Ok(r) => Some(r),
            Err(mpsc::TryRecvError::Empty) => None,
            Err(mpsc::TryRecvError::Disconnected) => Some(Err(ClusterError::Disconnected)),
        }
    }
}

/// One batch in flight inside the cluster.
struct ClusterJob {
    /// Cluster-unique job id; ties the trace's `Admit` event to its
    /// terminal event.
    id: u64,
    batch: GemmBatch,
    tx: mpsc::Sender<Result<ClusterResult, ClusterError>>,
    /// Predicted simulated µs on the device currently holding the job.
    predicted_us: f64,
    submitted: Instant,
    /// Times the job has been moved between devices.
    attempts: u32,
    stolen: bool,
}

/// One simulated GPU: its own architecture, planning session (cache
/// shared pool-wide through [`PlanShare`]), bounded queue, breaker and
/// optional chaos schedule.
struct Device {
    id: usize,
    session: Arc<Session>,
    queue: BoundedQueue<ClusterJob>,
    /// Predicted µs of work queued or running here (advisory).
    backlog_us: AtomicF64,
    /// Accumulated simulated execution µs (the makespan ingredient).
    busy_sim_us: AtomicF64,
    alive: AtomicBool,
    breaker: Breaker,
    fault: Option<Arc<FaultInjector>>,
    placements: AtomicUsize,
    completed: AtomicUsize,
    steals: AtomicUsize,
    reroutes_out: AtomicUsize,
    breaker_trips: AtomicUsize,
}

impl Device {
    fn arch(&self) -> &ArchSpec {
        self.session.framework().arch()
    }

    fn roll(&self, site: FaultSite) -> bool {
        match &self.fault {
            Some(f) => f.roll(site),
            None => false,
        }
    }

    fn snapshot(&self) -> DeviceStats {
        DeviceStats {
            id: self.id,
            name: self.arch().name,
            placements: self.placements.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            steals: self.steals.load(Ordering::Relaxed),
            reroutes_out: self.reroutes_out.load(Ordering::Relaxed),
            breaker_trips: self.breaker_trips.load(Ordering::Relaxed),
            busy_sim_us: self.busy_sim_us.load(),
            backlog_us: self.backlog_us.load().max(0.0),
            queue_depth: self.queue.len(),
            utilization: 0.0, // filled in by the cluster snapshot
            alive: self.alive.load(Ordering::Relaxed),
            breaker_open: self.breaker.is_open(),
        }
    }
}

struct Shared {
    cfg: ClusterConfig,
    devices: Vec<Device>,
    share: Arc<PlanShare>,
    closed: AtomicBool,
    stats: ClusterInner,
    /// The observability seam; `None` (the default) costs one
    /// discriminant test per site.
    obs: Option<Arc<Obs>>,
    /// Job-id source for trace linkage.
    job_ids: AtomicU64,
}

impl Shared {
    fn obs(&self) -> Option<&Obs> {
        self.obs.as_deref()
    }
}

/// Why a placement attempt found no home for a job. Boxed at the
/// `try_place` boundary so the common `Ok` path does not pay for the
/// failure payload (the job rides along to be re-routed or degraded).
struct PlaceFail {
    job: ClusterJob,
    /// Some queue was full (backpressure: worth retrying).
    any_full: bool,
    /// Every live device failed to *plan* the shapes (typed error).
    plan_err: Option<String>,
}

/// A running multi-device cluster. Cheap to share: wrap it in an `Arc`
/// and hand clones to every producer thread.
pub struct Cluster {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Cluster {
    /// Spawn a cluster over `pool` (one simulated device per spec; see
    /// [`ArchSpec::pool_presets`] for the canonical heterogeneous pool).
    pub fn new(pool: Vec<ArchSpec>, cfg: ClusterConfig) -> Self {
        let n = pool.len();
        Cluster::with_faults(pool, cfg, vec![None; n])
    }

    /// Spawn a cluster with a chaos schedule per device (`None` entries
    /// run fault-free). `faults` must match `pool` in length.
    pub fn with_faults(
        pool: Vec<ArchSpec>,
        cfg: ClusterConfig,
        faults: Vec<Option<Arc<FaultInjector>>>,
    ) -> Self {
        Cluster::with_instrumentation(pool, cfg, faults, None)
    }

    /// Spawn a cluster with an observability bus installed: placement,
    /// stealing, re-routing, device kills and per-device plan/exec
    /// activity all land in one shared trace.
    pub fn with_observer(pool: Vec<ArchSpec>, cfg: ClusterConfig, obs: Arc<Obs>) -> Self {
        let n = pool.len();
        Cluster::with_instrumentation(pool, cfg, vec![None; n], Some(obs))
    }

    /// Spawn a cluster with any combination of per-device chaos
    /// schedules and the observability bus — the chaos suites use both
    /// at once and reconcile the trace against the fault logs exactly.
    pub fn with_instrumentation(
        pool: Vec<ArchSpec>,
        cfg: ClusterConfig,
        faults: Vec<Option<Arc<FaultInjector>>>,
        obs: Option<Arc<Obs>>,
    ) -> Self {
        assert!(!pool.is_empty(), "a cluster needs at least one device");
        assert_eq!(pool.len(), faults.len(), "one fault schedule slot per device");
        let share = Arc::new(PlanShare::new());
        let devices: Vec<Device> = pool
            .into_iter()
            .zip(faults)
            .enumerate()
            .map(|(id, (arch, fault))| Device {
                id,
                session: {
                    let s = Session::with_share(Framework::new(arch), Arc::clone(&share));
                    Arc::new(match &obs {
                        Some(o) => s.with_obs(Arc::clone(o)),
                        None => s,
                    })
                },
                queue: BoundedQueue::new(cfg.queue_capacity),
                backlog_us: AtomicF64::default(),
                busy_sim_us: AtomicF64::default(),
                alive: AtomicBool::new(true),
                breaker: Breaker::new(cfg.breaker.clone()),
                fault,
                placements: AtomicUsize::new(0),
                completed: AtomicUsize::new(0),
                steals: AtomicUsize::new(0),
                reroutes_out: AtomicUsize::new(0),
                breaker_trips: AtomicUsize::new(0),
            })
            .collect();
        let shared = Arc::new(Shared {
            devices,
            share,
            closed: AtomicBool::new(false),
            stats: ClusterInner::default(),
            obs,
            job_ids: AtomicU64::new(0),
            cfg,
        });
        let mut workers = Vec::new();
        for dev_idx in 0..shared.devices.len() {
            for _ in 0..shared.cfg.workers_per_device.max(1) {
                let shared = Arc::clone(&shared);
                workers.push(std::thread::spawn(move || worker_loop(&shared, dev_idx)));
            }
        }
        Cluster { shared, workers }
    }

    /// Number of devices in the pool (dead ones included).
    pub fn devices(&self) -> usize {
        self.shared.devices.len()
    }

    /// Architecture name of device `id`.
    pub fn device_name(&self, id: usize) -> &'static str {
        self.shared.devices[id].arch().name
    }

    /// Batches waiting in device `id`'s queue (racy monitoring hook).
    pub fn queue_depth(&self, id: usize) -> usize {
        self.shared.devices[id].queue.len()
    }

    /// Whether device `id` is still accepting placements.
    pub fn is_alive(&self, id: usize) -> bool {
        self.shared.devices[id].alive.load(Ordering::Relaxed)
    }

    /// The cost model's prediction for `shapes` on device `id`:
    /// simulated µs of the coordinated plan, memoized pool-wide. This is
    /// exactly the quantity the placer compares across devices.
    pub fn predicted_us(&self, id: usize, shapes: &[GemmShape]) -> Result<f64, String> {
        predict_us(&self.shared.devices[id], shapes)
    }

    /// Submit a coordinated batch. Blocks only while *every* device
    /// queue is full (backpressure); once it returns `Ok`, the batch
    /// will be completed — by a result (coordinated or degraded) or a
    /// typed error — even if the cluster is shut down immediately after.
    pub fn submit(&self, batch: GemmBatch) -> Result<BatchTicket, ClusterError> {
        if let Err(m) = batch.validate() {
            return Err(ClusterError::Invalid(m));
        }
        let id = self.shared.job_ids.fetch_add(1, Ordering::Relaxed);
        // Admit is traced *before* placement: once the job lands on a
        // device queue a worker can emit downstream events for it, and
        // the log must never show those ahead of the admission. The
        // synchronous error returns below close the admission with a
        // job-carrying Reject, which the audit treats as terminal.
        if let Some(o) = self.shared.obs() {
            o.point(PointKind::Admit { req: id });
        }
        let (tx, rx) = mpsc::channel();
        let mut job = ClusterJob {
            id,
            batch,
            tx,
            predicted_us: 0.0,
            submitted: Instant::now(),
            attempts: 0,
            stolen: false,
        };
        loop {
            if self.shared.closed.load(Ordering::Relaxed) {
                if let Some(o) = self.shared.obs() {
                    o.point(PointKind::Reject { req: Some(id) });
                }
                return Err(ClusterError::ShuttingDown);
            }
            match try_place(&self.shared, job, None) {
                Ok(()) => {
                    self.shared.stats.submitted.fetch_add(1, Ordering::Relaxed);
                    return Ok(BatchTicket { rx });
                }
                Err(fail) if fail.any_full => {
                    // Every candidate queue is at capacity: backpressure.
                    job = fail.job;
                    std::thread::sleep(Duration::from_micros(50));
                }
                Err(fail) => {
                    if let Some(m) = fail.plan_err {
                        if let Some(o) = self.shared.obs() {
                            o.point(PointKind::Reject { req: Some(id) });
                        }
                        return Err(ClusterError::PlanFailed(m));
                    }
                    // No live device at all: serve inline through the
                    // degraded baseline rather than dropping the batch.
                    self.shared.stats.submitted.fetch_add(1, Ordering::Relaxed);
                    degrade_inline(&self.shared, fail.job);
                    return Ok(BatchTicket { rx });
                }
            }
        }
    }

    /// Submit and wait — the synchronous convenience path.
    pub fn call(&self, batch: GemmBatch) -> Result<ClusterResult, ClusterError> {
        self.submit(batch)?.wait()
    }

    /// Point-in-time accounting across the pool.
    pub fn stats(&self) -> ClusterStats {
        let mut devices: Vec<DeviceStats> =
            self.shared.devices.iter().map(Device::snapshot).collect();
        let makespan = devices.iter().map(|d| d.busy_sim_us).fold(0.0, f64::max);
        for d in &mut devices {
            d.utilization = if makespan > 0.0 { d.busy_sim_us / makespan } else { 0.0 };
        }
        let mut plan_cache = CacheStats::default();
        for dev in &self.shared.devices {
            let s = dev.session.stats();
            plan_cache.hits += s.hits;
            plan_cache.misses += s.misses;
        }
        let memo = self.shared.share.sim_memo();
        let sim_memo = CacheStats { hits: memo.hits(), misses: memo.misses() };
        self.shared.stats.snapshot(devices, plan_cache, sim_memo)
    }

    /// The pool-wide plan/simulation share (monitoring hook).
    pub fn share(&self) -> &Arc<PlanShare> {
        &self.shared.share
    }

    /// The attached observability bus, if any.
    pub fn observer(&self) -> Option<&Arc<Obs>> {
        self.shared.obs.as_ref()
    }

    /// Take device `id` out of the pool: no further placements land on
    /// it, its queued batches are re-routed to survivors, and its
    /// workers wind down. Batches *mid-execution* on the device finish
    /// normally (execution is functional — results stay bitwise-exact),
    /// mirroring how a real drain lets in-flight kernels retire.
    pub fn kill_device(&self, id: usize) {
        let dev = &self.shared.devices[id];
        if !dev.alive.swap(false, Ordering::Relaxed) {
            return; // already dead
        }
        self.shared.stats.kills.fetch_add(1, Ordering::Relaxed);
        if let Some(o) = self.shared.obs() {
            o.point(PointKind::Kill { device: id });
        }
        // Closing the queue wakes the device's workers (they exit once
        // it is drained) and makes racing placements fail over cleanly.
        dev.queue.close();
        drain_and_reroute(&self.shared, id);
    }

    /// Stop accepting new batches without waiting for the drain.
    pub fn close(&self) {
        self.shared.closed.store(true, Ordering::Relaxed);
    }

    /// Stop admissions, drain every queued batch, join all workers and
    /// return the final statistics.
    pub fn shutdown(mut self) -> ClusterStats {
        self.shutdown_inner();
        self.stats()
    }

    fn shutdown_inner(&mut self) {
        self.shared.closed.store(true, Ordering::Relaxed);
        for dev in &self.shared.devices {
            dev.queue.close();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Predict the simulated time of `shapes` on `dev`: plan through the
/// device session (cached pool-wide per planning context) and read the
/// chosen candidate's simulated time back out of the shared memo. After
/// planning, the memo necessarily holds the entry — best-of-both already
/// simulated the winner — so a placement never runs the simulator on a
/// warm signature.
fn predict_us(dev: &Device, shapes: &[GemmShape]) -> Result<f64, String> {
    let plan = dev.session.plan(shapes)?;
    let fw = dev.session.framework();
    let model = dev.session.sim_memo().simulate_solution(
        fw.arch(),
        shapes,
        &plan.solution,
        plan.heuristic,
        fw.thresholds(),
    );
    // Identity (never-calibrated) handles return `model` bit-for-bit,
    // so uncalibrated pools keep exact prediction == execution parity.
    Ok(dev.session.share().calib().correct(
        fw.arch().name,
        model,
        &ctb_core::selector::features(shapes),
    ))
}

/// One placement attempt: predict the job on every eligible device and
/// queue it on the earliest-completion candidate, spilling down the
/// ranking when queues are full. `Err` reports why nothing was placed.
fn try_place(
    shared: &Shared,
    mut job: ClusterJob,
    exclude: Option<usize>,
) -> Result<(), Box<PlaceFail>> {
    // One Place span per placement attempt; the per-device predictions
    // inside it nest their own Plan spans on the same thread.
    let _place = shared.obs().map(|o| o.span(SpanKind::Place));
    // One residency snapshot covers the whole slate, so every candidate
    // is judged against the same operand home (and both engines, seeing
    // the same snapshot in the same order, rank identically).
    let sig = ctb_core::shape_sig_hash(&job.batch.shapes);
    let op_bytes = ctb_core::operand_bytes(&job.batch.shapes);
    let home = shared.share.residency_of(sig);
    let mut candidates = Vec::with_capacity(shared.devices.len());
    let mut plan_err = None;
    for dev in &shared.devices {
        if Some(dev.id) == exclude || !dev.alive.load(Ordering::Relaxed) {
            continue;
        }
        match predict_us(dev, &job.batch.shapes) {
            Ok(predicted_us) => candidates.push(Candidate {
                device: dev.id,
                backlog_us: dev.backlog_us.load().max(0.0),
                predicted_us,
                penalty_us: locality_penalty(shared, dev, home, op_bytes),
            }),
            Err(m) => plan_err = Some(m),
        }
    }
    if candidates.is_empty() {
        // Only report the planner error when planning was the reason —
        // i.e. at least one live device bid and all of them failed.
        return Err(Box::new(PlaceFail { job, any_full: false, plan_err }));
    }
    // A device serving its breaker's open window is sidelined; each
    // sidelining consumes one open slot so the device heals after
    // `open_batches` placements routed around it, mirroring the
    // single-device server's "serve open_batches degraded then close"
    // semantics. When *every* candidate is open, routing proceeds on
    // cost alone — a suspect device beats the baseline.
    let all_open = candidates
        .iter()
        .all(|c| shared.devices[c.device].breaker.is_open());
    let candidates = placer::rank(candidates);
    let mut any_full = false;
    for c in &candidates {
        let dev = &shared.devices[c.device];
        if !all_open && dev.breaker.consume_open() {
            continue;
        }
        job.predicted_us = c.predicted_us;
        dev.backlog_us.add(c.predicted_us);
        // Claim residency *before* the push: once the job is in the
        // queue a worker may pop it, fail it, and re-route it — and that
        // re-route's own claim must observe this landing first, or the
        // operand home ends up ordered by thread scheduling instead of
        // by the job's causal chain.
        let claim = claim_residency(shared, c.device, sig, op_bytes);
        match dev.queue.try_push(job) {
            Ok(()) => {
                dev.placements.fetch_add(1, Ordering::Relaxed);
                shared.stats.routed.fetch_add(1, Ordering::Relaxed);
                if let Some(o) = shared.obs() {
                    o.point(PointKind::Routed { device: c.device });
                }
                commit_residency(shared, c.device, &claim);
                return Ok(());
            }
            Err((kind, j)) => {
                shared.share.restore_residency(sig, claim.prev);
                dev.backlog_us.add(-c.predicted_us);
                any_full |= kind == PushError::Full;
                job = j;
            }
        }
    }
    Err(Box::new(PlaceFail { job, any_full, plan_err: None }))
}

/// The locality routing penalty `dev` bids with when `home` is the
/// current operand residency of the batch's signature: zero when the
/// policy is blind, when the operands are already resident on `dev`, or
/// when `dev` is monolithic — otherwise the interposer-crossing cost of
/// staging the remote share of `op_bytes` onto it.
fn locality_penalty(
    shared: &Shared,
    dev: &Device,
    home: Option<OperandHome>,
    op_bytes: u64,
) -> f64 {
    if !shared.cfg.locality.enabled {
        return 0.0;
    }
    if home.is_some_and(|h| h.device == dev.id) {
        return 0.0;
    }
    let topo = &dev.arch().topology;
    ctb_sim::locality_penalty_us(topo, ctb_sim::remote_operand_bytes(topo, op_bytes))
}

/// The map half of a residency landing, taken before the job is
/// published to a queue (see the call site in [`try_place`]) and either
/// committed by [`commit_residency`] or rolled back with
/// [`ctb_core::PlanShare::restore_residency`].
struct ResidencyClaim {
    /// The operands were already on the landing device.
    hit: bool,
    /// The home to restore if the push is refused.
    prev: Option<OperandHome>,
    /// Remote share of the operand footprint charged on a miss.
    remote_bytes: u64,
}

/// Residency accounting at the moment a placement (or steal) lands on
/// `device`: a hit when the operands were already there, otherwise a
/// miss that moves the operand home to `device`. Mutates only the
/// shared map — deciding the hit and moving the home is one atomic step
/// under the map lock's critical section ordering, so re-routes always
/// classify against the landing that caused them. Runs under *both*
/// policies — the blind arm pays the same bookkeeping so the locality
/// bench compares like with like.
fn claim_residency(shared: &Shared, device: usize, sig: u64, op_bytes: u64) -> ResidencyClaim {
    let topo = &shared.devices[device].arch().topology;
    let prev = shared.share.residency_of(sig);
    let hit = prev.is_some_and(|h| h.device == device);
    if !hit {
        shared.share.note_residency(sig, OperandHome { device, chiplet: topo.home_chiplet(sig) });
    }
    ResidencyClaim {
        hit,
        prev,
        remote_bytes: if hit { 0 } else { ctb_sim::remote_operand_bytes(topo, op_bytes) },
    }
}

/// Second half of a residency landing: the counters and trace points
/// for a claim whose push succeeded. Totals are order-independent, so
/// this may run after the queue push without re-introducing the
/// scheduling race the claim step avoids.
fn commit_residency(shared: &Shared, device: usize, claim: &ResidencyClaim) {
    if claim.hit {
        shared.stats.residency_hits.fetch_add(1, Ordering::Relaxed);
        if let Some(o) = shared.obs() {
            o.point(PointKind::ResidencyHit { device });
        }
        return;
    }
    shared.stats.residency_misses.fetch_add(1, Ordering::Relaxed);
    shared.stats.remote_operand_bytes.fetch_add(claim.remote_bytes, Ordering::Relaxed);
    if let Some(o) = shared.obs() {
        o.point(PointKind::ResidencyMiss { device });
    }
}

/// Move the job to another device after a failure on `from` (or a
/// kill/breaker drain). Exhausted re-route budgets and empty pools fall
/// back to the inline degraded baseline — never a drop.
fn reroute(shared: &Shared, mut job: ClusterJob, from: usize) {
    job.attempts += 1;
    shared.stats.reroutes.fetch_add(1, Ordering::Relaxed);
    shared.devices[from].reroutes_out.fetch_add(1, Ordering::Relaxed);
    if let Some(o) = shared.obs() {
        o.point(PointKind::Reroute { from });
    }
    if job.attempts > shared.cfg.max_reroutes {
        degrade_inline(shared, job);
        return;
    }
    match try_place(shared, job, Some(from)) {
        Ok(()) => {}
        Err(fail) => degrade_inline(shared, fail.job),
    }
}

/// Empty `dev`'s queue, re-routing every waiting batch (used by breaker
/// trips and kills). In-flight batches are the workers' problem; queued
/// ones must not wait behind a suspect or dead device.
fn drain_and_reroute(shared: &Shared, dev_idx: usize) {
    let dev = &shared.devices[dev_idx];
    while let Some(job) = dev.queue.pop_if(|_| true) {
        dev.backlog_us.add(-job.predicted_us);
        reroute(shared, job, dev_idx);
    }
}

/// Terminal fallback: execute on the per-kernel default baseline,
/// inline on the calling thread. Bitwise-exact like every other path; a
/// panic *here* is terminal and surfaces as the typed
/// [`ClusterError::WorkerPanic`].
fn degrade_inline(shared: &Shared, job: ClusterJob) {
    // Parametrise the baseline with the strongest live architecture
    // (device order is construction order; any arch yields bitwise-
    // identical results — it only shapes the baseline's tiling).
    let donor = shared
        .devices
        .iter()
        .find(|d| d.alive.load(Ordering::Relaxed))
        .unwrap_or(&shared.devices[0]);
    let inject = donor.roll(FaultSite::DegradedPanic);
    // Span opened outside the unwind boundary, same as the coordinated
    // path: a panicking baseline still leaves a closed span behind.
    let exec_guard = shared.obs().map(|o| o.span(SpanKind::DegradedExec));
    let out = catch_unwind(AssertUnwindSafe(|| {
        if inject {
            std::panic::panic_any(INJECTED_DEGRADED_PANIC_MSG);
        }
        ctb_baselines::default_functional(donor.arch(), &job.batch)
    }));
    match out {
        Ok(results) => {
            if let Some(g) = exec_guard {
                g.finish();
            }
            let wall_us = job.submitted.elapsed().as_secs_f64() * 1e6;
            shared.stats.completed.fetch_add(1, Ordering::Relaxed);
            shared.stats.degraded.fetch_add(1, Ordering::Relaxed);
            shared.stats.record_latency(wall_us);
            let abandoned = respond(
                shared,
                &job.tx,
                Ok(ClusterResult {
                    results,
                    device: donor.id,
                    predicted_us: job.predicted_us,
                    simulated_us: 0.0,
                    wall_us,
                    degraded: true,
                    stolen: job.stolen,
                    reroutes: job.attempts,
                }),
            );
            if let Some(o) = shared.obs() {
                o.point(PointKind::BatchDone {
                    req: job.id,
                    device: donor.id,
                    degraded: true,
                    abandoned,
                });
            }
        }
        Err(payload) => {
            if let Some(g) = exec_guard {
                g.finish();
            }
            shared.stats.worker_panics.fetch_add(1, Ordering::Relaxed);
            if let Some(o) = shared.obs() {
                o.point(PointKind::PanicCaught);
                o.dump_flight("degraded worker panic");
            }
            let abandoned =
                respond(shared, &job.tx, Err(ClusterError::WorkerPanic(panic_message(&*payload))));
            if let Some(o) = shared.obs() {
                o.point(PointKind::Failed { req: job.id, abandoned });
            }
        }
    }
}

/// Deliver a response; an abandoned ticket (receiver dropped) is not an
/// error — the batch still counted as completed above. Returns the
/// abandoned flag so instrumentation can record it on the terminal
/// trace event.
fn respond(
    _shared: &Shared,
    tx: &mpsc::Sender<Result<ClusterResult, ClusterError>>,
    r: Result<ClusterResult, ClusterError>,
) -> bool {
    tx.send(r).is_err()
}

fn worker_loop(shared: &Shared, dev_idx: usize) {
    let dev = &shared.devices[dev_idx];
    loop {
        if shared.cfg.steal.enabled {
            match dev.queue.pop_until(Instant::now() + shared.cfg.steal.poll) {
                Ok(Some(job)) => run_job(shared, dev_idx, job),
                Ok(None) => break, // closed and drained
                Err(_timeout) => {
                    try_steal(shared, dev_idx);
                }
            }
        } else {
            match dev.queue.pop() {
                Some(job) => run_job(shared, dev_idx, job),
                None => break,
            }
        }
    }
}

/// An idle device looks for the most-backlogged live peer and, when the
/// cost model says the peer's front batch finishes sooner here than it
/// would *start* there, takes it. The candidate's shapes are read under
/// `peek_map`, predicted lock-free, then claimed with a `pop_if`
/// recheck so a raced queue never yields the wrong batch.
fn try_steal(shared: &Shared, thief_idx: usize) -> bool {
    let thief = &shared.devices[thief_idx];
    if !thief.alive.load(Ordering::Relaxed) || thief.breaker.is_open() {
        return false;
    }
    let mut victim: Option<(usize, f64)> = None;
    for dev in &shared.devices {
        if dev.id == thief_idx || !dev.alive.load(Ordering::Relaxed) || dev.queue.is_empty() {
            continue;
        }
        let backlog = dev.backlog_us.load().max(0.0);
        if backlog >= shared.cfg.steal.min_victim_backlog_us
            && victim.is_none_or(|(_, b)| backlog > b)
        {
            victim = Some((dev.id, backlog));
        }
    }
    let Some((victim_idx, victim_backlog)) = victim else {
        return false;
    };
    let victim_dev = &shared.devices[victim_idx];
    let Some(shapes) = victim_dev.queue.peek_map(|j| j.batch.shapes.clone()) else {
        return false;
    };
    let Ok(predicted_here) = predict_us(thief, &shapes) else {
        return false;
    };
    if !placer::steal_beneficial(
        victim_backlog,
        predicted_here,
        shared.cfg.steal.min_victim_backlog_us,
    ) {
        return false;
    }
    // Claim under the lock, rechecking identity: the front batch may
    // have been popped (or swapped) since the peek.
    let Some(mut job) = victim_dev.queue.pop_if(|j| j.batch.shapes == shapes) else {
        return false;
    };
    victim_dev.backlog_us.add(-job.predicted_us);
    job.predicted_us = predicted_here;
    job.stolen = true;
    thief.backlog_us.add(predicted_here);
    thief.steals.fetch_add(1, Ordering::Relaxed);
    shared.stats.steals.fetch_add(1, Ordering::Relaxed);
    if let Some(o) = shared.obs() {
        o.point(PointKind::Steal { to: thief_idx, from: victim_idx });
    }
    // The steal physically moves the operands: account the transfer and
    // re-home the signature on the thief. The job is already claimed
    // (popped) here, so claim and commit run back-to-back — no queue
    // push can interleave another landing for this chain in between.
    let claim = claim_residency(
        shared,
        thief_idx,
        ctb_core::shape_sig_hash(&shapes),
        ctb_core::operand_bytes(&shapes),
    );
    commit_residency(shared, thief_idx, &claim);
    run_job(shared, thief_idx, job);
    true
}

fn run_job(shared: &Shared, dev_idx: usize, job: ClusterJob) {
    let dev = &shared.devices[dev_idx];

    // Injected worker stall (slow-device chaos).
    if let Some(f) = &dev.fault {
        if let Some(delay) = f.roll_slow() {
            std::thread::sleep(delay);
        }
    }

    // Plan — panic-isolated, with injected failures folded in as typed
    // planning errors.
    let planned = if dev.roll(FaultSite::PlanFail) {
        Err("injected planning failure".to_string())
    } else {
        match catch_unwind(AssertUnwindSafe(|| dev.session.plan(&job.batch.shapes))) {
            Ok(r) => r,
            Err(payload) => {
                shared.stats.worker_panics.fetch_add(1, Ordering::Relaxed);
                if let Some(o) = shared.obs() {
                    o.point(PointKind::PanicCaught);
                    o.dump_flight("planner panic");
                }
                Err(format!("planner panicked: {}", panic_message(&*payload)))
            }
        }
    };
    let plan = match planned {
        Ok(plan) => plan,
        Err(_m) => {
            shared.stats.plan_failures.fetch_add(1, Ordering::Relaxed);
            if let Some(o) = shared.obs() {
                o.point(PointKind::PlanFailure);
            }
            fail_and_reroute(shared, dev_idx, job);
            return;
        }
    };

    // Execute — panic-isolated; a panic re-routes the batch to a
    // surviving device instead of killing the worker. The span is
    // opened outside the unwind boundary so a panicking batch still
    // gets a closed span in the trace (and in any flight dump).
    let exec_guard = shared.obs().map(|o| o.span(SpanKind::Exec));
    let inject_panic = dev.roll(FaultSite::ExecPanic);
    let executed = catch_unwind(AssertUnwindSafe(|| {
        if inject_panic {
            std::panic::panic_any(INJECTED_PANIC_MSG);
        }
        dev.session.framework().execute(&job.batch, &plan)
    }));
    match executed {
        Ok((results, report)) => {
            if let Some(g) = exec_guard {
                g.finish();
            }
            dev.breaker.record_success();
            dev.backlog_us.add(-job.predicted_us);
            dev.busy_sim_us.add(report.total_us);
            dev.completed.fetch_add(1, Ordering::Relaxed);
            shared.stats.completed.fetch_add(1, Ordering::Relaxed);
            shared.stats.record_placement_err(job.predicted_us, report.total_us);
            let wall_us = job.submitted.elapsed().as_secs_f64() * 1e6;
            shared.stats.record_latency(wall_us);
            let abandoned = respond(
                shared,
                &job.tx,
                Ok(ClusterResult {
                    results,
                    device: dev.id,
                    predicted_us: job.predicted_us,
                    simulated_us: report.total_us,
                    wall_us,
                    degraded: false,
                    stolen: job.stolen,
                    reroutes: job.attempts,
                }),
            );
            if let Some(o) = shared.obs() {
                o.point(PointKind::BatchDone {
                    req: job.id,
                    device: dev.id,
                    degraded: false,
                    abandoned,
                });
            }
        }
        Err(_payload) => {
            // Close the span before snapshotting, so the flight ring
            // holds the panicking batch's complete exec span.
            if let Some(g) = exec_guard {
                g.finish();
            }
            shared.stats.worker_panics.fetch_add(1, Ordering::Relaxed);
            if let Some(o) = shared.obs() {
                o.point(PointKind::PanicCaught);
                o.dump_flight("worker panic");
            }
            fail_and_reroute(shared, dev_idx, job);
        }
    }
}

/// Common failure tail: charge the device's breaker (a trip drains its
/// queue onto survivors), release the job's backlog, and re-route it.
fn fail_and_reroute(shared: &Shared, dev_idx: usize, job: ClusterJob) {
    let dev = &shared.devices[dev_idx];
    if dev.breaker.record_failure() {
        dev.breaker_trips.fetch_add(1, Ordering::Relaxed);
        shared.stats.breaker_trips.fetch_add(1, Ordering::Relaxed);
        if let Some(o) = shared.obs() {
            o.point(PointKind::BreakerTrip);
            o.dump_flight("breaker trip");
        }
        drain_and_reroute(shared, dev_idx);
    }
    dev.backlog_us.add(-job.predicted_us);
    reroute(shared, job, dev_idx);
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctb_matrix::assert_bitwise_eq;

    fn small_pool() -> Vec<ArchSpec> {
        ArchSpec::pool_presets(2)
    }

    fn batch(shapes: &[GemmShape], seed: u64) -> GemmBatch {
        GemmBatch::random(shapes, 1.0, 0.5, seed)
    }

    #[test]
    fn call_returns_bitwise_exact_results() {
        let cluster = Cluster::new(small_pool(), ClusterConfig::default());
        let b = batch(&[GemmShape::new(48, 64, 96), GemmShape::new(16, 32, 128)], 7);
        let oracle = b.reference_result_exact();
        let out = cluster.call(b).expect("runs");
        assert!(!out.degraded);
        assert_eq!(out.results.len(), 2);
        assert_bitwise_eq(&oracle, &out.results, "cluster vs exact oracle");
        let stats = cluster.shutdown();
        assert_eq!(stats.submitted, 1);
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.degraded, 0);
    }

    #[test]
    fn prediction_matches_execution_exactly_when_not_moved() {
        // The placer's prediction and the executed report read the same
        // deterministic simulator; an unmoved batch must reconcile to
        // zero placement error.
        let cluster = Cluster::new(small_pool(), ClusterConfig::default());
        for seed in 0..4 {
            let b = batch(&[GemmShape::new(64, 64, 64); 3], seed);
            let out = cluster.call(b).expect("runs");
            assert_eq!(
                out.predicted_us, out.simulated_us,
                "cost model and executor disagree on device {}",
                out.device
            );
        }
        let stats = cluster.shutdown();
        assert_eq!(stats.mean_abs_placement_err_us, 0.0);
    }

    #[test]
    fn invalid_batches_are_rejected_synchronously() {
        let cluster = Cluster::new(small_pool(), ClusterConfig::default());
        let bad = GemmBatch {
            shapes: vec![GemmShape::new(4, 4, 4)],
            a: vec![MatF32::zeros(3, 4)], // wrong rows
            b: vec![MatF32::zeros(4, 4)],
            c: vec![MatF32::zeros(4, 4)],
            alpha: 1.0,
            beta: 0.0,
        };
        assert!(matches!(cluster.call(bad), Err(ClusterError::Invalid(_))));
    }

    #[test]
    fn submit_after_close_is_refused() {
        let cluster = Cluster::new(small_pool(), ClusterConfig::default());
        cluster.close();
        let b = batch(&[GemmShape::new(16, 16, 16)], 1);
        assert!(matches!(cluster.submit(b), Err(ClusterError::ShuttingDown)));
    }

    #[test]
    fn kill_all_devices_still_serves_degraded() {
        let cluster = Cluster::new(small_pool(), ClusterConfig::default());
        cluster.kill_device(0);
        cluster.kill_device(1);
        let b = batch(&[GemmShape::new(32, 32, 32)], 3);
        let oracle = b.reference_result_exact();
        let out = cluster.call(b).expect("degraded path still serves");
        assert!(out.degraded, "no live device: must be the baseline");
        assert_bitwise_eq(&oracle, &out.results, "degraded vs exact oracle");
        let stats = cluster.shutdown();
        assert_eq!(stats.kills, 2);
        assert_eq!(stats.degraded, 1);
        assert_eq!(stats.completed, 1);
    }

    #[test]
    fn kill_is_idempotent() {
        let cluster = Cluster::new(small_pool(), ClusterConfig::default());
        cluster.kill_device(1);
        cluster.kill_device(1);
        assert!(!cluster.is_alive(1));
        assert!(cluster.is_alive(0));
        let stats = cluster.shutdown();
        assert_eq!(stats.kills, 1);
    }

    #[test]
    fn plan_cache_is_shared_across_submissions() {
        let cluster = Cluster::new(small_pool(), ClusterConfig::default());
        let shapes = vec![GemmShape::new(40, 56, 72); 2];
        for seed in 0..5 {
            cluster.call(batch(&shapes, seed)).expect("runs");
        }
        let stats = cluster.shutdown();
        // Each device plans the signature at most once (placement
        // predicts on both devices), after which every placement and
        // execution is a cache hit.
        assert!(stats.plan_cache.misses <= 2, "misses = {}", stats.plan_cache.misses);
        assert!(stats.plan_cache.hits >= 8, "hits = {}", stats.plan_cache.hits);
        assert!(stats.sim_memo.hits + stats.sim_memo.misses > 0);
    }

    #[test]
    fn shutdown_drains_queued_batches() {
        // One slow-ish device, several queued batches, immediate
        // shutdown: every ticket must still resolve.
        let cfg = ClusterConfig {
            workers_per_device: 1,
            steal: StealPolicy { enabled: false, ..StealPolicy::default() },
            ..ClusterConfig::default()
        };
        let cluster = Cluster::new(vec![ArchSpec::maxwell_m60()], cfg);
        let shapes = vec![GemmShape::new(96, 96, 96); 2];
        let tickets: Vec<_> = (0..8)
            .map(|seed| cluster.submit(batch(&shapes, seed)).expect("admitted"))
            .collect();
        let stats = cluster.shutdown();
        assert_eq!(stats.completed, 8, "drain contract: all batches complete");
        for t in tickets {
            let out = t.wait().expect("completed during drain");
            assert_eq!(out.results.len(), 2);
        }
    }
}

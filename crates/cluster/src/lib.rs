//! # ctb-cluster — heterogeneous multi-GPU scheduling for coordinated GEMM
//!
//! The paper evaluates its coordinated tiling/batching framework on six
//! NVIDIA GPUs, one device at a time; this crate scales the same
//! framework *across* a pool of simulated devices. The design premise is
//! the paper's own methodology turned sideways: if the analytical
//! hardware model is accurate enough to choose tilings and batchings, it
//! is accurate enough to choose **devices**. Placement therefore asks
//! the per-architecture simulator (through the pool-wide memoized
//! [`ctb_core::PlanShare`]) what each live device would need for the
//! batch, adds the device's current predicted backlog, and queues the
//! batch on the argmin — and an idle device steals queued work from a
//! saturated peer only when that same model says the move wins.
//!
//! Built from audited parts: each device is its own
//! [`ctb_core::Session`] + bounded queue + worker pool (the `ctb-serve`
//! primitives), with a per-device circuit breaker and optional
//! deterministic fault injection composing the PR 3 resilience
//! machinery. Execution everywhere is the functional executor, so
//! results are bitwise-exact no matter which device — or how many
//! re-routes — produced them.
//!
//! ```
//! use ctb_cluster::{Cluster, ClusterConfig};
//! use ctb_gpu_specs::ArchSpec;
//! use ctb_matrix::{GemmBatch, GemmShape};
//!
//! // A V100 + Titan Xp pool, routed by the cost model.
//! let cluster = Cluster::new(ArchSpec::pool_presets(2), ClusterConfig::default());
//! let batch = GemmBatch::random(&[GemmShape::new(64, 64, 64); 4], 1.0, 0.0, 1);
//! let oracle = batch.reference_result_exact();
//! let out = cluster.call(batch).unwrap();
//! assert_eq!(out.results.len(), 4);
//! ctb_matrix::assert_bitwise_eq(&oracle, &out.results, "routed result");
//! let stats = cluster.shutdown();
//! assert_eq!(stats.completed, 1);
//! ```

mod cluster;
pub mod drift;
pub mod events;
pub mod placer;
mod stats;

pub use cluster::{
    BatchTicket, Cluster, ClusterConfig, ClusterError, ClusterResult, StealPolicy,
};
pub use drift::{GroundTruth, PlacementDecision};
pub use events::{
    EngineReport, EventCluster, EventConfig, LoadGen, PlacementMode, ReqOutcome, ShapeMix,
    SimTime, Timeline, WITNESS_ALPHA, WITNESS_BETA,
};
pub use placer::{choose, steal_beneficial, Candidate, LocalityPolicy};
pub use stats::{AtomicF64, ClusterInner, ClusterStats, DeviceStats};

//! Ground-truth drift pools and recorded placement decisions — the
//! data-generation side of closed-loop calibration (ctb-calib).
//!
//! The event engine's predictions and its charged execution times both
//! come from the same analytical model, so its placement error is zero
//! *by construction* — correct for lockstep parity, useless for
//! studying calibration. A [`GroundTruth`] pool breaks that tie: it
//! holds one "true silicon" [`ArchSpec`] per device class, derived from
//! the nominal spec by deterministic drift (throttled clocks, degraded
//! memory buses, fatter launch overheads — the ways real boards diverge
//! from their datasheets). With a pool attached, the engine still
//! *places* with the nominal model but *charges* the time the planned
//! kernel takes on the true spec, so predicted-vs-actual error becomes a
//! real signal, and every completion can be logged as a
//! [`PlacementDecision`] for the offline calibrator to fit against.

use ctb_gpu_specs::ArchSpec;
use ctb_matrix::GemmShape;
use std::sync::Arc;

/// One completed placement, as recorded for offline calibration: what
/// the raw model said, what the placer used, and what execution
/// actually cost.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacementDecision {
    /// Engine-assigned request id.
    pub id: u64,
    /// Device index the request completed on.
    pub device: usize,
    /// Architecture name of that device (the calibration key).
    pub arch: &'static str,
    /// The batch's shape signature.
    pub shapes: Arc<[GemmShape]>,
    /// Uncorrected analytical-model prediction (µs).
    pub model_us: f64,
    /// The prediction the placer actually used — the model plus any
    /// installed correction (equals `model_us` at calibration
    /// version 0).
    pub predicted_us: f64,
    /// Time charged at completion (µs) — the true-arch simulation when
    /// a [`GroundTruth`] pool is attached.
    pub actual_us: f64,
}

impl PlacementDecision {
    /// Signed prediction error in µs (`predicted - actual`).
    pub fn error_us(&self) -> f64 {
        self.predicted_us - self.actual_us
    }
}

/// Per-class "true silicon" specs. Lookup is by `ArchSpec::name`;
/// classes without an entry are treated as drift-free (the nominal
/// model *is* their truth).
#[derive(Debug, Clone)]
pub struct GroundTruth {
    specs: Vec<ArchSpec>,
}

/// splitmix64 finalizer — full-avalanche, so consecutive seeds give
/// uncorrelated drift factors.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Uniform in `[0, 1)` from a hash.
fn u01(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

impl GroundTruth {
    /// A pool from explicit true specs (deduplicated by name is the
    /// caller's job; lookup returns the first match).
    pub fn new(specs: Vec<ArchSpec>) -> Self {
        GroundTruth { specs }
    }

    /// Derive a drifted truth pool from the nominal `pool`:
    /// one drifted clone per *distinct* arch name, with deterministic
    /// per-class factors hashed from `(seed, name)`:
    ///
    /// * clock throttled to 85–97 % of nominal,
    /// * memory bandwidth degraded to 80–95 %,
    /// * global-memory latency inflated 5–35 %,
    /// * kernel-launch overhead inflated 0–50 %.
    ///
    /// The drifted spec keeps the nominal `name` — that is the whole
    /// point: the model thinks it is predicting for the datasheet part
    /// while execution runs on the tired one.
    pub fn drift(pool: &[ArchSpec], seed: u64) -> Self {
        let mut specs: Vec<ArchSpec> = Vec::new();
        for nominal in pool {
            if specs.iter().any(|s| s.name == nominal.name) {
                continue;
            }
            let mut h = mix(seed ^ 0xD21F_7D21_F7D2_1F7D);
            for b in nominal.name.as_bytes() {
                h = mix(h ^ u64::from(*b));
            }
            let mut spec = nominal.clone();
            spec.clock_ghz *= 0.85 + 0.12 * u01(mix(h ^ 1));
            let bw = 0.80 + 0.15 * u01(mix(h ^ 2));
            spec.mem_bandwidth_gbps *= bw;
            // The bus degrades as a whole: local and remote shares scale
            // by the same factor, so the topology split tracks the
            // drifted aggregate bandwidth (up to f64 rounding of the
            // two products).
            spec.topology.local_bandwidth_gbps *= bw;
            spec.topology.remote_bandwidth_gbps *= bw;
            spec.global_mem_latency =
                ((spec.global_mem_latency as f64) * (1.05 + 0.30 * u01(mix(h ^ 3)))).round() as u32;
            spec.kernel_launch_overhead_us *= 1.0 + 0.5 * u01(mix(h ^ 4));
            specs.push(spec);
        }
        GroundTruth { specs }
    }

    /// The true spec for arch `name`, if this pool drifts it.
    pub fn spec(&self, name: &str) -> Option<&ArchSpec> {
        self.specs.iter().find(|s| s.name == name)
    }

    /// Every true spec in the pool.
    pub fn specs(&self) -> &[ArchSpec] {
        &self.specs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drift_is_deterministic_and_keeps_names() {
        let pool = ArchSpec::pool_presets(6);
        let a = GroundTruth::drift(&pool, 7);
        let b = GroundTruth::drift(&pool, 7);
        assert_eq!(a.specs().len(), 6, "six distinct classes");
        for (x, y) in a.specs().iter().zip(b.specs()) {
            assert_eq!(x, y, "same seed, same drift");
        }
        for (truth, nominal) in a.specs().iter().zip(&pool) {
            assert_eq!(truth.name, nominal.name);
            assert!(truth.clock_ghz < nominal.clock_ghz, "clock throttles");
            assert!(truth.mem_bandwidth_gbps < nominal.mem_bandwidth_gbps);
            assert!(truth.global_mem_latency > nominal.global_mem_latency);
            assert!(truth.kernel_launch_overhead_us >= nominal.kernel_launch_overhead_us);
        }
    }

    #[test]
    fn drift_scales_chiplet_topology_with_the_bus() {
        let pool = ArchSpec::chiplet_pool_presets(3);
        let gt = GroundTruth::drift(&pool, 11);
        for (truth, nominal) in gt.specs().iter().zip(&pool) {
            assert_eq!(truth.topology.chiplets, nominal.topology.chiplets);
            assert_eq!(
                truth.topology.interposer_latency_us,
                nominal.topology.interposer_latency_us,
                "drift degrades bandwidth, not the interposer wire"
            );
            assert!(truth.topology.local_bandwidth_gbps < nominal.topology.local_bandwidth_gbps);
            if !nominal.topology.is_unified() {
                assert!(
                    truth.topology.remote_bandwidth_gbps < nominal.topology.remote_bandwidth_gbps
                );
            }
            // The split tracks the drifted aggregate (f64 rounding aside).
            let sum = truth.topology.total_bandwidth_gbps();
            assert!((sum - truth.mem_bandwidth_gbps).abs() < 1e-9 * sum.max(1.0));
        }
    }

    #[test]
    fn different_seeds_drift_differently() {
        let pool = ArchSpec::pool_presets(2);
        let a = GroundTruth::drift(&pool, 1);
        let b = GroundTruth::drift(&pool, 2);
        assert_ne!(a.specs()[0].clock_ghz, b.specs()[0].clock_ghz);
    }

    #[test]
    fn duplicate_pool_entries_collapse_to_one_class() {
        let pool = ArchSpec::pool_presets(8); // 6 presets cycled -> 2 dups
        let gt = GroundTruth::drift(&pool, 3);
        assert_eq!(gt.specs().len(), 6);
        assert!(gt.spec("Tesla V100").is_some());
        assert!(gt.spec("no-such-arch").is_none());
    }
}

//! Differential locality suite: locality-aware ranking vs the blind
//! baseline, same seeded workload, same pool, same bookkeeping.
//!
//! The aware and blind arms differ in exactly one place — whether the
//! placer's score includes the interposer-crossing penalty — so every
//! observable difference between the two runs is attributable to the
//! ranking change:
//!
//! - **payloads**: every request is a witness; both arms must be
//!   bitwise-exact against the reference oracle, so routing with the
//!   penalty can never change a single output bit,
//! - **traffic**: on a multi-chiplet pool the aware arm must take
//!   *strictly fewer* remote-operand placements (residency misses) and
//!   charge *strictly fewer* remote bytes,
//! - **degenerate pin**: on a monolithic (single-chiplet) pool the
//!   penalty is identically zero, so the aware arm must reproduce the
//!   blind arm's placements decision-for-decision — today's behavior,
//!   bit for bit,
//! - **trace**: the aware arm's instrumented trace passes the same
//!   [`TraceAudit`] + stats reconciliation the chaos suites use.

use ctb_cluster::{
    Cluster, ClusterConfig, ClusterStats, EventCluster, EventConfig, GroundTruth, LocalityPolicy,
    ReqOutcome, SimTime, StealPolicy,
};
use ctb_gpu_specs::{ArchSpec, ChipletTopology};
use ctb_matrix::{assert_bitwise_eq, GemmBatch, GemmShape};
use ctb_obs::TraceAudit;
use std::sync::Arc;

/// A pool of identical multi-chiplet devices whose interposer cost is
/// heavy enough to matter against queueing deltas: stickiness is a
/// *ranking* decision here, not a rounding accident. Identical specs
/// also mean identical predictions, so the blind arm's argmin is driven
/// purely by backlog + id — the regime where it migrates signatures the
/// most.
fn sticky_pool(n: usize) -> Vec<ArchSpec> {
    (0..n)
        .map(|_| {
            let mut a = ArchSpec::mcm_gpu_4die();
            // Same silicon, meaner package: a 400 µs interposer crossing
            // (about one batch's service time) so remote placement is a
            // first-class cost, not a tie-break.
            a.topology = ChipletTopology::split(4, 3_000.0, 0.6, 400.0);
            a
        })
        .collect()
}

/// Monolithic pool for the degenerate-topology pin.
fn unified_pool() -> Vec<ArchSpec> {
    ArchSpec::pool_presets(3)
}

/// The workload: three distinct batch signatures in a deliberately
/// misaligned pattern (not a clean round-robin), so a backlog-only
/// ranking keeps bouncing signatures across devices while a
/// locality-aware one can pin each signature to its operand home.
fn mix_shapes(i: usize) -> Arc<[GemmShape]> {
    let mix: [&[GemmShape]; 3] = [
        &[GemmShape::new(96, 96, 384); 2],
        &[GemmShape::new(48, 64, 96), GemmShape::new(16, 32, 640)],
        &[GemmShape::new(128, 32, 32); 4],
    ];
    // Low bits of a weyl sequence: an aperiodic-looking but fully
    // deterministic draw over the three classes.
    mix[(i * 7 + i / 3) % 3].into()
}

const REQUESTS: usize = 60;
/// Arrival gap well under the per-batch service time (hundreds of
/// microseconds), so queues build and the backlog-only ranking keeps
/// chasing the momentarily-least-loaded device across the pool.
const GAP_NS: u64 = 5_000;

fn config() -> ClusterConfig {
    ClusterConfig {
        // Stealing is exercised by the lockstep and chaos suites; here
        // it would only blur which arm moved the operands and why.
        steal: StealPolicy { enabled: false, ..StealPolicy::default() },
        ..ClusterConfig::default()
    }
}

/// Run one arm on the event engine over `pool` with the given policy,
/// returning its outcomes and reconciled stats. Fault-free, fully
/// instrumented, every request witnessed.
fn run_arm(pool: Vec<ArchSpec>, locality: LocalityPolicy) -> (Vec<ReqOutcome>, ClusterStats) {
    let mut cfg = EventConfig::from(&config());
    cfg.locality = locality;
    let n = pool.len();
    let truth = GroundTruth::drift(&pool, 0x10CA_11FE);
    let (mut eng, obs) = EventCluster::with_instrumentation(pool, cfg, vec![None; n]);
    eng.set_ground_truth(truth);
    for i in 0..REQUESTS {
        eng.submit_at(SimTime(1 + i as u64 * GAP_NS), mix_shapes(i), i as u64);
    }
    let report = eng.run();
    assert_eq!(report.requests, REQUESTS);
    assert_eq!(report.witnesses, REQUESTS, "every request is witnessed");
    assert_eq!(report.witness_mismatches, 0, "witnesses are bitwise-exact");
    audit(&obs, &report.stats);
    (report.outcomes, report.stats)
}

/// The chaos-suite audit: structural trace invariants plus `==`
/// reconciliation of every counter the trace can rebuild.
fn audit(obs: &ctb_obs::Obs, stats: &ClusterStats) {
    let counts = TraceAudit::new(obs.events()).check().expect("trace invariants hold");
    assert_eq!(counts.terminals(), counts.admits, "one terminal per admit");
    assert_eq!(counts.batch_done, stats.completed, "batch-done vs completed");
    assert_eq!(counts.routed, stats.routed, "routed events vs routed");
    assert_eq!(counts.steals, stats.steals, "steal events vs steals");
    assert_eq!(counts.reroutes, stats.reroutes, "reroute events vs reroutes");
    assert_eq!(counts.residency_hits, stats.residency_hits, "residency-hit events");
    assert_eq!(counts.residency_misses, stats.residency_misses, "residency-miss events");
}

fn placements(outcomes: &[ReqOutcome]) -> Vec<(u64, usize)> {
    outcomes
        .iter()
        .map(|o| match o {
            ReqOutcome::Done { id, device, .. } => (*id, *device),
            other => panic!("fault-free workload only completes, got {other:?}"),
        })
        .collect()
}

#[test]
fn aware_reduces_remote_traffic_on_chiplet_pool() {
    assert!(LocalityPolicy::default().enabled, "default policy ranks with the penalty");
    assert!(!LocalityPolicy::blind().enabled, "blind arm must not");
    let (_, aware) = run_arm(sticky_pool(3), LocalityPolicy::default());
    let (_, blind) = run_arm(sticky_pool(3), LocalityPolicy::blind());

    assert_eq!(aware.completed, REQUESTS, "aware arm completes everything");
    assert_eq!(blind.completed, REQUESTS, "blind arm completes everything");

    // Both arms pay identical bookkeeping; only the ranking differs.
    // Every landing is classified, so hits + misses covers the routed
    // (and stolen) landings exactly.
    assert_eq!(aware.residency_hits + aware.residency_misses, aware.routed + aware.steals);
    assert_eq!(blind.residency_hits + blind.residency_misses, blind.routed + blind.steals);

    // The tentpole gate, strict on both axes: fewer remote placements
    // and less interposer traffic.
    eprintln!(
        "locality differential: misses {} vs {}, remote bytes {} vs {}",
        aware.residency_misses,
        blind.residency_misses,
        aware.remote_operand_bytes,
        blind.remote_operand_bytes,
    );
    assert!(
        aware.residency_misses < blind.residency_misses,
        "aware arm must take strictly fewer remote placements: {} vs {}",
        aware.residency_misses,
        blind.residency_misses,
    );
    assert!(
        aware.remote_operand_bytes < blind.remote_operand_bytes,
        "aware arm must charge strictly fewer remote bytes: {} vs {}",
        aware.remote_operand_bytes,
        blind.remote_operand_bytes,
    );
    assert!(blind.remote_operand_bytes > 0, "the workload actually crosses the interposer");
}

#[test]
fn single_chiplet_pool_pins_aware_to_blind_decisions() {
    // Monolithic topology: the penalty is identically 0.0, and score =
    // completion + 0.0 is bitwise the completion. The aware arm must
    // therefore reproduce the blind arm — placement for placement,
    // counter for counter. This is the "no regression on today's
    // pools" pin.
    let (aware_out, aware) = run_arm(unified_pool(), LocalityPolicy::default());
    let (blind_out, blind) = run_arm(unified_pool(), LocalityPolicy::blind());

    assert_eq!(placements(&aware_out), placements(&blind_out), "placements diverged");
    assert_eq!(aware.routed, blind.routed);
    assert_eq!(aware.reroutes, blind.reroutes);
    assert_eq!(aware.residency_hits, blind.residency_hits);
    assert_eq!(aware.residency_misses, blind.residency_misses);
    assert_eq!(aware.makespan_sim_us, blind.makespan_sim_us, "timing is bitwise-identical");

    // Monolithic devices never charge interposer traffic, under either
    // policy — the remote share of a unified topology is zero.
    assert_eq!(aware.remote_operand_bytes, 0);
    assert_eq!(blind.remote_operand_bytes, 0);
}

#[test]
fn aware_and_blind_payloads_are_bitwise_identical() {
    // The threaded engine, serially driven over the chiplet pool: the
    // penalty may move *where* a batch runs, never *what* it computes.
    // Both arms must equal the exact oracle bit for bit.
    let drive = |locality: LocalityPolicy| {
        let cfg = ClusterConfig { locality, ..config() };
        let cluster = Cluster::new(ArchSpec::chiplet_pool_presets(3), cfg);
        let outs: Vec<_> = (0..12)
            .map(|i| {
                let b = GemmBatch::random(&mix_shapes(i), 1.0, 0.5, i as u64);
                cluster.call(b).expect("fault-free batch completes")
            })
            .collect();
        let stats = cluster.shutdown();
        assert_eq!(stats.completed, 12);
        outs
    };
    let aware = drive(LocalityPolicy::default());
    let blind = drive(LocalityPolicy::blind());
    for (i, (a, b)) in aware.iter().zip(&blind).enumerate() {
        assert!(!a.degraded && !b.degraded, "request {i} stayed on the coordinated path");
        let oracle = GemmBatch::random(&mix_shapes(i), 1.0, 0.5, i as u64).reference_result_exact();
        assert_bitwise_eq(&oracle, &a.results, "aware vs oracle");
        assert_bitwise_eq(&a.results, &b.results, "aware vs blind payload");
    }
}

//! Routing-correctness suite: the sim-cost placer must send work where
//! the paper's hardware model says it belongs.
//!
//! These tests pin the *policy*, not incidental timing: placements on an
//! idle pool are a pure function of the per-arch cost model, so they are
//! deterministic; the stealing test arranges a saturated victim and an
//! idle thief explicitly rather than racing the scheduler blind.

use ctb_cluster::{Cluster, ClusterConfig, StealPolicy};
use ctb_gpu_specs::ArchSpec;
use ctb_matrix::{assert_bitwise_eq, GemmBatch, GemmShape};
use ctb_serve::{FaultConfig, FaultInjector};
use std::sync::Arc;
use std::time::Duration;

/// Far beyond any test's real latency: hitting it means a hang.
const HANG_BOUND: Duration = Duration::from_secs(30);

fn two_device_pool() -> Vec<ArchSpec> {
    let pool = ArchSpec::pool_presets(2);
    assert_eq!(pool[0].name, "Tesla V100");
    assert_eq!(pool[1].name, "Titan Xp");
    pool
}

#[test]
fn compute_bound_large_k_batch_routes_to_v100() {
    // A deep-K compute-bound batch: the V100's higher peak dominates
    // its prediction, so an idle pool must place it there.
    let cluster = Cluster::new(two_device_pool(), ClusterConfig::default());
    let shapes = vec![GemmShape::new(128, 128, 1024); 4];
    let pred_v100 = cluster.predicted_us(0, &shapes).expect("plans on V100");
    let pred_titan = cluster.predicted_us(1, &shapes).expect("plans on Titan Xp");
    assert!(
        pred_v100 < pred_titan,
        "cost model must favour V100 for compute-bound work ({pred_v100} vs {pred_titan})"
    );

    let batch = GemmBatch::random(&shapes, 1.0, 0.0, 11);
    let oracle = batch.reference_result_exact();
    let out = cluster.call(batch).expect("runs");
    assert_eq!(out.device, 0, "compute-bound large-K batch must land on the V100");
    assert!(!out.stolen && !out.degraded);
    assert_bitwise_eq(&oracle, &out.results, "routed result vs exact oracle");
    let stats = cluster.shutdown();
    assert_eq!(stats.devices[0].placements, 1);
    assert_eq!(stats.devices[1].placements, 0);
}

#[test]
fn tiny_launch_dominated_batches_never_cross_devices() {
    // A tiny batch is launch-overhead-dominated; the V100's lower
    // launch cost wins every placement, and sequential submissions on
    // an idle pool leave nothing worth stealing — the batch must not
    // bounce between devices.
    let cluster = Cluster::new(two_device_pool(), ClusterConfig::default());
    let shapes = vec![GemmShape::new(8, 8, 8)];
    for seed in 0..6 {
        let batch = GemmBatch::random(&shapes, 1.0, 0.0, seed);
        let oracle = batch.reference_result_exact();
        let out = cluster
            .submit(batch)
            .expect("admitted")
            .wait_for(HANG_BOUND)
            .expect("completes");
        assert_eq!(out.device, 0, "tiny batch crossed to device {}", out.device);
        assert!(!out.stolen, "nothing to steal on a drained pool");
        assert_eq!(out.reroutes, 0);
        assert_bitwise_eq(&oracle, &out.results, "tiny batch result");
    }
    let stats = cluster.shutdown();
    assert_eq!(stats.steals, 0);
    assert_eq!(stats.reroutes, 0);
    assert_eq!(stats.devices[1].placements, 0, "all tiny batches stay on the V100");
}

#[test]
fn saturated_pool_spreads_load_by_predicted_completion() {
    // A burst larger than any single device's appetite: backlog-aware
    // argmin placement must use both devices, in rough proportion to
    // their predicted speeds (V100 strictly more than the Titan Xp).
    let cluster = Cluster::new(two_device_pool(), ClusterConfig::default());
    let shapes = vec![GemmShape::new(96, 96, 256); 4];
    let batches: Vec<GemmBatch> =
        (0..12).map(|seed| GemmBatch::random(&shapes, 1.0, 0.0, seed)).collect();
    let oracles: Vec<_> = batches.iter().map(GemmBatch::reference_result_exact).collect();
    let tickets: Vec<_> =
        batches.into_iter().map(|b| cluster.submit(b).expect("admitted")).collect();
    for (t, oracle) in tickets.into_iter().zip(&oracles) {
        let out = t.wait_for(HANG_BOUND).expect("completes");
        assert_bitwise_eq(oracle, &out.results, "burst result vs exact oracle");
    }
    let stats = cluster.shutdown();
    assert_eq!(stats.completed, 12);
    let (v100, titan) = (&stats.devices[0], &stats.devices[1]);
    assert!(v100.placements > 0, "the fast device must take work");
    assert!(titan.placements + titan.steals > 0, "the burst must spill off the V100");
    assert!(
        v100.completed + v100.steals >= titan.completed,
        "the faster device should carry at least as much of the burst \
         (V100 {} vs Titan Xp {})",
        v100.completed,
        titan.completed
    );
    // Both devices contributed simulated work, so the pool's makespan
    // beats serializing everything on the V100.
    assert!(stats.makespan_sim_us < stats.total_sim_us);
}

#[test]
fn idle_device_steals_from_a_stalled_victim() {
    // Pin the steal preconditions instead of racing: device 0 (V100)
    // always stalls 25 ms per batch (injected slow-worker fault) while
    // the batches themselves are tiny, so its queue holds predicted
    // backlog long after device 1 drains and goes idle. Once the V100's
    // backlog exceeds the Titan Xp's predicted cost for the front
    // batch, the model approves the steal.
    let stall = Arc::new(FaultInjector::new(
        FaultConfig::new(0xC0FFEE).slow_worker(1000, Duration::from_millis(25)),
    ));
    let cfg = ClusterConfig {
        steal: StealPolicy {
            enabled: true,
            min_victim_backlog_us: 1.0,
            poll: Duration::from_micros(200),
        },
        ..ClusterConfig::default()
    };
    let cluster = Cluster::with_faults(two_device_pool(), cfg, vec![Some(stall), None]);
    let shapes = vec![GemmShape::new(32, 32, 64); 2];
    let batches: Vec<GemmBatch> =
        (0..16).map(|seed| GemmBatch::random(&shapes, 1.0, 0.0, seed)).collect();
    let oracles: Vec<_> = batches.iter().map(GemmBatch::reference_result_exact).collect();
    let tickets: Vec<_> =
        batches.into_iter().map(|b| cluster.submit(b).expect("admitted")).collect();
    let mut stolen = 0;
    for (t, oracle) in tickets.into_iter().zip(&oracles) {
        let out = t.wait_for(HANG_BOUND).expect("completes");
        stolen += usize::from(out.stolen);
        assert_bitwise_eq(oracle, &out.results, "stolen-path result vs exact oracle");
    }
    let stats = cluster.shutdown();
    assert_eq!(stats.completed, 16, "zero drops under stealing");
    assert!(
        stats.steals >= 1,
        "an idle Titan Xp next to a stalled V100 must steal (steals = {})",
        stats.steals
    );
    assert_eq!(stats.steals, stolen, "per-result provenance matches the counter");
    assert!(stats.devices[1].steals >= 1, "the idle Titan Xp must be a thief");
    let per_device: usize = stats.devices.iter().map(|d| d.steals).sum();
    assert_eq!(per_device, stats.steals, "device attribution reconciles");
}

#[test]
fn steals_can_be_disabled() {
    let stall = Arc::new(FaultInjector::new(
        FaultConfig::new(0xBEEF).slow_worker(1000, Duration::from_millis(2)),
    ));
    let cfg = ClusterConfig {
        steal: StealPolicy { enabled: false, ..StealPolicy::default() },
        ..ClusterConfig::default()
    };
    let cluster = Cluster::with_faults(two_device_pool(), cfg, vec![Some(stall), None]);
    let shapes = vec![GemmShape::new(64, 64, 256); 2];
    let tickets: Vec<_> = (0..8)
        .map(|seed| {
            cluster.submit(GemmBatch::random(&shapes, 1.0, 0.0, seed)).expect("admitted")
        })
        .collect();
    for t in tickets {
        let out = t.wait_for(HANG_BOUND).expect("completes");
        assert!(!out.stolen);
    }
    let stats = cluster.shutdown();
    assert_eq!(stats.steals, 0);
    assert_eq!(stats.completed, 8);
}

//! Device-level chaos suite: PR 3's deterministic fault machinery
//! composed with multi-device routing.
//!
//! The contracts under fire:
//!
//! 1. **Zero drops** — every admitted batch resolves to `Ok` within a
//!    generous bound, whatever one device's injector does to it.
//! 2. **Bitwise exactness** — every result, on any surviving device or
//!    the degraded baseline, equals
//!    [`GemmBatch::reference_result_exact`] for its own inputs.
//! 3. **Failover accounting** — breaker trips, re-routes and kills are
//!    visible in [`ctb_cluster::ClusterStats`] and reconcile with
//!    per-result provenance.

use ctb_cluster::{Cluster, ClusterConfig, ClusterResult, ClusterStats, StealPolicy};
use ctb_gpu_specs::ArchSpec;
use ctb_matrix::{assert_bitwise_eq, GemmBatch, GemmShape};
use ctb_obs::{Obs, TraceAudit, TraceCounts};
use ctb_serve::{BreakerPolicy, FaultConfig, FaultInjector};
use std::sync::{Arc, Once};
use std::time::Duration;

const HANG_BOUND: Duration = Duration::from_secs(30);

/// Injected panics unwind through `catch_unwind` by design; silence
/// only *their* default-hook noise so real panics still print.
fn quiet_injected_panics() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            let msg = payload
                .downcast_ref::<&str>()
                .copied()
                .or_else(|| payload.downcast_ref::<String>().map(String::as_str));
            let injected = msg.is_some_and(|s| s.contains("ctb-serve injected fault"));
            if !injected {
                default(info);
            }
        }));
    });
}

fn pool() -> Vec<ArchSpec> {
    ArchSpec::pool_presets(2)
}

/// Every cluster chaos schedule ends here: audit the trace's structural
/// invariants, then reconcile its counts against the final stats with
/// `==` — no tolerances.
fn audit_and_reconcile(obs: &Obs, stats: &ClusterStats) -> TraceCounts {
    let counts = TraceAudit::new(obs.events()).check().expect("trace invariants hold");
    assert_eq!(counts.terminals(), counts.admits, "one terminal event per admitted batch");
    assert_eq!(counts.admits - counts.rejects_admitted, stats.submitted, "admits vs submitted");
    assert_eq!(counts.batch_done, stats.completed, "batch-done events vs completed");
    assert_eq!(counts.batch_done_degraded, stats.degraded, "degraded events vs degraded");
    assert_eq!(counts.routed, stats.routed, "routed events vs routed");
    assert_eq!(counts.steals, stats.steals, "steal events vs steals");
    assert_eq!(counts.reroutes, stats.reroutes, "reroute events vs reroutes");
    assert_eq!(counts.kills, stats.kills, "kill events vs kills");
    assert_eq!(counts.panics_caught, stats.worker_panics, "panic events vs worker_panics");
    assert_eq!(counts.plan_failures, stats.plan_failures, "plan-failure events vs plan_failures");
    assert_eq!(counts.breaker_trips, stats.breaker_trips, "breaker events vs breaker_trips");
    assert_eq!(counts.plan_cache_hits, stats.plan_cache.hits, "cache-hit events vs plan cache");
    assert_eq!(
        counts.plan_cache_misses, stats.plan_cache.misses,
        "cache-miss events vs plan cache"
    );
    counts
}

/// Drive `n` mixed batches through `cluster`, wait for every ticket,
/// assert bitwise exactness against per-batch oracles, and return the
/// results in submission order. Panics on any drop or hang.
fn drive_and_verify(cluster: &Cluster, n: usize) -> Vec<ClusterResult> {
    let shape_mix: [&[GemmShape]; 3] = [
        &[GemmShape::new(96, 96, 384); 2],
        &[GemmShape::new(48, 64, 96), GemmShape::new(16, 32, 640)],
        &[GemmShape::new(128, 32, 32); 4],
    ];
    let batches: Vec<GemmBatch> = (0..n)
        .map(|i| GemmBatch::random(shape_mix[i % shape_mix.len()], 1.0, 0.5, i as u64))
        .collect();
    let oracles: Vec<_> = batches.iter().map(GemmBatch::reference_result_exact).collect();
    let tickets: Vec<_> =
        batches.into_iter().map(|b| cluster.submit(b).expect("admitted")).collect();
    tickets
        .into_iter()
        .zip(&oracles)
        .map(|(t, oracle)| {
            let out = t.wait_for(HANG_BOUND).expect("zero drops: every ticket resolves");
            assert_bitwise_eq(oracle, &out.results, "chaos result vs exact oracle");
            out
        })
        .collect()
}

#[test]
fn breaker_opens_mid_load_with_zero_drops_and_exact_results() {
    // Device 0 fails every planning attempt at run time (placement-time
    // predictions stay clean, so the placer keeps offering it work until
    // its breaker trips). Every batch must still complete bitwise-exact
    // on the survivor.
    quiet_injected_panics();
    let sick = Arc::new(FaultInjector::new(FaultConfig::new(0xA11CE).plan_fail(1000)));
    let cfg = ClusterConfig {
        breaker: BreakerPolicy { trip_threshold: 3, open_batches: 8 },
        ..ClusterConfig::default()
    };
    let cluster =
        Cluster::with_instrumentation(pool(), cfg, vec![Some(sick), None], Some(Arc::new(Obs::wall())));
    let results = drive_and_verify(&cluster, 24);
    let obs = Arc::clone(cluster.observer().expect("bus installed"));
    let stats = cluster.shutdown();
    audit_and_reconcile(&obs, &stats);

    assert_eq!(stats.completed, 24, "zero drops");
    assert!(stats.breaker_trips >= 1, "constant plan failures must trip the breaker");
    assert_eq!(stats.devices[0].breaker_trips, stats.breaker_trips);
    assert!(stats.reroutes >= 1, "failed batches must move to the survivor");
    assert_eq!(stats.devices[0].completed, 0, "device 0 never completes a batch");
    // Every coordinated completion happened on the healthy device.
    for r in results.iter().filter(|r| !r.degraded) {
        assert_eq!(r.device, 1);
    }
    assert!(stats.plan_failures >= 3, "the trips were caused by observed failures");
}

#[test]
fn exec_panic_storm_on_one_device_is_contained() {
    // Device 0 panics mid-execution 40% of the time. Workers must
    // survive every panic, panicked batches re-route, results stay
    // exact, and the healthy device is never poisoned.
    quiet_injected_panics();
    let flaky = Arc::new(FaultInjector::new(FaultConfig::new(0x5EED).exec_panic(400)));
    let cfg = ClusterConfig {
        breaker: BreakerPolicy { trip_threshold: 6, open_batches: 4 },
        ..ClusterConfig::default()
    };
    let cluster = Cluster::with_instrumentation(
        pool(),
        cfg,
        vec![Some(flaky), None],
        Some(Arc::new(Obs::wall())),
    );
    let results = drive_and_verify(&cluster, 30);
    let obs = Arc::clone(cluster.observer().expect("bus installed"));
    let stats = cluster.shutdown();
    audit_and_reconcile(&obs, &stats);

    assert_eq!(stats.completed, 30, "zero drops under a panic storm");
    assert!(stats.worker_panics >= 1, "the storm must actually fire");
    let rerouted = results.iter().filter(|r| r.reroutes > 0).count();
    assert!(rerouted >= 1, "panicked batches must re-route");
    assert!(
        stats.worker_panics <= stats.reroutes + stats.degraded,
        "every caught panic is either re-routed or degraded"
    );
}

#[test]
fn kill_device_mid_load_reroutes_everything() {
    // Submit a burst, then kill the fastest device while its queue is
    // populated. Queued batches re-route to the survivor, in-flight
    // ones retire normally, and nothing is dropped or inexact.
    quiet_injected_panics();
    let cfg = ClusterConfig {
        steal: StealPolicy { enabled: false, ..StealPolicy::default() },
        ..ClusterConfig::default()
    };
    let cluster = Cluster::with_observer(pool(), cfg, Arc::new(Obs::wall()));
    let shapes = vec![GemmShape::new(96, 96, 256); 3];
    let batches: Vec<GemmBatch> =
        (0..16).map(|seed| GemmBatch::random(&shapes, 1.0, 0.0, seed)).collect();
    let oracles: Vec<_> = batches.iter().map(GemmBatch::reference_result_exact).collect();
    let tickets: Vec<_> =
        batches.into_iter().map(|b| cluster.submit(b).expect("admitted")).collect();

    cluster.kill_device(0);
    assert!(!cluster.is_alive(0));

    let mut on_dead_coordinated = 0;
    for (t, oracle) in tickets.into_iter().zip(&oracles) {
        let out = t.wait_for(HANG_BOUND).expect("zero drops across the kill");
        assert_bitwise_eq(oracle, &out.results, "kill-run result vs exact oracle");
        if !out.degraded && out.device == 0 {
            on_dead_coordinated += 1;
        }
    }
    let obs = Arc::clone(cluster.observer().expect("bus installed"));
    let stats = cluster.shutdown();
    let counts = audit_and_reconcile(&obs, &stats);
    assert_eq!(stats.completed, 16, "every ticket resolved");
    assert_eq!(stats.kills, 1);
    assert_eq!(counts.kills, 1, "the kill is visible in the trace");
    assert_eq!(counts.batch_done, 16, "the trace closes every admitted batch");
    // Batches that were already executing on device 0 may retire there
    // (that is the documented drain semantics); everything queued must
    // have moved. The survivor carries the rest.
    assert!(stats.devices[1].completed >= 1);
    assert!(
        on_dead_coordinated <= 1 + cluster_workers_per_device(),
        "at most the in-flight batches retire on the killed device"
    );
    // Placements after the kill all target the survivor.
    assert!(cluster_is_survivor_only_possible(&stats));
}

fn cluster_workers_per_device() -> usize {
    ClusterConfig::default().workers_per_device
}

fn cluster_is_survivor_only_possible(stats: &ctb_cluster::ClusterStats) -> bool {
    // Sanity on the accounting rather than a timing assertion: work
    // done is conserved (completed = submitted, split across devices +
    // degraded path).
    let device_completions: usize = stats.devices.iter().map(|d| d.completed).sum();
    device_completions + stats.degraded == stats.completed
}

#[test]
fn chaos_on_every_device_still_serves_exactly() {
    // Both devices are unreliable (different seeds, different fault
    // mixes). The pool as a whole must still complete everything
    // bitwise-exact — the degraded baseline is the terminal guarantee.
    quiet_injected_panics();
    let f0 = Arc::new(FaultInjector::new(
        FaultConfig::new(0xD00D).plan_fail(250).exec_panic(150),
    ));
    let f1 = Arc::new(FaultInjector::new(
        FaultConfig::new(0xF00D).exec_panic(250).slow_worker(100, Duration::from_micros(300)),
    ));
    let cfg = ClusterConfig {
        breaker: BreakerPolicy { trip_threshold: 4, open_batches: 4 },
        max_reroutes: 2,
        ..ClusterConfig::default()
    };
    let cluster = Cluster::with_instrumentation(
        pool(),
        cfg,
        vec![Some(f0), Some(f1)],
        Some(Arc::new(Obs::wall())),
    );
    let results = drive_and_verify(&cluster, 32);
    let obs = Arc::clone(cluster.observer().expect("bus installed"));
    let stats = cluster.shutdown();
    audit_and_reconcile(&obs, &stats);
    assert_eq!(stats.completed, 32, "zero drops with every device unreliable");
    assert_eq!(results.len(), 32);
    assert!(
        stats.worker_panics + stats.plan_failures >= 1,
        "the chaos schedules must actually fire"
    );
}

//! Lockstep differential suite: the discrete-event engine must make
//! the *same decisions* as the threaded cluster on the chaos schedules.
//!
//! Methodology: the threaded engine is only deterministic when driven
//! serially (submit → wait per batch keeps every backlog at zero at
//! placement time and makes the per-device fault-injector draw order a
//! pure function of the schedule). The event engine is driven with
//! arrivals spaced far enough apart (1 simulated second) that the
//! system drains between requests — the same closed-loop regime. Both
//! engines then consult identical seams (placer ranking, breaker,
//! per-mille injector) in identical order, so we can compare:
//!
//! - per-request routing outcomes (device, degraded, stolen, reroutes)
//!   element-for-element in submission order,
//! - reconciled [`ClusterStats`] counters with `==` (and the simulated
//!   busy time / makespan, which accumulate the same memoized numbers
//!   in the same per-device order, with exact equality),
//! - the two injectors' [`FaultLog`]s,
//!
//! and separately audit the event engine's trace with the same
//! [`TraceAudit`] + reconciliation the threaded chaos suite uses.

use ctb_cluster::{
    Cluster, ClusterConfig, ClusterStats, EventCluster, EventConfig, ReqOutcome, SimTime,
    StealPolicy, WITNESS_ALPHA, WITNESS_BETA,
};
use ctb_gpu_specs::ArchSpec;
use ctb_matrix::{GemmBatch, GemmShape};
use ctb_obs::TraceAudit;
use ctb_serve::{BreakerPolicy, FaultConfig, FaultInjector};
use std::sync::{Arc, Once};
use std::time::Duration;

/// Inter-arrival gap on the event side: long enough that every request
/// (including its re-route chain) retires before the next arrives.
const GAP_NS: u64 = 1_000_000_000;

fn quiet_injected_panics() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            let msg = payload
                .downcast_ref::<&str>()
                .copied()
                .or_else(|| payload.downcast_ref::<String>().map(String::as_str));
            let injected = msg.is_some_and(|s| s.contains("ctb-serve injected fault"));
            if !injected {
                default(info);
            }
        }));
    });
}

fn pool() -> Vec<ArchSpec> {
    ArchSpec::pool_presets(2)
}

/// The chaos suite's 3-signature batch mix, built with the witness fill
/// constants so both engines execute byte-identical matrices.
fn mix_shapes(i: usize) -> Arc<[GemmShape]> {
    let shape_mix: [&[GemmShape]; 3] = [
        &[GemmShape::new(96, 96, 384); 2],
        &[GemmShape::new(48, 64, 96), GemmShape::new(16, 32, 640)],
        &[GemmShape::new(128, 32, 32); 4],
    ];
    shape_mix[i % shape_mix.len()].into()
}

/// Decision fingerprint of one completed request, extracted from either
/// engine's result vocabulary.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Decision {
    device: usize,
    degraded: bool,
    stolen: bool,
    reroutes: u32,
}

/// Drive the threaded cluster serially (closed loop) over `n` mixed
/// batches and return the per-request decisions in submission order.
fn drive_threaded(cluster: &Cluster, n: usize) -> Vec<Decision> {
    (0..n)
        .map(|i| {
            let b = GemmBatch::random(&mix_shapes(i), WITNESS_ALPHA, WITNESS_BETA, i as u64);
            let out = cluster.call(b).expect("lockstep batch completes");
            Decision {
                device: out.device,
                degraded: out.degraded,
                stolen: out.stolen,
                reroutes: out.reroutes,
            }
        })
        .collect()
}

/// Enqueue the same `n` requests on the event engine, spaced `GAP_NS`
/// apart (closed-loop regime: the pool drains between arrivals).
fn enqueue_event(eng: &mut EventCluster, n: usize) {
    for i in 0..n {
        eng.submit_at(SimTime(1 + i as u64 * GAP_NS), mix_shapes(i), i as u64);
    }
}

fn event_decisions(outcomes: &[ReqOutcome]) -> Vec<Decision> {
    outcomes
        .iter()
        .map(|o| match o {
            ReqOutcome::Done { device, degraded, stolen, reroutes, .. } => Decision {
                device: *device,
                degraded: *degraded,
                stolen: *stolen,
                reroutes: *reroutes,
            },
            other => panic!("lockstep schedules produce only Done outcomes, got {other:?}"),
        })
        .collect()
}

/// Counter-for-counter reconciliation of the two engines' stats. The
/// simulated-time aggregates compare exactly: both engines accumulate
/// the same memoized per-batch numbers in the same per-device order.
fn assert_stats_match(threaded: &ClusterStats, event: &ClusterStats) {
    assert_eq!(threaded.submitted, event.submitted, "submitted");
    assert_eq!(threaded.completed, event.completed, "completed");
    assert_eq!(threaded.degraded, event.degraded, "degraded");
    assert_eq!(threaded.routed, event.routed, "routed");
    assert_eq!(threaded.steals, event.steals, "steals");
    assert_eq!(threaded.reroutes, event.reroutes, "reroutes");
    assert_eq!(threaded.worker_panics, event.worker_panics, "worker_panics");
    assert_eq!(threaded.plan_failures, event.plan_failures, "plan_failures");
    assert_eq!(threaded.breaker_trips, event.breaker_trips, "breaker_trips");
    assert_eq!(threaded.kills, event.kills, "kills");
    assert_eq!(threaded.makespan_sim_us, event.makespan_sim_us, "makespan_sim_us");
    assert_eq!(threaded.total_sim_us, event.total_sim_us, "total_sim_us");
    assert_eq!(threaded.residency_hits, event.residency_hits, "residency_hits");
    assert_eq!(threaded.residency_misses, event.residency_misses, "residency_misses");
    assert_eq!(threaded.remote_operand_bytes, event.remote_operand_bytes, "remote_operand_bytes");
    assert_eq!(
        threaded.mean_abs_placement_err_us, event.mean_abs_placement_err_us,
        "placement error"
    );
    assert_eq!(threaded.devices.len(), event.devices.len());
    for (t, e) in threaded.devices.iter().zip(&event.devices) {
        assert_eq!(t.placements, e.placements, "device {} placements", t.id);
        assert_eq!(t.completed, e.completed, "device {} completed", t.id);
        assert_eq!(t.steals, e.steals, "device {} steals", t.id);
        assert_eq!(t.reroutes_out, e.reroutes_out, "device {} reroutes_out", t.id);
        assert_eq!(t.breaker_trips, e.breaker_trips, "device {} breaker_trips", t.id);
        assert_eq!(t.busy_sim_us, e.busy_sim_us, "device {} busy_sim_us", t.id);
        assert_eq!(t.alive, e.alive, "device {} alive", t.id);
    }
}

/// Audit the event engine's trace exactly like the threaded chaos
/// suite audits its own: structural invariants plus `==`
/// reconciliation against the final stats.
fn audit_event_trace(obs: &ctb_obs::Obs, stats: &ClusterStats) {
    let counts = TraceAudit::new(obs.events()).check().expect("event-trace invariants hold");
    assert_eq!(counts.terminals(), counts.admits, "one terminal per admit");
    assert_eq!(counts.admits - counts.rejects_admitted, stats.submitted, "admits vs submitted");
    assert_eq!(counts.batch_done, stats.completed, "batch-done vs completed");
    assert_eq!(counts.batch_done_degraded, stats.degraded, "degraded events vs degraded");
    assert_eq!(counts.routed, stats.routed, "routed events vs routed");
    assert_eq!(counts.steals, stats.steals, "steal events vs steals");
    assert_eq!(counts.reroutes, stats.reroutes, "reroute events vs reroutes");
    assert_eq!(counts.kills, stats.kills, "kill events vs kills");
    assert_eq!(counts.panics_caught, stats.worker_panics, "panic events vs worker_panics");
    assert_eq!(counts.plan_failures, stats.plan_failures, "plan-failure events");
    assert_eq!(counts.breaker_trips, stats.breaker_trips, "breaker events");
    assert_eq!(counts.plan_cache_hits, stats.plan_cache.hits, "cache-hit events");
    assert_eq!(counts.plan_cache_misses, stats.plan_cache.misses, "cache-miss events");
    assert_eq!(counts.residency_hits, stats.residency_hits, "residency-hit events");
    assert_eq!(counts.residency_misses, stats.residency_misses, "residency-miss events");
}

/// Run one schedule on both engines (over `pool_fn`'s device pool) and
/// compare everything comparable. Returns the reconciled stats for
/// schedule-specific activity assertions.
fn lockstep_on(
    pool_fn: fn() -> Vec<ArchSpec>,
    cfg: ClusterConfig,
    n: usize,
    threaded_faults: Vec<Option<Arc<FaultInjector>>>,
    event_faults: Vec<Option<Arc<FaultInjector>>>,
    kill_first: Option<usize>,
) -> ClusterStats {
    quiet_injected_panics();

    // Threaded side, serial closed loop.
    let cluster = Cluster::with_faults(pool_fn(), cfg.clone(), threaded_faults.clone());
    if let Some(dev) = kill_first {
        cluster.kill_device(dev);
    }
    let threaded_decisions = drive_threaded(&cluster, n);
    let threaded_stats = cluster.shutdown();

    // Event side, same schedule, instrumented (the audit rides along).
    let ev_cfg = EventConfig::from(&cfg);
    let (mut eng, obs) =
        EventCluster::with_instrumentation(pool_fn(), ev_cfg, event_faults.clone());
    if let Some(dev) = kill_first {
        eng.kill_at(SimTime::ZERO, dev);
    }
    enqueue_event(&mut eng, n);
    let report = eng.run();

    assert_eq!(report.requests, n);
    assert_eq!(report.witnesses, n, "lockstep runs witness every request");
    assert_eq!(report.witness_mismatches, 0, "every witness is bitwise-exact");

    let got = event_decisions(&report.outcomes);
    assert_eq!(threaded_decisions, got, "per-request decisions diverged");
    assert_stats_match(&threaded_stats, &report.stats);
    audit_event_trace(&obs, &report.stats);

    // The injectors drew identical decision sequences.
    for (t, e) in threaded_faults.iter().zip(&event_faults) {
        match (t, e) {
            (Some(t), Some(e)) => assert_eq!(t.log(), e.log(), "fault logs diverged"),
            (None, None) => {}
            _ => panic!("schedule shape mismatch"),
        }
    }
    report.stats
}

/// [`lockstep_on`] over the default Table 1 pair.
fn lockstep(
    cfg: ClusterConfig,
    n: usize,
    threaded_faults: Vec<Option<Arc<FaultInjector>>>,
    event_faults: Vec<Option<Arc<FaultInjector>>>,
    kill_first: Option<usize>,
) {
    lockstep_on(pool, cfg, n, threaded_faults, event_faults, kill_first);
}

fn injector(cfg: FaultConfig) -> Arc<FaultInjector> {
    Arc::new(FaultInjector::new(cfg))
}

// -- the four chaos schedules, lockstepped ----------------------------------

#[test]
fn lockstep_breaker_opens_mid_load() {
    let cfg = ClusterConfig {
        breaker: BreakerPolicy { trip_threshold: 3, open_batches: 8 },
        ..ClusterConfig::default()
    };
    let schedule = || vec![Some(injector(FaultConfig::new(0xA11CE).plan_fail(1000))), None];
    lockstep(cfg, 24, schedule(), schedule(), None);
}

#[test]
fn lockstep_exec_panic_storm() {
    let cfg = ClusterConfig {
        breaker: BreakerPolicy { trip_threshold: 6, open_batches: 4 },
        ..ClusterConfig::default()
    };
    let schedule = || vec![Some(injector(FaultConfig::new(0x5EED).exec_panic(400))), None];
    lockstep(cfg, 30, schedule(), schedule(), None);
}

#[test]
fn lockstep_kill_device_routes_to_survivor() {
    // The threaded mid-load kill is inherently racy (whatever is
    // in-flight when the kill lands may retire on the corpse), so the
    // deterministic lockstep variant kills device 0 *before* the load:
    // both engines must route every batch to the survivor. The event
    // engine's mid-load drain semantics are covered deterministically
    // by its own unit suite (`kill_reroutes_queued_work_to_survivors`).
    let cfg = ClusterConfig {
        steal: StealPolicy { enabled: false, ..StealPolicy::default() },
        ..ClusterConfig::default()
    };
    lockstep(cfg, 16, vec![None, None], vec![None, None], Some(0));
}

#[test]
fn lockstep_chaos_on_every_device() {
    let cfg = ClusterConfig {
        breaker: BreakerPolicy { trip_threshold: 4, open_batches: 4 },
        max_reroutes: 2,
        ..ClusterConfig::default()
    };
    let schedule = || {
        vec![
            Some(injector(FaultConfig::new(0xD00D).plan_fail(250).exec_panic(150))),
            Some(injector(
                FaultConfig::new(0xF00D).exec_panic(250).slow_worker(100, Duration::from_micros(300)),
            )),
        ]
    };
    lockstep(cfg, 32, schedule(), schedule(), None);
}

// -- decision-parity spot checks beyond the chaos schedules -----------------

#[test]
fn lockstep_fault_free_routing_and_makespan() {
    // No faults at all: the purest placement-parity check, with the
    // simulated busy time reconciling exactly.
    lockstep(ClusterConfig::default(), 18, vec![None, None], vec![None, None], None);
}

#[test]
fn lockstep_multi_chiplet_chaos_with_locality() {
    // The locality-era chaos schedule: a B200 / H100 / MCM-GPU pool
    // (two of the three devices multi-chiplet) with locality-aware
    // ranking on (the default) and injected panics + plan failures
    // forcing re-routes across the interposer boundary. Both engines
    // must agree on every placement, every steal, and every residency
    // hit/miss — the penalty is computed from the same residency
    // snapshot on both sides.
    let cfg = ClusterConfig {
        breaker: BreakerPolicy { trip_threshold: 4, open_batches: 4 },
        max_reroutes: 2,
        ..ClusterConfig::default()
    };
    assert!(cfg.locality.enabled, "locality ranking defaults on");
    let schedule = || {
        vec![
            None,
            Some(injector(FaultConfig::new(0xC419).exec_panic(250))),
            Some(injector(FaultConfig::new(0x1E7).plan_fail(150).exec_panic(100))),
        ]
    };
    let stats = lockstep_on(
        || ArchSpec::chiplet_pool_presets(3),
        cfg,
        30,
        schedule(),
        schedule(),
        None,
    );
    // The schedule must actually exercise the locality machinery.
    assert!(stats.residency_misses > 0, "no operands were ever staged");
    assert!(stats.residency_hits > 0, "no placement ever re-used a resident device");
    assert!(stats.remote_operand_bytes > 0, "chiplet pool never charged remote traffic");
}

//! Crash-point differential suite: `checkpoint` at swept event offsets
//! and `restore` into a fresh engine must change *nothing* observable
//! about the rest of the run.
//!
//! Methodology: every chaos schedule the lockstep suite runs (plus the
//! fault-free baseline) is executed twice per crash point —
//!
//! 1. uninterrupted, recording the full fingerprint: per-request
//!    outcomes, the final [`ClusterStats`] (`==`, including the exact
//!    `f64` busy/makespan aggregates), the per-device [`FaultLog`]s,
//!    the rendered obs trace bytes and the flight-recorder dumps;
//! 2. interrupted: run `offset` events, `checkpoint()`, drop the
//!    engine, `restore()` the blob into a brand-new engine (fresh
//!    sessions, fresh injectors, fresh obs) and run the remainder.
//!
//! The resumed fingerprint must equal the uninterrupted one field for
//! field and byte for byte — and the blob itself must survive
//! save → load → save byte-identically at every crash point.
//!
//! The suite also pins the golden on-disk fixture
//! (`tests/fixtures/savestate_v3.bin`) for format-version discipline —
//! since v2 the embedded `PlanShare` image carries the shard layout,
//! the optional capacity bound and the Bloom admission gate, and one
//! crash-swept schedule runs with a `SeenTwice` gate over a bounded
//! sharded cache so the gate's tag slots and the shard maps round-trip
//! under fire; since v3 the blob additionally carries each device's
//! chiplet topology, the locality-ranking flag, the operand-residency
//! map and the residency counters, and one crash-swept schedule runs
//! locality-aware placement over a multi-chiplet pool so all of it
//! replays under fire. The suite further exercises queue migration
//! between two engine instances (`halt_and_export` → `import_jobs`,
//! zero drops) and round-trips randomized mid-run states under
//! proptest.

use ctb_cluster::{ClusterConfig, EventCluster, EventConfig, ReqOutcome, SimTime, StealPolicy};
use ctb_core::{AdmissionPolicy, PlanShareConfig};
use ctb_gpu_specs::ArchSpec;
use ctb_matrix::GemmShape;
use ctb_obs::Obs;
use ctb_savestate::{SavestateError, FORMAT_VERSION, MAGIC};
use ctb_serve::{BreakerPolicy, FaultConfig, FaultInjector, FaultLog};
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

/// Closed-loop inter-arrival gap (matches the lockstep suite).
const GAP_NS: u64 = 1_000_000_000;

fn pool() -> Vec<ArchSpec> {
    ArchSpec::pool_presets(2)
}

/// The chaos suite's 3-signature batch mix.
fn mix_shapes(i: usize) -> Arc<[GemmShape]> {
    let shape_mix: [&[GemmShape]; 3] = [
        &[GemmShape::new(96, 96, 384); 2],
        &[GemmShape::new(48, 64, 96), GemmShape::new(16, 32, 640)],
        &[GemmShape::new(128, 32, 32); 4],
    ];
    shape_mix[i % shape_mix.len()].into()
}

fn injector(cfg: FaultConfig) -> Option<Arc<FaultInjector>> {
    Some(Arc::new(FaultInjector::new(cfg)))
}

/// One reproducible scenario: an event-engine config, a fault schedule
/// and a request count, mirroring the lockstep chaos schedules.
struct Schedule {
    cfg: ClusterConfig,
    n: usize,
    faults: fn() -> Vec<Option<Arc<FaultInjector>>>,
    kill_first: Option<usize>,
    /// Plan-cache shard/capacity/admission layout (default = 16 shards,
    /// unbounded, admit-all — the pre-v2 behaviour).
    share: PlanShareConfig,
    /// Device pool the schedule runs (and restores) over; the default
    /// Table 1 pair for most schedules, a multi-chiplet pool for the
    /// v3 locality coverage.
    pool: fn() -> Vec<ArchSpec>,
}

fn breaker_opens_mid_load() -> Schedule {
    Schedule {
        cfg: ClusterConfig {
            breaker: BreakerPolicy { trip_threshold: 3, open_batches: 8 },
            ..ClusterConfig::default()
        },
        n: 24,
        faults: || vec![injector(FaultConfig::new(0xA11CE).plan_fail(1000)), None],
        kill_first: None,
        share: PlanShareConfig::default(),
        pool,
    }
}

fn exec_panic_storm() -> Schedule {
    Schedule {
        cfg: ClusterConfig {
            breaker: BreakerPolicy { trip_threshold: 6, open_batches: 4 },
            ..ClusterConfig::default()
        },
        n: 30,
        faults: || vec![injector(FaultConfig::new(0x5EED).exec_panic(400)), None],
        kill_first: None,
        share: PlanShareConfig::default(),
        pool,
    }
}

fn kill_device_routes_to_survivor() -> Schedule {
    Schedule {
        cfg: ClusterConfig {
            steal: StealPolicy { enabled: false, ..StealPolicy::default() },
            ..ClusterConfig::default()
        },
        n: 16,
        faults: || vec![None, None],
        kill_first: Some(0),
        share: PlanShareConfig::default(),
        pool,
    }
}

fn chaos_on_every_device() -> Schedule {
    Schedule {
        cfg: ClusterConfig {
            breaker: BreakerPolicy { trip_threshold: 4, open_batches: 4 },
            max_reroutes: 2,
            ..ClusterConfig::default()
        },
        n: 32,
        faults: || {
            vec![
                injector(FaultConfig::new(0xD00D).plan_fail(250).exec_panic(150)),
                injector(
                    FaultConfig::new(0xF00D)
                        .exec_panic(250)
                        .slow_worker(100, Duration::from_micros(300)),
                ),
            ]
        },
        kill_first: None,
        share: PlanShareConfig::default(),
        pool,
    }
}

fn fault_free() -> Schedule {
    Schedule {
        cfg: ClusterConfig::default(),
        n: 18,
        faults: || vec![None, None],
        kill_first: None,
        share: PlanShareConfig::default(),
        pool,
    }
}

/// The v2 coverage schedule: a `SeenTwice` Bloom gate over a bounded
/// 4-shard cache, under an exec-panic storm. First sightings of each
/// signature are denied caching, second sightings admit — so the
/// checkpoint taken mid-run embeds a live gate (occupied tag slots,
/// possibly evictions) and partially filled shards, and the crash sweep
/// proves all of it replays exactly.
fn bloom_gated_bounded_cache() -> Schedule {
    Schedule {
        cfg: ClusterConfig::default(),
        n: 24,
        faults: || vec![injector(FaultConfig::new(0xB100).exec_panic(300)), None],
        kill_first: None,
        share: PlanShareConfig {
            shards: 4,
            capacity_per_shard: Some(8),
            admission: AdmissionPolicy::SeenTwice { seed: 0xCAFE, slots_log2: 6 },
        },
        pool,
    }
}

/// The v3 coverage schedule: locality-aware placement over a
/// multi-chiplet pool (B200 2-die, H100, MCM-GPU 4-die) with stealing
/// under a light panic storm. Mid-run checkpoints embed a populated
/// operand-residency map, non-zero residency counters and per-device
/// chiplet topologies, and the crash sweep proves the resumed engine
/// re-ranks with the identical locality penalties.
fn locality_on_chiplet_pool() -> Schedule {
    Schedule {
        cfg: ClusterConfig::default(),
        n: 24,
        faults: || vec![None, injector(FaultConfig::new(0x10CA1).exec_panic(200)), None],
        kill_first: None,
        share: PlanShareConfig::default(),
        pool: || ArchSpec::chiplet_pool_presets(3),
    }
}

/// Build the schedule's instrumented engine with every request already
/// on the timeline.
fn build(s: &Schedule) -> (EventCluster, Arc<Obs>) {
    let mut ev_cfg = EventConfig::from(&s.cfg);
    ev_cfg.share = s.share;
    let (mut eng, obs) = EventCluster::with_instrumentation((s.pool)(), ev_cfg, (s.faults)());
    if let Some(dev) = s.kill_first {
        eng.kill_at(SimTime::ZERO, dev);
    }
    for i in 0..s.n {
        eng.submit_at(SimTime(1 + i as u64 * GAP_NS), mix_shapes(i), i as u64);
    }
    (eng, obs)
}

/// Everything observable about a finished run.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    outcomes: Vec<ReqOutcome>,
    stats: ctb_cluster::ClusterStats,
    fault_logs: Vec<Option<FaultLog>>,
    events_processed: u64,
    trace: String,
    dumps: Vec<String>,
}

fn finish(mut eng: EventCluster, obs: &Obs) -> Fingerprint {
    let report = eng.run();
    assert_eq!(report.witness_mismatches, 0, "every witness stays bitwise-exact");
    Fingerprint {
        outcomes: report.outcomes,
        stats: report.stats,
        fault_logs: eng.fault_logs(),
        events_processed: report.events_processed,
        trace: obs.render(),
        dumps: obs.flight_dumps().iter().map(ctb_obs::FlightDump::render).collect(),
    }
}

/// Checkpoint after `offset` events, restore into a fresh engine, run
/// the remainder, and return the resumed fingerprint (asserting
/// save → load → save byte-identity on the way).
fn resume_from(s: &Schedule, offset: u64) -> Fingerprint {
    let (mut eng, _obs) = build(s);
    assert_eq!(eng.run_steps(offset), offset, "offset beyond schedule length");
    let blob = eng.checkpoint();
    drop(eng); // the "crash"
    let (restored, obs) = EventCluster::restore((s.pool)(), &blob).expect("checkpoint restores");
    let obs = obs.expect("instrumented checkpoint hands back its obs");
    assert_eq!(blob, restored.checkpoint(), "save -> load -> save must be byte-identical");
    finish(restored, &obs)
}

/// The crash points swept per schedule: early, quarter, half,
/// three-quarter marks of the uninterrupted event count.
fn crash_points(total_events: u64) -> Vec<u64> {
    let mut points = vec![1, total_events / 4, total_events / 2, 3 * total_events / 4];
    points.retain(|&p| p > 0 && p < total_events);
    points.dedup();
    assert!(points.len() >= 3, "schedule too short to sweep ({total_events} events)");
    points
}

fn differential(s: Schedule) {
    let (eng, obs) = build(&s);
    let baseline = finish(eng, &obs);
    assert_eq!(baseline.stats.completed + count_failed(&baseline.outcomes), s.n);
    for offset in crash_points(baseline.events_processed) {
        let resumed = resume_from(&s, offset);
        assert_eq!(resumed.outcomes, baseline.outcomes, "decisions diverged at offset {offset}");
        assert_eq!(resumed.stats, baseline.stats, "stats diverged at offset {offset}");
        assert_eq!(resumed.fault_logs, baseline.fault_logs, "fault logs diverged at {offset}");
        assert_eq!(resumed.events_processed, baseline.events_processed);
        assert_eq!(resumed.trace, baseline.trace, "trace bytes diverged at offset {offset}");
        assert_eq!(resumed.dumps, baseline.dumps, "flight dumps diverged at offset {offset}");
    }
}

fn count_failed(outcomes: &[ReqOutcome]) -> usize {
    outcomes
        .iter()
        .filter(|o| matches!(o, ReqOutcome::Failed { .. } | ReqOutcome::PlanRejected { .. }))
        .count()
}

// -- the chaos schedules, crash-swept ---------------------------------------

#[test]
fn crash_restore_breaker_opens_mid_load() {
    differential(breaker_opens_mid_load());
}

#[test]
fn crash_restore_exec_panic_storm() {
    differential(exec_panic_storm());
}

#[test]
fn crash_restore_kill_device_routes_to_survivor() {
    differential(kill_device_routes_to_survivor());
}

#[test]
fn crash_restore_chaos_on_every_device() {
    differential(chaos_on_every_device());
}

#[test]
fn crash_restore_fault_free() {
    differential(fault_free());
}

/// Chiplet topology + residency under fire: every crash point must
/// round-trip the residency map, its counters and the per-device
/// topologies byte-identically, and the resumed run's locality-aware
/// placements must match the uninterrupted run's exactly.
#[test]
fn crash_restore_locality_on_chiplet_pool() {
    let s = locality_on_chiplet_pool();
    // The schedule must actually hit and miss residency, or the sweep
    // proves nothing about the v3 payload.
    let (eng, obs) = build(&s);
    let baseline = finish(eng, &obs);
    assert!(baseline.stats.residency_misses > 0, "schedule never staged operands");
    assert!(baseline.stats.residency_hits > 0, "schedule never re-used a resident device");
    assert!(baseline.stats.remote_operand_bytes > 0, "chiplet pool never charged remote bytes");
    differential(s);
}

/// Bloom gate + bounded shards under fire: every crash point must
/// round-trip the gate's tag slots, the admission counters and the
/// partially filled shard maps byte-identically, and the resumed run's
/// admission decisions must match the uninterrupted run's exactly.
#[test]
fn crash_restore_bloom_gated_bounded_cache() {
    let s = bloom_gated_bounded_cache();
    // The gate must actually deny and admit during this schedule, or
    // the sweep proves nothing about it.
    let (eng, obs) = build(&s);
    let share = Arc::clone(eng.share());
    let baseline = finish(eng, &obs);
    let adm = share.admission_stats();
    assert!(adm.denied > 0, "schedule never exercised a first-sighting denial");
    assert!(adm.admitted > 0, "schedule never admitted a second sighting");
    drop(baseline);
    differential(s);
}

// -- typed rejection of worlds that do not match ----------------------------

#[test]
fn restore_rejects_wrong_pool_with_typed_mismatch() {
    let (mut eng, _obs) = build(&fault_free());
    eng.run_steps(5);
    let blob = eng.checkpoint();
    // Wrong device count.
    let Err(err) = EventCluster::restore(ArchSpec::pool_presets(3), &blob) else {
        panic!("3-device pool restored a 2-device checkpoint");
    };
    assert!(matches!(err, SavestateError::Mismatch(_)), "got {err:?}");
    // Right count, wrong arch order.
    let mut swapped = pool();
    swapped.reverse();
    let Err(err) = EventCluster::restore(swapped, &blob) else {
        panic!("swapped pool restored a mismatched checkpoint");
    };
    assert!(matches!(err, SavestateError::Mismatch(_)), "got {err:?}");
}

// -- queue migration --------------------------------------------------------

/// A killed device's queue drains into a *different engine instance*
/// through the savestate wire format with zero drops: every job either
/// completes on the source's survivors or on the target pool.
#[test]
fn halted_device_queue_migrates_to_peer_engine_with_zero_drops() {
    let mut cfg = EventConfig::from(&ClusterConfig::default());
    cfg.steal.enabled = false; // keep jobs parked where they were placed
    cfg.witness_every = 3;
    let n = 12;

    let mut source = EventCluster::new(pool(), cfg.clone());
    let shapes: Arc<[GemmShape]> = [GemmShape::new(64, 64, 320); 2].into();
    for i in 0..n {
        source.submit_at(SimTime::ZERO, shapes.clone(), i as u64);
    }
    // Process all arrivals + placements so queues are populated, then
    // pull device 0 out of service and export its queue.
    source.run_steps(2 * n as u64);
    let blob = source.halt_and_export(0);

    let mut target = EventCluster::new(pool(), cfg);
    let migrated = target.import_jobs(&blob).expect("exported jobs import cleanly");
    assert!(migrated > 0, "device 0 should have had queued work to migrate");

    let source_report = source.run();
    let target_report = target.run();
    assert_eq!(source_report.witness_mismatches + target_report.witness_mismatches, 0);
    assert_eq!(
        source_report.stats.completed + target_report.stats.completed,
        n,
        "migration dropped work (source {} + target {} != {n})",
        source_report.stats.completed,
        target_report.stats.completed,
    );
    assert_eq!(target_report.requests, migrated);
    assert_eq!(source_report.stats.kills, 1, "halt counts as removing the device");
    // Truncated migration blobs fail typed, not by panic.
    assert!(matches!(
        EventCluster::new(pool(), EventConfig::from(&ClusterConfig::default()))
            .import_jobs(&blob[..blob.len().saturating_sub(3)]),
        Err(SavestateError::Corrupt(_))
    ));
}

// -- golden fixture + format-version discipline -----------------------------

fn fixture_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/savestate_v3.bin")
}

/// The fixture's construction: the exec-panic storm checkpointed 40
/// events in. Fully deterministic, so regeneration is byte-stable.
fn fixture_bytes() -> Vec<u8> {
    let (mut eng, _obs) = build(&exec_panic_storm());
    assert_eq!(eng.run_steps(40), 40);
    eng.checkpoint()
}

/// The committed fixture must match what the current build serializes.
/// If a codec change broke this on purpose, bump [`FORMAT_VERSION`] and
/// regenerate:
/// `CTB_WRITE_FIXTURE=1 cargo test -p ctb-cluster --test savestate golden`.
#[test]
fn golden_fixture_matches_current_format_and_resumes() {
    let bytes = fixture_bytes();
    let path = fixture_path();
    if std::env::var("CTB_WRITE_FIXTURE").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &bytes).unwrap();
    }
    let on_disk = std::fs::read(&path).expect(
        "golden fixture missing — regenerate with \
         CTB_WRITE_FIXTURE=1 cargo test -p ctb-cluster --test savestate golden",
    );
    assert_eq!(
        on_disk, bytes,
        "savestate layout changed without a FORMAT_VERSION bump + fixture regeneration"
    );
    // And the fixture actually resumes: the rest of the storm completes
    // with bitwise-exact witnesses, identical to the uninterrupted run.
    let (restored, obs) = EventCluster::restore(pool(), &on_disk).expect("fixture restores");
    let resumed = finish(restored, &obs.expect("fixture is instrumented"));
    let (eng, obs) = build(&exec_panic_storm());
    let baseline = finish(eng, &obs);
    assert_eq!(resumed, baseline, "fixture-resumed run diverged from the uninterrupted run");
}

/// Version skew: a blob stamped with a *newer* format version loads as
/// a typed [`SavestateError::UnsupportedVersion`] — never a panic, and
/// never a silent misparse.
#[test]
fn newer_format_version_fails_typed_not_panicking() {
    let mut bytes = fixture_bytes();
    let bumped = FORMAT_VERSION + 1;
    bytes[MAGIC.len()..MAGIC.len() + 4].copy_from_slice(&bumped.to_le_bytes());
    let Err(err) = EventCluster::restore(pool(), &bytes) else {
        panic!("version-bumped blob restored successfully");
    };
    assert_eq!(
        err,
        SavestateError::UnsupportedVersion { found: bumped, supported: FORMAT_VERSION }
    );
}

/// Version skew the other way: a v1 checkpoint predates the sharded
/// plan-cache image, so the cluster restore rejects it with a typed
/// [`SavestateError::Mismatch`] instead of misparsing the payload.
/// (`import_jobs` still accepts v1 exports — the job layout has not
/// changed since.)
#[test]
fn v1_checkpoint_is_rejected_with_typed_mismatch() {
    let mut bytes = fixture_bytes();
    bytes[MAGIC.len()..MAGIC.len() + 4].copy_from_slice(&1u32.to_le_bytes());
    let Err(err) = EventCluster::restore(pool(), &bytes) else {
        panic!("v1-stamped checkpoint restored successfully");
    };
    assert!(matches!(err, SavestateError::Mismatch(_)), "got {err:?}");
}

/// A v2 checkpoint predates the chiplet-topology / locality / residency
/// layout, so the cluster restore rejects it the same typed way rather
/// than misparsing the device records.
#[test]
fn v2_checkpoint_is_rejected_with_typed_mismatch() {
    let mut bytes = fixture_bytes();
    bytes[MAGIC.len()..MAGIC.len() + 4].copy_from_slice(&2u32.to_le_bytes());
    let Err(err) = EventCluster::restore(pool(), &bytes) else {
        panic!("v2-stamped checkpoint restored successfully");
    };
    assert!(matches!(err, SavestateError::Mismatch(_)), "got {err:?}");
    if let Err(SavestateError::Mismatch(msg)) = EventCluster::restore(pool(), &bytes) {
        assert!(msg.contains("v2"), "message should name the stale version: {msg}");
    }
}

/// Truncation anywhere in the blob is a typed `Corrupt`, not a panic.
#[test]
fn truncated_fixture_fails_typed_not_panicking() {
    let bytes = fixture_bytes();
    for cut in [9, bytes.len() / 3, bytes.len() / 2, bytes.len() - 1] {
        match EventCluster::restore(pool(), &bytes[..cut]) {
            Err(SavestateError::Corrupt(_)) => {}
            Err(e) => panic!("truncation at {cut} gave the wrong error kind: {e:?}"),
            Ok(_) => panic!("truncation at {cut} restored successfully"),
        }
    }
}

// -- recorded regression corpus ---------------------------------------------

/// Replays the boundary cases recorded in
/// `tests/savestate.proptest-regressions`. The vendored proptest shim
/// does not persist or replay regression files itself, so the corpus
/// is pinned here by hand (see `scripts/check.sh`, which runs this
/// test by name as the regression gate).
#[test]
fn regression_corpus_replays_recorded_boundary_cases() {
    let s = chaos_on_every_device();
    let (eng, obs) = build(&s);
    let baseline = finish(eng, &obs);
    let cases: [(&str, u64); 3] = [
        // Checkpoint before the first event: restore must replay the
        // whole schedule, untouched timeline included.
        ("checkpoint-before-first-event", 0),
        // Checkpoint at drain: nothing left to run, yet outcomes,
        // stats and the trace must all survive the round trip.
        ("checkpoint-at-drain", baseline.events_processed),
        // Checkpoint inside a breaker open window, mid fault storm.
        ("checkpoint-mid-breaker-window", baseline.events_processed / 3),
    ];
    for (name, offset) in cases {
        let resumed = resume_from(&s, offset);
        assert_eq!(resumed, baseline, "regression case {name:?} (offset {offset}) diverged");
    }
}

// -- randomized round-trips -------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any reachable mid-run engine state survives
    /// checkpoint → restore → checkpoint byte-identically, and the
    /// resumed run finishes the schedule with bitwise-exact witnesses.
    #[test]
    fn random_states_round_trip_byte_identically(
        seed in 0u64..2_000,
        n in 4usize..24,
        steps in 0u64..120,
        plan_fail in 0u32..400,
        exec_panic in 0u32..400,
        instrumented in 0u32..2,
    ) {
        let mut cfg = EventConfig::from(&ClusterConfig::default());
        cfg.witness_every = 5;
        let faults = vec![
            injector(FaultConfig::new(seed).plan_fail(plan_fail).exec_panic(exec_panic)),
            None,
        ];
        let mut eng = if instrumented == 1 {
            EventCluster::with_instrumentation(pool(), cfg, faults).0
        } else {
            EventCluster::with_faults(pool(), cfg, faults)
        };
        for i in 0..n {
            // Tight spacing so queues, re-routes and breaker windows
            // all appear among the sampled states.
            eng.submit_at(SimTime(1 + i as u64 * 50_000), mix_shapes(i), seed ^ i as u64);
        }
        eng.run_steps(steps);
        let blob = eng.checkpoint();
        let (restored, _obs) = EventCluster::restore(pool(), &blob).expect("restore");
        prop_assert_eq!(&blob, &restored.checkpoint());
        let report = {
            let mut restored = restored;
            restored.run()
        };
        prop_assert_eq!(report.witness_mismatches, 0);
        prop_assert_eq!(report.requests, n);
    }
}

//! The paper's **batching engine** (§5) and batching-scheme data
//! structures (§6).
//!
//! After the tiling engine has turned the batch of GEMMs into a batch of
//! tiles, the batching engine assigns tiles to thread blocks. A block
//! may execute several tiles one after the other (persistent-threads
//! style) to improve instruction-level parallelism when K is small. Two
//! heuristics are provided — *threshold batching* (TLP priority) and
//! *binary batching* (ILP priority) — plus the trivial one-tile-per-block
//! assignment used when only the tiling engine is evaluated (Fig 8).
//!
//! The result is a [`BatchPlan`]: the five auxiliary arrays of Fig 6
//! (`Tile`, `GEMM`, `Tiling strategy`, `Y_Coordinate`, `X_Coordinate`)
//! that can describe *any* batching scheme.

pub mod heuristics;
pub mod order;
pub mod plan;
pub mod tile;

pub use heuristics::{assign_blocks, BatchingHeuristic};
pub use order::{order_tiles, TileOrder};
pub use plan::BatchPlan;
pub use tile::{tiles_for, TileTask};

//! The batching heuristics of §5: threshold batching (TLP priority) and
//! binary batching (ILP priority).

use crate::tile::TileTask;
use ctb_gpu_specs::Thresholds;
use serde::{Deserialize, Serialize};

/// Which batching policy assigns tiles to thread blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BatchingHeuristic {
    /// One tile per block — the classic design; used to evaluate the
    /// tiling engine alone (Fig 8) and as MAGMA's implicit policy.
    OneTilePerBlock,
    /// §5 "Threshold Batching": guarantee TLP first, then deepen blocks
    /// along K up to θ while TLP headroom remains.
    Threshold,
    /// §5 "Binary Batching": pair at most two tiles per block,
    /// min-K with max-K, minimising `|K_i + K_j − θ|` (Eq 5).
    Binary,
}

impl std::fmt::Display for BatchingHeuristic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BatchingHeuristic::OneTilePerBlock => write!(f, "one-tile-per-block"),
            BatchingHeuristic::Threshold => write!(f, "threshold"),
            BatchingHeuristic::Binary => write!(f, "binary"),
        }
    }
}

/// Assign tiles to thread blocks under the chosen heuristic.
///
/// `threads` is the unified block size from the tiling solution; it
/// enters the TLP computation of threshold batching.
pub fn assign_blocks(
    tiles: &[TileTask],
    heuristic: BatchingHeuristic,
    thresholds: &Thresholds,
    threads: u32,
) -> Vec<Vec<TileTask>> {
    match heuristic {
        BatchingHeuristic::OneTilePerBlock => tiles.iter().map(|t| vec![*t]).collect(),
        BatchingHeuristic::Threshold => threshold_batching(tiles, thresholds, threads),
        BatchingHeuristic::Binary => binary_batching(tiles, thresholds),
    }
}

/// Threshold batching (§5): guarantee TLP first, then deepen blocks.
///
/// The paper re-checks the prospective TLP, i.e. (remaining unassigned
/// tiles plus blocks already formed) × T, against *half* the tiling
/// engine's TLP threshold before each new block, and with headroom fills
/// the block until its accumulated K exceeds θ. A literal greedy reading
/// front-loads depth into a few straggler blocks; we keep the same two
/// constraints (final TLP stays at or above half the threshold, per-block
/// K depth bounded by θ) but bound every block's tile count by the
/// even-distribution cap, so the depth the TLP budget allows is spread
/// uniformly (see DESIGN.md §6).
fn threshold_batching(
    tiles: &[TileTask],
    thresholds: &Thresholds,
    threads: u32,
) -> Vec<Vec<TileTask>> {
    if tiles.is_empty() {
        return Vec::new();
    }
    let half = thresholds.tlp_threshold / 2;
    let total_tlp = tiles.len() as u64 * threads as u64;
    if total_tlp <= half {
        // No TLP headroom: one tile per block maximises parallelism.
        return tiles.iter().map(|t| vec![*t]).collect();
    }
    // Fewest blocks that keep TLP at or above half the threshold, and
    // the per-block tile cap that spreads the depth evenly.
    let blocks_floor = (half / threads as u64).max(1) as usize;
    let depth_cap = tiles.len().div_ceil(blocks_floor).max(1);

    let mut blocks: Vec<Vec<TileTask>> = Vec::new();
    let mut block: Vec<TileTask> = Vec::new();
    let mut depth = 0usize;
    for &t in tiles {
        if !block.is_empty() && (depth > thresholds.theta as usize || block.len() >= depth_cap) {
            blocks.push(std::mem::take(&mut block));
            depth = 0;
        }
        depth += t.k;
        block.push(t);
    }
    if !block.is_empty() {
        blocks.push(block);
    }
    blocks
}

/// Binary batching (§5): sort tiles by ascending K and pair the smallest
/// with the largest (two pointers). At most two tiles per block; an odd
/// tile stays alone. This greedily minimises `Σ |K_i + K_j − θ|` for the
/// paper's Eq 5 under the pair-the-extremes policy the paper states.
fn binary_batching(tiles: &[TileTask], _thresholds: &Thresholds) -> Vec<Vec<TileTask>> {
    let mut sorted: Vec<TileTask> = tiles.to_vec();
    sorted.sort_by_key(|t| t.k);
    let mut blocks = Vec::with_capacity(sorted.len().div_ceil(2));
    let (mut lo, mut hi) = (0usize, sorted.len());
    while lo + 1 < hi {
        blocks.push(vec![sorted[lo], sorted[hi - 1]]);
        lo += 1;
        hi -= 1;
    }
    if lo + 1 == hi {
        blocks.push(vec![sorted[lo]]);
    }
    blocks
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctb_tiling::strategy::{batched, StrategyKind, ThreadCount};

    fn tile(gemm: usize, idx: usize, k: usize) -> TileTask {
        TileTask {
            gemm,
            y: idx,
            x: 0,
            k,
            strategy: batched(StrategyKind::Small, ThreadCount::T256),
        }
    }

    fn tiles_with_k(count: usize, k: usize) -> Vec<TileTask> {
        (0..count).map(|i| tile(0, i, k)).collect()
    }

    fn v100() -> Thresholds {
        Thresholds::paper_v100()
    }

    fn flatten(blocks: &[Vec<TileTask>]) -> Vec<TileTask> {
        let mut all: Vec<TileTask> = blocks.iter().flatten().copied().collect();
        all.sort_by_key(|t| (t.gemm, t.y, t.x));
        all
    }

    #[test]
    fn one_tile_per_block_is_identity() {
        let tiles = tiles_with_k(10, 64);
        let blocks = assign_blocks(&tiles, BatchingHeuristic::OneTilePerBlock, &v100(), 256);
        assert_eq!(blocks.len(), 10);
        assert!(blocks.iter().all(|b| b.len() == 1));
    }

    #[test]
    fn threshold_batches_deeply_when_tlp_is_plentiful() {
        // 512 tiles x 256 threads = 131072 TLP >> 32768: blocks are
        // filled until K depth exceeds theta = 256.
        let tiles = tiles_with_k(512, 64);
        let blocks = assign_blocks(&tiles, BatchingHeuristic::Threshold, &v100(), 256);
        assert_eq!(flatten(&blocks).len(), 512, "every tile assigned once");
        // The even-distribution cap spreads depth uniformly: 128 blocks
        // of 4 tiles, keeping TLP exactly at half the threshold.
        assert_eq!(blocks.len(), 128);
        assert!(blocks.iter().all(|b| b.len() == 4));
        // θ would have allowed 5 tiles (64*5 = 320 > 256); the TLP
        // budget binds first here.
        let tlp = blocks.len() as u64 * 256;
        assert!(tlp >= v100().tlp_threshold / 2);
    }

    #[test]
    fn threshold_keeps_one_to_one_when_tlp_is_scarce() {
        // 16 tiles: prospective TLP = 4096 < 32768 from the start.
        let tiles = tiles_with_k(16, 32);
        let blocks = assign_blocks(&tiles, BatchingHeuristic::Threshold, &v100(), 256);
        assert_eq!(blocks.len(), 16);
        assert!(blocks.iter().all(|b| b.len() == 1));
    }

    #[test]
    fn threshold_respects_theta_for_large_k() {
        // Tiles with K = 512 > theta: one tile already exceeds theta, so
        // blocks never take a second tile.
        let tiles = tiles_with_k(400, 512);
        let blocks = assign_blocks(&tiles, BatchingHeuristic::Threshold, &v100(), 256);
        assert!(blocks.iter().all(|b| b.len() == 1), "K >= theta must not batch");
    }

    #[test]
    fn binary_pairs_min_with_max() {
        let ks = [16usize, 32, 64, 128, 256, 512];
        let tiles: Vec<TileTask> = ks.iter().enumerate().map(|(i, &k)| tile(0, i, k)).collect();
        let blocks = assign_blocks(&tiles, BatchingHeuristic::Binary, &v100(), 256);
        assert_eq!(blocks.len(), 3);
        let mut pair_ks: Vec<Vec<usize>> =
            blocks.iter().map(|b| b.iter().map(|t| t.k).collect()).collect();
        for p in &mut pair_ks {
            p.sort_unstable();
        }
        pair_ks.sort();
        assert_eq!(pair_ks, vec![vec![16, 512], vec![32, 256], vec![64, 128]]);
    }

    #[test]
    fn binary_leaves_odd_tile_alone() {
        let tiles = tiles_with_k(7, 64);
        let blocks = assign_blocks(&tiles, BatchingHeuristic::Binary, &v100(), 256);
        assert_eq!(blocks.len(), 4);
        assert_eq!(blocks.iter().filter(|b| b.len() == 1).count(), 1);
        assert_eq!(flatten(&blocks).len(), 7);
    }

    #[test]
    fn every_heuristic_preserves_the_tile_set() {
        let tiles: Vec<TileTask> =
            (0..257).map(|i| tile(i % 3, i / 3, 16 << (i % 5))).collect();
        for h in [
            BatchingHeuristic::OneTilePerBlock,
            BatchingHeuristic::Threshold,
            BatchingHeuristic::Binary,
        ] {
            let blocks = assign_blocks(&tiles, h, &v100(), 256);
            let mut expect = tiles.clone();
            expect.sort_by_key(|t| (t.gemm, t.y, t.x));
            assert_eq!(flatten(&blocks), expect, "heuristic {h} lost tiles");
            assert!(blocks.iter().all(|b| !b.is_empty()), "no empty blocks");
        }
    }

    #[test]
    fn empty_tile_list_yields_no_blocks() {
        for h in [
            BatchingHeuristic::OneTilePerBlock,
            BatchingHeuristic::Threshold,
            BatchingHeuristic::Binary,
        ] {
            assert!(assign_blocks(&[], h, &v100(), 256).is_empty());
        }
    }
}

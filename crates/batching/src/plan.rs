//! The batching-scheme representation of §6 (Fig 6): five auxiliary
//! arrays that can describe any assignment of tiles to thread blocks.

use crate::tile::TileTask;
use ctb_matrix::GemmShape;
use ctb_tiling::{TilingSolution, TilingStrategy};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// The five auxiliary arrays of Fig 6 plus the unified block size.
///
/// * `tile[b] .. tile[b+1]` is the range of tile indices owned by thread
///   block `b` (`tile.len() == blocks + 1`);
/// * `gemm[t]`, `tiling[t]`, `y_coord[t]`, `x_coord[t]` describe tile
///   `t`: its source GEMM, the Table 2 strategy id (0‥=11), and its tile
///   coordinates within the GEMM's grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchPlan {
    /// Per-block prefix offsets into the tile arrays.
    pub tile: Vec<usize>,
    /// Per-tile source GEMM index.
    pub gemm: Vec<usize>,
    /// Per-tile Table 2 strategy id.
    pub tiling: Vec<u8>,
    /// Per-tile Y coordinate (tile row).
    pub y_coord: Vec<usize>,
    /// Per-tile X coordinate (tile column).
    pub x_coord: Vec<usize>,
    /// Threads per block (the unified thread structure).
    pub threads: u32,
}

impl BatchPlan {
    /// Flatten a per-block tile assignment into the five arrays.
    pub fn from_blocks(blocks: &[Vec<TileTask>], threads: u32) -> Self {
        let total: usize = blocks.iter().map(Vec::len).sum();
        let mut plan = BatchPlan {
            tile: Vec::with_capacity(blocks.len() + 1),
            gemm: Vec::with_capacity(total),
            tiling: Vec::with_capacity(total),
            y_coord: Vec::with_capacity(total),
            x_coord: Vec::with_capacity(total),
            threads,
        };
        plan.tile.push(0);
        for block in blocks {
            for t in block {
                plan.gemm.push(t.gemm);
                plan.tiling.push(t.strategy.id());
                plan.y_coord.push(t.y);
                plan.x_coord.push(t.x);
            }
            plan.tile.push(plan.gemm.len());
        }
        plan
    }

    /// Number of thread blocks.
    pub fn num_blocks(&self) -> usize {
        self.tile.len() - 1
    }

    /// Number of tiles.
    pub fn num_tiles(&self) -> usize {
        self.gemm.len()
    }

    /// The tiles of block `b` (Fig 7 lines 1–3), reconstructed from the
    /// arrays.
    pub fn block_tiles(&self, b: usize, shapes: &[GemmShape]) -> Vec<TileTask> {
        (self.tile[b]..self.tile[b + 1])
            .map(|t| TileTask {
                gemm: self.gemm[t],
                y: self.y_coord[t],
                x: self.x_coord[t],
                k: shapes[self.gemm[t]].k,
                strategy: TilingStrategy::from_id(self.tiling[t]),
            })
            .collect()
    }

    /// Aggregate TLP of the plan: blocks × threads.
    pub fn tlp(&self) -> u64 {
        self.num_blocks() as u64 * self.threads as u64
    }

    /// Accumulated K depth of block `b` (the θ quantity of §5).
    pub fn block_k_depth(&self, b: usize, shapes: &[GemmShape]) -> usize {
        (self.tile[b]..self.tile[b + 1]).map(|t| shapes[self.gemm[t]].k).sum()
    }

    /// Largest number of tiles assigned to any block.
    pub fn max_tiles_per_block(&self) -> usize {
        (0..self.num_blocks()).map(|b| self.tile[b + 1] - self.tile[b]).max().unwrap_or(0)
    }

    /// Check plan invariants against the problem and tiling solution:
    ///
    /// 1. monotone prefix array covering all tiles;
    /// 2. every (gemm, y, x) tile of the solution appears exactly once;
    /// 3. strategy ids match the solution's per-GEMM strategies;
    /// 4. coordinates lie inside each GEMM's tile grid.
    pub fn validate(&self, shapes: &[GemmShape], solution: &TilingSolution) -> Result<(), String> {
        if self.tile.first() != Some(&0) || self.tile.last() != Some(&self.num_tiles()) {
            return Err("prefix array must span [0, tiles]".into());
        }
        if self.tile.windows(2).any(|w| w[1] < w[0]) {
            return Err("prefix array must be monotone".into());
        }
        let lens =
            [self.gemm.len(), self.tiling.len(), self.y_coord.len(), self.x_coord.len()];
        if lens.iter().any(|&l| l != self.num_tiles()) {
            return Err("per-tile arrays must have equal length".into());
        }

        let mut seen: HashSet<(usize, usize, usize)> = HashSet::with_capacity(self.num_tiles());
        for t in 0..self.num_tiles() {
            let g = self.gemm[t];
            if g >= shapes.len() {
                return Err(format!("tile {t}: GEMM index {g} out of range"));
            }
            let st = &solution.per_gemm[g];
            if self.tiling[t] != st.id() {
                return Err(format!("tile {t}: strategy id {} != solution {}", self.tiling[t], st.id()));
            }
            let (gy, gx) = (shapes[g].m.div_ceil(st.by), shapes[g].n.div_ceil(st.bx));
            if self.y_coord[t] >= gy || self.x_coord[t] >= gx {
                return Err(format!("tile {t}: coordinate out of grid"));
            }
            if !seen.insert((g, self.y_coord[t], self.x_coord[t])) {
                return Err(format!("tile {t}: duplicate tile"));
            }
        }
        let expected: usize = shapes
            .iter()
            .zip(&solution.per_gemm)
            .map(|(s, st)| st.tiles(s.m, s.n))
            .sum();
        if self.num_tiles() != expected {
            return Err(format!("plan has {} tiles, solution implies {expected}", self.num_tiles()));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tile::tiles_for;
    use ctb_gpu_specs::Thresholds;
    use ctb_tiling::select_tiling;

    fn example() -> (Vec<GemmShape>, TilingSolution, Vec<TileTask>) {
        let shapes = vec![
            GemmShape::new(16, 32, 128),
            GemmShape::new(64, 64, 64),
            GemmShape::new(256, 256, 64),
        ];
        let sol = select_tiling(&shapes, &Thresholds::paper_v100());
        let tiles = tiles_for(&shapes, &sol);
        (shapes, sol, tiles)
    }

    #[test]
    fn round_trip_through_the_five_arrays() {
        let (shapes, sol, tiles) = example();
        // Two tiles per block.
        let blocks: Vec<Vec<TileTask>> = tiles.chunks(2).map(|c| c.to_vec()).collect();
        let plan = BatchPlan::from_blocks(&blocks, sol.thread_count.threads());
        plan.validate(&shapes, &sol).expect("valid");
        assert_eq!(plan.num_tiles(), tiles.len());
        assert_eq!(plan.num_blocks(), blocks.len());
        for (b, expect) in blocks.iter().enumerate() {
            assert_eq!(&plan.block_tiles(b, &shapes), expect);
        }
    }

    #[test]
    fn figure6_shape_example() {
        // Fig 6: two 128x128 tiles for GEMM 0 and eight 128x64 tiles for
        // GEMM 1, six blocks (third block holds tiles [2, 4)).
        use ctb_tiling::strategy::{batched, StrategyKind, ThreadCount};
        let huge = batched(StrategyKind::Huge, ThreadCount::T256);
        let tall = batched(StrategyKind::Tall, ThreadCount::T256);
        let t = |gemm, y, x, st| TileTask { gemm, y, x, k: 64, strategy: st };
        let blocks = vec![
            vec![t(0, 0, 0, huge)],
            vec![t(0, 0, 1, huge)],
            vec![t(1, 0, 0, tall), t(1, 0, 1, tall)],
            vec![t(1, 0, 2, tall), t(1, 0, 3, tall)],
            vec![t(1, 1, 0, tall), t(1, 1, 1, tall)],
            vec![t(1, 1, 2, tall), t(1, 1, 3, tall)],
        ];
        let plan = BatchPlan::from_blocks(&blocks, 256);
        assert_eq!(plan.num_blocks(), 6);
        assert_eq!(plan.tile, vec![0, 1, 2, 4, 6, 8, 10]);
        // Third block (index 2) owns tiles [2, 4) from GEMM 1.
        assert_eq!(plan.tile[2 + 1] - plan.tile[2], 2);
        assert_eq!(plan.gemm[2], 1);
        assert_eq!(plan.gemm[3], 1);
        assert_eq!((plan.y_coord[2], plan.x_coord[2]), (0, 0));
        assert_eq!((plan.y_coord[3], plan.x_coord[3]), (0, 1));
    }

    #[test]
    fn validation_catches_duplicates_and_gaps() {
        let (shapes, sol, tiles) = example();
        // Duplicate a tile.
        let mut blocks: Vec<Vec<TileTask>> = tiles.iter().map(|t| vec![*t]).collect();
        blocks.push(vec![tiles[0]]);
        let plan = BatchPlan::from_blocks(&blocks, 256);
        assert!(plan.validate(&shapes, &sol).unwrap_err().contains("duplicate"));

        // Drop a tile.
        let blocks: Vec<Vec<TileTask>> = tiles[1..].iter().map(|t| vec![*t]).collect();
        let plan = BatchPlan::from_blocks(&blocks, 256);
        assert!(plan.validate(&shapes, &sol).is_err());
    }

    #[test]
    fn k_depth_accumulates() {
        let (shapes, sol, tiles) = example();
        let g0: Vec<TileTask> = tiles.iter().copied().filter(|t| t.gemm == 0).collect();
        let plan = BatchPlan::from_blocks(&[g0], sol.thread_count.threads());
        // Both K=128 tiles in one block.
        assert_eq!(plan.block_k_depth(0, &shapes), 256);
        assert_eq!(plan.max_tiles_per_block(), 2);
    }
}

//! Tile-ordering policies.
//!
//! The paper leaves the order in which the batching engine consumes
//! tiles unspecified. The order matters: threshold batching groups
//! *consecutive* tiles into a block, so GEMM-major order packs a block
//! with tiles of one GEMM while interleaved order mixes GEMMs (and their
//! K depths) within a block. The ablation bench (`reproduce ablate`)
//! quantifies the difference.

use crate::tile::TileTask;
use serde::{Deserialize, Serialize};

/// Order in which tiles are fed to the batching heuristics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum TileOrder {
    /// The tiling engine's natural order: all tiles of GEMM 0, then
    /// GEMM 1, … (row-major within each GEMM).
    #[default]
    GemmMajor,
    /// Round-robin across GEMMs: first tile of each GEMM, then second of
    /// each, … — spreads a batch's GEMMs across thread blocks.
    Interleaved,
    /// Deepest tiles first (descending K): fronts the heaviest work so
    /// the slot scheduler can backfill behind it (LPT-style).
    KDescending,
}

impl std::fmt::Display for TileOrder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TileOrder::GemmMajor => write!(f, "gemm-major"),
            TileOrder::Interleaved => write!(f, "interleaved"),
            TileOrder::KDescending => write!(f, "k-descending"),
        }
    }
}

/// Reorder `tiles` (GEMM-major as produced by
/// [`crate::tile::tiles_for`]) according to `order`. Stable: ties keep
/// the GEMM-major relative order.
pub fn order_tiles(tiles: &[TileTask], order: TileOrder) -> Vec<TileTask> {
    let mut out = tiles.to_vec();
    match order {
        TileOrder::GemmMajor => {}
        TileOrder::Interleaved => {
            // Rank within the tile's GEMM, then GEMM index.
            let mut rank = std::collections::HashMap::new();
            let keys: Vec<(usize, usize)> = out
                .iter()
                .map(|t| {
                    let r = rank.entry(t.gemm).or_insert(0usize);
                    let key = (*r, t.gemm);
                    *r += 1;
                    key
                })
                .collect();
            let mut idx: Vec<usize> = (0..out.len()).collect();
            idx.sort_by_key(|&i| keys[i]);
            out = idx.into_iter().map(|i| tiles[i]).collect();
        }
        TileOrder::KDescending => {
            out.sort_by_key(|t| std::cmp::Reverse(t.k));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctb_tiling::strategy::{batched, StrategyKind, ThreadCount};

    fn tile(gemm: usize, idx: usize, k: usize) -> TileTask {
        TileTask {
            gemm,
            y: idx,
            x: 0,
            k,
            strategy: batched(StrategyKind::Small, ThreadCount::T256),
        }
    }

    fn tiles() -> Vec<TileTask> {
        // GEMM 0: 3 tiles (K=64); GEMM 1: 2 tiles (K=256).
        vec![tile(0, 0, 64), tile(0, 1, 64), tile(0, 2, 64), tile(1, 0, 256), tile(1, 1, 256)]
    }

    #[test]
    fn gemm_major_is_identity() {
        let t = tiles();
        assert_eq!(order_tiles(&t, TileOrder::GemmMajor), t);
    }

    #[test]
    fn interleaved_round_robins_gemms() {
        let got = order_tiles(&tiles(), TileOrder::Interleaved);
        let seq: Vec<(usize, usize)> = got.iter().map(|t| (t.gemm, t.y)).collect();
        assert_eq!(seq, vec![(0, 0), (1, 0), (0, 1), (1, 1), (0, 2)]);
    }

    #[test]
    fn k_descending_fronts_deep_tiles() {
        let got = order_tiles(&tiles(), TileOrder::KDescending);
        let ks: Vec<usize> = got.iter().map(|t| t.k).collect();
        assert_eq!(ks, vec![256, 256, 64, 64, 64]);
        // Stability: within equal K, GEMM-major order preserved.
        assert_eq!((got[2].gemm, got[2].y), (0, 0));
    }

    #[test]
    fn reordering_preserves_the_tile_multiset() {
        let t = tiles();
        for order in [TileOrder::GemmMajor, TileOrder::Interleaved, TileOrder::KDescending] {
            let mut a = order_tiles(&t, order);
            let mut b = t.clone();
            a.sort_by_key(|x| (x.gemm, x.y, x.x));
            b.sort_by_key(|x| (x.gemm, x.y, x.x));
            assert_eq!(a, b, "{order} lost tiles");
        }
    }
}

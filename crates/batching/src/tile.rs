//! Tile tasks: the unit the batching engine assigns to thread blocks.

use ctb_matrix::GemmShape;
use ctb_tiling::{TilingSolution, TilingStrategy};
use serde::{Deserialize, Serialize};

/// One C tile of one GEMM, as produced by the tiling engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TileTask {
    /// Index of the GEMM this tile belongs to.
    pub gemm: usize,
    /// Tile row index within the GEMM's tile grid.
    pub y: usize,
    /// Tile column index within the GEMM's tile grid.
    pub x: usize,
    /// The GEMM's K dimension — the tile's workload depth, which drives
    /// the batching heuristics.
    pub k: usize,
    /// Strategy selected for this tile's GEMM by the tiling engine.
    pub strategy: TilingStrategy,
}

impl TileTask {
    /// Output rows covered by this tile for a GEMM with `m` rows
    /// (boundary tiles are clipped).
    pub fn rows(&self, m: usize) -> usize {
        let y0 = self.y * self.strategy.by;
        (m - y0).min(self.strategy.by)
    }

    /// Output columns covered for a GEMM with `n` columns.
    pub fn cols(&self, n: usize) -> usize {
        let x0 = self.x * self.strategy.bx;
        (n - x0).min(self.strategy.bx)
    }
}

/// Enumerate every tile of every GEMM under the tiling solution, in
/// GEMM-major, row-major order.
pub fn tiles_for(shapes: &[GemmShape], solution: &TilingSolution) -> Vec<TileTask> {
    assert_eq!(shapes.len(), solution.per_gemm.len(), "one strategy per GEMM");
    let mut tiles = Vec::new();
    for (g, (shape, st)) in shapes.iter().zip(&solution.per_gemm).enumerate() {
        let gy = shape.m.div_ceil(st.by);
        let gx = shape.n.div_ceil(st.bx);
        for y in 0..gy {
            for x in 0..gx {
                tiles.push(TileTask { gemm: g, y, x, k: shape.k, strategy: *st });
            }
        }
    }
    tiles
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctb_gpu_specs::Thresholds;
    use ctb_tiling::select_tiling;

    #[test]
    fn tiles_cover_worked_example() {
        let shapes = [
            GemmShape::new(16, 32, 128),
            GemmShape::new(64, 64, 64),
            GemmShape::new(256, 256, 64),
        ];
        let sol = select_tiling(&shapes, &Thresholds::paper_v100());
        let tiles = tiles_for(&shapes, &sol);
        // (small, medium, medium): 1x2 + 2x2 + 8x8 tiles.
        assert_eq!(tiles.len(), 2 + 4 + 64);
        assert_eq!(tiles.iter().filter(|t| t.gemm == 0).count(), 2);
        assert_eq!(tiles.iter().filter(|t| t.gemm == 2).count(), 64);
        // K recorded per tile.
        assert!(tiles.iter().filter(|t| t.gemm == 0).all(|t| t.k == 128));
        assert!(tiles.iter().filter(|t| t.gemm > 0).all(|t| t.k == 64));
    }

    #[test]
    fn boundary_tiles_are_clipped() {
        let shapes = [GemmShape::new(20, 40, 8)];
        let sol = select_tiling(&shapes, &Thresholds::paper_v100());
        let tiles = tiles_for(&shapes, &sol);
        let st = sol.per_gemm[0];
        assert_eq!(st.by, 16);
        // Grid is ceil(20/16) x ceil(40/16) = 2 x 3.
        assert_eq!(tiles.len(), 6);
        let last = tiles.last().unwrap();
        assert_eq!((last.y, last.x), (1, 2));
        assert_eq!(last.rows(20), 4);
        assert_eq!(last.cols(40), 8);
        let first = &tiles[0];
        assert_eq!(first.rows(20), 16);
        assert_eq!(first.cols(40), 16);
    }
}

//! Criterion micro-benches for the discrete-event engine's timeline:
//! the binary-heap push / pop / reschedule primitives that every one of
//! the sweep's millions of events pays for, measured at the 10k-pending
//! depth a 10k-device run actually holds.

use criterion::{criterion_group, criterion_main, Criterion};
use ctb_cluster::{SimTime, Timeline};
use std::hint::black_box;
use std::time::Duration;

const PENDING: u64 = 10_000;

/// A deterministic scatter of timestamps (SplitMix64 finalizer) so the
/// heap exercises real sift paths instead of sorted-input fast paths.
fn scatter(i: u64) -> SimTime {
    let mut z = i.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    SimTime((z ^ (z >> 31)) % 1_000_000_000)
}

fn full_timeline() -> Timeline<u64> {
    let mut t = Timeline::new();
    for i in 0..PENDING {
        t.schedule(scatter(i), i);
    }
    t
}

fn bench_timeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_timeline");
    g.sample_size(20).measurement_time(Duration::from_secs(2));

    // Steady-state push at depth: one schedule against 10k pending.
    g.bench_function("push_at_10k_pending", |b| {
        let mut t = full_timeline();
        let mut i = PENDING;
        b.iter(|| {
            i += 1;
            black_box(t.schedule(scatter(i), i));
        })
    });

    // Steady-state reschedule at depth: pop one, push its successor —
    // the engine's dominant pattern (every handler pops itself and
    // schedules the next event of its chain).
    g.bench_function("reschedule_at_10k_pending", |b| {
        let mut t = full_timeline();
        let mut i = PENDING;
        b.iter(|| {
            let (at, ev) = t.pop().expect("timeline primed");
            i += 1;
            t.schedule(at.plus(black_box(1_000)), ev);
            black_box(i);
        })
    });

    // Full drain: 10k pushes then 10k ordered pops, per iteration.
    g.bench_function("fill_then_drain_10k", |b| {
        b.iter(|| {
            let mut t = full_timeline();
            let mut last = SimTime::ZERO;
            while let Some((at, ev)) = t.pop() {
                debug_assert!(at >= last);
                last = at;
                black_box(ev);
            }
            black_box(last)
        })
    });

    g.finish();
}

criterion_group!(benches, bench_timeline);
criterion_main!(benches);

//! Criterion benches for the functional substrate: the reference GEMM
//! kernels and the persistent-threads plan interpreter.

use criterion::{criterion_group, criterion_main, Criterion};
use ctb_core::execute_plan;
use ctb_core::Framework;
use ctb_gpu_specs::ArchSpec;
use ctb_matrix::{gemm_blocked, gemm_par, gemm_ref, GemmBatch, GemmShape, MatF32};
use std::hint::black_box;
use std::time::Duration;

fn bench_reference_gemms(c: &mut Criterion) {
    let n = 256;
    let a = MatF32::random(n, n, 1);
    let b = MatF32::random(n, n, 2);
    let mut g = c.benchmark_group("reference_gemm_256");
    g.sample_size(10).measurement_time(Duration::from_secs(1));
    g.bench_function("naive", |bench| {
        bench.iter(|| {
            let mut cm = MatF32::zeros(n, n);
            gemm_ref(1.0, &a, &b, 0.0, &mut cm);
            black_box(cm)
        })
    });
    g.bench_function("blocked", |bench| {
        bench.iter(|| {
            let mut cm = MatF32::zeros(n, n);
            gemm_blocked(1.0, &a, &b, 0.0, &mut cm);
            black_box(cm)
        })
    });
    g.bench_function("rayon_parallel", |bench| {
        bench.iter(|| {
            let mut cm = MatF32::zeros(n, n);
            gemm_par(1.0, &a, &b, 0.0, &mut cm);
            black_box(cm)
        })
    });
    g.finish();
}

fn bench_plan_interpreter(c: &mut Criterion) {
    let arch = ArchSpec::volta_v100();
    let fw = Framework::new(arch);
    let shapes = vec![GemmShape::new(128, 128, 64); 8];
    let batch = GemmBatch::random(&shapes, 1.0, 0.0, 3);
    let plan = fw.plan(&shapes).expect("plannable");
    let mut g = c.benchmark_group("plan_interpreter");
    g.sample_size(10).measurement_time(Duration::from_secs(1));
    g.bench_function("execute_plan_8x128x128x64", |bench| {
        bench.iter(|| black_box(execute_plan(&batch, &plan.plan)))
    });
    g.finish();
}

criterion_group!(benches, bench_reference_gemms, bench_plan_interpreter);
criterion_main!(benches);

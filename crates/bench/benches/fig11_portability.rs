//! Criterion bench for the Fig 11 portability experiment: one random
//! batched-GEMM case evaluated (framework vs MAGMA) on every device
//! preset.

use criterion::{criterion_group, criterion_main, Criterion};
use ctb_baselines::magma_vbatch;
use ctb_core::Framework;
use ctb_gpu_specs::ArchSpec;
use ctb_matrix::gen::random_case;
use ctb_sim::simulate;
use std::hint::black_box;
use std::time::Duration;

fn bench_portability(c: &mut Criterion) {
    let shapes = random_case(11);
    let mut g = c.benchmark_group("fig11_case");
    g.sample_size(10).measurement_time(Duration::from_millis(500));
    for arch in ArchSpec::all_presets() {
        let fw = Framework::new(arch.clone());
        g.bench_function(arch.name.replace(' ', "_"), |bench| {
            bench.iter(|| {
                let ours = fw.simulate_only(&shapes).expect("plannable").total_us;
                let magma = simulate(&arch, &magma_vbatch(&arch, &shapes).seq).total_us;
                black_box(magma / ours)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_portability);
criterion_main!(benches);

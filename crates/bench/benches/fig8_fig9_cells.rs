//! Criterion benches for the Fig 8 / Fig 9 grids (Tables of §7.1–§7.2).
//!
//! Each benchmark measures the host-side cost of producing one grid
//! cell: planning (tiling + batching) plus the timing simulation for
//! both the framework and the MAGMA baseline. Representative corner
//! cells of the paper's histogram array are used rather than all 96, so
//! `cargo bench` stays quick.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use ctb_baselines::{magma_vbatch, simulate_baseline};
use ctb_batching::BatchingHeuristic;
use ctb_core::{BatchingPolicy, Framework, FrameworkConfig};
use ctb_gpu_specs::ArchSpec;
use ctb_matrix::gen::uniform_case;
use std::hint::black_box;
use std::time::Duration;

fn corner_cells() -> Vec<(usize, usize, usize)> {
    vec![(4, 64, 16), (4, 256, 2048), (32, 64, 16), (32, 256, 2048), (16, 128, 256)]
}

fn bench_fig8_cells(c: &mut Criterion) {
    let arch = ArchSpec::volta_v100();
    let fw = Framework::with_config(
        arch.clone(),
        FrameworkConfig {
            batching: BatchingPolicy::Fixed(BatchingHeuristic::OneTilePerBlock),
            thresholds: None,
        },
    );
    let mut g = c.benchmark_group("fig8_cell");
    g.sample_size(10).measurement_time(Duration::from_millis(500));
    for (b, mn, k) in corner_cells() {
        let shapes = uniform_case(b, mn, mn, k);
        g.bench_function(format!("B{b}_MN{mn}_K{k}"), |bench| {
            bench.iter_batched(
                || shapes.clone(),
                |shapes| {
                    let ours = fw.simulate_only(&shapes).expect("plannable").total_us;
                    let magma = simulate_baseline(&arch, &magma_vbatch(&arch, &shapes)).total_us;
                    black_box(magma / ours)
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_fig9_cells(c: &mut Criterion) {
    let arch = ArchSpec::volta_v100();
    let fw = Framework::new(arch.clone());
    let mut g = c.benchmark_group("fig9_cell");
    g.sample_size(10).measurement_time(Duration::from_millis(500));
    for (b, mn, k) in corner_cells() {
        let shapes = uniform_case(b, mn, mn, k);
        g.bench_function(format!("B{b}_MN{mn}_K{k}"), |bench| {
            bench.iter_batched(
                || shapes.clone(),
                |shapes| {
                    let ours = fw.simulate_only(&shapes).expect("plannable").total_us;
                    let magma = simulate_baseline(&arch, &magma_vbatch(&arch, &shapes)).total_us;
                    black_box(magma / ours)
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fig8_cells, bench_fig9_cells);
criterion_main!(benches);

//! Criterion benches for the GoogleNet experiments (Fig 10, §7.3).

use criterion::{criterion_group, criterion_main, Criterion};
use ctb_baselines::magma_vbatch;
use ctb_convnet::googlenet_v1;
use ctb_core::Framework;
use ctb_gpu_specs::ArchSpec;
use ctb_sim::simulate;
use std::hint::black_box;
use std::time::Duration;

fn bench_inception_layers(c: &mut Criterion) {
    let arch = ArchSpec::volta_v100();
    let fw = Framework::new(arch.clone());
    let net = googlenet_v1();
    let mut g = c.benchmark_group("fig10_layer");
    g.sample_size(10).measurement_time(Duration::from_millis(500));
    for m in [&net.modules[0], &net.modules[2], &net.modules[8]] {
        let shapes = m.stage1_shapes(4);
        g.bench_function(format!("{}_coordinated", m.name), |bench| {
            bench.iter(|| black_box(fw.simulate_only(&shapes).expect("plannable").total_us))
        });
        g.bench_function(format!("{}_magma", m.name), |bench| {
            bench.iter(|| {
                let run = magma_vbatch(&arch, &shapes);
                black_box(simulate(&arch, &run.seq).total_us)
            })
        });
    }
    g.finish();
}

fn bench_googlenet_end_to_end(c: &mut Criterion) {
    let arch = ArchSpec::volta_v100();
    let mut g = c.benchmark_group("googlenet_e2e");
    g.sample_size(10).measurement_time(Duration::from_secs(2));
    g.bench_function("three_variants_batch1", |bench| {
        bench.iter(|| black_box(ctb_convnet::pipeline::googlenet_times(&arch, 1)))
    });
    g.finish();
}

criterion_group!(benches, bench_inception_layers, bench_googlenet_end_to_end);
criterion_main!(benches);

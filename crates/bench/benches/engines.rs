//! Criterion microbenches for the framework's host-side components: the
//! tiling-selection algorithm (Table 2 machinery), the batching
//! heuristics, plan lowering, and the random-forest selector (whose
//! "negligible overhead" the paper claims in §5).

use criterion::{criterion_group, criterion_main, Criterion};
use ctb_batching::{assign_blocks, tiles_for, BatchPlan, BatchingHeuristic};
use ctb_core::{lowering::lower_plan, OnlineSelector};
use ctb_gpu_specs::{ArchSpec, Thresholds};
use ctb_matrix::gen::{random_case, random_cases};
use ctb_tiling::select_tiling;
use std::hint::black_box;
use std::time::Duration;

fn bench_tiling_engine(c: &mut Criterion) {
    let th = Thresholds::paper_v100();
    let shapes = random_case(3);
    let mut g = c.benchmark_group("tiling_engine");
    g.sample_size(20).measurement_time(Duration::from_millis(500));
    g.bench_function("select_tiling_random_batch", |b| {
        b.iter(|| black_box(select_tiling(&shapes, &th)))
    });
    g.finish();
}

fn bench_batching_engine(c: &mut Criterion) {
    let th = Thresholds::paper_v100();
    let shapes = random_case(3);
    let sol = select_tiling(&shapes, &th);
    let tiles = tiles_for(&shapes, &sol);
    let mut g = c.benchmark_group("batching_engine");
    g.sample_size(20).measurement_time(Duration::from_millis(500));
    for h in [
        BatchingHeuristic::OneTilePerBlock,
        BatchingHeuristic::Threshold,
        BatchingHeuristic::Binary,
    ] {
        g.bench_function(h.to_string(), |b| {
            b.iter(|| black_box(assign_blocks(&tiles, h, &th, sol.thread_count.threads())))
        });
    }
    g.bench_function("plan_and_lower", |b| {
        b.iter(|| {
            let blocks =
                assign_blocks(&tiles, BatchingHeuristic::Threshold, &th, sol.thread_count.threads());
            let plan = BatchPlan::from_blocks(&blocks, sol.thread_count.threads());
            black_box(lower_plan("bench", &plan, &shapes))
        })
    });
    g.finish();
}

fn bench_forest_selector(c: &mut Criterion) {
    let arch = ArchSpec::volta_v100();
    let th = Thresholds::for_arch(&arch);
    let selector = OnlineSelector::train(&arch, &th, &random_cases(60, 9));
    let shapes = random_case(21);
    let mut g = c.benchmark_group("forest_selector");
    g.sample_size(20).measurement_time(Duration::from_millis(500));
    g.bench_function("select_shapes", |b| {
        b.iter(|| black_box(selector.select_shapes(&shapes)))
    });
    g.finish();
}

criterion_group!(benches, bench_tiling_engine, bench_batching_engine, bench_forest_selector);
criterion_main!(benches);

//! Criterion benches for the zero-copy execution engine and the
//! memoized autotuner: the packed micro-kernel executor against the
//! collect-then-scatter baseline on a Fig 9 grid cell, the parallel
//! reference path, and a full autotune run.

use criterion::{criterion_group, criterion_main, Criterion};
use ctb_bench::perf::executor_workload;
use ctb_core::autotune::autotune;
use ctb_core::{execute_plan, execute_plan_unpacked, Framework};
use ctb_gpu_specs::{ArchSpec, Thresholds};
use ctb_matrix::gen::uniform_case;
use std::hint::black_box;
use std::time::Duration;

fn bench_execute_plan(c: &mut Criterion) {
    let arch = ArchSpec::volta_v100();
    let batch = executor_workload();
    let fw = Framework::new(arch);
    let plan = fw.plan(&batch.shapes).expect("plannable");

    let mut g = c.benchmark_group("execute_plan");
    g.sample_size(10).measurement_time(Duration::from_secs(2));
    g.bench_function("packed_b16_128x128x256", |b| {
        b.iter(|| black_box(execute_plan(&batch, &plan.plan)))
    });
    g.bench_function("unpacked_b16_128x128x256", |b| {
        b.iter(|| black_box(execute_plan_unpacked(&batch, &plan.plan)))
    });
    g.bench_function("reference_result", |b| b.iter(|| black_box(batch.reference_result())));
    g.finish();
}

fn bench_autotune(c: &mut Criterion) {
    let arch = ArchSpec::volta_v100();
    let th = Thresholds::for_arch(&arch);
    let shapes = uniform_case(16, 128, 128, 128);

    let mut g = c.benchmark_group("autotune");
    g.sample_size(10).measurement_time(Duration::from_secs(2));
    g.bench_function("uniform_16x128x128x128", |b| {
        b.iter(|| black_box(autotune(&arch, &shapes, &th)))
    });
    g.finish();
}

criterion_group!(benches, bench_execute_plan, bench_autotune);
criterion_main!(benches);

//! Ablation studies over the design choices `DESIGN.md` calls out:
//!
//! 1. **tiling adaptivity** — the tiling engine vs forcing one uniform
//!    strategy (what MAGMA-style fixed blocking would do with our
//!    execution quality);
//! 2. **TLP threshold sensitivity** — sweep the tiling engine's
//!    threshold around the paper's 65536;
//! 3. **θ sensitivity** — sweep the batching engine's per-block K target;
//! 4. **cross-tile prefetch** — charge the pipeline fill per tile
//!    instead of per block (disables the batching engine's ILP benefit);
//! 5. **heuristic vs simulated optimum** — the paper's selection
//!    algorithm against the exhaustive autotuner;
//! 6. **tile order** — GEMM-major vs interleaved vs K-descending feeds
//!    into threshold batching.

use crate::geomean;
use ctb_batching::{assign_blocks, order_tiles, tiles_for, BatchPlan, BatchingHeuristic, TileOrder};
use ctb_core::autotune::autotune;
use ctb_core::lowering::lower_plan;
use ctb_core::Framework;
use ctb_core::FrameworkConfig;
use ctb_gpu_specs::{ArchSpec, Thresholds};
use ctb_matrix::gen;
use ctb_matrix::GemmShape;
use ctb_sim::{simulate, LaunchSequence};
use ctb_tiling::strategy::{batched, StrategyKind, ThreadCount};
use ctb_tiling::{model, select_tiling, TilingSolution};

/// A labelled ablation data point: configuration → geometric-mean
/// simulated time (µs) over the workload set.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationPoint {
    pub label: String,
    pub mean_us: f64,
}

/// The standard workload set for ablations: a slice of the Fig 9 grid
/// plus random variable-size cases.
pub fn ablation_workloads(seed: u64) -> Vec<Vec<GemmShape>> {
    let mut w = Vec::new();
    for b in [4usize, 16] {
        for mn in [64usize, 256] {
            for k in [16usize, 256, 2048] {
                w.push(gen::uniform_case(b, mn, mn, k));
            }
        }
    }
    w.extend(gen::random_cases(8, seed));
    w
}

fn mean_time<F: Fn(&[GemmShape]) -> f64>(workloads: &[Vec<GemmShape>], f: F) -> f64 {
    geomean(&workloads.iter().map(|s| f(s)).collect::<Vec<_>>())
}

fn simulate_uniform_kind(
    arch: &ArchSpec,
    shapes: &[GemmShape],
    kind: StrategyKind,
    thresholds: &Thresholds,
) -> f64 {
    let per_gemm: Vec<_> = shapes
        .iter()
        .map(|s| {
            // Clamp the target kind down to what fits this GEMM.
            StrategyKind::ALL
                .iter()
                .rev()
                .map(|&k| batched(k, ThreadCount::T256))
                .find(|st| st.kind <= kind && st.fits(s.m, s.n))
                .unwrap_or(batched(StrategyKind::Small, ThreadCount::T256))
        })
        .collect();
    let tlp = model::tlp(shapes, &per_gemm);
    let sol = TilingSolution { thread_count: ThreadCount::T256, per_gemm, tlp };
    let tiles = tiles_for(shapes, &sol);
    let blocks = assign_blocks(&tiles, BatchingHeuristic::OneTilePerBlock, thresholds, 256);
    let plan = BatchPlan::from_blocks(&blocks, 256);
    let kd = lower_plan("uniform", &plan, shapes);
    simulate(arch, &LaunchSequence::Single(kd)).total_us
}

/// Ablation 1: adaptive tiling vs fixed uniform strategies.
pub fn ablate_tiling_adaptivity(arch: &ArchSpec) -> Vec<AblationPoint> {
    let th = Thresholds::for_arch(arch);
    let workloads = ablation_workloads(41);
    let fw = Framework::new(arch.clone());
    let mut out = vec![AblationPoint {
        label: "adaptive (tiling engine)".into(),
        mean_us: mean_time(&workloads, |s| fw.simulate_only(s).expect("plannable").total_us),
    }];
    for kind in [StrategyKind::Small, StrategyKind::Medium, StrategyKind::Large, StrategyKind::Huge]
    {
        out.push(AblationPoint {
            label: format!("uniform {kind}"),
            mean_us: mean_time(&workloads, |s| simulate_uniform_kind(arch, s, kind, &th)),
        });
    }
    out
}

/// Ablation 2: TLP-threshold sensitivity (×¼ … ×4 around the deployed
/// value).
pub fn ablate_tlp_threshold(arch: &ArchSpec) -> Vec<AblationPoint> {
    let base = Thresholds::for_arch(arch);
    let workloads = ablation_workloads(42);
    [base.tlp_threshold / 4, base.tlp_threshold / 2, base.tlp_threshold, base.tlp_threshold * 2, base.tlp_threshold * 4]
        .into_iter()
        .map(|t| {
            let fw = Framework::with_config(
                arch.clone(),
                FrameworkConfig {
                    thresholds: Some(Thresholds { tlp_threshold: t, theta: base.theta }),
                    ..FrameworkConfig::default()
                },
            );
            AblationPoint {
                label: format!("TLP threshold {t}"),
                mean_us: mean_time(&workloads, |s| {
                    fw.simulate_only(s).expect("plannable").total_us
                }),
            }
        })
        .collect()
}

/// Ablation 3: θ sensitivity on a small-K workload (where the batching
/// engine actually deepens blocks).
pub fn ablate_theta(arch: &ArchSpec) -> Vec<AblationPoint> {
    let base = Thresholds::for_arch(arch);
    // Small-K, many tiles: the regime θ governs.
    let workloads: Vec<Vec<GemmShape>> = (0..6)
        .map(|i| gen::uniform_case(16 + 4 * i, 192, 192, 16 << (i % 3)))
        .collect();
    [64u32, 128, 256, 512, 1024]
        .into_iter()
        .map(|theta| {
            let th = Thresholds { tlp_threshold: base.tlp_threshold, theta };
            let mean_us = mean_time(&workloads, |s| {
                let sol = select_tiling(s, &th);
                let tiles = tiles_for(s, &sol);
                let blocks = assign_blocks(
                    &tiles,
                    BatchingHeuristic::Threshold,
                    &th,
                    sol.thread_count.threads(),
                );
                let plan = BatchPlan::from_blocks(&blocks, sol.thread_count.threads());
                let kd = lower_plan("theta", &plan, s);
                simulate(arch, &LaunchSequence::Single(kd)).total_us
            });
            AblationPoint { label: format!("theta {theta}"), mean_us }
        })
        .collect()
}

/// Ablation 4: cross-tile prefetch on/off for threshold-batched plans.
pub fn ablate_cross_tile_prefetch(arch: &ArchSpec) -> Vec<AblationPoint> {
    let th = Thresholds::for_arch(arch);
    let workloads: Vec<Vec<GemmShape>> =
        (0..6).map(|i| gen::uniform_case(24, 160 + 16 * i, 160, 16)).collect();
    let run = |per_tile: bool| {
        mean_time(&workloads, |s| {
            let sol = select_tiling(s, &th);
            let tiles = tiles_for(s, &sol);
            let blocks =
                assign_blocks(&tiles, BatchingHeuristic::Threshold, &th, sol.thread_count.threads());
            let plan = BatchPlan::from_blocks(&blocks, sol.thread_count.threads());
            let mut kd = lower_plan("prefetch", &plan, s);
            if per_tile {
                kd = kd.without_cross_tile_prefetch();
            }
            simulate(arch, &LaunchSequence::Single(kd)).total_us
        })
    };
    vec![
        AblationPoint { label: "cross-tile prefetch (paper)".into(), mean_us: run(false) },
        AblationPoint { label: "fill per tile (ablated)".into(), mean_us: run(true) },
    ]
}

/// Ablation 5: the §4.2.3 heuristic vs the simulation-driven autotuner.
pub fn ablate_heuristic_vs_autotune(arch: &ArchSpec) -> Vec<AblationPoint> {
    let th = Thresholds::for_arch(arch);
    let workloads = gen::random_cases(6, 43);
    let heuristic = mean_time(&workloads, |s| {
        Framework::new(arch.clone()).simulate_only(s).expect("plannable").total_us
    });
    let tuned = mean_time(&workloads, |s| autotune(arch, s, &th).us);
    vec![
        AblationPoint { label: "paper heuristic".into(), mean_us: heuristic },
        AblationPoint { label: "exhaustive autotune".into(), mean_us: tuned },
    ]
}

/// Ablation 7: the dynamic-queue (persistent work-queue) extension vs
/// the paper's static heuristics, on heterogeneous-K batches where load
/// balance matters.
pub fn ablate_dynamic_queue(arch: &ArchSpec) -> Vec<AblationPoint> {
    let th = Thresholds::for_arch(arch);
    // Heterogeneous K: a few deep GEMMs among many shallow ones.
    let workloads: Vec<Vec<GemmShape>> = (0..6)
        .map(|i| {
            let mut s = vec![GemmShape::new(64, 64, 2048); 2 + i % 3];
            s.extend(vec![GemmShape::new(64, 64, 32); 24]);
            s
        })
        .collect();
    vec![
        AblationPoint {
            label: "best static heuristic".into(),
            mean_us: mean_time(&workloads, |s| {
                ctb_core::dynamic::simulate_best_static(arch, s, &th)
            }),
        },
        AblationPoint {
            label: "dynamic queue (LPT)".into(),
            mean_us: mean_time(&workloads, |s| ctb_core::simulate_dynamic(arch, s, &th)),
        },
    ]
}

/// Ablation 6: tile feeding order into threshold batching.
pub fn ablate_tile_order(arch: &ArchSpec) -> Vec<AblationPoint> {
    let th = Thresholds::for_arch(arch);
    let workloads = gen::random_cases(8, 44);
    [TileOrder::GemmMajor, TileOrder::Interleaved, TileOrder::KDescending]
        .into_iter()
        .map(|order| {
            let mean_us = mean_time(&workloads, |s| {
                let sol = select_tiling(s, &th);
                let tiles = order_tiles(&tiles_for(s, &sol), order);
                let blocks = assign_blocks(
                    &tiles,
                    BatchingHeuristic::Threshold,
                    &th,
                    sol.thread_count.threads(),
                );
                let plan = BatchPlan::from_blocks(&blocks, sol.thread_count.threads());
                let kd = lower_plan("order", &plan, s);
                simulate(arch, &LaunchSequence::Single(kd)).total_us
            });
            AblationPoint { label: order.to_string(), mean_us }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v100() -> ArchSpec {
        ArchSpec::volta_v100()
    }

    #[test]
    fn adaptive_tiling_beats_every_uniform_fixing() {
        // The margin over the best uniform fixing depends on the random
        // workload draw (the threshold rule can trail a lucky uniform
        // choice by a few percent on a small sample), so allow 5%.
        let pts = ablate_tiling_adaptivity(&v100());
        let adaptive = pts[0].mean_us;
        for p in &pts[1..] {
            assert!(
                adaptive <= p.mean_us * 1.05,
                "adaptive {adaptive} vs {}: {}",
                p.label,
                p.mean_us
            );
        }
    }

    #[test]
    fn deployed_tlp_threshold_is_near_the_sweet_spot() {
        let pts = ablate_tlp_threshold(&v100());
        let deployed = pts[2].mean_us; // the middle point is the deployed value
        let best = pts.iter().map(|p| p.mean_us).fold(f64::INFINITY, f64::min);
        assert!(deployed <= best * 1.15, "deployed {deployed} vs best {best}");
    }

    #[test]
    fn cross_tile_prefetch_never_hurts() {
        let pts = ablate_cross_tile_prefetch(&v100());
        assert!(pts[0].mean_us <= pts[1].mean_us * 1.001, "{pts:?}");
    }

    #[test]
    fn autotune_bounds_the_heuristic() {
        let pts = ablate_heuristic_vs_autotune(&v100());
        let (heur, tuned) = (pts[0].mean_us, pts[1].mean_us);
        assert!(tuned <= heur * 1.0001, "tuned {tuned} vs heuristic {heur}");
        // ... and the heuristic is not catastrophically far behind.
        assert!(heur <= tuned * 2.5, "heuristic {heur} vs tuned {tuned}");
    }

    #[test]
    fn dynamic_queue_is_competitive_on_heterogeneous_k() {
        let pts = ablate_dynamic_queue(&v100());
        let (static_best, dynamic) = (pts[0].mean_us, pts[1].mean_us);
        assert!(
            dynamic <= static_best * 1.1,
            "dynamic {dynamic} vs static {static_best}"
        );
    }

    #[test]
    fn tile_orders_all_produce_valid_times() {
        let pts = ablate_tile_order(&v100());
        assert_eq!(pts.len(), 3);
        assert!(pts.iter().all(|p| p.mean_us.is_finite() && p.mean_us > 0.0));
    }
}

//! `reproduce calibrate` — the closed calibration loop, end to end.
//!
//! One seeded workload runs three times over a drifted device pool
//! (every device's true clocks/bandwidth/latency diverge from the
//! nominal `ArchSpec` the cost model sees, so predictions are
//! systematically wrong):
//!
//! 1. **record** — a hot-swappable event cluster serves the workload
//!    with the pristine model, logging every placement decision
//!    (raw model µs, corrected prediction, measured µs) and an obs
//!    trace that `ctb_calib` reconciles against the decision log;
//! 2. **calibrate** — `ctb-calib` fits per-arch least-squares
//!    corrections from the recording, retrains the §5 selector on the
//!    trace's shape signatures, and packs both into a versioned
//!    [`CalibProfile`] (round-tripped through its wire format here, so
//!    the report always covers the serialized artifact);
//! 3. **replay** — the identical workload runs again with the profile
//!    installed; mean placement error must drop strictly. A fourth
//!    **swap** arm installs the profile *mid-run* and must complete
//!    every request.
//!
//! Full runs land in `BENCH_calibrate.json` at the repository root
//! (`--smoke` writes `target/experiments/BENCH_calibrate_smoke.json`)
//! and the key set is diffed against `scripts/BENCH_calibrate.schema`.

use ctb_calib::{
    fit_decisions, forest_shape, retrain_selector, CalibProfile, ForestShape, ProfileMeta,
    TraceDataset, PROFILE_VERSION,
};
use ctb_cluster::{
    EngineReport, EventCluster, EventConfig, GroundTruth, LoadGen, ReqOutcome, ShapeMix,
};
use ctb_core::selector::OnlineSelector;
use ctb_gpu_specs::{ArchSpec, Thresholds};
use ctb_matrix::GemmShape;
use ctb_obs::TraceAudit;
use std::path::PathBuf;
use std::sync::Arc;

/// Workload + calibration knobs; every arm replays the same seeded
/// stream over the same drifted pool.
#[derive(Debug, Clone)]
pub struct CalibBenchConfig {
    /// Devices in the pool (fastest-first presets, cycled).
    pub devices: usize,
    /// Requests per arm.
    pub requests: usize,
    /// Load-stream seed.
    pub seed: u64,
    /// Ground-truth drift seed (which way each device's reality
    /// diverges from its nominal spec).
    pub drift_seed: u64,
    /// Mean inter-arrival gap of the Poisson arrivals, ns.
    pub mean_interarrival_ns: f64,
    /// Execute a correctness witness every N completions.
    pub witness_every: usize,
}

impl Default for CalibBenchConfig {
    fn default() -> Self {
        CalibBenchConfig {
            devices: 6,
            requests: 2_400,
            seed: 0xCA11B,
            drift_seed: 11,
            mean_interarrival_ns: 2_000.0,
            witness_every: 16,
        }
    }
}

impl CalibBenchConfig {
    /// Scaled-down configuration for the CI gate: same loop, an order
    /// of magnitude fewer requests.
    pub fn smoke() -> Self {
        CalibBenchConfig { devices: 4, requests: 320, witness_every: 32, ..Default::default() }
    }
}

/// What one run of the workload measured.
#[derive(Debug, Clone)]
pub struct CalibArm {
    /// Placement decisions recorded.
    pub decisions: usize,
    /// Mean |predicted − measured| placement error, µs.
    pub mean_abs_err_us: f64,
    /// Correctness witnesses that diverged (must be 0).
    pub witness_mismatches: usize,
}

/// The tracked report: record → calibrate → replay (+ mid-run swap).
#[derive(Debug, Clone)]
pub struct CalibBenchReport {
    pub cfg: CalibBenchConfig,
    pub record: CalibArm,
    pub replay: CalibArm,
    /// Architectures seen in the trace / of those, non-identity fits.
    pub fit_arches: usize,
    pub fit_corrected: usize,
    /// Regression rows across arches.
    pub fit_cases: usize,
    /// In-sample mean |model − actual| before/after correction, µs.
    pub fit_err_before_us: f64,
    pub fit_err_after_us: f64,
    /// Did the retrained selector pass its regret gate?
    pub retrain_accepted: bool,
    /// Distinct shape signatures the retrainer extracted.
    pub retrain_signatures: usize,
    /// Signatures whose faster-heuristic label flipped under the
    /// corrected model.
    pub retrain_label_flips: usize,
    /// Mean corrected-µs selection regret, baseline vs retrained.
    pub regret_before_us: f64,
    pub regret_after_us: f64,
    /// Structure of the selector forest before/after retraining
    /// (identical when the candidate was rejected).
    pub forest_before: ForestShape,
    pub forest_after: ForestShape,
    /// Serialized profile size, bytes (always round-tripped).
    pub profile_bytes: usize,
    /// Calibration epoch after the mid-run install.
    pub swap_version: u64,
    /// Requests completed / dropped by the swap arm.
    pub swap_completed: usize,
    pub swap_dropped: usize,
}

impl CalibBenchReport {
    /// Placement-error reduction of replay vs record, percent.
    pub fn err_reduction_pct(&self) -> f64 {
        if self.record.mean_abs_err_us <= 0.0 {
            return 0.0;
        }
        100.0 * (1.0 - self.replay.mean_abs_err_us / self.record.mean_abs_err_us)
    }
}

/// The calibration workload: `table2`'s six classes plus six more
/// signatures, so the retrainer sees enough distinct shapes to learn
/// from (its [`ctb_calib::retrain::MIN_SIGNATURES`] floor).
fn calib_mixes() -> Vec<ShapeMix> {
    fn sig(shapes: &[GemmShape]) -> Arc<[GemmShape]> {
        shapes.into()
    }
    vec![
        ShapeMix { name: "small", shapes: sig(&[GemmShape::new(32, 32, 64); 4]), weight: 18 },
        ShapeMix { name: "medium", shapes: sig(&[GemmShape::new(64, 64, 128); 3]), weight: 15 },
        ShapeMix { name: "large", shapes: sig(&[GemmShape::new(128, 128, 256); 2]), weight: 9 },
        ShapeMix { name: "tall", shapes: sig(&[GemmShape::new(256, 32, 64); 2]), weight: 8 },
        ShapeMix { name: "wide", shapes: sig(&[GemmShape::new(32, 256, 64); 2]), weight: 8 },
        ShapeMix { name: "huge", shapes: sig(&[GemmShape::new(256, 256, 512)]), weight: 4 },
        ShapeMix { name: "sliver", shapes: sig(&[GemmShape::new(16, 16, 512); 6]), weight: 10 },
        ShapeMix { name: "square", shapes: sig(&[GemmShape::new(96, 96, 96); 2]), weight: 8 },
        ShapeMix { name: "deep", shapes: sig(&[GemmShape::new(48, 48, 384); 2]), weight: 6 },
        ShapeMix { name: "skinny-k", shapes: sig(&[GemmShape::new(128, 128, 32); 2]), weight: 6 },
        ShapeMix { name: "row", shapes: sig(&[GemmShape::new(8, 256, 128); 3]), weight: 4 },
        ShapeMix { name: "col", shapes: sig(&[GemmShape::new(256, 8, 128); 3]), weight: 4 },
    ]
}

fn calib_load(cfg: &CalibBenchConfig) -> LoadGen {
    LoadGen::new(cfg.seed, cfg.mean_interarrival_ns, cfg.requests, calib_mixes())
}

fn engine_config(cfg: &CalibBenchConfig) -> EventConfig {
    EventConfig { witness_every: cfg.witness_every, ..EventConfig::default() }
}

fn arm_from(report: &EngineReport) -> CalibArm {
    let ds = TraceDataset::from_recording(report, None)
        .expect("recorded arm always yields decisions");
    CalibArm {
        decisions: ds.decisions.len(),
        mean_abs_err_us: ds.mean_abs_err_us(),
        witness_mismatches: report.witness_mismatches,
    }
}

/// One run of the workload over the drifted pool. `profile` installs
/// before traffic (replay arm); `instrument` additionally records an
/// obs trace for reconciliation.
fn run_arm(
    cfg: &CalibBenchConfig,
    profile: Option<&CalibProfile>,
    instrument: bool,
) -> (EngineReport, Option<ctb_obs::TraceCounts>) {
    let pool = ArchSpec::pool_presets(cfg.devices);
    let (mut cluster, obs) = EventCluster::swappable(pool.clone(), engine_config(cfg), instrument);
    cluster.set_ground_truth(GroundTruth::drift(&pool, cfg.drift_seed));
    cluster.record_decisions(true);
    if let Some(p) = profile {
        p.install(cluster.share().calib());
    }
    cluster.load(calib_load(cfg));
    let report = cluster.run();
    let counts = obs.map(|o| {
        TraceAudit::new(o.events()).check().expect("calibration trace audits clean")
    });
    (report, counts)
}

/// Record → fit → retrain → pack → replay → mid-run swap.
pub fn run_calib_bench(cfg: &CalibBenchConfig) -> CalibBenchReport {
    // 1. Record under the pristine model, instrumented.
    let (recording, counts) = run_arm(cfg, None, true);
    let dataset = TraceDataset::from_recording(&recording, counts.as_ref())
        .expect("recording ingests");

    // 2. Fit corrections and retrain the selector from the trace.
    let fit = fit_decisions(&dataset.decisions);
    let arch = ArchSpec::volta_v100();
    let thresholds = Thresholds::for_arch(&arch);
    let baseline = OnlineSelector::pretrained_v100();
    let corrections = fit.correction_set();
    let retrained = retrain_selector(&arch, &thresholds, &dataset.decisions, &corrections, &baseline);
    let forest_before = forest_shape(baseline.forest());
    let (selector_forest, forest_after, retrain_accepted, signatures, label_flips, regret) =
        match &retrained {
            Some((sel, rep)) => (
                Some(sel.forest().clone()),
                rep.shape_after.clone(),
                true,
                rep.signatures,
                rep.label_flips,
                (rep.regret_before_us, rep.regret_after_us),
            ),
            None => (None, forest_before.clone(), false, 0, 0, (0.0, 0.0)),
        };

    // 3. Pack the profile and prove its wire format round-trips.
    let profile = CalibProfile {
        corrections,
        selector_forest,
        meta: ProfileMeta {
            source_decisions: dataset.decisions.len() as u64,
            trained_cases: signatures as u64,
            drift_seed: cfg.drift_seed,
        },
    };
    let bytes = profile.to_bytes();
    let profile = CalibProfile::from_bytes(&bytes).expect("profile round-trips");
    assert_eq!(profile.to_bytes(), bytes, "profile wire format is byte-stable");

    // 4. Replay the identical workload with the profile installed.
    let (replayed, _) = run_arm(cfg, Some(&profile), false);

    // 5. Swap arm: install mid-run; nothing may drop.
    let pool = ArchSpec::pool_presets(cfg.devices);
    let (mut swap, _) = EventCluster::swappable(pool.clone(), engine_config(cfg), false);
    swap.set_ground_truth(GroundTruth::drift(&pool, cfg.drift_seed));
    swap.load(calib_load(cfg));
    swap.run_steps(cfg.requests as u64 / 2);
    let swap_version = profile.install(swap.share().calib());
    let swap_report = swap.run();
    let swap_completed = swap_report
        .outcomes
        .iter()
        .filter(|o| matches!(o, ReqOutcome::Done { .. }))
        .count();

    CalibBenchReport {
        cfg: cfg.clone(),
        record: arm_from(&recording),
        replay: arm_from(&replayed),
        fit_arches: fit.arches.len(),
        fit_corrected: fit.arches.iter().filter(|a| !a.correction.is_identity()).count(),
        fit_cases: fit.cases,
        fit_err_before_us: fit.mean_err_before_us(),
        fit_err_after_us: fit.mean_err_after_us(),
        retrain_accepted,
        retrain_signatures: signatures,
        retrain_label_flips: label_flips,
        regret_before_us: regret.0,
        regret_after_us: regret.1,
        forest_before,
        forest_after,
        profile_bytes: bytes.len(),
        swap_version,
        swap_completed,
        swap_dropped: cfg.requests - swap_completed,
    }
}

fn render_arm(out: &mut String, label: &str, a: &CalibArm) {
    out.push_str(&format!(
        "  \"{label}\": {{\n    \"decisions\": {},\n    \"mean_abs_err_us\": {:.4},\n    \
         \"witness_mismatches\": {}\n  }},\n",
        a.decisions, a.mean_abs_err_us, a.witness_mismatches
    ));
}

fn render_forest(out: &mut String, label: &str, s: &ForestShape) {
    let hist: Vec<String> = s.depth_histogram.iter().map(|n| n.to_string()).collect();
    out.push_str(&format!(
        "  \"{label}\": {{\n    \"trees\": {},\n    \"total_nodes\": {},\n    \
         \"max_depth\": {},\n    \"depth_histogram\": [{}],\n    \"splits_m\": {},\n    \
         \"splits_n\": {},\n    \"splits_k\": {},\n    \"splits_b\": {}\n  }},\n",
        s.trees,
        s.total_nodes,
        s.max_depth,
        hist.join(", "),
        s.feature_splits[0],
        s.feature_splits[1],
        s.feature_splits[2],
        s.feature_splits[3],
    ));
}

/// Serialize the report as the tracked JSON schema.
pub fn render_json(r: &CalibBenchReport) -> String {
    let mut out = format!(
        "{{\n  \"bench\": \"calibrate\",\n  \"devices\": {},\n  \"requests\": {},\n  \
         \"seed\": {},\n  \"drift_seed\": {},\n",
        r.cfg.devices, r.cfg.requests, r.cfg.seed, r.cfg.drift_seed
    );
    render_arm(&mut out, "record", &r.record);
    out.push_str(&format!(
        "  \"fit\": {{\n    \"arches\": {},\n    \"corrected\": {},\n    \"cases\": {},\n    \
         \"err_before_us\": {:.4},\n    \"err_after_us\": {:.4}\n  }},\n",
        r.fit_arches, r.fit_corrected, r.fit_cases, r.fit_err_before_us, r.fit_err_after_us
    ));
    out.push_str(&format!(
        "  \"retrain\": {{\n    \"accepted\": {},\n    \"signatures\": {},\n    \
         \"label_flips\": {},\n    \"regret_before_us\": {:.4},\n    \
         \"regret_after_us\": {:.4}\n  }},\n",
        r.retrain_accepted,
        r.retrain_signatures,
        r.retrain_label_flips,
        r.regret_before_us,
        r.regret_after_us
    ));
    render_forest(&mut out, "forest_before", &r.forest_before);
    render_forest(&mut out, "forest_after", &r.forest_after);
    out.push_str(&format!(
        "  \"profile\": {{\n    \"version\": {},\n    \"bytes\": {}\n  }},\n",
        PROFILE_VERSION, r.profile_bytes
    ));
    render_arm(&mut out, "replay", &r.replay);
    out.push_str(&format!(
        "  \"swap\": {{\n    \"installed_version\": {},\n    \"completed\": {},\n    \
         \"dropped\": {}\n  }},\n",
        r.swap_version, r.swap_completed, r.swap_dropped
    ));
    out.push_str(&format!("  \"err_reduction_pct\": {:.2}\n}}\n", r.err_reduction_pct()));
    out
}

/// Path of the tracked report at the repo root.
pub fn report_path() -> PathBuf {
    crate::bench_json_path("calibrate")
}

/// Path of the checked-in golden schema the gate diffs against.
pub fn golden_schema_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../scripts/BENCH_calibrate.schema")
}

/// Run the full tracked configuration (or a flag-adjusted one) and
/// write `BENCH_calibrate.json`.
pub fn run_and_write(cfg: &CalibBenchConfig) -> (CalibBenchReport, PathBuf) {
    let report = run_calib_bench(cfg);
    let path = crate::write_bench_json("calibrate", &render_json(&report));
    (report, path)
}

/// Run the smoke configuration and write
/// `target/experiments/BENCH_calibrate_smoke.json`, leaving the tracked
/// root report to full runs only.
pub fn run_and_write_smoke() -> (CalibBenchReport, PathBuf) {
    let report = run_calib_bench(&CalibBenchConfig::smoke());
    let path = crate::experiments_dir().join("BENCH_calibrate_smoke.json");
    std::fs::write(&path, render_json(&report)).expect("write BENCH_calibrate_smoke.json");
    (report, path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_loop_reduces_error_and_drops_nothing() {
        let r = run_calib_bench(&CalibBenchConfig::smoke());
        assert_eq!(r.record.witness_mismatches, 0);
        assert_eq!(r.replay.witness_mismatches, 0);
        assert!(r.record.mean_abs_err_us > 0.0, "drift must show up as error");
        assert!(
            r.replay.mean_abs_err_us < r.record.mean_abs_err_us,
            "calibration must strictly reduce placement error ({} -> {})",
            r.record.mean_abs_err_us,
            r.replay.mean_abs_err_us
        );
        assert!(r.fit_corrected > 0, "a drifted pool needs at least one correction");
        assert_eq!(r.swap_dropped, 0, "mid-run install dropped requests");
        assert_eq!(r.swap_version, 1);
        assert!(r.profile_bytes > 0);
    }

    #[test]
    fn workload_has_enough_distinct_signatures_to_retrain() {
        let sigs: std::collections::BTreeSet<String> =
            calib_mixes().iter().map(|m| format!("{:?}", m.shapes)).collect();
        assert!(
            sigs.len() >= ctb_calib::retrain::MIN_SIGNATURES,
            "only {} distinct signatures",
            sigs.len()
        );
    }

    #[test]
    fn json_schema_has_stable_keys() {
        let arm = CalibArm { decisions: 0, mean_abs_err_us: 0.0, witness_mismatches: 0 };
        let shape = ForestShape {
            trees: 0,
            total_nodes: 0,
            max_depth: 0,
            depth_histogram: vec![0],
            feature_splits: vec![0; 4],
        };
        let r = CalibBenchReport {
            cfg: CalibBenchConfig::default(),
            record: arm.clone(),
            replay: arm,
            fit_arches: 0,
            fit_corrected: 0,
            fit_cases: 0,
            fit_err_before_us: 0.0,
            fit_err_after_us: 0.0,
            retrain_accepted: false,
            retrain_signatures: 0,
            retrain_label_flips: 0,
            regret_before_us: 0.0,
            regret_after_us: 0.0,
            forest_before: shape.clone(),
            forest_after: shape,
            profile_bytes: 0,
            swap_version: 0,
            swap_completed: 0,
            swap_dropped: 0,
        };
        let json = render_json(&r);
        let golden = std::fs::read_to_string(golden_schema_path())
            .expect("golden schema checked in");
        let golden: Vec<String> = golden.lines().map(str::to_string).collect();
        assert_eq!(
            crate::obs_bench::key_paths(&json),
            golden,
            "BENCH_calibrate.json schema drifted; update scripts/BENCH_calibrate.schema deliberately"
        );
    }

    #[test]
    fn report_path_is_the_repo_root() {
        let p = report_path();
        assert!(p.ends_with("BENCH_calibrate.json"));
        assert!(p.parent().unwrap().join("Cargo.toml").exists());
    }
}

//! `reproduce serve` — the tracked serving-layer harness.
//!
//! Drives the `ctb-serve` server with a closed-loop multi-producer
//! workload (each producer submits a request, waits for its result,
//! verifies it bitwise against the exact oracle, and immediately
//! submits the next) and reports the service-level numbers the serving
//! layer exists to move: throughput, coalescing achieved (mean batch
//! size), plan-cache hit rate, and tail latency. Results are written as
//! `BENCH_serve.json` at the repository root so successive commits can
//! be compared.

use ctb_core::Framework;
use ctb_gpu_specs::ArchSpec;
use ctb_matrix::{bitwise_mismatch, GemmBatch, GemmShape};
use ctb_serve::{GemmRequest, ServeConfig, Server};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The tracked service-level numbers for one closed-loop run.
#[derive(Debug, Clone)]
pub struct ServeBenchReport {
    /// Closed-loop producer threads.
    pub producers: usize,
    /// Requests completed (== submitted; the loop never drops).
    pub requests: usize,
    /// Batches the window coalesced them into.
    pub batches: usize,
    /// requests / batches.
    pub mean_batch_size: f64,
    /// Plan-cache hit rate over the run (repeated shape signatures are
    /// planned once).
    pub plan_cache_hit_rate: f64,
    /// Simulation-memo hit rate (candidate evaluations answered from
    /// the memo during the few cold plans).
    pub sim_memo_hit_rate: f64,
    /// End-to-end wall time of the loop.
    pub wall_ms: f64,
    /// Completed requests per second of wall time.
    pub throughput_rps: f64,
    /// Median request latency (queue + plan + execute), microseconds.
    pub p50_us: f64,
    /// 95th-percentile request latency, microseconds.
    pub p95_us: f64,
}

/// Mixed shape pool cycled by the producers: a handful of repeated
/// signatures so the plan cache has something to hit, with small and
/// mid-size GEMMs so windows actually coalesce.
fn shape_pool() -> Vec<GemmShape> {
    vec![
        GemmShape::new(16, 32, 64),
        GemmShape::new(64, 64, 64),
        GemmShape::new(48, 80, 96),
        GemmShape::new(17, 33, 41),
        GemmShape::new(128, 37, 63),
        GemmShape::new(32, 128, 32),
    ]
}

/// Run the closed loop: `producers` threads, `per_producer` requests
/// each, every result checked bitwise against the exact oracle.
pub fn run_serve_bench(arch: &ArchSpec, producers: usize, per_producer: usize) -> ServeBenchReport {
    let server = Arc::new(Server::new(
        Framework::new(arch.clone()),
        ServeConfig {
            max_batch: 32,
            batch_window: Duration::from_micros(300),
            queue_capacity: 64,
            workers: 2,
            ..ServeConfig::default()
        },
    ));
    let pool = shape_pool();

    let t0 = Instant::now();
    let handles: Vec<_> = (0..producers)
        .map(|t| {
            let server = Arc::clone(&server);
            let pool = pool.clone();
            std::thread::spawn(move || {
                for i in 0..per_producer {
                    let shape = pool[(t + i) % pool.len()];
                    let seed = (t * 10_000 + i) as u64;
                    let batch = GemmBatch::random(&[shape], 1.0, 0.5, seed);
                    let expected = batch.reference_result_exact();
                    let got = server
                        .submit(GemmRequest {
                            a: batch.a[0].clone(),
                            b: batch.b[0].clone(),
                            c: batch.c[0].clone(),
                            alpha: batch.alpha,
                            beta: batch.beta,
                            deadline: None,
                        })
                        .expect("closed-loop submit admitted")
                        .wait()
                        .expect("closed-loop request completed");
                    assert!(
                        bitwise_mismatch(&expected, std::slice::from_ref(&got.c)).is_none(),
                        "producer {t} request {i}: served result diverged from oracle"
                    );
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("producer thread panicked");
    }
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;

    let server = Arc::into_inner(server).expect("all producers joined");
    let stats = server.shutdown();
    let requests = producers * per_producer;
    assert_eq!(stats.completed, requests, "closed loop completed everything it submitted");

    ServeBenchReport {
        producers,
        requests,
        batches: stats.batches,
        mean_batch_size: stats.mean_batch_size,
        plan_cache_hit_rate: stats.plan_cache.hit_rate(),
        sim_memo_hit_rate: stats.sim_memo.hit_rate(),
        wall_ms,
        throughput_rps: requests as f64 / (wall_ms / 1e3),
        p50_us: stats.p50_us,
        p95_us: stats.p95_us,
    }
}

/// Serialize the report as the tracked JSON schema.
pub fn render_json(arch: &ArchSpec, r: &ServeBenchReport) -> String {
    format!(
        "{{\n  \"bench\": \"serve\",\n  \"arch\": \"{}\",\n  \"producers\": {},\n  \
         \"requests\": {},\n  \"batches\": {},\n  \"mean_batch_size\": {:.3},\n  \
         \"plan_cache_hit_rate\": {:.4},\n  \"sim_memo_hit_rate\": {:.4},\n  \
         \"wall_ms\": {:.3},\n  \"throughput_rps\": {:.1},\n  \"p50_us\": {:.1},\n  \
         \"p95_us\": {:.1}\n}}\n",
        arch.name,
        r.producers,
        r.requests,
        r.batches,
        r.mean_batch_size,
        r.plan_cache_hit_rate,
        r.sim_memo_hit_rate,
        r.wall_ms,
        r.throughput_rps,
        r.p50_us,
        r.p95_us
    )
}

/// Path of the tracked report: `BENCH_serve.json` at the repo root,
/// independent of the working directory the binary runs from.
pub fn report_path() -> PathBuf {
    crate::bench_json_path("serve")
}

/// Run the standard tracked configuration (4 producers, closed loop)
/// and write the report; returns it and the path written.
pub fn run_and_write(arch: &ArchSpec) -> (ServeBenchReport, PathBuf) {
    let report = run_serve_bench(arch, 4, 50);
    let path = crate::write_bench_json("serve", &render_json(arch, &report));
    (report, path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_loop_reports_sane_service_numbers() {
        let r = run_serve_bench(&ArchSpec::volta_v100(), 2, 6);
        assert_eq!(r.requests, 12);
        assert!(r.batches >= 1 && r.batches <= 12);
        assert!(r.mean_batch_size >= 1.0);
        assert!((0.0..=1.0).contains(&r.plan_cache_hit_rate));
        assert!(r.throughput_rps > 0.0);
        assert!(r.p95_us >= r.p50_us);
    }

    #[test]
    fn json_schema_has_stable_keys() {
        let r = ServeBenchReport {
            producers: 4,
            requests: 200,
            batches: 31,
            mean_batch_size: 6.45,
            plan_cache_hit_rate: 0.9,
            sim_memo_hit_rate: 0.5,
            wall_ms: 123.0,
            throughput_rps: 1626.0,
            p50_us: 400.0,
            p95_us: 900.0,
        };
        let json = render_json(&ArchSpec::volta_v100(), &r);
        for key in [
            "\"bench\"",
            "\"arch\"",
            "\"producers\"",
            "\"requests\"",
            "\"batches\"",
            "\"mean_batch_size\"",
            "\"plan_cache_hit_rate\"",
            "\"throughput_rps\"",
            "\"p50_us\"",
            "\"p95_us\"",
        ] {
            assert!(json.contains(key), "missing key {key} in {json}");
        }
    }

    #[test]
    fn report_path_is_the_repo_root() {
        let p = report_path();
        assert!(p.ends_with("BENCH_serve.json"));
        assert!(p.parent().unwrap().join("Cargo.toml").exists());
    }
}

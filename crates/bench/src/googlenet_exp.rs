//! The GoogleNet experiments: §7.3's end-to-end times and Fig 10's
//! per-inception-layer speedups.

use ctb_convnet::pipeline::{googlenet_times, inception_layer_speedups, GoogleNetTimes};
use ctb_gpu_specs::ArchSpec;

/// Image batch used for the Fig 10 per-layer comparison. N in the GEMM
/// mapping is "feature map and batch size" (§1); batch 4 keeps the
/// inception GEMMs in the small-matrix regime the paper targets while
/// avoiding the degenerate N = 49 tail of the 7×7 modules.
pub const FIG10_IMAGE_BATCH: usize = 4;

/// End-to-end §7.3 numbers (image batch 1: "a inference pass").
pub fn googlenet_summary(arch: &ArchSpec) -> GoogleNetTimes {
    googlenet_times(arch, 1)
}

/// Fig 10 rows: (inception layer, speedup over MAGMA).
pub fn fig10_rows(arch: &ArchSpec) -> Vec<(String, f64)> {
    inception_layer_speedups(arch, FIG10_IMAGE_BATCH)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geomean;

    #[test]
    fn fig10_rows_are_the_nine_inception_layers() {
        let rows = fig10_rows(&ArchSpec::volta_v100());
        assert_eq!(rows.len(), 9);
        assert!(rows[0].0.contains("3a"));
        assert!(rows[8].0.contains("5b"));
        // The paper's Fig 10 band: every layer above 1x, the mean near
        // 1.25-1.40x.
        let mean = geomean(&rows.iter().map(|(_, s)| *s).collect::<Vec<_>>());
        assert!((1.05..=1.9).contains(&mean), "fig10 mean {mean}");
        for (name, s) in &rows {
            assert!(*s > 0.95, "{name} regressed: {s}");
        }
    }

    #[test]
    fn summary_matches_paper_ordering() {
        let t = googlenet_summary(&ArchSpec::volta_v100());
        assert!(t.cudnn_like_ms > t.cudnn_streams_ms);
        assert!(t.cudnn_streams_ms > t.coordinated_ms);
    }
}

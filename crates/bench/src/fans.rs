//! Extension experiments: fan-structure batching beyond GoogleNet.
//!
//! §7.3 notes that "the fan-structure is popular in other
//! state-of-the-art CNN models such as Squeeze-Net and ResNet" — these
//! drivers batch those fans through the framework and compare against
//! MAGMA vbatch, plus the training-backward fans of GoogleNet.

use ctb_baselines::magma_vbatch;
use ctb_convnet::backward::{inception_dgrad_batch, inception_wgrad_batch};
use ctb_convnet::{googlenet_v1, resnet50_blocks, squeezenet_v1};
use ctb_core::Framework;
use ctb_gpu_specs::ArchSpec;
use ctb_matrix::GemmShape;
use ctb_sim::simulate;

/// (workload label, speedup of the framework over MAGMA vbatch).
pub type FanRow = (String, f64);

fn speedup(fw: &Framework, arch: &ArchSpec, shapes: &[GemmShape]) -> f64 {
    let ours = fw.simulate_only(shapes).expect("plannable").total_us;
    let magma = simulate(arch, &magma_vbatch(arch, shapes).seq).total_us;
    magma / ours
}

/// SqueezeNet fire-module expand fans (two GEMMs each).
pub fn squeezenet_fan_rows(arch: &ArchSpec, batch: usize) -> Vec<FanRow> {
    let fw = Framework::new(arch.clone());
    squeezenet_v1()
        .fires
        .iter()
        .map(|f| (f.name.clone(), speedup(&fw, arch, &f.expand_shapes(batch))))
        .collect()
}

/// ResNet-50 projection fans (first block of each stage: two GEMMs).
pub fn resnet_fan_rows(arch: &ArchSpec, batch: usize) -> Vec<FanRow> {
    let fw = Framework::new(arch.clone());
    resnet50_blocks()
        .iter()
        .filter(|b| b.projection.is_some())
        .map(|b| (b.name.clone(), speedup(&fw, arch, &b.fan_shapes(batch))))
        .collect()
}

/// GoogleNet training-backward fans: the dgrad and wgrad batches of each
/// inception module.
pub fn backward_fan_rows(arch: &ArchSpec, batch: usize) -> Vec<FanRow> {
    let fw = Framework::new(arch.clone());
    let net = googlenet_v1();
    let mut rows = Vec::new();
    for m in &net.modules {
        rows.push((
            format!("{} dgrad", m.name),
            speedup(&fw, arch, &inception_dgrad_batch(m, batch)),
        ));
        rows.push((
            format!("{} wgrad", m.name),
            speedup(&fw, arch, &inception_wgrad_batch(m, batch)),
        ));
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geomean;

    #[test]
    fn squeezenet_fans_benefit_from_batching() {
        let rows = squeezenet_fan_rows(&ArchSpec::volta_v100(), 4);
        assert_eq!(rows.len(), 8);
        let mean = geomean(&rows.iter().map(|(_, s)| *s).collect::<Vec<_>>());
        assert!(mean > 1.0, "squeezenet mean fan speedup {mean}");
    }

    #[test]
    fn resnet_fans_benefit_from_batching() {
        let rows = resnet_fan_rows(&ArchSpec::volta_v100(), 4);
        assert_eq!(rows.len(), 4, "one projection fan per stage");
        for (name, s) in &rows {
            assert!(*s > 0.8, "{name}: {s}");
        }
    }

    #[test]
    fn backward_fans_are_plannable_and_mostly_win() {
        let rows = backward_fan_rows(&ArchSpec::volta_v100(), 1);
        assert_eq!(rows.len(), 18);
        let mean = geomean(&rows.iter().map(|(_, s)| *s).collect::<Vec<_>>());
        assert!(mean > 1.0, "backward mean speedup {mean}");
    }
}

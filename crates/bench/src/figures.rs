//! Fig 8 (tiling engine alone), Fig 9 (tiling + batching) and Fig 11
//! (architecture portability).

use crate::geomean;
use ctb_baselines::{magma_vbatch, simulate_baseline};
use ctb_batching::BatchingHeuristic;
use ctb_core::{BatchingPolicy, Framework, FrameworkConfig};
use ctb_gpu_specs::ArchSpec;
use ctb_matrix::gen;
use ctb_matrix::GemmShape;
use rayon::prelude::*;

/// One histogram bar of the Fig 8 / Fig 9 grids.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellResult {
    /// Batch size (histogram column).
    pub batch: usize,
    /// M = N (histogram row).
    pub mn: usize,
    /// K (histogram X axis, 16…2048 logarithmic).
    pub k: usize,
    /// MAGMA vbatch time in µs (the baseline of both figures).
    pub magma_us: f64,
    /// Our time in µs under the figure's configuration.
    pub ours_us: f64,
}

impl CellResult {
    /// Speedup over MAGMA — the bar the paper plots.
    pub fn speedup(&self) -> f64 {
        self.magma_us / self.ours_us
    }
}

fn grid_with(arch: &ArchSpec, policy: impl Fn() -> BatchingPolicy) -> Vec<CellResult> {
    let fw = Framework::with_config(
        arch.clone(),
        FrameworkConfig { batching: policy(), thresholds: None },
    );
    // Enumerate cells in the figure's row order, then evaluate them in
    // parallel; `map` + `collect` keeps results in enumeration order,
    // so the output is identical to the old serial triple loop.
    let mut params = Vec::new();
    for b in gen::fig_batch_sizes() {
        for mn in gen::fig_mn_sizes() {
            for k in gen::k_sweep() {
                params.push((b, mn, k));
            }
        }
    }
    params
        .into_par_iter()
        .map(|(b, mn, k)| {
            let shapes = gen::uniform_case(b, mn, mn, k);
            let magma_us = simulate_baseline(arch, &magma_vbatch(arch, &shapes)).total_us;
            let ours_us = fw.simulate_only(&shapes).expect("plannable").total_us;
            CellResult { batch: b, mn, k, magma_us, ours_us }
        })
        .collect()
}

/// Fig 8: the tiling engine alone (batching disabled — one tile per
/// block) against MAGMA vbatch, over the full grid.
pub fn fig8_grid(arch: &ArchSpec) -> Vec<CellResult> {
    grid_with(arch, || BatchingPolicy::Fixed(BatchingHeuristic::OneTilePerBlock))
}

/// Fig 9: the coordinated tiling + batching framework (best-of-both
/// heuristic selection, as the paper uses for fixed-size cases) against
/// MAGMA vbatch.
pub fn fig9_grid(arch: &ArchSpec) -> Vec<CellResult> {
    grid_with(arch, || BatchingPolicy::BestOfBoth)
}

/// Average (geometric mean) speedup over a set of cells.
pub fn mean_speedup(cells: &[CellResult]) -> f64 {
    geomean(&cells.iter().map(CellResult::speedup).collect::<Vec<_>>())
}

/// One device of Fig 11.
#[derive(Debug, Clone, PartialEq)]
pub struct PortabilityResult {
    pub arch_name: &'static str,
    /// Geometric-mean speedup of the framework over MAGMA on 100 random
    /// batched-GEMM cases.
    pub mean_speedup: f64,
    /// Per-case speedups (100 entries).
    pub speedups: Vec<f64>,
}

/// Fig 11: run `cases` random batched-GEMM cases on every non-V100
/// preset (the paper's Maxwell/Pascal portability experiment).
pub fn fig11_portability(cases: usize, seed: u64) -> Vec<PortabilityResult> {
    ArchSpec::fig11_presets()
        .into_iter()
        .map(|arch| portability_for(&arch, cases, seed))
        .collect()
}

/// The Fig 11 measurement for one device. Cases are drawn serially
/// (keeping the RNG stream, and thus the workloads, identical to the
/// serial version) and then simulated in parallel in case order.
pub fn portability_for(arch: &ArchSpec, cases: usize, seed: u64) -> PortabilityResult {
    let fw = Framework::new(arch.clone());
    let speedups: Vec<f64> = gen::random_cases(cases, seed)
        .into_par_iter()
        .map(|shapes| speedup_for_case(&fw, arch, &shapes))
        .collect();
    PortabilityResult { arch_name: arch.name, mean_speedup: geomean(&speedups), speedups }
}

fn speedup_for_case(fw: &Framework, arch: &ArchSpec, shapes: &[GemmShape]) -> f64 {
    let magma = simulate_baseline(arch, &magma_vbatch(arch, shapes)).total_us;
    let ours = fw.simulate_only(shapes).expect("plannable").total_us;
    magma / ours
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig9_average_speedup_is_in_the_paper_band() {
        // The paper reports 1.40x average for tiling+batching on V100.
        let arch = ArchSpec::volta_v100();
        let cells = fig9_grid(&arch);
        assert_eq!(cells.len(), 4 * 3 * 8);
        let mean = mean_speedup(&cells);
        assert!((1.15..=1.9).contains(&mean), "fig9 mean speedup {mean}");
    }

    #[test]
    fn fig8_average_is_positive_but_below_fig9() {
        // Tiling alone gives ~1.20x; adding batching must not hurt.
        let arch = ArchSpec::volta_v100();
        let f8 = mean_speedup(&fig8_grid(&arch));
        let f9 = mean_speedup(&fig9_grid(&arch));
        assert!(f8 > 1.0, "fig8 mean {f8}");
        assert!(f9 >= f8 * 0.98, "fig9 {f9} should not trail fig8 {f8}");
    }

    #[test]
    fn batching_gain_concentrates_at_small_k() {
        // Fig 9's second observation: when K is small, the batching
        // contribution is higher. Compare fig9/fig8 ratio at K=16
        // against K=2048.
        let arch = ArchSpec::volta_v100();
        let f8 = fig8_grid(&arch);
        let f9 = fig9_grid(&arch);
        let gain_at = |k: usize| {
            let a: Vec<f64> = f8
                .iter()
                .zip(&f9)
                .filter(|(c, _)| c.k == k)
                .map(|(c8, c9)| c9.speedup() / c8.speedup())
                .collect();
            geomean(&a)
        };
        let small_k = gain_at(16);
        let large_k = gain_at(2048);
        assert!(
            small_k >= large_k,
            "batching gain at K=16 ({small_k}) should exceed K=2048 ({large_k})"
        );
    }

    #[test]
    fn portability_holds_on_a_maxwell_part() {
        let arch = ArchSpec::maxwell_m60();
        let r = portability_for(&arch, 10, 42);
        assert!(r.mean_speedup > 1.0, "mean speedup {}", r.mean_speedup);
    }
}

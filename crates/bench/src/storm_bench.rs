//! `reproduce storm` — plan-cache admission under a distinct-shape storm.
//!
//! Drives the `ctb-serve` async front door with a closed-loop workload
//! drawn from a huge shape space (10^6 distinct signatures at the full
//! scale): a small hot set of repeated signatures carries half the
//! traffic, the rest are effectively one-off shapes. The same seeded
//! request streams run twice against two bounded plan caches of equal
//! total capacity:
//!
//! * **baseline** — one shard, admit-everything (every one-off shape is
//!   inserted and churns the FIFO, evicting hot entries), and
//! * **sharded** — 16 independently locked shards gated by the Bloom
//!   "seen twice" doorkeeper (one-off shapes are planned but never
//!   cached, so the hot set stays resident).
//!
//! Coalescing is disabled (`max_batch: 1`) so the cache key stream is
//! exactly the per-request shape stream — the point of this harness is
//! cache admission, not batching, and per-request keys make the two
//! arms directly comparable. Every served result is still verified
//! bitwise against the exact oracle. Full runs land in
//! `BENCH_storm.json` at the repository root (`--smoke` writes
//! `target/experiments/BENCH_storm_smoke.json` instead) and the
//! exported key set is diffed against `scripts/BENCH_storm.schema`.

use ctb_core::{AdmissionPolicy, Framework, PlanShare, PlanShareConfig, Session};
use ctb_gpu_specs::ArchSpec;
use ctb_matrix::{bitwise_mismatch, GemmBatch, GemmShape};
use ctb_serve::{GemmRequest, ServeConfig, Server};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Workload knobs; the same config (and therefore the same seeded
/// request streams) is replayed against both cache arms.
#[derive(Debug, Clone)]
pub struct StormBenchConfig {
    /// Closed-loop producer threads.
    pub producers: usize,
    /// Requests per producer.
    pub per_producer: usize,
    /// Size of the sampled shape space (distinct `MxNxK` signatures).
    pub shape_space: usize,
    /// Hot signatures that carry [`Self::hot_per_mille`] of the traffic.
    pub hot_shapes: usize,
    /// Per-mille of requests drawn from the hot set.
    pub hot_per_mille: u32,
    /// Total cached-plan capacity of each arm (split across shards in
    /// the sharded arm).
    pub capacity_total: usize,
    /// Shard count of the sharded arm.
    pub shards: usize,
    /// Stream seed (also salts the Bloom gate).
    pub seed: u64,
}

impl Default for StormBenchConfig {
    fn default() -> Self {
        StormBenchConfig {
            producers: 4,
            per_producer: 1_500,
            shape_space: 1_000_000,
            hot_shapes: 32,
            hot_per_mille: 500,
            capacity_total: 256,
            shards: 16,
            seed: 0x57_0F_A1,
        }
    }
}

impl StormBenchConfig {
    /// Scaled-down configuration for the CI gate: same storm structure
    /// (cold churn far exceeding the cache bound), two orders of
    /// magnitude fewer requests.
    pub fn smoke() -> Self {
        StormBenchConfig {
            producers: 2,
            per_producer: 150,
            hot_shapes: 8,
            capacity_total: 32,
            shards: 8,
            ..StormBenchConfig::default()
        }
    }
}

/// Service-level numbers for one cache arm.
#[derive(Debug, Clone)]
pub struct StormArm {
    /// Shards behind the plan cache.
    pub shards: usize,
    /// `"admit_all"` or `"seen_twice"`.
    pub admission: &'static str,
    /// Plan-cache hits over the run.
    pub plan_cache_hits: usize,
    /// Plan-cache misses (distinct signatures + churn re-plans).
    pub plan_cache_misses: usize,
    /// hits / (hits + misses).
    pub hit_rate: f64,
    /// Insert attempts the admission gate let through.
    pub admitted: usize,
    /// Insert attempts denied (first sightings under "seen twice").
    pub denied: usize,
    /// Doorkeeper tag slots overwritten by colliding keys.
    pub evicted_tags: usize,
    /// End-to-end wall time of the closed loop.
    pub wall_ms: f64,
    /// Completed requests per second.
    pub throughput_rps: f64,
    /// Median request latency, µs.
    pub p50_us: f64,
    /// 95th-percentile request latency, µs.
    pub p95_us: f64,
}

/// The tracked report: one workload, two cache arms.
#[derive(Debug, Clone)]
pub struct StormBenchReport {
    pub cfg: StormBenchConfig,
    /// Requests completed per arm (`producers * per_producer`).
    pub requests: usize,
    /// One shard, admit-all.
    pub baseline: StormArm,
    /// Sharded, Bloom "seen twice".
    pub sharded: StormArm,
}

/// SplitMix64 — the stream generator; one independent stream per
/// producer so both arms replay identical request sequences.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Map an index of the shape space to a distinct small signature
/// (`M`, `N`, `K` each in `1..=100`, so a space of 100^3 = 10^6).
fn shape_at(index: usize) -> GemmShape {
    GemmShape::new(1 + index % 100, 1 + (index / 100) % 100, 1 + (index / 10_000) % 100)
}

/// The `i`-th request of producer `t`: hot with probability
/// `hot_per_mille`, otherwise a uniform draw from the shape space.
fn request_shape(cfg: &StormBenchConfig, t: usize, i: usize) -> GemmShape {
    let mut state = cfg.seed ^ ((t as u64) << 32) ^ i as u64;
    let roll = splitmix64(&mut state);
    if (roll % 1000) < cfg.hot_per_mille as u64 {
        // Hot set: spread through the space so shards share the load.
        let hot = splitmix64(&mut state) as usize % cfg.hot_shapes;
        shape_at(hot * (cfg.shape_space / cfg.hot_shapes))
    } else {
        shape_at(splitmix64(&mut state) as usize % cfg.shape_space)
    }
}

/// Run the storm once against a cache built from `share_cfg`; every
/// request flows through the async front door and is verified bitwise
/// against the exact oracle.
fn run_arm(arch: &ArchSpec, cfg: &StormBenchConfig, share_cfg: PlanShareConfig) -> StormArm {
    let share = Arc::new(PlanShare::with_config(share_cfg));
    let session = Arc::new(Session::with_share(Framework::new(arch.clone()), share));
    let server = Arc::new(Server::with_session(
        session,
        ServeConfig {
            max_batch: 1,
            batch_window: Duration::from_micros(50),
            queue_capacity: 64,
            workers: 2,
            ..ServeConfig::default()
        },
    ));

    let t0 = Instant::now();
    let handles: Vec<_> = (0..cfg.producers)
        .map(|t| {
            let server = Arc::clone(&server);
            let cfg = cfg.clone();
            std::thread::spawn(move || {
                let front = server.front();
                for i in 0..cfg.per_producer {
                    let shape = request_shape(&cfg, t, i);
                    let seed = (t * 1_000_000 + i) as u64;
                    let batch = GemmBatch::random(&[shape], 1.0, 0.5, seed);
                    let expected = batch.reference_result_exact();
                    let got = front
                        .try_submit(GemmRequest {
                            a: batch.a[0].clone(),
                            b: batch.b[0].clone(),
                            c: batch.c[0].clone(),
                            alpha: batch.alpha,
                            beta: batch.beta,
                            deadline: None,
                        })
                        .expect("storm submit admitted")
                        .wait()
                        .expect("storm request completed");
                    assert!(
                        bitwise_mismatch(&expected, std::slice::from_ref(&got.c)).is_none(),
                        "producer {t} request {i}: served result diverged from oracle"
                    );
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("producer thread panicked");
    }
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;

    let server = Arc::into_inner(server).expect("all producers joined");
    let stats = server.shutdown();
    let requests = cfg.producers * cfg.per_producer;
    assert_eq!(stats.completed, requests, "the storm completed everything it submitted");

    StormArm {
        shards: stats.plan_shards,
        admission: match share_cfg.admission {
            AdmissionPolicy::AdmitAll => "admit_all",
            AdmissionPolicy::SeenTwice { .. } => "seen_twice",
        },
        plan_cache_hits: stats.plan_cache.hits,
        plan_cache_misses: stats.plan_cache.misses,
        hit_rate: stats.plan_cache.hit_rate(),
        admitted: stats.cache_admission.admitted,
        denied: stats.cache_admission.denied,
        evicted_tags: stats.cache_admission.evicted_tags,
        wall_ms,
        throughput_rps: requests as f64 / (wall_ms / 1e3),
        p50_us: stats.p50_us,
        p95_us: stats.p95_us,
    }
}

/// Run both arms over the identical seeded streams.
pub fn run_storm_bench(arch: &ArchSpec, cfg: &StormBenchConfig) -> StormBenchReport {
    let baseline = run_arm(
        arch,
        cfg,
        PlanShareConfig {
            shards: 1,
            capacity_per_shard: Some(cfg.capacity_total),
            admission: AdmissionPolicy::AdmitAll,
        },
    );
    let sharded = run_arm(
        arch,
        cfg,
        PlanShareConfig {
            shards: cfg.shards,
            capacity_per_shard: Some(cfg.capacity_total.div_ceil(cfg.shards)),
            admission: AdmissionPolicy::SeenTwice { seed: cfg.seed, slots_log2: 12 },
        },
    );
    StormBenchReport {
        cfg: cfg.clone(),
        requests: cfg.producers * cfg.per_producer,
        baseline,
        sharded,
    }
}

fn render_arm(out: &mut String, label: &str, a: &StormArm, last: bool) {
    out.push_str(&format!(
        "  \"{label}\": {{\n    \"shards\": {},\n    \"admission\": \"{}\",\n    \
         \"plan_cache_hits\": {},\n    \"plan_cache_misses\": {},\n    \
         \"hit_rate\": {:.4},\n    \"admitted\": {},\n    \"denied\": {},\n    \
         \"evicted_tags\": {},\n    \"wall_ms\": {:.3},\n    \"throughput_rps\": {:.1},\n    \
         \"p50_us\": {:.1},\n    \"p95_us\": {:.1}\n  }}{}\n",
        a.shards,
        a.admission,
        a.plan_cache_hits,
        a.plan_cache_misses,
        a.hit_rate,
        a.admitted,
        a.denied,
        a.evicted_tags,
        a.wall_ms,
        a.throughput_rps,
        a.p50_us,
        a.p95_us,
        if last { "" } else { "," }
    ));
}

/// Serialize the report as the tracked JSON schema.
pub fn render_json(arch: &ArchSpec, r: &StormBenchReport) -> String {
    let mut out = format!(
        "{{\n  \"bench\": \"storm\",\n  \"arch\": \"{}\",\n  \"producers\": {},\n  \
         \"requests\": {},\n  \"shape_space\": {},\n  \"hot_shapes\": {},\n  \
         \"capacity_total\": {},\n",
        arch.name, r.cfg.producers, r.requests, r.cfg.shape_space, r.cfg.hot_shapes,
        r.cfg.capacity_total
    );
    render_arm(&mut out, "baseline", &r.baseline, false);
    render_arm(&mut out, "sharded", &r.sharded, true);
    out.push_str("}\n");
    out
}

/// Path of the tracked report at the repo root.
pub fn report_path() -> PathBuf {
    crate::bench_json_path("storm")
}

/// Path of the checked-in golden schema the gate diffs against.
pub fn golden_schema_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../scripts/BENCH_storm.schema")
}

/// Run the full tracked configuration and write `BENCH_storm.json`.
pub fn run_and_write(arch: &ArchSpec) -> (StormBenchReport, PathBuf) {
    let report = run_storm_bench(arch, &StormBenchConfig::default());
    let path = crate::write_bench_json("storm", &render_json(arch, &report));
    (report, path)
}

/// Run the smoke configuration and write
/// `target/experiments/BENCH_storm_smoke.json`, leaving the tracked
/// root report to full runs only.
pub fn run_and_write_smoke(arch: &ArchSpec) -> (StormBenchReport, PathBuf) {
    let report = run_storm_bench(arch, &StormBenchConfig::smoke());
    let path = crate::experiments_dir().join("BENCH_storm_smoke.json");
    std::fs::write(&path, render_json(arch, &report)).expect("write BENCH_storm_smoke.json");
    (report, path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_and_mostly_distinct() {
        let cfg = StormBenchConfig::smoke();
        let a: Vec<GemmShape> = (0..50).map(|i| request_shape(&cfg, 1, i)).collect();
        let b: Vec<GemmShape> = (0..50).map(|i| request_shape(&cfg, 1, i)).collect();
        assert_eq!(a, b, "streams are a pure function of (seed, producer, index)");
        let distinct: std::collections::HashSet<String> =
            a.iter().map(|s| s.to_string()).collect();
        assert!(distinct.len() > 10, "a storm draws many distinct shapes, got {}", distinct.len());
    }

    #[test]
    fn shape_space_is_injective_over_the_first_million() {
        let mut seen = std::collections::HashSet::new();
        for index in (0..1_000_000).step_by(997) {
            assert!(seen.insert(shape_at(index).to_string()), "index {index} collides");
        }
        assert_eq!(shape_at(0), GemmShape::new(1, 1, 1));
        assert_eq!(shape_at(999_999), GemmShape::new(100, 100, 100));
    }

    #[test]
    fn tiny_storm_reports_sane_numbers_per_arm() {
        let cfg = StormBenchConfig {
            producers: 2,
            per_producer: 20,
            hot_shapes: 4,
            capacity_total: 8,
            shards: 4,
            ..StormBenchConfig::default()
        };
        let r = run_storm_bench(&ArchSpec::volta_v100(), &cfg);
        assert_eq!(r.requests, 40);
        assert_eq!(r.baseline.shards, 1);
        assert_eq!(r.sharded.shards, 4);
        assert_eq!(r.baseline.admission, "admit_all");
        assert_eq!(r.sharded.admission, "seen_twice");
        assert_eq!(r.baseline.denied, 0, "admit-all never denies");
        assert!(r.sharded.denied > 0, "one-off shapes are denied by the doorkeeper");
        for a in [&r.baseline, &r.sharded] {
            assert_eq!(a.plan_cache_hits + a.plan_cache_misses, 40);
            assert!((0.0..=1.0).contains(&a.hit_rate));
            assert!(a.p95_us >= a.p50_us);
        }
    }

    #[test]
    fn json_schema_has_stable_keys() {
        let arm = StormArm {
            shards: 1,
            admission: "admit_all",
            plan_cache_hits: 0,
            plan_cache_misses: 0,
            hit_rate: 0.0,
            admitted: 0,
            denied: 0,
            evicted_tags: 0,
            wall_ms: 0.0,
            throughput_rps: 0.0,
            p50_us: 0.0,
            p95_us: 0.0,
        };
        let r = StormBenchReport {
            cfg: StormBenchConfig::default(),
            requests: 0,
            baseline: arm.clone(),
            sharded: arm,
        };
        let json = render_json(&ArchSpec::volta_v100(), &r);
        let golden = std::fs::read_to_string(golden_schema_path())
            .expect("golden schema checked in");
        let golden: Vec<String> = golden.lines().map(str::to_string).collect();
        assert_eq!(
            crate::obs_bench::key_paths(&json),
            golden,
            "BENCH_storm.json schema drifted; update scripts/BENCH_storm.schema deliberately"
        );
    }

    #[test]
    fn report_path_is_the_repo_root() {
        let p = report_path();
        assert!(p.ends_with("BENCH_storm.json"));
        assert!(p.parent().unwrap().join("Cargo.toml").exists());
    }
}

//! Regenerate every table and figure of the paper.
//!
//! ```text
//! cargo run -p ctb-bench --bin reproduce --release -- all
//! cargo run -p ctb-bench --bin reproduce --release -- fig9
//! ```
//!
//! Run `reproduce --help` (or any unknown sub-command) for the full
//! listing. Paper experiments (`tables`, `motivation`, `fig8`, `fig9`,
//! `fig10`, `googlenet`, `fig11`, `tlp`, `ablate`, `fans`, `splitk`)
//! print the paper's row/series layout and mirror CSV under
//! `target/experiments/`; the serving harnesses (`perf`, `serve`,
//! `chaos`, `cluster`, `obs`, `replay`, `storm`, `calibrate`,
//! `locality`)
//! additionally write a tracked `BENCH_<name>.json` at the repository
//! root, and those with a checked-in golden schema diff the exported
//! key set against `scripts/BENCH_<name>.schema` and fail on drift.

use ctb_bench::figures::{fig11_portability, fig8_grid, fig9_grid, mean_speedup, CellResult};
use ctb_bench::{ablations, calibrate, fans, googlenet_exp, motivation, tables, write_csv};
use ctb_gpu_specs::{ArchSpec, Thresholds};

/// The complete sub-command and flag listing — printed by `--help` and
/// on any unknown sub-command or flag, so every entry point is
/// discoverable from the binary itself.
fn usage() -> &'static str {
    "usage: reproduce [SUBCOMMAND] [FLAGS]   (default: all)

paper experiments (print the paper's layout; CSV under target/experiments/):
  tables              Tables 1-2 and the 4.2.3 worked example
  motivation          single-GEMM efficiency rows (paper 1)
  fig8                tiling engine vs MAGMA vbatch grid
  fig9                coordinated tiling + batching vs MAGMA vbatch grid
  fig10               GoogleNet inception-layer speedups
  googlenet           GoogleNet end-to-end inference (paper 7.3)
  fig11               sensitivity across GPU architectures
  tlp                 offline TLP-threshold calibration sweep (papers 4.2.3 / 7)
  ablate              DESIGN.md design-choice ablations
  fans                SqueezeNet / ResNet / backward fan extensions
  splitk              split-K extension on TLP-starved large-K GEMMs
  plan <MxNxK,...>    explain tiling/batching decisions for a shape list
  custom <file>       run every executor on a workload file (M,N,K per line)
  all                 every paper experiment above (not the harnesses)

serving harnesses (write BENCH_<name>.json at the repo root; those with a
checked-in scripts/BENCH_<name>.schema also gate on schema drift):
  perf                executor / reference / autotune / fig9-grid timings
  serve               4-producer closed loop through ctb-serve
  chaos               fault-rate sweep over the resilience layer
  cluster             threaded scaling + kill run + discrete-event sweep
      --batches N --devices a,b,c --seed S --event-devices a,b,c
      --requests R --smoke
  obs                 instrumented serve loop + trace audit
  replay              record a seeded panic storm, re-run + crash/restore
      --requests N --seed S --panics PER_MILLE --smoke
  storm               distinct-shape storm vs two plan-cache arms
      --smoke
  calibrate           closed loop: record drifted trace -> fit corrections ->
                      retrain selector -> hot-swap replay (gates on strictly
                      lower placement error)
      --devices N --requests N --seed S --drift-seed S --smoke
  locality            locality-aware vs locality-blind placement on a drifted
                      multi-chiplet pool (gates on strictly less remote
                      operand traffic)
      --devices N --requests N --seed S --drift-seed S --smoke

flags: --help | -h | help    print this listing
"
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let what = args.first().map(String::as_str).unwrap_or("all");
    let arch = ArchSpec::volta_v100();
    match what {
        "--help" | "-h" | "help" => print!("{}", usage()),
        "tables" => run_tables(),
        "motivation" => run_motivation(&arch),
        "fig8" => run_grid(&arch, 8),
        "fig9" => run_grid(&arch, 9),
        "fig10" => run_fig10(&arch),
        "googlenet" => run_googlenet(&arch),
        "fig11" => run_fig11(),
        "tlp" => run_tlp_calibrate(),
        "ablate" => run_ablations(&arch),
        "plan" => run_plan_explain(&arch, args.get(1).map(String::as_str)),
        "custom" => run_custom(&arch, args.get(1).map(String::as_str)),
        "fans" => run_fans(&arch),
        "splitk" => run_splitk_demo(&arch),
        "perf" => run_perf(&arch),
        "serve" => run_serve(&arch),
        "chaos" => run_chaos(&arch),
        "cluster" => run_cluster(&args[1..]),
        "obs" => run_obs(&arch),
        "replay" => run_replay(&args[1..]),
        "storm" => run_storm(&arch, &args[1..]),
        "calibrate" => run_calibrate_loop(&args[1..]),
        "locality" => run_locality(&args[1..]),
        "all" => {
            run_tables();
            run_motivation(&arch);
            run_grid(&arch, 8);
            run_grid(&arch, 9);
            run_fig10(&arch);
            run_googlenet(&arch);
            run_fig11();
            run_tlp_calibrate();
            run_ablations(&arch);
            run_fans(&arch);
            run_splitk_demo(&arch);
        }
        other => {
            eprintln!("unknown experiment '{other}'\n\n{}", usage());
            std::process::exit(2);
        }
    }
}

/// Parse `--flag value` pairs for the calibration loop.
fn calibrate_config(args: &[String]) -> (ctb_bench::calib_bench::CalibBenchConfig, bool) {
    use ctb_bench::calib_bench::CalibBenchConfig;
    let mut cfg = CalibBenchConfig::default();
    let mut smoke = false;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| {
                    eprintln!("flag {name} needs a value");
                    std::process::exit(2);
                })
                .as_str()
        };
        match flag.as_str() {
            "--devices" => cfg.devices = value("--devices").parse().expect("usize devices"),
            "--requests" => cfg.requests = value("--requests").parse().expect("usize requests"),
            "--seed" => cfg.seed = value("--seed").parse().expect("u64 seed"),
            "--drift-seed" => {
                cfg.drift_seed = value("--drift-seed").parse().expect("u64 drift seed");
            }
            "--smoke" => smoke = true,
            other => {
                eprintln!(
                    "unknown calibrate flag '{other}'; expected --devices N, --requests N, \
                     --seed S, --drift-seed S, --smoke"
                );
                std::process::exit(2);
            }
        }
    }
    if smoke {
        cfg = CalibBenchConfig::smoke();
    }
    (cfg, smoke)
}

fn run_calibrate_loop(args: &[String]) {
    use ctb_bench::calib_bench;
    let (cfg, smoke) = calibrate_config(args);
    println!(
        "== calibration loop: record drifted trace -> fit -> retrain -> hot-swap replay{} ==",
        if smoke { " (smoke)" } else { "" }
    );
    let (r, path) = if smoke {
        calib_bench::run_and_write_smoke()
    } else {
        calib_bench::run_and_write(&cfg)
    };
    println!(
        "   record: {} decisions over {} devices (drift seed {}) | mean placement err {:.3} us | \
         {} witness mismatches",
        r.record.decisions, r.cfg.devices, r.cfg.drift_seed, r.record.mean_abs_err_us,
        r.record.witness_mismatches
    );
    println!(
        "   fit: {} arches ({} corrected) from {} cases | in-sample err {:.3} -> {:.3} us",
        r.fit_arches, r.fit_corrected, r.fit_cases, r.fit_err_before_us, r.fit_err_after_us
    );
    println!(
        "   retrain: {} | {} signatures, {} label flips | regret {:.3} -> {:.3} us | \
         forest {} trees / {} nodes / depth {} -> {} trees / {} nodes / depth {}",
        if r.retrain_accepted { "accepted" } else { "rejected (baseline kept)" },
        r.retrain_signatures,
        r.retrain_label_flips,
        r.regret_before_us,
        r.regret_after_us,
        r.forest_before.trees,
        r.forest_before.total_nodes,
        r.forest_before.max_depth,
        r.forest_after.trees,
        r.forest_after.total_nodes,
        r.forest_after.max_depth
    );
    println!("   profile: v{} blob, {} bytes, byte-stable round-trip", 1, r.profile_bytes);
    println!(
        "   replay: mean placement err {:.3} us ({:+.1}% vs record) | swap arm: epoch {} \
         installed mid-run, {} completed, {} dropped",
        r.replay.mean_abs_err_us,
        -r.err_reduction_pct(),
        r.swap_version,
        r.swap_completed,
        r.swap_dropped
    );
    println!("(json: {})", path.display());
    if r.replay.mean_abs_err_us >= r.record.mean_abs_err_us {
        eprintln!(
            "calibration regression: replay error {:.4} us did not fall below the recorded \
             {:.4} us",
            r.replay.mean_abs_err_us, r.record.mean_abs_err_us
        );
        std::process::exit(1);
    }
    if r.swap_dropped > 0 || r.record.witness_mismatches + r.replay.witness_mismatches > 0 {
        eprintln!(
            "calibration regression: {} dropped in the swap arm, {} witness mismatches",
            r.swap_dropped,
            r.record.witness_mismatches + r.replay.witness_mismatches
        );
        std::process::exit(1);
    }
    schema_gate("BENCH_calibrate.json", &calib_bench::golden_schema_path(), &path);
}

/// Parse `--flag value` pairs for the locality differential.
fn locality_config(args: &[String]) -> (ctb_bench::locality_bench::LocalityBenchConfig, bool) {
    use ctb_bench::locality_bench::LocalityBenchConfig;
    let mut cfg = LocalityBenchConfig::default();
    let mut smoke = false;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| {
                    eprintln!("flag {name} needs a value");
                    std::process::exit(2);
                })
                .as_str()
        };
        match flag.as_str() {
            "--devices" => cfg.devices = value("--devices").parse().expect("usize devices"),
            "--requests" => cfg.requests = value("--requests").parse().expect("usize requests"),
            "--seed" => cfg.seed = value("--seed").parse().expect("u64 seed"),
            "--drift-seed" => {
                cfg.drift_seed = value("--drift-seed").parse().expect("u64 drift seed");
            }
            "--smoke" => smoke = true,
            other => {
                eprintln!(
                    "unknown locality flag '{other}'; expected --devices N, --requests N, \
                     --seed S, --drift-seed S, --smoke"
                );
                std::process::exit(2);
            }
        }
    }
    if smoke {
        cfg = LocalityBenchConfig::smoke();
    }
    (cfg, smoke)
}

fn run_locality(args: &[String]) {
    use ctb_bench::locality_bench;
    let (cfg, smoke) = locality_config(args);
    println!(
        "== locality differential: aware vs blind placement on a drifted multi-chiplet pool{} ==",
        if smoke { " (smoke)" } else { "" }
    );
    let (r, path) = if smoke {
        locality_bench::run_and_write_smoke()
    } else {
        locality_bench::run_and_write(&cfg)
    };
    println!(
        "   pool: {} x MCM-GPU 4-die (drift seed {}) | {} requests (seed {:#x})",
        r.cfg.devices, r.cfg.drift_seed, r.cfg.requests, r.cfg.seed
    );
    for (label, a) in [("aware", &r.aware), ("blind", &r.blind)] {
        println!(
            "   {label}: {} completed | {} landings ({} hits / {} misses, hit rate {:>5.1}%) | \
             {:>12} remote bytes | makespan {:>12.1} sim us | {} witness mismatches",
            a.completed,
            a.routed + a.steals,
            a.residency_hits,
            a.residency_misses,
            100.0 * a.hit_rate(),
            a.remote_operand_bytes,
            a.makespan_sim_us,
            a.witness_mismatches
        );
    }
    println!(
        "   aware vs blind: {:.1}% fewer remote placements | {:.1}% less interposer traffic",
        r.miss_reduction_pct(),
        r.remote_bytes_reduction_pct()
    );
    println!("(json: {})", path.display());
    if !r.gate_passed() {
        eprintln!(
            "locality regression: aware arm must strictly reduce remote traffic with exact \
             results (misses {} vs {}, bytes {} vs {}, mismatches {}+{})",
            r.aware.residency_misses,
            r.blind.residency_misses,
            r.aware.remote_operand_bytes,
            r.blind.remote_operand_bytes,
            r.aware.witness_mismatches,
            r.blind.witness_mismatches
        );
        std::process::exit(1);
    }
    schema_gate("BENCH_locality.json", &locality_bench::golden_schema_path(), &path);
}

fn run_perf(arch: &ArchSpec) {
    use ctb_bench::perf;
    println!("== perf harness: executor / reference / autotune / fig9 grid ({}) ==", arch.name);
    let (entries, path) = perf::run_and_write(arch);
    for e in &entries {
        println!(
            "   {:<40} {:>10.2} ms   ({} evaluated, {} cache hits)",
            e.workload, e.wall_ms, e.evaluated, e.cache_hits
        );
    }
    let packed = entries.iter().find(|e| e.workload.starts_with("execute_plan_packed"));
    let unpacked = entries.iter().find(|e| e.workload.starts_with("execute_plan_unpacked"));
    if let (Some(p), Some(u)) = (packed, unpacked) {
        println!("   packed executor speedup over unpacked baseline: {:.2}x", u.wall_ms / p.wall_ms);
    }
    println!("(json: {})\n", path.display());
}

fn run_serve(arch: &ArchSpec) {
    use ctb_bench::serve_bench;
    println!("== serve harness: 4-producer closed loop through ctb-serve ({}) ==", arch.name);
    let (r, path) = serve_bench::run_and_write(arch);
    println!(
        "   {} requests in {:.1} ms -> {:.0} req/s",
        r.requests, r.wall_ms, r.throughput_rps
    );
    println!(
        "   {} batches (mean batch size {:.2}) | plan-cache hit rate {:.1}% | \
         sim-memo hit rate {:.1}%",
        r.batches,
        r.mean_batch_size,
        100.0 * r.plan_cache_hit_rate,
        100.0 * r.sim_memo_hit_rate
    );
    println!("   latency p50 {:.0} us, p95 {:.0} us", r.p50_us, r.p95_us);
    println!("(json: {})\n", path.display());
}

fn run_chaos(arch: &ArchSpec) {
    use ctb_bench::chaos_bench;
    println!(
        "== chaos harness: fault-rate sweep over the resilience layer ({}) ==",
        arch.name
    );
    let (points, path) = chaos_bench::run_and_write(arch);
    for p in &points {
        println!(
            "   fault rate {:>4}‰ | {:>5.1}% degraded | {:>3} retries | {:>3} panics caught | \
             {:>2} breaker trips | p95 {:>7.0} us | {:>6.0} req/s",
            p.fault_per_mille,
            100.0 * p.degraded_fraction,
            p.retries,
            p.worker_panics,
            p.breaker_trips,
            p.p95_us,
            p.throughput_rps
        );
    }
    println!("(json: {})\n", path.display());
}

fn run_obs(arch: &ArchSpec) {
    use ctb_bench::obs_bench;
    println!("== obs harness: instrumented serve closed loop + trace audit ({}) ==", arch.name);
    let (r, path) = obs_bench::run_and_write(arch);
    println!(
        "   {} requests -> {} events ({} spans) in {:.1} ms | {} flight dumps",
        r.requests,
        r.events,
        r.counts.spans.values().sum::<usize>(),
        r.wall_ms,
        r.flight_dumps
    );
    println!(
        "   trace audit: {} admits, {} terminals, {} batches (mean size {:.2}) — reconciled ==",
        r.counts.admits,
        r.counts.terminals(),
        r.counts.batches,
        if r.counts.batches > 0 {
            r.counts.batch_members as f64 / r.counts.batches as f64
        } else {
            0.0
        }
    );
    println!("(json: {})", path.display());
    schema_gate("BENCH_obs.json", &obs_bench::golden_schema_path(), &path);
}

/// Schema-drift gate shared by the JSON-writing harnesses: the exported
/// key set must match the checked-in golden schema exactly; a drift is
/// a deliberate, reviewed change.
fn schema_gate(label: &str, golden_path: &std::path::Path, json_path: &std::path::Path) {
    let golden = std::fs::read_to_string(golden_path)
        .unwrap_or_else(|e| panic!("cannot read golden schema {}: {e}", golden_path.display()));
    let golden: Vec<String> = golden.lines().map(str::to_string).collect();
    let json = std::fs::read_to_string(json_path).expect("re-read the report just written");
    let got = ctb_bench::obs_bench::key_paths(&json);
    if got != golden {
        eprintln!("{label} schema drift detected:");
        for g in &golden {
            if !got.contains(g) {
                eprintln!("   missing key: {g}");
            }
        }
        for g in &got {
            if !golden.contains(g) {
                eprintln!("   unexpected key: {g}");
            }
        }
        eprintln!("update {} deliberately if this is intended", golden_path.display());
        std::process::exit(1);
    }
    println!("   schema gate: {} key paths match {}\n", got.len(), golden_path.display());
}

/// Parse `--flag value` pairs for the cluster harness. Unknown flags
/// are an error so typos don't silently run the default sweep.
fn cluster_config(args: &[String]) -> (ctb_bench::cluster_bench::ClusterBenchConfig, bool) {
    use ctb_bench::cluster_bench::ClusterBenchConfig;
    let mut cfg = ClusterBenchConfig::default();
    let mut smoke = false;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| {
                    eprintln!("flag {name} needs a value");
                    std::process::exit(2);
                })
                .as_str()
        };
        let parse_list = |name: &str, v: &str| -> Vec<usize> {
            v.split(',')
                .map(|d| {
                    d.trim().parse().unwrap_or_else(|_| {
                        eprintln!("bad device count '{d}' for {name}");
                        std::process::exit(2);
                    })
                })
                .collect()
        };
        match flag.as_str() {
            "--batches" => cfg.batches = value("--batches").parse().expect("usize batches"),
            "--devices" => cfg.devices = parse_list("--devices", value("--devices")),
            "--seed" => cfg.seed = value("--seed").parse().expect("u64 seed"),
            "--event-devices" => {
                cfg.event_devices = parse_list("--event-devices", value("--event-devices"));
            }
            "--requests" => {
                cfg.event_requests = value("--requests").parse().expect("usize requests");
            }
            "--smoke" => smoke = true,
            other => {
                eprintln!(
                    "unknown cluster flag '{other}'; expected --batches N, --devices a,b,c, \
                     --seed S, --event-devices a,b,c, --requests R, --smoke"
                );
                std::process::exit(2);
            }
        }
    }
    if smoke {
        cfg = ClusterBenchConfig::smoke();
    }
    (cfg, smoke)
}

fn run_cluster(args: &[String]) {
    use ctb_bench::cluster_bench;
    let (cfg, smoke) = cluster_config(args);
    println!(
        "== cluster harness: threaded scaling + kill run + discrete-event sweep{} ==",
        if smoke { " (smoke)" } else { "" }
    );
    let (r, path) = if smoke {
        cluster_bench::run_and_write_smoke()
    } else {
        cluster_bench::run_and_write(&cfg)
    };
    for p in &r.scaling {
        println!(
            "   {} device(s) [{}]: makespan {:>9.1} sim us | {:>8.1} GFLOPS | \
             {:.2}x vs best single | placement err {:.3} us",
            p.devices,
            p.device_names.join(", "),
            p.makespan_sim_us,
            p.throughput_gflops,
            p.speedup_vs_single,
            p.mean_abs_placement_err_us
        );
    }
    let k = &r.kill_run;
    println!(
        "   kill run: {}/{} completed | {} kill | {} re-routed | {} degraded | bitwise exact: {}",
        k.completed, k.batches, k.kills, k.reroutes, k.degraded, k.bitwise_exact
    );
    for p in &r.event_scaling {
        println!(
            "   event engine {:>6} device(s): {:>8} requests | makespan {:>12.1} sim us | \
             {:>9.0} events/s | util {:.2} | placement err {:.3} us | {} witnesses ({} mismatches)",
            p.devices,
            p.requests,
            p.makespan_sim_us,
            p.events_per_sec,
            p.mean_utilization,
            p.mean_abs_placement_err_us,
            p.witnesses,
            p.witness_mismatches
        );
    }
    println!("(json: {})", path.display());
    schema_gate("BENCH_cluster.json", &cluster_bench::golden_schema_path(), &path);
}

/// Parse `--flag value` pairs for the replay harness.
fn replay_config(args: &[String]) -> (ctb_bench::replay_bench::ReplayBenchConfig, bool) {
    use ctb_bench::replay_bench::ReplayBenchConfig;
    let mut cfg = ReplayBenchConfig::default();
    let mut smoke = false;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| {
                    eprintln!("flag {name} needs a value");
                    std::process::exit(2);
                })
                .as_str()
        };
        match flag.as_str() {
            "--requests" => cfg.requests = value("--requests").parse().expect("usize requests"),
            "--seed" => cfg.seed = value("--seed").parse().expect("u64 seed"),
            "--panics" => {
                cfg.exec_panic_per_mille = value("--panics").parse().expect("u32 per-mille");
            }
            "--smoke" => smoke = true,
            other => {
                eprintln!(
                    "unknown replay flag '{other}'; expected --requests N, --seed S, \
                     --panics PER_MILLE, --smoke"
                );
                std::process::exit(2);
            }
        }
    }
    if smoke {
        cfg = ReplayBenchConfig::smoke();
    }
    (cfg, smoke)
}

fn run_replay(args: &[String]) {
    use ctb_bench::replay_bench;
    let (cfg, smoke) = replay_config(args);
    println!(
        "== replay harness: record a seeded panic storm, re-run + crash/restore it exactly{} ==",
        if smoke { " (smoke)" } else { "" }
    );
    let (r, path) = if smoke {
        replay_bench::run_and_write_smoke()
    } else {
        replay_bench::run_and_write(&cfg)
    };
    println!(
        "   recorded: {} requests (seed {:#x}, {}‰ exec panics) -> {} events | \
         {} completed, {} failed | {} panics caught, {} breaker trips",
        r.cfg.requests,
        r.cfg.seed,
        r.cfg.exec_panic_per_mille,
        r.recorded.events_processed,
        r.recorded.completed,
        r.recorded.failed,
        r.recorded.worker_panics,
        r.recorded.breaker_trips
    );
    println!(
        "   flight recorder: {} dumps ({} events) | trace {} bytes",
        r.recorded.flight_dumps, r.recorded.dump_events, r.recorded.trace_bytes
    );
    println!(
        "   re-run from scratch identical: {} | crash at event {} ({} byte checkpoint), \
         resume identical: {}",
        r.replay.rerun_identical,
        r.replay.resume_offset,
        r.replay.checkpoint_bytes,
        r.replay.resume_identical
    );
    println!("(json: {})", path.display());
    if !r.replay.rerun_identical || !r.replay.resume_identical {
        eprintln!("replay divergence: the recorded failure did not re-execute identically");
        std::process::exit(1);
    }
    schema_gate("BENCH_replay.json", &replay_bench::golden_schema_path(), &path);
}

fn run_storm(arch: &ArchSpec, args: &[String]) {
    use ctb_bench::storm_bench;
    let smoke = match args {
        [] => false,
        [flag] if flag == "--smoke" => true,
        _ => {
            eprintln!("unknown storm flags {args:?}; expected at most --smoke");
            std::process::exit(2);
        }
    };
    println!(
        "== storm harness: distinct-shape storm vs two plan-cache arms{} ==",
        if smoke { " (smoke)" } else { "" }
    );
    let (r, path) = if smoke {
        storm_bench::run_and_write_smoke(arch)
    } else {
        storm_bench::run_and_write(arch)
    };
    println!(
        "   {} requests over a {}-signature space ({} hot shapes, cache bound {})",
        r.requests, r.cfg.shape_space, r.cfg.hot_shapes, r.cfg.capacity_total
    );
    for (label, a) in [("baseline", &r.baseline), ("sharded ", &r.sharded)] {
        println!(
            "   {label}: {} shard(s) {:<10} | hit rate {:>5.1}% ({} hits / {} misses) | \
             {} denied | p50 {:>7.0} us | p95 {:>7.0} us | {:>6.0} req/s",
            a.shards,
            a.admission,
            100.0 * a.hit_rate,
            a.plan_cache_hits,
            a.plan_cache_misses,
            a.denied,
            a.p50_us,
            a.p95_us,
            a.throughput_rps
        );
    }
    println!(
        "   sharded vs baseline: hit rate {:+.1} pp | p95 {:.2}x",
        100.0 * (r.sharded.hit_rate - r.baseline.hit_rate),
        if r.sharded.p95_us > 0.0 { r.baseline.p95_us / r.sharded.p95_us } else { 0.0 }
    );
    println!("(json: {})", path.display());
    if r.sharded.hit_rate < r.baseline.hit_rate {
        eprintln!(
            "storm regression: sharded+Bloom hit rate {:.4} fell below the unsharded \
             baseline {:.4}",
            r.sharded.hit_rate, r.baseline.hit_rate
        );
        std::process::exit(1);
    }
    schema_gate("BENCH_storm.json", &storm_bench::golden_schema_path(), &path);
}

fn run_tables() {
    println!("== Table 1: tiling strategies for the single-GEMM scenario ==");
    print!("{}", tables::table1());
    println!("\n== Table 2: tiling strategies for the batched-GEMM scenario ==");
    print!("{}", tables::table2());
    println!("\n== 4.2.3 worked example ==");
    print!("{}", tables::worked_example());
    println!();
}

fn run_motivation(arch: &ArchSpec) {
    println!("== Motivation (paper 1): single-GEMM efficiency on {} ==", arch.name);
    let rows = motivation::motivation_rows(arch);
    let mut csv = Vec::new();
    for r in &rows {
        println!(
            "{:>24} {:>16}: {:>9.1} GFLOP/s  ({:.2}% of peak)",
            r.label,
            r.shape.to_string(),
            r.gflops,
            100.0 * r.fraction_of_peak
        );
        csv.push(format!("{},{},{},{}", r.label, r.shape, r.gflops, r.fraction_of_peak));
    }
    let path = write_csv("motivation", "label,shape,gflops,fraction_of_peak", &csv);
    println!("(csv: {})\n", path.display());
}

fn run_grid(arch: &ArchSpec, which: u8) {
    let (cells, label) = if which == 8 {
        (fig8_grid(arch), "Fig 8: tiling engine vs MAGMA vbatch")
    } else {
        (fig9_grid(arch), "Fig 9: coordinated tiling + batching vs MAGMA vbatch")
    };
    println!("== {label} ({}) ==", arch.name);
    print_grid(&cells);
    println!(
        "geometric-mean speedup over the grid: {:.2}x (paper: {})",
        mean_speedup(&cells),
        if which == 8 { "~1.20x" } else { "~1.40x" }
    );
    let rows: Vec<String> = cells
        .iter()
        .map(|c| format!("{},{},{},{},{},{}", c.batch, c.mn, c.k, c.magma_us, c.ours_us, c.speedup()))
        .collect();
    let path = write_csv(
        &format!("fig{which}"),
        "batch,mn,k,magma_us,ours_us,speedup",
        &rows,
    );
    println!("(csv: {})\n", path.display());
}

fn print_grid(cells: &[CellResult]) {
    // The paper's 2-D histogram array: rows by (batch, mn), X axis K.
    let ks: Vec<usize> = ctb_matrix::gen::k_sweep();
    print!("{:>6} {:>5} |", "batch", "M=N");
    for k in &ks {
        print!(" K={k:<5}");
    }
    println!();
    for b in ctb_matrix::gen::fig_batch_sizes() {
        for mn in ctb_matrix::gen::fig_mn_sizes() {
            print!("{b:>6} {mn:>5} |");
            for k in &ks {
                let cell = cells
                    .iter()
                    .find(|c| c.batch == b && c.mn == mn && c.k == *k)
                    .expect("cell present");
                print!(" {:<7.2}", cell.speedup());
            }
            println!();
        }
    }
}

fn run_fig10(arch: &ArchSpec) {
    println!(
        "== Fig 10: GoogleNet inception-layer speedup vs MAGMA ({}; image batch {}) ==",
        arch.name,
        googlenet_exp::FIG10_IMAGE_BATCH
    );
    let rows = googlenet_exp::fig10_rows(arch);
    let mut csv = Vec::new();
    for (name, s) in &rows {
        println!("{name:>14}: {s:.2}x");
        csv.push(format!("{name},{s}"));
    }
    let mean = ctb_bench::geomean(&rows.iter().map(|(_, s)| *s).collect::<Vec<_>>());
    println!("mean: {mean:.2}x (paper: up to 1.40x on 3a/4a, ~1.25x elsewhere)");
    let path = write_csv("fig10", "layer,speedup", &csv);
    println!("(csv: {})\n", path.display());
}

fn run_googlenet(arch: &ArchSpec) {
    println!("== GoogleNet end-to-end inference, paper 7.3 ({}; image batch 1) ==", arch.name);
    let t = googlenet_exp::googlenet_summary(arch);
    println!("cuDNN-like serial     : {:.2} ms   (paper: 3.18 ms)", t.cudnn_like_ms);
    println!("  + stream concurrency: {:.2} ms   (paper: 2.41 ms)", t.cudnn_streams_ms);
    println!("coordinated batching  : {:.2} ms   (paper: 2.01 ms)", t.coordinated_ms);
    println!(
        "speedup vs serial: {:.2}x (paper 1.58x); vs streams: {:.2}x (paper 1.20x)",
        t.speedup_vs_baseline(),
        t.speedup_vs_streams()
    );
    let path = write_csv(
        "googlenet",
        "variant,ms",
        &[
            format!("cudnn_like,{}", t.cudnn_like_ms),
            format!("cudnn_streams,{}", t.cudnn_streams_ms),
            format!("coordinated,{}", t.coordinated_ms),
        ],
    );
    println!("(csv: {})\n", path.display());
}

fn run_fig11() {
    println!("== Fig 11: sensitivity across GPU architectures (100 random cases each) ==");
    let paper = [
        ("Tesla P100", 1.54),
        ("GTX 1080 Ti", 1.38),
        ("Titan Xp", 1.52),
        ("Tesla M60", 1.46),
        ("GTX Titan X", 1.43),
    ];
    let results = fig11_portability(100, 2024);
    let mut csv = Vec::new();
    for r in &results {
        let paper_x = paper
            .iter()
            .find(|(n, _)| *n == r.arch_name)
            .map(|(_, x)| *x)
            .unwrap_or(f64::NAN);
        println!("{:>12}: {:.2}x  (paper: {paper_x:.2}x)", r.arch_name, r.mean_speedup);
        csv.push(format!("{},{},{}", r.arch_name, r.mean_speedup, paper_x));
    }
    let path = write_csv("fig11", "arch,mean_speedup,paper_speedup", &csv);
    println!("(csv: {})\n", path.display());
}

fn run_tlp_calibrate() {
    println!("== Offline TLP-threshold calibration (papers 4.2.3 / 7) ==");
    let mut csv = Vec::new();
    for arch in ArchSpec::all_presets() {
        let sweep = calibrate::calibration_sweep(&arch);
        let t = calibrate::calibrate_tlp_threshold(&arch, 0.9);
        let used = Thresholds::for_arch(&arch).tlp_threshold;
        let pts: Vec<String> = sweep
            .iter()
            .map(|p| format!("{}:{:.0}GF@TLP{}", p.strategy, p.gflops, p.tlp))
            .collect();
        println!("{:>12}: calibrated {t} (framework uses {used})", arch.name);
        println!("              sweep: {}", pts.join("  "));
        csv.push(format!("{},{t},{used}", arch.name));
    }
    let path = write_csv("calibration", "arch,calibrated_threshold,used_threshold", &csv);
    println!("(csv: {})\n", path.display());
}

fn run_ablations(arch: &ArchSpec) {
    println!("== Ablations (DESIGN.md design choices; geometric-mean simulated us) ==");
    let suites: Vec<(&str, Vec<ablations::AblationPoint>)> = vec![
        ("tiling adaptivity", ablations::ablate_tiling_adaptivity(arch)),
        ("TLP threshold", ablations::ablate_tlp_threshold(arch)),
        ("theta", ablations::ablate_theta(arch)),
        ("cross-tile prefetch", ablations::ablate_cross_tile_prefetch(arch)),
        ("heuristic vs autotune", ablations::ablate_heuristic_vs_autotune(arch)),
        ("tile order", ablations::ablate_tile_order(arch)),
        ("dynamic queue", ablations::ablate_dynamic_queue(arch)),
    ];
    let mut csv = Vec::new();
    for (suite, points) in &suites {
        println!("-- {suite}");
        let best = points.iter().map(|p| p.mean_us).fold(f64::INFINITY, f64::min);
        for p in points {
            println!("   {:<28} {:>9.1} us  ({:+.1}% vs best)", p.label, p.mean_us, 100.0 * (p.mean_us / best - 1.0));
            csv.push(format!("{suite},{},{}", p.label, p.mean_us));
        }
    }
    let path = write_csv("ablations", "suite,config,mean_us", &csv);
    println!("(csv: {})\n", path.display());
}

fn run_fans(arch: &ArchSpec) {
    println!("== Fan-structure extensions: SqueezeNet / ResNet / training backward ==");
    let t = ctb_convnet::pipeline::squeezenet_times(arch, 1);
    println!(
        "squeezenet end-to-end (batch 1): serial {:.2} ms | +streams {:.2} ms | coordinated {:.2} ms",
        t.cudnn_like_ms, t.cudnn_streams_ms, t.coordinated_ms
    );
    let mut csv = Vec::new();
    for (label, rows) in [
        ("squeezenet expand fans (batch 4)", fans::squeezenet_fan_rows(arch, 4)),
        ("resnet projection fans (batch 4)", fans::resnet_fan_rows(arch, 4)),
        ("googlenet backward fans (batch 1)", fans::backward_fan_rows(arch, 1)),
    ] {
        println!("-- {label}");
        for (name, s) in &rows {
            println!("   {name:>22}: {s:.2}x vs MAGMA");
            csv.push(format!("{label},{name},{s}"));
        }
        let mean = ctb_bench::geomean(&rows.iter().map(|(_, s)| *s).collect::<Vec<_>>());
        println!("   mean: {mean:.2}x");
    }
    let path = write_csv("fans", "suite,workload,speedup", &csv);
    println!("(csv: {})\n", path.display());
}

fn run_splitk_demo(arch: &ArchSpec) {
    use ctb_core::plan_splitk;
    use ctb_matrix::GemmShape;
    use ctb_sim::simulate;
    println!("== Split-K extension: TLP-starved large-K GEMMs ==");
    let th = Thresholds::for_arch(arch);
    let mut csv = Vec::new();
    for shapes in [
        vec![GemmShape::new(64, 64, 8192)],
        vec![GemmShape::new(128, 64, 4096); 2],
        vec![GemmShape::new(64, 128, 2048); 4],
    ] {
        let label: Vec<String> = shapes.iter().map(|s| s.to_string()).collect();
        print!("   {:<38}", format!("B={} {}", shapes.len(), label[0]));
        let mut row = vec![format!("B={} {}", shapes.len(), label[0])];
        for split in [1usize, 2, 4, 8] {
            let plan = plan_splitk(arch, &shapes, &th, split).expect("plannable");
            let us = simulate(arch, &plan.sequence).total_us;
            print!(" s{split}={us:>7.1}us");
            row.push(format!("{us}"));
        }
        println!();
        csv.push(row.join(","));
    }
    let path = write_csv("splitk", "workload,split1_us,split2_us,split4_us,split8_us", &csv);
    println!("(csv: {})\n", path.display());
}

fn run_plan_explain(arch: &ArchSpec, spec: Option<&str>) {
    use ctb_core::Framework;
    use ctb_matrix::GemmShape;
    use ctb_tiling::select_tiling_traced;

    let spec = spec.unwrap_or("16x32x128,64x64x64,256x256x64");
    let shapes: Vec<GemmShape> = spec
        .split(',')
        .map(|s| {
            let dims: Vec<usize> = s
                .trim()
                .split('x')
                .map(|d| d.parse().unwrap_or_else(|_| panic!("bad dimension in '{s}'")))
                .collect();
            assert_eq!(dims.len(), 3, "expected MxNxK, got '{s}'");
            GemmShape::new(dims[0], dims[1], dims[2])
        })
        .collect();

    println!("== plan explainer on {} ==", arch.name);
    let th = Thresholds::for_arch(arch);
    let (solution, trace) = select_tiling_traced(&shapes, &th);
    print!("{}", trace.render(&shapes));
    println!("\nchosen strategies ({}-thread unified blocks):", solution.thread_count.threads());
    for (s, st) in shapes.iter().zip(&solution.per_gemm) {
        println!("  {s:>16} -> {st}");
    }

    let fw = Framework::new(arch.clone());
    let plan = fw.plan(&shapes).expect("plannable");
    println!(
        "\nbatching: {} -> {} tiles in {} blocks (max {} tiles/block)",
        plan.heuristic,
        plan.plan.num_tiles(),
        plan.plan.num_blocks(),
        plan.plan.max_tiles_per_block()
    );
    let report = fw.simulate_only(&shapes).expect("plannable");
    let k = &report.kernels[0];
    println!(
        "simulated: {:.1} us | occupancy {} blocks/SM | avg active warps {:.1} | \
         bound: {:.0}% throughput / {:.0}% latency / {:.0}% dependency / {:.0}% overhead",
        report.total_us,
        k.occupancy.blocks_per_sm,
        k.avg_active_warps,
        100.0 * k.bound_breakdown.throughput,
        100.0 * k.bound_breakdown.memory_latency,
        100.0 * k.bound_breakdown.dependency,
        100.0 * k.bound_breakdown.overhead,
    );
    println!();
}

/// Run every executor on a user-supplied workload file (one `M,N,K` or
/// `MxNxK` triple per line; `#` comments allowed).
fn run_custom(arch: &ArchSpec, path: Option<&str>) {
    use ctb_baselines::{cke, cublas_like, default_serial, magma_vbatch, simulate_baseline};
    use ctb_core::Framework;
    use ctb_matrix::GemmShape;

    let Some(path) = path else {
        eprintln!("usage: reproduce custom <file> — one M,N,K (or MxNxK) per line");
        std::process::exit(2);
    };
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read workload file {path}: {e}"));
    let shapes: Vec<GemmShape> = text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(|l| {
            let dims: Vec<usize> = l
                .split([',', 'x'])
                .map(|d| d.trim().parse().unwrap_or_else(|_| panic!("bad line '{l}'")))
                .collect();
            assert_eq!(dims.len(), 3, "expected three dimensions in '{l}'");
            GemmShape::new(dims[0], dims[1], dims[2])
        })
        .collect();
    assert!(!shapes.is_empty(), "workload file {path} has no shapes");

    println!("== custom workload: {} GEMMs from {path} on {} ==", shapes.len(), arch.name);
    let fw = Framework::new(arch.clone());
    let ours = fw.simulate_only(&shapes).expect("plannable").total_us;
    let mut rows = vec![("coordinated (ours)".to_string(), ours)];
    for run in [
        default_serial(arch, &shapes),
        cke(arch, &shapes),
        cublas_like(arch, &shapes),
        magma_vbatch(arch, &shapes),
    ] {
        rows.push((run.name.to_string(), simulate_baseline(arch, &run).total_us));
    }
    let best = rows.iter().map(|(_, us)| *us).fold(f64::INFINITY, f64::min);
    for (name, us) in &rows {
        println!("   {name:<20} {us:>10.1} us   ({:.2}x of best)", us / best);
    }
    println!();
}

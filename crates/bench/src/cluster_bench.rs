//! `reproduce cluster` — the tracked multi-device scaling harness.
//!
//! Two experiments over `ctb-cluster`:
//!
//! 1. **Scaling sweep** — the same mixed-shape workload through 1-, 2-
//!    and 4-device heterogeneous pools ([`ArchSpec::pool_presets`]).
//!    The figure of merit is throughput over *simulated* makespan
//!    (max per-device accumulated simulated time): on the single-core
//!    host every device executes serially, so wall time cannot show
//!    pool parallelism, but the analytical model — the same one that
//!    routes the batches — can. Stealing is disabled for the sweep so
//!    the figure isolates cost-model placement; on a 1-core host
//!    wall-clock idleness would otherwise migrate simulated work to
//!    whichever device the OS scheduler happened to starve.
//! 2. **Kill-one-device run** — a burst into the 2-device pool, the
//!    fastest device killed mid-load. Zero drops and bitwise-exact
//!    results (checked against [`GemmBatch::reference_result_exact`])
//!    are the acceptance bar, re-route counts are the evidence.
//! 3. **Discrete-event scaling sweep** — the same scheduling policy on
//!    the [`EventCluster`] engine, open-loop Table-2 load at 16 / 256 /
//!    1k / 10k devices and ≥1M requests per run. Device count is a
//!    `Vec` length here, not a thread count, so the sweep reports the
//!    regime the threaded engine cannot reach: makespan, events/sec
//!    engine throughput, placement error and mean utilization, with a
//!    sampled witness subset keeping results bitwise-checkable.
//!
//! Results land in `BENCH_cluster.json` at the repository root.

use ctb_cluster::{
    Cluster, ClusterConfig, EventCluster, EventConfig, LoadGen, PlacementMode, StealPolicy,
};
use ctb_gpu_specs::ArchSpec;
use ctb_matrix::{bitwise_mismatch, GemmBatch, GemmShape};
use std::path::PathBuf;
use std::time::Duration;

/// Far beyond any run's real latency: hitting it means a hang.
const HANG_BOUND: Duration = Duration::from_secs(120);

/// One pool size in the scaling sweep.
#[derive(Debug, Clone)]
pub struct ClusterScalePoint {
    /// Devices in the pool.
    pub devices: usize,
    /// Architecture names, pool order.
    pub device_names: Vec<&'static str>,
    /// Batches driven through the pool.
    pub batches: usize,
    /// Simulated makespan (max per-device busy time), µs.
    pub makespan_sim_us: f64,
    /// Total simulated work across devices, µs.
    pub total_sim_us: f64,
    /// Workload FLOPs over simulated makespan, GFLOPS.
    pub throughput_gflops: f64,
    /// This pool's throughput over the 1-device pool's (1.0 for n=1).
    pub speedup_vs_single: f64,
    /// Mean |predicted − simulated| µs per batch (0 = the placer's
    /// predictions were exactly what execution observed).
    pub mean_abs_placement_err_us: f64,
    /// Per-device utilization (`busy / makespan`), pool order.
    pub utilization: Vec<f64>,
}

/// Outcome of the kill-one-device resilience run.
#[derive(Debug, Clone)]
pub struct KillRunReport {
    /// Batches submitted (and — zero drops — completed).
    pub batches: usize,
    pub completed: usize,
    pub kills: usize,
    /// Batches moved off the dead device.
    pub reroutes: usize,
    /// Batches that fell back to the degraded baseline.
    pub degraded: usize,
    /// Every result matched its exact oracle bit for bit.
    pub bitwise_exact: bool,
}

/// One pool size in the discrete-event scaling sweep.
#[derive(Debug, Clone)]
pub struct EventScalePoint {
    /// Devices in the pool (a `Vec` length, not a thread count).
    pub devices: usize,
    /// Open-loop requests generated and retired.
    pub requests: usize,
    /// Load-generator seed.
    pub seed: u64,
    /// Simulated makespan (max per-device busy time), µs.
    pub makespan_sim_us: f64,
    /// Total simulated work across devices, µs.
    pub total_sim_us: f64,
    /// Timeline events popped over the run.
    pub events_processed: u64,
    /// Host wall seconds inside the engine loop.
    pub wall_s: f64,
    /// Engine throughput: events processed per host wall second.
    pub events_per_sec: f64,
    /// `total / (devices × makespan)` — how evenly the placer loaded
    /// the pool.
    pub mean_utilization: f64,
    /// Mean |predicted − simulated| µs per completed request.
    pub mean_abs_placement_err_us: f64,
    /// Requests that executed for real and were bitwise-checked.
    pub witnesses: usize,
    /// Witness divergences from the exact oracle (must be 0).
    pub witness_mismatches: usize,
}

/// The full tracked report.
#[derive(Debug, Clone)]
pub struct ClusterBenchReport {
    pub scaling: Vec<ClusterScalePoint>,
    pub kill_run: KillRunReport,
    pub event_scaling: Vec<EventScalePoint>,
}

/// Mixed-shape workload for the sweep. Shapes are sized so no single
/// batch fills the largest device (a handful of blocks each): pool
/// speedup then tracks per-device *clock* differences rather than SM
/// counts, which is the regime where adding mid-range devices next to a
/// V100 actually pays.
fn workload(batches: usize, seed: u64) -> Vec<GemmBatch> {
    let mix: [&[GemmShape]; 4] = [
        &[GemmShape::new(48, 48, 256); 3],
        &[GemmShape::new(32, 64, 128); 4],
        &[GemmShape::new(64, 64, 320); 2],
        &[GemmShape::new(24, 24, 96); 6],
    ];
    (0..batches)
        .map(|i| GemmBatch::random(mix[i % mix.len()], 1.0, 0.5, seed.wrapping_add(i as u64)))
        .collect()
}

/// Knobs of the tracked harness, every one surfaced as a `reproduce
/// cluster` CLI flag; [`Default`] is the tracked configuration, and
/// [`ClusterBenchConfig::smoke`] is the CI gate's quick variant.
#[derive(Debug, Clone)]
pub struct ClusterBenchConfig {
    /// Batches through the threaded scaling sweep (`--batches`).
    pub batches: usize,
    /// Threaded pool sizes to sweep (`--devices`).
    pub devices: Vec<usize>,
    /// Base data seed for both engines' workloads (`--seed`).
    pub seed: u64,
    /// Event-engine pool sizes to sweep (`--event-devices`).
    pub event_devices: Vec<usize>,
    /// Open-loop requests per event-engine point (`--requests`).
    pub event_requests: usize,
}

impl Default for ClusterBenchConfig {
    fn default() -> Self {
        ClusterBenchConfig {
            batches: 40,
            devices: vec![1, 2, 4],
            seed: 0,
            event_devices: vec![16, 256, 1024, 10_000],
            event_requests: 1_000_000,
        }
    }
}

impl ClusterBenchConfig {
    /// The CI smoke variant: one 256-device / 100k-request event point
    /// plus a trimmed threaded sweep — exercises every report section
    /// (the schema gate needs them all) in a few seconds.
    pub fn smoke() -> Self {
        ClusterBenchConfig {
            batches: 8,
            devices: vec![1, 2],
            event_devices: vec![256],
            event_requests: 100_000,
            ..ClusterBenchConfig::default()
        }
    }
}

fn workload_flops(batches: &[GemmBatch]) -> f64 {
    batches
        .iter()
        .flat_map(|b| b.shapes.iter())
        .map(|s| s.flops() as f64)
        .sum()
}

fn sweep_config(queue_capacity: usize) -> ClusterConfig {
    ClusterConfig {
        queue_capacity,
        steal: StealPolicy { enabled: false, ..StealPolicy::default() },
        ..ClusterConfig::default()
    }
}

/// Drive `batches` through an `n`-device pool and report the simulated
/// scaling numbers. Every result is verified bitwise against the exact
/// oracle.
pub fn run_scale_point(n: usize, batches: &[GemmBatch]) -> ClusterScalePoint {
    let pool = ArchSpec::pool_presets(n);
    let device_names: Vec<&'static str> = pool.iter().map(|a| a.name).collect();
    let cluster = Cluster::new(pool, sweep_config(batches.len().max(1)));
    let oracles: Vec<_> = batches.iter().map(GemmBatch::reference_result_exact).collect();
    let tickets: Vec<_> = batches
        .iter()
        .map(|b| cluster.submit(b.clone()).expect("sweep submit admitted"))
        .collect();
    for (t, oracle) in tickets.into_iter().zip(&oracles) {
        let out = t.wait_for(HANG_BOUND).expect("sweep batch completed");
        assert!(
            bitwise_mismatch(oracle, &out.results).is_none(),
            "scaling-sweep result diverged from the exact oracle"
        );
    }
    let stats = cluster.shutdown();
    assert_eq!(stats.completed, batches.len(), "sweep drops nothing");
    ClusterScalePoint {
        devices: n,
        device_names,
        batches: batches.len(),
        makespan_sim_us: stats.makespan_sim_us,
        total_sim_us: stats.total_sim_us,
        throughput_gflops: stats.sim_throughput_gflops(workload_flops(batches)),
        speedup_vs_single: 1.0,
        mean_abs_placement_err_us: stats.mean_abs_placement_err_us,
        utilization: stats.devices.iter().map(|d| d.utilization).collect(),
    }
}

/// The threaded device scaling sweep on one workload, with speedups
/// normalized to the first (smallest) pool — pool order is
/// fastest-first, so the default `[1, 2, 4]` normalizes to the best
/// single device.
pub fn run_scaling_sweep(batches: usize, devices: &[usize], seed: u64) -> Vec<ClusterScalePoint> {
    let work = workload(batches, seed);
    let mut points: Vec<ClusterScalePoint> =
        devices.iter().map(|&n| run_scale_point(n, &work)).collect();
    let single = points[0].throughput_gflops;
    for p in &mut points {
        p.speedup_vs_single = p.throughput_gflops / single;
    }
    points
}

/// Event-engine configuration for a sweep point: indexed placement
/// above the auto threshold, deep queues (placement never has to
/// spill), and a sampled witness subset (~256 per run) so results stay
/// bitwise-checkable without executing a million real batches.
fn event_sweep_config(requests: usize) -> EventConfig {
    EventConfig {
        queue_capacity: 1 << 16,
        witness_every: (requests / 256).max(1),
        placement: PlacementMode::Auto,
        record_outcomes: false,
        ..EventConfig::default()
    }
}

/// One discrete-event sweep point: `requests` open-loop Table-2
/// requests through a `devices`-wide heterogeneous pool. The arrival
/// rate scales with pool size so every pool runs loaded rather than
/// trickle-fed.
pub fn run_event_scale_point(devices: usize, requests: usize, seed: u64) -> EventScalePoint {
    let mut eng =
        EventCluster::new(ArchSpec::pool_presets(devices), event_sweep_config(requests));
    let mean_interarrival_ns = (20_000.0 / devices as f64).max(1.0);
    eng.load(LoadGen::table2(seed, mean_interarrival_ns, requests));
    let report = eng.run();
    assert_eq!(report.requests, requests, "open loop must deliver every request");
    assert_eq!(
        report.stats.completed, requests,
        "a fault-free sweep point completes everything"
    );
    assert_eq!(report.witness_mismatches, 0, "sampled witnesses must stay bitwise-exact");
    EventScalePoint {
        devices,
        requests,
        seed,
        makespan_sim_us: report.stats.makespan_sim_us,
        total_sim_us: report.stats.total_sim_us,
        events_processed: report.events_processed,
        wall_s: report.wall_elapsed_s,
        events_per_sec: report.events_per_sec,
        mean_utilization: report.stats.mean_utilization(),
        mean_abs_placement_err_us: report.stats.mean_abs_placement_err_us,
        witnesses: report.witnesses,
        witness_mismatches: report.witness_mismatches,
    }
}

/// The discrete-event scaling sweep across pool sizes.
pub fn run_event_sweep(cfg: &ClusterBenchConfig) -> Vec<EventScalePoint> {
    cfg.event_devices
        .iter()
        .map(|&n| run_event_scale_point(n, cfg.event_requests, cfg.seed))
        .collect()
}

/// Burst into the 2-device pool, kill the fastest device while loaded,
/// and verify the zero-drop / bitwise-exact contract.
pub fn run_kill_run(batches: usize, seed: u64) -> KillRunReport {
    let work = workload(batches, seed);
    let oracles: Vec<_> = work.iter().map(GemmBatch::reference_result_exact).collect();
    let cluster = Cluster::new(ArchSpec::pool_presets(2), sweep_config(batches.max(1)));
    let tickets: Vec<_> = work
        .into_iter()
        .map(|b| cluster.submit(b).expect("kill-run submit admitted"))
        .collect();
    cluster.kill_device(0);
    let mut bitwise_exact = true;
    let mut completed = 0usize;
    for (t, oracle) in tickets.into_iter().zip(&oracles) {
        let out = t.wait_for(HANG_BOUND).expect("zero drops across the kill");
        completed += 1;
        bitwise_exact &= bitwise_mismatch(oracle, &out.results).is_none();
    }
    let stats = cluster.shutdown();
    KillRunReport {
        batches,
        completed,
        kills: stats.kills,
        reroutes: stats.reroutes,
        degraded: stats.degraded,
        bitwise_exact,
    }
}

/// Serialize the report as the tracked JSON schema.
pub fn render_json(r: &ClusterBenchReport) -> String {
    let scaling_rows: Vec<String> = r
        .scaling
        .iter()
        .map(|p| {
            let names: Vec<String> =
                p.device_names.iter().map(|n| format!("\"{n}\"")).collect();
            let utils: Vec<String> =
                p.utilization.iter().map(|u| format!("{u:.3}")).collect();
            format!(
                "    {{\n      \"devices\": {},\n      \"device_names\": [{}],\n      \
                 \"batches\": {},\n      \"makespan_sim_us\": {:.3},\n      \
                 \"total_sim_us\": {:.3},\n      \"throughput_gflops\": {:.3},\n      \
                 \"speedup_vs_single\": {:.3},\n      \
                 \"mean_abs_placement_err_us\": {:.6},\n      \
                 \"utilization\": [{}]\n    }}",
                p.devices,
                names.join(", "),
                p.batches,
                p.makespan_sim_us,
                p.total_sim_us,
                p.throughput_gflops,
                p.speedup_vs_single,
                p.mean_abs_placement_err_us,
                utils.join(", ")
            )
        })
        .collect();
    let event_rows: Vec<String> = r
        .event_scaling
        .iter()
        .map(|p| {
            format!(
                "    {{\n      \"devices\": {},\n      \"requests\": {},\n      \
                 \"seed\": {},\n      \"makespan_sim_us\": {:.3},\n      \
                 \"total_sim_us\": {:.3},\n      \"events_processed\": {},\n      \
                 \"wall_s\": {:.6},\n      \"events_per_sec\": {:.0},\n      \
                 \"mean_utilization\": {:.4},\n      \
                 \"mean_abs_placement_err_us\": {:.6},\n      \"witnesses\": {},\n      \
                 \"witness_mismatches\": {}\n    }}",
                p.devices,
                p.requests,
                p.seed,
                p.makespan_sim_us,
                p.total_sim_us,
                p.events_processed,
                p.wall_s,
                p.events_per_sec,
                p.mean_utilization,
                p.mean_abs_placement_err_us,
                p.witnesses,
                p.witness_mismatches
            )
        })
        .collect();
    let k = &r.kill_run;
    format!(
        "{{\n  \"bench\": \"cluster\",\n  \"scaling\": [\n{}\n  ],\n  \"kill_run\": {{\n    \
         \"batches\": {},\n    \"completed\": {},\n    \"kills\": {},\n    \
         \"reroutes\": {},\n    \"degraded\": {},\n    \"bitwise_exact\": {}\n  }},\n  \
         \"event_scaling\": [\n{}\n  ]\n}}\n",
        scaling_rows.join(",\n"),
        k.batches,
        k.completed,
        k.kills,
        k.reroutes,
        k.degraded,
        k.bitwise_exact,
        event_rows.join(",\n")
    )
}

/// Path of the tracked report: `BENCH_cluster.json` at the repo root.
pub fn report_path() -> PathBuf {
    crate::bench_json_path("cluster")
}

/// Path of the checked-in golden schema the drift gate diffs against.
pub fn golden_schema_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../scripts/BENCH_cluster.schema")
}

/// Run every section of the harness under `cfg`.
pub fn run_report(cfg: &ClusterBenchConfig) -> ClusterBenchReport {
    ClusterBenchReport {
        scaling: run_scaling_sweep(cfg.batches, &cfg.devices, cfg.seed),
        kill_run: run_kill_run((cfg.batches * 3) / 5, cfg.seed),
        event_scaling: run_event_sweep(cfg),
    }
}

/// Run `cfg` and write the tracked `BENCH_cluster.json`; returns the
/// report and the path written.
pub fn run_and_write(cfg: &ClusterBenchConfig) -> (ClusterBenchReport, PathBuf) {
    let report = run_report(cfg);
    let path = crate::write_bench_json("cluster", &render_json(&report));
    (report, path)
}

/// Run the smoke configuration and write it under `target/experiments/`
/// (NOT the tracked root file — the CI gate must not clobber the
/// tracked full-run numbers with smoke numbers).
pub fn run_and_write_smoke() -> (ClusterBenchReport, PathBuf) {
    let report = run_report(&ClusterBenchConfig::smoke());
    let path = crate::experiments_dir().join("BENCH_cluster_smoke.json");
    std::fs::write(&path, render_json(&report))
        .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    (report, path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_sweep_scales_and_stays_exact() {
        let work = workload(6, 0);
        let single = run_scale_point(1, &work);
        let pair = run_scale_point(2, &work);
        assert_eq!(single.devices, 1);
        assert_eq!(pair.devices, 2);
        assert!(single.makespan_sim_us > 0.0);
        // Two devices must not be slower than one in simulated makespan.
        assert!(pair.makespan_sim_us <= single.makespan_sim_us + 1e-9);
        assert!(pair.throughput_gflops >= single.throughput_gflops - 1e-9);
        // Sweep predictions reconcile exactly with execution.
        assert_eq!(single.mean_abs_placement_err_us, 0.0);
        assert_eq!(pair.mean_abs_placement_err_us, 0.0);
    }

    #[test]
    fn small_kill_run_drops_nothing() {
        let r = run_kill_run(6, 0);
        assert_eq!(r.completed, 6);
        assert_eq!(r.kills, 1);
        assert!(r.bitwise_exact);
    }

    #[test]
    fn small_event_point_reports_the_sweep_vocabulary() {
        let p = run_event_scale_point(16, 2_000, 7);
        assert_eq!(p.devices, 16);
        assert_eq!(p.requests, 2_000);
        assert!(p.makespan_sim_us > 0.0);
        assert!(p.events_processed >= 2_000 * 3, "arrive + place + exec per request minimum");
        assert!(p.events_per_sec > 0.0);
        assert!(p.mean_utilization > 0.0 && p.mean_utilization <= 1.0 + 1e-9);
        assert_eq!(p.mean_abs_placement_err_us, 0.0, "predictions reconcile exactly");
        assert!(p.witnesses > 0, "the sampled witness subset is non-empty");
        assert_eq!(p.witness_mismatches, 0);
    }

    #[test]
    fn seed_changes_the_workload_but_not_the_contract() {
        let a = run_event_scale_point(4, 400, 1);
        let b = run_event_scale_point(4, 400, 2);
        assert_ne!(
            (a.makespan_sim_us, a.events_processed),
            (b.makespan_sim_us, b.events_processed),
            "different seeds must draw different loads"
        );
        // Same seed replays identically (wall time aside).
        let c = run_event_scale_point(4, 400, 1);
        assert_eq!(a.makespan_sim_us, c.makespan_sim_us);
        assert_eq!(a.events_processed, c.events_processed);
    }

    #[test]
    fn json_schema_has_stable_keys() {
        let r = ClusterBenchReport {
            scaling: vec![ClusterScalePoint {
                devices: 2,
                device_names: vec!["Tesla V100", "Titan Xp"],
                batches: 40,
                makespan_sim_us: 100.0,
                total_sim_us: 180.0,
                throughput_gflops: 42.0,
                speedup_vs_single: 1.8,
                mean_abs_placement_err_us: 0.0,
                utilization: vec![1.0, 0.8],
            }],
            kill_run: KillRunReport {
                batches: 24,
                completed: 24,
                kills: 1,
                reroutes: 9,
                degraded: 0,
                bitwise_exact: true,
            },
            event_scaling: vec![EventScalePoint {
                devices: 10_000,
                requests: 1_000_000,
                seed: 0,
                makespan_sim_us: 1.0e6,
                total_sim_us: 9.0e9,
                events_processed: 4_000_000,
                wall_s: 2.5,
                events_per_sec: 1.6e6,
                mean_utilization: 0.9,
                mean_abs_placement_err_us: 0.0,
                witnesses: 244,
                witness_mismatches: 0,
            }],
        };
        let json = render_json(&r);
        for key in [
            "\"bench\"",
            "\"scaling\"",
            "\"devices\"",
            "\"device_names\"",
            "\"makespan_sim_us\"",
            "\"throughput_gflops\"",
            "\"speedup_vs_single\"",
            "\"mean_abs_placement_err_us\"",
            "\"utilization\"",
            "\"kill_run\"",
            "\"reroutes\"",
            "\"bitwise_exact\"",
            "\"event_scaling\"",
            "\"requests\"",
            "\"events_processed\"",
            "\"events_per_sec\"",
            "\"mean_utilization\"",
            "\"witnesses\"",
            "\"witness_mismatches\"",
        ] {
            assert!(json.contains(key), "missing key {key} in {json}");
        }
    }

    #[test]
    fn report_path_is_the_repo_root() {
        let p = report_path();
        assert!(p.ends_with("BENCH_cluster.json"));
        assert!(p.parent().unwrap().join("Cargo.toml").exists());
    }
}

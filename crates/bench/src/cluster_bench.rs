//! `reproduce cluster` — the tracked multi-device scaling harness.
//!
//! Two experiments over `ctb-cluster`:
//!
//! 1. **Scaling sweep** — the same mixed-shape workload through 1-, 2-
//!    and 4-device heterogeneous pools ([`ArchSpec::pool_presets`]).
//!    The figure of merit is throughput over *simulated* makespan
//!    (max per-device accumulated simulated time): on the single-core
//!    host every device executes serially, so wall time cannot show
//!    pool parallelism, but the analytical model — the same one that
//!    routes the batches — can. Stealing is disabled for the sweep so
//!    the figure isolates cost-model placement; on a 1-core host
//!    wall-clock idleness would otherwise migrate simulated work to
//!    whichever device the OS scheduler happened to starve.
//! 2. **Kill-one-device run** — a burst into the 2-device pool, the
//!    fastest device killed mid-load. Zero drops and bitwise-exact
//!    results (checked against [`GemmBatch::reference_result_exact`])
//!    are the acceptance bar, re-route counts are the evidence.
//!
//! Results land in `BENCH_cluster.json` at the repository root.

use ctb_cluster::{Cluster, ClusterConfig, StealPolicy};
use ctb_gpu_specs::ArchSpec;
use ctb_matrix::{bitwise_mismatch, GemmBatch, GemmShape};
use std::path::PathBuf;
use std::time::Duration;

/// Far beyond any run's real latency: hitting it means a hang.
const HANG_BOUND: Duration = Duration::from_secs(120);

/// One pool size in the scaling sweep.
#[derive(Debug, Clone)]
pub struct ClusterScalePoint {
    /// Devices in the pool.
    pub devices: usize,
    /// Architecture names, pool order.
    pub device_names: Vec<&'static str>,
    /// Batches driven through the pool.
    pub batches: usize,
    /// Simulated makespan (max per-device busy time), µs.
    pub makespan_sim_us: f64,
    /// Total simulated work across devices, µs.
    pub total_sim_us: f64,
    /// Workload FLOPs over simulated makespan, GFLOPS.
    pub throughput_gflops: f64,
    /// This pool's throughput over the 1-device pool's (1.0 for n=1).
    pub speedup_vs_single: f64,
    /// Mean |predicted − simulated| µs per batch (0 = the placer's
    /// predictions were exactly what execution observed).
    pub mean_abs_placement_err_us: f64,
    /// Per-device utilization (`busy / makespan`), pool order.
    pub utilization: Vec<f64>,
}

/// Outcome of the kill-one-device resilience run.
#[derive(Debug, Clone)]
pub struct KillRunReport {
    /// Batches submitted (and — zero drops — completed).
    pub batches: usize,
    pub completed: usize,
    pub kills: usize,
    /// Batches moved off the dead device.
    pub reroutes: usize,
    /// Batches that fell back to the degraded baseline.
    pub degraded: usize,
    /// Every result matched its exact oracle bit for bit.
    pub bitwise_exact: bool,
}

/// The full tracked report.
#[derive(Debug, Clone)]
pub struct ClusterBenchReport {
    pub scaling: Vec<ClusterScalePoint>,
    pub kill_run: KillRunReport,
}

/// Mixed-shape workload for the sweep. Shapes are sized so no single
/// batch fills the largest device (a handful of blocks each): pool
/// speedup then tracks per-device *clock* differences rather than SM
/// counts, which is the regime where adding mid-range devices next to a
/// V100 actually pays.
fn workload(batches: usize) -> Vec<GemmBatch> {
    let mix: [&[GemmShape]; 4] = [
        &[GemmShape::new(48, 48, 256); 3],
        &[GemmShape::new(32, 64, 128); 4],
        &[GemmShape::new(64, 64, 320); 2],
        &[GemmShape::new(24, 24, 96); 6],
    ];
    (0..batches)
        .map(|i| GemmBatch::random(mix[i % mix.len()], 1.0, 0.5, i as u64))
        .collect()
}

fn workload_flops(batches: &[GemmBatch]) -> f64 {
    batches
        .iter()
        .flat_map(|b| b.shapes.iter())
        .map(|s| s.flops() as f64)
        .sum()
}

fn sweep_config(queue_capacity: usize) -> ClusterConfig {
    ClusterConfig {
        queue_capacity,
        steal: StealPolicy { enabled: false, ..StealPolicy::default() },
        ..ClusterConfig::default()
    }
}

/// Drive `batches` through an `n`-device pool and report the simulated
/// scaling numbers. Every result is verified bitwise against the exact
/// oracle.
pub fn run_scale_point(n: usize, batches: &[GemmBatch]) -> ClusterScalePoint {
    let pool = ArchSpec::pool_presets(n);
    let device_names: Vec<&'static str> = pool.iter().map(|a| a.name).collect();
    let cluster = Cluster::new(pool, sweep_config(batches.len().max(1)));
    let oracles: Vec<_> = batches.iter().map(GemmBatch::reference_result_exact).collect();
    let tickets: Vec<_> = batches
        .iter()
        .map(|b| cluster.submit(b.clone()).expect("sweep submit admitted"))
        .collect();
    for (t, oracle) in tickets.into_iter().zip(&oracles) {
        let out = t.wait_for(HANG_BOUND).expect("sweep batch completed");
        assert!(
            bitwise_mismatch(oracle, &out.results).is_none(),
            "scaling-sweep result diverged from the exact oracle"
        );
    }
    let stats = cluster.shutdown();
    assert_eq!(stats.completed, batches.len(), "sweep drops nothing");
    ClusterScalePoint {
        devices: n,
        device_names,
        batches: batches.len(),
        makespan_sim_us: stats.makespan_sim_us,
        total_sim_us: stats.total_sim_us,
        throughput_gflops: stats.sim_throughput_gflops(workload_flops(batches)),
        speedup_vs_single: 1.0,
        mean_abs_placement_err_us: stats.mean_abs_placement_err_us,
        utilization: stats.devices.iter().map(|d| d.utilization).collect(),
    }
}

/// The 1 / 2 / 4 device scaling sweep on one workload, with speedups
/// normalized to the 1-device pool (the best single device — pool
/// order is fastest-first).
pub fn run_scaling_sweep(batches: usize) -> Vec<ClusterScalePoint> {
    let work = workload(batches);
    let mut points: Vec<ClusterScalePoint> =
        [1usize, 2, 4].iter().map(|&n| run_scale_point(n, &work)).collect();
    let single = points[0].throughput_gflops;
    for p in &mut points {
        p.speedup_vs_single = p.throughput_gflops / single;
    }
    points
}

/// Burst into the 2-device pool, kill the fastest device while loaded,
/// and verify the zero-drop / bitwise-exact contract.
pub fn run_kill_run(batches: usize) -> KillRunReport {
    let work = workload(batches);
    let oracles: Vec<_> = work.iter().map(GemmBatch::reference_result_exact).collect();
    let cluster = Cluster::new(ArchSpec::pool_presets(2), sweep_config(batches.max(1)));
    let tickets: Vec<_> = work
        .into_iter()
        .map(|b| cluster.submit(b).expect("kill-run submit admitted"))
        .collect();
    cluster.kill_device(0);
    let mut bitwise_exact = true;
    let mut completed = 0usize;
    for (t, oracle) in tickets.into_iter().zip(&oracles) {
        let out = t.wait_for(HANG_BOUND).expect("zero drops across the kill");
        completed += 1;
        bitwise_exact &= bitwise_mismatch(oracle, &out.results).is_none();
    }
    let stats = cluster.shutdown();
    KillRunReport {
        batches,
        completed,
        kills: stats.kills,
        reroutes: stats.reroutes,
        degraded: stats.degraded,
        bitwise_exact,
    }
}

/// Serialize the report as the tracked JSON schema.
pub fn render_json(r: &ClusterBenchReport) -> String {
    let scaling_rows: Vec<String> = r
        .scaling
        .iter()
        .map(|p| {
            let names: Vec<String> =
                p.device_names.iter().map(|n| format!("\"{n}\"")).collect();
            let utils: Vec<String> =
                p.utilization.iter().map(|u| format!("{u:.3}")).collect();
            format!(
                "    {{\n      \"devices\": {},\n      \"device_names\": [{}],\n      \
                 \"batches\": {},\n      \"makespan_sim_us\": {:.3},\n      \
                 \"total_sim_us\": {:.3},\n      \"throughput_gflops\": {:.3},\n      \
                 \"speedup_vs_single\": {:.3},\n      \
                 \"mean_abs_placement_err_us\": {:.6},\n      \
                 \"utilization\": [{}]\n    }}",
                p.devices,
                names.join(", "),
                p.batches,
                p.makespan_sim_us,
                p.total_sim_us,
                p.throughput_gflops,
                p.speedup_vs_single,
                p.mean_abs_placement_err_us,
                utils.join(", ")
            )
        })
        .collect();
    let k = &r.kill_run;
    format!(
        "{{\n  \"bench\": \"cluster\",\n  \"scaling\": [\n{}\n  ],\n  \"kill_run\": {{\n    \
         \"batches\": {},\n    \"completed\": {},\n    \"kills\": {},\n    \
         \"reroutes\": {},\n    \"degraded\": {},\n    \"bitwise_exact\": {}\n  }}\n}}\n",
        scaling_rows.join(",\n"),
        k.batches,
        k.completed,
        k.kills,
        k.reroutes,
        k.degraded,
        k.bitwise_exact
    )
}

/// Path of the tracked report: `BENCH_cluster.json` at the repo root.
pub fn report_path() -> PathBuf {
    crate::bench_json_path("cluster")
}

/// Run the standard tracked configuration (40-batch sweep, 24-batch
/// kill run) and write the report; returns it and the path written.
pub fn run_and_write() -> (ClusterBenchReport, PathBuf) {
    let report = ClusterBenchReport {
        scaling: run_scaling_sweep(40),
        kill_run: run_kill_run(24),
    };
    let path = crate::write_bench_json("cluster", &render_json(&report));
    (report, path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_sweep_scales_and_stays_exact() {
        let work = workload(6);
        let single = run_scale_point(1, &work);
        let pair = run_scale_point(2, &work);
        assert_eq!(single.devices, 1);
        assert_eq!(pair.devices, 2);
        assert!(single.makespan_sim_us > 0.0);
        // Two devices must not be slower than one in simulated makespan.
        assert!(pair.makespan_sim_us <= single.makespan_sim_us + 1e-9);
        assert!(pair.throughput_gflops >= single.throughput_gflops - 1e-9);
        // Sweep predictions reconcile exactly with execution.
        assert_eq!(single.mean_abs_placement_err_us, 0.0);
        assert_eq!(pair.mean_abs_placement_err_us, 0.0);
    }

    #[test]
    fn small_kill_run_drops_nothing() {
        let r = run_kill_run(6);
        assert_eq!(r.completed, 6);
        assert_eq!(r.kills, 1);
        assert!(r.bitwise_exact);
    }

    #[test]
    fn json_schema_has_stable_keys() {
        let r = ClusterBenchReport {
            scaling: vec![ClusterScalePoint {
                devices: 2,
                device_names: vec!["Tesla V100", "Titan Xp"],
                batches: 40,
                makespan_sim_us: 100.0,
                total_sim_us: 180.0,
                throughput_gflops: 42.0,
                speedup_vs_single: 1.8,
                mean_abs_placement_err_us: 0.0,
                utilization: vec![1.0, 0.8],
            }],
            kill_run: KillRunReport {
                batches: 24,
                completed: 24,
                kills: 1,
                reroutes: 9,
                degraded: 0,
                bitwise_exact: true,
            },
        };
        let json = render_json(&r);
        for key in [
            "\"bench\"",
            "\"scaling\"",
            "\"devices\"",
            "\"device_names\"",
            "\"makespan_sim_us\"",
            "\"throughput_gflops\"",
            "\"speedup_vs_single\"",
            "\"mean_abs_placement_err_us\"",
            "\"utilization\"",
            "\"kill_run\"",
            "\"reroutes\"",
            "\"bitwise_exact\"",
        ] {
            assert!(json.contains(key), "missing key {key} in {json}");
        }
    }

    #[test]
    fn report_path_is_the_repo_root() {
        let p = report_path();
        assert!(p.ends_with("BENCH_cluster.json"));
        assert!(p.parent().unwrap().join("Cargo.toml").exists());
    }
}

//! `reproduce locality` — locality-aware vs locality-blind placement on
//! a drifted multi-chiplet pool.
//!
//! One seeded open-loop workload runs twice over the same pool of
//! multi-chiplet devices (MCM-GPU 4-die presets: four HBM stacks behind
//! an interposer, so a placement away from a batch's operand home pays
//! a real staging cost). The **aware** arm ranks candidates with the
//! locality routing penalty; the **blind** arm is the backlog-only
//! placer. Everything else — arrivals, seeds, drift, witnesses,
//! residency *bookkeeping* — is identical, so the remote-traffic gap
//! between the arms is attributable to the ranking change alone.
//!
//! The run is gated: the aware arm must take strictly fewer remote
//! placements *and* charge strictly fewer remote operand bytes, with
//! zero witness mismatches in both arms (`reproduce locality` exits
//! non-zero otherwise). Full runs land in `BENCH_locality.json` at the
//! repository root (`--smoke` writes
//! `target/experiments/BENCH_locality_smoke.json`) and the key set is
//! diffed against `scripts/BENCH_locality.schema`.

use ctb_cluster::{
    EventCluster, EventConfig, GroundTruth, LoadGen, LocalityPolicy, ReqOutcome, ShapeMix,
};
use ctb_gpu_specs::ArchSpec;
use ctb_matrix::GemmShape;
use ctb_obs::TraceAudit;
use std::path::PathBuf;
use std::sync::Arc;

/// Workload knobs; both arms replay the same seeded stream over the
/// same drifted pool.
#[derive(Debug, Clone)]
pub struct LocalityBenchConfig {
    /// Identical multi-chiplet devices in the pool (an MCM node).
    pub devices: usize,
    /// Requests per arm.
    pub requests: usize,
    /// Load-stream seed.
    pub seed: u64,
    /// Ground-truth drift seed (how each device class's true silicon
    /// diverges from the nominal spec the model sees).
    pub drift_seed: u64,
    /// Mean inter-arrival gap of the Poisson arrivals, ns. Kept well
    /// under the per-batch service time so the pool stays contended —
    /// the regime where a backlog-only ranking migrates signatures.
    pub mean_interarrival_ns: f64,
    /// Execute a correctness witness every N completions.
    pub witness_every: usize,
}

impl Default for LocalityBenchConfig {
    fn default() -> Self {
        LocalityBenchConfig {
            devices: 4,
            requests: 2_000,
            seed: 0x10CA_117E,
            drift_seed: 23,
            mean_interarrival_ns: 60_000.0,
            witness_every: 16,
        }
    }
}

impl LocalityBenchConfig {
    /// Scaled-down configuration for the CI gate: same differential, an
    /// order of magnitude fewer requests.
    pub fn smoke() -> Self {
        LocalityBenchConfig { devices: 3, requests: 240, witness_every: 32, ..Default::default() }
    }
}

/// What one arm of the differential measured.
#[derive(Debug, Clone)]
pub struct LocalityArm {
    /// Requests that completed (vs rejected under overload).
    pub completed: usize,
    /// Placement landings (including re-routes).
    pub routed: usize,
    /// Work-stealing landings.
    pub steals: usize,
    /// Landings on the device already holding the operands.
    pub residency_hits: usize,
    /// Landings that staged operands across the interposer.
    pub residency_misses: usize,
    /// Remote share of the operand bytes those misses moved.
    pub remote_operand_bytes: u64,
    /// Pool makespan in simulated µs.
    pub makespan_sim_us: f64,
    /// Correctness witnesses that diverged (must be 0).
    pub witness_mismatches: usize,
}

impl LocalityArm {
    /// Fraction of landings that found their operands resident.
    pub fn hit_rate(&self) -> f64 {
        let landings = self.residency_hits + self.residency_misses;
        if landings == 0 {
            return 0.0;
        }
        self.residency_hits as f64 / landings as f64
    }
}

/// The tracked report: one aware arm, one blind arm, same workload.
#[derive(Debug, Clone)]
pub struct LocalityBenchReport {
    pub cfg: LocalityBenchConfig,
    pub aware: LocalityArm,
    pub blind: LocalityArm,
}

impl LocalityBenchReport {
    /// Remote-traffic reduction of aware vs blind, percent.
    pub fn remote_bytes_reduction_pct(&self) -> f64 {
        if self.blind.remote_operand_bytes == 0 {
            return 0.0;
        }
        100.0
            * (1.0
                - self.aware.remote_operand_bytes as f64 / self.blind.remote_operand_bytes as f64)
    }

    /// Remote-placement (residency-miss) reduction, percent.
    pub fn miss_reduction_pct(&self) -> f64 {
        if self.blind.residency_misses == 0 {
            return 0.0;
        }
        100.0 * (1.0 - self.aware.residency_misses as f64 / self.blind.residency_misses as f64)
    }

    /// The gate `reproduce locality` enforces: strictly fewer remote
    /// placements, strictly fewer remote bytes, zero mismatches.
    pub fn gate_passed(&self) -> bool {
        self.aware.residency_misses < self.blind.residency_misses
            && self.aware.remote_operand_bytes < self.blind.remote_operand_bytes
            && self.aware.witness_mismatches == 0
            && self.blind.witness_mismatches == 0
    }
}

/// The locality workload: a handful of recurring batch signatures (the
/// serving regime residency can exploit) with enough classes that the
/// backlog argmin keeps interleaving them across devices.
fn locality_mixes() -> Vec<ShapeMix> {
    fn sig(shapes: &[GemmShape]) -> Arc<[GemmShape]> {
        shapes.into()
    }
    vec![
        ShapeMix { name: "attention", shapes: sig(&[GemmShape::new(96, 96, 384); 2]), weight: 22 },
        ShapeMix { name: "mlp-up", shapes: sig(&[GemmShape::new(128, 256, 128); 2]), weight: 18 },
        ShapeMix { name: "mlp-down", shapes: sig(&[GemmShape::new(256, 64, 256)]), weight: 16 },
        ShapeMix {
            name: "ragged",
            shapes: sig(&[GemmShape::new(48, 64, 96), GemmShape::new(16, 32, 640)]),
            weight: 16,
        },
        ShapeMix { name: "tile-row", shapes: sig(&[GemmShape::new(128, 32, 32); 4]), weight: 14 },
        ShapeMix { name: "square", shapes: sig(&[GemmShape::new(96, 96, 96); 3]), weight: 14 },
    ]
}

/// The multi-chiplet pool both arms place onto: `devices` identical
/// MCM-GPU 4-die presets. Identical replicas are the common node
/// layout, and they put the ranking decision in sharpest relief — the
/// cost model predicts the same time everywhere, so the blind argmin is
/// pure backlog-chasing while the aware one can prefer the operand
/// home.
pub fn locality_pool(devices: usize) -> Vec<ArchSpec> {
    (0..devices).map(|_| ArchSpec::mcm_gpu_4die()).collect()
}

fn engine_config(cfg: &LocalityBenchConfig, locality: LocalityPolicy) -> EventConfig {
    EventConfig { witness_every: cfg.witness_every, locality, ..EventConfig::default() }
}

/// Run one arm: same pool, same drift, same load — only the ranking
/// policy differs. Instrumented; the trace must audit clean and
/// reconcile with the residency counters.
fn run_arm(cfg: &LocalityBenchConfig, locality: LocalityPolicy) -> LocalityArm {
    let pool = locality_pool(cfg.devices);
    let n = pool.len();
    let truth = GroundTruth::drift(&pool, cfg.drift_seed);
    let (mut eng, obs) =
        EventCluster::with_instrumentation(pool, engine_config(cfg, locality), vec![None; n]);
    eng.set_ground_truth(truth);
    eng.load(LoadGen::new(cfg.seed, cfg.mean_interarrival_ns, cfg.requests, locality_mixes()));
    let report = eng.run();
    let counts = TraceAudit::new(obs.events()).check().expect("locality trace audits clean");
    assert_eq!(counts.residency_hits, report.stats.residency_hits, "hit events reconcile");
    assert_eq!(counts.residency_misses, report.stats.residency_misses, "miss events reconcile");
    let completed =
        report.outcomes.iter().filter(|o| matches!(o, ReqOutcome::Done { .. })).count();
    LocalityArm {
        completed,
        routed: report.stats.routed,
        steals: report.stats.steals,
        residency_hits: report.stats.residency_hits,
        residency_misses: report.stats.residency_misses,
        remote_operand_bytes: report.stats.remote_operand_bytes,
        makespan_sim_us: report.stats.makespan_sim_us,
        witness_mismatches: report.witness_mismatches,
    }
}

/// Both arms of the differential.
pub fn run_locality_bench(cfg: &LocalityBenchConfig) -> LocalityBenchReport {
    let aware = run_arm(cfg, LocalityPolicy::default());
    let blind = run_arm(cfg, LocalityPolicy::blind());
    LocalityBenchReport { cfg: cfg.clone(), aware, blind }
}

fn render_arm(out: &mut String, label: &str, a: &LocalityArm) {
    out.push_str(&format!(
        "  \"{label}\": {{\n    \"completed\": {},\n    \"routed\": {},\n    \"steals\": {},\n    \
         \"residency_hits\": {},\n    \"residency_misses\": {},\n    \"hit_rate\": {:.4},\n    \
         \"remote_operand_bytes\": {},\n    \"makespan_sim_us\": {:.1},\n    \
         \"witness_mismatches\": {}\n  }},\n",
        a.completed,
        a.routed,
        a.steals,
        a.residency_hits,
        a.residency_misses,
        a.hit_rate(),
        a.remote_operand_bytes,
        a.makespan_sim_us,
        a.witness_mismatches
    ));
}

/// Serialize the report as the tracked JSON schema.
pub fn render_json(r: &LocalityBenchReport) -> String {
    let mut out = format!(
        "{{\n  \"bench\": \"locality\",\n  \"devices\": {},\n  \"requests\": {},\n  \
         \"seed\": {},\n  \"drift_seed\": {},\n  \"mean_interarrival_ns\": {:.1},\n",
        r.cfg.devices, r.cfg.requests, r.cfg.seed, r.cfg.drift_seed, r.cfg.mean_interarrival_ns
    );
    render_arm(&mut out, "aware", &r.aware);
    render_arm(&mut out, "blind", &r.blind);
    out.push_str(&format!(
        "  \"miss_reduction_pct\": {:.2},\n  \"remote_bytes_reduction_pct\": {:.2},\n  \
         \"gate_passed\": {}\n}}\n",
        r.miss_reduction_pct(),
        r.remote_bytes_reduction_pct(),
        r.gate_passed()
    ));
    out
}

/// Path of the tracked report at the repo root.
pub fn report_path() -> PathBuf {
    crate::bench_json_path("locality")
}

/// Path of the checked-in golden schema the gate diffs against.
pub fn golden_schema_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../scripts/BENCH_locality.schema")
}

/// Run the full tracked configuration (or a flag-adjusted one) and
/// write `BENCH_locality.json`.
pub fn run_and_write(cfg: &LocalityBenchConfig) -> (LocalityBenchReport, PathBuf) {
    let report = run_locality_bench(cfg);
    let path = crate::write_bench_json("locality", &render_json(&report));
    (report, path)
}

/// Run the smoke configuration and write
/// `target/experiments/BENCH_locality_smoke.json`, leaving the tracked
/// root report to full runs only.
pub fn run_and_write_smoke() -> (LocalityBenchReport, PathBuf) {
    let report = run_locality_bench(&LocalityBenchConfig::smoke());
    let path = crate::experiments_dir().join("BENCH_locality_smoke.json");
    std::fs::write(&path, render_json(&report)).expect("write BENCH_locality_smoke.json");
    (report, path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_differential_passes_its_own_gate() {
        let r = run_locality_bench(&LocalityBenchConfig::smoke());
        assert_eq!(r.aware.witness_mismatches, 0);
        assert_eq!(r.blind.witness_mismatches, 0);
        assert_eq!(r.aware.completed, r.cfg.requests, "aware arm dropped requests");
        assert_eq!(r.blind.completed, r.cfg.requests, "blind arm dropped requests");
        assert!(r.blind.remote_operand_bytes > 0, "the pool never crossed the interposer");
        assert!(
            r.gate_passed(),
            "aware must strictly reduce remote traffic: misses {} vs {}, bytes {} vs {}",
            r.aware.residency_misses,
            r.blind.residency_misses,
            r.aware.remote_operand_bytes,
            r.blind.remote_operand_bytes
        );
    }

    #[test]
    fn pool_is_multi_chiplet_throughout() {
        for spec in locality_pool(4) {
            assert!(!spec.topology.is_unified(), "{} must be multi-chiplet", spec.name);
        }
    }

    #[test]
    fn json_schema_has_stable_keys() {
        let arm = LocalityArm {
            completed: 0,
            routed: 0,
            steals: 0,
            residency_hits: 0,
            residency_misses: 0,
            remote_operand_bytes: 0,
            makespan_sim_us: 0.0,
            witness_mismatches: 0,
        };
        let r = LocalityBenchReport {
            cfg: LocalityBenchConfig::default(),
            aware: arm.clone(),
            blind: arm,
        };
        let json = render_json(&r);
        let golden =
            std::fs::read_to_string(golden_schema_path()).expect("golden schema checked in");
        let golden: Vec<String> = golden.lines().map(str::to_string).collect();
        assert_eq!(
            crate::obs_bench::key_paths(&json),
            golden,
            "BENCH_locality.json schema drifted; update scripts/BENCH_locality.schema deliberately"
        );
    }

    #[test]
    fn report_path_is_the_repo_root() {
        let p = report_path();
        assert!(p.ends_with("BENCH_locality.json"));
        assert!(p.parent().unwrap().join("Cargo.toml").exists());
    }
}
